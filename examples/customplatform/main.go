// Example customplatform defines a platform entirely in code as a
// declarative spec — no preset, no JSON file on disk — and sweeps a
// seeded generated workload across its thermal-limit axis, printing a
// compact per-limit summary. It is the "open scenario space" loop:
// invent a device, invent a workload, measure the governor's bargain.
//
// Run with: go run ./examples/customplatform
package main

import (
	"context"
	"fmt"
	"os"

	"repro/pkg/mobisim"
)

func main() {
	// A fanless handheld: small die masses, one case node to ambient,
	// modest ladders. Everything not set here (ambient, sensor period,
	// DVFS latency, leakage activation, rail wiring) is defaulted by
	// the spec layer.
	spec, err := mobisim.ParsePlatformSpec([]byte(`{
	  "name": "handheld",
	  "thermal_limit_c": 42,
	  "nodes": [
	    {"name": "little", "capacitance_j_per_k": 0.6},
	    {"name": "big", "capacitance_j_per_k": 0.8},
	    {"name": "gpu", "capacitance_j_per_k": 0.9},
	    {"name": "case", "capacitance_j_per_k": 15, "g_ambient_w_per_k": 0.06}
	  ],
	  "couplings": [
	    {"a": "little", "b": "case", "g_w_per_k": 0.4},
	    {"a": "big", "b": "case", "g_w_per_k": 0.45},
	    {"a": "gpu", "b": "case", "g_w_per_k": 0.4}
	  ],
	  "domains": [
	    {"id": "little", "cores": 4, "ceff_f": 1.6e-10, "idle_w": 0.03, "leak_k": 1.2e-4,
	     "opps": [{"freq_hz": 350000000, "voltage_v": 0.8}, {"freq_hz": 1000000000, "voltage_v": 0.95}, {"freq_hz": 1500000000, "voltage_v": 1.1}]},
	    {"id": "big", "cores": 2, "ceff_f": 6.5e-10, "idle_w": 0.05, "leak_k": 4e-4,
	     "opps": [{"freq_hz": 400000000, "voltage_v": 0.85}, {"freq_hz": 1200000000, "voltage_v": 1.0}, {"freq_hz": 1900000000, "voltage_v": 1.2}]},
	    {"id": "gpu", "cores": 1, "ceff_f": 2.5e-9, "idle_w": 0.04, "leak_k": 2.5e-4,
	     "opps": [{"freq_hz": 200000000, "voltage_v": 0.85}, {"freq_hz": 450000000, "voltage_v": 1.0}, {"freq_hz": 650000000, "voltage_v": 1.1}]}
	  ],
	  "sensor": {"node": "big", "noise_k": 0.05, "resolution_k": 0.1}
	}`))
	if err != nil {
		fatal(err)
	}
	if err := mobisim.RegisterPlatform(spec); err != nil {
		fatal(err)
	}

	// Sweep the application-aware governor's limit axis under a bursty
	// generated game, four seed replicates per cell.
	matrix := mobisim.Matrix{
		Platforms:  []string{spec.Name},
		Workloads:  []string{"gen-bursty"},
		Governors:  []string{mobisim.GovAppAware, mobisim.GovNone},
		LimitsC:    []float64{38, 42, 46},
		Replicates: 4,
		DurationS:  60,
		BaseSeed:   1,
	}
	matrix.Normalize()
	out, err := mobisim.RunSweepBatched(context.Background(), matrix, mobisim.SweepConfig{})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s: %d cells\n", spec.Name, len(out.Summaries))
	for _, s := range out.Summaries {
		fps := s.Metrics[mobisim.MetricMedianFPS]
		fmt.Printf("  %-8s limit %4.0f°C  peak %5.1f°C  avg %5.2f W  median FPS %5.1f (p95 %5.1f)\n",
			s.Governor, s.LimitC,
			s.Metrics[mobisim.MetricPeakC].Mean,
			s.Metrics[mobisim.MetricAvgPowerW].Mean,
			fps.P50, fps.P95)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "customplatform:", err)
	os.Exit(1)
}
