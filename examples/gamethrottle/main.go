// Gamethrottle reproduces the paper's Figure 1/2 scenario end to end:
// the Paper.io game on the Nexus 6P with the default thermal governor
// disabled and enabled, rendering the temperature profiles and the GPU
// frequency residency histograms side by side.
//
//	go run ./examples/gamethrottle
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/pkg/mobisim"
)

func main() {
	temps, err := experiments.TempProfileExperiment("paper.io", 1)
	if err != nil {
		log.Fatal(err)
	}
	chart, err := trace.LineChart(trace.LineChartConfig{
		Title: "Package temperature, Paper.io (paper Figure 1)",
	}, temps.Without, temps.With)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)

	res, err := experiments.ResidencyExperiment("paper.io", mobisim.DomGPU, 1)
	if err != nil {
		log.Fatal(err)
	}
	bars, err := trace.BarChart(
		"GPU frequency residency, Paper.io (paper Figure 2)",
		[]string{"without throttling", "with throttling"},
		res.BarGroups(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bars)

	fmt.Printf("median FPS: without throttling the game runs at its natural rate;\n")
	fmt.Printf("with throttling the 510/600 MHz OPPs disappear and the rate drops\n")
	fmt.Printf("by roughly a third (paper Table I row 1: 35 -> 23 FPS).\n")
}
