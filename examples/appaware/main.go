// Appaware reproduces the paper's Section IV-C experiment through the
// public facade: 3DMark on the Odroid-XU3 with a basicmath-large (BML)
// background task, managed by the application-aware governor. It also
// attaches a streaming observer, showing how long runs aggregate
// on-line instead of materializing traces. It prints the governor's
// decisions, the benchmark scores, and the temperature trace.
//
//	go run ./examples/appaware
package main

import (
	"fmt"
	"log"

	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/pkg/mobisim"
)

func main() {
	var stats mobisim.StatsSink
	eng, err := mobisim.New(mobisim.Scenario{
		Platform:  mobisim.PlatformOdroidXU3,
		Workload:  "3dmark+bml",
		Governor:  mobisim.GovAppAware,
		DurationS: 250,
		Seed:      1,
	}, mobisim.WithObserver(&stats))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("appaware: 3DMark + BML on the simulated Odroid-XU3, proposed control")
	m := eng.Metrics()
	fmt.Printf("  3DMark GT1: %.1f FPS, GT2: %.1f FPS\n",
		m[mobisim.MetricGT1FPS], m[mobisim.MetricGT2FPS])
	bml := eng.BackgroundBML()
	fmt.Printf("  BML modeled iterations: %d (executed for real: %d, checksum %.3g)\n",
		bml.Iterations(), bml.ExecutedIterations(), bml.Checksum())
	fmt.Printf("  streamed aggregates: %d samples, peak %.1f°C, mean %.2f W\n",
		stats.Samples(), stats.PeakTempC(), stats.MeanPowerW())

	gov := eng.AppAware()
	for _, ev := range gov.Events() {
		fmt.Printf("  t=%6.1fs  %-8s pid=%d  predicted fixed point %.1f°C, %.1fs to limit\n",
			ev.TimeS, ev.Kind, ev.PID, thermal.ToCelsius(ev.PredictedFixedK), ev.TimeToLimitS)
	}
	fmt.Println()

	maxTemp, ok := eng.MaxTempSeries()
	if !ok {
		log.Fatal("recording sink missing")
	}
	chart, err := trace.LineChart(trace.LineChartConfig{
		Title: "Maximum system temperature under the proposed control (paper Figure 8, black)",
	}, maxTemp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	fmt.Print(eng.Summary())
}
