// Appaware reproduces the paper's Section IV-C experiment: 3DMark on
// the Odroid-XU3 with a basicmath-large (BML) background task, managed
// by the application-aware governor. It prints the governor's
// decisions, the benchmark scores, and the temperature trace.
//
//	go run ./examples/appaware
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	bench := workload.NewThreeDMark(1)
	bml := workload.NewBML()
	sc, err := core.NewScenario(core.ScenarioConfig{
		Platform: core.PlatformOdroidXU3,
		Thermal:  core.ThermalAppAware,
		PrewarmC: 50,
		Seed:     1,
		Apps: []core.AppConfig{
			// The benchmark registers as real-time so it is never a victim.
			{App: bench, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, Cluster: sched.Big, Threads: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.Run(250); err != nil {
		log.Fatal(err)
	}

	fmt.Println("appaware: 3DMark + BML on the simulated Odroid-XU3, proposed control")
	fmt.Printf("  3DMark GT1: %.1f FPS, GT2: %.1f FPS\n", bench.GT1FPS(), bench.GT2FPS())
	fmt.Printf("  BML modeled iterations: %d (executed for real: %d, checksum %.3g)\n",
		bml.Iterations(), bml.ExecutedIterations(), bml.Checksum())

	gov := sc.AppAware()
	for _, ev := range gov.Events() {
		fmt.Printf("  t=%6.1fs  %-8s pid=%d  predicted fixed point %.1f°C, %.1fs to limit\n",
			ev.TimeS, ev.Kind, ev.PID, thermal.ToCelsius(ev.PredictedFixedK), ev.TimeToLimitS)
	}
	fmt.Println()

	chart, err := trace.LineChart(trace.LineChartConfig{
		Title: "Maximum system temperature under the proposed control (paper Figure 8, black)",
	}, sc.Engine().MaxTempSeries())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	fmt.Print(sc.Summary())
}
