// Quickstart: describe a scenario declaratively — a game on the
// simulated phone under its stock thermal governor — build it through
// the public pkg/mobisim facade, run it, and print the summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pkg/mobisim"
)

func main() {
	spec, err := mobisim.ParseScenario([]byte(`{
	    "platform": "nexus6p",
	    "workload": "paper.io",
	    "governor": "stepwise",
	    "duration_s": 30,
	    "seed": 1
	}`))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := mobisim.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: Paper.io on the simulated Nexus 6P for 30 s")
	fmt.Print(eng.Summary())
	fmt.Printf("  peak temperature: %.1f°C  median FPS: %.1f\n",
		eng.Metrics()[mobisim.MetricPeakC], eng.Metrics()[mobisim.MetricMedianFPS])
}
