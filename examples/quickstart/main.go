// Quickstart: build a phone platform, run a game on it for 30 seconds
// under the default governors, and print the run summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	sc, err := core.NewScenario(core.ScenarioConfig{
		Platform: core.PlatformNexus6P,
		Apps: []core.AppConfig{
			{App: workload.PaperIO(1), Cluster: sched.Big, Threads: 2},
		},
		PrewarmC: 36,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.Run(30); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: Paper.io on the simulated Nexus 6P for 30 s")
	fmt.Print(sc.Summary())
}
