// Skintemp explores the phone's skin temperature and the platform's
// stability margins: it sweeps dynamic power through the lumped
// stability analysis, finds the critical power, and shows how skin
// temperature lags the package during a gaming session — the
// user-experience quantity the paper's introduction motivates.
//
//	go run ./examples/skintemp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stability"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Part 1: stability margins of the phone's lumped model.
	sc, err := core.NewScenario(core.ScenarioConfig{
		Platform: core.PlatformNexus6P,
		Thermal:  core.ThermalNone,
		PrewarmC: 36,
		Seed:     1,
		Apps: []core.AppConfig{
			{App: workload.StickmanHook(1), Cluster: sched.Big, Threads: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	params, err := sc.Platform().StabilityParams()
	if err != nil {
		log.Fatal(err)
	}
	crit, err := params.CriticalPower()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skintemp: Nexus 6P lumped model (R=%.1f K/W, C=%.1f J/K)\n",
		params.ResistanceKPerW, params.CapacitanceJPerK)
	fmt.Printf("  critical power: %.2f W — beyond it the phone enters thermal runaway\n\n", crit)
	fmt.Printf("  %8s %18s %14s\n", "Pd (W)", "class", "steady (°C)")
	for _, pd := range []float64{1, 2, 3, 4, 6, crit + 1} {
		an, err := params.Analyze(pd)
		if err != nil {
			log.Fatal(err)
		}
		steady := "-"
		if an.Class != stability.Runaway {
			steady = fmt.Sprintf("%.1f", thermal.ToCelsius(an.StableTempK))
		}
		fmt.Printf("  %8.2f %18s %14s\n", pd, an.Class, steady)
	}
	fmt.Println()

	// Part 2: skin vs package temperature during 120 s of gaming.
	if err := sc.Run(120); err != nil {
		log.Fatal(err)
	}
	pkg := sc.Engine().NodeTempSeries("pkg")
	skin := sc.Engine().NodeTempSeries("skin")
	chart, err := trace.LineChart(trace.LineChartConfig{
		Title: "Package vs skin temperature, Stickman Hook unthrottled",
	}, pkg, skin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	lastPkg, _ := pkg.Last()
	lastSkin, _ := skin.Last()
	fmt.Printf("after 120 s: package %.1f°C, skin %.1f°C (skin lags and stays cooler,\n", lastPkg.Value, lastSkin.Value)
	fmt.Printf("but it is what the user feels — the paper's motivation for skin-aware control)\n")
}
