// Skintemp explores the phone's skin temperature and the platform's
// stability margins: it sweeps dynamic power through the lumped
// stability analysis, finds the critical power, and shows how skin
// temperature lags the package during a gaming session — the
// user-experience quantity the paper's introduction motivates.
//
//	go run ./examples/skintemp
package main

import (
	"fmt"
	"log"

	"repro/internal/stability"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/pkg/mobisim"
)

func main() {
	// Part 1: stability margins of the phone's lumped model. The engine
	// is built but not yet run; the analysis reads only the platform.
	eng, err := mobisim.New(mobisim.Scenario{
		Platform:  mobisim.PlatformNexus6P,
		Workload:  "stickman-hook",
		Governor:  mobisim.GovNone,
		DurationS: 120,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	params, err := eng.Platform().StabilityParams()
	if err != nil {
		log.Fatal(err)
	}
	crit, err := params.CriticalPower()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skintemp: Nexus 6P lumped model (R=%.1f K/W, C=%.1f J/K)\n",
		params.ResistanceKPerW, params.CapacitanceJPerK)
	fmt.Printf("  critical power: %.2f W — beyond it the phone enters thermal runaway\n\n", crit)
	fmt.Printf("  %8s %18s %14s\n", "Pd (W)", "class", "steady (°C)")
	for _, pd := range []float64{1, 2, 3, 4, 6, crit + 1} {
		an, err := params.Analyze(pd)
		if err != nil {
			log.Fatal(err)
		}
		steady := "-"
		if an.Class != stability.Runaway {
			steady = fmt.Sprintf("%.1f", thermal.ToCelsius(an.StableTempK))
		}
		fmt.Printf("  %8.2f %18s %14s\n", pd, an.Class, steady)
	}
	fmt.Println()

	// Part 2: skin vs package temperature during 120 s of gaming.
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	pkg, ok := eng.NodeTempSeries("pkg")
	if !ok {
		log.Fatal("no pkg node trace")
	}
	skin, ok := eng.NodeTempSeries("skin")
	if !ok {
		log.Fatal("no skin node trace")
	}
	chart, err := trace.LineChart(trace.LineChartConfig{
		Title: "Package vs skin temperature, Stickman Hook unthrottled",
	}, pkg, skin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	lastPkg, _ := pkg.Last()
	lastSkin, _ := skin.Last()
	fmt.Printf("after 120 s: package %.1f°C, skin %.1f°C (skin lags and stays cooler,\n", lastPkg.Value, lastSkin.Value)
	fmt.Printf("but it is what the user feels — the paper's motivation for skin-aware control)\n")
}
