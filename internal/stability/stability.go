// Package stability implements the paper's power-temperature stability
// analysis (Section IV-A, after Bhat/Gumussoy/Ogras, TECS 2017):
//
// Power and temperature form a positive feedback loop because leakage
// grows with temperature. With a lumped thermal model
//
//	C·dT/dt = Pd + Pleak(T) − (T − Ta)/R,   Pleak(T) = κ·T²·e^(−Q/T)
//
// the steady-state condition can be rewritten in terms of the auxiliary
// temperature θ = Q/T (inversely proportional to absolute temperature)
// as the root of a strictly concave function
//
//	ψ(θ) = Q·θ − a·θ² − b·e^(−θ),   a = Ta + R·Pd,   b = R·κ·Q².
//
// ψ” = −2a − b·e^(−θ) < 0, so ψ has at most two roots: the larger
// θ-root (lower temperature) is the stable fixed point, the smaller
// θ-root (higher temperature) is unstable; beyond it lies thermal
// runaway. When max ψ < 0 there is no fixed point at all and the system
// is unconditionally unstable, as in the paper's Figure 7c.
package stability

import (
	"errors"
	"fmt"
	"math"
)

// Params is the lumped platform model the analysis runs on.
type Params struct {
	// AmbientK is the ambient temperature Ta in Kelvin.
	AmbientK float64
	// ResistanceKPerW is the lumped thermal resistance R to ambient.
	ResistanceKPerW float64
	// CapacitanceJPerK is the lumped thermal capacitance C (used only by
	// the transient estimates, not the fixed-point structure).
	CapacitanceJPerK float64
	// LeakScale is κ in Pleak = κ·T²·e^(−Q/T), in W/K².
	LeakScale float64
	// ActivationK is the leakage activation temperature Q in Kelvin.
	ActivationK float64
	// PlotScale scales ψ for presentation; the paper's Figure 7 uses a
	// normalized axis. Zero means the DefaultPlotScale.
	PlotScale float64

	// pdForTransient carries the dynamic power into the ODE integrator;
	// the Time* methods set it on a value copy before integrating.
	pdForTransient float64
}

// DefaultPlotScale reproduces the y-axis range of the paper's Figure 7
// for the default Odroid parameters.
const DefaultPlotScale = 0.01

// DefaultOdroidParams returns lumped parameters calibrated so that, as
// in the paper's Figure 7, the system has two fixed points at 2 W, is
// critically stable near 5.5 W, and has no fixed points at 8 W.
func DefaultOdroidParams() Params {
	return Params{
		AmbientK:         300,
		ResistanceKPerW:  7,
		CapacitanceJPerK: 20,
		LeakScale:        1.1523e-3,
		ActivationK:      1200,
		PlotScale:        DefaultPlotScale,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case !(p.AmbientK > 0):
		return fmt.Errorf("stability: ambient must be positive Kelvin, got %v", p.AmbientK)
	case !(p.ResistanceKPerW > 0):
		return fmt.Errorf("stability: thermal resistance must be positive, got %v", p.ResistanceKPerW)
	case !(p.CapacitanceJPerK > 0):
		return fmt.Errorf("stability: thermal capacitance must be positive, got %v", p.CapacitanceJPerK)
	case p.LeakScale < 0 || math.IsNaN(p.LeakScale):
		return fmt.Errorf("stability: leakage scale must be >= 0, got %v", p.LeakScale)
	case !(p.ActivationK > 0):
		return fmt.Errorf("stability: activation temperature must be positive, got %v", p.ActivationK)
	}
	return nil
}

func (p Params) plotScale() float64 {
	if p.PlotScale == 0 {
		return DefaultPlotScale
	}
	return p.PlotScale
}

// Leakage returns Pleak(T) = κ·T²·e^(−Q/T) in watts.
func (p Params) Leakage(tempK float64) float64 {
	if tempK <= 0 {
		return 0
	}
	return p.LeakScale * tempK * tempK * math.Exp(-p.ActivationK/tempK)
}

// Aux converts an absolute temperature (K) to the auxiliary temperature
// θ = Q/T. Higher θ means lower temperature.
func (p Params) Aux(tempK float64) float64 { return p.ActivationK / tempK }

// Temp converts an auxiliary temperature back to Kelvin.
func (p Params) Temp(theta float64) float64 { return p.ActivationK / theta }

// coeffs returns a = Ta + R·Pd and b = R·κ·Q² for dynamic power pd.
func (p Params) coeffs(pdW float64) (a, b float64) {
	a = p.AmbientK + p.ResistanceKPerW*pdW
	b = p.ResistanceKPerW * p.LeakScale * p.ActivationK * p.ActivationK
	return a, b
}

// Psi evaluates the raw (unscaled) fixed-point function ψ(θ) for dynamic
// power pd.
func (p Params) Psi(theta, pdW float64) float64 {
	a, b := p.coeffs(pdW)
	return p.ActivationK*theta - a*theta*theta - b*math.Exp(-theta)
}

// PsiScaled is Psi multiplied by the presentation scale; it reproduces
// the y-axis of the paper's Figure 7.
func (p Params) PsiScaled(theta, pdW float64) float64 {
	return p.Psi(theta, pdW) * p.plotScale()
}

// PsiPrime evaluates dψ/dθ. It is strictly decreasing (ψ is concave),
// so its unique root is the maximizer of ψ.
func (p Params) PsiPrime(theta, pdW float64) float64 {
	a, b := p.coeffs(pdW)
	return p.ActivationK - 2*a*theta + b*math.Exp(-theta)
}

// Class labels the stability of the power-temperature dynamics.
type Class int

// Stability classes in order of increasing severity.
const (
	// Stable: two fixed points exist; trajectories starting below the
	// unstable fixed-point temperature converge to the stable one.
	Stable Class = iota
	// CriticallyStable: the two fixed points have merged (tangent root).
	CriticallyStable
	// Runaway: no fixed points; temperature grows without bound.
	Runaway
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case Stable:
		return "stable"
	case CriticallyStable:
		return "critically-stable"
	case Runaway:
		return "runaway"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Analysis is the result of analyzing one dynamic-power operating point.
type Analysis struct {
	// Class is the stability classification.
	Class Class
	// PdW is the dynamic power analyzed.
	PdW float64
	// PeakTheta maximizes ψ; PeakValue = ψ(PeakTheta) (unscaled).
	PeakTheta, PeakValue float64
	// StableTheta/UnstableTheta are the θ roots (0 when absent). The
	// stable root is the larger θ (lower temperature).
	StableTheta, UnstableTheta float64
	// StableTempK/UnstableTempK are the corresponding temperatures in
	// Kelvin (0 when absent).
	StableTempK, UnstableTempK float64
}

// criticalTol decides when the peak is close enough to zero to call the
// system critically stable; expressed relative to b.
const criticalTol = 1e-6

// Analyze classifies the dynamics at dynamic power pdW and locates the
// fixed points.
func (p Params) Analyze(pdW float64) (Analysis, error) {
	if err := p.Validate(); err != nil {
		return Analysis{}, err
	}
	if pdW < 0 || math.IsNaN(pdW) {
		return Analysis{}, fmt.Errorf("stability: dynamic power must be >= 0, got %v", pdW)
	}
	a, b := p.coeffs(pdW)
	if b == 0 {
		// No leakage feedback: single trivially stable fixed point at
		// T = Ta + R·Pd, i.e. θ = Q/(Ta+R·Pd) = Q/a.
		th := p.ActivationK / a
		return Analysis{
			Class:       Stable,
			PdW:         pdW,
			PeakTheta:   th,
			PeakValue:   p.Psi(th, pdW),
			StableTheta: th,
			StableTempK: a,
		}, nil
	}

	// ψ' is strictly decreasing; bracket its root. ψ'(0) = Q + b > 0.
	// For large θ, ψ' → Q − 2aθ < 0; θ = Q/a makes ψ' = −Q + b·e^(−Q/a),
	// not guaranteed negative, so grow the bracket geometrically.
	lo, hi := 0.0, p.ActivationK/a
	for p.PsiPrime(hi, pdW) > 0 {
		hi *= 2
		if hi > 1e9 {
			return Analysis{}, errors.New("stability: failed to bracket ψ' root")
		}
	}
	peak := bisect(func(t float64) float64 { return p.PsiPrime(t, pdW) }, lo, hi)
	peakVal := p.Psi(peak, pdW)
	res := Analysis{PdW: pdW, PeakTheta: peak, PeakValue: peakVal}

	switch {
	case peakVal > criticalTol*b:
		res.Class = Stable
		// Lower root in (ε, peak): ψ(0+) = −b < 0, ψ(peak) > 0.
		res.UnstableTheta = bisect(func(t float64) float64 { return p.Psi(t, pdW) }, 1e-9, peak)
		// Upper root in (peak, Q/a]: ψ(Q/a) = −b·e^(−Q/a) < 0. The upper
		// root is always < Q/a since ψ(θ) ≥ 0 needs Qθ ≥ aθ².
		upperHi := p.ActivationK / a
		if upperHi <= peak {
			upperHi = peak * 2
		}
		res.StableTheta = bisect(func(t float64) float64 { return -p.Psi(t, pdW) }, peak, upperHi)
		res.UnstableTempK = p.Temp(res.UnstableTheta)
		res.StableTempK = p.Temp(res.StableTheta)
	case peakVal >= -criticalTol*b:
		res.Class = CriticallyStable
		res.StableTheta = peak
		res.UnstableTheta = peak
		res.StableTempK = p.Temp(peak)
		res.UnstableTempK = res.StableTempK
	default:
		res.Class = Runaway
	}
	return res, nil
}

// bisect finds x in [lo, hi] with f(x) = 0 assuming f(lo) and f(hi)
// bracket a sign change with f(lo) > 0 ≥ f(hi) or f(lo) < 0 ≤ f(hi).
func bisect(f func(float64) float64, lo, hi float64) float64 {
	flo := f(lo)
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 || hi-lo < 1e-13*(1+math.Abs(mid)) {
			return mid
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// CriticalPower returns the dynamic power at which the two fixed points
// merge (max ψ = 0). Above it the system is in thermal runaway for any
// initial condition. For the default Odroid parameters this is ≈5.5 W,
// matching the paper's Figure 7b.
func (p Params) CriticalPower() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.LeakScale == 0 {
		return math.Inf(1), nil
	}
	peakAt := func(pd float64) float64 {
		an, err := p.Analyze(pd)
		if err != nil {
			return math.NaN()
		}
		return an.PeakValue
	}
	lo, hi := 0.0, 1.0
	if peakAt(lo) < 0 {
		return 0, errors.New("stability: system is unstable even at zero dynamic power")
	}
	for peakAt(hi) > 0 {
		hi *= 2
		if hi > 1e6 {
			return 0, errors.New("stability: no finite critical power found")
		}
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		if peakAt(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// SteadyStateTemp returns the stable fixed-point temperature (Kelvin)
// for dynamic power pdW, or an error when the system has no stable
// fixed point.
func (p Params) SteadyStateTemp(pdW float64) (float64, error) {
	an, err := p.Analyze(pdW)
	if err != nil {
		return 0, err
	}
	if an.Class == Runaway {
		return 0, fmt.Errorf("stability: no fixed point at Pd=%.3g W (thermal runaway)", pdW)
	}
	return an.StableTempK, nil
}

// dTdt evaluates the lumped dynamics at temperature t for power pd.
func (p Params) dTdt(t, pdW float64) float64 {
	return (pdW + p.Leakage(t) - (t-p.AmbientK)/p.ResistanceKPerW) / p.CapacitanceJPerK
}

// TimeToTemp integrates the lumped ODE from fromK until the temperature
// first reaches targetK, returning the elapsed time in seconds. If the
// trajectory can never reach targetK (it converges to a fixed point
// short of it), it returns +Inf. horizonS caps the integration.
func (p Params) TimeToTemp(fromK, targetK, horizonS float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if fromK <= 0 || targetK <= 0 {
		return 0, fmt.Errorf("stability: temperatures must be positive Kelvin (from=%v target=%v)", fromK, targetK)
	}
	if horizonS <= 0 {
		return 0, fmt.Errorf("stability: horizon must be positive, got %v", horizonS)
	}
	rising := targetK >= fromK
	if fromK == targetK {
		return 0, nil
	}
	t := fromK
	// RK4 with a step well below the thermal time constant.
	dt := p.ResistanceKPerW * p.CapacitanceJPerK / 200
	if dt > horizonS/10 {
		dt = horizonS / 10
	}
	elapsed := 0.0
	for elapsed < horizonS {
		k1 := p.dTdt(t, p.pdForTransient)
		k2 := p.dTdt(t+0.5*dt*k1, p.pdForTransient)
		k3 := p.dTdt(t+0.5*dt*k2, p.pdForTransient)
		k4 := p.dTdt(t+dt*k3, p.pdForTransient)
		next := t + dt/6*(k1+2*k2+2*k3+k4)
		if rising && next >= targetK || !rising && next <= targetK {
			// Linear interpolation within the step for sub-step accuracy.
			frac := 1.0
			if next != t {
				frac = (targetK - t) / (next - t)
			}
			return elapsed + frac*dt, nil
		}
		// Detect stall: derivative vanished short of the target.
		if math.Abs(next-t) < 1e-12 {
			return math.Inf(1), nil
		}
		t = next
		elapsed += dt
	}
	return math.Inf(1), nil
}

// TimeToFixedPoint estimates how long the system takes to move from
// fromK to within tolK of the stable fixed-point temperature under
// constant dynamic power pdW. It returns +Inf when the system is in
// runaway or when the fixed point is not reached within horizonS.
//
// The application-aware governor uses this estimate to decide whether a
// predicted violation is imminent (Section IV-B).
func (p Params) TimeToFixedPoint(pdW, fromK, tolK, horizonS float64) (float64, error) {
	an, err := p.Analyze(pdW)
	if err != nil {
		return 0, err
	}
	if an.Class == Runaway {
		return math.Inf(1), nil
	}
	fix := an.StableTempK
	if math.Abs(fromK-fix) <= tolK {
		return 0, nil
	}
	target := fix - tolK
	if fromK > fix {
		target = fix + tolK
	}
	q := p
	q.pdForTransient = pdW
	return q.TimeToTemp(fromK, target, horizonS)
}

// TimeToThreshold estimates how long until the temperature, starting at
// fromK under constant dynamic power pdW, first crosses thresholdK. It
// returns +Inf if the trajectory never reaches the threshold (e.g. the
// stable fixed point lies below it) within horizonS.
func (p Params) TimeToThreshold(pdW, fromK, thresholdK, horizonS float64) (float64, error) {
	q := p
	q.pdForTransient = pdW
	return q.TimeToTemp(fromK, thresholdK, horizonS)
}

// Iterate performs one step of the damped fixed-point iteration
// θ' = θ + λ·ψ(θ). Along the concave ψ, iterates between the two roots
// move toward the larger (stable) root and iterates left of the unstable
// root move further left, visualizing the arrows in the paper's
// Figure 7a.
func (p Params) Iterate(theta, pdW, lambda float64) float64 {
	return theta + lambda*p.Psi(theta, pdW)
}

// DefaultIterationGain is a damping gain that makes Iterate contract
// near the stable root for the default Odroid parameters.
const DefaultIterationGain = 1e-3
