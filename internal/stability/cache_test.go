package stability

import (
	"math"
	"testing"
)

// TestTransientCacheMatchesDirect pins the memoized entry points
// bitwise against the direct ones across a grid of inputs — including
// repeated queries (served from the memo) and multiple thresholds
// replayed against one recorded trajectory.
func TestTransientCacheMatchesDirect(t *testing.T) {
	p := DefaultOdroidParams()
	c := NewTransientCache()

	pds := []float64{0.5, 2, 3.3, 5.4, 8}
	froms := []float64{305, 320, 333.15}
	thresholds := []float64{310, 325, 333.15, 350, 400}
	for pass := 0; pass < 2; pass++ { // second pass must hit the memo
		for _, pd := range pds {
			wantAn, wantErr := p.Analyze(pd)
			gotAn, gotErr := c.Analyze(p, pd)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Analyze(%v) error mismatch: %v vs %v", pd, wantErr, gotErr)
			}
			if wantAn != gotAn {
				t.Fatalf("Analyze(%v) differs: %+v vs %+v", pd, wantAn, gotAn)
			}
			for _, from := range froms {
				for _, th := range thresholds {
					want, wantErr := p.TimeToThreshold(pd, from, th, 30)
					got, gotErr := c.TimeToThreshold(p, pd, from, th, 30)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("TimeToThreshold(%v,%v,%v) error mismatch: %v vs %v", pd, from, th, wantErr, gotErr)
					}
					if math.Float64bits(want) != math.Float64bits(got) {
						t.Fatalf("TimeToThreshold(%v,%v,%v) differs bitwise: %v vs %v", pd, from, th, want, got)
					}
				}
			}
		}
	}
	if c.Hits() == 0 {
		t.Fatal("second pass should have hit the memo")
	}
	// Degenerate and invalid inputs must behave identically too.
	if _, err := c.TimeToThreshold(p, 3, -1, 320, 30); err == nil {
		t.Error("negative from-temperature should error")
	}
	if _, err := c.TimeToThreshold(p, 3, 320, 330, 0); err == nil {
		t.Error("non-positive horizon should error")
	}
	if v, err := c.TimeToThreshold(p, 3, 320, 320, 30); err != nil || v != 0 {
		t.Errorf("equal temperatures should report 0, got %v, %v", v, err)
	}
}

// TestTransientCacheParamsChange ensures results stay correct when one
// cache serves different parameter sets (a recycled batch shell moving
// between platforms): stale memos must be flushed.
func TestTransientCacheParamsChange(t *testing.T) {
	a := DefaultOdroidParams()
	b := a
	b.ResistanceKPerW = 3 // different platform lump

	c := NewTransientCache()
	for _, p := range []Params{a, b, a} {
		want, _ := p.TimeToThreshold(3, 320, 340, 30)
		got, err := c.TimeToThreshold(p, 3, 320, 340, 30)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("params %+v: cached %v differs from direct %v", p, got, want)
		}
		wantAn, _ := p.Analyze(3)
		gotAn, err := c.Analyze(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if wantAn != gotAn {
			t.Fatalf("params %+v: cached analysis differs", p)
		}
	}
}

// TestTransientCacheEviction drives the memo past its capacity and
// verifies the flush keeps results exact.
func TestTransientCacheEviction(t *testing.T) {
	p := DefaultOdroidParams()
	c := NewTransientCache()
	for i := 0; i < 3*memoCap; i++ {
		pd := 2 + float64(i)*0.01
		from := 310 + float64(i%5)
		want, _ := p.TimeToThreshold(pd, from, 345, 20)
		got, err := c.TimeToThreshold(p, pd, from, 345, 20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("i=%d: cached %v differs from direct %v", i, got, want)
		}
	}
	if len(c.trajs) > memoCap {
		t.Fatalf("trajectory memo grew past its cap: %d", len(c.trajs))
	}
}
