package stability

import (
	"fmt"
	"math"
)

// TransientCache memoizes the pure functions of the stability analysis
// — fixed-point classification and lumped-ODE trajectories — across
// callers that share identical parameters and inputs. It exists for
// the batched sweep executor: lockstep lanes with paired seeds feed
// the analysis bitwise-identical dynamic power and sensor readings for
// as long as their trajectories coincide (limit-agnostic lanes: the
// whole run), so one integration can serve several lanes. Cached
// results are served only for exactly equal inputs, and the trajectory
// replay below re-runs the original loop's control flow over recorded
// temperatures, so a cache hit is bitwise-indistinguishable from a
// fresh computation.
//
// A TransientCache is not safe for concurrent use; share one per
// lockstep batch (one goroutine), never across sweep workers.
type TransientCache struct {
	params     Params
	haveParams bool

	analyses map[float64]Analysis // keyed by pd
	trajs    map[trajKey][]float64
	spare    [][]float64 // retired trajectory slices for reuse

	hits, misses int
}

// trajKey identifies one recorded trajectory: everything that shapes
// the temperature sequence except the crossing target, which the
// replay applies.
type trajKey struct {
	pd, from, dt float64
	steps        int
}

// memoCap bounds both memo maps: a lockstep batch revisits at most a
// handful of distinct inputs per control tick, and inputs drift every
// tick, so stale entries are purged wholesale instead of tracked.
const memoCap = 16

// NewTransientCache returns an empty cache.
func NewTransientCache() *TransientCache {
	return &TransientCache{
		analyses: make(map[float64]Analysis, memoCap),
		trajs:    make(map[trajKey][]float64, memoCap),
	}
}

// Hits and Misses report memo effectiveness (for tests and tuning).
func (c *TransientCache) Hits() int   { return c.hits }
func (c *TransientCache) Misses() int { return c.misses }

// adopt rebinds the cache to a parameter set, flushing the memos when
// it actually changed. Lanes of one batch share a platform and thus
// parameters; the check makes cross-platform reuse safe rather than
// subtly wrong.
func (c *TransientCache) adopt(p Params) {
	if c.haveParams && c.params == p {
		return
	}
	c.params = p
	c.haveParams = true
	c.flushAnalyses()
	c.flushTrajs()
}

func (c *TransientCache) flushAnalyses() {
	for k := range c.analyses {
		delete(c.analyses, k)
	}
}

func (c *TransientCache) flushTrajs() {
	for k, t := range c.trajs {
		c.spare = append(c.spare, t[:0])
		delete(c.trajs, k)
	}
}

// Analyze is Params.Analyze memoized on the dynamic power.
func (c *TransientCache) Analyze(p Params, pdW float64) (Analysis, error) {
	c.adopt(p)
	if an, ok := c.analyses[pdW]; ok {
		c.hits++
		return an, nil
	}
	an, err := p.Analyze(pdW)
	if err != nil {
		return an, err
	}
	c.misses++
	if len(c.analyses) >= memoCap {
		c.flushAnalyses()
	}
	c.analyses[pdW] = an
	return an, nil
}

// TimeToThreshold is Params.TimeToThreshold backed by the trajectory
// memo: the ODE integration — the expensive part, four leakage
// exponentials per step — runs once per distinct (pd, from) and is
// replayed against each caller's threshold.
func (c *TransientCache) TimeToThreshold(p Params, pdW, fromK, thresholdK, horizonS float64) (float64, error) {
	c.adopt(p)
	// Mirror TimeToTemp's validation and degenerate cases exactly.
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if fromK <= 0 || thresholdK <= 0 {
		return 0, fmt.Errorf("stability: temperatures must be positive Kelvin (from=%v target=%v)", fromK, thresholdK)
	}
	if horizonS <= 0 {
		return 0, fmt.Errorf("stability: horizon must be positive, got %v", horizonS)
	}
	if fromK == thresholdK {
		return 0, nil
	}
	dt := p.ResistanceKPerW * p.CapacitanceJPerK / 200
	if dt > horizonS/10 {
		dt = horizonS / 10
	}
	steps := trajSteps(dt, horizonS)
	key := trajKey{pd: pdW, from: fromK, dt: dt, steps: steps}
	traj, ok := c.trajs[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		traj = c.record(p, pdW, fromK, dt, steps)
		if len(c.trajs) >= memoCap {
			c.flushTrajs()
		}
		c.trajs[key] = traj
	}

	// Replay TimeToTemp's loop over the recorded temperatures: same
	// crossing test, same interpolation, same stall check, same elapsed
	// accumulation — bitwise-identical to integrating in place.
	rising := thresholdK >= fromK
	t := fromK
	elapsed := 0.0
	for i := 0; elapsed < horizonS; i++ {
		next := traj[i]
		if rising && next >= thresholdK || !rising && next <= thresholdK {
			frac := 1.0
			if next != t {
				frac = (thresholdK - t) / (next - t)
			}
			return elapsed + frac*dt, nil
		}
		if math.Abs(next-t) < 1e-12 {
			return math.Inf(1), nil
		}
		t = next
		elapsed += dt
	}
	return math.Inf(1), nil
}

// trajSteps counts the iterations TimeToTemp's `for elapsed < horizonS`
// loop performs when nothing terminates it early, by replaying the
// float accumulation (elapsed is a repeated float sum, so a closed-form
// count could disagree at the boundary).
func trajSteps(dt, horizonS float64) int {
	n := 0
	for elapsed := 0.0; elapsed < horizonS; elapsed += dt {
		n++
	}
	return n
}

// record integrates the full trajectory — steps RK4 updates from fromK
// — with the exact stage arithmetic of TimeToTemp. Unlike TimeToTemp
// it never stops at a crossing (different callers cross at different
// thresholds), so a recorded trajectory serves any threshold.
func (c *TransientCache) record(p Params, pdW, fromK, dt float64, steps int) []float64 {
	var traj []float64
	if n := len(c.spare); n > 0 {
		traj = c.spare[n-1][:0]
		c.spare = c.spare[:n-1]
	}
	q := p
	q.pdForTransient = pdW
	t := fromK
	for i := 0; i < steps; i++ {
		k1 := q.dTdt(t, q.pdForTransient)
		k2 := q.dTdt(t+0.5*dt*k1, q.pdForTransient)
		k3 := q.dTdt(t+0.5*dt*k2, q.pdForTransient)
		k4 := q.dTdt(t+dt*k3, q.pdForTransient)
		t = t + dt/6*(k1+2*k2+2*k3+k4)
		traj = append(traj, t)
	}
	return traj
}
