package stability

import (
	"math"
	"testing"
	"testing/quick"
)

func odroid() Params { return DefaultOdroidParams() }

func TestValidate(t *testing.T) {
	if err := odroid().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{},
		{AmbientK: 300},
		{AmbientK: 300, ResistanceKPerW: 7},
		{AmbientK: 300, ResistanceKPerW: 7, CapacitanceJPerK: 20, LeakScale: -1, ActivationK: 1200},
		{AmbientK: 300, ResistanceKPerW: 7, CapacitanceJPerK: 20, LeakScale: 1e-3, ActivationK: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestAuxInverseOfTemp(t *testing.T) {
	p := odroid()
	for _, temp := range []float64{280, 320, 400, 600} {
		if got := p.Temp(p.Aux(temp)); math.Abs(got-temp) > 1e-9 {
			t.Errorf("Temp(Aux(%v)) = %v", temp, got)
		}
	}
	// Higher temperature -> lower auxiliary temperature.
	if p.Aux(350) >= p.Aux(300) {
		t.Error("aux temperature must decrease with actual temperature")
	}
}

// ψ must be strictly concave: its second difference is negative everywhere.
func TestPsiConcave(t *testing.T) {
	p := odroid()
	for _, pd := range []float64{0, 2, 5.5, 8, 20} {
		for theta := 0.5; theta < 8; theta += 0.25 {
			h := 1e-4
			second := p.Psi(theta+h, pd) - 2*p.Psi(theta, pd) + p.Psi(theta-h, pd)
			if second >= 0 {
				t.Fatalf("ψ not concave at θ=%v Pd=%v (D2=%v)", theta, pd, second)
			}
		}
	}
}

// The paper's Figure 7: two fixed points at 2 W, critical near 5.5 W,
// none at 8 W.
func TestFigure7Structure(t *testing.T) {
	p := odroid()

	a2, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Class != Stable {
		t.Fatalf("2 W class = %v, want stable", a2.Class)
	}
	if !(a2.StableTheta > a2.UnstableTheta) {
		t.Errorf("stable θ %v should exceed unstable θ %v", a2.StableTheta, a2.UnstableTheta)
	}
	// Stable fixed point is the LOWER temperature.
	if !(a2.StableTempK < a2.UnstableTempK) {
		t.Errorf("stable T %v should be below unstable T %v", a2.StableTempK, a2.UnstableTempK)
	}

	a8, err := p.Analyze(8)
	if err != nil {
		t.Fatal(err)
	}
	if a8.Class != Runaway {
		t.Errorf("8 W class = %v, want runaway", a8.Class)
	}
	if a8.PeakValue >= 0 {
		t.Errorf("8 W peak ψ = %v, want negative", a8.PeakValue)
	}
}

func TestCriticalPowerNear5p5W(t *testing.T) {
	p := odroid()
	pc, err := p.CriticalPower()
	if err != nil {
		t.Fatal(err)
	}
	if pc < 5.3 || pc > 5.7 {
		t.Errorf("critical power = %v W, want ≈5.5 W as in Figure 7b", pc)
	}
	// Just below critical: stable; just above: runaway.
	below, err := p.Analyze(pc - 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if below.Class != Stable {
		t.Errorf("class below critical = %v", below.Class)
	}
	above, err := p.Analyze(pc + 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if above.Class != Runaway {
		t.Errorf("class above critical = %v", above.Class)
	}
}

func TestRootsAreActualRootsProperty(t *testing.T) {
	p := odroid()
	f := func(pdDeciW uint8) bool {
		pd := float64(pdDeciW%55) / 10 // 0..5.4 W, stable region
		an, err := p.Analyze(pd)
		if err != nil || an.Class != Stable {
			return err == nil // non-stable classes have no roots to check
		}
		_, b := p.coeffs(pd)
		tol := 1e-6 * b
		return math.Abs(p.Psi(an.StableTheta, pd)) < tol &&
			math.Abs(p.Psi(an.UnstableTheta, pd)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateTempIncreasingInPower(t *testing.T) {
	p := odroid()
	prev := 0.0
	for pd := 0.5; pd <= 5.0; pd += 0.5 {
		temp, err := p.SteadyStateTemp(pd)
		if err != nil {
			t.Fatalf("Pd=%v: %v", pd, err)
		}
		if temp <= prev {
			t.Errorf("steady temp %v at %v W not increasing (prev %v)", temp, pd, prev)
		}
		prev = temp
	}
}

func TestSteadyStateTempAboveAmbient(t *testing.T) {
	p := odroid()
	temp, err := p.SteadyStateTemp(1)
	if err != nil {
		t.Fatal(err)
	}
	if temp <= p.AmbientK {
		t.Errorf("steady temp %v must exceed ambient %v", temp, p.AmbientK)
	}
}

func TestSteadyStateTempRunawayError(t *testing.T) {
	p := odroid()
	if _, err := p.SteadyStateTemp(8); err == nil {
		t.Error("expected runaway error at 8 W")
	}
}

func TestNoLeakageSingleFixedPoint(t *testing.T) {
	p := odroid()
	p.LeakScale = 0
	an, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if an.Class != Stable {
		t.Fatalf("class = %v", an.Class)
	}
	want := p.AmbientK + p.ResistanceKPerW*2
	if math.Abs(an.StableTempK-want) > 1e-6 {
		t.Errorf("no-leak steady = %v, want Ta+R·Pd = %v", an.StableTempK, want)
	}
	pc, err := p.CriticalPower()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pc, 1) {
		t.Errorf("no-leak critical power = %v, want +Inf", pc)
	}
}

func TestAnalyzeRejectsNegativePower(t *testing.T) {
	if _, err := odroid().Analyze(-1); err == nil {
		t.Error("expected error for negative power")
	}
	if _, err := odroid().Analyze(math.NaN()); err == nil {
		t.Error("expected error for NaN power")
	}
}

// The damped fixed-point iteration must move toward the stable root from
// between the roots and away from it left of the unstable root — the
// arrows in Figure 7a.
func TestIterationArrows(t *testing.T) {
	p := odroid()
	an, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	mid := 0.5 * (an.StableTheta + an.UnstableTheta)
	next := p.Iterate(mid, 2, DefaultIterationGain)
	if !(next > mid) {
		t.Errorf("between roots iterate should increase θ: %v -> %v", mid, next)
	}
	left := an.UnstableTheta * 0.9
	nextLeft := p.Iterate(left, 2, DefaultIterationGain)
	if !(nextLeft < left) {
		t.Errorf("left of unstable root iterate should decrease θ: %v -> %v", left, nextLeft)
	}
	right := an.StableTheta * 1.05
	nextRight := p.Iterate(right, 2, DefaultIterationGain)
	if !(nextRight < right) {
		t.Errorf("right of stable root iterate should decrease θ: %v -> %v", right, nextRight)
	}
}

func TestIterationConvergesToStableRoot(t *testing.T) {
	p := odroid()
	an, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	theta := 0.5 * (an.StableTheta + an.UnstableTheta)
	for i := 0; i < 10000; i++ {
		theta = p.Iterate(theta, 2, DefaultIterationGain)
	}
	if math.Abs(theta-an.StableTheta) > 1e-6 {
		t.Errorf("iteration converged to %v, want stable root %v", theta, an.StableTheta)
	}
}

func TestTimeToFixedPointBasics(t *testing.T) {
	p := odroid()
	an, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	// Already at the fixed point: zero time.
	dt, err := p.TimeToFixedPoint(2, an.StableTempK, 0.5, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if dt != 0 {
		t.Errorf("time from fixed point = %v, want 0", dt)
	}
	// From ambient: positive finite time.
	dt, err = p.TimeToFixedPoint(2, p.AmbientK, 0.5, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(dt, 1) || dt <= 0 {
		t.Errorf("time from ambient = %v, want positive finite", dt)
	}
}

func TestTimeToFixedPointRunawayIsInf(t *testing.T) {
	p := odroid()
	dt, err := p.TimeToFixedPoint(8, p.AmbientK, 0.5, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dt, 1) {
		t.Errorf("runaway time = %v, want +Inf", dt)
	}
}

func TestTimeToFixedPointMonotoneInDistance(t *testing.T) {
	p := odroid()
	near, err := p.TimeToFixedPoint(2, p.AmbientK+30, 0.5, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	far, err := p.TimeToFixedPoint(2, p.AmbientK, 0.5, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if !(far > near) {
		t.Errorf("farther start should take longer: near=%v far=%v", near, far)
	}
}

func TestTimeToThreshold(t *testing.T) {
	p := odroid()
	an, err := p.Analyze(3)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold below the fixed point is reached in finite time.
	th := p.AmbientK + 0.8*(an.StableTempK-p.AmbientK)
	dt, err := p.TimeToThreshold(3, p.AmbientK, th, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(dt, 1) || dt <= 0 {
		t.Errorf("time to sub-fixed-point threshold = %v", dt)
	}
	// Threshold above the fixed point is never reached.
	dt, err = p.TimeToThreshold(3, p.AmbientK, an.StableTempK+5, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dt, 1) {
		t.Errorf("time past fixed point = %v, want +Inf", dt)
	}
}

func TestTimeToThresholdValidation(t *testing.T) {
	p := odroid()
	if _, err := p.TimeToThreshold(2, -1, 300, 10); err == nil {
		t.Error("expected error for negative start temp")
	}
	if _, err := p.TimeToThreshold(2, 300, 310, 0); err == nil {
		t.Error("expected error for zero horizon")
	}
}

// Simulated trajectories respect the fixed-point structure: starting
// below the unstable point converges to the stable point; starting above
// it runs away.
func TestTrajectoryBasins(t *testing.T) {
	p := odroid()
	an, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	// Start midway between ambient and the unstable temperature.
	start := 0.5 * (an.StableTempK + an.UnstableTempK)
	dt, err := p.TimeToFixedPoint(2, start, 0.25, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(dt, 1) {
		t.Error("start inside basin should converge")
	}
	// Start above the unstable temperature: diverges, so the trajectory
	// reaches a high threshold in finite time.
	hot := an.UnstableTempK + 10
	dt, err = p.TimeToThreshold(2, hot, an.UnstableTempK+200, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(dt, 1) {
		t.Error("start above unstable point should run away")
	}
}

func TestPsiScaledMatchesFigure7Range(t *testing.T) {
	p := odroid()
	// At 2 W the scaled peak should be O(1) positive and the scaled value
	// at θ=2 should be a few units negative, matching the plot's [-4, 2].
	an, err := p.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	peak := p.PsiScaled(an.PeakTheta, 2)
	if peak < 0.5 || peak > 4 {
		t.Errorf("scaled peak at 2 W = %v, want O(1)", peak)
	}
	edge := p.PsiScaled(2.0, 2)
	if edge > -1 || edge < -10 {
		t.Errorf("scaled ψ(2) at 2 W = %v, want a few units negative", edge)
	}
}

func TestCriticalPowerUnstableAtZeroError(t *testing.T) {
	p := odroid()
	p.LeakScale = 10 // absurd leakage: unstable even at Pd = 0
	if _, err := p.CriticalPower(); err == nil {
		t.Error("expected error when unstable at zero power")
	}
}

func TestClassString(t *testing.T) {
	if Stable.String() != "stable" || CriticallyStable.String() != "critically-stable" || Runaway.String() != "runaway" {
		t.Error("class strings wrong")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should stringify")
	}
}
