package core

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func gameApp(seed int64) AppConfig {
	return AppConfig{App: workload.PaperIO(seed), Cluster: sched.Big, Threads: 2}
}

func TestNewScenarioValidates(t *testing.T) {
	if _, err := NewScenario(ScenarioConfig{}); err == nil {
		t.Error("no apps should fail")
	}
	if _, err := NewScenario(ScenarioConfig{Platform: "toaster", Apps: []AppConfig{gameApp(1)}}); err == nil {
		t.Error("unknown platform should fail")
	}
	if _, err := NewScenario(ScenarioConfig{Governor: "psychic", Apps: []AppConfig{gameApp(1)}}); err == nil {
		t.Error("unknown governor should fail")
	}
	if _, err := NewScenario(ScenarioConfig{Thermal: "prayer", Apps: []AppConfig{gameApp(1)}}); err == nil {
		t.Error("unknown thermal policy should fail")
	}
	if _, err := NewScenario(ScenarioConfig{Apps: []AppConfig{{}}}); err == nil {
		t.Error("nil app should fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Apps: []AppConfig{gameApp(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Platform().Name() != "nexus6p" {
		t.Errorf("default platform = %s, want nexus6p", sc.Platform().Name())
	}
	if sc.AppAware() != nil {
		t.Error("default scenario should not use the appaware governor")
	}
}

func TestRunAndSummary(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Apps:     []AppConfig{gameApp(3)},
		PrewarmC: 36,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(10); err != nil {
		t.Fatal(err)
	}
	sum := sc.Summary()
	if sum.DurationS != 10 {
		t.Errorf("duration = %v, want 10", sum.DurationS)
	}
	if sum.AvgPowerW <= 0 {
		t.Error("power should be positive")
	}
	if sum.MaxTempC < 36 {
		t.Errorf("max temp %v should be at least the prewarm", sum.MaxTempC)
	}
	if _, ok := sum.AppFPS["paper.io"]; !ok {
		t.Error("summary should report the frame app's FPS")
	}
	out := sum.String()
	for _, want := range []string{"ran 10s", "rail", "paper.io"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary text missing %q:\n%s", want, out)
		}
	}
}

func TestAppAwareScenarioMigrates(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Platform: PlatformOdroidXU3,
		Thermal:  ThermalAppAware,
		PrewarmC: 50,
		Apps: []AppConfig{
			{App: workload.NewThreeDMark(1), Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: newTestBML(), Cluster: sched.Big, Threads: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.AppAware() == nil {
		t.Fatal("appaware scenario should expose the governor")
	}
	if err := sc.Run(60); err != nil {
		t.Fatal(err)
	}
	if sc.Summary().Migrations == 0 {
		t.Error("hot 3DMark+BML scenario should trigger a migration")
	}
}

func newTestBML() *workload.BML {
	b := workload.NewBML()
	b.ExecuteRatio = 0
	return b
}

func TestAllGovernorChoicesBuild(t *testing.T) {
	for _, g := range []GovernorChoice{GovInteractive, GovOndemand, GovPerformance, GovPowersave, GovConservative} {
		sc, err := NewScenario(ScenarioConfig{Governor: g, Apps: []AppConfig{gameApp(1)}})
		if err != nil {
			t.Errorf("governor %s: %v", g, err)
			continue
		}
		if err := sc.Run(0.5); err != nil {
			t.Errorf("governor %s run: %v", g, err)
		}
	}
}

func TestAllThermalChoicesBuild(t *testing.T) {
	for _, th := range []ThermalChoice{ThermalNone, ThermalStepWise, ThermalIPA, ThermalAppAware} {
		sc, err := NewScenario(ScenarioConfig{Thermal: th, Apps: []AppConfig{gameApp(1)}})
		if err != nil {
			t.Errorf("thermal %s: %v", th, err)
			continue
		}
		if err := sc.Run(0.5); err != nil {
			t.Errorf("thermal %s run: %v", th, err)
		}
	}
}
