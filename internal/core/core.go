// Package core is the high-level entry point to the library: it
// composes the platform presets, CPUfreq governors, thermal governors,
// the application-aware controller (the paper's contribution) and the
// simulation engine behind a small scenario-builder API.
//
// A scenario is: a platform, a set of apps, a frequency-governor
// choice, and a thermal-management choice. Build one, run it, read the
// summary:
//
//	sc, err := core.NewScenario(core.ScenarioConfig{
//	    Platform: core.PlatformOdroidXU3,
//	    Thermal:  core.ThermalAppAware,
//	    Apps: []core.AppConfig{
//	        {App: workload.NewThreeDMark(1), Cluster: sched.Big, RealTime: true},
//	        {App: workload.NewBML(), Cluster: sched.Big},
//	    },
//	})
//	...
//	err = sc.Run(250)
//	fmt.Println(sc.Summary())
package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// PlatformChoice selects a device preset.
type PlatformChoice string

// Platform presets.
const (
	// PlatformNexus6P is the Snapdragon 810 phone of Section III.
	PlatformNexus6P PlatformChoice = "nexus6p"
	// PlatformOdroidXU3 is the Exynos 5422 board of Section IV.
	PlatformOdroidXU3 PlatformChoice = "odroid-xu3"
)

// GovernorChoice selects the CPUfreq governor family for all domains.
type GovernorChoice string

// Frequency governor choices.
const (
	// GovInteractive is the Android default (touch boost); used when
	// the choice is left empty.
	GovInteractive GovernorChoice = "interactive"
	// GovOndemand is the classic Linux load tracker.
	GovOndemand GovernorChoice = "ondemand"
	// GovPerformance pins maximum frequency.
	GovPerformance GovernorChoice = "performance"
	// GovPowersave pins minimum frequency.
	GovPowersave GovernorChoice = "powersave"
	// GovConservative steps one OPP at a time (battery-focused builds).
	GovConservative GovernorChoice = "conservative"
)

// ThermalChoice selects the thermal management policy.
type ThermalChoice string

// Thermal management choices.
const (
	// ThermalNone disables thermal management (the paper's baseline arm).
	ThermalNone ThermalChoice = "none"
	// ThermalStepWise is the Linux trip-point governor.
	ThermalStepWise ThermalChoice = "step-wise"
	// ThermalIPA is ARM intelligent power allocation.
	ThermalIPA ThermalChoice = "ipa"
	// ThermalAppAware is the paper's application-aware governor.
	ThermalAppAware ThermalChoice = "appaware"
)

// AppConfig attaches one application to a scenario.
type AppConfig struct {
	// App is the workload model (required).
	App workload.App
	// Cluster is the initial CPU placement (default LITTLE).
	Cluster sched.ClusterID
	// Threads bounds CPU parallelism (default 1).
	Threads int
	// RealTime registers the app with the application-aware governor so
	// it is never a migration victim.
	RealTime bool
}

// ScenarioConfig assembles a scenario.
type ScenarioConfig struct {
	// Platform selects the device preset (default Nexus 6P).
	Platform PlatformChoice
	// Apps lists the workloads (at least one required).
	Apps []AppConfig
	// Governor selects the CPUfreq governors (default interactive).
	Governor GovernorChoice
	// Thermal selects the thermal policy (default the platform's
	// realistic default: step-wise on the phone, IPA on the board).
	Thermal ThermalChoice
	// PrewarmC optionally starts all thermal nodes at this temperature.
	PrewarmC float64
	// Seed makes the run deterministic.
	Seed int64
}

// Scenario is a buildable, runnable simulation.
type Scenario struct {
	cfg      ScenarioConfig
	plat     *platform.Platform
	engine   *sim.Engine
	appaware *appaware.Governor
	apps     []AppConfig
}

// NewScenario validates cfg and wires the scenario.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("core: scenario needs at least one app")
	}
	if cfg.Platform == "" {
		cfg.Platform = PlatformNexus6P
	}
	if cfg.Governor == "" {
		cfg.Governor = GovInteractive
	}

	var plat *platform.Platform
	switch cfg.Platform {
	case PlatformNexus6P:
		plat = platform.Nexus6P(cfg.Seed)
	case PlatformOdroidXU3:
		plat = platform.OdroidXU3(cfg.Seed)
	default:
		return nil, fmt.Errorf("core: unknown platform %q", cfg.Platform)
	}
	if cfg.Thermal == "" {
		if cfg.Platform == PlatformNexus6P {
			cfg.Thermal = ThermalStepWise
		} else {
			cfg.Thermal = ThermalIPA
		}
	}

	govs := make(map[platform.DomainID]governor.Governor, 3)
	for _, id := range platform.DomainIDs() {
		g, err := buildGovernor(cfg.Governor)
		if err != nil {
			return nil, err
		}
		govs[id] = g
	}

	simCfg := sim.Config{
		Platform:  plat,
		Governors: govs,
	}
	sc := &Scenario{cfg: cfg, plat: plat, apps: append([]AppConfig(nil), cfg.Apps...)}
	switch cfg.Thermal {
	case ThermalNone:
		simCfg.Thermal = thermgov.None{}
	case ThermalStepWise:
		tg, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
			TripK:       plat.ThermalLimitK(),
			HysteresisK: 1,
			IntervalS:   0.3,
		})
		if err != nil {
			return nil, err
		}
		simCfg.Thermal = tg
	case ThermalIPA:
		tg, err := thermgov.NewIPA(thermgov.IPAConfig{
			ControlTempK:      plat.ThermalLimitK(),
			SustainablePowerW: 2.4,
			KPo:               0.17,
			KPu:               0.6,
			KI:                0.02,
			IntegralClampW:    0.8,
			IntervalS:         0.1,
		})
		if err != nil {
			return nil, err
		}
		simCfg.Thermal = tg
	case ThermalAppAware:
		sc.appaware = appaware.MustNew(appaware.Config{HorizonS: 30, IntervalS: 0.1})
		simCfg.Controller = sc.appaware // replaces the kernel thermal governor
	default:
		return nil, fmt.Errorf("core: unknown thermal policy %q", cfg.Thermal)
	}

	for i, a := range cfg.Apps {
		if a.App == nil {
			return nil, fmt.Errorf("core: app %d is nil", i)
		}
		threads := a.Threads
		if threads == 0 {
			threads = 1
		}
		simCfg.Apps = append(simCfg.Apps, sim.AppSpec{
			App:      a.App,
			PID:      i + 1,
			Cluster:  a.Cluster,
			Threads:  threads,
			RealTime: a.RealTime,
		})
	}

	eng, err := sim.New(simCfg)
	if err != nil {
		return nil, err
	}
	if cfg.PrewarmC != 0 {
		if err := plat.Prewarm(cfg.PrewarmC); err != nil {
			return nil, err
		}
	}
	sc.engine = eng
	return sc, nil
}

// buildGovernor constructs one fresh CPUfreq governor instance.
func buildGovernor(c GovernorChoice) (governor.Governor, error) {
	switch c {
	case GovInteractive:
		return governor.NewInteractive(governor.DefaultInteractiveConfig())
	case GovOndemand:
		return governor.NewOndemand(governor.DefaultOndemandConfig())
	case GovPerformance:
		return governor.Performance{}, nil
	case GovPowersave:
		return governor.Powersave{}, nil
	case GovConservative:
		return governor.NewConservative(governor.DefaultConservativeConfig())
	default:
		return nil, fmt.Errorf("core: unknown governor %q", c)
	}
}

// Run advances the scenario by durationS simulated seconds. It may be
// called repeatedly to continue a run.
func (s *Scenario) Run(durationS float64) error { return s.engine.Run(durationS) }

// Engine exposes the underlying simulation engine (traces, meter,
// scheduler) for detailed inspection.
func (s *Scenario) Engine() *sim.Engine { return s.engine }

// Platform exposes the device model.
func (s *Scenario) Platform() *platform.Platform { return s.plat }

// AppAware returns the application-aware governor when the scenario
// uses ThermalAppAware (nil otherwise).
func (s *Scenario) AppAware() *appaware.Governor { return s.appaware }

// Summary condenses a completed run into the numbers the paper reports.
type Summary struct {
	// DurationS is the simulated time.
	DurationS float64
	// MaxTempC is the hottest true node temperature seen.
	MaxTempC float64
	// SensorEndC is the final platform-sensor reading.
	SensorEndC float64
	// AvgPowerW is the run's average total power.
	AvgPowerW float64
	// RailShares is each rail's fraction of total energy.
	RailShares map[power.Rail]float64
	// AppFPS maps app name to median FPS (frame apps only).
	AppFPS map[string]float64
	// Migrations counts application-aware victim migrations.
	Migrations int
}

// Summary computes the run summary so far.
func (s *Scenario) Summary() Summary {
	sum := Summary{
		DurationS:  s.engine.Now(),
		MaxTempC:   thermal.ToCelsius(s.engine.MaxTempSeenK()),
		SensorEndC: thermal.ToCelsius(s.engine.SensorTempK()),
		AvgPowerW:  s.engine.Meter().AveragePowerW(),
		RailShares: s.engine.Meter().Shares(),
		AppFPS:     make(map[string]float64),
	}
	for _, a := range s.apps {
		if fr, ok := a.App.(workload.FPSReporter); ok {
			sum.AppFPS[a.App.Name()] = fr.MedianFPS()
		}
	}
	if s.appaware != nil {
		sum.Migrations = s.appaware.Migrations()
	}
	return sum
}

// String renders the summary as a short human-readable block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ran %.0fs  max %.1f°C  sensor %.1f°C  avg %.2f W\n",
		s.DurationS, s.MaxTempC, s.SensorEndC, s.AvgPowerW)
	for _, r := range power.Rails() {
		fmt.Fprintf(&b, "  rail %-6s %5.1f%%\n", r, s.RailShares[r]*100)
	}
	for name, fps := range s.AppFPS {
		if !math.IsNaN(fps) {
			fmt.Fprintf(&b, "  app %-14s median %.1f FPS\n", name, fps)
		}
	}
	if s.Migrations > 0 {
		fmt.Fprintf(&b, "  appaware migrations: %d\n", s.Migrations)
	}
	return b.String()
}
