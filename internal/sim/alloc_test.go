package sim_test

// Steady-state allocation regression tests for the flattened hot path.
// CI's benchmark smoke additionally gates BenchmarkEngineStep at
// 0 allocs/op; this test enforces the stronger invariant under plain
// `go test`, where a regression pinpoints the step loop directly.

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// newSteadyEngine builds the odroid 3dmark+bml scenario under IPA with
// recording disabled — the sweep pool's constant-memory configuration.
func newSteadyEngine(t *testing.T) *sim.Engine {
	t.Helper()
	plat := platform.OdroidXU3(1)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	ipa, err := thermgov.NewIPA(thermgov.DefaultIPAConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: workload.NewThreeDMark(1), PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: littleGov,
			platform.DomBig:    bigGov,
			platform.DomGPU:    gpuGov,
		},
		Thermal:          ipa,
		DisableRecording: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.Prewarm(50); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestStepZeroAllocSteadyState asserts the tentpole invariant: once
// warmed up, the full step path — demand, governors, IPA thermal
// control, scheduling, power, RK4 integration, sampling — performs zero
// allocations per step. The only tolerated residual is the workload
// layer's once-per-simulated-second FPS bucket append, which the
// 0.01 allocs/step budget admits while still catching any real per-step
// allocation (the pre-refactor loop ran at ~15 allocs/step).
func TestStepZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation warm-up")
	}
	eng := newSteadyEngine(t)
	// Warm up past sensor, governor and window start-up transients.
	if err := eng.Run(2.0); err != nil {
		t.Fatal(err)
	}
	const runs, stepsPerRun = 100, 10
	avgPerRun := testing.AllocsPerRun(runs, func() {
		if err := eng.RunSteps(stepsPerRun); err != nil {
			t.Fatal(err)
		}
	})
	if perStep := avgPerRun / stepsPerRun; perStep > 0.01 {
		t.Fatalf("steady-state step loop allocates: %.3f allocs/step (want ~0)", perStep)
	}
}

// TestBatchStepZeroAllocSteadyState extends the strict gate to the
// batched lockstep path: once warmed up, a fused step across four
// lanes — per-lane pre/post phases plus the shared SoA thermal kernel
// — must perform zero allocations, with the same sub-1%-of-a-step
// budget for the workload layer's amortized FPS bucket appends.
func TestBatchStepZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation warm-up")
	}
	const lanes = 4
	engines := make([]*sim.Engine, lanes)
	for i := range engines {
		engines[i] = newSteadyEngine(t)
	}
	be, err := sim.NewBatchEngine(engines)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.RunSteps(2000); err != nil {
		t.Fatal(err)
	}
	const runs, stepsPerRun = 100, 10
	avgPerRun := testing.AllocsPerRun(runs, func() {
		if err := be.RunSteps(stepsPerRun); err != nil {
			t.Fatal(err)
		}
	})
	if perStep := avgPerRun / stepsPerRun; perStep > 0.01*lanes {
		t.Fatalf("steady-state batched step allocates: %.3f allocs/step across %d lanes (want ~0)", perStep, lanes)
	}
}
