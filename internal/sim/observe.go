package sim

import (
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// Sample is one periodic observation of a running simulation, published
// to every registered Observer once per TracePeriodS. It carries the
// same quantities the engine's built-in traces record: true node
// temperatures, the sensed temperature, per-rail power and per-domain
// frequencies.
//
// The engine reuses the sample's slices between publishes; observers
// that retain data past the OnSample call must copy it.
type Sample struct {
	// TimeS is the simulation time of the observation.
	TimeS float64
	// NodeTempK holds true node temperatures (K), indexed by
	// thermal.NodeID; Engine.NodeNames gives the matching names.
	NodeTempK []float64
	// MaxTempK is the hottest node temperature (K).
	MaxTempK float64
	// SensorK is the governor-facing sensed temperature (K).
	SensorK float64
	// TotalW is the total platform power (W) of the current step.
	TotalW float64
	// RailW holds per-rail power (W), indexed by power.Rail.
	RailW []float64
	// FreqHz holds per-domain frequencies, indexed by platform.DomainID.
	FreqHz []uint64
}

// Observer consumes periodic samples from a running engine. The step
// loop builds and publishes samples on the trace period regardless of
// how many observers are attached (even zero), so registering or
// removing observers can never change the simulation's dynamics — a
// requirement of the bitwise-determinism invariant.
//
// An OnSample error aborts the run.
type Observer interface {
	// OnSample receives one observation. The sample's slices are reused
	// by the engine; copy anything retained.
	OnSample(s *Sample) error
}

// RecordingSink is the built-in Observer materializing every sample
// into trace.Series buffers — the engine's historical getter-based
// trace API, now expressed as one observer among possibly many. Runs
// that only need streaming aggregates can disable it
// (Config.DisableRecording) and attach constant-memory observers
// instead.
type RecordingSink struct {
	nodeNames []string
	temp      map[string]*trace.Series
	maxTemp   *trace.Series
	sensor    *trace.Series
	total     *trace.Series
	rail      map[power.Rail]*trace.Series
	freq      map[platform.DomainID]*trace.Series
}

// NewRecordingSink builds a sink with empty series for every node,
// rail and domain of the platform.
func NewRecordingSink(p *platform.Platform) *RecordingSink {
	r := &RecordingSink{
		temp:    make(map[string]*trace.Series),
		maxTemp: trace.NewSeries("temp:max", "°C"),
		sensor:  trace.NewSeries("sensor", "°C"),
		total:   trace.NewSeries("power:total", "W"),
		rail:    make(map[power.Rail]*trace.Series),
		freq:    make(map[platform.DomainID]*trace.Series),
	}
	for i := 0; i < p.Net.NumNodes(); i++ {
		name := p.Net.NodeName(thermal.NodeID(i))
		r.nodeNames = append(r.nodeNames, name)
		r.temp[name] = trace.NewSeries("temp:"+name, "°C")
	}
	for _, rl := range power.Rails() {
		r.rail[rl] = trace.NewSeries("power:"+rl.String(), "W")
	}
	for _, id := range platform.DomainIDs() {
		r.freq[id] = trace.NewSeries("freq:"+id.String(), "Hz")
	}
	return r
}

// OnSample implements Observer by appending every channel to its series.
func (r *RecordingSink) OnSample(s *Sample) error {
	for i, k := range s.NodeTempK {
		r.temp[r.nodeNames[i]].MustAppend(s.TimeS, thermal.ToCelsius(k))
	}
	r.maxTemp.MustAppend(s.TimeS, thermal.ToCelsius(s.MaxTempK))
	r.sensor.MustAppend(s.TimeS, thermal.ToCelsius(s.SensorK))
	r.total.MustAppend(s.TimeS, s.TotalW)
	for rl, series := range r.rail {
		series.MustAppend(s.TimeS, s.RailW[rl])
	}
	for id, series := range r.freq {
		series.MustAppend(s.TimeS, float64(s.FreqHz[id]))
	}
	return nil
}

// NodeTempSeries returns the true temperature trace (°C) of a node; ok
// is false for unknown node names.
func (r *RecordingSink) NodeTempSeries(name string) (*trace.Series, bool) {
	s, ok := r.temp[name]
	return s, ok
}

// MaxTempSeries returns the hottest-node temperature trace (°C).
func (r *RecordingSink) MaxTempSeries() *trace.Series { return r.maxTemp }

// SensorSeries returns the sensed-temperature trace (°C).
func (r *RecordingSink) SensorSeries() *trace.Series { return r.sensor }

// TotalPowerSeries returns the total power trace (W).
func (r *RecordingSink) TotalPowerSeries() *trace.Series { return r.total }

// RailPowerSeries returns one rail's power trace (W); ok is false for
// unknown rails.
func (r *RecordingSink) RailPowerSeries(rl power.Rail) (*trace.Series, bool) {
	s, ok := r.rail[rl]
	return s, ok
}

// FreqSeries returns one domain's frequency trace (Hz); ok is false for
// unknown domains.
func (r *RecordingSink) FreqSeries(id platform.DomainID) (*trace.Series, bool) {
	s, ok := r.freq[id]
	return s, ok
}
