package sim

import (
	"fmt"

	"repro/internal/snapbin"
)

// Engine snapshot/restore: full bitwise serialization of the mutable
// simulation state into a versioned binary blob. A snapshot taken at
// step N and restored into a fresh engine built from the *same* config
// continues bit-identically to the uninterrupted run — the property the
// sweep warm-start path and its tests pin.
//
// The blob captures state, not structure: platform topology, OPP
// tables, app scripts, governor gains and step sizes all come from the
// config the restoring engine was built with. Restore performs
// structural sanity checks (slice lengths, PIDs, table membership) but
// cannot detect every config mismatch; restoring into an engine built
// from a different config is undefined.
//
// Not captured: recorded trace series (the RecordingSink) and DAQ
// sample series. Restored engines resume publishing observer samples
// on the original cadence, but history from before the snapshot exists
// only in the engine that recorded it. Warm-started sweep cells run
// with recording disabled, so nothing is lost on that path.

// Snapshot blob framing.
const (
	// snapMagic marks an engine snapshot blob ("MOBISNAP" as little-
	// endian u64 ASCII).
	snapMagic uint64 = 0x50414e5349424f4d
	// snapVersion is bumped whenever the serialized layout changes.
	snapVersion uint64 = 1
)

// Section tags: cheap misalignment insurance between components.
const (
	tagEngine uint64 = 0xE0 + iota
	tagWindows
	tagMeter
	tagPlatform
	tagThermal
	tagSensor
	tagDomains
	tagSched
	tagGovernors
	tagThermGov
	tagController
	tagApps
	tagDAQ
	tagEnd
)

// stateCodec is the per-component serialization contract. Components
// are not required to implement a shared exported interface; the sim
// layer type-asserts so that adding a stateful governor, controller or
// app without snapshot support fails loudly at Snapshot time instead
// of silently corrupting warm-started sweeps.
type stateCodec interface {
	SaveState(*snapbin.Writer)
	LoadState(*snapbin.Reader) error
}

// codecFor asserts that component implements stateCodec.
func codecFor(role string, component interface{ Name() string }) (stateCodec, error) {
	c, ok := component.(stateCodec)
	if !ok {
		return nil, fmt.Errorf("sim: %s %q does not implement snapshot state save/load", role, component.Name())
	}
	return c, nil
}

// Snapshot serializes the engine's complete mutable state into a fresh
// versioned blob. See SnapshotTo for the reusable-buffer form.
func (e *Engine) Snapshot() ([]byte, error) {
	var w snapbin.Writer
	if err := e.SnapshotTo(&w); err != nil {
		return nil, err
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// SnapshotTo appends the engine's snapshot to w without resetting it;
// callers that reuse a Writer across snapshots (the sweep sentinel
// loop) Reset it themselves. The only error source is a component that
// does not implement state serialization.
func (e *Engine) SnapshotTo(w *snapbin.Writer) error {
	w.PutU64(snapMagic)
	w.PutU64(snapVersion)

	// Engine scalar state.
	w.PutTag(tagEngine)
	w.PutF64(e.now)
	w.PutU64(e.stepCount)
	for i := 0; i < 3; i++ {
		w.PutF64(e.nextGovS[i])
		w.PutF64(e.utilAccum[i])
		w.PutF64(e.loadAccum[i])
		w.PutF64(e.utilTime[i])
		w.PutBool(e.touched[i])
		w.PutF64(e.lastUtil[i])
		w.PutF64(e.lastLoad[i])
	}
	w.PutF64(e.nextThermS)
	w.PutF64(e.nextCtrlS)
	w.PutF64(e.nextTraceS)
	w.PutF64(e.maxTempSeen)
	w.PutF64s(e.gpuDemand)
	w.PutF64s(e.gpuAchieved)
	w.PutF64s(e.powers)

	// Power windows: the dynamic-power window plus per-task windows in
	// app-spec order (the canonical PID order everywhere else).
	w.PutTag(tagWindows)
	e.dynWindow.SaveState(w)
	for _, a := range e.apps {
		w.PutInt(a.PID)
		e.taskPower[a.PID].SaveState(w)
	}

	w.PutTag(tagMeter)
	e.meter.SaveState(w)

	// Platform: hot-pluggable online core counts per domain.
	w.PutTag(tagPlatform)
	for _, id := range domainIDs {
		w.PutInt(e.plat.OnlineCores(id))
	}

	// Thermal network node temperatures.
	w.PutTag(tagThermal)
	w.PutF64s(e.plat.Net.TempsView())

	w.PutTag(tagSensor)
	e.plat.Sensor.SaveState(w)

	w.PutTag(tagDomains)
	for _, id := range domainIDs {
		e.plat.Domain(id).SaveState(w)
	}

	w.PutTag(tagSched)
	e.sched.SaveState(w)

	w.PutTag(tagGovernors)
	for _, id := range domainIDs {
		c, err := codecFor("governor", e.cfg.Governors[id])
		if err != nil {
			return err
		}
		c.SaveState(w)
	}

	w.PutTag(tagThermGov)
	w.PutBool(e.cfg.Thermal != nil)
	if e.cfg.Thermal != nil {
		c, err := codecFor("thermal governor", e.cfg.Thermal)
		if err != nil {
			return err
		}
		c.SaveState(w)
	}

	w.PutTag(tagController)
	w.PutBool(e.cfg.Controller != nil)
	if e.cfg.Controller != nil {
		c, err := codecFor("controller", e.cfg.Controller)
		if err != nil {
			return err
		}
		c.SaveState(w)
	}

	w.PutTag(tagApps)
	for _, a := range e.apps {
		c, err := codecFor("app", a.App)
		if err != nil {
			return err
		}
		w.PutInt(a.PID)
		c.SaveState(w)
	}

	w.PutTag(tagDAQ)
	w.PutBool(e.cfg.DAQ != nil)
	if e.cfg.DAQ != nil {
		e.cfg.DAQ.SaveState(w)
	}

	w.PutTag(tagEnd)
	return nil
}

// Restore loads a snapshot previously produced by Snapshot/SnapshotTo
// into an engine built from the same config. On success the engine
// continues bit-identically to the engine the snapshot was taken from;
// on error the engine may be partially overwritten and must not be
// stepped further.
func (e *Engine) Restore(blob []byte) error {
	r := snapbin.NewReader(blob)
	if magic := r.U64(); magic != snapMagic && r.Err() == nil {
		return fmt.Errorf("sim: restore: not an engine snapshot (magic %#x)", magic)
	}
	if v := r.U64(); v != snapVersion && r.Err() == nil {
		return fmt.Errorf("sim: restore: snapshot version %d, engine supports %d", v, snapVersion)
	}

	r.Tag(tagEngine)
	e.now = r.F64()
	e.stepCount = r.U64()
	for i := 0; i < 3; i++ {
		e.nextGovS[i] = r.F64()
		e.utilAccum[i] = r.F64()
		e.loadAccum[i] = r.F64()
		e.utilTime[i] = r.F64()
		e.touched[i] = r.Bool()
		e.lastUtil[i] = r.F64()
		e.lastLoad[i] = r.F64()
	}
	e.nextThermS = r.F64()
	e.nextCtrlS = r.F64()
	e.nextTraceS = r.F64()
	e.maxTempSeen = r.F64()
	r.F64sInto(e.gpuDemand)
	r.F64sInto(e.gpuAchieved)
	r.F64sInto(e.powers)
	if err := r.Err(); err != nil {
		return fmt.Errorf("sim: restore: engine state: %w", err)
	}

	r.Tag(tagWindows)
	if err := e.dynWindow.LoadState(r); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	for _, a := range e.apps {
		pid := r.Int()
		if r.Err() == nil && pid != a.PID {
			return fmt.Errorf("sim: restore: task window PID %d, engine has %d", pid, a.PID)
		}
		if err := e.taskPower[a.PID].LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: task %d: %w", a.PID, err)
		}
	}

	r.Tag(tagMeter)
	if err := e.meter.LoadState(r); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}

	r.Tag(tagPlatform)
	for _, id := range domainIDs {
		n := r.Int()
		if r.Err() == nil {
			e.plat.SetOnlineCores(id, n)
		}
	}

	r.Tag(tagThermal)
	r.F64sInto(e.plat.Net.TempsView())
	if err := r.Err(); err != nil {
		return fmt.Errorf("sim: restore: thermal state: %w", err)
	}

	r.Tag(tagSensor)
	if err := e.plat.Sensor.LoadState(r); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}

	r.Tag(tagDomains)
	for _, id := range domainIDs {
		if err := e.plat.Domain(id).LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}

	r.Tag(tagSched)
	if err := e.sched.LoadState(r); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}

	r.Tag(tagGovernors)
	for _, id := range domainIDs {
		c, err := codecFor("governor", e.cfg.Governors[id])
		if err != nil {
			return err
		}
		if err := c.LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: domain %s: %w", id, err)
		}
	}

	r.Tag(tagThermGov)
	hadThermal := r.Bool()
	if r.Err() == nil && hadThermal != (e.cfg.Thermal != nil) {
		return fmt.Errorf("sim: restore: snapshot thermal-governor presence %v, engine has %v", hadThermal, e.cfg.Thermal != nil)
	}
	if e.cfg.Thermal != nil {
		c, err := codecFor("thermal governor", e.cfg.Thermal)
		if err != nil {
			return err
		}
		if err := c.LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}

	r.Tag(tagController)
	hadCtrl := r.Bool()
	if r.Err() == nil && hadCtrl != (e.cfg.Controller != nil) {
		return fmt.Errorf("sim: restore: snapshot controller presence %v, engine has %v", hadCtrl, e.cfg.Controller != nil)
	}
	if e.cfg.Controller != nil {
		c, err := codecFor("controller", e.cfg.Controller)
		if err != nil {
			return err
		}
		if err := c.LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}

	r.Tag(tagApps)
	for _, a := range e.apps {
		c, err := codecFor("app", a.App)
		if err != nil {
			return err
		}
		pid := r.Int()
		if r.Err() == nil && pid != a.PID {
			return fmt.Errorf("sim: restore: app PID %d, engine has %d", pid, a.PID)
		}
		if err := c.LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: app %d: %w", a.PID, err)
		}
	}

	r.Tag(tagDAQ)
	hadDAQ := r.Bool()
	if r.Err() == nil && hadDAQ != (e.cfg.DAQ != nil) {
		return fmt.Errorf("sim: restore: snapshot DAQ presence %v, engine has %v", hadDAQ, e.cfg.DAQ != nil)
	}
	if e.cfg.DAQ != nil {
		if err := e.cfg.DAQ.LoadState(r); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}

	r.Tag(tagEnd)
	if err := r.Err(); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("sim: restore: %d trailing bytes after snapshot", n)
	}

	// The batched fast path caches a signature of platform state;
	// restoring behind its back invalidates the memo.
	e.fast.sigValid = false
	return nil
}

// ControllerTickPending reports whether the custom controller will run
// a control decision on the engine's next step. The sweep warm-start
// sentinel snapshots immediately before pending ticks: between two
// controller actions, cells that differ only in the controller's
// thermal limit are bit-identical, so a checkpoint taken here is a
// valid fork point for every cell whose controller has not acted yet.
func (e *Engine) ControllerTickPending() bool {
	return e.cfg.Controller != nil && e.now+1e-12 >= e.nextCtrlS
}
