package sim

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/thermgov"
)

// TestCriticalTripHotplugsCores drives the platform past the step-wise
// governor's critical trip and checks that cores are powered off (the
// paper's Section I extreme case) and come back as it cools.
func TestCriticalTripHotplugsCores(t *testing.T) {
	sw, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
		TripK:       thermal.ToKelvin(40),
		HysteresisK: 1,
		CriticalK:   thermal.ToKelvin(48),
		IntervalS:   0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := &steadyApp{name: "inferno", cpuHz: 8e9, gpuHz: 600e6}
	cfg := baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 4})
	cfg.Thermal = sw
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plat := e.Platform()
	// Force the platform well past critical before the governor runs.
	if err := plat.Prewarm(60); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if got := plat.OnlineCores(platform.DomBig); got != 1 {
		t.Fatalf("big online cores = %d, want 1 at critical trip", got)
	}
	if got := plat.OnlineCores(platform.DomLittle); got != 1 {
		t.Errorf("little online cores = %d, want 1 at critical trip", got)
	}
	// With one core at minimum frequency the app's grant collapses.
	capac := float64(plat.Domain(platform.DomBig).CurrentHz())
	if capac != float64(plat.Domain(platform.DomBig).Table().Min().FreqHz) {
		t.Errorf("big frequency %v, want table min under critical trip", capac)
	}
	// Cool far below the trip and run: cores must come back online
	// before caps fully lift (one per polling interval).
	if err := plat.Prewarm(30); err != nil {
		t.Fatal(err)
	}
	app.cpuHz, app.gpuHz = 0, 0 // stop heating
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := plat.OnlineCores(platform.DomBig); got != plat.Cores(platform.DomBig) {
		t.Errorf("big online cores = %d after cooling, want all %d back",
			got, plat.Cores(platform.DomBig))
	}
	if got := plat.Domain(platform.DomBig).Cap(); got != 0 {
		t.Errorf("big cap = %d after cooling, want cleared", got)
	}
}

// TestSetOnlineCoresClamps checks the hotplug bounds.
func TestSetOnlineCoresClamps(t *testing.T) {
	p := platform.OdroidXU3(1)
	p.SetOnlineCores(platform.DomBig, 0)
	if p.OnlineCores(platform.DomBig) != 1 {
		t.Error("hotplug must keep at least one core online")
	}
	p.SetOnlineCores(platform.DomBig, 99)
	if p.OnlineCores(platform.DomBig) != p.Cores(platform.DomBig) {
		t.Error("hotplug must clamp to the physical core count")
	}
	p.SetOnlineCores(platform.DomBig, 2)
	if p.OnlineCores(platform.DomBig) != 2 {
		t.Error("hotplug should accept in-range values")
	}
}

// TestOfflineCoresReduceCapacity verifies the scheduler sees reduced
// capacity when cores are off.
func TestOfflineCoresReduceCapacity(t *testing.T) {
	run := func(online int) float64 {
		app := &steadyApp{name: "a", cpuHz: 1e12}
		e, err := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 4}))
		if err != nil {
			t.Fatal(err)
		}
		e.Platform().SetOnlineCores(platform.DomBig, online)
		g := map[platform.DomainID]governor.Governor{
			platform.DomLittle: governor.Performance{},
			platform.DomBig:    governor.Performance{},
			platform.DomGPU:    governor.Performance{},
		}
		_ = g
		if err := e.Run(1); err != nil {
			t.Fatal(err)
		}
		return app.gotCPU
	}
	full := run(4)
	half := run(2)
	if half >= full*0.75 {
		t.Errorf("2-core grant %v not clearly below 4-core grant %v", half, full)
	}
}
