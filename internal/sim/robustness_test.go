package sim

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/thermgov"
)

// noisyPlatform builds a single-cluster platform whose governor-facing
// sensor is degraded: heavy Gaussian noise, coarse quantization, and a
// 30% sample-drop rate. Failure injection for the control loop.
func noisyPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	table := dvfs.MustTable(
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.9},
		dvfs.OPP{FreqHz: 1000e6, VoltageV: 1.0},
		dvfs.OPP{FreqHz: 2000e6, VoltageV: 1.2},
	)
	model := power.DomainModel{
		Name: "cpu", CeffF: 6e-10, IdleW: 0.03,
		Leakage: power.LeakageParams{K: 2e-4, Q: 1800},
	}
	gpuModel := model
	gpuModel.Name = "gpu"
	p, err := platform.New(platform.Spec{
		Name:     "noisy",
		AmbientC: 25,
		Nodes: []platform.NodeSpec{
			{Name: "soc", CapacitanceJPerK: 0.5, GAmbientWPerK: 0.2},
		},
		Domains: []platform.DomainSpec{
			{ID: platform.DomLittle, Table: table, Cores: 4, Model: model, Rail: power.RailLittle, NodeName: "soc"},
			{ID: platform.DomBig, Table: table, Cores: 4, Model: model, Rail: power.RailBig, NodeName: "soc"},
			{ID: platform.DomGPU, Table: table, Cores: 1, Model: gpuModel, Rail: power.RailGPU, NodeName: "soc"},
		},
		SensorNode:        "soc",
		SensorPeriodS:     0.01,
		SensorNoiseK:      1.5, // heavy noise
		SensorResolutionK: 0.5, // coarse ADC
		ThermalLimitC:     50,
		Seed:              11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestThrottlingRobustToSensorNoise injects sensor degradation and
// checks the step-wise governor still bounds the temperature: noisy
// readings may cause extra cap churn but must not defeat control.
func TestThrottlingRobustToSensorNoise(t *testing.T) {
	run := func(throttle bool) float64 {
		app := &steadyApp{name: "hot", cpuHz: 8e9, gpuHz: 2e9}
		cfg := Config{
			Platform: noisyPlatform(t),
			Apps:     []AppSpec{{App: app, PID: 1, Cluster: sched.Big, Threads: 4}},
			Governors: map[platform.DomainID]governor.Governor{
				platform.DomLittle: governor.Performance{},
				platform.DomBig:    governor.Performance{},
				platform.DomGPU:    governor.Performance{},
			},
		}
		if throttle {
			sw, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
				TripK:       thermal.ToKelvin(45),
				HysteresisK: 2,
				IntervalS:   0.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Thermal = sw
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(30); err != nil {
			t.Fatal(err)
		}
		return thermal.ToCelsius(e.MaxTempSeenK())
	}
	free := run(false)
	throttled := run(true)
	if free < 50 {
		t.Fatalf("unthrottled run too cool (%.1f°C) for the test to bite", free)
	}
	// Even with a degraded sensor the governor must hold the line near
	// the trip: allow a few degrees of noise-induced overshoot.
	if throttled > 49 {
		t.Errorf("throttled max = %.1f°C with noisy sensor, want < 49 (trip 45)", throttled)
	}
}

// TestSensorDropoutStillControls repeats the experiment with a lossy
// sensor bus: 30% of samples never arrive (the sensor repeats stale
// values). Control must still hold.
func TestSensorDropoutStillControls(t *testing.T) {
	table := dvfs.MustTable(
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.9},
		dvfs.OPP{FreqHz: 2000e6, VoltageV: 1.2},
	)
	model := power.DomainModel{
		Name: "cpu", CeffF: 6e-10, IdleW: 0.03,
		Leakage: power.LeakageParams{K: 2e-4, Q: 1800},
	}
	p, err := platform.New(platform.Spec{
		Name:     "lossy",
		AmbientC: 25,
		Nodes: []platform.NodeSpec{
			{Name: "soc", CapacitanceJPerK: 0.5, GAmbientWPerK: 0.2},
		},
		Domains: []platform.DomainSpec{
			{ID: platform.DomLittle, Table: table, Cores: 4, Model: model, Rail: power.RailLittle, NodeName: "soc"},
			{ID: platform.DomBig, Table: table, Cores: 4, Model: model, Rail: power.RailBig, NodeName: "soc"},
			{ID: platform.DomGPU, Table: table, Cores: 1, Model: model, Rail: power.RailGPU, NodeName: "soc"},
		},
		SensorNode:    "soc",
		SensorPeriodS: 0.01,
		ThermalLimitC: 50,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the sensor with a lossy one.
	node, _ := p.NodeByName("soc")
	lossy, err := thermal.NewSensor(p.Net, thermal.SensorConfig{
		Name: "lossy", Node: node, PeriodS: 0.01, DropProb: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Sensor = lossy

	sw, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
		TripK:       thermal.ToKelvin(45),
		HysteresisK: 2,
		IntervalS:   0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := &steadyApp{name: "hot", cpuHz: 8e9, gpuHz: 2e9}
	e, err := New(Config{
		Platform: p,
		Apps:     []AppSpec{{App: app, PID: 1, Cluster: sched.Big, Threads: 4}},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: governor.Performance{},
			platform.DomBig:    governor.Performance{},
			platform.DomGPU:    governor.Performance{},
		},
		Thermal: sw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	if got := thermal.ToCelsius(e.MaxTempSeenK()); got > 49 {
		t.Errorf("max = %.1f°C with 30%% sensor drops, want < 49", got)
	}
	if lossy.Drops() == 0 {
		t.Error("expected some injected sensor drops")
	}
}
