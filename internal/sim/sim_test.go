package sim

import (
	"math"
	"testing"

	"repro/internal/daq"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// steadyApp is a trivially steady workload for engine tests.
type steadyApp struct {
	name   string
	cpuHz  float64
	gpuHz  float64
	gotCPU float64
	gotGPU float64
	steps  int
}

func (a *steadyApp) Name() string { return a.name }
func (a *steadyApp) Demand(nowS float64) workload.Demand {
	return workload.Demand{CPUHz: a.cpuHz, GPUHz: a.gpuHz}
}
func (a *steadyApp) Advance(nowS, dt float64, r workload.Resources) {
	a.gotCPU += r.CPUSpeedHz * dt
	a.gotGPU += r.GPUSpeedHz * dt
	a.steps++
}

func perfGovernors() map[platform.DomainID]governor.Governor {
	return map[platform.DomainID]governor.Governor{
		platform.DomLittle: governor.Performance{},
		platform.DomBig:    governor.Performance{},
		platform.DomGPU:    governor.Performance{},
	}
}

func baseConfig(apps ...AppSpec) Config {
	return Config{
		Platform:  platform.OdroidXU3(1),
		Apps:      apps,
		Governors: perfGovernors(),
	}
}

func TestNewValidates(t *testing.T) {
	app := AppSpec{App: &steadyApp{name: "a"}, PID: 1, Cluster: sched.Big, Threads: 1}
	cases := []struct {
		name string
		f    func(*Config)
	}{
		{"nil platform", func(c *Config) { c.Platform = nil }},
		{"no apps", func(c *Config) { c.Apps = nil }},
		{"missing governor", func(c *Config) { delete(c.Governors, platform.DomGPU) }},
		{"bad step", func(c *Config) { c.StepS = -1 }},
		{"huge step", func(c *Config) { c.StepS = 1 }},
		{"trace below step", func(c *Config) { c.StepS = 0.01; c.TracePeriodS = 0.001 }},
		{"window below step", func(c *Config) { c.StepS = 0.01; c.TaskWindowS = 0.001 }},
		{"nil app", func(c *Config) { c.Apps = []AppSpec{{PID: 1}} }},
		{"duplicate pid", func(c *Config) { c.Apps = append(c.Apps, c.Apps[0]) }},
	}
	for _, tc := range cases {
		cfg := baseConfig(app)
		tc.f(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New(baseConfig(app)); err != nil {
		t.Errorf("base config should build: %v", err)
	}
}

func TestRunAdvancesTime(t *testing.T) {
	e, err := New(baseConfig(AppSpec{App: &steadyApp{name: "a", cpuHz: 1e9}, PID: 1, Cluster: sched.Big}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(0.5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Now()-0.5) > 1e-9 {
		t.Errorf("now = %v, want 0.5", e.Now())
	}
	if err := e.Run(-1); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestCPUBoundAppGetsDemand(t *testing.T) {
	app := &steadyApp{name: "a", cpuHz: 1e9}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 1}))
	if err := e.Run(1.0); err != nil {
		t.Fatal(err)
	}
	// Performance governor: big at 2 GHz, demand 1 GHz on one thread —
	// fully granted.
	if math.Abs(app.gotCPU-1e9) > 2e7 {
		t.Errorf("granted CPU cycles = %v, want ~1e9", app.gotCPU)
	}
}

func TestThreadBoundLimitsGrant(t *testing.T) {
	// One thread cannot exceed the core clock even with spare cluster
	// capacity (BML's saturating-one-core behavior).
	app := &steadyApp{name: "bml", cpuHz: 1e12}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 1}))
	if err := e.Run(1.0); err != nil {
		t.Fatal(err)
	}
	want := 2e9 // A15 max clock
	if math.Abs(app.gotCPU-want) > 4e7 {
		t.Errorf("granted = %v, want ~%v (one core at 2 GHz)", app.gotCPU, want)
	}
}

func TestGPUSharingProportional(t *testing.T) {
	heavy := &steadyApp{name: "h", gpuHz: 600e6}
	light := &steadyApp{name: "l", gpuHz: 300e6}
	e, _ := New(baseConfig(
		AppSpec{App: heavy, PID: 1, Cluster: sched.Big},
		AppSpec{App: light, PID: 2, Cluster: sched.Little},
	))
	if err := e.Run(1.0); err != nil {
		t.Fatal(err)
	}
	// Demand 900 MHz total vs 600 MHz capacity: grants scale by 2/3.
	if heavy.gotGPU <= light.gotGPU {
		t.Errorf("heavy %v <= light %v; proportionality violated", heavy.gotGPU, light.gotGPU)
	}
	ratio := heavy.gotGPU / light.gotGPU
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("grant ratio = %v, want ~2", ratio)
	}
	total := heavy.gotGPU + light.gotGPU
	if math.Abs(total-600e6) > 2e7 {
		t.Errorf("total GPU grant = %v, want ~600e6 (saturated)", total)
	}
}

func TestTemperatureRisesUnderLoad(t *testing.T) {
	app := &steadyApp{name: "hot", cpuHz: 8e9, gpuHz: 600e6}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 4}))
	start := e.SensorTempK()
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	end := e.SensorTempK()
	if end-start < 5 {
		t.Errorf("sensor rose only %.2f K in 30 s under full load", end-start)
	}
	if e.MaxTempSeenK() < end-1 {
		t.Errorf("max seen %v below final %v", e.MaxTempSeenK(), end)
	}
}

func TestIdlePlatformStaysCool(t *testing.T) {
	app := &steadyApp{name: "idle"}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Little}))
	// Use powersave so even governor choice is minimal.
	e.cfg.Governors[platform.DomBig] = governor.Powersave{}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	rise := e.SensorTempK() - e.Platform().AmbientK()
	if rise > 8 {
		t.Errorf("idle platform rose %.2f K, want < 8", rise)
	}
}

func TestMeterAccumulatesAllRails(t *testing.T) {
	app := &steadyApp{name: "a", cpuHz: 4e9, gpuHz: 300e6}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 4}))
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	m := e.Meter()
	if m.TotalEnergyJ() <= 0 {
		t.Fatal("no energy recorded")
	}
	for _, r := range power.Rails() {
		if m.EnergyJ(r) <= 0 {
			t.Errorf("rail %s has zero energy", r)
		}
	}
	if math.Abs(m.Elapsed()-2) > 1e-6 {
		t.Errorf("elapsed = %v, want 2", m.Elapsed())
	}
}

func TestTracesRecorded(t *testing.T) {
	app := &steadyApp{name: "a", cpuHz: 1e9, gpuHz: 100e6}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big}))
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if e.NodeTempSeries("big").Len() != 10 {
		t.Errorf("big temp trace has %d points, want 10 (100 ms period over 1 s)", e.NodeTempSeries("big").Len())
	}
	if e.SensorSeries().Len() == 0 || e.TotalPowerSeries().Len() == 0 {
		t.Error("sensor/power traces empty")
	}
	for _, id := range platform.DomainIDs() {
		if e.FreqSeries(id).Len() == 0 {
			t.Errorf("freq trace for %s empty", id)
		}
	}
	if e.RailPowerSeries(power.RailGPU).Len() == 0 {
		t.Error("gpu rail trace empty")
	}
}

func TestTaskPowerAttribution(t *testing.T) {
	hungry := &steadyApp{name: "hungry", cpuHz: 8e9}
	idle := &steadyApp{name: "idle", cpuHz: 1e7}
	e, _ := New(baseConfig(
		AppSpec{App: hungry, PID: 1, Cluster: sched.Big, Threads: 4},
		AppSpec{App: idle, PID: 2, Cluster: sched.Big, Threads: 1},
	))
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	hp, ip := e.TaskAvgPowerW(1), e.TaskAvgPowerW(2)
	if hp <= ip {
		t.Errorf("hungry power %v <= idle power %v", hp, ip)
	}
	if hp <= 0 {
		t.Error("hungry app should have positive attributed power")
	}
	if e.TaskAvgPowerW(99) != 0 {
		t.Error("unknown PID should report 0")
	}
	all := e.TaskAvgPowers()
	if len(all) != 2 || all[1] != hp {
		t.Errorf("TaskAvgPowers inconsistent: %+v", all)
	}
}

func TestThermalGovernorThrottles(t *testing.T) {
	// A hot workload with a low-trip step-wise governor must end up
	// capped, and cooler than the unthrottled run.
	run := func(gov thermgov.Governor) (float64, uint64) {
		app := &steadyApp{name: "hot", cpuHz: 8e9, gpuHz: 600e6}
		cfg := baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 4})
		cfg.Thermal = gov
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(60); err != nil {
			t.Fatal(err)
		}
		return e.MaxTempSeenK(), e.Platform().Domain(platform.DomBig).Cap()
	}
	sw, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
		TripK: thermal.ToKelvin(45), HysteresisK: 3, IntervalS: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	freeMax, _ := run(thermgov.None{})
	throtMax, cap := run(sw)
	if freeMax <= thermal.ToKelvin(45) {
		t.Fatalf("unthrottled run too cool (%.1f K) for this test to mean anything", freeMax)
	}
	if throtMax >= freeMax-2 {
		t.Errorf("throttled max %.1f K not clearly below free max %.1f K", throtMax, freeMax)
	}
	if cap == 0 {
		t.Error("big domain should be capped at end of throttled run")
	}
}

// migrateController moves PID 1 to little once the sensor exceeds a
// threshold; it exercises the Controller hook.
type migrateController struct {
	thresholdK float64
	migrated   bool
}

func (m *migrateController) Name() string       { return "test-migrate" }
func (m *migrateController) IntervalS() float64 { return 0.1 }
func (m *migrateController) Control(nowS float64, e *Engine) {
	if !m.migrated && e.SensorTempK() > m.thresholdK {
		if err := e.Scheduler().Migrate(1, sched.Little); err == nil {
			m.migrated = true
		}
	}
}

func TestControllerHookRunsAndMigrates(t *testing.T) {
	app := &steadyApp{name: "hot", cpuHz: 8e9}
	cfg := baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big, Threads: 4})
	ctrl := &migrateController{thresholdK: thermal.ToKelvin(45)}
	cfg.Controller = ctrl
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(60); err != nil {
		t.Fatal(err)
	}
	if !ctrl.migrated {
		t.Fatal("controller never migrated; sensor too cool?")
	}
	task, ok := e.Scheduler().Task(1)
	if !ok || task.Cluster != sched.Little {
		t.Errorf("task should be on little after migration, got %+v", task)
	}
	if e.Scheduler().Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", e.Scheduler().Migrations())
	}
}

func TestDAQIntegration(t *testing.T) {
	ch, err := daq.New("total", daq.Config{SampleRateHz: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	app := &steadyApp{name: "a", cpuHz: 2e9}
	cfg := baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big})
	cfg.DAQ = ch
	e, _ := New(cfg)
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if ch.SampleCount() != 1000 {
		t.Errorf("DAQ samples = %d, want 1000", ch.SampleCount())
	}
	if ch.MeanW() <= 0 {
		t.Error("DAQ mean power should be positive")
	}
	// The DAQ mean must agree with the meter's average power.
	if math.Abs(ch.MeanW()-e.Meter().AveragePowerW()) > 0.05 {
		t.Errorf("DAQ mean %v vs meter %v", ch.MeanW(), e.Meter().AveragePowerW())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		app := workload.PaperIO(42)
		cfg := Config{
			Platform: platform.Nexus6P(7),
			Apps:     []AppSpec{{App: app, PID: 1, Cluster: sched.Big, Threads: 2}},
			Governors: map[platform.DomainID]governor.Governor{
				platform.DomLittle: mustInteractive(t),
				platform.DomBig:    mustInteractive(t),
				platform.DomGPU:    mustOndemand(t),
			},
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(5); err != nil {
			t.Fatal(err)
		}
		return e.SensorTempK(), app.MedianFPS()
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Errorf("runs differ: (%v, %v) vs (%v, %v); engine must be deterministic", t1, f1, t2, f2)
	}
}

func mustInteractive(t *testing.T) governor.Governor {
	t.Helper()
	g, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustOndemand(t *testing.T) governor.Governor {
	t.Helper()
	g, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestResidencyAccountedDuringRun(t *testing.T) {
	app := &steadyApp{name: "a", cpuHz: 1e9}
	e, _ := New(baseConfig(AppSpec{App: app, PID: 1, Cluster: sched.Big}))
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	res := e.Platform().Domain(platform.DomBig).Residency()
	total := 0.0
	for _, s := range res {
		total += s
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("big residency totals %v s, want 1", total)
	}
}
