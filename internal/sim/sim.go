// Package sim is the simulation engine that closes the loop the paper
// studies: applications generate demand, CPUfreq governors pick
// frequencies, the scheduler grants cycles, the power model converts
// activity and temperature into watts, the RC thermal network integrates
// temperatures, and thermal governors (plus optional custom controllers,
// like the paper's application-aware governor) react — all on a fixed
// deterministic time step.
package sim

import (
	"fmt"
	"math"

	"repro/internal/daq"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/thermgov"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Engine defaults, applied by Config.normalize and mirrored by the
// pkg/mobisim facade's spec validation (which must stay at least as
// strict as the engine).
const (
	// DefaultStepS is the default integration step (1 ms).
	DefaultStepS = 0.001
	// DefaultTracePeriodS is the default trace sampling period (100 ms).
	DefaultTracePeriodS = 0.1
	// DefaultTaskWindowS is the default per-task power window (1 s).
	DefaultTaskWindowS = 1.0
	// MaxRunSteps bounds a single Run's duration-to-step conversion:
	// beyond it the float→int conversion would be implementation-defined
	// (and the run physically unfinishable anyway).
	MaxRunSteps = 1e15
)

// domainIDs and rails cache the substrate enumerations once: the step
// loop iterates them thousands of times per simulated second, and the
// enumeration helpers allocate a fresh slice per call.
var (
	domainIDs = platform.DomainIDs()
	rails     = power.Rails()
)

// AppSpec attaches one application to the simulation.
type AppSpec struct {
	// App is the workload model.
	App workload.App
	// PID is the unique process ID for the scheduler.
	PID int
	// Cluster is the initial CPU placement.
	Cluster sched.ClusterID
	// Threads bounds the app's CPU parallelism (>= 1).
	Threads int
	// RealTime registers the process with the governor so it is never a
	// migration victim (Section IV-B's registration interface).
	RealTime bool
}

// Controller is a custom platform controller invoked on its own period,
// with full engine visibility. The paper's application-aware governor
// is implemented as a Controller.
type Controller interface {
	// Name identifies the controller.
	Name() string
	// IntervalS is the control period (the paper uses 100 ms).
	IntervalS() float64
	// Control runs one control decision.
	Control(nowS float64, e *Engine)
}

// Config assembles a simulation.
type Config struct {
	// Platform is the device model (required).
	Platform *platform.Platform
	// Apps are the workloads to run (at least one).
	Apps []AppSpec
	// CPUGovernors maps each domain to its frequency governor
	// (required for all three domains).
	Governors map[platform.DomainID]governor.Governor
	// Thermal is the thermal governor; nil disables thermal control
	// entirely (note that thermgov.None is subtly different: it actively
	// clears any caps other agents set).
	Thermal thermgov.Governor
	// Controller is an optional custom controller (e.g. appaware).
	Controller Controller
	// StepS is the integration step (default 1 ms).
	StepS float64
	// TracePeriodS is the trace sampling period (default 100 ms).
	TracePeriodS float64
	// TaskWindowS is the per-task power averaging window the paper's
	// governor uses (default 1 s).
	TaskWindowS float64
	// DAQ optionally samples total platform power like the paper's
	// external instrument.
	DAQ *daq.Channel
	// Observers receive one Sample per trace period. The engine
	// publishes samples whether or not observers are attached, so the
	// observer set never influences the simulation's dynamics.
	Observers []Observer
	// DisableRecording skips the built-in RecordingSink, making the run
	// constant-memory: the trace getters then report no series, and only
	// the registered Observers see samples.
	DisableRecording bool
}

// normalize centralizes Config validation and defaulting: every
// default lives here, and every malformed field is rejected with a
// clear error instead of silently misbehaving downstream.
func (cfg *Config) normalize() error {
	if cfg.Platform == nil {
		return fmt.Errorf("sim: config needs a platform")
	}
	if len(cfg.Apps) == 0 {
		return fmt.Errorf("sim: config needs at least one app")
	}
	for i, a := range cfg.Apps {
		if a.App == nil {
			return fmt.Errorf("sim: app spec %d (PID %d) has nil app", i, a.PID)
		}
	}
	for _, id := range platform.DomainIDs() {
		if cfg.Governors[id] == nil {
			return fmt.Errorf("sim: missing governor for domain %s", id)
		}
	}
	if cfg.StepS == 0 {
		cfg.StepS = DefaultStepS
	}
	if math.IsNaN(cfg.StepS) || cfg.StepS <= 0 || cfg.StepS > 0.1 {
		return fmt.Errorf("sim: step %v out of range (0, 0.1]", cfg.StepS)
	}
	if cfg.TracePeriodS == 0 {
		cfg.TracePeriodS = DefaultTracePeriodS
	}
	if math.IsNaN(cfg.TracePeriodS) || cfg.TracePeriodS < cfg.StepS {
		return fmt.Errorf("sim: trace period %v below step %v", cfg.TracePeriodS, cfg.StepS)
	}
	if cfg.TaskWindowS == 0 {
		cfg.TaskWindowS = DefaultTaskWindowS
	}
	if math.IsNaN(cfg.TaskWindowS) || cfg.TaskWindowS < cfg.StepS {
		return fmt.Errorf("sim: task window %v below step %v", cfg.TaskWindowS, cfg.StepS)
	}
	return nil
}

// Engine is a running simulation. Build with New, advance with Run.
type Engine struct {
	cfg   Config
	plat  *platform.Platform
	sched *sched.Scheduler
	meter power.Meter

	now       float64
	stepCount uint64

	apps []AppSpec

	// Per-domain governor bookkeeping.
	nextGovS  [3]float64
	utilAccum [3]float64 // integral of utilCores since last decision
	loadAccum [3]float64 // integral of busiest-core load since last decision
	utilTime  [3]float64
	touched   [3]bool
	lastUtil  [3]float64 // most recent per-step utilization
	lastLoad  [3]float64 // most recent per-step busiest-core load

	nextThermS float64
	nextCtrlS  float64
	nextTraceS float64

	// Per-task window-averaged power (watts).
	taskPower map[int]*stats.Window

	// dynWindow averages the platform's non-leakage power (dynamic +
	// idle + memory) over the task window; the stability analysis takes
	// it as the Pd input.
	dynWindow *stats.Window

	// GPU share bookkeeping, indexed like apps: per-app GPU demand and
	// achieved GPU rate this step.
	gpuDemand   []float64
	gpuAchieved []float64

	// assign is the reusable scheduling result; sched.AssignInto fills
	// it in place every step.
	assign sched.Assignment

	// thermStates is the preallocated thermal-governor view, rebuilt
	// field-wise (never reallocated) on every governor tick.
	thermStates []thermgov.DomainState

	powers []float64 // scratch: per-node power injection

	// Observation: the step loop publishes sampleBuf to every observer
	// once per trace period; rec is the built-in recording sink (nil
	// when recording is disabled).
	observers   []Observer
	rec         *RecordingSink
	sampleBuf   Sample
	maxTempSeen float64

	// fast holds the flat index-addressed caches of the batched step
	// path (see batch.go); empty until the engine joins a BatchEngine.
	fast fastPath
}

// New validates cfg and builds an engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:         cfg,
		plat:        cfg.Platform,
		sched:       sched.New(),
		apps:        append([]AppSpec(nil), cfg.Apps...),
		taskPower:   make(map[int]*stats.Window, len(cfg.Apps)),
		gpuDemand:   make([]float64, len(cfg.Apps)),
		gpuAchieved: make([]float64, len(cfg.Apps)),
		powers:      make([]float64, cfg.Platform.Net.NumNodes()),
	}
	winCap := int(math.Round(cfg.TaskWindowS / cfg.StepS))
	if winCap < 1 {
		winCap = 1
	}
	e.dynWindow = stats.NewWindow(winCap)
	for _, a := range cfg.Apps {
		threads := a.Threads
		if threads == 0 {
			threads = 1
		}
		if err := e.sched.Add(sched.Task{
			PID:      a.PID,
			Name:     a.App.Name(),
			Threads:  threads,
			Cluster:  a.Cluster,
			RealTime: a.RealTime,
		}); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		e.taskPower[a.PID] = stats.NewWindow(winCap)
	}

	// Preallocate the thermal governor's per-domain view: the constant
	// fields (domain, model, core count, hot-plug hook) are wired once,
	// and each governor tick only refreshes the dynamic ones, so the
	// tick allocates nothing.
	if cfg.Thermal != nil {
		e.thermStates = make([]thermgov.DomainState, 0, len(domainIDs))
		for _, id := range domainIDs {
			id := id
			e.thermStates = append(e.thermStates, thermgov.DomainState{
				Domain: e.plat.Domain(id),
				Model:  e.plat.Model(id),
				Cores:  e.plat.Cores(id),
				SetOnlineCores: func(n int) {
					e.plat.SetOnlineCores(id, n)
				},
			})
		}
	}

	if !cfg.DisableRecording {
		e.rec = NewRecordingSink(e.plat)
		e.observers = append(e.observers, e.rec)
	}
	e.observers = append(e.observers, cfg.Observers...)
	e.sampleBuf = Sample{
		NodeTempK: make([]float64, e.plat.Net.NumNodes()),
		RailW:     make([]float64, power.NumRails),
		FreqHz:    make([]uint64, len(domainIDs)),
	}
	return e, nil
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Platform returns the device model.
func (e *Engine) Platform() *platform.Platform { return e.plat }

// Scheduler returns the task scheduler (controllers migrate through it).
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// Meter returns the per-rail energy meter.
func (e *Engine) Meter() *power.Meter { return &e.meter }

// TaskAvgPowerW returns the window-averaged power attribution of a task
// (0 when the task is unknown or the window is empty). This is the
// "average utilization of each active process for a one-second window"
// signal of Section IV-B, expressed in watts.
func (e *Engine) TaskAvgPowerW(pid int) float64 {
	w, ok := e.taskPower[pid]
	if !ok {
		return 0
	}
	m, err := w.Mean()
	if err != nil {
		return 0
	}
	return m
}

// TaskAvgPowers returns window-averaged power for every task.
func (e *Engine) TaskAvgPowers() map[int]float64 {
	out := make(map[int]float64, len(e.taskPower))
	for pid := range e.taskPower {
		out[pid] = e.TaskAvgPowerW(pid)
	}
	return out
}

// NodePowers returns a copy of the most recent per-node power
// injection (W), indexed by thermal node ID. Skin-aware controllers
// combine it with Network.SteadyState to predict surface temperatures.
func (e *Engine) NodePowers() []float64 {
	return append([]float64(nil), e.powers...)
}

// DynamicPowerW returns the window-averaged non-leakage platform power
// (dynamic switching + idle + memory), the Pd input of the stability
// analysis. Returns 0 before the first step.
func (e *Engine) DynamicPowerW() float64 {
	m, err := e.dynWindow.Mean()
	if err != nil {
		return 0
	}
	return m
}

// SensorTempK reads the governor-facing temperature sensor at the
// current time.
func (e *Engine) SensorTempK() float64 {
	k, err := e.plat.Sensor.Read(e.now)
	if err != nil {
		return e.plat.AmbientK()
	}
	return k
}

// Recording returns the built-in recording sink, or nil when the
// engine was built with DisableRecording. The sink's lookups report
// (series, ok) so formatters can distinguish unknown names from empty
// traces.
func (e *Engine) Recording() *RecordingSink { return e.rec }

// NodeNames returns the thermal node names indexed by thermal.NodeID,
// matching Sample.NodeTempK.
func (e *Engine) NodeNames() []string {
	out := make([]string, e.plat.Net.NumNodes())
	for i := range out {
		out[i] = e.plat.Net.NodeName(thermal.NodeID(i))
	}
	return out
}

// NodeTempSeries returns the true temperature trace (°C) of a node.
// It returns nil for unknown node names or when recording is disabled;
// prefer Recording().NodeTempSeries for an explicit (series, ok) form.
func (e *Engine) NodeTempSeries(name string) *trace.Series {
	if e.rec == nil {
		return nil
	}
	s, _ := e.rec.NodeTempSeries(name)
	return s
}

// MaxTempSeries returns the hottest-node temperature trace (°C), the
// quantity the paper's Figure 8 plots (nil when recording is disabled).
func (e *Engine) MaxTempSeries() *trace.Series {
	if e.rec == nil {
		return nil
	}
	return e.rec.MaxTempSeries()
}

// SensorSeries returns the sensed-temperature trace (°C) (nil when
// recording is disabled).
func (e *Engine) SensorSeries() *trace.Series {
	if e.rec == nil {
		return nil
	}
	return e.rec.SensorSeries()
}

// TotalPowerSeries returns the total power trace (W) (nil when
// recording is disabled).
func (e *Engine) TotalPowerSeries() *trace.Series {
	if e.rec == nil {
		return nil
	}
	return e.rec.TotalPowerSeries()
}

// RailPowerSeries returns one rail's power trace (W). It returns nil
// for unknown rails or when recording is disabled; prefer
// Recording().RailPowerSeries for an explicit (series, ok) form.
func (e *Engine) RailPowerSeries(r power.Rail) *trace.Series {
	if e.rec == nil {
		return nil
	}
	s, _ := e.rec.RailPowerSeries(r)
	return s
}

// FreqSeries returns one domain's frequency trace (Hz). It returns nil
// for unknown domains or when recording is disabled; prefer
// Recording().FreqSeries for an explicit (series, ok) form.
func (e *Engine) FreqSeries(id platform.DomainID) *trace.Series {
	if e.rec == nil {
		return nil
	}
	s, _ := e.rec.FreqSeries(id)
	return s
}

// MaxTempSeenK returns the hottest true node temperature observed.
func (e *Engine) MaxTempSeenK() float64 { return e.maxTempSeen }

// DomainUtil returns the most recent per-step utilization (in cores) of
// a domain; thermal governors and controllers read it.
func (e *Engine) DomainUtil(id platform.DomainID) float64 { return e.lastUtil[id] }

// Run advances the simulation by durationS seconds.
func (e *Engine) Run(durationS float64) error {
	if durationS <= 0 || math.IsNaN(durationS) || math.IsInf(durationS, 0) {
		return fmt.Errorf("sim: run duration must be positive and finite, got %v", durationS)
	}
	steps := math.Round(durationS / e.cfg.StepS)
	// The math.MaxInt term keeps the int conversion in range on 32-bit
	// platforms, where MaxRunSteps alone would not.
	if steps > MaxRunSteps || steps > float64(math.MaxInt) {
		return fmt.Errorf("sim: duration %v spans %.0f steps of %v, exceeding the %.0f-step run bound",
			durationS, steps, e.cfg.StepS, math.Min(MaxRunSteps, float64(math.MaxInt)))
	}
	return e.RunSteps(int(steps))
}

// RunSteps advances the simulation by exactly steps fixed integration
// steps — the batched fast path sweep runners use to amortize the call
// overhead and skip duration-to-step rounding. RunSteps(0) is a no-op.
func (e *Engine) RunSteps(steps int) error {
	if steps < 0 {
		return fmt.Errorf("sim: step count must be >= 0, got %d", steps)
	}
	for i := 0; i < steps; i++ {
		if err := e.step(); err != nil {
			return fmt.Errorf("sim: t=%.3fs: %w", e.now, err)
		}
	}
	return nil
}

// step advances one fixed time step. The loop is allocation-free in
// steady state: every per-step quantity lives in a reused,
// index-addressed engine buffer, and map views of any of them are only
// materialized by API accessors at the boundary.
func (e *Engine) step() error {
	dt := e.cfg.StepS
	now := e.now

	// 1. Application demand.
	totalGPUDemand := 0.0
	anyTouch := false
	for i, a := range e.apps {
		d := a.App.Demand(now)
		if err := e.sched.SetDemand(a.PID, d.CPUHz); err != nil {
			return err
		}
		e.gpuDemand[i] = 0
		if d.GPUHz > 0 {
			e.gpuDemand[i] = d.GPUHz
			totalGPUDemand += d.GPUHz
		}
		if d.Touch {
			anyTouch = true
		}
	}
	if anyTouch {
		for i := range e.touched {
			e.touched[i] = true
		}
	}

	// 2. CPUfreq governors on their own periods.
	for _, id := range domainIDs {
		gov := e.cfg.Governors[id]
		if now+1e-12 < e.nextGovS[id] {
			continue
		}
		util, load := e.lastUtil[id], e.lastLoad[id]
		if e.utilTime[id] > 0 {
			util = e.utilAccum[id] / e.utilTime[id]
			load = e.loadAccum[id] / e.utilTime[id]
		}
		dom := e.plat.Domain(id)
		freq := gov.Decide(governor.Input{
			NowS:        now,
			UtilCores:   util,
			MaxCoreLoad: load,
			OnlineCores: e.plat.OnlineCores(id),
			Touch:       e.touched[id],
		}, dom)
		dom.Request(now, freq)
		e.utilAccum[id], e.loadAccum[id], e.utilTime[id] = 0, 0, 0
		e.touched[id] = false
		e.nextGovS[id] = now + gov.IntervalS()
	}

	// 3. Thermal governor on its period, acting on the sensed temperature.
	if e.cfg.Thermal != nil && now+1e-12 >= e.nextThermS {
		sensedK := e.SensorTempK()
		for i, id := range domainIDs {
			nodeK, err := e.plat.Net.Temperature(e.plat.Node(id))
			if err != nil {
				return err
			}
			e.thermStates[i].UtilCores = e.lastUtil[id]
			e.thermStates[i].TempK = nodeK
			e.thermStates[i].OnlineCores = e.plat.OnlineCores(id)
		}
		e.cfg.Thermal.Control(now, sensedK, e.thermStates)
		e.nextThermS = now + e.cfg.Thermal.IntervalS()
	}

	// 4. Custom controller (the paper's governor) on its period.
	if e.cfg.Controller != nil && now+1e-12 >= e.nextCtrlS {
		e.cfg.Controller.Control(now, e)
		e.nextCtrlS = now + e.cfg.Controller.IntervalS()
	}

	// 5. CPU scheduling under current capacities, into the reusable
	// assignment (no per-step capacity map, no per-step result maps).
	if err := e.sched.AssignInto(
		sched.Capacity{FreqHz: e.plat.Domain(platform.DomLittle).CurrentHz(), Cores: e.plat.OnlineCores(platform.DomLittle)},
		sched.Capacity{FreqHz: e.plat.Domain(platform.DomBig).CurrentHz(), Cores: e.plat.OnlineCores(platform.DomBig)},
		&e.assign,
	); err != nil {
		return err
	}
	res := &e.assign

	// 6. GPU sharing: proportional to demand under the single GPU queue.
	gpuFreq := float64(e.plat.Domain(platform.DomGPU).CurrentHz())
	for i := range e.gpuAchieved {
		e.gpuAchieved[i] = 0
	}
	gpuGrantTotal := 0.0
	if totalGPUDemand > 0 && gpuFreq > 0 {
		scale := 1.0
		if totalGPUDemand > gpuFreq {
			scale = gpuFreq / totalGPUDemand
		}
		// Accumulate in app-spec order: float addition is not
		// associative, and same-seed runs must be bitwise identical.
		for i := range e.apps {
			d := e.gpuDemand[i]
			if d == 0 {
				continue
			}
			g := d * scale
			e.gpuAchieved[i] = g
			gpuGrantTotal += g
		}
	}

	// 7. Per-domain power at current temperatures.
	utilCores := [3]float64{
		res.UtilCores(sched.Little),
		res.UtilCores(sched.Big),
		0,
	}
	if gpuFreq > 0 {
		utilCores[platform.DomGPU] = gpuGrantTotal / gpuFreq
	}
	// Busiest-core load per CPU domain: each task occupies up to Threads
	// cores, each busy for achieved/(threads*freq) of the step. The GPU's
	// single queue makes its load equal to its utilization.
	maxLoad := [3]float64{}
	for _, a := range e.apps {
		task, ok := e.sched.Task(a.PID)
		if !ok {
			continue
		}
		var domID platform.DomainID
		switch task.Cluster {
		case sched.Little:
			domID = platform.DomLittle
		case sched.Big:
			domID = platform.DomBig
		default:
			continue
		}
		freq := float64(e.plat.Domain(domID).CurrentHz())
		if freq <= 0 {
			continue
		}
		perCore := res.AchievedHz(a.PID) / (float64(task.Threads) * freq)
		if perCore > 1 {
			perCore = 1
		}
		if perCore > maxLoad[domID] {
			maxLoad[domID] = perCore
		}
	}

	var sample power.Sample
	sample.TimeS = now
	totalAchievedHz := gpuGrantTotal
	for _, a := range e.apps {
		totalAchievedHz += res.AchievedHz(a.PID)
	}
	domDynamic := [3]float64{}
	for i := range e.powers {
		e.powers[i] = 0
	}
	for _, id := range domainIDs {
		dom := e.plat.Domain(id)
		model := e.plat.Model(id)
		opp := dom.CurrentOPP()
		nodeK, err := e.plat.Net.Temperature(e.plat.Node(id))
		if err != nil {
			return err
		}
		dyn := model.Dynamic(opp, utilCores[id])
		tot := dyn + model.IdleW + model.Leakage.Power(opp.VoltageV, nodeK)
		domDynamic[id] = dyn
		sample.W[e.plat.Rail(id)] += tot
		e.powers[e.plat.Node(id)] += tot
		load := maxLoad[id]
		if id == platform.DomGPU {
			load = utilCores[id]
		}
		e.lastUtil[id] = utilCores[id]
		e.lastLoad[id] = load
		e.utilAccum[id] += utilCores[id] * dt
		e.loadAccum[id] += load * dt
		e.utilTime[id] += dt
	}
	memW := e.plat.MemPower(totalAchievedHz)
	sample.W[power.RailMem] += memW
	if memID, ok := e.plat.NodeByName("mem"); ok {
		e.powers[memID] += memW
	}
	dynTotal := memW
	for _, id := range domainIDs {
		dynTotal += domDynamic[id] + e.plat.Model(id).IdleW
	}
	e.dynWindow.Push(dynTotal)

	// 8. Per-task power attribution: cluster dynamic power split by busy
	// share, GPU dynamic power split by achieved GPU rate.
	for i, a := range e.apps {
		task, ok := e.sched.Task(a.PID)
		if !ok {
			continue
		}
		var p float64
		switch task.Cluster {
		case sched.Little:
			p += domDynamic[platform.DomLittle] * res.BusyShare(a.PID)
		case sched.Big:
			p += domDynamic[platform.DomBig] * res.BusyShare(a.PID)
		}
		if gpuGrantTotal > 0 {
			p += domDynamic[platform.DomGPU] * e.gpuAchieved[i] / gpuGrantTotal
		}
		e.taskPower[a.PID].Push(p)
	}

	// 9. Accounting: meter, DAQ, thermal integration, residency.
	if err := e.meter.Record(sample, dt); err != nil {
		return err
	}
	if e.cfg.DAQ != nil {
		if err := e.cfg.DAQ.Observe(now, dt, sample.Total()); err != nil {
			return err
		}
	}
	if err := e.plat.Net.Step(dt, e.powers); err != nil {
		return err
	}
	for _, id := range domainIDs {
		e.plat.Domain(id).Advance(now, dt)
	}

	// 10. Applications consume their grants.
	for i, a := range e.apps {
		a.App.Advance(now, dt, workload.Resources{
			CPUSpeedHz: res.AchievedHz(a.PID),
			GPUSpeedHz: e.gpuAchieved[i],
		})
	}

	// 11. Observation: publish one sample per trace period. The sample
	// is built (and the platform sensor read) whether or not observers
	// are attached, so the observer set never perturbs the dynamics.
	if maxK, _, err := e.plat.Net.MaxTemperature(); err == nil && maxK > e.maxTempSeen {
		e.maxTempSeen = maxK
	}
	if now+1e-12 >= e.nextTraceS {
		if err := e.publishSample(now, sample); err != nil {
			return err
		}
		e.nextTraceS = now + e.cfg.TracePeriodS
	}

	e.stepCount++
	e.now = float64(e.stepCount) * dt
	return nil
}

// publishSample fills the reusable sample buffer with the current
// platform state and hands it to every observer.
func (e *Engine) publishSample(now float64, sample power.Sample) error {
	s := &e.sampleBuf
	s.TimeS = now
	for i := range s.NodeTempK {
		k, err := e.plat.Net.Temperature(thermal.NodeID(i))
		if err != nil {
			return err
		}
		s.NodeTempK[i] = k
	}
	maxK, _, err := e.plat.Net.MaxTemperature()
	if err != nil {
		return err
	}
	s.MaxTempK = maxK
	s.SensorK = e.SensorTempK()
	s.TotalW = sample.Total()
	for _, r := range rails {
		s.RailW[r] = sample.W[r]
	}
	for _, id := range domainIDs {
		s.FreqHz[id] = e.plat.Domain(id).CurrentHz()
	}
	for _, o := range e.observers {
		if err := o.OnSample(s); err != nil {
			return fmt.Errorf("observer: %w", err)
		}
	}
	return nil
}
