package sim_test

// Differential golden test for the allocation-free hot-path refactor.
//
// frozenEngine below is a frozen copy of the pre-refactor step loop —
// the [][]float64 RK4 thermal network, the map-based proportional-share
// scheduler assignment, and the exact orchestration order of
// sim.Engine.step — kept in test code so the behavioral reference can
// never move when the production hot path is rebuilt. The test replays
// the paper's two platforms (nexus6p under the step-wise trip governor,
// odroid-xu3 under IPA) through both loops and asserts bitwise-equal
// temperature, power and frequency traces.
//
// Any hot-path change that perturbs a single floating-point operation
// fails this test with the first diverging sample.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// rawSample is one bitwise-comparable trace point (Kelvin, watts, hertz).
type rawSample struct {
	timeS   float64
	nodeK   []float64
	maxK    float64
	sensorK float64
	totalW  float64
	railW   [4]float64
	freqHz  [3]uint64
}

// captureObserver copies every published engine sample verbatim.
type captureObserver struct {
	samples []rawSample
}

func (c *captureObserver) OnSample(s *sim.Sample) error {
	raw := rawSample{
		timeS:   s.TimeS,
		nodeK:   append([]float64(nil), s.NodeTempK...),
		maxK:    s.MaxTempK,
		sensorK: s.SensorK,
		totalW:  s.TotalW,
	}
	copy(raw.railW[:], s.RailW)
	copy(raw.freqHz[:], s.FreqHz)
	c.samples = append(c.samples, raw)
	return nil
}

// --- frozen pre-refactor thermal network ([][]float64 rows, per-call RK4 scratch) ---

type frozenNode struct {
	capacitance float64
	gAmbient    float64
}

type frozenNet struct {
	nodes   []frozenNode
	g       [][]float64
	temps   []float64
	ambient float64
}

func newFrozenNet(ambientK float64) *frozenNet { return &frozenNet{ambient: ambientK} }

func (n *frozenNet) addNode(capacitance, gAmbient float64) int {
	id := len(n.nodes)
	n.nodes = append(n.nodes, frozenNode{capacitance: capacitance, gAmbient: gAmbient})
	n.temps = append(n.temps, n.ambient)
	for i := range n.g {
		n.g[i] = append(n.g[i], 0)
	}
	n.g = append(n.g, make([]float64, len(n.nodes)))
	return id
}

func (n *frozenNet) connect(a, b int, gWPerK float64) {
	n.g[a][b] = gWPerK
	n.g[b][a] = gWPerK
}

func (n *frozenNet) derivs(dst, temps, powers []float64) {
	for i := range n.nodes {
		q := powers[i]
		q -= n.nodes[i].gAmbient * (temps[i] - n.ambient)
		for j := range n.nodes {
			if g := n.g[i][j]; g != 0 {
				q -= g * (temps[i] - temps[j])
			}
		}
		dst[i] = q / n.nodes[i].capacitance
	}
}

// step is the seed RK4 integrator, allocating fresh scratch every call
// exactly like the pre-refactor thermal.Network.Step.
func (n *frozenNet) step(dt float64, powers []float64) {
	m := len(n.nodes)
	k1 := make([]float64, m)
	k2 := make([]float64, m)
	k3 := make([]float64, m)
	k4 := make([]float64, m)
	tmp := make([]float64, m)

	n.derivs(k1, n.temps, powers)
	for i := 0; i < m; i++ {
		tmp[i] = n.temps[i] + 0.5*dt*k1[i]
	}
	n.derivs(k2, tmp, powers)
	for i := 0; i < m; i++ {
		tmp[i] = n.temps[i] + 0.5*dt*k2[i]
	}
	n.derivs(k3, tmp, powers)
	for i := 0; i < m; i++ {
		tmp[i] = n.temps[i] + dt*k3[i]
	}
	n.derivs(k4, tmp, powers)
	for i := 0; i < m; i++ {
		n.temps[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

func (n *frozenNet) maxTemperature() float64 {
	best := n.temps[0]
	for _, t := range n.temps {
		if t > best {
			best = t
		}
	}
	return best
}

// --- frozen sensor (zero-order hold, seeded noise, quantization) ---

type frozenSensor struct {
	net        *frozenNet
	node       int
	periodS    float64
	noiseStdK  float64
	resolution float64
	rng        *rand.Rand

	nextSample float64
	lastValue  float64
	haveValue  bool
}

func (s *frozenSensor) read(nowS float64) float64 {
	if nowS+1e-12 >= s.nextSample || !s.haveValue {
		truth := s.net.temps[s.node]
		for s.nextSample <= nowS+1e-12 {
			s.nextSample += s.periodS
		}
		v := truth
		if s.noiseStdK > 0 {
			v += s.rng.NormFloat64() * s.noiseStdK
		}
		if s.resolution > 0 {
			v = math.Round(v/s.resolution) * s.resolution
		}
		s.lastValue = v
		s.haveValue = true
	}
	return s.lastValue
}

// --- frozen proportional-share scheduler assignment (map-based seed logic) ---

type frozenTask struct {
	app      workload.App
	pid      int
	cluster  sched.ClusterID
	threads  int
	realTime bool
	demandHz float64
}

type frozenAssignResult struct {
	achievedHz map[int]float64
	utilCores  map[sched.ClusterID]float64
	busyShare  map[int]float64
}

// frozenAssign is the seed Scheduler.Assign: real-time tasks first, the
// remainder split proportionally, iterated in ascending PID order.
func frozenAssign(tasks []*frozenTask, caps map[sched.ClusterID]sched.Capacity) frozenAssignResult {
	res := frozenAssignResult{
		achievedHz: make(map[int]float64, len(tasks)),
		utilCores:  make(map[sched.ClusterID]float64, 2),
		busyShare:  make(map[int]float64, len(tasks)),
	}
	for _, c := range sched.Clusters() {
		cp := caps[c]
		total := cp.TotalHz()
		freq := float64(cp.FreqHz)

		request := func(t *frozenTask) float64 {
			bound := freq * float64(t.threads)
			if t.demandHz < bound {
				return t.demandHz
			}
			return bound
		}

		var rtPIDs, normPIDs []int
		byPID := make(map[int]*frozenTask, len(tasks))
		order := make([]int, 0, len(tasks))
		for _, t := range tasks {
			byPID[t.pid] = t
			order = append(order, t.pid)
		}
		sort.Ints(order)
		rtReq := 0.0
		for _, pid := range order {
			t := byPID[pid]
			if t.cluster != c {
				continue
			}
			if t.realTime {
				rtPIDs = append(rtPIDs, pid)
				rtReq += request(t)
			} else {
				normPIDs = append(normPIDs, pid)
			}
		}
		rtScale := 1.0
		if rtReq > total && rtReq > 0 {
			rtScale = total / rtReq
		}
		granted := 0.0
		for _, pid := range rtPIDs {
			g := request(byPID[pid]) * rtScale
			res.achievedHz[pid] = g
			granted += g
		}

		remaining := total - granted
		if remaining < 0 {
			remaining = 0
		}
		normReq := 0.0
		for _, pid := range normPIDs {
			normReq += request(byPID[pid])
		}
		scale := 1.0
		if normReq > remaining {
			if normReq == 0 {
				scale = 0
			} else {
				scale = remaining / normReq
			}
		}
		for _, pid := range normPIDs {
			g := request(byPID[pid]) * scale
			res.achievedHz[pid] = g
			granted += g
		}

		if freq > 0 {
			res.utilCores[c] = granted / freq
		} else {
			res.utilCores[c] = 0
		}
		for _, pid := range append(append([]int(nil), rtPIDs...), normPIDs...) {
			if granted > 0 {
				res.busyShare[pid] = res.achievedHz[pid] / granted
			} else {
				res.busyShare[pid] = 0
			}
		}
	}
	return res
}

// --- frozen engine: the pre-refactor sim.Engine.step orchestration ---

type frozenEngine struct {
	stepS        float64
	tracePeriodS float64

	plat    *platform.Platform // domains, models, rails; Net/Sensor unused
	net     *frozenNet
	sensor  *frozenSensor
	govs    map[platform.DomainID]governor.Governor
	thermal thermgov.Governor
	apps    []*frozenTask

	now       float64
	stepCount uint64

	nextGovS  [3]float64
	utilAccum [3]float64
	loadAccum [3]float64
	utilTime  [3]float64
	touched   [3]bool
	lastUtil  [3]float64
	lastLoad  [3]float64

	nextThermS float64
	nextTraceS float64

	taskPower map[int]*stats.Window
	dynWindow *stats.Window
	meter     power.Meter

	powers      []float64
	gpuAchieved map[int]float64

	maxTempSeen float64
	samples     []rawSample
}

// newFrozenEngine wires the frozen loop from the same platform spec and
// app set the production engine is built from.
func newFrozenEngine(t *testing.T, plat *platform.Platform, apps []*frozenTask,
	govs map[platform.DomainID]governor.Governor, tg thermgov.Governor, prewarmC float64) *frozenEngine {
	t.Helper()
	spec := plat.Spec()
	net := newFrozenNet(thermal.ToKelvin(spec.AmbientC))
	nodeByName := make(map[string]int, len(spec.Nodes))
	for _, ns := range spec.Nodes {
		nodeByName[ns.Name] = net.addNode(ns.CapacitanceJPerK, ns.GAmbientWPerK)
	}
	for _, c := range spec.Couplings {
		net.connect(nodeByName[c.A], nodeByName[c.B], c.GWPerK)
	}
	prewarmK := thermal.ToKelvin(prewarmC)
	for i := range net.temps {
		net.temps[i] = prewarmK
	}
	sensor := &frozenSensor{
		net:        net,
		node:       nodeByName[spec.SensorNode],
		periodS:    spec.SensorPeriodS,
		noiseStdK:  spec.SensorNoiseK,
		resolution: spec.SensorResolutionK,
		rng:        rand.New(rand.NewSource(spec.Seed)),
	}
	const stepS, tracePeriodS, taskWindowS = 0.001, 0.1, 1.0
	winCap := int(math.Round(taskWindowS / stepS))
	fe := &frozenEngine{
		stepS:        stepS,
		tracePeriodS: tracePeriodS,
		plat:         plat,
		net:          net,
		sensor:       sensor,
		govs:         govs,
		thermal:      tg,
		apps:         apps,
		taskPower:    make(map[int]*stats.Window, len(apps)),
		dynWindow:    stats.NewWindow(winCap),
		powers:       make([]float64, len(net.nodes)),
		gpuAchieved:  make(map[int]float64, len(apps)),
	}
	for _, a := range apps {
		fe.taskPower[a.pid] = stats.NewWindow(winCap)
	}
	return fe
}

func (e *frozenEngine) run(durationS float64) {
	steps := int(math.Round(durationS / e.stepS))
	for i := 0; i < steps; i++ {
		e.step()
	}
}

// step mirrors the pre-refactor sim.Engine.step section by section.
func (e *frozenEngine) step() {
	dt := e.stepS
	now := e.now

	// 1. Application demand.
	gpuDemand := make(map[int]float64, len(e.apps))
	totalGPUDemand := 0.0
	anyTouch := false
	for _, a := range e.apps {
		d := a.app.Demand(now)
		a.demandHz = d.CPUHz
		if d.GPUHz > 0 {
			gpuDemand[a.pid] = d.GPUHz
			totalGPUDemand += d.GPUHz
		}
		if d.Touch {
			anyTouch = true
		}
	}
	if anyTouch {
		for i := range e.touched {
			e.touched[i] = true
		}
	}

	// 2. CPUfreq governors on their own periods.
	for _, id := range platform.DomainIDs() {
		gov := e.govs[id]
		if now+1e-12 < e.nextGovS[id] {
			continue
		}
		util, load := e.lastUtil[id], e.lastLoad[id]
		if e.utilTime[id] > 0 {
			util = e.utilAccum[id] / e.utilTime[id]
			load = e.loadAccum[id] / e.utilTime[id]
		}
		dom := e.plat.Domain(id)
		freq := gov.Decide(governor.Input{
			NowS:        now,
			UtilCores:   util,
			MaxCoreLoad: load,
			OnlineCores: e.plat.OnlineCores(id),
			Touch:       e.touched[id],
		}, dom)
		dom.Request(now, freq)
		e.utilAccum[id], e.loadAccum[id], e.utilTime[id] = 0, 0, 0
		e.touched[id] = false
		e.nextGovS[id] = now + gov.IntervalS()
	}

	// 3. Thermal governor on its period, acting on the sensed temperature.
	if e.thermal != nil && now+1e-12 >= e.nextThermS {
		sensedK := e.sensor.read(now)
		states := make([]thermgov.DomainState, 0, 3)
		for _, id := range platform.DomainIDs() {
			nodeK := e.net.temps[e.plat.Node(id)]
			id := id
			states = append(states, thermgov.DomainState{
				Domain:      e.plat.Domain(id),
				Model:       e.plat.Model(id),
				UtilCores:   e.lastUtil[id],
				TempK:       nodeK,
				Cores:       e.plat.Cores(id),
				OnlineCores: e.plat.OnlineCores(id),
				SetOnlineCores: func(n int) {
					e.plat.SetOnlineCores(id, n)
				},
			})
		}
		e.thermal.Control(now, sensedK, states)
		e.nextThermS = now + e.thermal.IntervalS()
	}

	// 4. Custom controller: not part of the frozen scenarios.

	// 5. CPU scheduling under current capacities.
	caps := map[sched.ClusterID]sched.Capacity{
		sched.Little: {FreqHz: e.plat.Domain(platform.DomLittle).CurrentHz(), Cores: e.plat.OnlineCores(platform.DomLittle)},
		sched.Big:    {FreqHz: e.plat.Domain(platform.DomBig).CurrentHz(), Cores: e.plat.OnlineCores(platform.DomBig)},
	}
	res := frozenAssign(e.apps, caps)

	// 6. GPU sharing: proportional to demand under the single GPU queue.
	gpuFreq := float64(e.plat.Domain(platform.DomGPU).CurrentHz())
	for pid := range e.gpuAchieved {
		delete(e.gpuAchieved, pid)
	}
	gpuGrantTotal := 0.0
	if totalGPUDemand > 0 && gpuFreq > 0 {
		scale := 1.0
		if totalGPUDemand > gpuFreq {
			scale = gpuFreq / totalGPUDemand
		}
		for _, a := range e.apps {
			d, ok := gpuDemand[a.pid]
			if !ok {
				continue
			}
			g := d * scale
			e.gpuAchieved[a.pid] = g
			gpuGrantTotal += g
		}
	}

	// 7. Per-domain power at current temperatures.
	utilCores := [3]float64{
		res.utilCores[sched.Little],
		res.utilCores[sched.Big],
		0,
	}
	if gpuFreq > 0 {
		utilCores[platform.DomGPU] = gpuGrantTotal / gpuFreq
	}
	maxLoad := [3]float64{}
	for _, a := range e.apps {
		var domID platform.DomainID
		switch a.cluster {
		case sched.Little:
			domID = platform.DomLittle
		case sched.Big:
			domID = platform.DomBig
		default:
			continue
		}
		freq := float64(e.plat.Domain(domID).CurrentHz())
		if freq <= 0 {
			continue
		}
		perCore := res.achievedHz[a.pid] / (float64(a.threads) * freq)
		if perCore > 1 {
			perCore = 1
		}
		if perCore > maxLoad[domID] {
			maxLoad[domID] = perCore
		}
	}

	var sample power.Sample
	sample.TimeS = now
	totalAchievedHz := gpuGrantTotal
	for _, a := range e.apps {
		totalAchievedHz += res.achievedHz[a.pid]
	}
	domDynamic := [3]float64{}
	for i := range e.powers {
		e.powers[i] = 0
	}
	for _, id := range platform.DomainIDs() {
		dom := e.plat.Domain(id)
		model := e.plat.Model(id)
		opp := dom.CurrentOPP()
		nodeK := e.net.temps[e.plat.Node(id)]
		dyn := model.Dynamic(opp, utilCores[id])
		tot := dyn + model.IdleW + model.Leakage.Power(opp.VoltageV, nodeK)
		domDynamic[id] = dyn
		sample.W[e.plat.Rail(id)] += tot
		e.powers[e.plat.Node(id)] += tot
		load := maxLoad[id]
		if id == platform.DomGPU {
			load = utilCores[id]
		}
		e.lastUtil[id] = utilCores[id]
		e.lastLoad[id] = load
		e.utilAccum[id] += utilCores[id] * dt
		e.loadAccum[id] += load * dt
		e.utilTime[id] += dt
	}
	memW := e.plat.MemPower(totalAchievedHz)
	sample.W[power.RailMem] += memW
	if memID, ok := e.plat.NodeByName("mem"); ok {
		e.powers[memID] += memW
	}
	dynTotal := memW
	for _, id := range platform.DomainIDs() {
		dynTotal += domDynamic[id] + e.plat.Model(id).IdleW
	}
	e.dynWindow.Push(dynTotal)

	// 8. Per-task power attribution.
	for _, a := range e.apps {
		var p float64
		switch a.cluster {
		case sched.Little:
			p += domDynamic[platform.DomLittle] * res.busyShare[a.pid]
		case sched.Big:
			p += domDynamic[platform.DomBig] * res.busyShare[a.pid]
		}
		if gpuGrantTotal > 0 {
			p += domDynamic[platform.DomGPU] * e.gpuAchieved[a.pid] / gpuGrantTotal
		}
		e.taskPower[a.pid].Push(p)
	}

	// 9. Accounting: meter, thermal integration, DVFS latency.
	if err := e.meter.Record(sample, dt); err != nil {
		panic(err)
	}
	e.net.step(dt, e.powers)
	for _, id := range platform.DomainIDs() {
		e.plat.Domain(id).Advance(now, dt)
	}

	// 10. Applications consume their grants.
	for _, a := range e.apps {
		a.app.Advance(now, dt, workload.Resources{
			CPUSpeedHz: res.achievedHz[a.pid],
			GPUSpeedHz: e.gpuAchieved[a.pid],
		})
	}

	// 11. Observation on the trace period.
	if maxK := e.net.maxTemperature(); maxK > e.maxTempSeen {
		e.maxTempSeen = maxK
	}
	if now+1e-12 >= e.nextTraceS {
		raw := rawSample{
			timeS:   now,
			nodeK:   append([]float64(nil), e.net.temps...),
			maxK:    e.net.maxTemperature(),
			sensorK: e.sensor.read(now),
			totalW:  sample.Total(),
		}
		for _, r := range power.Rails() {
			raw.railW[r] = sample.W[r]
		}
		for _, id := range platform.DomainIDs() {
			raw.freqHz[id] = e.plat.Domain(id).CurrentHz()
		}
		e.samples = append(e.samples, raw)
		e.nextTraceS = now + e.tracePeriodS
	}

	e.stepCount++
	e.now = float64(e.stepCount) * dt
}

// --- scenario wiring shared by both loops ---

type diffScenario struct {
	name     string
	prewarmC float64

	newPlatform func() *platform.Platform
	newApps     func() []*frozenTask
	newGovs     func(t *testing.T) map[platform.DomainID]governor.Governor
	newThermal  func(t *testing.T) thermgov.Governor
}

const diffSeed = 7

// nexusOSBackgroundApp mirrors the facade's android-os background task.
func nexusOSBackgroundApp(seed int64) *workload.FrameApp {
	return workload.MustFrameApp(workload.FrameAppConfig{
		Name: "android-os",
		Phases: []workload.Phase{
			{DurationS: 60, CPUCyclesPerFrame: 4e6, TargetFPS: 30, TouchRatePerS: 0},
		},
		Loop: true,
		Seed: seed + 1,
	})
}

func interactiveGov(t *testing.T) governor.Governor {
	t.Helper()
	g, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func diffScenarios() []diffScenario {
	return []diffScenario{
		{
			name:        "nexus6p-paperio-stepwise",
			prewarmC:    36,
			newPlatform: func() *platform.Platform { return platform.Nexus6P(diffSeed) },
			newApps: func() []*frozenTask {
				return []*frozenTask{
					{app: workload.PaperIO(diffSeed), pid: 1, cluster: sched.Big, threads: 2},
					{app: nexusOSBackgroundApp(diffSeed), pid: 3, cluster: sched.Little, threads: 1},
				}
			},
			newGovs: func(t *testing.T) map[platform.DomainID]governor.Governor {
				gpuGov, err := governor.NewInteractive(governor.InteractiveConfig{
					TargetLoad:         0.90,
					HispeedFreqHz:      510e6,
					AboveHispeedDelayS: 1.0,
					BoostHoldS:         0.05,
					IntervalS:          0.02,
				})
				if err != nil {
					t.Fatal(err)
				}
				return map[platform.DomainID]governor.Governor{
					platform.DomLittle: interactiveGov(t),
					platform.DomBig:    interactiveGov(t),
					platform.DomGPU:    gpuGov,
				}
			},
			newThermal: func(t *testing.T) thermgov.Governor {
				tg, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
					TripK:       273.15 + 44,
					HysteresisK: 1,
					CriticalK:   273.15 + 95,
					IntervalS:   0.3,
				})
				if err != nil {
					t.Fatal(err)
				}
				return tg
			},
		},
		{
			name:        "odroid-3dmark-bml-ipa",
			prewarmC:    50,
			newPlatform: func() *platform.Platform { return platform.OdroidXU3(diffSeed) },
			newApps: func() []*frozenTask {
				bml := workload.NewBML()
				bml.ExecuteRatio = 0
				return []*frozenTask{
					{app: workload.NewThreeDMark(diffSeed), pid: 1, cluster: sched.Big, threads: 2, realTime: true},
					{app: bml, pid: 2, cluster: sched.Big, threads: 1},
				}
			},
			newGovs: func(t *testing.T) map[platform.DomainID]governor.Governor {
				gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
				if err != nil {
					t.Fatal(err)
				}
				return map[platform.DomainID]governor.Governor{
					platform.DomLittle: interactiveGov(t),
					platform.DomBig:    interactiveGov(t),
					platform.DomGPU:    gpuGov,
				}
			},
			newThermal: func(t *testing.T) thermgov.Governor {
				tg, err := thermgov.NewIPA(thermgov.IPAConfig{
					ControlTempK:      273.15 + 66,
					SustainablePowerW: 2.05,
					KPo:               0.17,
					KPu:               0.6,
					KI:                0.02,
					IntegralClampW:    0.8,
					IntervalS:         0.1,
					Weights:           map[string]float64{"gpu": 1.5},
				})
				if err != nil {
					t.Fatal(err)
				}
				return tg
			},
		},
	}
}

// TestStepLoopMatchesFrozenReference is the differential golden test:
// the production engine must reproduce the frozen pre-refactor step loop
// bit for bit on both platforms.
func TestStepLoopMatchesFrozenReference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	const durationS = 10.0

	for _, sc := range diffScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Frozen reference run.
			frozen := newFrozenEngine(t, sc.newPlatform(), sc.newApps(), sc.newGovs(t), sc.newThermal(t), sc.prewarmC)
			frozen.run(durationS)

			// Production run with independent instances of everything.
			plat := sc.newPlatform()
			apps := sc.newApps()
			specs := make([]sim.AppSpec, 0, len(apps))
			for _, a := range apps {
				specs = append(specs, sim.AppSpec{
					App: a.app, PID: a.pid, Cluster: a.cluster, Threads: a.threads, RealTime: a.realTime,
				})
			}
			cap := &captureObserver{}
			eng, err := sim.New(sim.Config{
				Platform:         plat,
				Apps:             specs,
				Governors:        sc.newGovs(t),
				Thermal:          sc.newThermal(t),
				Observers:        []sim.Observer{cap},
				DisableRecording: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := plat.Prewarm(sc.prewarmC); err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(durationS); err != nil {
				t.Fatal(err)
			}

			compareTraces(t, frozen.samples, cap.samples)

			if got, want := eng.MaxTempSeenK(), frozen.maxTempSeen; math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("max temperature seen diverged: frozen %v (%#x), engine %v (%#x)",
					want, math.Float64bits(want), got, math.Float64bits(got))
			}
			for _, r := range power.Rails() {
				got, want := eng.Meter().EnergyJ(r), frozen.meter.EnergyJ(r)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("rail %s energy diverged: frozen %v, engine %v", r, want, got)
				}
			}
		})
	}
}

// compareTraces asserts bitwise equality of every channel of every
// published sample and reports the first divergence precisely.
func compareTraces(t *testing.T, frozen, live []rawSample) {
	t.Helper()
	if len(frozen) != len(live) {
		t.Fatalf("sample count diverged: frozen %d, engine %d", len(frozen), len(live))
	}
	bitsEq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	for i := range frozen {
		f, l := frozen[i], live[i]
		if !bitsEq(f.timeS, l.timeS) {
			t.Fatalf("sample %d: time diverged: frozen %v, engine %v", i, f.timeS, l.timeS)
		}
		if len(f.nodeK) != len(l.nodeK) {
			t.Fatalf("sample %d: node count diverged: frozen %d, engine %d", i, len(f.nodeK), len(l.nodeK))
		}
		for n := range f.nodeK {
			if !bitsEq(f.nodeK[n], l.nodeK[n]) {
				t.Fatalf("sample %d (t=%.1fs): node %d temperature diverged: frozen %v (%#x), engine %v (%#x)",
					i, f.timeS, n, f.nodeK[n], math.Float64bits(f.nodeK[n]), l.nodeK[n], math.Float64bits(l.nodeK[n]))
			}
		}
		if !bitsEq(f.maxK, l.maxK) {
			t.Fatalf("sample %d (t=%.1fs): max temperature diverged: frozen %v, engine %v", i, f.timeS, f.maxK, l.maxK)
		}
		if !bitsEq(f.sensorK, l.sensorK) {
			t.Fatalf("sample %d (t=%.1fs): sensor diverged: frozen %v, engine %v", i, f.timeS, f.sensorK, l.sensorK)
		}
		if !bitsEq(f.totalW, l.totalW) {
			t.Fatalf("sample %d (t=%.1fs): total power diverged: frozen %v, engine %v", i, f.timeS, f.totalW, l.totalW)
		}
		for r := range f.railW {
			if !bitsEq(f.railW[r], l.railW[r]) {
				t.Fatalf("sample %d (t=%.1fs): rail %s power diverged: frozen %v, engine %v",
					i, f.timeS, power.Rail(r), f.railW[r], l.railW[r])
			}
		}
		for d := range f.freqHz {
			if f.freqHz[d] != l.freqHz[d] {
				t.Fatalf("sample %d (t=%.1fs): domain %s frequency diverged: frozen %d, engine %d",
					i, f.timeS, platform.DomainID(d), f.freqHz[d], l.freqHz[d])
			}
		}
	}
}
