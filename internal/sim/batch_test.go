package sim_test

// Differential tests for the batched lockstep path: a lane of a
// BatchEngine must be bitwise-identical to the same engine stepped
// alone through the scalar oracle path, across platforms, thermal
// arms, controllers and batch widths. Combined with the frozen-loop
// differential test (scalar vs the pre-refactor step), this transitively
// pins the batched path to the original implementation.

import (
	"math"
	"testing"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermgov"
	"repro/internal/workload"
)

// batchArm selects the thermal-management wiring of a test engine.
type batchArm int

const (
	armIPA batchArm = iota
	armStepwise
	armAppAware
	armNone
)

// buildBatchTestEngine assembles one odroid or nexus scenario for the
// given seed and arm, mirroring the sweeps' constant-memory setup but
// with recording enabled so traces can be compared.
func buildBatchTestEngine(t *testing.T, platName string, seed int64, arm batchArm) *sim.Engine {
	t.Helper()
	var plat *platform.Platform
	switch platName {
	case "odroid":
		plat = platform.OdroidXU3(seed)
	case "nexus":
		plat = platform.Nexus6P(seed)
	default:
		t.Fatalf("unknown platform %q", platName)
	}
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	newGov := func() governor.Governor {
		g, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: workload.NewThreeDMark(seed), PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: newGov(),
			platform.DomBig:    newGov(),
			platform.DomGPU:    gpuGov,
		},
	}
	switch arm {
	case armIPA:
		tg, err := thermgov.NewIPA(thermgov.DefaultIPAConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Thermal = tg
	case armStepwise:
		tg, err := thermgov.NewStepWise(thermgov.StepWiseConfig{
			TripK: 273.15 + 44, HysteresisK: 1, CriticalK: 273.15 + 95, IntervalS: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Thermal = tg
	case armAppAware:
		g, err := appaware.New(appaware.Config{HorizonS: 30, IntervalS: 0.1, ThermalLimitK: 273.15 + 55})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Controller = g
	case armNone:
		cfg.Thermal = thermgov.None{}
	}
	eng, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.Prewarm(50); err != nil {
		t.Fatal(err)
	}
	return eng
}

// compareLane asserts a batched lane ended bitwise-identical to its
// scalar twin.
func compareLane(t *testing.T, name string, scalar, batched *sim.Engine) {
	t.Helper()
	if scalar.Now() != batched.Now() {
		t.Fatalf("%s: time diverged: %v vs %v", name, scalar.Now(), batched.Now())
	}
	if math.Float64bits(scalar.MaxTempSeenK()) != math.Float64bits(batched.MaxTempSeenK()) {
		t.Errorf("%s: MaxTempSeenK differs bitwise: %v vs %v", name, scalar.MaxTempSeenK(), batched.MaxTempSeenK())
	}
	if scalar.Meter().TotalEnergyJ() != batched.Meter().TotalEnergyJ() {
		t.Errorf("%s: total energy differs: %v vs %v", name, scalar.Meter().TotalEnergyJ(), batched.Meter().TotalEnergyJ())
	}
	sv, bv := scalar.MaxTempSeries().Values(), batched.MaxTempSeries().Values()
	if len(sv) != len(bv) || len(sv) == 0 {
		t.Fatalf("%s: trace lengths differ or empty: %d vs %d", name, len(sv), len(bv))
	}
	for i := range sv {
		if math.Float64bits(sv[i]) != math.Float64bits(bv[i]) {
			t.Fatalf("%s: max-temp sample %d differs bitwise: %v vs %v", name, i, sv[i], bv[i])
		}
	}
	for _, id := range platform.DomainIDs() {
		fs, fb := scalar.FreqSeries(id).Values(), batched.FreqSeries(id).Values()
		if len(fs) != len(fb) {
			t.Fatalf("%s: freq trace %s lengths differ", name, id)
		}
		for i := range fs {
			if fs[i] != fb[i] {
				t.Fatalf("%s: freq %s sample %d differs: %v vs %v", name, id, i, fs[i], fb[i])
			}
		}
	}
}

// TestBatchMatchesScalar is the batched path's oracle test: lanes with
// distinct seeds and thermal arms, stepped in lockstep, must match
// solo scalar runs bitwise. Widths 1..4 cover the degenerate
// single-lane batch and interacting multi-lane packing.
func TestBatchMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	const durationS = 3
	steps := int(durationS * 1000)
	cases := []struct {
		name string
		plat string
		arms []batchArm
	}{
		{"odroid-ipa-appaware-none", "odroid", []batchArm{armIPA, armAppAware, armNone}},
		{"odroid-width4", "odroid", []batchArm{armAppAware, armAppAware, armIPA, armNone}},
		{"nexus-stepwise-none", "nexus", []batchArm{armStepwise, armNone}},
		{"odroid-width1", "odroid", []batchArm{armAppAware}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scalars := make([]*sim.Engine, len(tc.arms))
			lanes := make([]*sim.Engine, len(tc.arms))
			for i, arm := range tc.arms {
				seed := int64(10 + i)
				scalars[i] = buildBatchTestEngine(t, tc.plat, seed, arm)
				lanes[i] = buildBatchTestEngine(t, tc.plat, seed, arm)
			}
			for _, e := range scalars {
				if err := e.RunSteps(steps); err != nil {
					t.Fatal(err)
				}
			}
			be, err := sim.NewBatchEngine(lanes)
			if err != nil {
				t.Fatal(err)
			}
			if err := be.RunSteps(steps); err != nil {
				t.Fatal(err)
			}
			for i := range lanes {
				compareLane(t, tc.name, scalars[i], lanes[i])
			}
		})
	}
}

// TestBatchEngineReset pins the pooling contract: a BatchEngine shell
// recycled onto fresh lanes (same or different platform) behaves
// exactly like a newly constructed one.
func TestBatchEngineReset(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	const steps = 1500
	run := func(be *sim.BatchEngine) {
		t.Helper()
		if err := be.RunSteps(steps); err != nil {
			t.Fatal(err)
		}
	}

	scalar := buildBatchTestEngine(t, "nexus", 7, armStepwise)
	if err := scalar.RunSteps(steps); err != nil {
		t.Fatal(err)
	}

	var pool sim.BatchPool
	first, err := pool.Get([]*sim.Engine{
		buildBatchTestEngine(t, "odroid", 1, armIPA),
		buildBatchTestEngine(t, "odroid", 2, armNone),
	})
	if err != nil {
		t.Fatal(err)
	}
	run(first)
	pool.Put(first)

	// Recycle the shell onto a different platform topology and width.
	lane := buildBatchTestEngine(t, "nexus", 7, armStepwise)
	second, err := pool.Get([]*sim.Engine{lane})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Reuses() != 1 {
		t.Fatalf("expected the pooled shell to be reused, got %d reuses", pool.Reuses())
	}
	run(second)
	pool.Put(second)
	compareLane(t, "recycled-nexus", scalar, lane)
}

// TestBatchRejectsMixedTopology ensures lanes from different platform
// topologies cannot be fused.
func TestBatchRejectsMixedTopology(t *testing.T) {
	a := buildBatchTestEngine(t, "odroid", 1, armNone)
	b := buildBatchTestEngine(t, "nexus", 1, armNone)
	if _, err := sim.NewBatchEngine([]*sim.Engine{a, b}); err == nil {
		t.Fatal("mixed-topology batch should be rejected")
	}
}
