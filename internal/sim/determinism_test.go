package sim

import (
	"math"
	"testing"

	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/workload"
)

// buildDeterminismEngine assembles the Odroid 3DMark+BML scenario —
// multiple apps sharing CPU and GPU, the config most sensitive to
// iteration-order bugs — for the given seed.
func buildDeterminismEngine(t *testing.T, seed int64) *Engine {
	t.Helper()
	plat := platform.OdroidXU3(seed)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Platform: plat,
		Apps: []AppSpec{
			{App: workload.NewThreeDMark(seed), PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: littleGov,
			platform.DomBig:    bigGov,
			platform.DomGPU:    gpuGov,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.Prewarm(50); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineDeterminism is the golden invariant the parallel sweep pool
// relies on: two runs with the same seed must produce bitwise-identical
// traces, so results can never depend on worker interleaving.
func TestEngineDeterminism(t *testing.T) {
	const seed, durationS = 17, 5

	a := buildDeterminismEngine(t, seed)
	if err := a.Run(durationS); err != nil {
		t.Fatal(err)
	}
	b := buildDeterminismEngine(t, seed)
	if err := b.Run(durationS); err != nil {
		t.Fatal(err)
	}

	compareBitwise := func(name string, av, bv []float64) {
		t.Helper()
		if len(av) != len(bv) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", name, len(av), len(bv))
		}
		if len(av) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				t.Fatalf("%s: sample %d differs bitwise: %x vs %x (%v vs %v)",
					name, i, math.Float64bits(av[i]), math.Float64bits(bv[i]), av[i], bv[i])
			}
		}
	}

	compareBitwise("MaxTempSeries", a.MaxTempSeries().Values(), b.MaxTempSeries().Values())
	for _, id := range platform.DomainIDs() {
		compareBitwise("FreqSeries:"+id.String(), a.FreqSeries(id).Values(), b.FreqSeries(id).Values())
	}
	if math.Float64bits(a.MaxTempSeenK()) != math.Float64bits(b.MaxTempSeenK()) {
		t.Errorf("MaxTempSeenK differs: %v vs %v", a.MaxTempSeenK(), b.MaxTempSeenK())
	}
	if a.Meter().TotalEnergyJ() != b.Meter().TotalEnergyJ() {
		t.Errorf("total energy differs: %v vs %v", a.Meter().TotalEnergyJ(), b.Meter().TotalEnergyJ())
	}
}

// TestEngineDeterminismDistinctSeeds guards against the degenerate
// "deterministic because nothing is random" failure mode: different
// seeds must actually produce different runs.
func TestEngineDeterminismDistinctSeeds(t *testing.T) {
	a := buildDeterminismEngine(t, 1)
	if err := a.Run(5); err != nil {
		t.Fatal(err)
	}
	b := buildDeterminismEngine(t, 2)
	if err := b.Run(5); err != nil {
		t.Fatal(err)
	}
	av, bv := a.MaxTempSeries().Values(), b.MaxTempSeries().Values()
	for i := range av {
		if i < len(bv) && math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return // diverged, as expected
		}
	}
	t.Error("seeds 1 and 2 produced identical max-temperature traces")
}
