// Batched lockstep execution: BatchEngine steps B independent engines
// through one fused per-step path, so a scenario sweep pays the
// expensive O(m²) thermal kernel once per batch (cache-hot, over
// structure-of-arrays state) instead of once per engine, and the
// per-lane bookkeeping runs on flat index-addressed caches instead of
// the map-backed boundary APIs.
//
// Lanes never interact: every float64 a lane computes is produced by
// the same operations in the same order as a solo Engine run, so a
// batched lane is bitwise-identical to the scalar path (pinned by the
// batch differential tests and the sweep golden tests). stepPre and
// stepPost below are the scalar step() split around the thermal
// integration, with map lookups replaced by the fastPath caches; any
// semantic change to step() must be mirrored here (TestBatchMatchesScalar
// fails loudly if the two drift).
package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dvfs"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// fastPath is the flat, index-addressed view of an engine's per-step
// state: everything step() reaches through a map or an error-checked
// accessor, resolved once. Built lazily by initFast; the task-aligned
// slices are re-resolved whenever the scheduler's task-set epoch moves.
type fastPath struct {
	ready bool

	govs   [3]governor.Governor
	doms   [3]*dvfs.Domain
	models [3]*power.DomainModel
	nodes  [3]thermal.NodeID
	rails  [3]power.Rail

	temps   []float64 // live read-only view of the thermal network state
	memNode thermal.NodeID
	hasMem  bool

	// Aligned with Engine.apps; refreshed on scheduler epoch changes.
	tasks   []*sched.Task
	slots   []int // assignment slot per app (-1 when unknown)
	windows []*stats.Window
	epoch   uint64

	// sample carries the per-step power reading from stepPre to
	// stepPost (the scalar path keeps it on the stack across the
	// thermal step; the split path cannot).
	sample power.Sample

	// Scheduling memo. One step's assignment is a pure function of the
	// task demands/placements and the cluster capacities, and those
	// inputs are piecewise-constant (demands change on workload frame
	// boundaries, capacities on DVFS transitions), so most steps can
	// reuse the previous assignment verbatim — bitwise-equal by purity
	// — instead of recomputing it. sigValid gates the memo; it stays
	// false whenever the scheduler holds tasks the engine does not own,
	// whose demands the signature could not observe.
	sigValid   bool
	sigCaps    [2]sched.Capacity
	sigDemand  []float64
	sigCluster []sched.ClusterID
	sigRT      []bool
}

// StepS returns the engine's fixed integration step in seconds.
func (e *Engine) StepS() float64 { return e.cfg.StepS }

// initFast resolves the flat caches. Idempotent.
func (e *Engine) initFast() {
	fp := &e.fast
	if fp.ready {
		return
	}
	for _, id := range domainIDs {
		fp.govs[id] = e.cfg.Governors[id]
		fp.doms[id] = e.plat.Domain(id)
		fp.models[id] = e.plat.Model(id)
		fp.nodes[id] = e.plat.Node(id)
		fp.rails[id] = e.plat.Rail(id)
	}
	fp.temps = e.plat.Net.TempsView()
	fp.memNode, fp.hasMem = e.plat.NodeByName("mem")
	fp.windows = make([]*stats.Window, len(e.apps))
	for i, a := range e.apps {
		fp.windows[i] = e.taskPower[a.PID]
	}
	fp.tasks = make([]*sched.Task, len(e.apps))
	fp.slots = make([]int, len(e.apps))
	fp.sigDemand = make([]float64, len(e.apps))
	fp.sigCluster = make([]sched.ClusterID, len(e.apps))
	fp.sigRT = make([]bool, len(e.apps))
	fp.refreshTasks(e)
	fp.ready = true
}

// refreshTasks re-resolves the task pointers and assignment slots after
// a task-set layout change. Slots are positions in the scheduler's
// ascending-PID order — exactly the layout Assignment.sync stores its
// flat grants in — so slot i here indexes the assignment's grant
// arrays once AssignInto has synced to the same epoch.
func (fp *fastPath) refreshTasks(e *Engine) {
	for i, a := range e.apps {
		t, ok := e.sched.TaskRef(a.PID)
		if !ok {
			fp.tasks[i] = nil
			fp.slots[i] = -1
			continue
		}
		fp.tasks[i] = t
		fp.slots[i] = e.sched.Slot(a.PID)
	}
	fp.epoch = e.sched.Epoch()
	fp.sigValid = false
}

// stepPre runs the scalar step()'s phases up to — and excluding — the
// thermal integration: demand, CPUfreq governors, thermal governor,
// controller, scheduling, GPU sharing, power, attribution, metering.
// It leaves the per-node power injection in e.powers and the power
// sample in e.fast.sample for stepPost.
func (e *Engine) stepPre() error {
	fp := &e.fast
	dt := e.cfg.StepS
	now := e.now

	// 1. Application demand.
	totalGPUDemand := 0.0
	anyTouch := false
	for i, a := range e.apps {
		d := a.App.Demand(now)
		t := fp.tasks[i]
		if t == nil {
			return fmt.Errorf("sched: unknown PID %d", a.PID)
		}
		if d.CPUHz < 0 || math.IsNaN(d.CPUHz) {
			return fmt.Errorf("sched: demand must be >= 0, got %v", d.CPUHz)
		}
		t.DemandHz = d.CPUHz
		e.gpuDemand[i] = 0
		if d.GPUHz > 0 {
			e.gpuDemand[i] = d.GPUHz
			totalGPUDemand += d.GPUHz
		}
		if d.Touch {
			anyTouch = true
		}
	}
	if anyTouch {
		for i := range e.touched {
			e.touched[i] = true
		}
	}

	// 2. CPUfreq governors on their own periods.
	for _, id := range domainIDs {
		if now+1e-12 < e.nextGovS[id] {
			continue
		}
		gov := fp.govs[id]
		util, load := e.lastUtil[id], e.lastLoad[id]
		if e.utilTime[id] > 0 {
			util = e.utilAccum[id] / e.utilTime[id]
			load = e.loadAccum[id] / e.utilTime[id]
		}
		dom := fp.doms[id]
		freq := gov.Decide(governor.Input{
			NowS:        now,
			UtilCores:   util,
			MaxCoreLoad: load,
			OnlineCores: e.plat.OnlineCores(id),
			Touch:       e.touched[id],
		}, dom)
		dom.Request(now, freq)
		e.utilAccum[id], e.loadAccum[id], e.utilTime[id] = 0, 0, 0
		e.touched[id] = false
		e.nextGovS[id] = now + gov.IntervalS()
	}

	// 3. Thermal governor on its period, acting on the sensed temperature.
	if e.cfg.Thermal != nil && now+1e-12 >= e.nextThermS {
		sensedK := e.SensorTempK()
		for i, id := range domainIDs {
			e.thermStates[i].UtilCores = e.lastUtil[id]
			e.thermStates[i].TempK = fp.temps[fp.nodes[id]]
			e.thermStates[i].OnlineCores = e.plat.OnlineCores(id)
		}
		e.cfg.Thermal.Control(now, sensedK, e.thermStates)
		e.nextThermS = now + e.cfg.Thermal.IntervalS()
	}

	// 4. Custom controller (the paper's governor) on its period.
	if e.cfg.Controller != nil && now+1e-12 >= e.nextCtrlS {
		e.cfg.Controller.Control(now, e)
		e.nextCtrlS = now + e.cfg.Controller.IntervalS()
	}

	// 5. CPU scheduling under current capacities, memoized: when every
	// assignment input — capacities, per-task demand, placement and
	// real-time flag — matches the previous step's, the previous grants
	// are still exact (scheduling is a pure function of those inputs),
	// so e.assign is left holding them untouched. The memo is bypassed
	// whenever the scheduler holds tasks beyond the engine's own apps:
	// their demands are outside the signature.
	little := sched.Capacity{FreqHz: fp.doms[platform.DomLittle].CurrentHz(), Cores: e.plat.OnlineCores(platform.DomLittle)}
	big := sched.Capacity{FreqHz: fp.doms[platform.DomBig].CurrentHz(), Cores: e.plat.OnlineCores(platform.DomBig)}
	fresh := !fp.sigValid ||
		little != fp.sigCaps[0] || big != fp.sigCaps[1] ||
		e.sched.Len() != len(e.apps) ||
		e.sched.Epoch() != fp.epoch
	if !fresh {
		for i, t := range fp.tasks {
			if t.DemandHz != fp.sigDemand[i] || t.Cluster != fp.sigCluster[i] || t.RealTime != fp.sigRT[i] {
				fresh = true
				break
			}
		}
	}
	if fresh {
		if err := e.sched.AssignInto(little, big, &e.assign); err != nil {
			return err
		}
		// Controllers can add or remove tasks; re-resolve the
		// task-aligned caches whenever the layout epoch moved. This
		// runs after AssignInto so slots always describe the
		// just-synced assignment.
		if fp.epoch != e.sched.Epoch() {
			fp.refreshTasks(e)
		}
		if e.sched.Len() == len(e.apps) {
			fp.sigCaps[0], fp.sigCaps[1] = little, big
			for i, t := range fp.tasks {
				if t == nil {
					fp.sigValid = false
					break
				}
				fp.sigDemand[i] = t.DemandHz
				fp.sigCluster[i] = t.Cluster
				fp.sigRT[i] = t.RealTime
				fp.sigValid = true
			}
		} else {
			fp.sigValid = false
		}
	}
	res := &e.assign

	// 6. GPU sharing: proportional to demand under the single GPU queue.
	gpuFreq := float64(fp.doms[platform.DomGPU].CurrentHz())
	for i := range e.gpuAchieved {
		e.gpuAchieved[i] = 0
	}
	gpuGrantTotal := 0.0
	if totalGPUDemand > 0 && gpuFreq > 0 {
		scale := 1.0
		if totalGPUDemand > gpuFreq {
			scale = gpuFreq / totalGPUDemand
		}
		// Accumulate in app-spec order: float addition is not
		// associative, and batched lanes must match scalar runs bitwise.
		for i := range e.apps {
			d := e.gpuDemand[i]
			if d == 0 {
				continue
			}
			g := d * scale
			e.gpuAchieved[i] = g
			gpuGrantTotal += g
		}
	}

	// 7. Per-domain power at current temperatures.
	utilCores := [3]float64{
		res.UtilCores(sched.Little),
		res.UtilCores(sched.Big),
		0,
	}
	if gpuFreq > 0 {
		utilCores[platform.DomGPU] = gpuGrantTotal / gpuFreq
	}
	maxLoad := [3]float64{}
	for i := range e.apps {
		task := fp.tasks[i]
		if task == nil {
			continue
		}
		var domID platform.DomainID
		switch task.Cluster {
		case sched.Little:
			domID = platform.DomLittle
		case sched.Big:
			domID = platform.DomBig
		default:
			continue
		}
		freq := float64(fp.doms[domID].CurrentHz())
		if freq <= 0 {
			continue
		}
		perCore := res.AchievedHzAt(fp.slots[i]) / (float64(task.Threads) * freq)
		if perCore > 1 {
			perCore = 1
		}
		if perCore > maxLoad[domID] {
			maxLoad[domID] = perCore
		}
	}

	sample := &fp.sample
	*sample = power.Sample{TimeS: now}
	totalAchievedHz := gpuGrantTotal
	for i := range e.apps {
		totalAchievedHz += res.AchievedHzAt(fp.slots[i])
	}
	domDynamic := [3]float64{}
	for i := range e.powers {
		e.powers[i] = 0
	}
	for _, id := range domainIDs {
		model := fp.models[id]
		opp := fp.doms[id].CurrentOPP()
		nodeK := fp.temps[fp.nodes[id]]
		dyn := model.Dynamic(opp, utilCores[id])
		tot := dyn + model.IdleW + model.Leakage.Power(opp.VoltageV, nodeK)
		domDynamic[id] = dyn
		sample.W[fp.rails[id]] += tot
		e.powers[fp.nodes[id]] += tot
		load := maxLoad[id]
		if id == platform.DomGPU {
			load = utilCores[id]
		}
		e.lastUtil[id] = utilCores[id]
		e.lastLoad[id] = load
		e.utilAccum[id] += utilCores[id] * dt
		e.loadAccum[id] += load * dt
		e.utilTime[id] += dt
	}
	memW := e.plat.MemPower(totalAchievedHz)
	sample.W[power.RailMem] += memW
	if fp.hasMem {
		e.powers[fp.memNode] += memW
	}
	dynTotal := memW
	for _, id := range domainIDs {
		dynTotal += domDynamic[id] + fp.models[id].IdleW
	}
	e.dynWindow.Push(dynTotal)

	// 8. Per-task power attribution.
	for i := range e.apps {
		task := fp.tasks[i]
		if task == nil {
			continue
		}
		var p float64
		switch task.Cluster {
		case sched.Little:
			p += domDynamic[platform.DomLittle] * res.BusyShareAt(fp.slots[i])
		case sched.Big:
			p += domDynamic[platform.DomBig] * res.BusyShareAt(fp.slots[i])
		}
		if gpuGrantTotal > 0 {
			p += domDynamic[platform.DomGPU] * e.gpuAchieved[i] / gpuGrantTotal
		}
		fp.windows[i].Push(p)
	}

	// 9a. Accounting that precedes thermal integration: meter and DAQ.
	if err := e.meter.Record(*sample, dt); err != nil {
		return err
	}
	if e.cfg.DAQ != nil {
		if err := e.cfg.DAQ.Observe(now, dt, sample.Total()); err != nil {
			return err
		}
	}
	return nil
}

// stepPost runs the scalar step()'s phases after the thermal
// integration: DVFS advance, workload consumption, peak tracking, and
// trace-period sample publication.
func (e *Engine) stepPost() error {
	fp := &e.fast
	dt := e.cfg.StepS
	now := e.now
	res := &e.assign

	// 9b. DVFS transitions complete and residency accrues.
	for _, id := range domainIDs {
		fp.doms[id].Advance(now, dt)
	}

	// 10. Applications consume their grants.
	for i, a := range e.apps {
		a.App.Advance(now, dt, workload.Resources{
			CPUSpeedHz: res.AchievedHzAt(fp.slots[i]),
			GPUSpeedHz: e.gpuAchieved[i],
		})
	}

	// 11. Observation. The max scan mirrors Network.MaxTemperature so
	// ties resolve to the same node.
	maxK := fp.temps[0]
	for _, t := range fp.temps {
		if t > maxK {
			maxK = t
		}
	}
	if maxK > e.maxTempSeen {
		e.maxTempSeen = maxK
	}
	if now+1e-12 >= e.nextTraceS {
		if err := e.publishSample(now, fp.sample); err != nil {
			return err
		}
		e.nextTraceS = now + e.cfg.TracePeriodS
	}

	e.stepCount++
	e.now = float64(e.stepCount) * dt
	return nil
}

// BatchEngine advances B independent engines in lockstep, fusing the
// per-step thermal integration across lanes through a shared
// structure-of-arrays BatchNetwork. All lanes must share a platform
// topology (same thermal network structure) and integration step;
// everything else — workloads, governors, seeds, controllers — may
// differ per lane. Results are bitwise-identical to running each lane
// alone.
//
// A BatchEngine is not safe for concurrent use, and the lanes must not
// be stepped independently while batched. On error the batch stops
// immediately; the failing step may then be partially applied across
// lanes, so a failed batch should be discarded, not resumed.
type BatchEngine struct {
	lanes  []*Engine
	bnet   *thermal.BatchNetwork
	nets   []*thermal.Network
	powers []float64 // node-major packed injection: [node*B + lane]
	stepS  float64
	m      int
}

// NewBatchEngine couples the given engines into one lockstep batch.
func NewBatchEngine(lanes []*Engine) (*BatchEngine, error) {
	b := &BatchEngine{}
	if err := b.Reset(lanes); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset rebinds the batch to a new set of lanes, reusing the fused
// kernel's buffers when the shape is unchanged — the hook that lets
// sweep pools recycle batch engines instead of constructing one per
// matrix cell.
func (b *BatchEngine) Reset(lanes []*Engine) error {
	if len(lanes) == 0 {
		return fmt.Errorf("sim: batch needs at least one lane")
	}
	step := lanes[0].cfg.StepS
	for i, e := range lanes {
		if e.cfg.StepS != step {
			return fmt.Errorf("sim: batch lane %d step %v differs from lane 0 step %v", i, e.cfg.StepS, step)
		}
	}
	b.nets = b.nets[:0]
	for _, e := range lanes {
		b.nets = append(b.nets, e.plat.Net)
	}
	if b.bnet == nil {
		bn, err := thermal.NewBatchNetwork(b.nets)
		if err != nil {
			return err
		}
		b.bnet = bn
	} else if err := b.bnet.Rebind(b.nets); err != nil {
		return err
	}
	b.lanes = append(b.lanes[:0], lanes...)
	b.stepS = step
	b.m = b.bnet.NumNodes()
	if need := b.m * len(lanes); cap(b.powers) < need {
		b.powers = make([]float64, need)
	} else {
		b.powers = b.powers[:need]
	}
	for _, e := range lanes {
		e.initFast()
	}
	return nil
}

// Lanes returns the engines the batch is driving, in lane order.
func (b *BatchEngine) Lanes() []*Engine { return b.lanes }

// Run advances every lane by durationS seconds, mirroring
// Engine.Run's duration-to-step conversion.
func (b *BatchEngine) Run(durationS float64) error {
	if durationS <= 0 || math.IsNaN(durationS) || math.IsInf(durationS, 0) {
		return fmt.Errorf("sim: run duration must be positive and finite, got %v", durationS)
	}
	steps := math.Round(durationS / b.stepS)
	if steps > MaxRunSteps || steps > float64(math.MaxInt) {
		return fmt.Errorf("sim: duration %v spans %.0f steps of %v, exceeding the %.0f-step run bound",
			durationS, steps, b.stepS, math.Min(MaxRunSteps, float64(math.MaxInt)))
	}
	return b.RunSteps(int(steps))
}

// RunSteps advances every lane by exactly steps fixed integration
// steps. Per step, each lane runs its pre-thermal phases, the fused
// kernel integrates all lanes' thermal networks in one pass, and each
// lane runs its post-thermal phases. Steady-state execution performs
// zero allocations.
func (b *BatchEngine) RunSteps(steps int) error {
	if steps < 0 {
		return fmt.Errorf("sim: step count must be >= 0, got %d", steps)
	}
	// Re-sync the packed state once per run: lane temperatures may have
	// been written externally (Prewarm, SetTemperature) since the last
	// fused step. Within the run the kernel keeps both sides coherent.
	b.bnet.Gather()
	B := len(b.lanes)
	for s := 0; s < steps; s++ {
		for li, e := range b.lanes {
			if err := e.stepPre(); err != nil {
				return fmt.Errorf("sim: lane %d t=%.3fs: %w", li, e.now, err)
			}
			for i, w := range e.powers {
				b.powers[i*B+li] = w
			}
		}
		if err := b.bnet.Step(b.stepS, b.powers); err != nil {
			return fmt.Errorf("sim: batch thermal step: %w", err)
		}
		for li, e := range b.lanes {
			if err := e.stepPost(); err != nil {
				return fmt.Errorf("sim: lane %d t=%.3fs: %w", li, e.now, err)
			}
		}
	}
	return nil
}

// BatchPool is a sync.Pool-style free list of reusable BatchEngines:
// Get pops a shell and rebinds it to the caller's lanes (reusing the
// fused kernel's buffers when shapes match), Put returns it. Unlike
// sync.Pool it never drops shells under GC pressure and is safe for
// deterministic reuse accounting in tests. The zero value is ready.
type BatchPool struct {
	mu     sync.Mutex
	free   []*BatchEngine
	reuses int
}

// Get returns a batch engine bound to lanes, recycling a pooled shell
// when one is available.
func (p *BatchPool) Get(lanes []*Engine) (*BatchEngine, error) {
	p.mu.Lock()
	var b *BatchEngine
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free = p.free[:n-1]
		p.reuses++
	}
	p.mu.Unlock()
	if b == nil {
		return NewBatchEngine(lanes)
	}
	if err := b.Reset(lanes); err != nil {
		return nil, err
	}
	return b, nil
}

// Put returns a batch engine to the free list. The engine must not be
// used again until handed back out by Get.
func (p *BatchPool) Put(b *BatchEngine) {
	if b == nil {
		return
	}
	// Drop lane references so pooled shells never pin finished engines
	// (and their recorded traces) in memory.
	b.lanes = b.lanes[:0]
	b.nets = b.nets[:0]
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Reuses reports how many Get calls were served from the free list.
func (p *BatchPool) Reuses() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reuses
}
