// Package power implements the platform power model: per-domain dynamic
// power from utilization, voltage and frequency; temperature-dependent
// subthreshold-style leakage; per-rail accounting matching the
// Odroid-XU3's current sensors (little, big, memory, GPU); and the
// power-to-frequency inversion used by the IPA thermal governor.
package power

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/snapbin"
)

// LeakageParams characterizes temperature-dependent leakage of one
// component: P_leak = K * V * T^2 * exp(-Q/T), the standard subthreshold
// form the paper's stability analysis (via ref [2]) relies on.
type LeakageParams struct {
	// K is the leakage scale factor (W / (V·K²)).
	K float64
	// Q is the activation temperature in Kelvin.
	Q float64
}

// Power returns the leakage power at supply voltage v (volts) and
// temperature t (Kelvin).
func (l LeakageParams) Power(v, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return l.K * v * t * t * math.Exp(-l.Q/t)
}

// DomainModel computes power for one frequency domain (cluster or GPU).
type DomainModel struct {
	// Name matches the dvfs.Domain it models.
	Name string
	// CeffF is the effective switched capacitance in farads; dynamic
	// power is CeffF * V^2 * f * utilization.
	CeffF float64
	// IdleW is the fixed cost of keeping the domain powered (clock tree,
	// uncore) independent of utilization.
	IdleW float64
	// Leakage is the temperature-dependent component.
	Leakage LeakageParams
}

// Validate reports configuration errors.
func (m *DomainModel) Validate() error {
	if m.CeffF <= 0 || math.IsNaN(m.CeffF) {
		return fmt.Errorf("power: domain %q Ceff must be positive, got %v", m.Name, m.CeffF)
	}
	if m.IdleW < 0 {
		return fmt.Errorf("power: domain %q idle power must be >= 0", m.Name)
	}
	if m.Leakage.K < 0 || m.Leakage.Q <= 0 {
		return fmt.Errorf("power: domain %q leakage params invalid (K=%v Q=%v)", m.Name, m.Leakage.K, m.Leakage.Q)
	}
	return nil
}

// Dynamic returns the utilization-dependent switching power at the given
// OPP. Utilization is clamped to [0, 1] per core and summed by the
// caller; util here is the domain-aggregate utilization in "cores"
// (0..numCores).
func (m *DomainModel) Dynamic(opp dvfs.OPP, util float64) float64 {
	if util < 0 {
		util = 0
	}
	return m.CeffF * opp.VoltageV * opp.VoltageV * float64(opp.FreqHz) * util
}

// Total returns dynamic + idle + leakage power at the OPP, aggregate
// utilization and temperature (Kelvin).
func (m *DomainModel) Total(opp dvfs.OPP, util, tempK float64) float64 {
	return m.Dynamic(opp, util) + m.IdleW + m.Leakage.Power(opp.VoltageV, tempK)
}

// MaxFreqWithinBudget returns the highest OPP in table whose estimated
// total power at the given utilization and temperature fits budgetW.
// If even the lowest OPP exceeds the budget, the lowest OPP is returned
// (a domain cannot be clocked below its table). This is the inversion
// the IPA governor performs when converting granted power to frequency.
func (m *DomainModel) MaxFreqWithinBudget(table *dvfs.Table, util, tempK, budgetW float64) dvfs.OPP {
	best := table.Min()
	for i := 0; i < table.Len(); i++ {
		opp := table.At(i)
		if m.Total(opp, util, tempK) <= budgetW {
			best = opp
		}
	}
	return best
}

// Rail identifies one measurable power rail. The Odroid-XU3 exposes
// exactly these four current sensors; the paper's Figure 9 pie charts
// are shares of these rails.
type Rail int

// Rail values in the order the paper reports them.
const (
	RailLittle Rail = iota
	RailBig
	RailMem
	RailGPU
	numRails
)

// String returns the rail name used in traces and figures.
func (r Rail) String() string {
	switch r {
	case RailLittle:
		return "little"
	case RailBig:
		return "big"
	case RailMem:
		return "mem"
	case RailGPU:
		return "gpu"
	default:
		return fmt.Sprintf("rail(%d)", int(r))
	}
}

// NumRails is the number of measurable rails; Sample.W and the sim
// layer's flat per-rail buffers are indexed by Rail in [0, NumRails).
const NumRails = int(numRails)

// Rails lists all rails in reporting order. It allocates a fresh slice;
// hot loops should iterate Rail indices or cache the result instead.
func Rails() []Rail { return []Rail{RailLittle, RailBig, RailMem, RailGPU} }

// Sample is one instantaneous power reading across rails.
type Sample struct {
	// TimeS is the simulation time of the reading.
	TimeS float64
	// W holds per-rail power in watts.
	W [numRails]float64
}

// Total returns the platform total power of the sample.
func (s Sample) Total() float64 {
	t := 0.0
	for _, w := range s.W {
		t += w
	}
	return t
}

// Meter integrates per-rail energy over time; it is the accounting
// behind both the DAQ model and the Figure 9 energy-share pies.
type Meter struct {
	energyJ [numRails]float64
	elapsed float64
	last    Sample
	haveAny bool
}

// Record integrates the sample over dt seconds (rectangle rule, matching
// the simulator's fixed step).
func (m *Meter) Record(s Sample, dt float64) error {
	if dt <= 0 || math.IsNaN(dt) {
		return fmt.Errorf("power: meter dt must be positive, got %v", dt)
	}
	for r, w := range s.W {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("power: negative or NaN power %v on rail %s", w, Rail(r))
		}
		m.energyJ[r] += w * dt
	}
	m.elapsed += dt
	m.last = s
	m.haveAny = true
	return nil
}

// EnergyJ returns the accumulated energy of one rail in joules.
func (m *Meter) EnergyJ(r Rail) float64 { return m.energyJ[r] }

// TotalEnergyJ returns the total accumulated energy in joules.
func (m *Meter) TotalEnergyJ() float64 {
	t := 0.0
	for _, e := range m.energyJ {
		t += e
	}
	return t
}

// Elapsed returns the integrated duration in seconds.
func (m *Meter) Elapsed() float64 { return m.elapsed }

// AveragePowerW returns total energy / elapsed time (0 when empty).
func (m *Meter) AveragePowerW() float64 {
	if m.elapsed == 0 {
		return 0
	}
	return m.TotalEnergyJ() / m.elapsed
}

// Share returns rail r's fraction of total energy (0 when empty).
func (m *Meter) Share(r Rail) float64 {
	t := m.TotalEnergyJ()
	if t == 0 {
		return 0
	}
	return m.energyJ[r] / t
}

// SharesInto fills dst — indexed by Rail, len >= NumRails — with every
// rail's fraction of total energy (all zeros when nothing was
// recorded). It computes the total once and allocates nothing: the
// per-sample counterpart of Shares for callers polling the meter in a
// loop.
func (m *Meter) SharesInto(dst []float64) error {
	if len(dst) < NumRails {
		return fmt.Errorf("power: got %d share slots for %d rails", len(dst), NumRails)
	}
	t := m.TotalEnergyJ()
	for r := 0; r < NumRails; r++ {
		if t == 0 {
			dst[r] = 0
		} else {
			dst[r] = m.energyJ[r] / t
		}
	}
	return nil
}

// Shares returns every rail's fraction of total energy as a map view
// built on SharesInto.
func (m *Meter) Shares() map[Rail]float64 {
	var flat [numRails]float64
	_ = m.SharesInto(flat[:]) // len is statically sufficient
	out := make(map[Rail]float64, int(numRails))
	for r, v := range flat {
		out[Rail(r)] = v
	}
	return out
}

// Last returns the most recent sample recorded (zero Sample when empty).
func (m *Meter) Last() Sample { return m.last }

// Reset clears all accumulated energy and elapsed time.
func (m *Meter) Reset() { *m = Meter{} }

// SaveState serializes the meter: per-rail energy, elapsed time, and
// the last sample.
func (m *Meter) SaveState(w *snapbin.Writer) {
	for _, e := range m.energyJ {
		w.PutF64(e)
	}
	w.PutF64(m.elapsed)
	w.PutF64(m.last.TimeS)
	for _, p := range m.last.W {
		w.PutF64(p)
	}
	w.PutBool(m.haveAny)
}

// LoadState restores state saved by SaveState.
func (m *Meter) LoadState(r *snapbin.Reader) error {
	var next Meter
	for i := range next.energyJ {
		next.energyJ[i] = r.F64()
	}
	next.elapsed = r.F64()
	next.last.TimeS = r.F64()
	for i := range next.last.W {
		next.last.W[i] = r.F64()
	}
	next.haveAny = r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("power: meter: %w", err)
	}
	*m = next
	return nil
}
