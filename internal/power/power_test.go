package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

const mhz = 1_000_000

func bigModel() *DomainModel {
	return &DomainModel{
		Name:    "big",
		CeffF:   1.0e-9,
		IdleW:   0.05,
		Leakage: LeakageParams{K: 2e-5, Q: 1200},
	}
}

func bigTable(t *testing.T) *dvfs.Table {
	t.Helper()
	tbl, err := dvfs.NewTable(
		dvfs.OPP{FreqHz: 384 * mhz, VoltageV: 0.85},
		dvfs.OPP{FreqHz: 960 * mhz, VoltageV: 1.00},
		dvfs.OPP{FreqHz: 1440 * mhz, VoltageV: 1.10},
		dvfs.OPP{FreqHz: 1958 * mhz, VoltageV: 1.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestLeakageIncreasesWithTemperature(t *testing.T) {
	l := LeakageParams{K: 1e-5, Q: 1200}
	p40 := l.Power(1.0, 313.15)
	p80 := l.Power(1.0, 353.15)
	if p80 <= p40 {
		t.Errorf("leakage at 80C (%v) should exceed 40C (%v)", p80, p40)
	}
}

func TestLeakageZeroBelowAbsoluteZero(t *testing.T) {
	l := LeakageParams{K: 1e-5, Q: 1200}
	if got := l.Power(1.0, 0); got != 0 {
		t.Errorf("leakage at T=0 should be 0, got %v", got)
	}
	if got := l.Power(1.0, -10); got != 0 {
		t.Errorf("leakage at negative T should be 0, got %v", got)
	}
}

func TestLeakageScalesWithVoltage(t *testing.T) {
	l := LeakageParams{K: 1e-5, Q: 1200}
	if l.Power(1.2, 350) <= l.Power(0.9, 350) {
		t.Error("leakage should grow with voltage")
	}
}

func TestValidate(t *testing.T) {
	good := bigModel()
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	cases := []DomainModel{
		{Name: "noceff", CeffF: 0, Leakage: LeakageParams{K: 1, Q: 1}},
		{Name: "negidle", CeffF: 1e-9, IdleW: -1, Leakage: LeakageParams{K: 1, Q: 1}},
		{Name: "negk", CeffF: 1e-9, Leakage: LeakageParams{K: -1, Q: 1}},
		{Name: "noq", CeffF: 1e-9, Leakage: LeakageParams{K: 1, Q: 0}},
	}
	for _, m := range cases {
		m := m
		if err := m.Validate(); err == nil {
			t.Errorf("model %q should be invalid", m.Name)
		}
	}
}

func TestDynamicPowerFormula(t *testing.T) {
	m := bigModel()
	opp := dvfs.OPP{FreqHz: 1000 * mhz, VoltageV: 1.0}
	got := m.Dynamic(opp, 2.0) // 2 cores fully busy
	want := 1.0e-9 * 1.0 * 1.0 * 1000e6 * 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("dynamic = %v, want %v", got, want)
	}
}

func TestDynamicClampsNegativeUtil(t *testing.T) {
	m := bigModel()
	opp := dvfs.OPP{FreqHz: 1000 * mhz, VoltageV: 1.0}
	if got := m.Dynamic(opp, -3); got != 0 {
		t.Errorf("dynamic with negative util = %v, want 0", got)
	}
}

func TestTotalComposition(t *testing.T) {
	m := bigModel()
	opp := dvfs.OPP{FreqHz: 960 * mhz, VoltageV: 1.0}
	tot := m.Total(opp, 1.0, 350)
	want := m.Dynamic(opp, 1.0) + m.IdleW + m.Leakage.Power(1.0, 350)
	if math.Abs(tot-want) > 1e-12 {
		t.Errorf("total = %v, want %v", tot, want)
	}
}

func TestPowerMonotoneInFrequencyProperty(t *testing.T) {
	m := bigModel()
	tbl := bigTable(t)
	f := func(utilPct uint8, tempOff uint8) bool {
		util := float64(utilPct%101) / 100 * 4
		temp := 300 + float64(tempOff%80)
		prev := -1.0
		for i := 0; i < tbl.Len(); i++ {
			p := m.Total(tbl.At(i), util, temp)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxFreqWithinBudget(t *testing.T) {
	m := bigModel()
	tbl := bigTable(t)
	temp := 330.0
	// A generous budget admits the max OPP.
	pMax := m.Total(tbl.Max(), 4, temp)
	if got := m.MaxFreqWithinBudget(tbl, 4, temp, pMax+0.1); got.FreqHz != tbl.Max().FreqHz {
		t.Errorf("generous budget -> %d, want max", got.FreqHz)
	}
	// A starvation budget still returns the min OPP.
	if got := m.MaxFreqWithinBudget(tbl, 4, temp, 0); got.FreqHz != tbl.Min().FreqHz {
		t.Errorf("zero budget -> %d, want min", got.FreqHz)
	}
	// A mid budget returns an OPP whose power fits and whose successor
	// does not.
	mid := m.Total(tbl.At(1), 4, temp) + 1e-9
	got := m.MaxFreqWithinBudget(tbl, 4, temp, mid)
	if got.FreqHz != tbl.At(1).FreqHz {
		t.Errorf("mid budget -> %d, want %d", got.FreqHz, tbl.At(1).FreqHz)
	}
}

func TestMaxFreqBudgetRespectedProperty(t *testing.T) {
	m := bigModel()
	tbl := bigTable(t)
	f := func(budgetCentiW uint16, utilPct uint8) bool {
		budget := float64(budgetCentiW) / 100
		util := float64(utilPct%101) / 100 * 4
		opp := m.MaxFreqWithinBudget(tbl, util, 330, budget)
		if opp.FreqHz == tbl.Min().FreqHz {
			return true // min is always allowed as a last resort
		}
		return m.Total(opp, util, 330) <= budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRailString(t *testing.T) {
	names := map[Rail]string{
		RailLittle: "little",
		RailBig:    "big",
		RailMem:    "mem",
		RailGPU:    "gpu",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("rail %d = %q, want %q", int(r), r.String(), want)
		}
	}
	if Rail(9).String() == "" {
		t.Error("unknown rail should still stringify")
	}
	if len(Rails()) != 4 {
		t.Errorf("Rails() = %v", Rails())
	}
}

func TestSampleTotal(t *testing.T) {
	s := Sample{W: [4]float64{0.1, 1.2, 0.3, 1.4}}
	if math.Abs(s.Total()-3.0) > 1e-12 {
		t.Errorf("total = %v, want 3.0", s.Total())
	}
}

func TestMeterIntegration(t *testing.T) {
	var m Meter
	s := Sample{W: [4]float64{1, 2, 0, 1}}
	if err := m.Record(s, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.Record(s, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := m.EnergyJ(RailBig); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("big energy = %v, want 2.0", got)
	}
	if got := m.TotalEnergyJ(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("total energy = %v, want 4.0", got)
	}
	if got := m.AveragePowerW(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("avg power = %v, want 4.0", got)
	}
	if got := m.Share(RailBig); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("big share = %v, want 0.5", got)
	}
	if m.Elapsed() != 1.0 {
		t.Errorf("elapsed = %v", m.Elapsed())
	}
	if m.Last() != s {
		t.Error("last sample mismatch")
	}
}

func TestMeterValidation(t *testing.T) {
	var m Meter
	if err := m.Record(Sample{}, 0); err == nil {
		t.Error("expected error for zero dt")
	}
	bad := Sample{W: [4]float64{-1, 0, 0, 0}}
	if err := m.Record(bad, 0.1); err == nil {
		t.Error("expected error for negative power")
	}
	nan := Sample{W: [4]float64{math.NaN(), 0, 0, 0}}
	if err := m.Record(nan, 0.1); err == nil {
		t.Error("expected error for NaN power")
	}
}

func TestMeterSharesSumToOneProperty(t *testing.T) {
	f := func(ws [][4]uint8) bool {
		var m Meter
		for _, w := range ws {
			s := Sample{W: [4]float64{float64(w[0]), float64(w[1]), float64(w[2]), float64(w[3])}}
			if err := m.Record(s, 0.01); err != nil {
				return false
			}
		}
		if m.TotalEnergyJ() == 0 {
			return true
		}
		sum := 0.0
		for _, sh := range m.Shares() {
			sum += sh
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeterEmptyAndReset(t *testing.T) {
	var m Meter
	if m.AveragePowerW() != 0 || m.Share(RailGPU) != 0 {
		t.Error("empty meter should report zeros")
	}
	_ = m.Record(Sample{W: [4]float64{1, 1, 1, 1}}, 1)
	m.Reset()
	if m.TotalEnergyJ() != 0 || m.Elapsed() != 0 {
		t.Error("reset should clear meter")
	}
}
