// Package sched models the OS scheduler view the paper's governor needs:
// processes with cycle demands placed on the big or LITTLE cluster,
// proportional-share execution under a per-cluster cycle capacity,
// real-time registration (processes the application-aware governor must
// not penalize), cluster migration, and per-process attribution of the
// cluster's busy cycles for power accounting.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/snapbin"
)

// ClusterID identifies a CPU cluster.
type ClusterID int

// The two clusters of a big.LITTLE platform.
const (
	Little ClusterID = iota
	Big
	numClusters
)

// String names the cluster.
func (c ClusterID) String() string {
	switch c {
	case Little:
		return "little"
	case Big:
		return "big"
	default:
		return fmt.Sprintf("cluster(%d)", int(c))
	}
}

// Clusters lists both clusters.
func Clusters() []ClusterID { return []ClusterID{Little, Big} }

// Task is one schedulable process.
type Task struct {
	// PID is the unique process ID.
	PID int
	// Name labels the process in traces.
	Name string
	// DemandHz is the desired execution rate in cycles per second.
	DemandHz float64
	// Threads bounds per-process parallelism: a process can use at most
	// Threads cores simultaneously. Must be >= 1.
	Threads int
	// Cluster is the current placement.
	Cluster ClusterID
	// RealTime marks processes registered with the governor so they are
	// never chosen as migration victims (Section IV-B).
	RealTime bool
}

func (t Task) validate() error {
	if t.DemandHz < 0 || math.IsNaN(t.DemandHz) {
		return fmt.Errorf("sched: task %d demand must be >= 0, got %v", t.PID, t.DemandHz)
	}
	if t.Threads < 1 {
		return fmt.Errorf("sched: task %d needs >= 1 thread, got %d", t.PID, t.Threads)
	}
	if t.Cluster != Little && t.Cluster != Big {
		return fmt.Errorf("sched: task %d has invalid cluster %d", t.PID, t.Cluster)
	}
	return nil
}

// Capacity describes one cluster's execution resources for a step.
type Capacity struct {
	// FreqHz is the cluster clock.
	FreqHz uint64
	// Cores is the number of online cores.
	Cores int
}

// TotalHz is the aggregate cycle capacity (cores × frequency).
func (c Capacity) TotalHz() float64 { return float64(c.Cores) * float64(c.FreqHz) }

// Result reports one scheduling step.
type Result struct {
	// AchievedHz maps PID to granted execution rate (cycles/s).
	AchievedHz map[int]float64
	// UtilCores maps cluster to total busy capacity in units of cores
	// (0..Cores).
	UtilCores map[ClusterID]float64
	// BusyShare maps PID to its fraction of its cluster's busy cycles;
	// the power model attributes per-process dynamic power with it.
	BusyShare map[int]float64
}

// Scheduler holds the task set.
type Scheduler struct {
	tasks      map[int]*Task
	order      []int // stable PID iteration order
	migrations int
	epoch      uint64 // bumped whenever the task-set layout changes
}

// New creates an empty scheduler.
func New() *Scheduler {
	return &Scheduler{tasks: make(map[int]*Task)}
}

// Add registers a task. Duplicate PIDs are rejected.
func (s *Scheduler) Add(t Task) error {
	if err := t.validate(); err != nil {
		return err
	}
	if _, ok := s.tasks[t.PID]; ok {
		return fmt.Errorf("sched: duplicate PID %d", t.PID)
	}
	cp := t
	s.tasks[t.PID] = &cp
	s.order = append(s.order, t.PID)
	sort.Ints(s.order)
	s.epoch++
	return nil
}

// Remove deletes a task; removing an unknown PID is an error.
func (s *Scheduler) Remove(pid int) error {
	if _, ok := s.tasks[pid]; !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	delete(s.tasks, pid)
	for i, p := range s.order {
		if p == pid {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.epoch++
	return nil
}

// Epoch returns a counter bumped whenever the task-set layout changes
// (Add or Remove, not demand/placement updates). Callers caching
// per-task state — Assignment's slot map, the sim layer's task-pointer
// cache — key their invalidation on it.
func (s *Scheduler) Epoch() uint64 { return s.epoch }

// Len reports how many tasks the scheduler holds.
func (s *Scheduler) Len() int { return len(s.order) }

// Slot returns pid's position in the scheduler's ascending-PID
// iteration order — the layout Assignment stores its flat grants in —
// or -1 for unknown PIDs. Slots stay stable until the task-set layout
// changes (watch Epoch).
func (s *Scheduler) Slot(pid int) int {
	for i, p := range s.order {
		if p == pid {
			return i
		}
	}
	return -1
}

// TaskRef returns a live read-only view of the task with the given PID.
// The pointer stays valid — and tracks demand and cluster changes —
// until the task-set layout changes (watch Epoch). Callers must not
// mutate the task through it; use SetDemand/Migrate/SetRealTime. It is
// the allocation-free counterpart of Task for per-step hot loops.
func (s *Scheduler) TaskRef(pid int) (*Task, bool) {
	t, ok := s.tasks[pid]
	return t, ok
}

// Task returns a copy of the task with the given PID.
func (s *Scheduler) Task(pid int) (Task, bool) {
	t, ok := s.tasks[pid]
	if !ok {
		return Task{}, false
	}
	return *t, true
}

// Tasks returns copies of all tasks in ascending PID order.
func (s *Scheduler) Tasks() []Task {
	out := make([]Task, 0, len(s.order))
	for _, pid := range s.order {
		out = append(out, *s.tasks[pid])
	}
	return out
}

// SetDemand updates a task's demand (the workload layer calls this every
// step as app phases change).
func (s *Scheduler) SetDemand(pid int, demandHz float64) error {
	t, ok := s.tasks[pid]
	if !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	if demandHz < 0 || math.IsNaN(demandHz) {
		return fmt.Errorf("sched: demand must be >= 0, got %v", demandHz)
	}
	t.DemandHz = demandHz
	return nil
}

// Migrate moves a task to the given cluster. Migrating to the current
// cluster is a no-op that does not count.
func (s *Scheduler) Migrate(pid int, to ClusterID) error {
	t, ok := s.tasks[pid]
	if !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	if to != Little && to != Big {
		return fmt.Errorf("sched: invalid cluster %d", to)
	}
	if t.Cluster == to {
		return nil
	}
	t.Cluster = to
	s.migrations++
	return nil
}

// Migrations reports how many cluster moves occurred.
func (s *Scheduler) Migrations() int { return s.migrations }

// SetRealTime flags or unflags a process as registered real-time.
func (s *Scheduler) SetRealTime(pid int, rt bool) error {
	t, ok := s.tasks[pid]
	if !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	t.RealTime = rt
	return nil
}

// SaveState serializes the scheduler's mutable state: each task's
// demand, placement and real-time flag (in the stable ascending-PID
// order), plus the migration counter. The task-set layout itself is
// construction state and is not serialized — LoadState targets a
// scheduler holding the same task set.
func (s *Scheduler) SaveState(w *snapbin.Writer) {
	w.PutInt(len(s.order))
	for _, pid := range s.order {
		t := s.tasks[pid]
		w.PutInt(pid)
		w.PutF64(t.DemandHz)
		w.PutInt(int(t.Cluster))
		w.PutBool(t.RealTime)
	}
	w.PutInt(s.migrations)
}

// LoadState restores state saved by SaveState into a scheduler with an
// identical task-set layout. Task fields are written through the live
// pointers, so Assignment layouts and sim-layer task caches keyed on
// Epoch stay valid.
func (s *Scheduler) LoadState(r *snapbin.Reader) error {
	n := r.Int()
	if r.Err() == nil && n != len(s.order) {
		return fmt.Errorf("sched: restored task count %d does not match %d", n, len(s.order))
	}
	for _, pid := range s.order {
		gotPID := r.Int()
		demand := r.F64()
		cluster := ClusterID(r.Int())
		rt := r.Bool()
		if r.Err() != nil {
			break
		}
		if gotPID != pid {
			return fmt.Errorf("sched: restored PID %d does not match %d", gotPID, pid)
		}
		if cluster != Little && cluster != Big {
			return fmt.Errorf("sched: restored cluster %d for PID %d is invalid", cluster, pid)
		}
		t := s.tasks[pid]
		t.DemandHz = demand
		t.Cluster = cluster
		t.RealTime = rt
	}
	migrations := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	s.migrations = migrations
	return nil
}

// Assignment is a reusable, index-addressed scheduling result: the
// allocation-free counterpart of Result. Grants are stored in flat
// slices parallel to the scheduler's ascending-PID order; a PID→slot
// map is rebuilt only when the task set changes, so repeated
// AssignInto calls on a stable task set perform zero allocations.
// The zero value is ready to use.
type Assignment struct {
	pids       []int
	achievedHz []float64
	busyShare  []float64
	utilCores  [numClusters]float64

	slot  map[int]int
	epoch uint64
	owner *Scheduler // scheduler the layout was built for
}

// sync rebuilds the flat layout when the scheduler — or its task set —
// changed since the last call; otherwise it only clears the per-call
// values.
func (a *Assignment) sync(s *Scheduler) {
	if a.owner != s || a.epoch != s.epoch || len(a.pids) != len(s.order) {
		a.pids = append(a.pids[:0], s.order...)
		a.achievedHz = make([]float64, len(a.pids))
		a.busyShare = make([]float64, len(a.pids))
		a.slot = make(map[int]int, len(a.pids))
		for i, pid := range a.pids {
			a.slot[pid] = i
		}
		a.epoch = s.epoch
		a.owner = s
	}
	for i := range a.achievedHz {
		a.achievedHz[i] = 0
		a.busyShare[i] = 0
	}
	a.utilCores = [numClusters]float64{}
}

// PIDs returns the assignment's task IDs in ascending order. The slice
// is reused between AssignInto calls; callers must not retain it.
func (a *Assignment) PIDs() []int { return a.pids }

// AchievedHz returns the granted execution rate of pid (0 for unknown
// PIDs).
func (a *Assignment) AchievedHz(pid int) float64 {
	if i, ok := a.slot[pid]; ok {
		return a.achievedHz[i]
	}
	return 0
}

// BusyShare returns pid's fraction of its cluster's busy cycles (0 for
// unknown PIDs).
func (a *Assignment) BusyShare(pid int) float64 {
	if i, ok := a.slot[pid]; ok {
		return a.busyShare[i]
	}
	return 0
}

// AchievedHzAt returns the granted execution rate of the task at the
// given slot of the scheduler's ascending-PID order (Scheduler.Slot);
// out-of-range slots report 0, matching AchievedHz for unknown PIDs.
// It is the index-addressed counterpart of AchievedHz for hot loops
// that resolve slots once per task-set change instead of per call.
func (a *Assignment) AchievedHzAt(slot int) float64 {
	if slot < 0 || slot >= len(a.achievedHz) {
		return 0
	}
	return a.achievedHz[slot]
}

// BusyShareAt returns the busy-cycle share of the task at the given
// slot (0 for out-of-range slots), the index-addressed counterpart of
// BusyShare.
func (a *Assignment) BusyShareAt(slot int) float64 {
	if slot < 0 || slot >= len(a.busyShare) {
		return 0
	}
	return a.busyShare[slot]
}

// UtilCores returns the cluster's total busy capacity in units of cores.
func (a *Assignment) UtilCores(c ClusterID) float64 {
	if c < 0 || c >= numClusters {
		return 0
	}
	return a.utilCores[c]
}

// Assign computes one step of proportional-share scheduling under the
// given per-cluster capacities. Real-time tasks are served first; the
// remaining capacity is split among normal tasks proportionally to their
// (thread-bounded) requests.
//
// Assign is the map-view convenience API; hot loops use AssignInto,
// which produces identical grants without allocating.
func (s *Scheduler) Assign(caps map[ClusterID]Capacity) (Result, error) {
	for _, c := range Clusters() {
		// Capacity validity itself is AssignInto's job; only the
		// map-shaped concern — a missing cluster — is checked here.
		if _, ok := caps[c]; !ok {
			return Result{}, fmt.Errorf("sched: missing capacity for cluster %s", c)
		}
	}
	var a Assignment
	if err := s.AssignInto(caps[Little], caps[Big], &a); err != nil {
		return Result{}, err
	}
	res := Result{
		AchievedHz: make(map[int]float64, len(a.pids)),
		UtilCores:  make(map[ClusterID]float64, int(numClusters)),
		BusyShare:  make(map[int]float64, len(a.pids)),
	}
	for i, pid := range a.pids {
		res.AchievedHz[pid] = a.achievedHz[i]
		res.BusyShare[pid] = a.busyShare[i]
	}
	for _, c := range Clusters() {
		res.UtilCores[c] = a.utilCores[c]
	}
	return res, nil
}

// AssignInto computes one scheduling step into the reusable out
// assignment: the allocation-free fast path of Assign, producing
// bitwise-identical grants. It allocates only when the task set changed
// since out's previous use.
func (s *Scheduler) AssignInto(little, big Capacity, out *Assignment) error {
	caps := [numClusters]Capacity{Little: little, Big: big}
	for _, c := range Clusters() {
		cap := caps[c]
		if cap.Cores < 0 || cap.FreqHz == 0 && cap.Cores > 0 {
			return fmt.Errorf("sched: invalid capacity %+v for cluster %s", cap, c)
		}
	}
	out.sync(s)
	for _, c := range Clusters() {
		s.assignCluster(c, caps[c], out)
	}
	return nil
}

// assignCluster fills out for one cluster. The accumulation order —
// real-time grants in ascending PID order, then normal grants in
// ascending PID order — matches the original map-based implementation
// exactly; float addition is not associative, and the determinism
// invariant pins the sums bitwise.
func (s *Scheduler) assignCluster(c ClusterID, cap Capacity, out *Assignment) {
	total := cap.TotalHz()
	freq := float64(cap.FreqHz)

	// Thread-bounded request for each task on this cluster.
	request := func(t *Task) float64 {
		bound := freq * float64(t.Threads)
		if t.DemandHz < bound {
			return t.DemandHz
		}
		return bound
	}

	// Pass 1: real-time tasks, scaled only if they alone exceed capacity.
	rtReq := 0.0
	for _, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster == c && t.RealTime {
			rtReq += request(t)
		}
	}
	rtScale := 1.0
	if rtReq > total && rtReq > 0 {
		rtScale = total / rtReq
	}
	granted := 0.0
	for i, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster != c || !t.RealTime {
			continue
		}
		g := request(t) * rtScale
		out.achievedHz[i] = g
		granted += g
	}

	// Pass 2: normal tasks share what remains proportionally.
	remaining := total - granted
	if remaining < 0 {
		remaining = 0
	}
	normReq := 0.0
	for _, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster == c && !t.RealTime {
			normReq += request(t)
		}
	}
	scale := 1.0
	if normReq > remaining {
		if normReq == 0 {
			scale = 0
		} else {
			scale = remaining / normReq
		}
	}
	for i, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster != c || t.RealTime {
			continue
		}
		g := request(t) * scale
		out.achievedHz[i] = g
		granted += g
	}

	// Utilization in cores and per-task busy share.
	if freq > 0 {
		out.utilCores[c] = granted / freq
	} else {
		out.utilCores[c] = 0
	}
	for i, pid := range s.order {
		if s.tasks[pid].Cluster != c {
			continue
		}
		if granted > 0 {
			out.busyShare[i] = out.achievedHz[i] / granted
		} else {
			out.busyShare[i] = 0
		}
	}
}

// MostPowerHungry returns the PID on the given cluster with the highest
// window-averaged power among non-real-time tasks, using the caller's
// per-PID averages. It returns (-1, false) when no eligible task exists.
// This is the victim-selection rule of the paper's governor.
func (s *Scheduler) MostPowerHungry(c ClusterID, avgPowerW map[int]float64) (int, bool) {
	return s.MostPowerHungryFunc(c, func(pid int) float64 { return avgPowerW[pid] })
}

// MostPowerHungryFunc is MostPowerHungry with a lookup function instead
// of a materialized map, so periodic controllers can select victims
// without building a per-call power map.
func (s *Scheduler) MostPowerHungryFunc(c ClusterID, avgPowerW func(pid int) float64) (int, bool) {
	bestPID, bestW := -1, -1.0
	for _, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster != c || t.RealTime {
			continue
		}
		w := avgPowerW(pid)
		if w > bestW {
			bestPID, bestW = pid, w
		}
	}
	return bestPID, bestPID >= 0
}
