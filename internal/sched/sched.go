// Package sched models the OS scheduler view the paper's governor needs:
// processes with cycle demands placed on the big or LITTLE cluster,
// proportional-share execution under a per-cluster cycle capacity,
// real-time registration (processes the application-aware governor must
// not penalize), cluster migration, and per-process attribution of the
// cluster's busy cycles for power accounting.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// ClusterID identifies a CPU cluster.
type ClusterID int

// The two clusters of a big.LITTLE platform.
const (
	Little ClusterID = iota
	Big
	numClusters
)

// String names the cluster.
func (c ClusterID) String() string {
	switch c {
	case Little:
		return "little"
	case Big:
		return "big"
	default:
		return fmt.Sprintf("cluster(%d)", int(c))
	}
}

// Clusters lists both clusters.
func Clusters() []ClusterID { return []ClusterID{Little, Big} }

// Task is one schedulable process.
type Task struct {
	// PID is the unique process ID.
	PID int
	// Name labels the process in traces.
	Name string
	// DemandHz is the desired execution rate in cycles per second.
	DemandHz float64
	// Threads bounds per-process parallelism: a process can use at most
	// Threads cores simultaneously. Must be >= 1.
	Threads int
	// Cluster is the current placement.
	Cluster ClusterID
	// RealTime marks processes registered with the governor so they are
	// never chosen as migration victims (Section IV-B).
	RealTime bool
}

func (t Task) validate() error {
	if t.DemandHz < 0 || math.IsNaN(t.DemandHz) {
		return fmt.Errorf("sched: task %d demand must be >= 0, got %v", t.PID, t.DemandHz)
	}
	if t.Threads < 1 {
		return fmt.Errorf("sched: task %d needs >= 1 thread, got %d", t.PID, t.Threads)
	}
	if t.Cluster != Little && t.Cluster != Big {
		return fmt.Errorf("sched: task %d has invalid cluster %d", t.PID, t.Cluster)
	}
	return nil
}

// Capacity describes one cluster's execution resources for a step.
type Capacity struct {
	// FreqHz is the cluster clock.
	FreqHz uint64
	// Cores is the number of online cores.
	Cores int
}

// TotalHz is the aggregate cycle capacity (cores × frequency).
func (c Capacity) TotalHz() float64 { return float64(c.Cores) * float64(c.FreqHz) }

// Result reports one scheduling step.
type Result struct {
	// AchievedHz maps PID to granted execution rate (cycles/s).
	AchievedHz map[int]float64
	// UtilCores maps cluster to total busy capacity in units of cores
	// (0..Cores).
	UtilCores map[ClusterID]float64
	// BusyShare maps PID to its fraction of its cluster's busy cycles;
	// the power model attributes per-process dynamic power with it.
	BusyShare map[int]float64
}

// Scheduler holds the task set.
type Scheduler struct {
	tasks      map[int]*Task
	order      []int // stable PID iteration order
	migrations int
}

// New creates an empty scheduler.
func New() *Scheduler {
	return &Scheduler{tasks: make(map[int]*Task)}
}

// Add registers a task. Duplicate PIDs are rejected.
func (s *Scheduler) Add(t Task) error {
	if err := t.validate(); err != nil {
		return err
	}
	if _, ok := s.tasks[t.PID]; ok {
		return fmt.Errorf("sched: duplicate PID %d", t.PID)
	}
	cp := t
	s.tasks[t.PID] = &cp
	s.order = append(s.order, t.PID)
	sort.Ints(s.order)
	return nil
}

// Remove deletes a task; removing an unknown PID is an error.
func (s *Scheduler) Remove(pid int) error {
	if _, ok := s.tasks[pid]; !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	delete(s.tasks, pid)
	for i, p := range s.order {
		if p == pid {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Task returns a copy of the task with the given PID.
func (s *Scheduler) Task(pid int) (Task, bool) {
	t, ok := s.tasks[pid]
	if !ok {
		return Task{}, false
	}
	return *t, true
}

// Tasks returns copies of all tasks in ascending PID order.
func (s *Scheduler) Tasks() []Task {
	out := make([]Task, 0, len(s.order))
	for _, pid := range s.order {
		out = append(out, *s.tasks[pid])
	}
	return out
}

// SetDemand updates a task's demand (the workload layer calls this every
// step as app phases change).
func (s *Scheduler) SetDemand(pid int, demandHz float64) error {
	t, ok := s.tasks[pid]
	if !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	if demandHz < 0 || math.IsNaN(demandHz) {
		return fmt.Errorf("sched: demand must be >= 0, got %v", demandHz)
	}
	t.DemandHz = demandHz
	return nil
}

// Migrate moves a task to the given cluster. Migrating to the current
// cluster is a no-op that does not count.
func (s *Scheduler) Migrate(pid int, to ClusterID) error {
	t, ok := s.tasks[pid]
	if !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	if to != Little && to != Big {
		return fmt.Errorf("sched: invalid cluster %d", to)
	}
	if t.Cluster == to {
		return nil
	}
	t.Cluster = to
	s.migrations++
	return nil
}

// Migrations reports how many cluster moves occurred.
func (s *Scheduler) Migrations() int { return s.migrations }

// SetRealTime flags or unflags a process as registered real-time.
func (s *Scheduler) SetRealTime(pid int, rt bool) error {
	t, ok := s.tasks[pid]
	if !ok {
		return fmt.Errorf("sched: unknown PID %d", pid)
	}
	t.RealTime = rt
	return nil
}

// Assign computes one step of proportional-share scheduling under the
// given per-cluster capacities. Real-time tasks are served first; the
// remaining capacity is split among normal tasks proportionally to their
// (thread-bounded) requests.
func (s *Scheduler) Assign(caps map[ClusterID]Capacity) (Result, error) {
	res := Result{
		AchievedHz: make(map[int]float64, len(s.tasks)),
		UtilCores:  make(map[ClusterID]float64, int(numClusters)),
		BusyShare:  make(map[int]float64, len(s.tasks)),
	}
	for _, c := range Clusters() {
		cap, ok := caps[c]
		if !ok {
			return Result{}, fmt.Errorf("sched: missing capacity for cluster %s", c)
		}
		if cap.Cores < 0 || cap.FreqHz == 0 && cap.Cores > 0 {
			return Result{}, fmt.Errorf("sched: invalid capacity %+v for cluster %s", cap, c)
		}
		if err := s.assignCluster(c, cap, &res); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// assignCluster fills res for one cluster.
func (s *Scheduler) assignCluster(c ClusterID, cap Capacity, res *Result) error {
	total := cap.TotalHz()
	freq := float64(cap.FreqHz)

	// Thread-bounded request for each task on this cluster.
	request := func(t *Task) float64 {
		perThreadMax := freq
		bound := perThreadMax * float64(t.Threads)
		if t.DemandHz < bound {
			return t.DemandHz
		}
		return bound
	}

	// Pass 1: real-time tasks, scaled only if they alone exceed capacity.
	var rtPIDs, normPIDs []int
	rtReq := 0.0
	for _, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster != c {
			continue
		}
		if t.RealTime {
			rtPIDs = append(rtPIDs, pid)
			rtReq += request(t)
		} else {
			normPIDs = append(normPIDs, pid)
		}
	}
	rtScale := 1.0
	if rtReq > total && rtReq > 0 {
		rtScale = total / rtReq
	}
	granted := 0.0
	for _, pid := range rtPIDs {
		g := request(s.tasks[pid]) * rtScale
		res.AchievedHz[pid] = g
		granted += g
	}

	// Pass 2: normal tasks share what remains proportionally.
	remaining := total - granted
	if remaining < 0 {
		remaining = 0
	}
	normReq := 0.0
	for _, pid := range normPIDs {
		normReq += request(s.tasks[pid])
	}
	scale := 1.0
	if normReq > remaining {
		if normReq == 0 {
			scale = 0
		} else {
			scale = remaining / normReq
		}
	}
	for _, pid := range normPIDs {
		g := request(s.tasks[pid]) * scale
		res.AchievedHz[pid] = g
		granted += g
	}

	// Utilization in cores and per-task busy share.
	if freq > 0 {
		res.UtilCores[c] = granted / freq
	} else {
		res.UtilCores[c] = 0
	}
	for _, pid := range append(append([]int(nil), rtPIDs...), normPIDs...) {
		if granted > 0 {
			res.BusyShare[pid] = res.AchievedHz[pid] / granted
		} else {
			res.BusyShare[pid] = 0
		}
	}
	return nil
}

// MostPowerHungry returns the PID on the given cluster with the highest
// window-averaged power among non-real-time tasks, using the caller's
// per-PID averages. It returns (-1, false) when no eligible task exists.
// This is the victim-selection rule of the paper's governor.
func (s *Scheduler) MostPowerHungry(c ClusterID, avgPowerW map[int]float64) (int, bool) {
	bestPID, bestW := -1, -1.0
	for _, pid := range s.order {
		t := s.tasks[pid]
		if t.Cluster != c || t.RealTime {
			continue
		}
		w := avgPowerW[pid]
		if w > bestW {
			bestPID, bestW = pid, w
		}
	}
	return bestPID, bestPID >= 0
}
