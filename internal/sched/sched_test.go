package sched

import (
	"math"
	"testing"
	"testing/quick"
)

const ghz = 1_000_000_000

func caps(littleHz, bigHz uint64, littleCores, bigCores int) map[ClusterID]Capacity {
	return map[ClusterID]Capacity{
		Little: {FreqHz: littleHz, Cores: littleCores},
		Big:    {FreqHz: bigHz, Cores: bigCores},
	}
}

func TestClusterString(t *testing.T) {
	if Little.String() != "little" || Big.String() != "big" {
		t.Error("cluster names wrong")
	}
	if ClusterID(9).String() == "" {
		t.Error("unknown cluster should stringify")
	}
	if len(Clusters()) != 2 {
		t.Error("expected two clusters")
	}
}

func TestAddValidation(t *testing.T) {
	s := New()
	if err := s.Add(Task{PID: 1, DemandHz: -5, Threads: 1, Cluster: Big}); err == nil {
		t.Error("expected error for negative demand")
	}
	if err := s.Add(Task{PID: 1, DemandHz: 1, Threads: 0, Cluster: Big}); err == nil {
		t.Error("expected error for zero threads")
	}
	if err := s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: ClusterID(7)}); err == nil {
		t.Error("expected error for invalid cluster")
	}
	if err := s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big}); err != nil {
		t.Fatalf("valid add failed: %v", err)
	}
	if err := s.Add(Task{PID: 1, DemandHz: 2, Threads: 1, Cluster: Big}); err == nil {
		t.Error("expected error for duplicate PID")
	}
}

func TestRemove(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big})
	if err := s.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Task(1); ok {
		t.Error("task should be gone")
	}
	if err := s.Remove(1); err == nil {
		t.Error("expected error removing unknown PID")
	}
}

func TestTaskCopySemantics(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, Name: "a", DemandHz: 1, Threads: 1, Cluster: Big})
	got, ok := s.Task(1)
	if !ok {
		t.Fatal("task missing")
	}
	got.DemandHz = 999
	again, _ := s.Task(1)
	if again.DemandHz != 1 {
		t.Error("Task must return a copy")
	}
}

func TestTasksOrderedByPID(t *testing.T) {
	s := New()
	for _, pid := range []int{30, 10, 20} {
		_ = s.Add(Task{PID: pid, DemandHz: 1, Threads: 1, Cluster: Big})
	}
	ts := s.Tasks()
	if len(ts) != 3 || ts[0].PID != 10 || ts[1].PID != 20 || ts[2].PID != 30 {
		t.Errorf("order = %v", ts)
	}
}

func TestSetDemand(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big})
	if err := s.SetDemand(1, 5e9); err != nil {
		t.Fatal(err)
	}
	tk, _ := s.Task(1)
	if tk.DemandHz != 5e9 {
		t.Errorf("demand = %v", tk.DemandHz)
	}
	if err := s.SetDemand(2, 1); err == nil {
		t.Error("expected error for unknown PID")
	}
	if err := s.SetDemand(1, math.NaN()); err == nil {
		t.Error("expected error for NaN demand")
	}
}

func TestUndersubscribedGetsFullDemand(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 0.5 * ghz, Threads: 1, Cluster: Big})
	res, err := s.Assign(caps(1*ghz, 2*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedHz[1] != 0.5*ghz {
		t.Errorf("achieved = %v, want full demand", res.AchievedHz[1])
	}
	if math.Abs(res.UtilCores[Big]-0.25) > 1e-12 {
		t.Errorf("big util = %v, want 0.25 cores", res.UtilCores[Big])
	}
	if res.UtilCores[Little] != 0 {
		t.Errorf("little util = %v, want 0", res.UtilCores[Little])
	}
}

func TestThreadBoundCapsSingleThread(t *testing.T) {
	s := New()
	// One thread cannot exceed one core's worth of cycles.
	_ = s.Add(Task{PID: 1, DemandHz: 10 * ghz, Threads: 1, Cluster: Big})
	res, err := s.Assign(caps(1*ghz, 2*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedHz[1] != 2*ghz {
		t.Errorf("achieved = %v, want one core = 2GHz", res.AchievedHz[1])
	}
}

func TestOversubscribedProportionalShare(t *testing.T) {
	s := New()
	// Two 4-thread tasks each wanting 8 GHz on a 4x1GHz cluster.
	_ = s.Add(Task{PID: 1, DemandHz: 8 * ghz, Threads: 4, Cluster: Big})
	_ = s.Add(Task{PID: 2, DemandHz: 4 * ghz, Threads: 4, Cluster: Big})
	res, err := s.Assign(caps(1*ghz, 1*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Requests bound to 4GHz each (4 threads x 1GHz): 4+4=8 > 4 capacity,
	// so each gets half its request: 2 GHz.
	if math.Abs(res.AchievedHz[1]-2*ghz) > 1 || math.Abs(res.AchievedHz[2]-2*ghz) > 1 {
		t.Errorf("achieved = %v / %v, want 2GHz each", res.AchievedHz[1], res.AchievedHz[2])
	}
	if math.Abs(res.UtilCores[Big]-4) > 1e-9 {
		t.Errorf("util = %v, want saturated 4 cores", res.UtilCores[Big])
	}
}

func TestRealTimeServedFirst(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 3 * ghz, Threads: 4, Cluster: Big, RealTime: true})
	_ = s.Add(Task{PID: 2, DemandHz: 4 * ghz, Threads: 4, Cluster: Big})
	res, err := s.Assign(caps(1*ghz, 1*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AchievedHz[1]-3*ghz) > 1 {
		t.Errorf("RT achieved = %v, want full 3GHz", res.AchievedHz[1])
	}
	if math.Abs(res.AchievedHz[2]-1*ghz) > 1 {
		t.Errorf("normal achieved = %v, want leftover 1GHz", res.AchievedHz[2])
	}
}

func TestBusySharesSumToOnePerCluster(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1 * ghz, Threads: 1, Cluster: Big})
	_ = s.Add(Task{PID: 2, DemandHz: 3 * ghz, Threads: 2, Cluster: Big})
	_ = s.Add(Task{PID: 3, DemandHz: 0.2 * ghz, Threads: 1, Cluster: Little})
	res, err := s.Assign(caps(1*ghz, 2*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	bigSum := res.BusyShare[1] + res.BusyShare[2]
	if math.Abs(bigSum-1) > 1e-9 {
		t.Errorf("big shares sum = %v, want 1", bigSum)
	}
	if math.Abs(res.BusyShare[3]-1) > 1e-9 {
		t.Errorf("little share = %v, want 1", res.BusyShare[3])
	}
	// Task 2 did 3x the work of task 1.
	if math.Abs(res.BusyShare[2]/res.BusyShare[1]-3) > 1e-9 {
		t.Errorf("share ratio = %v, want 3", res.BusyShare[2]/res.BusyShare[1])
	}
}

func TestZeroDemandZeroUtil(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 0, Threads: 1, Cluster: Big})
	res, err := s.Assign(caps(1*ghz, 1*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedHz[1] != 0 || res.UtilCores[Big] != 0 {
		t.Errorf("achieved=%v util=%v, want zeros", res.AchievedHz[1], res.UtilCores[Big])
	}
}

func TestAssignMissingCapacity(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big})
	if _, err := s.Assign(map[ClusterID]Capacity{Big: {FreqHz: ghz, Cores: 4}}); err == nil {
		t.Error("expected error for missing little capacity")
	}
}

func TestMigrate(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1 * ghz, Threads: 1, Cluster: Big})
	if err := s.Migrate(1, Little); err != nil {
		t.Fatal(err)
	}
	tk, _ := s.Task(1)
	if tk.Cluster != Little {
		t.Errorf("cluster = %v, want little", tk.Cluster)
	}
	if s.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", s.Migrations())
	}
	// No-op migration does not count.
	if err := s.Migrate(1, Little); err != nil {
		t.Fatal(err)
	}
	if s.Migrations() != 1 {
		t.Errorf("no-op migration counted: %d", s.Migrations())
	}
	if err := s.Migrate(9, Big); err == nil {
		t.Error("expected error for unknown PID")
	}
	if err := s.Migrate(1, ClusterID(5)); err == nil {
		t.Error("expected error for invalid cluster")
	}
}

func TestMigrationChangesWhereWorkRuns(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 2 * ghz, Threads: 4, Cluster: Big})
	before, _ := s.Assign(caps(1*ghz, 2*ghz, 4, 4))
	if before.UtilCores[Big] == 0 || before.UtilCores[Little] != 0 {
		t.Fatalf("setup: util = %v", before.UtilCores)
	}
	_ = s.Migrate(1, Little)
	after, err := s.Assign(caps(1*ghz, 2*ghz, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if after.UtilCores[Big] != 0 || after.UtilCores[Little] == 0 {
		t.Errorf("after migration util = %v", after.UtilCores)
	}
	// The little cluster is slower; achieved rate must not increase.
	if after.AchievedHz[1] > before.AchievedHz[1] {
		t.Errorf("achieved grew after migrating to slower cluster: %v -> %v",
			before.AchievedHz[1], after.AchievedHz[1])
	}
}

func TestSetRealTime(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big})
	if err := s.SetRealTime(1, true); err != nil {
		t.Fatal(err)
	}
	tk, _ := s.Task(1)
	if !tk.RealTime {
		t.Error("real-time flag not set")
	}
	if err := s.SetRealTime(2, true); err == nil {
		t.Error("expected error for unknown PID")
	}
}

func TestMostPowerHungry(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big})
	_ = s.Add(Task{PID: 2, DemandHz: 1, Threads: 1, Cluster: Big})
	_ = s.Add(Task{PID: 3, DemandHz: 1, Threads: 1, Cluster: Big, RealTime: true})
	_ = s.Add(Task{PID: 4, DemandHz: 1, Threads: 1, Cluster: Little})
	avg := map[int]float64{1: 0.5, 2: 1.5, 3: 9.9, 4: 7.7}
	pid, ok := s.MostPowerHungry(Big, avg)
	if !ok || pid != 2 {
		t.Errorf("victim = %d (%v), want 2 (RT and other-cluster excluded)", pid, ok)
	}
	// Nothing eligible on little? PID 4 is eligible there.
	pid, ok = s.MostPowerHungry(Little, avg)
	if !ok || pid != 4 {
		t.Errorf("little victim = %d", pid)
	}
	empty := New()
	if _, ok := empty.MostPowerHungry(Big, avg); ok {
		t.Error("empty scheduler should report no victim")
	}
}

func TestMostPowerHungryAllRealTime(t *testing.T) {
	s := New()
	_ = s.Add(Task{PID: 1, DemandHz: 1, Threads: 1, Cluster: Big, RealTime: true})
	if _, ok := s.MostPowerHungry(Big, map[int]float64{1: 5}); ok {
		t.Error("all-RT cluster should report no victim")
	}
}

// Property: achieved never exceeds demand, capacity is never exceeded,
// and utilization stays within core count.
func TestAssignInvariantsProperty(t *testing.T) {
	f := func(demands []uint16, threads []uint8, placements []bool) bool {
		s := New()
		n := len(demands)
		if n > 12 {
			n = 12
		}
		for i := 0; i < n; i++ {
			th := 1
			if i < len(threads) {
				th = int(threads[i]%4) + 1
			}
			cl := Little
			if i < len(placements) && placements[i] {
				cl = Big
			}
			if err := s.Add(Task{PID: i + 1, DemandHz: float64(demands[i]) * 1e7, Threads: th, Cluster: cl}); err != nil {
				return false
			}
		}
		cp := caps(1*ghz, 2*ghz, 4, 4)
		res, err := s.Assign(cp)
		if err != nil {
			return false
		}
		sum := map[ClusterID]float64{}
		for _, tk := range s.Tasks() {
			a := res.AchievedHz[tk.PID]
			if a < 0 || a > tk.DemandHz+1e-6 {
				return false
			}
			sum[tk.Cluster] += a
		}
		for _, c := range Clusters() {
			if sum[c] > cp[c].TotalHz()+1e-3 {
				return false
			}
			if res.UtilCores[c] < 0 || res.UtilCores[c] > float64(cp[c].Cores)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
