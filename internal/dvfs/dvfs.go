// Package dvfs models dynamic voltage and frequency scaling domains:
// operating performance point (OPP) tables, per-domain frequency
// selection with thermal caps, transition latency, and residency
// accounting used by the paper's frequency-usage figures.
package dvfs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/snapbin"
)

// OPP is one operating performance point of a domain.
type OPP struct {
	// FreqHz is the clock frequency in Hz.
	FreqHz uint64
	// VoltageV is the supply voltage at this point in volts.
	VoltageV float64
}

// Table is an immutable, ascending-frequency OPP table.
type Table struct {
	opps []OPP
}

// NewTable builds a table from points, sorting by frequency. It rejects
// empty tables, duplicate frequencies, and non-positive values.
func NewTable(points ...OPP) (*Table, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("dvfs: empty OPP table")
	}
	opps := append([]OPP(nil), points...)
	sort.Slice(opps, func(i, j int) bool { return opps[i].FreqHz < opps[j].FreqHz })
	for i, p := range opps {
		if p.FreqHz == 0 {
			return nil, fmt.Errorf("dvfs: OPP %d has zero frequency", i)
		}
		if p.VoltageV <= 0 || math.IsNaN(p.VoltageV) {
			return nil, fmt.Errorf("dvfs: OPP %d (%d Hz) has invalid voltage %v", i, p.FreqHz, p.VoltageV)
		}
		if i > 0 && p.FreqHz == opps[i-1].FreqHz {
			return nil, fmt.Errorf("dvfs: duplicate OPP frequency %d Hz", p.FreqHz)
		}
		if i > 0 && p.VoltageV < opps[i-1].VoltageV {
			return nil, fmt.Errorf("dvfs: voltage must be non-decreasing with frequency (OPP %d)", i)
		}
	}
	return &Table{opps: opps}, nil
}

// MustTable is NewTable that panics on error; for static platform tables.
func MustTable(points ...OPP) *Table {
	t, err := NewTable(points...)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of OPPs.
func (t *Table) Len() int { return len(t.opps) }

// At returns the i-th OPP in ascending frequency order.
func (t *Table) At(i int) OPP { return t.opps[i] }

// Min returns the lowest-frequency OPP.
func (t *Table) Min() OPP { return t.opps[0] }

// Max returns the highest-frequency OPP.
func (t *Table) Max() OPP { return t.opps[len(t.opps)-1] }

// Frequencies returns all frequencies ascending.
func (t *Table) Frequencies() []uint64 {
	out := make([]uint64, len(t.opps))
	for i, p := range t.opps {
		out[i] = p.FreqHz
	}
	return out
}

// IndexOf returns the index of the OPP with exactly freqHz, or -1.
func (t *Table) IndexOf(freqHz uint64) int {
	for i, p := range t.opps {
		if p.FreqHz == freqHz {
			return i
		}
	}
	return -1
}

// Floor returns the highest OPP with frequency <= freqHz. If freqHz is
// below the table minimum, the minimum OPP is returned.
func (t *Table) Floor(freqHz uint64) OPP {
	best := t.opps[0]
	for _, p := range t.opps {
		if p.FreqHz <= freqHz {
			best = p
		} else {
			break
		}
	}
	return best
}

// Ceil returns the lowest OPP with frequency >= freqHz. If freqHz is
// above the table maximum, the maximum OPP is returned.
func (t *Table) Ceil(freqHz uint64) OPP {
	for _, p := range t.opps {
		if p.FreqHz >= freqHz {
			return p
		}
	}
	return t.Max()
}

// Voltage returns the voltage for exactly freqHz, or an error if the
// frequency is not an OPP of this table.
func (t *Table) Voltage(freqHz uint64) (float64, error) {
	if i := t.IndexOf(freqHz); i >= 0 {
		return t.opps[i].VoltageV, nil
	}
	return 0, fmt.Errorf("dvfs: %d Hz is not an OPP of this table", freqHz)
}

// Domain is one frequency domain (a CPU cluster or a GPU): a table plus
// the current and capped frequency, transition latency, and residency
// accounting.
type Domain struct {
	name    string
	table   *Table
	current uint64
	capHz   uint64 // thermal cap; 0 means uncapped
	floorHz uint64 // minimum allowed; 0 means table min

	transitionLatencyS float64
	pendingFreq        uint64
	pendingUntil       float64
	transitions        int

	// Residency is a flat per-OPP accumulator indexed by table position
	// (currentIdx caches the current frequency's index, currentOPP the
	// full point): Advance and the power model run once per domain per
	// simulation step, and a map increment plus a table scan there were
	// among the hottest non-arithmetic costs in the whole step path.
	// The map views the figures consume are built on demand.
	residency  []float64
	currentIdx int
	currentOPP OPP
}

// NewDomain creates a domain starting at the table's minimum frequency.
func NewDomain(name string, table *Table, transitionLatencyS float64) (*Domain, error) {
	if table == nil {
		return nil, fmt.Errorf("dvfs: domain %q needs an OPP table", name)
	}
	if transitionLatencyS < 0 {
		return nil, fmt.Errorf("dvfs: domain %q transition latency must be >= 0", name)
	}
	return &Domain{
		name:               name,
		table:              table,
		current:            table.Min().FreqHz,
		currentOPP:         table.Min(),
		transitionLatencyS: transitionLatencyS,
		residency:          make([]float64, table.Len()),
	}, nil
}

// setCurrent switches the running frequency, keeping the residency
// index and OPP caches in step. freqHz must be a table frequency
// (every caller clamps through Table.Floor first).
func (d *Domain) setCurrent(freqHz uint64) {
	d.current = freqHz
	d.currentIdx = d.table.IndexOf(freqHz)
	d.currentOPP = d.table.At(d.currentIdx)
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Table returns the domain's OPP table.
func (d *Domain) Table() *Table { return d.table }

// CurrentHz returns the frequency the domain is running at now.
func (d *Domain) CurrentHz() uint64 { return d.current }

// CurrentOPP returns the full OPP the domain is running at.
func (d *Domain) CurrentOPP() OPP { return d.currentOPP }

// Transitions reports how many completed frequency changes occurred.
func (d *Domain) Transitions() int { return d.transitions }

// SetCap imposes a thermal frequency cap (Hz); 0 removes the cap.
// Requests above the cap are clamped. If the domain currently runs above
// the new cap, it is clamped immediately (thermal throttles bypass
// transition latency, as hardware throttles do).
func (d *Domain) SetCap(capHz uint64) {
	d.capHz = capHz
	if capHz != 0 && d.current > capHz {
		d.setCurrent(d.table.Floor(capHz).FreqHz)
		d.pendingFreq = 0
		d.transitions++
	}
	if capHz != 0 && d.pendingFreq > capHz {
		d.pendingFreq = d.table.Floor(capHz).FreqHz
	}
}

// Cap returns the active cap (0 when uncapped).
func (d *Domain) Cap() uint64 { return d.capHz }

// SetFloor imposes a minimum frequency (Hz); 0 removes it. Floors model
// boost holds (the interactive governor's touch boost).
func (d *Domain) SetFloor(floorHz uint64) {
	d.floorHz = floorHz
}

// Floor returns the active floor (0 when none).
func (d *Domain) Floor() uint64 { return d.floorHz }

// effectiveTarget clamps a requested frequency to table, cap and floor.
func (d *Domain) effectiveTarget(freqHz uint64) uint64 {
	if d.floorHz != 0 && freqHz < d.floorHz {
		freqHz = d.floorHz
	}
	if d.capHz != 0 && freqHz > d.capHz {
		freqHz = d.capHz
	}
	return d.table.Floor(freqHz).FreqHz
}

// Request asks the domain to move to freqHz at time nowS. The change
// completes after the transition latency; a newer request supersedes a
// pending one. Returns the frequency actually targeted after clamping.
func (d *Domain) Request(nowS float64, freqHz uint64) uint64 {
	target := d.effectiveTarget(freqHz)
	if target == d.current && d.pendingFreq == 0 {
		return target
	}
	if d.transitionLatencyS == 0 {
		if target != d.current {
			d.setCurrent(target)
			d.transitions++
		}
		d.pendingFreq = 0
		return target
	}
	d.pendingFreq = target
	d.pendingUntil = nowS + d.transitionLatencyS
	return target
}

// Advance accounts dt seconds of residency at the current frequency and
// completes any pending transition whose latency has elapsed by the end
// of the interval. Call once per simulation step.
func (d *Domain) Advance(nowS, dt float64) {
	d.residency[d.currentIdx] += dt
	if d.pendingFreq != 0 && nowS+dt+1e-12 >= d.pendingUntil {
		if d.pendingFreq != d.current {
			d.setCurrent(d.pendingFreq)
			d.transitions++
		}
		d.pendingFreq = 0
	}
}

// Residency returns the nonzero per-frequency residency in seconds.
func (d *Domain) Residency() map[uint64]float64 {
	out := make(map[uint64]float64, len(d.residency))
	for i, s := range d.residency {
		if s != 0 {
			out[d.table.At(i).FreqHz] = s
		}
	}
	return out
}

// ResidencyShare returns each OPP frequency's share of total residency,
// including zero entries for unused OPPs so histograms have stable bins.
func (d *Domain) ResidencyShare() map[uint64]float64 {
	total := 0.0
	for _, s := range d.residency {
		total += s
	}
	out := make(map[uint64]float64, d.table.Len())
	for i, f := range d.table.Frequencies() {
		if total == 0 {
			out[f] = 0
		} else {
			out[f] = d.residency[i] / total
		}
	}
	return out
}

// SaveState serializes the domain's mutable state: current frequency,
// cap/floor, pending transition, counters, and per-OPP residency.
func (d *Domain) SaveState(w *snapbin.Writer) {
	w.PutU64(d.current)
	w.PutU64(d.capHz)
	w.PutU64(d.floorHz)
	w.PutU64(d.pendingFreq)
	w.PutF64(d.pendingUntil)
	w.PutInt(d.transitions)
	w.PutF64s(d.residency)
}

// LoadState restores state saved by SaveState into a domain built from
// the same table. Restoring through setCurrent keeps the residency
// index and OPP caches coherent.
func (d *Domain) LoadState(r *snapbin.Reader) error {
	current := r.U64()
	capHz := r.U64()
	floorHz := r.U64()
	pendingFreq := r.U64()
	pendingUntil := r.F64()
	transitions := r.Int()
	r.F64sInto(d.residency)
	if err := r.Err(); err != nil {
		return fmt.Errorf("dvfs: domain %q: %w", d.name, err)
	}
	if d.table.IndexOf(current) < 0 {
		return fmt.Errorf("dvfs: domain %q: restored frequency %d Hz is not a table OPP", d.name, current)
	}
	d.setCurrent(current)
	d.capHz = capHz
	d.floorHz = floorHz
	d.pendingFreq = pendingFreq
	d.pendingUntil = pendingUntil
	d.transitions = transitions
	return nil
}

// ResetResidency clears residency accounting (e.g. after warmup).
func (d *Domain) ResetResidency() {
	for i := range d.residency {
		d.residency[i] = 0
	}
}

// MHz formats a frequency in Hz as a MHz label ("510MHz"); used as the
// histogram bin label in the residency figures.
func MHz(freqHz uint64) string {
	return fmt.Sprintf("%dMHz", freqHz/1_000_000)
}
