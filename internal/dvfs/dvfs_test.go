package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

const mhz = 1_000_000

// adreno430 mirrors the Adreno 430 ladder used throughout the paper.
func adreno430(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(
		OPP{FreqHz: 180 * mhz, VoltageV: 0.80},
		OPP{FreqHz: 305 * mhz, VoltageV: 0.85},
		OPP{FreqHz: 390 * mhz, VoltageV: 0.90},
		OPP{FreqHz: 450 * mhz, VoltageV: 0.95},
		OPP{FreqHz: 510 * mhz, VoltageV: 1.00},
		OPP{FreqHz: 600 * mhz, VoltageV: 1.075},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(); err == nil {
		t.Error("expected error for empty table")
	}
	if _, err := NewTable(OPP{FreqHz: 0, VoltageV: 1}); err == nil {
		t.Error("expected error for zero frequency")
	}
	if _, err := NewTable(OPP{FreqHz: 100, VoltageV: 0}); err == nil {
		t.Error("expected error for zero voltage")
	}
	if _, err := NewTable(OPP{FreqHz: 100, VoltageV: math.NaN()}); err == nil {
		t.Error("expected error for NaN voltage")
	}
	if _, err := NewTable(
		OPP{FreqHz: 100, VoltageV: 1},
		OPP{FreqHz: 100, VoltageV: 1.1},
	); err == nil {
		t.Error("expected error for duplicate frequency")
	}
	if _, err := NewTable(
		OPP{FreqHz: 100, VoltageV: 1.2},
		OPP{FreqHz: 200, VoltageV: 1.0},
	); err == nil {
		t.Error("expected error for decreasing voltage")
	}
}

func TestTableSortsAscending(t *testing.T) {
	tbl, err := NewTable(
		OPP{FreqHz: 300, VoltageV: 1.1},
		OPP{FreqHz: 100, VoltageV: 0.9},
		OPP{FreqHz: 200, VoltageV: 1.0},
	)
	if err != nil {
		t.Fatal(err)
	}
	fs := tbl.Frequencies()
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Errorf("frequencies not ascending: %v", fs)
		}
	}
	if tbl.Min().FreqHz != 100 || tbl.Max().FreqHz != 300 {
		t.Errorf("min/max = %d/%d", tbl.Min().FreqHz, tbl.Max().FreqHz)
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic on invalid input")
		}
	}()
	MustTable()
}

func TestFloorCeil(t *testing.T) {
	tbl := adreno430(t)
	tests := []struct {
		in          uint64
		floor, ceil uint64
	}{
		{180 * mhz, 180 * mhz, 180 * mhz},
		{200 * mhz, 180 * mhz, 305 * mhz},
		{389 * mhz, 305 * mhz, 390 * mhz},
		{390 * mhz, 390 * mhz, 390 * mhz},
		{700 * mhz, 600 * mhz, 600 * mhz},
		{1, 180 * mhz, 180 * mhz}, // below table min
	}
	for _, tt := range tests {
		if got := tbl.Floor(tt.in).FreqHz; got != tt.floor {
			t.Errorf("Floor(%d) = %d, want %d", tt.in, got, tt.floor)
		}
		if got := tbl.Ceil(tt.in).FreqHz; got != tt.ceil {
			t.Errorf("Ceil(%d) = %d, want %d", tt.in, got, tt.ceil)
		}
	}
}

func TestIndexOfAndVoltage(t *testing.T) {
	tbl := adreno430(t)
	if i := tbl.IndexOf(390 * mhz); i != 2 {
		t.Errorf("IndexOf(390MHz) = %d, want 2", i)
	}
	if i := tbl.IndexOf(391 * mhz); i != -1 {
		t.Errorf("IndexOf(non-OPP) = %d, want -1", i)
	}
	v, err := tbl.Voltage(510 * mhz)
	if err != nil || v != 1.00 {
		t.Errorf("Voltage(510MHz) = %v, %v", v, err)
	}
	if _, err := tbl.Voltage(123); err == nil {
		t.Error("expected error for non-OPP voltage lookup")
	}
}

func newTestDomain(t *testing.T, latency float64) *Domain {
	t.Helper()
	d, err := NewDomain("gpu", adreno430(t), latency)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDomainValidation(t *testing.T) {
	if _, err := NewDomain("x", nil, 0); err == nil {
		t.Error("expected error for nil table")
	}
	if _, err := NewDomain("x", adreno430(t), -1); err == nil {
		t.Error("expected error for negative latency")
	}
}

func TestDomainStartsAtMin(t *testing.T) {
	d := newTestDomain(t, 0)
	if d.CurrentHz() != 180*mhz {
		t.Errorf("initial freq = %d, want table min", d.CurrentHz())
	}
}

func TestRequestImmediateWithoutLatency(t *testing.T) {
	d := newTestDomain(t, 0)
	got := d.Request(0, 510*mhz)
	if got != 510*mhz || d.CurrentHz() != 510*mhz {
		t.Errorf("request -> %d, current %d", got, d.CurrentHz())
	}
	if d.Transitions() != 1 {
		t.Errorf("transitions = %d, want 1", d.Transitions())
	}
}

func TestRequestRoundsDownToOPP(t *testing.T) {
	d := newTestDomain(t, 0)
	if got := d.Request(0, 500*mhz); got != 450*mhz {
		t.Errorf("request 500MHz -> %d, want 450MHz", got)
	}
}

func TestRequestHonorsLatency(t *testing.T) {
	d := newTestDomain(t, 0.005)
	d.Request(0, 600*mhz)
	if d.CurrentHz() != 180*mhz {
		t.Error("frequency should not change before latency elapses")
	}
	d.Advance(0, 0.001)
	if d.CurrentHz() != 180*mhz {
		t.Error("still pending at 1ms")
	}
	d.Advance(0.001, 0.005)
	if d.CurrentHz() != 600*mhz {
		t.Errorf("after latency freq = %d, want 600MHz", d.CurrentHz())
	}
}

func TestNewerRequestSupersedesPending(t *testing.T) {
	d := newTestDomain(t, 0.005)
	d.Request(0, 600*mhz)
	d.Request(0.001, 305*mhz)
	d.Advance(0.001, 0.01)
	if d.CurrentHz() != 305*mhz {
		t.Errorf("freq = %d, want 305MHz (superseded)", d.CurrentHz())
	}
	// Two requests but only one completed transition.
	if d.Transitions() != 1 {
		t.Errorf("transitions = %d, want 1", d.Transitions())
	}
}

func TestCapClampsRequests(t *testing.T) {
	d := newTestDomain(t, 0)
	d.SetCap(390 * mhz)
	if got := d.Request(0, 600*mhz); got != 390*mhz {
		t.Errorf("capped request -> %d, want 390MHz", got)
	}
	if d.Cap() != 390*mhz {
		t.Errorf("cap = %d", d.Cap())
	}
}

func TestCapThrottlesImmediately(t *testing.T) {
	d := newTestDomain(t, 0.01)
	d.Request(0, 600*mhz)
	d.Advance(0, 0.02) // complete transition
	if d.CurrentHz() != 600*mhz {
		t.Fatalf("setup failed, freq = %d", d.CurrentHz())
	}
	d.SetCap(305 * mhz)
	if d.CurrentHz() != 305*mhz {
		t.Errorf("thermal cap must clamp immediately, freq = %d", d.CurrentHz())
	}
}

func TestCapClampsPendingRequest(t *testing.T) {
	d := newTestDomain(t, 0.01)
	d.Request(0, 600*mhz)
	d.SetCap(390 * mhz)
	d.Advance(0, 0.02)
	if d.CurrentHz() != 390*mhz {
		t.Errorf("pending request should be clamped by cap, freq = %d", d.CurrentHz())
	}
}

func TestUncapRestoresRange(t *testing.T) {
	d := newTestDomain(t, 0)
	d.SetCap(305 * mhz)
	d.SetCap(0)
	if got := d.Request(0, 600*mhz); got != 600*mhz {
		t.Errorf("after uncap request -> %d, want 600MHz", got)
	}
}

func TestFloorRaisesRequests(t *testing.T) {
	d := newTestDomain(t, 0)
	d.SetFloor(450 * mhz)
	if got := d.Request(0, 180*mhz); got != 450*mhz {
		t.Errorf("floored request -> %d, want 450MHz", got)
	}
	if d.Floor() != 450*mhz {
		t.Errorf("floor = %d", d.Floor())
	}
	d.SetFloor(0)
	if got := d.Request(0, 180*mhz); got != 180*mhz {
		t.Errorf("unfloored request -> %d, want 180MHz", got)
	}
}

func TestCapWinsOverFloor(t *testing.T) {
	d := newTestDomain(t, 0)
	d.SetFloor(510 * mhz)
	d.SetCap(305 * mhz)
	if got := d.Request(0, 600*mhz); got != 305*mhz {
		t.Errorf("cap-vs-floor -> %d, want cap 305MHz", got)
	}
}

func TestResidencyAccounting(t *testing.T) {
	d := newTestDomain(t, 0)
	d.Advance(0, 1.0) // 1 s at 180
	d.Request(1.0, 390*mhz)
	d.Advance(1.0, 3.0) // 3 s at 390
	res := d.Residency()
	if !closeTo(res[180*mhz], 1.0) || !closeTo(res[390*mhz], 3.0) {
		t.Errorf("residency = %v", res)
	}
	share := d.ResidencyShare()
	if !closeTo(share[180*mhz], 0.25) || !closeTo(share[390*mhz], 0.75) {
		t.Errorf("share = %v", share)
	}
	// Unused OPPs still present with zero share.
	if _, ok := share[600*mhz]; !ok {
		t.Error("share map should include all OPPs")
	}
	d.ResetResidency()
	if d.ResidencyShare()[180*mhz] != 0 {
		t.Error("reset should clear residency")
	}
}

func closeTo(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestResidencySharesSumToOneProperty(t *testing.T) {
	f := func(reqs []uint16, durs []uint8) bool {
		tbl := MustTable(
			OPP{FreqHz: 100 * mhz, VoltageV: 0.9},
			OPP{FreqHz: 200 * mhz, VoltageV: 1.0},
			OPP{FreqHz: 400 * mhz, VoltageV: 1.1},
		)
		d, err := NewDomain("p", tbl, 0)
		if err != nil {
			return false
		}
		now := 0.0
		any := false
		for i, r := range reqs {
			d.Request(now, uint64(r)*mhz)
			dt := 0.001
			if i < len(durs) {
				dt += float64(durs[i]) * 0.01
			}
			d.Advance(now, dt)
			now += dt
			any = true
		}
		if !any {
			return true
		}
		sum := 0.0
		for _, s := range d.ResidencyShare() {
			if s < 0 || s > 1 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCurrentFreqAlwaysAnOPPProperty(t *testing.T) {
	f := func(reqs []uint32, caps []uint32) bool {
		tbl := adreno430(&testing.T{})
		d, err := NewDomain("gpu", tbl, 0.001)
		if err != nil {
			return false
		}
		now := 0.0
		for i, r := range reqs {
			if i < len(caps) {
				d.SetCap(uint64(caps[i]%700) * mhz)
			}
			d.Request(now, uint64(r%800)*mhz)
			d.Advance(now, 0.002)
			now += 0.002
			if tbl.IndexOf(d.CurrentHz()) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMHzLabel(t *testing.T) {
	if got := MHz(510 * mhz); got != "510MHz" {
		t.Errorf("MHz = %q", got)
	}
}
