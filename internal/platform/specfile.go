package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"slices"
	"strings"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// This file is the declarative counterpart of Spec: a JSON-serializable
// platform description (SpecFile) with strict decoding, defaulting and
// validation, compiled into exactly the same wired Platform the Go
// constructors produce. The two built-in presets are themselves spec
// files (specs/nexus6p.json, specs/odroid-xu3.json) embedded at build
// time and differentially pinned against the frozen Go constructors in
// internal/platform/frozen, so opening the platform space to user specs
// cannot move a single bit of the existing sweeps.

// Size caps on a decoded spec file. They exist so hostile or corrupted
// JSON fails validation with a clear error instead of building a
// pathological simulation (the RK4 kernel walks an m×m conductance
// matrix, so node count is quadratic in cost).
const (
	// MaxSpecNodes bounds the thermal network size.
	MaxSpecNodes = 64
	// MaxSpecOPPs bounds one domain's OPP ladder.
	MaxSpecOPPs = 64
	// MaxSpecCouplings bounds the coupling list (a complete graph on
	// MaxSpecNodes nodes).
	MaxSpecCouplings = MaxSpecNodes * (MaxSpecNodes - 1) / 2
)

// Spec-layer defaults, filled by SpecFile.Normalize.
const (
	// DefaultAmbientC is the ambient temperature when ambient_c is 0.
	DefaultAmbientC = 25.0
	// DefaultSensorPeriodS is the sensor sampling period when
	// sensor.period_s is 0.
	DefaultSensorPeriodS = 0.01
	// DefaultTransitionLatencyS is the DVFS switch latency when
	// transition_latency_s is 0.
	DefaultTransitionLatencyS = 0.001
	// DefaultLeakageQ is the leakage activation temperature (K) when
	// leak_q is 0; both presets share it.
	DefaultLeakageQ = 1800.0
)

// OPPJSON is one operating performance point of a spec file.
type OPPJSON struct {
	// FreqHz is the clock frequency in Hz.
	FreqHz uint64 `json:"freq_hz"`
	// VoltageV is the supply voltage at that point.
	VoltageV float64 `json:"voltage_v"`
}

// NodeJSON declares one thermal node of a spec file.
type NodeJSON struct {
	// Name identifies the node ("big", "pkg", "skin", ...).
	Name string `json:"name"`
	// CapacitanceJPerK is the node thermal mass (required > 0).
	CapacitanceJPerK float64 `json:"capacitance_j_per_k"`
	// GAmbientWPerK couples the node to ambient (0 for internal nodes).
	GAmbientWPerK float64 `json:"g_ambient_w_per_k,omitempty"`
}

// CouplingJSON declares one node-to-node conductance. Conductances are
// symmetric: listing a pair in either orientation (or twice) is
// rejected, so a spec cannot smuggle in an asymmetric matrix.
type CouplingJSON struct {
	A string `json:"a"`
	B string `json:"b"`
	// GWPerK is the conductance between the nodes (required > 0).
	GWPerK float64 `json:"g_w_per_k"`
}

// DomainJSON declares one frequency domain of a spec file. Exactly the
// three big.LITTLE+GPU domains ("little", "big", "gpu") must appear.
type DomainJSON struct {
	// ID is "little", "big" or "gpu".
	ID string `json:"id"`
	// Cores is the core count (1 for a GPU).
	Cores int `json:"cores"`
	// OPPs is the frequency/voltage ladder, ascending.
	OPPs []OPPJSON `json:"opps"`
	// TransitionLatencyS is the DVFS switch latency. 0 is a sentinel
	// for DefaultTransitionLatencyS; a genuinely instantaneous switch
	// must be written as a negligible nonzero value such as 1e-9.
	TransitionLatencyS float64 `json:"transition_latency_s,omitempty"`
	// CeffF is the effective switched capacitance in farads.
	CeffF float64 `json:"ceff_f"`
	// IdleW is the fixed power of keeping the domain on.
	IdleW float64 `json:"idle_w,omitempty"`
	// LeakK and LeakQ parameterize subthreshold leakage
	// P = K·V·T²·e^(−Q/T); LeakQ 0 defaults to DefaultLeakageQ.
	LeakK float64 `json:"leak_k,omitempty"`
	LeakQ float64 `json:"leak_q,omitempty"`
	// Rail names the power rail ("little", "big", "mem", "gpu");
	// empty defaults to the domain's namesake rail.
	Rail string `json:"rail,omitempty"`
	// Node names the thermal node the domain heats; empty defaults to
	// the node named like the domain.
	Node string `json:"node,omitempty"`
}

// SensorJSON parameterizes the governor-facing temperature sensor.
type SensorJSON struct {
	// Node is the sensed thermal node (required).
	Node string `json:"node"`
	// PeriodS is the sampling period (0 = DefaultSensorPeriodS).
	PeriodS float64 `json:"period_s,omitempty"`
	// NoiseK and ResolutionK model measurement noise and quantization
	// (both may be 0 for an ideal sensor).
	NoiseK      float64 `json:"noise_k,omitempty"`
	ResolutionK float64 `json:"resolution_k,omitempty"`
}

// MemJSON parameterizes the memory rail model.
type MemJSON struct {
	// IdleW is the rail's fixed draw.
	IdleW float64 `json:"idle_w,omitempty"`
	// PerGHz adds power proportional to the achieved compute rate.
	PerGHz float64 `json:"per_ghz,omitempty"`
}

// SpecFile is a complete declarative platform description — the JSON
// counterpart of Spec. Decode one with ParseSpecFile (strict: unknown
// fields are rejected), or fill it in code and call Normalize +
// Validate; Compile wires it into a runnable Platform.
type SpecFile struct {
	// Name labels the platform; it is the name scenario and matrix specs
	// reference.
	Name string `json:"name"`
	// AmbientC is the ambient temperature in Celsius. 0 is a sentinel
	// for DefaultAmbientC (like the other zero-defaulted knobs here);
	// a genuine freezing-point environment must be written as a small
	// nonzero value such as 0.01.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// ThermalLimitC is the soft thermal limit governors regulate to
	// (required, above ambient).
	ThermalLimitC float64 `json:"thermal_limit_c"`
	// Nodes, Couplings and Domains define the thermal/power structure.
	Nodes     []NodeJSON     `json:"nodes"`
	Couplings []CouplingJSON `json:"couplings,omitempty"`
	Domains   []DomainJSON   `json:"domains"`
	// Sensor is the governor-facing temperature sensor.
	Sensor SensorJSON `json:"sensor"`
	// Mem is the memory rail model.
	Mem MemJSON `json:"mem,omitempty"`
}

// domainIDByName maps spec-file domain ids to DomainID slots.
func domainIDByName(id string) (DomainID, bool) {
	switch id {
	case "little":
		return DomLittle, true
	case "big":
		return DomBig, true
	case "gpu":
		return DomGPU, true
	default:
		return 0, false
	}
}

// railByName maps spec-file rail names to power rails.
func railByName(name string) (power.Rail, bool) {
	for _, r := range power.Rails() {
		if r.String() == name {
			return r, true
		}
	}
	return 0, false
}

// Normalize fills defaults in place: ambient temperature, sensor
// period, per-domain transition latency, leakage activation
// temperature, and each domain's rail and thermal node (its namesake).
// It is idempotent, so decode → normalize → encode is stable.
func (f *SpecFile) Normalize() {
	if f.AmbientC == 0 {
		f.AmbientC = DefaultAmbientC
	}
	// Canonicalize an explicit-but-empty couplings array (valid when
	// every node couples to ambient directly) to nil: the JSON field is
	// omitempty, so only the nil form round-trips bit-stably.
	if len(f.Couplings) == 0 {
		f.Couplings = nil
	}
	if f.Sensor.PeriodS == 0 {
		f.Sensor.PeriodS = DefaultSensorPeriodS
	}
	for i := range f.Domains {
		d := &f.Domains[i]
		if d.TransitionLatencyS == 0 {
			d.TransitionLatencyS = DefaultTransitionLatencyS
		}
		if d.LeakQ == 0 {
			d.LeakQ = DefaultLeakageQ
		}
		if d.Rail == "" {
			d.Rail = d.ID
		}
		if d.Node == "" {
			d.Node = d.ID
		}
	}
}

// finiteField is one named float checked by Validate.
type finiteField struct {
	name  string
	value float64
}

// Validate checks the spec without building anything, then probes a
// full compile so it is exactly as strict as the engine: any spec it
// accepts must also be accepted by Compile (the fuzz harness pins this
// contract). The explicit checks reject what the engine would merely
// mangle — NaN/Inf parameters, asymmetric or duplicate conductance
// entries, hostile node/OPP counts, a network with no path to ambient.
func (f SpecFile) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("platform: spec needs a name")
	}
	if strings.TrimSpace(f.Name) != f.Name || strings.ContainsAny(f.Name, ",|\n") {
		return fmt.Errorf("platform: spec name %q must be trimmed and free of ',', '|' and newlines (it keys sweep rows)", f.Name)
	}
	if len(f.Nodes) == 0 {
		return fmt.Errorf("platform %q: needs at least one thermal node", f.Name)
	}
	if len(f.Nodes) > MaxSpecNodes {
		return fmt.Errorf("platform %q: %d thermal nodes exceed the %d-node bound", f.Name, len(f.Nodes), MaxSpecNodes)
	}
	if len(f.Couplings) > MaxSpecCouplings {
		return fmt.Errorf("platform %q: %d couplings exceed the %d bound", f.Name, len(f.Couplings), MaxSpecCouplings)
	}

	fields := []finiteField{
		{"ambient_c", f.AmbientC},
		{"thermal_limit_c", f.ThermalLimitC},
		{"sensor.period_s", f.Sensor.PeriodS},
		{"sensor.noise_k", f.Sensor.NoiseK},
		{"sensor.resolution_k", f.Sensor.ResolutionK},
		{"mem.idle_w", f.Mem.IdleW},
		{"mem.per_ghz", f.Mem.PerGHz},
	}
	for _, n := range f.Nodes {
		fields = append(fields,
			finiteField{fmt.Sprintf("node %q capacitance", n.Name), n.CapacitanceJPerK},
			finiteField{fmt.Sprintf("node %q ambient conductance", n.Name), n.GAmbientWPerK})
	}
	for _, c := range f.Couplings {
		fields = append(fields, finiteField{fmt.Sprintf("coupling %s-%s conductance", c.A, c.B), c.GWPerK})
	}
	for _, d := range f.Domains {
		fields = append(fields,
			finiteField{fmt.Sprintf("domain %q transition latency", d.ID), d.TransitionLatencyS},
			finiteField{fmt.Sprintf("domain %q ceff_f", d.ID), d.CeffF},
			finiteField{fmt.Sprintf("domain %q idle_w", d.ID), d.IdleW},
			finiteField{fmt.Sprintf("domain %q leak_k", d.ID), d.LeakK},
			finiteField{fmt.Sprintf("domain %q leak_q", d.ID), d.LeakQ})
		for _, p := range d.OPPs {
			fields = append(fields, finiteField{fmt.Sprintf("domain %q OPP %d Hz voltage", d.ID, p.FreqHz), p.VoltageV})
		}
	}
	for _, fd := range fields {
		if math.IsNaN(fd.value) || math.IsInf(fd.value, 0) {
			return fmt.Errorf("platform %q: %s must be finite, got %v", f.Name, fd.name, fd.value)
		}
	}

	if f.Sensor.NoiseK < 0 || f.Sensor.ResolutionK < 0 {
		return fmt.Errorf("platform %q: sensor noise and resolution must be >= 0", f.Name)
	}
	if f.Sensor.Node == "" {
		return fmt.Errorf("platform %q: sensor needs a node", f.Name)
	}

	// Symmetric conductances only: each unordered node pair may appear
	// once, in either orientation. A pair listed twice — even with equal
	// values, even as (A,B) then (B,A) — is rejected rather than letting
	// the last write win, because the engine stores a symmetric matrix
	// and a spec that looks asymmetric is a spec with a typo.
	seenPairs := make(map[[2]string]bool, len(f.Couplings))
	for _, c := range f.Couplings {
		if c.A == c.B {
			return fmt.Errorf("platform %q: coupling connects node %q to itself", f.Name, c.A)
		}
		if c.GWPerK <= 0 {
			return fmt.Errorf("platform %q: coupling %s-%s conductance must be positive, got %v", f.Name, c.A, c.B, c.GWPerK)
		}
		key := [2]string{c.A, c.B}
		if c.B < c.A {
			key = [2]string{c.B, c.A}
		}
		if seenPairs[key] {
			return fmt.Errorf("platform %q: duplicate coupling between %q and %q (conductances are symmetric; list each pair once)", f.Name, key[0], key[1])
		}
		seenPairs[key] = true
	}

	// The stability analysis (and physics) need at least one path from
	// the network to ambient; Lump rejects it at run time, Validate
	// rejects it here.
	ambientCoupled := false
	for _, n := range f.Nodes {
		if n.GAmbientWPerK > 0 {
			ambientCoupled = true
			break
		}
	}
	if !ambientCoupled {
		return fmt.Errorf("platform %q: no node couples to ambient (heat could never leave the network)", f.Name)
	}

	for _, d := range f.Domains {
		if _, ok := domainIDByName(d.ID); !ok {
			return fmt.Errorf("platform %q: unknown domain id %q (want little, big, gpu)", f.Name, d.ID)
		}
		if len(d.OPPs) == 0 {
			return fmt.Errorf("platform %q: domain %q needs at least one OPP", f.Name, d.ID)
		}
		if len(d.OPPs) > MaxSpecOPPs {
			return fmt.Errorf("platform %q: domain %q has %d OPPs, exceeding the %d bound", f.Name, d.ID, len(d.OPPs), MaxSpecOPPs)
		}
		if _, ok := railByName(d.Rail); !ok {
			return fmt.Errorf("platform %q: domain %q names unknown rail %q", f.Name, d.ID, d.Rail)
		}
	}

	// Everything structural beyond this point — duplicate nodes or
	// domains, missing domains, unknown node references, OPP ladder
	// shape, power-model ranges, thermal limit vs ambient — is checked
	// by compiling a probe. Compile is cheap (small structs, no
	// simulation), and delegating to it means validation can never be
	// weaker than the engine.
	if _, err := f.Compile(0); err != nil {
		return err
	}
	return nil
}

// Spec converts the file to the in-memory platform Spec, building OPP
// tables. seed seeds the platform's sensor noise, exactly like the
// seed argument of the preset constructors.
func (f SpecFile) Spec(seed int64) (Spec, error) {
	spec := Spec{
		Name:              f.Name,
		AmbientC:          f.AmbientC,
		SensorNode:        f.Sensor.Node,
		SensorPeriodS:     f.Sensor.PeriodS,
		SensorNoiseK:      f.Sensor.NoiseK,
		SensorResolutionK: f.Sensor.ResolutionK,
		MemIdleW:          f.Mem.IdleW,
		MemPerGHz:         f.Mem.PerGHz,
		ThermalLimitC:     f.ThermalLimitC,
		Seed:              seed,
	}
	for _, n := range f.Nodes {
		spec.Nodes = append(spec.Nodes, NodeSpec{
			Name:             n.Name,
			CapacitanceJPerK: n.CapacitanceJPerK,
			GAmbientWPerK:    n.GAmbientWPerK,
		})
	}
	for _, c := range f.Couplings {
		spec.Couplings = append(spec.Couplings, CouplingSpec{A: c.A, B: c.B, GWPerK: c.GWPerK})
	}
	for _, d := range f.Domains {
		id, ok := domainIDByName(d.ID)
		if !ok {
			return Spec{}, fmt.Errorf("platform %q: unknown domain id %q (want little, big, gpu)", f.Name, d.ID)
		}
		rail, ok := railByName(d.Rail)
		if !ok {
			return Spec{}, fmt.Errorf("platform %q: domain %q names unknown rail %q", f.Name, d.ID, d.Rail)
		}
		points := make([]dvfs.OPP, len(d.OPPs))
		for i, p := range d.OPPs {
			points[i] = dvfs.OPP{FreqHz: p.FreqHz, VoltageV: p.VoltageV}
		}
		table, err := dvfs.NewTable(points...)
		if err != nil {
			return Spec{}, fmt.Errorf("platform %q: domain %q: %w", f.Name, d.ID, err)
		}
		spec.Domains = append(spec.Domains, DomainSpec{
			ID:                 id,
			Table:              table,
			Cores:              d.Cores,
			TransitionLatencyS: d.TransitionLatencyS,
			Model: power.DomainModel{
				Name:    d.ID,
				CeffF:   d.CeffF,
				IdleW:   d.IdleW,
				Leakage: power.LeakageParams{K: d.LeakK, Q: d.LeakQ},
			},
			Rail:     rail,
			NodeName: d.Node,
		})
	}
	return spec, nil
}

// Compile normalizes the file and wires it into a runnable Platform —
// the spec-file counterpart of New.
func (f SpecFile) Compile(seed int64) (*Platform, error) {
	// Clone before normalizing: the receiver is a value, but its slices
	// share backing arrays with the caller's spec, and Normalize writes
	// through them.
	f = f.Clone()
	f.Normalize()
	spec, err := f.Spec(seed)
	if err != nil {
		return nil, err
	}
	return New(spec)
}

// Clone returns a deep copy: mutating the copy's nodes, couplings or
// domains (including their OPP ladders) cannot affect the original.
// slices.Clone preserves nil-ness, so a clone stays DeepEqual to its
// source even when a spec carries explicit empty arrays.
func (f SpecFile) Clone() SpecFile {
	f.Nodes = slices.Clone(f.Nodes)
	f.Couplings = slices.Clone(f.Couplings)
	f.Domains = slices.Clone(f.Domains)
	for i := range f.Domains {
		f.Domains[i].OPPs = slices.Clone(f.Domains[i].OPPs)
	}
	return f
}

// ParseSpecFile decodes, normalizes and validates a JSON platform spec.
// Unknown fields are rejected so typos fail loudly instead of silently
// simulating the wrong device.
func ParseSpecFile(data []byte) (SpecFile, error) {
	var f SpecFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return SpecFile{}, fmt.Errorf("platform: decode spec: %w", err)
	}
	if dec.More() {
		return SpecFile{}, fmt.Errorf("platform: trailing data after spec document")
	}
	f.Normalize()
	if err := f.Validate(); err != nil {
		return SpecFile{}, err
	}
	return f, nil
}

// LoadSpecFile reads and parses a platform spec file.
func LoadSpecFile(path string) (SpecFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SpecFile{}, fmt.Errorf("platform: %w", err)
	}
	f, err := ParseSpecFile(data)
	if err != nil {
		return SpecFile{}, fmt.Errorf("platform: %s: %w", path, err)
	}
	return f, nil
}

// JSON renders the spec as indented JSON with a trailing newline.
// Encoding a parsed spec and re-parsing it is stable: Normalize is
// idempotent, so decode → normalize → encode converges after one pass.
func (f SpecFile) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("platform: encode spec: %w", err)
	}
	return append(out, '\n'), nil
}
