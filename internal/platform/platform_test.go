package platform

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/thermal"
)

func minimalSpec() Spec {
	table := dvfs.MustTable(dvfs.OPP{FreqHz: 100e6, VoltageV: 0.9})
	model := power.DomainModel{Name: "m", CeffF: 1e-10, Leakage: power.LeakageParams{K: 1e-5, Q: 1000}}
	return Spec{
		Name:     "mini",
		AmbientC: 25,
		Nodes: []NodeSpec{
			{Name: "soc", CapacitanceJPerK: 1, GAmbientWPerK: 0.5},
		},
		Domains: []DomainSpec{
			{ID: DomLittle, Table: table, Cores: 1, Model: model, Rail: power.RailLittle, NodeName: "soc"},
			{ID: DomBig, Table: table, Cores: 1, Model: model, Rail: power.RailBig, NodeName: "soc"},
			{ID: DomGPU, Table: table, Cores: 1, Model: model, Rail: power.RailGPU, NodeName: "soc"},
		},
		SensorNode:    "soc",
		SensorPeriodS: 0.01,
		ThermalLimitC: 70,
	}
}

func TestNewValidates(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"no nodes", func(s *Spec) { s.Nodes = nil }},
		{"zero sensor period", func(s *Spec) { s.SensorPeriodS = 0 }},
		{"limit below ambient", func(s *Spec) { s.ThermalLimitC = 10 }},
		{"negative mem idle", func(s *Spec) { s.MemIdleW = -1 }},
		{"duplicate node", func(s *Spec) { s.Nodes = append(s.Nodes, s.Nodes[0]) }},
		{"unknown coupling node", func(s *Spec) {
			s.Couplings = []CouplingSpec{{A: "soc", B: "nope", GWPerK: 1}}
		}},
		{"unknown sensor node", func(s *Spec) { s.SensorNode = "nope" }},
		{"missing domain", func(s *Spec) { s.Domains = s.Domains[:2] }},
		{"duplicate domain", func(s *Spec) { s.Domains[1].ID = DomLittle }},
		{"zero cores", func(s *Spec) { s.Domains[0].Cores = 0 }},
		{"unknown heat node", func(s *Spec) { s.Domains[0].NodeName = "nope" }},
		{"invalid domain id", func(s *Spec) { s.Domains[0].ID = DomainID(9) }},
	}
	for _, m := range mutate {
		spec := minimalSpec()
		m.f(&spec)
		if _, err := New(spec); err == nil {
			t.Errorf("%s: expected error", m.name)
		}
	}
	if _, err := New(minimalSpec()); err != nil {
		t.Errorf("minimal spec should build: %v", err)
	}
}

func TestDomainIDHelpers(t *testing.T) {
	if DomLittle.String() != "little" || DomBig.String() != "big" || DomGPU.String() != "gpu" {
		t.Error("domain names wrong")
	}
	if !strings.Contains(DomainID(7).String(), "7") {
		t.Error("unknown domain should include its number")
	}
	if c, ok := DomLittle.Cluster(); !ok || c.String() != "little" {
		t.Error("little cluster mapping wrong")
	}
	if c, ok := DomBig.Cluster(); !ok || c.String() != "big" {
		t.Error("big cluster mapping wrong")
	}
	if _, ok := DomGPU.Cluster(); ok {
		t.Error("gpu must not map to a scheduler cluster")
	}
	if len(DomainIDs()) != 3 {
		t.Error("expected 3 domains")
	}
}

func TestNexus6PWiring(t *testing.T) {
	p := Nexus6P(1)
	if p.Name() != "nexus6p" {
		t.Error("wrong name")
	}
	// The paper's Adreno 430 ladder, exactly.
	want := []uint64{180e6, 305e6, 390e6, 450e6, 510e6, 600e6}
	got := p.Domain(DomGPU).Table().Frequencies()
	if len(got) != len(want) {
		t.Fatalf("GPU OPP count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("GPU OPP %d = %d, want %d", i, got[i], want[i])
		}
	}
	// The 384 and 960 MHz A57 points named in Figure 6 must exist.
	big := p.Domain(DomBig).Table()
	if big.IndexOf(384e6) < 0 || big.IndexOf(960e6) < 0 {
		t.Error("big table must include the paper's 384 and 960 MHz OPPs")
	}
	if p.Cores(DomBig) != 4 || p.Cores(DomLittle) != 4 || p.Cores(DomGPU) != 1 {
		t.Error("core counts wrong")
	}
	if _, ok := p.NodeByName("skin"); !ok {
		t.Error("phone needs a skin node")
	}
	if _, ok := p.NodeByName("pkg"); !ok {
		t.Error("phone needs a package node")
	}
	if p.Rail(DomBig) != power.RailBig || p.Rail(DomGPU) != power.RailGPU {
		t.Error("rail mapping wrong")
	}
}

func TestOdroidXU3Wiring(t *testing.T) {
	p := OdroidXU3(1)
	if p.Name() != "odroid-xu3" {
		t.Error("wrong name")
	}
	if p.Domain(DomBig).Table().Max().FreqHz != 2000e6 {
		t.Error("A15 max should be 2 GHz")
	}
	if p.Domain(DomLittle).Table().Max().FreqHz != 1400e6 {
		t.Error("A7 max should be 1.4 GHz")
	}
	if p.Domain(DomGPU).Table().Max().FreqHz != 600e6 {
		t.Error("Mali max should be 600 MHz")
	}
	// The Odroid senses the big cluster.
	if p.Sensor.Node() != p.Node(DomBig) {
		t.Error("Odroid sensor should sit on the big-core node")
	}
}

func TestMemPower(t *testing.T) {
	p := Nexus6P(1)
	idle := p.MemPower(0)
	if idle != 0.10 {
		t.Errorf("mem idle = %v, want 0.10", idle)
	}
	if got := p.MemPower(2e9); math.Abs(got-(0.10+0.08)) > 1e-12 {
		t.Errorf("mem at 2 GHz = %v, want 0.18", got)
	}
	if p.MemPower(-5) != idle {
		t.Error("negative activity should clamp to idle")
	}
}

func TestThermalLimitAndAmbient(t *testing.T) {
	p := OdroidXU3(1)
	if got := thermal.ToCelsius(p.ThermalLimitK()); got != 60 {
		t.Errorf("limit = %v°C, want 60", got)
	}
	if got := thermal.ToCelsius(p.AmbientK()); got != 25 {
		t.Errorf("ambient = %v°C, want 25", got)
	}
}

func TestStabilityParamsBridge(t *testing.T) {
	p := OdroidXU3(1)
	sp, err := p.StabilityParams()
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("derived params should validate: %v", err)
	}
	if sp.AmbientK != p.AmbientK() {
		t.Error("ambient should carry over")
	}
	// Aggregate leakage at 60°C must match the per-domain sum at nominal
	// voltage within a small factor (domains share Q in the presets).
	tempK := thermal.ToKelvin(60)
	var direct float64
	for _, id := range DomainIDs() {
		v := p.Domain(id).Table().Max().VoltageV
		direct += p.Model(id).Leakage.Power(v, tempK)
	}
	if math.Abs(sp.Leakage(tempK)-direct)/direct > 0.01 {
		t.Errorf("lumped leakage %v vs direct %v", sp.Leakage(tempK), direct)
	}
	// The platform must be thermally stable at its typical power levels.
	an, err := sp.Analyze(3.0)
	if err != nil {
		t.Fatal(err)
	}
	if an.Class.String() != "stable" {
		t.Errorf("Odroid at 3 W should be stable, got %v", an.Class)
	}
}

func TestPresetsAreIndependentInstances(t *testing.T) {
	a, b := Nexus6P(1), Nexus6P(1)
	a.Domain(DomGPU).Request(0, 600e6)
	if b.Domain(DomGPU).CurrentHz() == 600e6 {
		t.Error("presets must not share domain state")
	}
	_ = a.Net.Step(0.01, make([]float64, a.Net.NumNodes()))
	// b's network must be untouched at ambient.
	temps := b.Net.Temperatures()
	for _, k := range temps {
		if k != b.AmbientK() {
			t.Error("presets must not share thermal state")
		}
	}
}

func TestSteadyStateSanity(t *testing.T) {
	// Inject the GPU-heavy power pattern of a game and check the package
	// steady state lands in the plausible phone range (paper Figure 1
	// tops out around 50°C).
	p := Nexus6P(1)
	powers := make([]float64, p.Net.NumNodes())
	powers[p.Node(DomGPU)] = 1.8
	powers[p.Node(DomBig)] = 1.0
	powers[p.Node(DomLittle)] = 0.15
	if memID, ok := p.NodeByName("mem"); ok {
		powers[memID] = 0.2
	}
	temps, err := p.Net.SteadyState(powers)
	if err != nil {
		t.Fatal(err)
	}
	pkgID, _ := p.NodeByName("pkg")
	pkgC := thermal.ToCelsius(temps[pkgID])
	if pkgC < 40 || pkgC > 65 {
		t.Errorf("package steady state = %.1f°C, want in (40, 65) for a 3.15 W game", pkgC)
	}
	// Skin must stay below the package.
	skinID, _ := p.NodeByName("skin")
	if temps[skinID] >= temps[pkgID] {
		t.Error("skin should be cooler than package")
	}
}
