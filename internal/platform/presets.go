package platform

import (
	"repro/internal/dvfs"
	"repro/internal/power"
)

// This file defines the two platform presets the paper uses. OPP ladders
// follow the real devices (the paper names the Adreno 430 frequencies
// and the 384/960 MHz A57 points explicitly); power and thermal
// constants are synthetic calibrations chosen to reproduce the paper's
// qualitative dynamics. See DESIGN.md §2 for the substitution argument.

// Adreno430Table is the Nexus 6P GPU OPP ladder; the paper's Figures 2
// and 4 bin residency over exactly these frequencies.
func Adreno430Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 180e6, VoltageV: 0.800},
		dvfs.OPP{FreqHz: 305e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 390e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 450e6, VoltageV: 0.950},
		dvfs.OPP{FreqHz: 510e6, VoltageV: 1.000},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.075},
	)
}

// CortexA57Table is the Nexus 6P big-cluster ladder (subset of the
// Snapdragon 810 points, keeping the 384 and 960 MHz OPPs the paper's
// Figure 6 reports).
func CortexA57Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 384e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 633e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 960e6, VoltageV: 0.975},
		dvfs.OPP{FreqHz: 1248e6, VoltageV: 1.050},
		dvfs.OPP{FreqHz: 1555e6, VoltageV: 1.125},
		dvfs.OPP{FreqHz: 1958e6, VoltageV: 1.225},
	)
}

// CortexA53Table is the Nexus 6P little-cluster ladder.
func CortexA53Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 384e6, VoltageV: 0.800},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 768e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 960e6, VoltageV: 0.950},
		dvfs.OPP{FreqHz: 1248e6, VoltageV: 1.025},
		dvfs.OPP{FreqHz: 1555e6, VoltageV: 1.100},
	)
}

// Nexus6P builds the Snapdragon 810 phone model of Section III:
// 4×Cortex-A53 + 4×Cortex-A57 + Adreno 430, a package temperature
// sensor (the one the default governors act on), and a skin node, all
// in a passive (fanless) phone enclosure.
func Nexus6P(seed int64) *Platform {
	return MustNew(Spec{
		Name:     "nexus6p",
		AmbientC: 25,
		Nodes: []NodeSpec{
			// Die nodes: small masses tightly coupled to the package.
			{Name: "little", CapacitanceJPerK: 1.2},
			{Name: "big", CapacitanceJPerK: 1.5},
			{Name: "gpu", CapacitanceJPerK: 1.5},
			{Name: "mem", CapacitanceJPerK: 1.0},
			// Package: the sensed node; slow, weakly coupled to ambient
			// through the phone body.
			{Name: "pkg", CapacitanceJPerK: 10, GAmbientWPerK: 0.035},
			// Skin: the outer surface the user touches.
			{Name: "skin", CapacitanceJPerK: 30, GAmbientWPerK: 0.10},
		},
		Couplings: []CouplingSpec{
			// Weak die-to-package conductances give the clusters real
			// hotspot gradients over the package, as on the 810.
			{A: "little", B: "pkg", GWPerK: 0.30},
			{A: "big", B: "pkg", GWPerK: 0.35},
			{A: "gpu", B: "pkg", GWPerK: 0.26},
			{A: "mem", B: "pkg", GWPerK: 0.40},
			{A: "pkg", B: "skin", GWPerK: 0.30},
		},
		Domains: []DomainSpec{
			{
				ID: DomLittle, Table: CortexA53Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "little", CeffF: 2.0e-10, IdleW: 0.03,
					Leakage: power.LeakageParams{K: 2.0e-4, Q: 1800},
				},
				Rail: power.RailLittle, NodeName: "little",
			},
			{
				ID: DomBig, Table: CortexA57Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "big", CeffF: 7.0e-10, IdleW: 0.05,
					Leakage: power.LeakageParams{K: 6.0e-4, Q: 1800},
				},
				Rail: power.RailBig, NodeName: "big",
			},
			{
				ID: DomGPU, Table: Adreno430Table(), Cores: 1,
				TransitionLatencyS: 0.002,
				Model: power.DomainModel{
					Name: "gpu", CeffF: 4.2e-9, IdleW: 0.04,
					Leakage: power.LeakageParams{K: 4.0e-4, Q: 1800},
				},
				Rail: power.RailGPU, NodeName: "gpu",
			},
		},
		SensorNode:        "pkg",
		SensorPeriodS:     0.01,
		SensorNoiseK:      0.05,
		SensorResolutionK: 0.1,
		MemIdleW:          0.10,
		MemPerGHz:         0.04,
		ThermalLimitC:     43,
		Seed:              seed,
	})
}

// MaliT628Table is the Odroid-XU3 GPU ladder.
func MaliT628Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 177e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 266e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 350e6, VoltageV: 0.950},
		dvfs.OPP{FreqHz: 420e6, VoltageV: 1.000},
		dvfs.OPP{FreqHz: 480e6, VoltageV: 1.025},
		dvfs.OPP{FreqHz: 543e6, VoltageV: 1.050},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.100},
	)
}

// CortexA15Table is the Odroid-XU3 big-cluster ladder.
func CortexA15Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 200e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.925},
		dvfs.OPP{FreqHz: 800e6, VoltageV: 0.975},
		dvfs.OPP{FreqHz: 1100e6, VoltageV: 1.050},
		dvfs.OPP{FreqHz: 1400e6, VoltageV: 1.125},
		dvfs.OPP{FreqHz: 1700e6, VoltageV: 1.2375},
		dvfs.OPP{FreqHz: 2000e6, VoltageV: 1.3625},
	)
}

// CortexA7Table is the Odroid-XU3 little-cluster ladder.
func CortexA7Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 200e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.925},
		dvfs.OPP{FreqHz: 800e6, VoltageV: 0.975},
		dvfs.OPP{FreqHz: 1100e6, VoltageV: 1.075},
		dvfs.OPP{FreqHz: 1400e6, VoltageV: 1.150},
	)
}

// OdroidXU3 builds the Exynos 5422 board model of Section IV:
// 4×Cortex-A15 + 4×Cortex-A7 + Mali-T628 with per-rail power sensors,
// a big-core temperature sensor, and the fan disabled (the paper
// disables it "since it is not feasible for mobile platforms").
func OdroidXU3(seed int64) *Platform {
	return MustNew(Spec{
		Name:     "odroid-xu3",
		AmbientC: 25,
		Nodes: []NodeSpec{
			{Name: "little", CapacitanceJPerK: 1.5},
			{Name: "big", CapacitanceJPerK: 2.0},
			{Name: "gpu", CapacitanceJPerK: 2.0},
			{Name: "mem", CapacitanceJPerK: 1.0},
			// Board + passive heatsink (fan off): the only path to ambient.
			{Name: "board", CapacitanceJPerK: 5, GAmbientWPerK: 0.1},
		},
		Couplings: []CouplingSpec{
			{A: "little", B: "board", GWPerK: 0.9},
			{A: "big", B: "board", GWPerK: 0.9},
			{A: "gpu", B: "board", GWPerK: 0.9},
			{A: "mem", B: "board", GWPerK: 0.6},
			// Die nodes also exchange heat laterally.
			{A: "big", B: "gpu", GWPerK: 0.3},
			{A: "big", B: "little", GWPerK: 0.3},
		},
		Domains: []DomainSpec{
			{
				ID: DomLittle, Table: CortexA7Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "little", CeffF: 1.1e-10, IdleW: 0.03,
					Leakage: power.LeakageParams{K: 1.0e-4, Q: 1800},
				},
				Rail: power.RailLittle, NodeName: "little",
			},
			{
				ID: DomBig, Table: CortexA15Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "big", CeffF: 6.0e-10, IdleW: 0.06,
					Leakage: power.LeakageParams{K: 3.0e-4, Q: 1800},
				},
				Rail: power.RailBig, NodeName: "big",
			},
			{
				ID: DomGPU, Table: MaliT628Table(), Cores: 1,
				TransitionLatencyS: 0.002,
				Model: power.DomainModel{
					Name: "gpu", CeffF: 2.2e-9, IdleW: 0.05,
					Leakage: power.LeakageParams{K: 2.0e-4, Q: 1800},
				},
				Rail: power.RailGPU, NodeName: "gpu",
			},
		},
		SensorNode:        "big",
		SensorPeriodS:     0.01,
		SensorNoiseK:      0.05,
		SensorResolutionK: 0.1,
		MemIdleW:          0.12,
		MemPerGHz:         0.05,
		ThermalLimitC:     60,
		Seed:              seed,
	})
}
