package platform

import (
	"repro/internal/dvfs"
)

// This file defines the two platform presets the paper uses. OPP ladders
// follow the real devices (the paper names the Adreno 430 frequencies
// and the 384/960 MHz A57 points explicitly); power and thermal
// constants are synthetic calibrations chosen to reproduce the paper's
// qualitative dynamics. See DESIGN.md §2 for the substitution argument.
//
// The presets' numeric parameters live in the embedded spec files
// (specs/nexus6p.json, specs/odroid-xu3.json); Nexus6P and OdroidXU3
// compile them through the same declarative path user platforms take.
// internal/platform/frozen keeps the original Go constructors, and the
// differential tests pin spec-compiled output bitwise against them.

// Adreno430Table is the Nexus 6P GPU OPP ladder; the paper's Figures 2
// and 4 bin residency over exactly these frequencies.
func Adreno430Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 180e6, VoltageV: 0.800},
		dvfs.OPP{FreqHz: 305e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 390e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 450e6, VoltageV: 0.950},
		dvfs.OPP{FreqHz: 510e6, VoltageV: 1.000},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.075},
	)
}

// CortexA57Table is the Nexus 6P big-cluster ladder (subset of the
// Snapdragon 810 points, keeping the 384 and 960 MHz OPPs the paper's
// Figure 6 reports).
func CortexA57Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 384e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 633e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 960e6, VoltageV: 0.975},
		dvfs.OPP{FreqHz: 1248e6, VoltageV: 1.050},
		dvfs.OPP{FreqHz: 1555e6, VoltageV: 1.125},
		dvfs.OPP{FreqHz: 1958e6, VoltageV: 1.225},
	)
}

// CortexA53Table is the Nexus 6P little-cluster ladder.
func CortexA53Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 384e6, VoltageV: 0.800},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 768e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 960e6, VoltageV: 0.950},
		dvfs.OPP{FreqHz: 1248e6, VoltageV: 1.025},
		dvfs.OPP{FreqHz: 1555e6, VoltageV: 1.100},
	)
}

// Nexus6P builds the Snapdragon 810 phone model of Section III:
// 4×Cortex-A53 + 4×Cortex-A57 + Adreno 430, a package temperature
// sensor (the one the default governors act on), and a skin node, all
// in a passive (fanless) phone enclosure. The parameters come from the
// embedded specs/nexus6p.json, pinned bitwise against the frozen Go
// constructor.
func Nexus6P(seed int64) *Platform {
	return mustCompileBuiltin("nexus6p", seed)
}

// MaliT628Table is the Odroid-XU3 GPU ladder.
func MaliT628Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 177e6, VoltageV: 0.850},
		dvfs.OPP{FreqHz: 266e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 350e6, VoltageV: 0.950},
		dvfs.OPP{FreqHz: 420e6, VoltageV: 1.000},
		dvfs.OPP{FreqHz: 480e6, VoltageV: 1.025},
		dvfs.OPP{FreqHz: 543e6, VoltageV: 1.050},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.100},
	)
}

// CortexA15Table is the Odroid-XU3 big-cluster ladder.
func CortexA15Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 200e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.925},
		dvfs.OPP{FreqHz: 800e6, VoltageV: 0.975},
		dvfs.OPP{FreqHz: 1100e6, VoltageV: 1.050},
		dvfs.OPP{FreqHz: 1400e6, VoltageV: 1.125},
		dvfs.OPP{FreqHz: 1700e6, VoltageV: 1.2375},
		dvfs.OPP{FreqHz: 2000e6, VoltageV: 1.3625},
	)
}

// CortexA7Table is the Odroid-XU3 little-cluster ladder.
func CortexA7Table() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 200e6, VoltageV: 0.900},
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.925},
		dvfs.OPP{FreqHz: 800e6, VoltageV: 0.975},
		dvfs.OPP{FreqHz: 1100e6, VoltageV: 1.075},
		dvfs.OPP{FreqHz: 1400e6, VoltageV: 1.150},
	)
}

// OdroidXU3 builds the Exynos 5422 board model of Section IV:
// 4×Cortex-A15 + 4×Cortex-A7 + Mali-T628 with per-rail power sensors,
// a big-core temperature sensor, and the fan disabled (the paper
// disables it "since it is not feasible for mobile platforms"). The
// parameters come from the embedded specs/odroid-xu3.json, pinned
// bitwise against the frozen Go constructor.
func OdroidXU3(seed int64) *Platform {
	return mustCompileBuiltin("odroid-xu3", seed)
}
