// Package frozen preserves the original Go preset constructors exactly
// as they were before the presets moved to embedded spec files. It is a
// reference implementation for differential tests only: the spec-file
// path (platform.Nexus6P / platform.OdroidXU3, compiled from
// specs/*.json) must keep producing platforms deeply equal to these
// constructors, which is what proves sweep output stayed bitwise
// unchanged across the declarative-platform refactor.
//
// Do not edit the numbers here. If a preset legitimately needs to
// change, change the spec file and this copy together, in a commit
// whose diff shows both.
package frozen

import (
	"repro/internal/platform"
	"repro/internal/power"
)

// Nexus6PSpec is the frozen Section III phone spec, verbatim from the
// pre-spec-layer constructor.
func Nexus6PSpec(seed int64) platform.Spec {
	return platform.Spec{
		Name:     "nexus6p",
		AmbientC: 25,
		Nodes: []platform.NodeSpec{
			{Name: "little", CapacitanceJPerK: 1.2},
			{Name: "big", CapacitanceJPerK: 1.5},
			{Name: "gpu", CapacitanceJPerK: 1.5},
			{Name: "mem", CapacitanceJPerK: 1.0},
			{Name: "pkg", CapacitanceJPerK: 10, GAmbientWPerK: 0.035},
			{Name: "skin", CapacitanceJPerK: 30, GAmbientWPerK: 0.10},
		},
		Couplings: []platform.CouplingSpec{
			{A: "little", B: "pkg", GWPerK: 0.30},
			{A: "big", B: "pkg", GWPerK: 0.35},
			{A: "gpu", B: "pkg", GWPerK: 0.26},
			{A: "mem", B: "pkg", GWPerK: 0.40},
			{A: "pkg", B: "skin", GWPerK: 0.30},
		},
		Domains: []platform.DomainSpec{
			{
				ID: platform.DomLittle, Table: platform.CortexA53Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "little", CeffF: 2.0e-10, IdleW: 0.03,
					Leakage: power.LeakageParams{K: 2.0e-4, Q: 1800},
				},
				Rail: power.RailLittle, NodeName: "little",
			},
			{
				ID: platform.DomBig, Table: platform.CortexA57Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "big", CeffF: 7.0e-10, IdleW: 0.05,
					Leakage: power.LeakageParams{K: 6.0e-4, Q: 1800},
				},
				Rail: power.RailBig, NodeName: "big",
			},
			{
				ID: platform.DomGPU, Table: platform.Adreno430Table(), Cores: 1,
				TransitionLatencyS: 0.002,
				Model: power.DomainModel{
					Name: "gpu", CeffF: 4.2e-9, IdleW: 0.04,
					Leakage: power.LeakageParams{K: 4.0e-4, Q: 1800},
				},
				Rail: power.RailGPU, NodeName: "gpu",
			},
		},
		SensorNode:        "pkg",
		SensorPeriodS:     0.01,
		SensorNoiseK:      0.05,
		SensorResolutionK: 0.1,
		MemIdleW:          0.10,
		MemPerGHz:         0.04,
		ThermalLimitC:     43,
		Seed:              seed,
	}
}

// OdroidXU3Spec is the frozen Section IV board spec, verbatim from the
// pre-spec-layer constructor.
func OdroidXU3Spec(seed int64) platform.Spec {
	return platform.Spec{
		Name:     "odroid-xu3",
		AmbientC: 25,
		Nodes: []platform.NodeSpec{
			{Name: "little", CapacitanceJPerK: 1.5},
			{Name: "big", CapacitanceJPerK: 2.0},
			{Name: "gpu", CapacitanceJPerK: 2.0},
			{Name: "mem", CapacitanceJPerK: 1.0},
			{Name: "board", CapacitanceJPerK: 5, GAmbientWPerK: 0.1},
		},
		Couplings: []platform.CouplingSpec{
			{A: "little", B: "board", GWPerK: 0.9},
			{A: "big", B: "board", GWPerK: 0.9},
			{A: "gpu", B: "board", GWPerK: 0.9},
			{A: "mem", B: "board", GWPerK: 0.6},
			{A: "big", B: "gpu", GWPerK: 0.3},
			{A: "big", B: "little", GWPerK: 0.3},
		},
		Domains: []platform.DomainSpec{
			{
				ID: platform.DomLittle, Table: platform.CortexA7Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "little", CeffF: 1.1e-10, IdleW: 0.03,
					Leakage: power.LeakageParams{K: 1.0e-4, Q: 1800},
				},
				Rail: power.RailLittle, NodeName: "little",
			},
			{
				ID: platform.DomBig, Table: platform.CortexA15Table(), Cores: 4,
				TransitionLatencyS: 0.001,
				Model: power.DomainModel{
					Name: "big", CeffF: 6.0e-10, IdleW: 0.06,
					Leakage: power.LeakageParams{K: 3.0e-4, Q: 1800},
				},
				Rail: power.RailBig, NodeName: "big",
			},
			{
				ID: platform.DomGPU, Table: platform.MaliT628Table(), Cores: 1,
				TransitionLatencyS: 0.002,
				Model: power.DomainModel{
					Name: "gpu", CeffF: 2.2e-9, IdleW: 0.05,
					Leakage: power.LeakageParams{K: 2.0e-4, Q: 1800},
				},
				Rail: power.RailGPU, NodeName: "gpu",
			},
		},
		SensorNode:        "big",
		SensorPeriodS:     0.01,
		SensorNoiseK:      0.05,
		SensorResolutionK: 0.1,
		MemIdleW:          0.12,
		MemPerGHz:         0.05,
		ThermalLimitC:     60,
		Seed:              seed,
	}
}

// Nexus6P wires the frozen phone spec, exactly like the original
// constructor did.
func Nexus6P(seed int64) *platform.Platform {
	return platform.MustNew(Nexus6PSpec(seed))
}

// OdroidXU3 wires the frozen board spec, exactly like the original
// constructor did.
func OdroidXU3(seed int64) *platform.Platform {
	return platform.MustNew(OdroidXU3Spec(seed))
}
