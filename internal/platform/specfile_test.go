package platform

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/thermal"
)

// minimalSpecJSON is the smallest useful platform: one die node per
// domain plus a board to ambient, leaning on every spec-layer default
// (ambient, sensor period, transition latency, leakage Q, rail and
// node names). It is also the README's "defining your own platform"
// example; keep the two in sync.
const minimalSpecJSON = `{
  "name": "minimal",
  "thermal_limit_c": 55,
  "nodes": [
    {"name": "little", "capacitance_j_per_k": 1.0},
    {"name": "big", "capacitance_j_per_k": 1.5},
    {"name": "gpu", "capacitance_j_per_k": 1.5},
    {"name": "board", "capacitance_j_per_k": 6, "g_ambient_w_per_k": 0.08}
  ],
  "couplings": [
    {"a": "little", "b": "board", "g_w_per_k": 0.5},
    {"a": "big", "b": "board", "g_w_per_k": 0.5},
    {"a": "gpu", "b": "board", "g_w_per_k": 0.5}
  ],
  "domains": [
    {"id": "little", "cores": 4, "ceff_f": 1.5e-10, "idle_w": 0.03, "leak_k": 1e-4,
     "opps": [{"freq_hz": 400000000, "voltage_v": 0.85}, {"freq_hz": 1200000000, "voltage_v": 1.05}]},
    {"id": "big", "cores": 4, "ceff_f": 6e-10, "idle_w": 0.05, "leak_k": 3e-4,
     "opps": [{"freq_hz": 400000000, "voltage_v": 0.9}, {"freq_hz": 1800000000, "voltage_v": 1.2}]},
    {"id": "gpu", "cores": 1, "ceff_f": 2e-9, "idle_w": 0.04, "leak_k": 2e-4,
     "opps": [{"freq_hz": 200000000, "voltage_v": 0.85}, {"freq_hz": 600000000, "voltage_v": 1.05}]}
  ],
  "sensor": {"node": "big"}
}`

func TestParseSpecFileMinimalDefaults(t *testing.T) {
	f, err := ParseSpecFile([]byte(minimalSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if f.AmbientC != DefaultAmbientC {
		t.Errorf("ambient defaulted to %v, want %v", f.AmbientC, DefaultAmbientC)
	}
	if f.Sensor.PeriodS != DefaultSensorPeriodS {
		t.Errorf("sensor period defaulted to %v, want %v", f.Sensor.PeriodS, DefaultSensorPeriodS)
	}
	for _, d := range f.Domains {
		if d.TransitionLatencyS != DefaultTransitionLatencyS {
			t.Errorf("domain %s latency defaulted to %v, want %v", d.ID, d.TransitionLatencyS, DefaultTransitionLatencyS)
		}
		if d.LeakQ != DefaultLeakageQ {
			t.Errorf("domain %s leak_q defaulted to %v, want %v", d.ID, d.LeakQ, DefaultLeakageQ)
		}
		if d.Rail != d.ID || d.Node != d.ID {
			t.Errorf("domain %s rail/node defaulted to %q/%q, want namesakes", d.ID, d.Rail, d.Node)
		}
	}
	p, err := f.Compile(7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "minimal" {
		t.Errorf("compiled platform name = %q", p.Name())
	}
	if got := p.Cores(DomBig); got != 4 {
		t.Errorf("big cores = %d, want 4", got)
	}
	if got := p.Spec().Seed; got != 7 {
		t.Errorf("seed = %d, want 7", got)
	}
}

func TestSpecFileRoundTripStable(t *testing.T) {
	f, err := ParseSpecFile([]byte(minimalSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	j, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ParseSpecFile(j)
	if err != nil {
		t.Fatalf("re-decode rejected: %v\n%s", err, j)
	}
	if !reflect.DeepEqual(f, f2) {
		t.Fatalf("spec round trip drifted:\nfirst:  %+v\nsecond: %+v", f, f2)
	}
	j2, err := f2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, j2) {
		t.Fatalf("spec encode is not byte-stable:\n%s\nvs\n%s", j, j2)
	}
}

// mutateSpec applies edit to a freshly parsed minimal spec and reports
// whether Validate rejects the result.
func rejected(t *testing.T, edit func(f *SpecFile)) bool {
	t.Helper()
	f, err := ParseSpecFile([]byte(minimalSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	edit(&f)
	return f.Validate() != nil
}

func TestSpecFileValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		edit func(f *SpecFile)
	}{
		{"empty name", func(f *SpecFile) { f.Name = "" }},
		{"name with comma", func(f *SpecFile) { f.Name = "a,b" }},
		{"no nodes", func(f *SpecFile) { f.Nodes = nil }},
		{"NaN capacitance", func(f *SpecFile) { f.Nodes[0].CapacitanceJPerK = math.NaN() }},
		{"Inf conductance", func(f *SpecFile) { f.Couplings[0].GWPerK = math.Inf(1) }},
		{"negative conductance", func(f *SpecFile) { f.Couplings[0].GWPerK = -1 }},
		{"self coupling", func(f *SpecFile) { f.Couplings[0].B = f.Couplings[0].A }},
		{"duplicate coupling", func(f *SpecFile) { f.Couplings = append(f.Couplings, f.Couplings[0]) }},
		{"asymmetric coupling", func(f *SpecFile) {
			c := f.Couplings[0]
			f.Couplings = append(f.Couplings, CouplingJSON{A: c.B, B: c.A, GWPerK: c.GWPerK * 2})
		}},
		{"coupling to unknown node", func(f *SpecFile) { f.Couplings[0].B = "ghost" }},
		{"no ambient path", func(f *SpecFile) { f.Nodes[3].GAmbientWPerK = 0 }},
		{"unknown domain id", func(f *SpecFile) { f.Domains[0].ID = "prime" }},
		{"duplicate domain", func(f *SpecFile) { f.Domains[0].ID = "big" }},
		{"missing domain", func(f *SpecFile) { f.Domains = f.Domains[:2] }},
		{"zero cores", func(f *SpecFile) { f.Domains[0].Cores = 0 }},
		{"empty OPP table", func(f *SpecFile) { f.Domains[0].OPPs = nil }},
		{"zero OPP frequency", func(f *SpecFile) { f.Domains[0].OPPs[0].FreqHz = 0 }},
		{"duplicate OPP frequency", func(f *SpecFile) { f.Domains[0].OPPs[1].FreqHz = f.Domains[0].OPPs[0].FreqHz }},
		{"NaN voltage", func(f *SpecFile) { f.Domains[0].OPPs[0].VoltageV = math.NaN() }},
		{"negative voltage", func(f *SpecFile) { f.Domains[0].OPPs[0].VoltageV = -0.5 }},
		{"voltage decreasing with frequency", func(f *SpecFile) { f.Domains[0].OPPs[1].VoltageV = 0.1 }},
		{"zero ceff", func(f *SpecFile) { f.Domains[0].CeffF = 0 }},
		{"negative leak K", func(f *SpecFile) { f.Domains[0].LeakK = -1 }},
		{"unknown rail", func(f *SpecFile) { f.Domains[0].Rail = "nuclear" }},
		{"domain heats unknown node", func(f *SpecFile) { f.Domains[0].Node = "ghost" }},
		{"unknown sensor node", func(f *SpecFile) { f.Sensor.Node = "ghost" }},
		{"negative sensor noise", func(f *SpecFile) { f.Sensor.NoiseK = -1 }},
		{"limit below ambient", func(f *SpecFile) { f.ThermalLimitC = f.AmbientC - 1 }},
		{"NaN limit", func(f *SpecFile) { f.ThermalLimitC = math.NaN() }},
		{"negative mem idle", func(f *SpecFile) { f.Mem.IdleW = -0.1 }},
		{"too many nodes", func(f *SpecFile) {
			for i := 0; i <= MaxSpecNodes; i++ {
				f.Nodes = append(f.Nodes, NodeJSON{Name: strings.Repeat("n", i+1), CapacitanceJPerK: 1})
			}
		}},
		{"too many OPPs", func(f *SpecFile) {
			for i := 0; i <= MaxSpecOPPs; i++ {
				f.Domains[0].OPPs = append(f.Domains[0].OPPs, OPPJSON{FreqHz: 2000000000 + uint64(i), VoltageV: 1.3})
			}
		}},
	}
	for _, tc := range cases {
		if !rejected(t, tc.edit) {
			t.Errorf("%s: Validate accepted a spec it must reject", tc.name)
		}
	}
}

func TestParseSpecFileStrictDecode(t *testing.T) {
	for _, bad := range []string{
		`{"name": "x", "unknown_knob": 3}`,
		`{"name":`,
		`null`,
		minimalSpecJSON + `{"trailing": true}`,
	} {
		if _, err := ParseSpecFile([]byte(bad)); err == nil {
			t.Errorf("ParseSpecFile accepted malformed input %.40q", bad)
		}
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "minimal.json")
	if err := os.WriteFile(path, []byte(minimalSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "minimal" {
		t.Errorf("loaded name = %q", f.Name)
	}
	if _, err := LoadSpecFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpecFile(bad); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestCompiledPlatformSurfaces(t *testing.T) {
	f, err := ParseSpecFile([]byte(minimalSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := []string{"little", "big", "gpu", "board"}
	if got := p.NodeNames(); !reflect.DeepEqual(got, wantNodes) {
		t.Errorf("NodeNames() = %v, want %v", got, wantNodes)
	}
	if got := p.OnlineCores(DomBig); got != 4 {
		t.Errorf("OnlineCores(big) = %d, want 4", got)
	}
	p.SetOnlineCores(DomBig, 99)
	if got := p.OnlineCores(DomBig); got != 4 {
		t.Errorf("hot-plug above core count not clamped: %d", got)
	}
	p.SetOnlineCores(DomBig, 0)
	if got := p.OnlineCores(DomBig); got != 1 {
		t.Errorf("hot-plug below one core not clamped: %d", got)
	}
	if err := p.Prewarm(50); err != nil {
		t.Fatal(err)
	}
	id, ok := p.NodeByName("board")
	if !ok {
		t.Fatal("board node missing")
	}
	k, err := p.Net.Temperature(id)
	if err != nil || k != thermal.ToKelvin(50) {
		t.Errorf("prewarmed board = %v K (%v), want %v", k, err, thermal.ToKelvin(50))
	}
}

func TestBuiltinSpecs(t *testing.T) {
	names := BuiltinNames()
	if !reflect.DeepEqual(names, []string{"nexus6p", "odroid-xu3"}) {
		t.Fatalf("builtin names = %v", names)
	}
	for _, name := range names {
		f, ok := BuiltinSpec(name)
		if !ok {
			t.Fatalf("BuiltinSpec(%q) missing", name)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("embedded %s spec invalid: %v", name, err)
		}
		// The embedded copy is isolated: mutating it — including through
		// its slices — must not leak into subsequent loads.
		f.ThermalLimitC = -1000
		f.Nodes[0].CapacitanceJPerK = -1
		f.Domains[0].OPPs[0].FreqHz = 1
		g, _ := BuiltinSpec(name)
		if g.ThermalLimitC == -1000 || g.Nodes[0].CapacitanceJPerK == -1 || g.Domains[0].OPPs[0].FreqHz == 1 {
			t.Errorf("BuiltinSpec(%q) returns a shared mutable spec", name)
		}
	}
}
