package platform

import (
	"embed"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The built-in device presets are themselves declarative spec files,
// embedded at build time and compiled through exactly the same
// ParseSpecFile → Compile path user-supplied platforms take. The frozen
// Go constructors they replaced live on in internal/platform/frozen,
// and the differential tests pin the two bitwise-equal, so the spec
// layer can never drift from the presets the paper's figures were
// reproduced with.

//go:embed specs/*.json
var builtinSpecFS embed.FS

var (
	builtinOnce  sync.Once
	builtinSpecs map[string]SpecFile
	builtinErr   error
)

// loadBuiltinSpecs parses every embedded spec exactly once.
func loadBuiltinSpecs() (map[string]SpecFile, error) {
	builtinOnce.Do(func() {
		entries, err := builtinSpecFS.ReadDir("specs")
		if err != nil {
			builtinErr = fmt.Errorf("platform: embedded specs: %w", err)
			return
		}
		specs := make(map[string]SpecFile, len(entries))
		for _, e := range entries {
			data, err := builtinSpecFS.ReadFile("specs/" + e.Name())
			if err != nil {
				builtinErr = fmt.Errorf("platform: embedded spec %s: %w", e.Name(), err)
				return
			}
			f, err := ParseSpecFile(data)
			if err != nil {
				builtinErr = fmt.Errorf("platform: embedded spec %s: %w", e.Name(), err)
				return
			}
			if want := strings.TrimSuffix(e.Name(), ".json"); f.Name != want {
				builtinErr = fmt.Errorf("platform: embedded spec %s declares name %q", e.Name(), f.Name)
				return
			}
			specs[f.Name] = f
		}
		builtinSpecs = specs
	})
	return builtinSpecs, builtinErr
}

// BuiltinSpec returns the embedded spec file of a built-in platform
// ("nexus6p", "odroid-xu3"); ok is false for unknown names. The result
// is a copy: mutating it cannot affect the presets.
func BuiltinSpec(name string) (SpecFile, bool) {
	specs, err := loadBuiltinSpecs()
	if err != nil {
		return SpecFile{}, false
	}
	f, ok := specs[name]
	if !ok {
		return SpecFile{}, false
	}
	return f.Clone(), true
}

// BuiltinNames lists the embedded platform names sorted.
func BuiltinNames() []string {
	specs, err := loadBuiltinSpecs()
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// mustCompileBuiltin compiles an embedded preset, panicking on any
// error: a broken embedded spec is a build defect, caught by the test
// suite, never a runtime condition.
func mustCompileBuiltin(name string, seed int64) *Platform {
	f, ok := BuiltinSpec(name)
	if !ok {
		if _, err := loadBuiltinSpecs(); err != nil {
			panic(err)
		}
		panic(fmt.Sprintf("platform: no embedded spec %q", name))
	}
	p, err := f.Compile(seed)
	if err != nil {
		panic(err)
	}
	return p
}
