// Package platform wires the simulator substrates into full mobile
// platforms: the thermal network, DVFS domains, power models, rail
// mapping, and temperature sensors for the two devices the paper
// measures — the Nexus 6P phone (Snapdragon 810) of Section III and the
// Odroid-XU3 board (Exynos 5422) of Section IV.
//
// All numeric parameters are synthetic calibrations: they are chosen so
// the simulated governor dynamics reproduce the paper's qualitative
// behavior (residency shifts, FPS losses, temperature trajectories),
// not the authors' absolute testbed numbers. See DESIGN.md §2.
package platform

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/stability"
	"repro/internal/thermal"
)

// DomainID identifies a frequency domain within a platform.
type DomainID int

// The three frequency domains of a big.LITTLE + GPU platform.
const (
	DomLittle DomainID = iota
	DomBig
	DomGPU
	numDomains
)

// String names the domain.
func (d DomainID) String() string {
	switch d {
	case DomLittle:
		return "little"
	case DomBig:
		return "big"
	case DomGPU:
		return "gpu"
	default:
		return fmt.Sprintf("domain(%d)", int(d))
	}
}

// DomainIDs lists all domains in order.
func DomainIDs() []DomainID { return []DomainID{DomLittle, DomBig, DomGPU} }

// Cluster maps a CPU domain to its scheduler cluster. The GPU has no
// cluster; ok is false for it.
func (d DomainID) Cluster() (sched.ClusterID, bool) {
	switch d {
	case DomLittle:
		return sched.Little, true
	case DomBig:
		return sched.Big, true
	default:
		return 0, false
	}
}

// DomainSpec declares one frequency domain of a platform.
type DomainSpec struct {
	// ID is the domain slot.
	ID DomainID
	// Table is the OPP ladder.
	Table *dvfs.Table
	// Cores is the number of cores (1 for a GPU).
	Cores int
	// TransitionLatencyS is the DVFS switch latency.
	TransitionLatencyS float64
	// Model is the domain power model.
	Model power.DomainModel
	// Rail is the power rail the domain draws from.
	Rail power.Rail
	// NodeName is the thermal network node heated by this domain.
	NodeName string
}

// NodeSpec declares one thermal node.
type NodeSpec struct {
	// Name identifies the node ("big", "gpu", "pkg", "skin", ...).
	Name string
	// CapacitanceJPerK is the node thermal mass.
	CapacitanceJPerK float64
	// GAmbientWPerK couples the node to ambient (0 for internal nodes).
	GAmbientWPerK float64
}

// CouplingSpec declares one node-to-node conductance.
type CouplingSpec struct {
	// A and B are node names.
	A, B string
	// GWPerK is the conductance between them.
	GWPerK float64
}

// Spec is a complete platform description.
type Spec struct {
	// Name labels the platform ("nexus6p", "odroid-xu3").
	Name string
	// AmbientC is the ambient temperature in Celsius.
	AmbientC float64
	// Nodes, Couplings and Domains define the thermal/power structure.
	Nodes     []NodeSpec
	Couplings []CouplingSpec
	Domains   []DomainSpec
	// SensorNode is the node whose sensor drives thermal governors (the
	// chip package on the Nexus 6P; the hottest big core on the Odroid).
	SensorNode string
	// SensorPeriodS, SensorNoiseK, SensorResolutionK parameterize the
	// governor-facing sensor.
	SensorPeriodS     float64
	SensorNoiseK      float64
	SensorResolutionK float64
	// MemIdleW is the memory rail's fixed draw; MemPerGHz adds power
	// proportional to the achieved compute rate in GHz (a simple
	// activity proxy for DRAM traffic).
	MemIdleW  float64
	MemPerGHz float64
	// ThermalLimitC is the platform's soft thermal limit, the setpoint
	// both the default and the application-aware governors regulate to.
	ThermalLimitC float64
	// Seed seeds sensor noise.
	Seed int64
}

// Platform is a wired, runnable platform instance. Build one from a
// Spec with New, or use the Nexus6P and OdroidXU3 presets.
type Platform struct {
	spec Spec

	// Net is the thermal network.
	Net *thermal.Network
	// Sensor is the governor-facing temperature sensor.
	Sensor *thermal.Sensor

	nodes   map[string]thermal.NodeID
	domains [numDomains]*domainInst
}

// domainInst is one wired domain.
type domainInst struct {
	spec   DomainSpec
	domain *dvfs.Domain
	node   thermal.NodeID
	online int
}

// New validates spec and wires the platform.
func New(spec Spec) (*Platform, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("platform: spec needs a name")
	}
	if len(spec.Nodes) == 0 {
		return nil, fmt.Errorf("platform %q: needs at least one thermal node", spec.Name)
	}
	if spec.SensorPeriodS <= 0 {
		return nil, fmt.Errorf("platform %q: sensor period must be positive", spec.Name)
	}
	if spec.ThermalLimitC <= spec.AmbientC {
		return nil, fmt.Errorf("platform %q: thermal limit %v°C must exceed ambient %v°C",
			spec.Name, spec.ThermalLimitC, spec.AmbientC)
	}
	if spec.MemIdleW < 0 || spec.MemPerGHz < 0 {
		return nil, fmt.Errorf("platform %q: memory rail coefficients must be >= 0", spec.Name)
	}

	p := &Platform{
		spec:  spec,
		Net:   thermal.NewNetwork(thermal.ToKelvin(spec.AmbientC)),
		nodes: make(map[string]thermal.NodeID, len(spec.Nodes)),
	}
	for _, ns := range spec.Nodes {
		if _, dup := p.nodes[ns.Name]; dup {
			return nil, fmt.Errorf("platform %q: duplicate node %q", spec.Name, ns.Name)
		}
		id, err := p.Net.AddNode(thermal.Node{
			Name:        ns.Name,
			Capacitance: ns.CapacitanceJPerK,
			GAmbient:    ns.GAmbientWPerK,
		})
		if err != nil {
			return nil, fmt.Errorf("platform %q: %w", spec.Name, err)
		}
		p.nodes[ns.Name] = id
	}
	for _, c := range spec.Couplings {
		a, ok := p.nodes[c.A]
		if !ok {
			return nil, fmt.Errorf("platform %q: coupling references unknown node %q", spec.Name, c.A)
		}
		b, ok := p.nodes[c.B]
		if !ok {
			return nil, fmt.Errorf("platform %q: coupling references unknown node %q", spec.Name, c.B)
		}
		if err := p.Net.Connect(a, b, c.GWPerK); err != nil {
			return nil, fmt.Errorf("platform %q: %w", spec.Name, err)
		}
	}

	seen := make(map[DomainID]bool)
	for _, ds := range spec.Domains {
		if ds.ID < 0 || ds.ID >= numDomains {
			return nil, fmt.Errorf("platform %q: invalid domain id %d", spec.Name, ds.ID)
		}
		if seen[ds.ID] {
			return nil, fmt.Errorf("platform %q: duplicate domain %s", spec.Name, ds.ID)
		}
		seen[ds.ID] = true
		if ds.Cores < 1 {
			return nil, fmt.Errorf("platform %q: domain %s needs >= 1 core", spec.Name, ds.ID)
		}
		node, ok := p.nodes[ds.NodeName]
		if !ok {
			return nil, fmt.Errorf("platform %q: domain %s heats unknown node %q", spec.Name, ds.ID, ds.NodeName)
		}
		if err := ds.Model.Validate(); err != nil {
			return nil, fmt.Errorf("platform %q: %w", spec.Name, err)
		}
		dom, err := dvfs.NewDomain(ds.ID.String(), ds.Table, ds.TransitionLatencyS)
		if err != nil {
			return nil, fmt.Errorf("platform %q: %w", spec.Name, err)
		}
		ds := ds
		p.domains[ds.ID] = &domainInst{spec: ds, domain: dom, node: node, online: ds.Cores}
	}
	for _, id := range DomainIDs() {
		if p.domains[id] == nil {
			return nil, fmt.Errorf("platform %q: missing domain %s", spec.Name, id)
		}
	}

	sensorNode, ok := p.nodes[spec.SensorNode]
	if !ok {
		return nil, fmt.Errorf("platform %q: sensor node %q not defined", spec.Name, spec.SensorNode)
	}
	sensor, err := thermal.NewSensor(p.Net, thermal.SensorConfig{
		Name:        spec.Name + "-tsens",
		Node:        sensorNode,
		PeriodS:     spec.SensorPeriodS,
		NoiseStdK:   spec.SensorNoiseK,
		ResolutionK: spec.SensorResolutionK,
		Seed:        spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("platform %q: %w", spec.Name, err)
	}
	p.Sensor = sensor
	return p, nil
}

// MustNew is New that panics on error; for the static presets.
func MustNew(spec Spec) *Platform {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the platform name.
func (p *Platform) Name() string { return p.spec.Name }

// Spec returns a copy of the platform's spec.
func (p *Platform) Spec() Spec { return p.spec }

// Domain returns the dvfs domain for id.
func (p *Platform) Domain(id DomainID) *dvfs.Domain { return p.domains[id].domain }

// Model returns the power model for domain id.
func (p *Platform) Model(id DomainID) *power.DomainModel { return &p.domains[id].spec.Model }

// Cores returns the physical core count of domain id.
func (p *Platform) Cores(id DomainID) int { return p.domains[id].spec.Cores }

// OnlineCores returns how many cores of domain id are currently online.
func (p *Platform) OnlineCores(id DomainID) int { return p.domains[id].online }

// SetOnlineCores hot-plugs domain id to n online cores (clamped to
// [1, Cores]); thermal governors use this in extreme conditions — the
// paper's Section I notes that governors "resort to powering the cores
// off" when throttling is not enough. At least one core stays online
// so the cluster can still drain work.
func (p *Platform) SetOnlineCores(id DomainID, n int) {
	d := p.domains[id]
	if n < 1 {
		n = 1
	}
	if n > d.spec.Cores {
		n = d.spec.Cores
	}
	d.online = n
}

// Rail returns the power rail domain id draws from.
func (p *Platform) Rail(id DomainID) power.Rail { return p.domains[id].spec.Rail }

// Node returns the thermal node heated by domain id.
func (p *Platform) Node(id DomainID) thermal.NodeID { return p.domains[id].node }

// NodeByName returns the thermal node with the given name.
func (p *Platform) NodeByName(name string) (thermal.NodeID, bool) {
	id, ok := p.nodes[name]
	return id, ok
}

// NodeNames returns every thermal node name in network (declaration)
// order — what report formatters iterate instead of assuming a preset
// topology, now that platforms are spec-defined.
func (p *Platform) NodeNames() []string {
	out := make([]string, p.Net.NumNodes())
	for i := range out {
		out[i] = p.Net.NodeName(thermal.NodeID(i))
	}
	return out
}

// ThermalLimitK returns the soft thermal limit in Kelvin.
func (p *Platform) ThermalLimitK() float64 { return thermal.ToKelvin(p.spec.ThermalLimitC) }

// AmbientK returns the ambient temperature in Kelvin.
func (p *Platform) AmbientK() float64 { return thermal.ToKelvin(p.spec.AmbientC) }

// MemPower returns the memory rail power for the given total achieved
// compute rate (CPU + GPU cycles per second).
func (p *Platform) MemPower(achievedHz float64) float64 {
	if achievedHz < 0 {
		achievedHz = 0
	}
	return p.spec.MemIdleW + p.spec.MemPerGHz*achievedHz/1e9
}

// Prewarm sets every thermal node to the given Celsius temperature,
// modeling a device that has already been in use — the paper's Odroid
// traces start near 50°C, not at ambient.
func (p *Platform) Prewarm(tempC float64) error {
	k := thermal.ToKelvin(tempC)
	for i := 0; i < p.Net.NumNodes(); i++ {
		if err := p.Net.SetTemperature(thermal.NodeID(i), k); err != nil {
			return err
		}
	}
	return nil
}

// StabilityParams reduces the platform to the lumped model the
// power-temperature stability analysis runs on: total capacitance,
// effective ambient resistance, and the aggregate leakage coefficient
// at each domain's nominal (maximum-OPP) voltage. This is the bridge
// between the full RC simulation and the paper's Section IV-A analysis.
func (p *Platform) StabilityParams() (stability.Params, error) {
	lump, err := p.Net.Lump()
	if err != nil {
		return stability.Params{}, err
	}
	// Aggregate κ_eff = Σ K_i·V_i so κ_eff·T²·e^(−Q/T) matches the sum of
	// per-domain leakage at nominal voltage. Domains share one activation
	// temperature in the presets; use the largest to stay conservative.
	kEff, qMax := 0.0, 0.0
	for _, id := range DomainIDs() {
		m := p.Model(id)
		v := p.Domain(id).Table().Max().VoltageV
		kEff += m.Leakage.K * v
		if m.Leakage.Q > qMax {
			qMax = m.Leakage.Q
		}
	}
	return stability.Params{
		AmbientK:         p.AmbientK(),
		ResistanceKPerW:  lump.ResistanceKPerW,
		CapacitanceJPerK: lump.CapacitanceJPerK,
		LeakScale:        kEff,
		ActivationK:      qMax,
	}, nil
}
