package platform_test

import (
	"reflect"
	"testing"

	"repro/internal/platform"
	"repro/internal/platform/frozen"
	"repro/internal/thermal"
)

// The presets now compile from embedded JSON spec files. These tests
// pin that path bitwise against the frozen pre-refactor Go
// constructors: the converted Spec structs must be deeply equal —
// every node, coupling, OPP, power constant and sensor parameter —
// and the wired platforms must agree on the derived quantities the
// simulator consumes. Deep spec equality is what makes every
// downstream sweep byte-identical (the engine is a pure function of
// Spec and seed).

func TestSpecCompiledPresetsMatchFrozenSpecs(t *testing.T) {
	cases := []struct {
		name   string
		frozen func(int64) platform.Spec
	}{
		{"nexus6p", frozen.Nexus6PSpec},
		{"odroid-xu3", frozen.OdroidXU3Spec},
	}
	for _, tc := range cases {
		f, ok := platform.BuiltinSpec(tc.name)
		if !ok {
			t.Fatalf("no embedded spec %q", tc.name)
		}
		for _, seed := range []int64{0, 1, 42} {
			got, err := f.Spec(seed)
			if err != nil {
				t.Fatalf("%s: convert: %v", tc.name, err)
			}
			want := tc.frozen(seed)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s seed %d: spec-file conversion diverged from frozen constructor:\ngot:  %+v\nwant: %+v",
					tc.name, seed, got, want)
			}
		}
	}
}

func TestSpecCompiledPlatformsMatchFrozenPlatforms(t *testing.T) {
	cases := []struct {
		name   string
		spec   func(int64) *platform.Platform
		frozen func(int64) *platform.Platform
	}{
		{"nexus6p", platform.Nexus6P, frozen.Nexus6P},
		{"odroid-xu3", platform.OdroidXU3, frozen.OdroidXU3},
	}
	for _, tc := range cases {
		got, want := tc.spec(3), tc.frozen(3)
		if !reflect.DeepEqual(got.Spec(), want.Spec()) {
			t.Errorf("%s: wired platform spec diverged from frozen constructor", tc.name)
		}
		if got.ThermalLimitK() != want.ThermalLimitK() || got.AmbientK() != want.AmbientK() {
			t.Errorf("%s: thermal limit/ambient diverged", tc.name)
		}
		if got.MemPower(2e9) != want.MemPower(2e9) {
			t.Errorf("%s: memory rail model diverged", tc.name)
		}
		gp, err1 := got.StabilityParams()
		wp, err2 := want.StabilityParams()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: stability params: %v / %v", tc.name, err1, err2)
		}
		if gp != wp {
			t.Errorf("%s: stability params diverged: %+v vs %+v", tc.name, gp, wp)
		}
		for _, id := range platform.DomainIDs() {
			if !reflect.DeepEqual(got.Domain(id).Table(), want.Domain(id).Table()) {
				t.Errorf("%s: domain %s OPP table diverged", tc.name, id)
			}
			if !reflect.DeepEqual(got.Model(id), want.Model(id)) {
				t.Errorf("%s: domain %s power model diverged", tc.name, id)
			}
			if got.Cores(id) != want.Cores(id) || got.Rail(id) != want.Rail(id) || got.Node(id) != want.Node(id) {
				t.Errorf("%s: domain %s wiring diverged", tc.name, id)
			}
		}
		// The thermal networks must agree conductance-for-conductance.
		if got.Net.NumNodes() != want.Net.NumNodes() {
			t.Fatalf("%s: node count diverged", tc.name)
		}
		for a := 0; a < got.Net.NumNodes(); a++ {
			for b := 0; b < got.Net.NumNodes(); b++ {
				if a == b {
					continue
				}
				g, err1 := got.Net.Conductance(thermal.NodeID(a), thermal.NodeID(b))
				w, err2 := want.Net.Conductance(thermal.NodeID(a), thermal.NodeID(b))
				if err1 != nil || err2 != nil || g != w {
					t.Errorf("%s: conductance [%d,%d] diverged: %v/%v (%v, %v)", tc.name, a, b, g, w, err1, err2)
				}
			}
		}
	}
}
