package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sweep"
)

// Eval is one candidate's evaluation result, in the loop's canonical
// higher-is-better orientation (callers minimizing a quantity negate it).
type Eval struct {
	// Objective is the candidate's score; compared only when Feasible.
	Objective float64
	// Feasible reports whether the candidate satisfies every declared
	// constraint. Infeasible candidates appear in the trace but never
	// become the incumbent.
	Feasible bool
	// Invalid carries the reason a candidate could not be evaluated at
	// all (mutated spec failed validation, objective metric missing);
	// empty for evaluated candidates. Invalid implies !Feasible.
	Invalid string
	// Key is the caller's content identity for the candidate (e.g. the
	// mobisim CellKey of its first replicate); 0 when unavailable.
	Key uint64
	// Cached reports the candidate was served entirely from a result
	// store rather than simulated during this call.
	Cached bool
	// Metrics are the candidate's aggregated observables, recorded in
	// the trace for analysis. Values must be finite (JSON-encodable).
	Metrics map[string]float64
}

// EvalFunc evaluates one generation of candidates and returns their
// evaluations aligned with pts. It may parallelize internally, but for
// a reproducible search it must be deterministic in pts (the loop
// itself never introduces ordering nondeterminism).
type EvalFunc func(ctx context.Context, gen int, pts []Point) ([]Eval, error)

// Config tunes the search loop.
type Config struct {
	// Seed drives neighbor generation; identical seeds (with identical
	// space, start and evaluator) reproduce the trajectory exactly.
	Seed int64
	// Neighbors is the candidate count drawn per generation (default 8).
	Neighbors int
	// MaxGenerations bounds the neighbor generations after the start
	// evaluation (default 32).
	MaxGenerations int
	// Patience stops the search after this many consecutive generations
	// without improvement (default 4).
	Patience int
	// MinDelta is the strict improvement threshold: a neighbor must beat
	// the best-so-far objective by more than this to move the incumbent
	// (default 0).
	MinDelta float64
}

func (c *Config) normalize() {
	if c.Neighbors == 0 {
		c.Neighbors = 8
	}
	if c.MaxGenerations == 0 {
		c.MaxGenerations = 32
	}
	if c.Patience == 0 {
		c.Patience = 4
	}
}

func (c Config) validate() error {
	if c.Neighbors < 1 {
		return fmt.Errorf("explore: neighbors must be >= 1, got %d", c.Neighbors)
	}
	if c.MaxGenerations < 1 {
		return fmt.Errorf("explore: max generations must be >= 1, got %d", c.MaxGenerations)
	}
	if c.Patience < 1 {
		return fmt.Errorf("explore: patience must be >= 1, got %d", c.Patience)
	}
	if math.IsNaN(c.MinDelta) || math.IsInf(c.MinDelta, 0) || c.MinDelta < 0 {
		return fmt.Errorf("explore: min delta must be finite and >= 0, got %v", c.MinDelta)
	}
	return nil
}

// Stop reasons a finished Trace reports.
const (
	// StopPatience: Patience consecutive generations without improvement.
	StopPatience = "patience"
	// StopExhausted: no unseen neighbor could be generated.
	StopExhausted = "exhausted"
	// StopMaxGenerations: the generation budget ran out.
	StopMaxGenerations = "max_generations"
)

// Candidate is one evaluated point of the trajectory.
type Candidate struct {
	// Gen is the generation the candidate was drawn in (0 = start).
	Gen int
	// Index is the candidate's position within its generation.
	Index int
	Point Point
	Eval  Eval
}

// Generation is one evaluated batch of the trajectory.
type Generation struct {
	Gen        int
	Candidates []Candidate
	// Improved reports whether this generation moved the incumbent.
	Improved bool
	// BestObjective is the best-so-far objective after this generation;
	// meaningful only when a feasible candidate has been found (the
	// Trace.Best == nil case).
	BestObjective float64
}

// Trace is the complete, deterministic search trajectory.
type Trace struct {
	Start       Point
	Generations []Generation
	// Best is the best-so-far feasible candidate; nil when the search
	// never found a feasible point.
	Best *Candidate
	// Evaluated counts candidates submitted to the EvalFunc.
	Evaluated int
	// StopReason is one of the Stop* constants.
	StopReason string
	// Converged reports the search stopped on its own criterion
	// (patience or exhaustion) rather than the generation budget.
	Converged bool
}

// Search runs a seeded hill-climb: the start point is evaluated as
// generation 0, then each generation draws unseen neighbors of the
// incumbent, evaluates them through eval, and moves the incumbent to
// the generation's best feasible candidate when it beats the best-so-far
// objective by more than MinDelta. The dedup store guarantees no point
// is ever evaluated twice; the best-so-far objective is monotone
// non-worsening by construction.
func Search(ctx context.Context, space Space, start Point, eval EvalFunc, cfg Config) (*Trace, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if !space.Contains(start) {
		return nil, fmt.Errorf("explore: start point %s is outside the space", start.Key())
	}
	if eval == nil {
		return nil, fmt.Errorf("explore: search needs an EvalFunc")
	}
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	trace := &Trace{Start: start.Clone()}
	seen := map[string]bool{start.Key(): true}
	runGen := func(gen int, pts []Point) ([]Eval, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		evals, err := eval(ctx, gen, pts)
		if err != nil {
			return nil, err
		}
		if len(evals) != len(pts) {
			return nil, fmt.Errorf("explore: generation %d: evaluator returned %d results for %d candidates", gen, len(evals), len(pts))
		}
		trace.Evaluated += len(pts)
		return evals, nil
	}

	// record folds one evaluated generation into the trace and moves the
	// incumbent on strict improvement; it returns the new origin.
	record := func(gen int, pts []Point, evals []Eval) bool {
		g := Generation{Gen: gen, Candidates: make([]Candidate, len(pts))}
		bi := -1
		for i := range pts {
			g.Candidates[i] = Candidate{Gen: gen, Index: i, Point: pts[i], Eval: evals[i]}
			if evals[i].Feasible && (bi < 0 || evals[i].Objective > evals[bi].Objective) {
				bi = i
			}
		}
		improved := bi >= 0 && (trace.Best == nil || evals[bi].Objective > trace.Best.Eval.Objective+cfg.MinDelta)
		if improved {
			c := g.Candidates[bi]
			trace.Best = &c
		}
		g.Improved = improved
		if trace.Best != nil {
			g.BestObjective = trace.Best.Eval.Objective
		}
		trace.Generations = append(trace.Generations, g)
		return improved
	}

	evals, err := runGen(0, []Point{start})
	if err != nil {
		return nil, err
	}
	record(0, []Point{start}, evals)
	origin := start

	stall := 0
	for gen := 1; gen <= cfg.MaxGenerations; gen++ {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(cfg.Seed, gen)))
		pts := neighborPoints(rng, space, origin, cfg.Neighbors, seen)
		if len(pts) == 0 {
			trace.StopReason = StopExhausted
			trace.Converged = true
			return trace, nil
		}
		evals, err := runGen(gen, pts)
		if err != nil {
			return nil, err
		}
		if record(gen, pts, evals) {
			origin = trace.Best.Point
			stall = 0
		} else {
			stall++
		}
		if stall >= cfg.Patience {
			trace.StopReason = StopPatience
			trace.Converged = true
			return trace, nil
		}
	}
	trace.StopReason = StopMaxGenerations
	return trace, nil
}

// neighborAttempts bounds random neighbor draws per requested candidate
// before falling back to the systematic unit-step scan.
const neighborAttempts = 16

// neighborPoints draws up to want distinct points near origin that have
// never been generated before, marking each in seen. Random draws
// mutate one axis (occasionally two) by small grid jumps; when random
// sampling runs dry — a heavily-explored neighborhood — a systematic
// scan of the unit-step neighbors tops the batch up, so the search only
// reports exhaustion when the local neighborhood truly is.
func neighborPoints(rng *rand.Rand, space Space, origin Point, want int, seen map[string]bool) []Point {
	axes := space.Axes()
	var out []Point
	for attempts := 0; len(out) < want && attempts < want*neighborAttempts; attempts++ {
		p := origin.Clone()
		n := 1
		if axes > 1 && rng.Intn(4) == 0 {
			n = 2
		}
		mutated := false
		for k := 0; k < n; k++ {
			ai := rng.Intn(axes)
			if ai < len(space.Nums) {
				mutated = mutateNum(rng, space.Nums[ai], &p.Nums[ai]) || mutated
			} else {
				mutated = mutateCat(rng, space.Cats[ai-len(space.Nums)], &p.Cats[ai-len(space.Nums)]) || mutated
			}
		}
		if !mutated {
			continue
		}
		if key := p.Key(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	if len(out) < want {
		out = append(out, unitNeighbors(space, origin, want-len(out), seen)...)
	}
	return out
}

// mutateNum nudges a grid index by a small jump (1–3 grid steps, mostly
// 1) in a random direction, clamped to the axis. It reports whether the
// index actually moved.
func mutateNum(rng *rand.Rand, a NumAxis, idx *int) bool {
	n := a.Points()
	if n < 2 {
		return false
	}
	maxJump := 3
	if n-1 < maxJump {
		maxJump = n - 1
	}
	jump := 1 + rng.Intn(maxJump)
	if rng.Intn(2) == 0 {
		jump = -jump
	}
	next := *idx + jump
	if next < 0 {
		next = 0
	}
	if next >= n {
		next = n - 1
	}
	if next == *idx {
		return false
	}
	*idx = next
	return true
}

// mutateCat reassigns a categorical index to a uniformly-drawn
// different value.
func mutateCat(rng *rand.Rand, a CatAxis, idx *int) bool {
	n := len(a.Values)
	if n < 2 {
		return false
	}
	next := rng.Intn(n - 1)
	if next >= *idx {
		next++
	}
	*idx = next
	return true
}

// unitNeighbors scans origin's unit-step neighborhood in fixed axis
// order (numeric -1 then +1, then each categorical value) and returns
// the first unseen points, marking them in seen. Deterministic by
// construction; it guarantees progress until the local neighborhood is
// fully explored.
func unitNeighbors(space Space, origin Point, want int, seen map[string]bool) []Point {
	var out []Point
	add := func(p Point) bool {
		if key := p.Key(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
		return len(out) >= want
	}
	for i, a := range space.Nums {
		for _, d := range []int{-1, 1} {
			next := origin.Nums[i] + d
			if next < 0 || next >= a.Points() {
				continue
			}
			p := origin.Clone()
			p.Nums[i] = next
			if add(p) {
				return out
			}
		}
	}
	for i, a := range space.Cats {
		for v := range a.Values {
			if v == origin.Cats[i] {
				continue
			}
			p := origin.Clone()
			p.Cats[i] = v
			if add(p) {
				return out
			}
		}
	}
	return out
}
