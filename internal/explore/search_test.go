package explore

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// testSpace is a small mixed space: two numeric axes and one
// categorical axis, 9×11×3 = 297 points.
func testSpace() Space {
	return Space{
		Nums: []NumAxis{
			{Name: "x", Min: 0, Max: 8, Step: 1},
			{Name: "y", Min: 50, Max: 70, Step: 2},
		},
		Cats: []CatAxis{
			{Name: "mode", Values: []string{"a", "b", "c"}},
		},
	}
}

// quadraticEval scores a point by negated distance to a known optimum
// and marks points infeasible inside a forbidden band, mimicking a
// constrained objective. Deterministic in the point alone.
func quadraticEval(ctx context.Context, gen int, pts []Point) ([]Eval, error) {
	out := make([]Eval, len(pts))
	for i, p := range pts {
		x, y, m := float64(p.Nums[0]), float64(p.Nums[1]), float64(p.Cats[0])
		obj := -((x-6)*(x-6) + (y-7)*(y-7)) + 2*m
		out[i] = Eval{
			Objective: obj,
			Feasible:  p.Nums[1] != 3, // one forbidden stripe
			Metrics:   map[string]float64{"obj": obj},
		}
	}
	return out, nil
}

func mustSearch(t *testing.T, cfg Config) *Trace {
	t.Helper()
	tr, err := Search(context.Background(), testSpace(), Point{Nums: []int{0, 0}, Cats: []int{0}}, quadraticEval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSearchDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := mustSearch(t, Config{Seed: seed})
		b := mustSearch(t, Config{Seed: seed})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs disagree", seed)
		}
	}
	a := mustSearch(t, Config{Seed: 1, MaxGenerations: 6, Patience: 6})
	b := mustSearch(t, Config{Seed: 2, MaxGenerations: 6, Patience: 6})
	if reflect.DeepEqual(a.Generations, b.Generations) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestSearchMonotoneBest pins the best-so-far invariants: the reported
// objective never worsens across generations, the incumbent is always
// feasible, and every generation's BestObjective matches the running
// maximum of its feasible candidates.
func TestSearchMonotoneBest(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tr := mustSearch(t, Config{Seed: seed})
		if tr.Best == nil || !tr.Best.Eval.Feasible {
			t.Fatalf("seed %d: no feasible incumbent", seed)
		}
		best := math.Inf(-1)
		haveBest := false
		for _, g := range tr.Generations {
			for _, c := range g.Candidates {
				if c.Eval.Feasible && c.Eval.Objective > best {
					best = c.Eval.Objective
					haveBest = true
				}
			}
			if haveBest && g.BestObjective != best {
				t.Fatalf("seed %d gen %d: BestObjective %v, running max %v", seed, g.Gen, g.BestObjective, best)
			}
		}
		if tr.Best.Eval.Objective != best {
			t.Fatalf("seed %d: Best %v, running max %v", seed, tr.Best.Eval.Objective, best)
		}
	}
}

// TestSearchNoDuplicateCandidates pins the dedup store: no point is
// ever evaluated twice in one search.
func TestSearchNoDuplicateCandidates(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		tr := mustSearch(t, Config{Seed: seed, MaxGenerations: 64, Patience: 64, Neighbors: 16})
		seen := map[string]bool{}
		n := 0
		for _, g := range tr.Generations {
			for _, c := range g.Candidates {
				key := c.Point.Key()
				if seen[key] {
					t.Fatalf("seed %d: point %s evaluated twice", seed, key)
				}
				seen[key] = true
				n++
			}
		}
		if n != tr.Evaluated {
			t.Fatalf("seed %d: trace holds %d candidates, Evaluated says %d", seed, n, tr.Evaluated)
		}
	}
}

func TestSearchStopReasons(t *testing.T) {
	// Exhaustion: a 2-point space runs out of unseen neighbors at once.
	tiny := Space{Nums: []NumAxis{{Name: "x", Min: 0, Max: 1, Step: 1}}}
	tr, err := Search(context.Background(), tiny, Point{Nums: []int{0}, Cats: []int{}}, quadraticEvalTiny, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.StopReason != StopExhausted || !tr.Converged {
		t.Fatalf("tiny space: got stop %q converged %v", tr.StopReason, tr.Converged)
	}
	if tr.Evaluated != 2 {
		t.Fatalf("tiny space: evaluated %d points, want 2", tr.Evaluated)
	}

	// Patience: a flat objective never improves after generation 0.
	flat := func(ctx context.Context, gen int, pts []Point) ([]Eval, error) {
		out := make([]Eval, len(pts))
		for i := range pts {
			out[i] = Eval{Objective: 1, Feasible: true}
		}
		return out, nil
	}
	tr, err = Search(context.Background(), testSpace(), Point{Nums: []int{0, 0}, Cats: []int{0}}, flat, Config{Seed: 1, Patience: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.StopReason != StopPatience || !tr.Converged {
		t.Fatalf("flat objective: got stop %q converged %v", tr.StopReason, tr.Converged)
	}
	if got := len(tr.Generations); got != 4 { // gen 0 + 3 stalled
		t.Fatalf("flat objective: %d generations, want 4", got)
	}

	// Budget: patience larger than the horizon runs to MaxGenerations.
	tr = mustSearch(t, Config{Seed: 1, MaxGenerations: 2, Patience: 100})
	if tr.StopReason != StopMaxGenerations || tr.Converged {
		t.Fatalf("budget stop: got stop %q converged %v", tr.StopReason, tr.Converged)
	}
}

func quadraticEvalTiny(ctx context.Context, gen int, pts []Point) ([]Eval, error) {
	out := make([]Eval, len(pts))
	for i, p := range pts {
		out[i] = Eval{Objective: float64(p.Nums[0]), Feasible: true}
	}
	return out, nil
}

func TestSearchNoFeasiblePoint(t *testing.T) {
	infeasible := func(ctx context.Context, gen int, pts []Point) ([]Eval, error) {
		out := make([]Eval, len(pts))
		for i := range pts {
			out[i] = Eval{Objective: 1, Feasible: false, Invalid: "always"}
		}
		return out, nil
	}
	tr, err := Search(context.Background(), testSpace(), Point{Nums: []int{0, 0}, Cats: []int{0}}, infeasible, Config{Seed: 1, Patience: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Best != nil {
		t.Fatalf("infeasible search produced an incumbent: %+v", tr.Best)
	}
	if tr.StopReason != StopPatience {
		t.Fatalf("infeasible search stopped with %q", tr.StopReason)
	}
}

func TestSearchRejectsBadInputs(t *testing.T) {
	ctx := context.Background()
	ok := Point{Nums: []int{0, 0}, Cats: []int{0}}
	cases := []struct {
		name  string
		space Space
		start Point
		eval  EvalFunc
		cfg   Config
	}{
		{"empty space", Space{}, Point{}, quadraticEval, Config{}},
		{"bad step", Space{Nums: []NumAxis{{Name: "x", Min: 0, Max: 1, Step: 0}}}, Point{Nums: []int{0}}, quadraticEval, Config{}},
		{"nan bound", Space{Nums: []NumAxis{{Name: "x", Min: math.NaN(), Max: 1, Step: 1}}}, Point{Nums: []int{0}}, quadraticEval, Config{}},
		{"inverted range", Space{Nums: []NumAxis{{Name: "x", Min: 2, Max: 1, Step: 1}}}, Point{Nums: []int{0}}, quadraticEval, Config{}},
		{"huge axis", Space{Nums: []NumAxis{{Name: "x", Min: 0, Max: 1e12, Step: 1e-3}}}, Point{Nums: []int{0}}, quadraticEval, Config{}},
		{"dup names", Space{Nums: []NumAxis{{Name: "x", Min: 0, Max: 1, Step: 1}}, Cats: []CatAxis{{Name: "x", Values: []string{"a"}}}}, Point{Nums: []int{0}, Cats: []int{0}}, quadraticEval, Config{}},
		{"dup cat values", Space{Cats: []CatAxis{{Name: "m", Values: []string{"a", "a"}}}}, Point{Cats: []int{0}}, quadraticEval, Config{}},
		{"start outside", testSpace(), Point{Nums: []int{0, 99}, Cats: []int{0}}, quadraticEval, Config{}},
		{"start shape", testSpace(), Point{Nums: []int{0}, Cats: []int{0}}, quadraticEval, Config{}},
		{"nil eval", testSpace(), ok, nil, Config{}},
		{"bad neighbors", testSpace(), ok, quadraticEval, Config{Neighbors: -1}},
		{"bad patience", testSpace(), ok, quadraticEval, Config{Patience: -1}},
		{"bad generations", testSpace(), ok, quadraticEval, Config{MaxGenerations: -1}},
		{"nan delta", testSpace(), ok, quadraticEval, Config{MinDelta: math.NaN()}},
	}
	for _, tc := range cases {
		if _, err := Search(ctx, tc.space, tc.start, tc.eval, tc.cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestSearchEvalContract(t *testing.T) {
	short := func(ctx context.Context, gen int, pts []Point) ([]Eval, error) {
		return nil, nil
	}
	if _, err := Search(context.Background(), testSpace(), Point{Nums: []int{0, 0}, Cats: []int{0}}, short, Config{Seed: 1}); err == nil {
		t.Fatal("short evaluator result accepted")
	}
	failing := func(ctx context.Context, gen int, pts []Point) ([]Eval, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := Search(context.Background(), testSpace(), Point{Nums: []int{0, 0}, Cats: []int{0}}, failing, Config{Seed: 1}); err == nil {
		t.Fatal("evaluator error swallowed")
	}
}

func TestSearchHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, testSpace(), Point{Nums: []int{0, 0}, Cats: []int{0}}, quadraticEval, Config{Seed: 1}); err == nil {
		t.Fatal("canceled context not honored")
	}
}

// TestSearchFindsOptimum pins search quality on the synthetic bowl: with
// a modest budget the climb should land on (or next to) the optimum.
func TestSearchFindsOptimum(t *testing.T) {
	tr := mustSearch(t, Config{Seed: 3, Neighbors: 8, MaxGenerations: 64, Patience: 8})
	if tr.Best == nil {
		t.Fatal("no incumbent")
	}
	// Optimum: x=6, y index 7, mode c → objective 4.
	if tr.Best.Eval.Objective < 2 {
		t.Fatalf("hill-climb stalled at objective %v (point %s)", tr.Best.Eval.Objective, tr.Best.Point.Key())
	}
}

func TestAxisGrid(t *testing.T) {
	a := NumAxis{Name: "x", Min: 55, Max: 75, Step: 5}
	if got := a.Points(); got != 5 {
		t.Fatalf("points: got %d, want 5", got)
	}
	if got := a.Value(4); got != 75 {
		t.Fatalf("value(4): got %v, want 75", got)
	}
	for v, want := range map[float64]int{54: 0, 55: 0, 57: 0, 58: 1, 75: 4, 99: 4, -10: 0} {
		if got := a.Index(v); got != want {
			t.Errorf("index(%v): got %d, want %d", v, got, want)
		}
	}
	p := Point{Nums: []int{3, 0}, Cats: []int{1}}
	if got := p.Key(); got != "3,0|1" {
		t.Fatalf("key: got %q", got)
	}
	q := p.Clone()
	q.Nums[0] = 9
	if p.Nums[0] != 3 {
		t.Fatal("clone aliases its source")
	}
}
