// Package explore is the design-space-exploration core: a seeded
// hill-climb over a finite grid of numeric and categorical axes, with
// neighbor generation, convergence detection, and a deduplicating
// candidate store. The package is simulation-agnostic — candidates are
// grid points, and evaluation is a callback — so the search loop can be
// property-tested in microseconds while the mobisim facade supplies the
// batched engine evaluation on top (mobisim.Optimize).
//
// Determinism is the core contract: for a fixed space, start point,
// config and a deterministic EvalFunc, Search produces an identical
// Trace on every run, regardless of how the EvalFunc parallelizes
// internally. All randomness flows from Config.Seed through one
// per-generation PRNG; the loop itself is single-threaded.
package explore

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxAxisPoints bounds one numeric axis's grid cardinality, so a tiny
// step over a huge range cannot silently turn the search space (and the
// dedup store) into a memory bomb.
const MaxAxisPoints = 1_000_000

// NumAxis is one numeric search dimension: a closed range quantized to
// a grid of Step-spaced values starting at Min. Points are addressed by
// grid index, so point identity is exact integer comparison — float
// round-off can never split or alias candidates.
type NumAxis struct {
	Name string
	Min  float64
	Max  float64
	Step float64
}

// Points returns the grid cardinality: the number of Step-spaced values
// in [Min, Max]. The epsilon absorbs float division round-off so that
// an exactly-divisible range (e.g. [55,75] step 5) keeps its endpoint.
func (a NumAxis) Points() int {
	return 1 + int(math.Floor((a.Max-a.Min)/a.Step+1e-9))
}

// Value materializes grid index i.
func (a NumAxis) Value(i int) float64 { return a.Min + float64(i)*a.Step }

// Index returns the grid index nearest to v, clamped into the axis.
func (a NumAxis) Index(v float64) int {
	i := int(math.Round((v - a.Min) / a.Step))
	if i < 0 {
		i = 0
	}
	if n := a.Points(); i >= n {
		i = n - 1
	}
	return i
}

func (a NumAxis) validate() error {
	if a.Name == "" {
		return fmt.Errorf("explore: numeric axis needs a name")
	}
	for _, f := range []struct {
		name  string
		value float64
	}{{"min", a.Min}, {"max", a.Max}, {"step", a.Step}} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Errorf("explore: axis %q: %s must be finite, got %v", a.Name, f.name, f.value)
		}
	}
	if a.Step <= 0 {
		return fmt.Errorf("explore: axis %q: step must be > 0, got %v", a.Name, a.Step)
	}
	if a.Min > a.Max {
		return fmt.Errorf("explore: axis %q: min %v exceeds max %v", a.Name, a.Min, a.Max)
	}
	if n := (a.Max - a.Min) / a.Step; n > MaxAxisPoints {
		return fmt.Errorf("explore: axis %q spans %.0f grid points, exceeding the %d bound", a.Name, n, MaxAxisPoints)
	}
	return nil
}

// CatAxis is one categorical search dimension: an ordered set of
// choices addressed by index.
type CatAxis struct {
	Name   string
	Values []string
}

func (a CatAxis) validate() error {
	if a.Name == "" {
		return fmt.Errorf("explore: categorical axis needs a name")
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("explore: axis %q needs at least one value", a.Name)
	}
	seen := make(map[string]bool, len(a.Values))
	for _, v := range a.Values {
		if v == "" {
			return fmt.Errorf("explore: axis %q has an empty value", a.Name)
		}
		if seen[v] {
			return fmt.Errorf("explore: axis %q repeats value %q", a.Name, v)
		}
		seen[v] = true
	}
	return nil
}

// Space is the search space: the numeric axes followed by the
// categorical axes, in declaration order. Axis order is part of point
// identity, so callers must keep it stable across runs for
// reproducible trajectories.
type Space struct {
	Nums []NumAxis
	Cats []CatAxis
}

// Axes returns the total axis count.
func (s Space) Axes() int { return len(s.Nums) + len(s.Cats) }

// Validate checks the space: at least one axis, per-axis rules, and
// globally unique axis names.
func (s Space) Validate() error {
	if s.Axes() == 0 {
		return fmt.Errorf("explore: search space needs at least one axis")
	}
	names := make(map[string]bool, s.Axes())
	for _, a := range s.Nums {
		if err := a.validate(); err != nil {
			return err
		}
		if names[a.Name] {
			return fmt.Errorf("explore: duplicate axis name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, a := range s.Cats {
		if err := a.validate(); err != nil {
			return err
		}
		if names[a.Name] {
			return fmt.Errorf("explore: duplicate axis name %q", a.Name)
		}
		names[a.Name] = true
	}
	return nil
}

// Contains reports whether p is a valid point of the space.
func (s Space) Contains(p Point) bool {
	if len(p.Nums) != len(s.Nums) || len(p.Cats) != len(s.Cats) {
		return false
	}
	for i, a := range s.Nums {
		if p.Nums[i] < 0 || p.Nums[i] >= a.Points() {
			return false
		}
	}
	for i, a := range s.Cats {
		if p.Cats[i] < 0 || p.Cats[i] >= len(a.Values) {
			return false
		}
	}
	return true
}

// Point is one candidate configuration: a grid index per numeric axis
// and a value index per categorical axis, aligned with the space's axis
// order.
type Point struct {
	Nums []int
	Cats []int
}

// Clone returns an independent copy.
func (p Point) Clone() Point {
	q := Point{}
	if p.Nums != nil {
		q.Nums = append([]int(nil), p.Nums...)
	}
	if p.Cats != nil {
		q.Cats = append([]int(nil), p.Cats...)
	}
	return q
}

// Key returns the point's canonical identity string ("3,0|1"), the
// dedup-store key. Integer indices make it exact.
func (p Point) Key() string {
	var b strings.Builder
	for i, v := range p.Nums {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	b.WriteByte('|')
	for i, v := range p.Cats {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}
