// Package benchkit holds the repository's perf-trajectory benchmark
// bodies in an importable form: the same functions back the
// `go test -bench` entry points in bench_test.go and the cmd/bench
// tool that materializes BENCH_*.json points via testing.Benchmark.
// Keeping one implementation in one place guarantees the committed
// trajectory measures exactly what CI's benchmark gates measure.
package benchkit

import (
	"context"
	"testing"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/pkg/mobisim"
)

// Seed is the benchmark seed, matching the historical bench_test value.
const Seed = 1

// SweepCells is the scenario count of the benchmark matrix.
const SweepCells = 8

// SweepMatrix returns the 8-scenario sweep benchmark matrix: the
// 3DMark+BML thermal-limit study (4 limits × 2 seed replicates, 10
// simulated seconds) BenchmarkSweepParallel has always run, in the
// facade's declarative form.
func SweepMatrix() mobisim.Matrix {
	return mobisim.Matrix{
		Platforms:  []string{mobisim.PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{mobisim.GovAppAware},
		LimitsC:    []float64{52, 58, 64, 70},
		Replicates: 2,
		DurationS:  10,
		BaseSeed:   Seed,
	}
}

// SweepParallel returns the sequential-engine sweep benchmark: the
// matrix executed one engine per scenario on a worker pool of the
// given width. It reports cells/sec, the sweep throughput headline.
func SweepParallel(workers int) func(b *testing.B) {
	return sweepBench(mobisim.SweepConfig{Workers: workers})
}

// SweepBatched returns the batched lockstep sweep benchmark: the same
// matrix executed on pooled batch engines with the given lane width.
// Output bytes are identical to SweepParallel's; only the throughput
// differs.
func SweepBatched(width int) func(b *testing.B) {
	return sweepBench(mobisim.SweepConfig{Workers: 1, BatchWidth: width})
}

func sweepBench(cfg mobisim.SweepConfig) func(b *testing.B) {
	return sweepBenchOn(SweepMatrix(), 4, SweepCells, cfg)
}

// sweepBenchOn runs one matrix under one executor configuration,
// checking the cell count and reporting cells/sec throughput.
func sweepBenchOn(matrix mobisim.Matrix, summaries, cells int, cfg mobisim.SweepConfig) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := mobisim.RunSweep(context.Background(), matrix, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(out.Summaries) != summaries {
				b.Fatalf("want %d cells, got %d", summaries, len(out.Summaries))
			}
		}
		b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/sec")
	}
}

// WarmSweepCells is the scenario count of the replicate-heavy matrix.
const WarmSweepCells = 32

// WarmSweepMatrix returns the replicate-heavy warm-start reference
// matrix: 4 thermal limits × 8 seed replicates of the Odroid 3DMark+BML
// appaware study, 10 simulated seconds each. The limits sit above the
// governor's early-action region on this workload, so warm groups share
// long prefixes — the case prefix warm-start exists for. Cold and warm
// executors produce byte-identical output on it (pinned by the mobisim
// warm-start tests); only throughput differs.
func WarmSweepMatrix() mobisim.Matrix {
	return mobisim.Matrix{
		Platforms:  []string{mobisim.PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{mobisim.GovAppAware},
		LimitsC:    []float64{61, 64, 67, 70},
		Replicates: 8,
		DurationS:  10,
		BaseSeed:   Seed,
	}
}

// SweepWarm returns the warm-start sweep benchmark: the replicate-heavy
// matrix with prefix grouping and fork-from-snapshot enabled, forks
// running batched at the given lane width (0 = scalar forks).
func SweepWarm(width int) func(b *testing.B) {
	return sweepBenchOn(WarmSweepMatrix(), 4, WarmSweepCells,
		mobisim.SweepConfig{Workers: 1, BatchWidth: width, WarmStart: true})
}

// SweepWarmColdBaseline returns the cold counterpart of SweepWarm: the
// same replicate-heavy matrix on the batched lockstep executor without
// warm-start, so the committed trajectory carries both sides of the
// comparison.
func SweepWarmColdBaseline(width int) func(b *testing.B) {
	return sweepBenchOn(WarmSweepMatrix(), 4, WarmSweepCells,
		mobisim.SweepConfig{Workers: 1, BatchWidth: width})
}

// NewEngine builds the Odroid 3DMark+BML application-aware scenario —
// the whole-simulator benchmark workload — with the given seed.
// Recording is disabled (the sweep pool's constant-memory
// configuration, and the strict zero-alloc target).
func NewEngine(b *testing.B, seed int64) *sim.Engine {
	b.Helper()
	return newEngineObserved(b, seed, nil)
}

// newEngineObserved is NewEngine with an optional observer attached —
// the configuration the batched daemon runs lanes in. Observers never
// perturb the dynamics, so observed engines are byte-identical to
// unobserved ones.
func newEngineObserved(b *testing.B, seed int64, obs sim.Observer) *sim.Engine {
	b.Helper()
	plat := platform.OdroidXU3(seed)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	gov, err := appaware.New(appaware.Config{HorizonS: 30, IntervalS: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: workload.NewThreeDMark(seed), PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: littleGov,
			platform.DomBig:    bigGov,
			platform.DomGPU:    gpuGov,
		},
		Controller:       gov,
		DisableRecording: true,
	}
	if obs != nil {
		cfg.Observers = []sim.Observer{obs}
	}
	eng, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := plat.Prewarm(50); err != nil {
		b.Fatal(err)
	}
	return eng
}

// EngineStep measures one scalar engine step (the oracle path) on the
// full Odroid scenario — the per-step counterpart of
// BenchmarkEngineStepNoRecording.
func EngineStep(b *testing.B) {
	eng := NewEngine(b, Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSteps(1); err != nil {
			b.Fatal(err)
		}
	}
}

// ForkedEngineStep measures one scalar step on an engine forked from a
// snapshot: the source engine runs into steady state, snapshots, and a
// fresh engine restores the blob and crosses a few control ticks before
// the timer starts. This is the warm-start executor's fork-path steady
// state, and CI gates it at 0 allocs/op alongside the cold step
// benchmarks — restoring must not leave the step loop allocating.
func ForkedEngineStep(b *testing.B) {
	src := NewEngine(b, Seed)
	if err := src.RunSteps(2000); err != nil {
		b.Fatal(err)
	}
	blob, err := src.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(b, Seed)
	if err := eng.Restore(blob); err != nil {
		b.Fatal(err)
	}
	// Cross two control ticks so lazily rebuilt caches (stability
	// params, power lookups) are paid before the measurement.
	if err := eng.RunSteps(200); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSteps(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BatchEngineStep returns the batched-step benchmark: width lanes of
// the Odroid scenario (distinct seeds) advanced one fused lockstep
// step per iteration. ns/op spans the whole batch; the ns/lane-step
// metric divides it down for comparison with EngineStep.
func BatchEngineStep(width int) func(b *testing.B) {
	return func(b *testing.B) {
		lanes := make([]*sim.Engine, width)
		for i := range lanes {
			lanes[i] = NewEngine(b, int64(i+1))
		}
		be, err := sim.NewBatchEngine(lanes)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := be.RunSteps(1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/lane-step")
	}
}

// slotObserver models the daemon's per-lane sample tap in its
// constant-memory form: the scalar channels are copied into a reused
// slot, never retaining the engine-owned slices.
type slotObserver struct {
	timeS, maxK, sensorK, totalW float64
}

func (o *slotObserver) OnSample(s *sim.Sample) error {
	o.timeS, o.maxK, o.sensorK, o.totalW = s.TimeS, s.MaxTempK, s.SensorK, s.TotalW
	return nil
}

// BatchEngineStepObserved is BatchEngineStep with a per-lane sample
// observer attached — the configuration the batched simd daemon steps
// lanes in. CI gates it at 0 allocs/op: attaching observers must not
// make the fused step loop allocate.
func BatchEngineStepObserved(width int) func(b *testing.B) {
	return func(b *testing.B) {
		lanes := make([]*sim.Engine, width)
		slots := make([]slotObserver, width)
		for i := range lanes {
			lanes[i] = newEngineObserved(b, int64(i+1), &slots[i])
		}
		be, err := sim.NewBatchEngine(lanes)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := be.RunSteps(1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/lane-step")
	}
}
