// Package benchkit holds the repository's perf-trajectory benchmark
// bodies in an importable form: the same functions back the
// `go test -bench` entry points in bench_test.go and the cmd/bench
// tool that materializes BENCH_*.json points via testing.Benchmark.
// Keeping one implementation in one place guarantees the committed
// trajectory measures exactly what CI's benchmark gates measure.
package benchkit

import (
	"context"
	"testing"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/pkg/mobisim"
)

// Seed is the benchmark seed, matching the historical bench_test value.
const Seed = 1

// SweepCells is the scenario count of the benchmark matrix.
const SweepCells = 8

// SweepMatrix returns the 8-scenario sweep benchmark matrix: the
// 3DMark+BML thermal-limit study (4 limits × 2 seed replicates, 10
// simulated seconds) BenchmarkSweepParallel has always run, in the
// facade's declarative form.
func SweepMatrix() mobisim.Matrix {
	return mobisim.Matrix{
		Platforms:  []string{mobisim.PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{mobisim.GovAppAware},
		LimitsC:    []float64{52, 58, 64, 70},
		Replicates: 2,
		DurationS:  10,
		BaseSeed:   Seed,
	}
}

// SweepParallel returns the sequential-engine sweep benchmark: the
// matrix executed one engine per scenario on a worker pool of the
// given width. It reports cells/sec, the sweep throughput headline.
func SweepParallel(workers int) func(b *testing.B) {
	return sweepBench(mobisim.SweepConfig{Workers: workers})
}

// SweepBatched returns the batched lockstep sweep benchmark: the same
// matrix executed on pooled batch engines with the given lane width.
// Output bytes are identical to SweepParallel's; only the throughput
// differs.
func SweepBatched(width int) func(b *testing.B) {
	return sweepBench(mobisim.SweepConfig{Workers: 1, BatchWidth: width})
}

func sweepBench(cfg mobisim.SweepConfig) func(b *testing.B) {
	return func(b *testing.B) {
		matrix := SweepMatrix()
		for i := 0; i < b.N; i++ {
			out, err := mobisim.RunSweep(context.Background(), matrix, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(out.Summaries) != 4 {
				b.Fatalf("want 4 cells, got %d", len(out.Summaries))
			}
		}
		b.ReportMetric(float64(SweepCells*b.N)/b.Elapsed().Seconds(), "cells/sec")
	}
}

// NewEngine builds the Odroid 3DMark+BML application-aware scenario —
// the whole-simulator benchmark workload — with the given seed.
// Recording is disabled (the sweep pool's constant-memory
// configuration, and the strict zero-alloc target).
func NewEngine(b *testing.B, seed int64) *sim.Engine {
	b.Helper()
	plat := platform.OdroidXU3(seed)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	gov, err := appaware.New(appaware.Config{HorizonS: 30, IntervalS: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		b.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Platform: plat,
		Apps: []sim.AppSpec{
			{App: workload.NewThreeDMark(seed), PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: littleGov,
			platform.DomBig:    bigGov,
			platform.DomGPU:    gpuGov,
		},
		Controller:       gov,
		DisableRecording: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := plat.Prewarm(50); err != nil {
		b.Fatal(err)
	}
	return eng
}

// EngineStep measures one scalar engine step (the oracle path) on the
// full Odroid scenario — the per-step counterpart of
// BenchmarkEngineStepNoRecording.
func EngineStep(b *testing.B) {
	eng := NewEngine(b, Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSteps(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BatchEngineStep returns the batched-step benchmark: width lanes of
// the Odroid scenario (distinct seeds) advanced one fused lockstep
// step per iteration. ns/op spans the whole batch; the ns/lane-step
// metric divides it down for comparison with EngineStep.
func BatchEngineStep(width int) func(b *testing.B) {
	return func(b *testing.B) {
		lanes := make([]*sim.Engine, width)
		for i := range lanes {
			lanes[i] = NewEngine(b, int64(i+1))
		}
		be, err := sim.NewBatchEngine(lanes)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := be.RunSteps(1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/lane-step")
	}
}
