package benchkit

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/simd"
	"repro/pkg/mobisim"
)

// DaemonSweepCold measures the daemon's compute path end to end: the
// replicate-heavy matrix submitted to an in-process simd server over
// HTTP, simulated, aggregated, encoded, and fetched. Every iteration
// shifts the base seed so its cells miss the cache. Reports cells/sec.
// Cells run on scalar per-cell engines (the -batch 0 configuration).
func DaemonSweepCold(b *testing.B) { daemonSweepBench(b, false, 0) }

// DaemonSweepColdBatched is DaemonSweepCold on the batched lockstep
// executor at width 8 — the daemon's default configuration. The result
// bytes are identical to the scalar run's (pinned by the simd batch
// tests); cold cells/sec against DaemonSweepCold is the PR-10
// headline.
func DaemonSweepColdBatched(b *testing.B) { daemonSweepBench(b, false, 8) }

// DaemonSweepWarm is DaemonSweepCold's cache-hit counterpart: the
// matrix is primed once outside the timer, then every timed
// resubmission must be answered entirely from the cache (the bench
// fails on any recomputation). Cold vs warm is the daemon's headline
// speedup.
func DaemonSweepWarm(b *testing.B) { daemonSweepBench(b, true, 0) }

func daemonSweepBench(b *testing.B, warm bool, batchWidth int) {
	dir, err := os.MkdirTemp("", "simd-bench-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := simd.NewServer(simd.Config{CacheDir: dir, JobWorkers: 1, BatchWidth: batchWidth})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if warm {
		daemonSubmit(b, ts.Client(), ts.URL, WarmSweepMatrix())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix := WarmSweepMatrix()
		if !warm {
			// A shifted seed changes every cell key: each iteration is a
			// genuine cold run against a warm process.
			matrix.BaseSeed = Seed + int64(i+1)*1000
		}
		status := daemonSubmit(b, ts.Client(), ts.URL, matrix)
		if warm && (status.CacheHits != WarmSweepCells || status.Computed != 0) {
			b.Fatalf("warm job recomputed: %d hits, %d computed", status.CacheHits, status.Computed)
		}
		if !warm && status.Computed != WarmSweepCells {
			b.Fatalf("cold job served from cache: %d hits, %d computed", status.CacheHits, status.Computed)
		}
	}
	b.ReportMetric(float64(WarmSweepCells*b.N)/b.Elapsed().Seconds(), "cells/sec")
}

// daemonJobStatus is the slice of the /v1/jobs status body the
// benchmark asserts on.
type daemonJobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	CacheHits int    `json:"cache_hits"`
	Computed  int    `json:"computed"`
}

// daemonSubmit posts one matrix job, polls it to completion, and
// fetches (and discards) the result body so the measurement covers
// the full request round trip.
func daemonSubmit(b *testing.B, client *http.Client, base string, matrix mobisim.Matrix) daemonJobStatus {
	b.Helper()
	body, err := json.Marshal(struct {
		Matrix mobisim.Matrix `json:"matrix"`
	}{matrix})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var status daemonJobStatus
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	for status.State != "done" {
		if status.State == "failed" || status.State == "canceled" {
			b.Fatalf("job %s %s: %s", status.ID, status.State, status.Error)
		}
		time.Sleep(200 * time.Microsecond)
		r, err := client.Get(base + "/v1/jobs/" + status.ID)
		if err != nil {
			b.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&status)
		r.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	r, err := client.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, status.ID))
	if err != nil {
		b.Fatal(err)
	}
	n, err := io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusOK || n == 0 {
		b.Fatalf("result fetch: HTTP %d, %d bytes, err %v", r.StatusCode, n, err)
	}
	return status
}
