package benchkit

import (
	"context"
	"testing"

	"repro/internal/sim"
	"repro/pkg/mobisim"
)

// ExploreSpec returns the benchmark search spec: the same Odroid
// limit/cpu-governor hill-climb the committed golden trace pins
// (pkg/mobisim/testdata/explore/spec.json), so the trajectory the
// benchmark measures is the one the differential tests verify.
func ExploreSpec() mobisim.OptimizeSpec {
	max := 90.0
	return mobisim.OptimizeSpec{
		Name: "bench-search",
		Scenario: mobisim.Scenario{
			Platform:  mobisim.PlatformOdroidXU3,
			Workload:  "gen-bursty+bml",
			Governor:  mobisim.GovAppAware,
			DurationS: 2,
			Seed:      Seed,
		},
		Objective:   mobisim.Objective{Metric: mobisim.MetricBMLIterations, Goal: mobisim.GoalMaximize},
		Constraints: []mobisim.Constraint{{Metric: mobisim.MetricPeakC, Max: &max}},
		Mutations: []mobisim.Mutation{
			{Param: mobisim.ParamLimitC, Min: 55, Max: 75, Step: 5},
			{Param: mobisim.ParamCPUGovernor, Values: []string{
				mobisim.CPUGovStock, mobisim.CPUGovPerformance, mobisim.CPUGovConservative}},
		},
		Neighbors:      3,
		MaxGenerations: 3,
		Patience:       2,
		Seed:           7,
	}
}

// memCellCache is an in-memory mobisim.CellCache for the warm-path
// benchmark.
type memCellCache map[uint64]map[string]float64

func (c memCellCache) Get(key uint64) (map[string]float64, bool) {
	m, ok := c[key]
	return m, ok
}

func (c memCellCache) Put(key uint64, metrics map[string]float64) { c[key] = metrics }

// ExploreGenerationCold measures the full seeded search cold: every
// generation evaluated as lockstep batches on pooled engines, no result
// cache. Reports cells/sec, the design-space-exploration throughput
// headline.
func ExploreGenerationCold(b *testing.B) {
	cells := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mobisim.Optimize(context.Background(), ExploreSpec(), mobisim.OptimizeConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Best == nil {
			b.Fatal("search found no feasible candidate")
		}
		if res.Cells == 0 {
			b.Fatal("cold search simulated no cells")
		}
		cells += res.Cells
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/sec")
}

// ExploreGenerationWarm is the cache-hit counterpart: the search's
// cells are primed into a content-addressed cache outside the timer,
// then every timed search must be answered entirely from it (the bench
// fails on any resimulation). Cold vs warm cells/sec is the cache
// speedup on the search loop itself.
func ExploreGenerationWarm(b *testing.B) {
	cache := make(memCellCache)
	prime, err := mobisim.Optimize(context.Background(), ExploreSpec(), mobisim.OptimizeConfig{Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	served := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mobisim.Optimize(context.Background(), ExploreSpec(), mobisim.OptimizeConfig{Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cells != 0 {
			b.Fatalf("warm search resimulated %d cells", res.Cells)
		}
		served += prime.Cells
	}
	b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "cells/sec")
}

// ExploreCandidateStep measures the candidate-evaluation steady state:
// width mutated candidates of the benchmark search (adjacent thermal
// limits on the search's own axis) coupled on a pooled lockstep engine,
// advanced one fused step per iteration. This is the exact hot path
// one explore generation spends its time in, and CI gates it at 0
// allocs/op alongside the other step benchmarks.
func ExploreCandidateStep(width int) func(b *testing.B) {
	return func(b *testing.B) {
		spec := ExploreSpec()
		lanes := make([]*sim.Engine, width)
		for i := range lanes {
			s := spec.Scenario
			// Neighboring candidates on the limit axis, wrapped into the
			// mutation range — the same specs the evaluator batches,
			// including its forced model-only-BML configuration.
			s.ModelOnlyBML = true
			s.LimitC = 55 + float64(5*(i%5))
			eng, err := mobisim.New(s, mobisim.WithoutRecording())
			if err != nil {
				b.Fatal(err)
			}
			lanes[i] = eng.Sim()
		}
		var pool sim.BatchPool
		be, err := pool.Get(lanes)
		if err != nil {
			b.Fatal(err)
		}
		// Cross two control ticks before measuring so lazily built
		// caches (stability params, power lookups) are paid up front —
		// the steady state the evaluator spends its generations in.
		if err := be.RunSteps(200); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := be.RunSteps(1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/lane-step")
	}
}
