package thermal

import (
	"math"
	"testing"
)

func sensorFixture(t *testing.T, cfg SensorConfig) (*Network, *Sensor, NodeID) {
	t.Helper()
	n := NewNetwork(300)
	id, err := n.AddNode(Node{Name: "pkg", Capacitance: 10, GAmbient: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Node = id
	s, err := NewSensor(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, s, id
}

func TestSensorValidation(t *testing.T) {
	n := NewNetwork(300)
	id, _ := n.AddNode(Node{Name: "x", Capacitance: 1, GAmbient: 1})
	cases := []SensorConfig{
		{Name: "noperiod", Node: id, PeriodS: 0},
		{Name: "badnode", Node: NodeID(9), PeriodS: 0.1},
		{Name: "baddrop", Node: id, PeriodS: 0.1, DropProb: 1.0},
		{Name: "badnoise", Node: id, PeriodS: 0.1, NoiseStdK: -1},
	}
	for _, cfg := range cases {
		if _, err := NewSensor(n, cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
	if _, err := NewSensor(nil, SensorConfig{Name: "nil", PeriodS: 0.1}); err == nil {
		t.Error("expected error for nil network")
	}
}

func TestSensorReadsTruthWithoutNoise(t *testing.T) {
	n, s, id := sensorFixture(t, SensorConfig{Name: "pkg", PeriodS: 0.1})
	if err := n.SetTemperature(id, 321.5); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 321.5 {
		t.Errorf("read = %v, want 321.5", got)
	}
	c, _ := s.ReadCelsius(0.01)
	if math.Abs(c-(321.5-273.15)) > 1e-12 {
		t.Errorf("celsius = %v", c)
	}
}

func TestSensorZeroOrderHold(t *testing.T) {
	n, s, id := sensorFixture(t, SensorConfig{Name: "pkg", PeriodS: 1.0})
	if err := n.SetTemperature(id, 310); err != nil {
		t.Fatal(err)
	}
	v0, _ := s.Read(0)
	// Change the truth mid-period; the sensor must hold its sample.
	if err := n.SetTemperature(id, 340); err != nil {
		t.Fatal(err)
	}
	vHeld, _ := s.Read(0.5)
	if vHeld != v0 {
		t.Errorf("mid-period read = %v, want held %v", vHeld, v0)
	}
	vNew, _ := s.Read(1.0)
	if vNew != 340 {
		t.Errorf("post-period read = %v, want 340", vNew)
	}
}

func TestSensorQuantization(t *testing.T) {
	n, s, id := sensorFixture(t, SensorConfig{Name: "pkg", PeriodS: 0.1, ResolutionK: 0.5})
	if err := n.SetTemperature(id, 310.26); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(0)
	if got != 310.5 {
		t.Errorf("quantized read = %v, want 310.5", got)
	}
}

func TestSensorNoiseIsDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) float64 {
		n := NewNetwork(300)
		id, _ := n.AddNode(Node{Name: "x", Capacitance: 1, GAmbient: 1})
		s, err := NewSensor(n, SensorConfig{Name: "x", Node: id, PeriodS: 0.1, NoiseStdK: 0.4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := s.Read(0)
		return v
	}
	if mk(1) != mk(1) {
		t.Error("same seed should give same reading")
	}
	if mk(1) == mk(2) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestSensorNoiseBounded(t *testing.T) {
	_, s, _ := sensorFixture(t, SensorConfig{Name: "pkg", PeriodS: 0.01, NoiseStdK: 0.3, Seed: 7})
	var sum, sumsq float64
	const nSamples = 2000
	for i := 0; i < nSamples; i++ {
		v, err := s.Read(float64(i) * 0.01)
		if err != nil {
			t.Fatal(err)
		}
		d := v - 300
		sum += d
		sumsq += d * d
	}
	mean := sum / nSamples
	std := math.Sqrt(sumsq/nSamples - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if std < 0.2 || std > 0.4 {
		t.Errorf("noise std = %v, want ~0.3", std)
	}
}

func TestSensorDropRepeatsLastValue(t *testing.T) {
	n, s, id := sensorFixture(t, SensorConfig{Name: "pkg", PeriodS: 0.1, DropProb: 0.5, Seed: 3})
	if err := n.SetTemperature(id, 305); err != nil {
		t.Fatal(err)
	}
	first, _ := s.Read(0)
	if first != 305 {
		t.Fatalf("first read = %v", first)
	}
	// March the truth upward; dropped samples must repeat previous values,
	// so every reading is one of the truth values seen so far.
	drops := 0
	last := first
	for i := 1; i <= 200; i++ {
		truth := 305 + float64(i)
		if err := n.SetTemperature(id, truth); err != nil {
			t.Fatal(err)
		}
		v, _ := s.Read(float64(i) * 0.1)
		if v != truth && v != last {
			t.Fatalf("reading %v is neither truth %v nor held %v", v, truth, last)
		}
		if v == last && v != truth {
			drops++
		}
		last = v
	}
	if drops == 0 {
		t.Error("expected some drops at p=0.5")
	}
	if s.Drops() == 0 {
		t.Error("drop counter should be positive")
	}
	if s.Samples() == 0 {
		t.Error("sample counter should be positive")
	}
}

func TestSensorNameAndNode(t *testing.T) {
	_, s, id := sensorFixture(t, SensorConfig{Name: "tsens", PeriodS: 0.1})
	if s.Name() != "tsens" {
		t.Errorf("name = %q", s.Name())
	}
	if s.Node() != id {
		t.Errorf("node = %v, want %v", s.Node(), id)
	}
}
