package thermal

// Property-based tests of the RC network over randomized topologies:
// physical invariants (cooling contraction, energy conservation) and
// structural invariants (conductance symmetry, coupling survival across
// AddNode regrowth) that must hold for any network the flat-slice
// layout can represent. Together with the differential golden test in
// internal/sim they are the safety net under the allocation-free
// integrator.

import (
	"math"
	"math/rand"
	"testing"
)

// randomNetwork builds a connected random network of 2..8 nodes with at
// least one ambient-coupled node, returning it alongside its node IDs.
func randomNetwork(t *testing.T, rng *rand.Rand) (*Network, []NodeID) {
	t.Helper()
	n := NewNetwork(ToKelvin(25))
	num := 2 + rng.Intn(7)
	ids := make([]NodeID, 0, num)
	for i := 0; i < num; i++ {
		gAmb := 0.0
		// Roughly half the nodes couple to ambient; node 0 always does so
		// the network can never be adrift of its only heat sink.
		if i == 0 || rng.Float64() < 0.5 {
			gAmb = 0.05 + 2*rng.Float64()
		}
		id, err := n.AddNode(Node{
			Name:        "n" + string(rune('a'+i)),
			Capacitance: 1 + 49*rng.Float64(),
			GAmbient:    gAmb,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A spanning chain keeps the network connected; extra random
	// couplings densify it.
	for i := 1; i < num; i++ {
		if err := n.Connect(ids[i-1], ids[i], 0.1+5*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < num; i++ {
		for j := i + 1; j < num; j++ {
			if rng.Float64() < 0.3 {
				if err := n.Connect(ids[i], ids[j], 0.1+5*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return n, ids
}

// TestPropertyZeroPowerDecay: with zero power injection, a network
// started uniformly above ambient must cool toward ambient — the
// hottest node's temperature is non-increasing every step, no node ever
// leaves the [ambient, start] envelope, and the network converges to
// ambient. (Individual interior nodes may rewarm transiently as heat
// redistributes, so monotonicity is asserted on the envelope, the
// quantity the maximum principle guarantees.)
func TestPropertyZeroPowerDecay(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Bounded time constants (C ≤ 10 J/K, GAmbient ≥ 0.5 W/K on every
		// node, so τ ≤ 20 s per node) keep "converges to ambient" checkable
		// in a few thousand steps; randomNetwork's unbounded τ would need
		// hundreds of simulated minutes.
		n := NewNetwork(ToKelvin(25))
		num := 2 + rng.Intn(7)
		ids := make([]NodeID, 0, num)
		for i := 0; i < num; i++ {
			id, err := n.AddNode(Node{
				Name:        "d",
				Capacitance: 1 + 9*rng.Float64(),
				GAmbient:    0.5 + 2*rng.Float64(),
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 1; i < num; i++ {
			if err := n.Connect(ids[i-1], ids[i], 0.1+5*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < num; i++ {
			for j := i + 2; j < num; j++ {
				if rng.Float64() < 0.3 {
					if err := n.Connect(ids[i], ids[j], 0.1+5*rng.Float64()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		startK := n.Ambient() + 30
		for _, id := range ids {
			if err := n.SetTemperature(id, startK); err != nil {
				t.Fatal(err)
			}
		}
		powers := make([]float64, n.NumNodes())
		const dt, steps = 0.02, 6000
		prevMax := startK
		for s := 0; s < steps; s++ {
			if err := n.Step(dt, powers); err != nil {
				t.Fatal(err)
			}
			maxK, _, err := n.MaxTemperature()
			if err != nil {
				t.Fatal(err)
			}
			if maxK > prevMax+1e-9 {
				t.Fatalf("seed %d step %d: hottest node warmed under zero power: %.12f -> %.12f", seed, s, prevMax, maxK)
			}
			prevMax = maxK
			for _, id := range ids {
				k, err := n.Temperature(id)
				if err != nil {
					t.Fatal(err)
				}
				if k < n.Ambient()-1e-9 || k > startK+1e-9 {
					t.Fatalf("seed %d step %d: node %d left the [ambient, start] envelope: %v", seed, s, id, k)
				}
			}
		}
		if prevMax > n.Ambient()+0.5 {
			t.Fatalf("seed %d: network failed to approach ambient after %v s: max still %.3f K above",
				seed, dt*steps, prevMax-n.Ambient())
		}
	}
}

// TestPropertyConnectSymmetryAndReplace: random sequences of Connect
// calls — including repeated re-connections of the same pair — must
// leave the conductance matrix symmetric with last-write-wins values,
// and growing the network with AddNode must preserve every existing
// coupling across the flat matrix regrowth.
func TestPropertyConnectSymmetryAndReplace(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := NewNetwork(ToKelvin(25))
		num := 3 + rng.Intn(6)
		ids := make([]NodeID, 0, num)
		for i := 0; i < num; i++ {
			id, err := n.AddNode(Node{Name: "x", Capacitance: 10, GAmbient: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		// want[a][b] tracks the expected symmetric conductances.
		want := make(map[[2]NodeID]float64)
		key := func(a, b NodeID) [2]NodeID {
			if a > b {
				a, b = b, a
			}
			return [2]NodeID{a, b}
		}
		for k := 0; k < 50; k++ {
			a, b := ids[rng.Intn(num)], ids[rng.Intn(num)]
			if a == b {
				continue
			}
			g := rng.Float64() * 10
			if err := n.Connect(a, b, g); err != nil {
				t.Fatal(err)
			}
			want[key(a, b)] = g
		}
		check := func(context string) {
			t.Helper()
			for i := 0; i < n.NumNodes(); i++ {
				for j := 0; j < n.NumNodes(); j++ {
					gij, err := n.Conductance(NodeID(i), NodeID(j))
					if err != nil {
						t.Fatal(err)
					}
					gji, err := n.Conductance(NodeID(j), NodeID(i))
					if err != nil {
						t.Fatal(err)
					}
					if gij != gji {
						t.Fatalf("seed %d (%s): conductance asymmetric: g[%d][%d]=%v g[%d][%d]=%v", seed, context, i, j, gij, i, j, gji)
					}
					if i != j && NodeID(i) < NodeID(num) && NodeID(j) < NodeID(num) {
						if wantG := want[key(NodeID(i), NodeID(j))]; gij != wantG {
							t.Fatalf("seed %d (%s): g[%d][%d]=%v, want last-written %v", seed, context, i, j, gij, wantG)
						}
					}
				}
			}
		}
		check("after connects")
		// Growing the matrix must not disturb existing couplings.
		if _, err := n.AddNode(Node{Name: "grown", Capacitance: 5, GAmbient: 0.1}); err != nil {
			t.Fatal(err)
		}
		check("after AddNode regrowth")
	}
}

// TestPropertyEnergyBalance: over any run with constant power
// injection, energy conservation must hold within integration
// tolerance: energy in − energy out to ambient = change in stored
// thermal energy. The ambient outflow is integrated with the trapezoid
// rule, whose O(dt²) error dominates RK4's; the tolerance reflects
// that, not the integrator.
func TestPropertyEnergyBalance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		n := NewNetwork(ToKelvin(25))
		num := 2 + rng.Intn(7)
		caps := make([]float64, num)
		gAmbs := make([]float64, num)
		ids := make([]NodeID, 0, num)
		for i := 0; i < num; i++ {
			caps[i] = 1 + 49*rng.Float64()
			if i == 0 || rng.Float64() < 0.5 {
				gAmbs[i] = 0.05 + 2*rng.Float64()
			}
			id, err := n.AddNode(Node{Name: "e", Capacitance: caps[i], GAmbient: gAmbs[i]})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 1; i < num; i++ {
			if err := n.Connect(ids[i-1], ids[i], 0.1+5*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		powers := make([]float64, n.NumNodes())
		for i := range powers {
			if rng.Float64() < 0.7 {
				powers[i] = 5 * rng.Float64()
			}
		}

		stored := func() float64 {
			e := 0.0
			for i := 0; i < n.NumNodes(); i++ {
				k, err := n.Temperature(NodeID(i))
				if err != nil {
					t.Fatal(err)
				}
				e += caps[i] * (k - n.Ambient())
			}
			return e
		}
		outflow := func() float64 {
			f := 0.0
			for i := 0; i < n.NumNodes(); i++ {
				k, err := n.Temperature(NodeID(i))
				if err != nil {
					t.Fatal(err)
				}
				f += gAmbs[i] * (k - n.Ambient())
			}
			return f
		}

		const dt, steps = 0.001, 4000
		eIn, eOut := 0.0, 0.0
		e0 := stored()
		prevOut := outflow()
		for s := 0; s < steps; s++ {
			if err := n.Step(dt, powers); err != nil {
				t.Fatal(err)
			}
			curOut := outflow()
			eOut += 0.5 * (prevOut + curOut) * dt
			prevOut = curOut
			for _, p := range powers {
				eIn += p * dt
			}
		}
		deltaStored := stored() - e0
		imbalance := math.Abs(eIn - eOut - deltaStored)
		scale := math.Max(1, math.Max(eIn, math.Abs(deltaStored)))
		if imbalance/scale > 1e-3 {
			t.Fatalf("seed %d: energy imbalance %.6f J (in %.3f, out %.3f, Δstored %.3f, rel %.2e)",
				seed, imbalance, eIn, eOut, deltaStored, imbalance/scale)
		}
	}
}

// TestStepIntoMatchesStep: StepInto must preview exactly the state Step
// would produce, bitwise, without advancing the network.
func TestStepIntoMatchesStep(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		n, ids := randomNetwork(t, rng)
		powers := make([]float64, n.NumNodes())
		for i := range powers {
			powers[i] = 4 * rng.Float64()
		}
		for _, id := range ids {
			if err := n.SetTemperature(id, n.Ambient()+30*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		const dt = 0.001
		before := n.Temperatures()
		preview := make([]float64, n.NumNodes())
		if err := n.StepInto(dt, powers, preview); err != nil {
			t.Fatal(err)
		}
		for i, k := range n.Temperatures() {
			if math.Float64bits(k) != math.Float64bits(before[i]) {
				t.Fatalf("seed %d: StepInto mutated node %d: %v -> %v", seed, i, before[i], k)
			}
		}
		if err := n.Step(dt, powers); err != nil {
			t.Fatal(err)
		}
		for i, k := range n.Temperatures() {
			if math.Float64bits(k) != math.Float64bits(preview[i]) {
				t.Fatalf("seed %d: StepInto preview diverged from Step at node %d: %v vs %v", seed, i, preview[i], k)
			}
		}
	}
}
