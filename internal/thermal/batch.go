package thermal

import (
	"fmt"
	"math"
)

// couple is one directed nonzero conductance entry of the shared
// matrix, in the row-major order the scalar derivative kernel walks.
// Keeping the order identical is what makes the batched kernel
// bitwise-equal to the scalar one: per lane, every node accumulates
// exactly the same terms in exactly the same sequence.
type couple struct {
	i, j int
	g    float64
}

// BatchNetwork steps B same-topology networks in lockstep through
// structure-of-arrays state: temperatures, RK4 slopes and stage vectors
// are packed node-major (index i*B + lane), so one pass over the shared
// conductance structure serves every lane with lane-contiguous inner
// loops. The per-lane arithmetic — term order, stage combinations, the
// final capacitance division — mirrors Network.stepInto exactly, so a
// batched lane is bitwise-identical to the same network stepped alone
// (the differential test in this package pins that).
//
// The batch holds live references to the member networks: Step gathers
// their temperatures, integrates, and scatters the results back, so
// interleaved per-lane reads (sensors, governors) always see current
// state. A BatchNetwork is not safe for concurrent use, and the member
// networks must not be stepped independently while batched (nothing
// breaks, but those steps would not be fused).
type BatchNetwork struct {
	nets  []*Network
	m     int // nodes per network
	lanes int // B

	// Shared topology, validated bitwise-equal across lanes.
	ambient  float64
	capc     []float64 // len m
	gAmb     []float64 // len m
	pairs    []couple  // row-major directed nonzero conductances
	rowStart []int     // pairs index range of row i: [rowStart[i], rowStart[i+1])

	// Node-major SoA state and scratch, len m*lanes.
	temps, k1, k2, k3, k4, stage []float64
}

// NewBatchNetwork couples the given networks into one lockstep batch.
// All networks must share the same topology bitwise: node count,
// ambient temperature, capacitances, ambient couplings and the full
// conductance matrix. Temperatures may differ per lane.
func NewBatchNetwork(nets []*Network) (*BatchNetwork, error) {
	bn := &BatchNetwork{}
	if err := bn.Rebind(nets); err != nil {
		return nil, err
	}
	return bn, nil
}

// Rebind points the batch at a new set of networks, reusing the SoA
// buffers when the shape (node count × lane count) is unchanged — the
// reuse hook the sweep engine pool relies on to make per-batch setup
// allocation-free. The same topology rules as NewBatchNetwork apply.
func (bn *BatchNetwork) Rebind(nets []*Network) error {
	if len(nets) == 0 {
		return fmt.Errorf("thermal: batch needs at least one network")
	}
	proto := nets[0]
	m := len(proto.nodes)
	if m == 0 {
		return fmt.Errorf("thermal: batch networks must have at least one node")
	}
	for li, n := range nets[1:] {
		if err := sameTopology(proto, n); err != nil {
			return fmt.Errorf("thermal: batch lane %d: %w", li+1, err)
		}
	}

	bn.nets = append(bn.nets[:0], nets...)
	bn.ambient = proto.ambient
	bn.capc = append(bn.capc[:0], proto.capc...)
	bn.gAmb = append(bn.gAmb[:0], proto.gAmb...)
	bn.pairs = bn.pairs[:0]
	bn.rowStart = bn.rowStart[:0]
	for i := 0; i < m; i++ {
		bn.rowStart = append(bn.rowStart, len(bn.pairs))
		row := proto.g[i*m : i*m+m]
		for j, g := range row {
			if g != 0 {
				bn.pairs = append(bn.pairs, couple{i: i, j: j, g: g})
			}
		}
	}
	bn.rowStart = append(bn.rowStart, len(bn.pairs))

	if bn.m != m || bn.lanes != len(nets) {
		bn.m, bn.lanes = m, len(nets)
		size := m * len(nets)
		bn.temps = make([]float64, size)
		bn.k1 = make([]float64, size)
		bn.k2 = make([]float64, size)
		bn.k3 = make([]float64, size)
		bn.k4 = make([]float64, size)
		bn.stage = make([]float64, size)
	}
	bn.Gather()
	return nil
}

// sameTopology reports why two networks cannot share a batch. Plain
// float equality is exact here: every compared quantity is validated
// finite at construction, so there are no NaNs to mis-compare.
func sameTopology(a, b *Network) error {
	if len(a.nodes) != len(b.nodes) {
		return fmt.Errorf("node count %d != %d", len(b.nodes), len(a.nodes))
	}
	if a.ambient != b.ambient {
		return fmt.Errorf("ambient %v != %v", b.ambient, a.ambient)
	}
	for i := range a.capc {
		if a.capc[i] != b.capc[i] || a.gAmb[i] != b.gAmb[i] {
			return fmt.Errorf("node %d parameters differ", i)
		}
	}
	for x := range a.g {
		if a.g[x] != b.g[x] {
			return fmt.Errorf("conductance matrix differs at entry %d", x)
		}
	}
	return nil
}

// Lanes returns the number of member networks.
func (bn *BatchNetwork) Lanes() int { return bn.lanes }

// NumNodes returns the per-network node count.
func (bn *BatchNetwork) NumNodes() int { return bn.m }

// Gather pulls every member network's current temperatures into the
// packed SoA state. Call it once before a run of Step calls; Step
// itself keeps the packed state and the member networks in sync, so
// re-gathering per step is only needed if a lane's temperatures were
// mutated externally (SetTemperature, Prewarm) since the last Step.
func (bn *BatchNetwork) Gather() {
	B := bn.lanes
	for b, n := range bn.nets {
		for i, t := range n.temps {
			bn.temps[i*B+b] = t
		}
	}
}

// Step advances every lane by dt seconds under the packed per-node
// power injection (node-major: powers[i*Lanes()+lane], in watts), the
// batched counterpart of Network.Step. It integrates from the packed
// SoA state (sync it with Gather after any external temperature write)
// and scatters the results back to the member networks, so interleaved
// per-lane reads always see current state. Step performs no
// allocations.
func (bn *BatchNetwork) Step(dt float64, powers []float64) error {
	if len(powers) != bn.m*bn.lanes {
		return fmt.Errorf("thermal: got %d powers for %d nodes × %d lanes", len(powers), bn.m, bn.lanes)
	}
	if dt <= 0 || math.IsNaN(dt) {
		return fmt.Errorf("thermal: step dt must be positive, got %v", dt)
	}
	bn.stepInto(dt, powers)
	B := bn.lanes
	for b, n := range bn.nets {
		for i := range n.temps {
			n.temps[i] = bn.temps[i*B+b]
		}
	}
	return nil
}

// stepInto is the fused classic RK4 update over all lanes, mirroring
// Network.stepInto stage for stage.
func (bn *BatchNetwork) stepInto(dt float64, powers []float64) {
	n := bn.m * bn.lanes
	// Explicit length-n reslices let the compiler hoist every stage
	// loop's bounds check.
	temps, stage := bn.temps[:n], bn.stage[:n]
	k1, k2, k3, k4 := bn.k1[:n], bn.k2[:n], bn.k3[:n], bn.k4[:n]

	bn.derivs(k1, temps, powers)
	for x := range temps {
		stage[x] = temps[x] + 0.5*dt*k1[x]
	}
	bn.derivs(k2, stage, powers)
	for x := range temps {
		stage[x] = temps[x] + 0.5*dt*k2[x]
	}
	bn.derivs(k3, stage, powers)
	for x := range temps {
		stage[x] = temps[x] + dt*k3[x]
	}
	bn.derivs(k4, stage, powers)
	for x := range temps {
		temps[x] = temps[x] + dt/6*(k1[x]+2*k2[x]+2*k3[x]+k4[x])
	}
}

// derivs fills dst with dT/dt for all lanes at once. Per lane and node
// the accumulation sequence matches Network.derivs exactly: injected
// power, minus the ambient term, minus each row-major nonzero coupling
// in ascending j order, divided by the capacitance last. Only the
// iteration is restructured — power/ambient terms for all lanes, then
// the shared sparse coupling list with a lane-contiguous inner loop —
// so the matrix walk and the zero-skip branches are paid once per
// batch instead of once per lane.
func (bn *BatchNetwork) derivs(dst, temps, powers []float64) {
	if bn.lanes == 8 {
		bn.derivs8(dst, temps, powers)
		return
	}
	B := bn.lanes
	amb := bn.ambient
	for i := 0; i < bn.m; i++ {
		off := i * B
		ga, cc := bn.gAmb[i], bn.capc[i]
		d, t, p := dst[off:off+B], temps[off:off+B], powers[off:off+B]
		for b := 0; b < B; b++ {
			d[b] = p[b] - ga*(t[b]-amb)
		}
		// All of row i's couplings accumulate while its lane row is
		// cache-hot (one row is B float64s — a cache line at B = 8).
		for _, c := range bn.pairs[bn.rowStart[i]:bn.rowStart[i+1]] {
			jo := c.j * B
			g := c.g
			tj := temps[jo : jo+B]
			for b := 0; b < B; b++ {
				d[b] -= g * (t[b] - tj[b])
			}
		}
		for b := 0; b < B; b++ {
			d[b] /= cc
		}
	}
}

// derivs8 is derivs specialized for the default batch width of 8 lanes
// (one lane row = one 64-byte cache line): the fixed-size array views
// let the compiler drop every inner-loop bounds check and fully unroll.
// The arithmetic is identical to the generic kernel, term for term.
func (bn *BatchNetwork) derivs8(dst, temps, powers []float64) {
	const B = 8
	amb := bn.ambient
	for i := 0; i < bn.m; i++ {
		off := i * B
		ga, cc := bn.gAmb[i], bn.capc[i]
		d := (*[B]float64)(dst[off:])
		t := (*[B]float64)(temps[off:])
		p := (*[B]float64)(powers[off:])
		for b := 0; b < B; b++ {
			d[b] = p[b] - ga*(t[b]-amb)
		}
		for _, c := range bn.pairs[bn.rowStart[i]:bn.rowStart[i+1]] {
			g := c.g
			tj := (*[B]float64)(temps[c.j*B:])
			for b := 0; b < B; b++ {
				d[b] -= g * (t[b] - tj[b])
			}
		}
		for b := 0; b < B; b++ {
			d[b] /= cc
		}
	}
}
