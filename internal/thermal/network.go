// Package thermal implements the RC thermal substrate used by the
// simulator: a lumped multi-node resistor-capacitor network with ambient
// coupling, RK4 time integration, steady-state solving, and noisy
// temperature sensors.
//
// Temperatures are in Kelvin internally; helpers convert to Celsius for
// reporting, matching the paper's figures.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// CelsiusOffset converts between Kelvin and degrees Celsius.
const CelsiusOffset = 273.15

// ToCelsius converts a Kelvin temperature to Celsius.
func ToCelsius(k float64) float64 { return k - CelsiusOffset }

// ToKelvin converts a Celsius temperature to Kelvin.
func ToKelvin(c float64) float64 { return c + CelsiusOffset }

// NodeID identifies a node within a Network.
type NodeID int

// Node is a thermal mass in the network.
type Node struct {
	// Name identifies the node in traces ("big", "gpu", "skin", ...).
	Name string
	// Capacitance is the thermal capacitance in J/K. Must be > 0.
	Capacitance float64
	// GAmbient is the conductance to ambient in W/K (0 for internal nodes).
	GAmbient float64
}

// Network is a lumped RC thermal network. Create one with NewNetwork,
// add nodes and couplings, then advance it with Step.
type Network struct {
	nodes   []Node
	g       [][]float64 // symmetric node-to-node conductances, W/K
	temps   []float64   // current temperatures, K
	ambient float64     // ambient temperature, K
}

// NewNetwork creates an empty network at the given ambient temperature
// (Kelvin).
func NewNetwork(ambientK float64) *Network {
	return &Network{ambient: ambientK}
}

// AddNode appends a node initialized to ambient temperature and returns
// its ID. It returns an error for non-positive capacitance or negative
// ambient conductance.
func (n *Network) AddNode(node Node) (NodeID, error) {
	if node.Capacitance <= 0 || math.IsNaN(node.Capacitance) {
		return -1, fmt.Errorf("thermal: node %q capacitance must be positive, got %v", node.Name, node.Capacitance)
	}
	if node.GAmbient < 0 || math.IsNaN(node.GAmbient) {
		return -1, fmt.Errorf("thermal: node %q ambient conductance must be >= 0, got %v", node.Name, node.GAmbient)
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	n.temps = append(n.temps, n.ambient)
	for i := range n.g {
		n.g[i] = append(n.g[i], 0)
	}
	n.g = append(n.g, make([]float64, len(n.nodes)))
	return id, nil
}

// Connect couples nodes a and b with conductance gWPerK (W/K). Calling it
// again for the same pair replaces the previous value.
func (n *Network) Connect(a, b NodeID, gWPerK float64) error {
	if err := n.check(a); err != nil {
		return err
	}
	if err := n.check(b); err != nil {
		return err
	}
	if a == b {
		return errors.New("thermal: cannot connect a node to itself")
	}
	if gWPerK < 0 || math.IsNaN(gWPerK) {
		return fmt.Errorf("thermal: conductance must be >= 0, got %v", gWPerK)
	}
	n.g[a][b] = gWPerK
	n.g[b][a] = gWPerK
	return nil
}

func (n *Network) check(id NodeID) error {
	if id < 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("thermal: node id %d out of range [0,%d)", id, len(n.nodes))
	}
	return nil
}

// NumNodes reports how many nodes the network holds.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NodeName returns the name of node id ("" if out of range).
func (n *Network) NodeName(id NodeID) string {
	if n.check(id) != nil {
		return ""
	}
	return n.nodes[id].Name
}

// Ambient returns the ambient temperature in Kelvin.
func (n *Network) Ambient() float64 { return n.ambient }

// SetAmbient changes the ambient temperature (Kelvin).
func (n *Network) SetAmbient(k float64) { n.ambient = k }

// Temperature returns the current temperature of node id in Kelvin.
func (n *Network) Temperature(id NodeID) (float64, error) {
	if err := n.check(id); err != nil {
		return 0, err
	}
	return n.temps[id], nil
}

// Temperatures returns a copy of all node temperatures in Kelvin.
func (n *Network) Temperatures() []float64 {
	return append([]float64(nil), n.temps...)
}

// MaxTemperature returns the hottest node temperature in Kelvin and its
// node ID. It returns an error for an empty network.
func (n *Network) MaxTemperature() (float64, NodeID, error) {
	if len(n.temps) == 0 {
		return 0, -1, errors.New("thermal: empty network")
	}
	best, id := n.temps[0], NodeID(0)
	for i, t := range n.temps {
		if t > best {
			best, id = t, NodeID(i)
		}
	}
	return best, id, nil
}

// SetTemperature overrides the temperature of node id (Kelvin).
func (n *Network) SetTemperature(id NodeID, k float64) error {
	if err := n.check(id); err != nil {
		return err
	}
	if math.IsNaN(k) || k <= 0 {
		return fmt.Errorf("thermal: temperature must be positive Kelvin, got %v", k)
	}
	n.temps[id] = k
	return nil
}

// Reset returns every node to ambient temperature.
func (n *Network) Reset() {
	for i := range n.temps {
		n.temps[i] = n.ambient
	}
}

// derivs fills dst with dT/dt for the given temperatures and node powers.
func (n *Network) derivs(dst, temps, powers []float64) {
	for i := range n.nodes {
		q := powers[i]
		q -= n.nodes[i].GAmbient * (temps[i] - n.ambient)
		for j := range n.nodes {
			if g := n.g[i][j]; g != 0 {
				q -= g * (temps[i] - temps[j])
			}
		}
		dst[i] = q / n.nodes[i].Capacitance
	}
}

// Step advances the network by dt seconds with the given per-node power
// injection (W) using classic fourth-order Runge-Kutta. len(powers) must
// equal NumNodes.
func (n *Network) Step(dt float64, powers []float64) error {
	if len(powers) != len(n.nodes) {
		return fmt.Errorf("thermal: got %d powers for %d nodes", len(powers), len(n.nodes))
	}
	if dt <= 0 || math.IsNaN(dt) {
		return fmt.Errorf("thermal: step dt must be positive, got %v", dt)
	}
	m := len(n.nodes)
	k1 := make([]float64, m)
	k2 := make([]float64, m)
	k3 := make([]float64, m)
	k4 := make([]float64, m)
	tmp := make([]float64, m)

	n.derivs(k1, n.temps, powers)
	for i := 0; i < m; i++ {
		tmp[i] = n.temps[i] + 0.5*dt*k1[i]
	}
	n.derivs(k2, tmp, powers)
	for i := 0; i < m; i++ {
		tmp[i] = n.temps[i] + 0.5*dt*k2[i]
	}
	n.derivs(k3, tmp, powers)
	for i := 0; i < m; i++ {
		tmp[i] = n.temps[i] + dt*k3[i]
	}
	n.derivs(k4, tmp, powers)
	for i := 0; i < m; i++ {
		n.temps[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
	return nil
}

// StepEuler advances the network by dt seconds using forward Euler. It is
// retained for the integration-accuracy ablation benchmark.
func (n *Network) StepEuler(dt float64, powers []float64) error {
	if len(powers) != len(n.nodes) {
		return fmt.Errorf("thermal: got %d powers for %d nodes", len(powers), len(n.nodes))
	}
	if dt <= 0 || math.IsNaN(dt) {
		return fmt.Errorf("thermal: step dt must be positive, got %v", dt)
	}
	d := make([]float64, len(n.nodes))
	n.derivs(d, n.temps, powers)
	for i := range n.temps {
		n.temps[i] += dt * d[i]
	}
	return nil
}

// SteadyState solves for the equilibrium temperatures (Kelvin) under
// constant per-node powers by Gaussian elimination on the conductance
// matrix. It does not modify the network's current temperatures.
func (n *Network) SteadyState(powers []float64) ([]float64, error) {
	m := len(n.nodes)
	if len(powers) != m {
		return nil, fmt.Errorf("thermal: got %d powers for %d nodes", len(powers), m)
	}
	if m == 0 {
		return nil, errors.New("thermal: empty network")
	}
	// Build A*T = b where A[i][i] = GAmb_i + sum_j g_ij, A[i][j] = -g_ij,
	// b[i] = P_i + GAmb_i * Tamb.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		diag := n.nodes[i].GAmbient
		for j := 0; j < m; j++ {
			if i != j {
				a[i][j] = -n.g[i][j]
				diag += n.g[i][j]
			}
		}
		a[i][i] = diag
		b[i] = powers[i] + n.nodes[i].GAmbient*n.ambient
	}
	return solveLinear(a, b)
}

// solveLinear performs Gaussian elimination with partial pivoting on a
// copy of (a, b), returning x with a*x = b.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	m := len(b)
	// Work on copies so the caller's slices survive.
	aa := make([][]float64, m)
	for i := range a {
		aa[i] = append([]float64(nil), a[i]...)
	}
	bb := append([]float64(nil), b...)

	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(aa[r][col]) > math.Abs(aa[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aa[pivot][col]) < 1e-15 {
			return nil, errors.New("thermal: singular conductance matrix (node with no path to ambient?)")
		}
		aa[col], aa[pivot] = aa[pivot], aa[col]
		bb[col], bb[pivot] = bb[pivot], bb[col]
		for r := col + 1; r < m; r++ {
			f := aa[r][col] / aa[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				aa[r][c] -= f * aa[col][c]
			}
			bb[r] -= f * bb[col]
		}
	}
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		sum := bb[r]
		for c := r + 1; c < m; c++ {
			sum -= aa[r][c] * x[c]
		}
		x[r] = sum / aa[r][r]
	}
	return x, nil
}

// Lumped reduces the network to a single-node equivalent: the total
// capacitance and the effective resistance from a uniform-temperature
// interior to ambient. The reduction backs the paper's lumped stability
// analysis (Section IV-A), which treats the platform as one R and one C.
type Lumped struct {
	// CapacitanceJPerK is the sum of node capacitances.
	CapacitanceJPerK float64
	// ResistanceKPerW is 1 / (sum of ambient conductances).
	ResistanceKPerW float64
}

// Lump computes the single-node reduction.
func (n *Network) Lump() (Lumped, error) {
	var c, g float64
	for _, node := range n.nodes {
		c += node.Capacitance
		g += node.GAmbient
	}
	if g <= 0 {
		return Lumped{}, errors.New("thermal: network has no ambient coupling")
	}
	return Lumped{CapacitanceJPerK: c, ResistanceKPerW: 1 / g}, nil
}
