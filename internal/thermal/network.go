// Package thermal implements the RC thermal substrate used by the
// simulator: a lumped multi-node resistor-capacitor network with ambient
// coupling, RK4 time integration, steady-state solving, and noisy
// temperature sensors.
//
// Temperatures are in Kelvin internally; helpers convert to Celsius for
// reporting, matching the paper's figures.
//
// The network stores its state in flat, dense slices — a row-major
// conductance matrix plus per-node capacitance and ambient-coupling
// vectors — and preallocates all RK4 scratch, so Step and StepInto
// perform zero allocations in steady state. This layout is what lets
// the simulation engine's hot loop run allocation-free; the
// differential golden test in internal/sim pins it bitwise against the
// original slice-of-slices implementation.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// CelsiusOffset converts between Kelvin and degrees Celsius.
const CelsiusOffset = 273.15

// ToCelsius converts a Kelvin temperature to Celsius.
func ToCelsius(k float64) float64 { return k - CelsiusOffset }

// ToKelvin converts a Celsius temperature to Kelvin.
func ToKelvin(c float64) float64 { return c + CelsiusOffset }

// NodeID identifies a node within a Network.
type NodeID int

// Node is a thermal mass in the network.
type Node struct {
	// Name identifies the node in traces ("big", "gpu", "skin", ...).
	Name string
	// Capacitance is the thermal capacitance in J/K. Must be > 0.
	Capacitance float64
	// GAmbient is the conductance to ambient in W/K (0 for internal nodes).
	GAmbient float64
}

// Network is a lumped RC thermal network. Create one with NewNetwork,
// add nodes and couplings, then advance it with Step.
//
// A Network is not safe for concurrent use: Step and StepInto share
// preallocated integration scratch.
type Network struct {
	nodes   []Node
	temps   []float64 // current temperatures, K
	ambient float64   // ambient temperature, K

	// Flat hot-path layout, maintained by AddNode and Connect. g is the
	// row-major m×m symmetric node-to-node conductance matrix (W/K);
	// capc and gAmb mirror Node.Capacitance and Node.GAmbient so the
	// derivative kernel walks three dense slices instead of chasing
	// node structs.
	g    []float64
	capc []float64
	gAmb []float64

	// Preallocated RK4 stage scratch (k1..k4 slopes plus the stage
	// temperature vector), sized by AddNode.
	k1, k2, k3, k4, stage []float64
}

// NewNetwork creates an empty network at the given ambient temperature
// (Kelvin).
func NewNetwork(ambientK float64) *Network {
	return &Network{ambient: ambientK}
}

// AddNode appends a node initialized to ambient temperature and returns
// its ID. It returns an error for non-positive capacitance or negative
// ambient conductance.
func (n *Network) AddNode(node Node) (NodeID, error) {
	if node.Capacitance <= 0 || math.IsNaN(node.Capacitance) {
		return -1, fmt.Errorf("thermal: node %q capacitance must be positive, got %v", node.Name, node.Capacitance)
	}
	if node.GAmbient < 0 || math.IsNaN(node.GAmbient) {
		return -1, fmt.Errorf("thermal: node %q ambient conductance must be >= 0, got %v", node.Name, node.GAmbient)
	}
	id := NodeID(len(n.nodes))
	m := len(n.nodes)
	n.nodes = append(n.nodes, node)
	n.temps = append(n.temps, n.ambient)
	n.capc = append(n.capc, node.Capacitance)
	n.gAmb = append(n.gAmb, node.GAmbient)

	// Grow the row-major matrix from m×m to (m+1)×(m+1), preserving the
	// existing couplings; the new row and column start at zero.
	grown := make([]float64, (m+1)*(m+1))
	for i := 0; i < m; i++ {
		copy(grown[i*(m+1):i*(m+1)+m], n.g[i*m:i*m+m])
	}
	n.g = grown

	n.k1 = make([]float64, m+1)
	n.k2 = make([]float64, m+1)
	n.k3 = make([]float64, m+1)
	n.k4 = make([]float64, m+1)
	n.stage = make([]float64, m+1)
	return id, nil
}

// Connect couples nodes a and b with conductance gWPerK (W/K). Calling it
// again for the same pair replaces the previous value.
func (n *Network) Connect(a, b NodeID, gWPerK float64) error {
	if err := n.check(a); err != nil {
		return err
	}
	if err := n.check(b); err != nil {
		return err
	}
	if a == b {
		return errors.New("thermal: cannot connect a node to itself")
	}
	if gWPerK < 0 || math.IsNaN(gWPerK) {
		return fmt.Errorf("thermal: conductance must be >= 0, got %v", gWPerK)
	}
	m := len(n.nodes)
	n.g[int(a)*m+int(b)] = gWPerK
	n.g[int(b)*m+int(a)] = gWPerK
	return nil
}

// Conductance returns the node-to-node conductance between a and b
// (W/K); distinct unconnected nodes — and a node paired with itself —
// report 0.
func (n *Network) Conductance(a, b NodeID) (float64, error) {
	if err := n.check(a); err != nil {
		return 0, err
	}
	if err := n.check(b); err != nil {
		return 0, err
	}
	if a == b {
		return 0, nil
	}
	return n.g[int(a)*len(n.nodes)+int(b)], nil
}

func (n *Network) check(id NodeID) error {
	if id < 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("thermal: node id %d out of range [0,%d)", id, len(n.nodes))
	}
	return nil
}

// NumNodes reports how many nodes the network holds.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NodeName returns the name of node id ("" if out of range).
func (n *Network) NodeName(id NodeID) string {
	if n.check(id) != nil {
		return ""
	}
	return n.nodes[id].Name
}

// Ambient returns the ambient temperature in Kelvin.
func (n *Network) Ambient() float64 { return n.ambient }

// SetAmbient changes the ambient temperature (Kelvin).
func (n *Network) SetAmbient(k float64) { n.ambient = k }

// Temperature returns the current temperature of node id in Kelvin.
func (n *Network) Temperature(id NodeID) (float64, error) {
	if err := n.check(id); err != nil {
		return 0, err
	}
	return n.temps[id], nil
}

// Temperatures returns a copy of all node temperatures in Kelvin.
func (n *Network) Temperatures() []float64 {
	return append([]float64(nil), n.temps...)
}

// TempsView returns the live node-temperature storage (Kelvin, indexed
// by NodeID) for read-only use: the simulation engine's batched step
// path reads temperatures every step and cannot afford the bounds/error
// checking of Temperature. Callers must treat the slice as immutable;
// writes would bypass the positivity validation of SetTemperature.
func (n *Network) TempsView() []float64 { return n.temps }

// MaxTemperature returns the hottest node temperature in Kelvin and its
// node ID. It returns an error for an empty network.
func (n *Network) MaxTemperature() (float64, NodeID, error) {
	if len(n.temps) == 0 {
		return 0, -1, errors.New("thermal: empty network")
	}
	best, id := n.temps[0], NodeID(0)
	for i, t := range n.temps {
		if t > best {
			best, id = t, NodeID(i)
		}
	}
	return best, id, nil
}

// SetTemperature overrides the temperature of node id (Kelvin).
func (n *Network) SetTemperature(id NodeID, k float64) error {
	if err := n.check(id); err != nil {
		return err
	}
	if math.IsNaN(k) || k <= 0 {
		return fmt.Errorf("thermal: temperature must be positive Kelvin, got %v", k)
	}
	n.temps[id] = k
	return nil
}

// Reset returns every node to ambient temperature.
func (n *Network) Reset() {
	for i := range n.temps {
		n.temps[i] = n.ambient
	}
}

// derivs fills dst with dT/dt for the given temperatures and node powers.
// The kernel walks one dense matrix row per node; the zero-skip keeps
// the flop order identical to the historical sparse-row walk, which the
// bitwise differential test relies on.
func (n *Network) derivs(dst, temps, powers []float64) {
	m := len(n.nodes)
	for i := 0; i < m; i++ {
		ti := temps[i]
		q := powers[i]
		q -= n.gAmb[i] * (ti - n.ambient)
		row := n.g[i*m : i*m+m]
		for j, g := range row {
			if g != 0 {
				q -= g * (ti - temps[j])
			}
		}
		dst[i] = q / n.capc[i]
	}
}

// checkStep validates the shared Step/StepInto arguments.
func (n *Network) checkStep(dt float64, powers []float64) error {
	if len(powers) != len(n.nodes) {
		return fmt.Errorf("thermal: got %d powers for %d nodes", len(powers), len(n.nodes))
	}
	if dt <= 0 || math.IsNaN(dt) {
		return fmt.Errorf("thermal: step dt must be positive, got %v", dt)
	}
	return nil
}

// Step advances the network by dt seconds with the given per-node power
// injection (W) using classic fourth-order Runge-Kutta. len(powers) must
// equal NumNodes. Step performs no allocations: all integration scratch
// is preallocated by AddNode.
func (n *Network) Step(dt float64, powers []float64) error {
	if err := n.checkStep(dt, powers); err != nil {
		return err
	}
	n.stepInto(dt, powers, n.temps)
	return nil
}

// StepInto computes the temperatures one RK4 step ahead of the current
// state into dst without mutating the network — the speculative variant
// of Step for controllers that want to preview the next state. dst must
// have NumNodes elements and may not alias the integration scratch;
// passing the network's own temperature storage is not possible from
// outside, so external callers always get a pure preview. Like Step it
// performs no allocations.
func (n *Network) StepInto(dt float64, powers, dst []float64) error {
	if err := n.checkStep(dt, powers); err != nil {
		return err
	}
	if len(dst) != len(n.nodes) {
		return fmt.Errorf("thermal: got %d destination slots for %d nodes", len(dst), len(n.nodes))
	}
	n.stepInto(dt, powers, dst)
	return nil
}

// stepInto integrates one RK4 step from n.temps, writing the result to
// dst (which may be n.temps itself: every dst[i] write happens after
// the last read of temps[i] for that index).
func (n *Network) stepInto(dt float64, powers, dst []float64) {
	m := len(n.nodes)
	k1, k2, k3, k4, stage := n.k1, n.k2, n.k3, n.k4, n.stage

	n.derivs(k1, n.temps, powers)
	for i := 0; i < m; i++ {
		stage[i] = n.temps[i] + 0.5*dt*k1[i]
	}
	n.derivs(k2, stage, powers)
	for i := 0; i < m; i++ {
		stage[i] = n.temps[i] + 0.5*dt*k2[i]
	}
	n.derivs(k3, stage, powers)
	for i := 0; i < m; i++ {
		stage[i] = n.temps[i] + dt*k3[i]
	}
	n.derivs(k4, stage, powers)
	for i := 0; i < m; i++ {
		dst[i] = n.temps[i] + dt/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
}

// StepEuler advances the network by dt seconds using forward Euler. It is
// retained for the integration-accuracy ablation benchmark.
func (n *Network) StepEuler(dt float64, powers []float64) error {
	if err := n.checkStep(dt, powers); err != nil {
		return err
	}
	d := n.k1
	n.derivs(d, n.temps, powers)
	for i := range n.temps {
		n.temps[i] += dt * d[i]
	}
	return nil
}

// SteadyState solves for the equilibrium temperatures (Kelvin) under
// constant per-node powers by Gaussian elimination on the conductance
// matrix. It does not modify the network's current temperatures.
func (n *Network) SteadyState(powers []float64) ([]float64, error) {
	m := len(n.nodes)
	if len(powers) != m {
		return nil, fmt.Errorf("thermal: got %d powers for %d nodes", len(powers), m)
	}
	if m == 0 {
		return nil, errors.New("thermal: empty network")
	}
	// Build A*T = b where A[i][i] = GAmb_i + sum_j g_ij, A[i][j] = -g_ij,
	// b[i] = P_i + GAmb_i * Tamb.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		diag := n.gAmb[i]
		row := n.g[i*m : i*m+m]
		for j := 0; j < m; j++ {
			if i != j {
				a[i][j] = -row[j]
				diag += row[j]
			}
		}
		a[i][i] = diag
		b[i] = powers[i] + n.gAmb[i]*n.ambient
	}
	return solveLinear(a, b)
}

// solveLinear performs Gaussian elimination with partial pivoting on a
// copy of (a, b), returning x with a*x = b.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	m := len(b)
	// Work on copies so the caller's slices survive.
	aa := make([][]float64, m)
	for i := range a {
		aa[i] = append([]float64(nil), a[i]...)
	}
	bb := append([]float64(nil), b...)

	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(aa[r][col]) > math.Abs(aa[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aa[pivot][col]) < 1e-15 {
			return nil, errors.New("thermal: singular conductance matrix (node with no path to ambient?)")
		}
		aa[col], aa[pivot] = aa[pivot], aa[col]
		bb[col], bb[pivot] = bb[pivot], bb[col]
		for r := col + 1; r < m; r++ {
			f := aa[r][col] / aa[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				aa[r][c] -= f * aa[col][c]
			}
			bb[r] -= f * bb[col]
		}
	}
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		sum := bb[r]
		for c := r + 1; c < m; c++ {
			sum -= aa[r][c] * x[c]
		}
		x[r] = sum / aa[r][r]
	}
	return x, nil
}

// Lumped reduces the network to a single-node equivalent: the total
// capacitance and the effective resistance from a uniform-temperature
// interior to ambient. The reduction backs the paper's lumped stability
// analysis (Section IV-A), which treats the platform as one R and one C.
type Lumped struct {
	// CapacitanceJPerK is the sum of node capacitances.
	CapacitanceJPerK float64
	// ResistanceKPerW is 1 / (sum of ambient conductances).
	ResistanceKPerW float64
}

// Lump computes the single-node reduction.
func (n *Network) Lump() (Lumped, error) {
	var c, g float64
	for _, node := range n.nodes {
		c += node.Capacitance
		g += node.GAmbient
	}
	if g <= 0 {
		return Lumped{}, errors.New("thermal: network has no ambient coupling")
	}
	return Lumped{CapacitanceJPerK: c, ResistanceKPerW: 1 / g}, nil
}
