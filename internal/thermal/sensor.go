package thermal

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/detrand"
	"repro/internal/snapbin"
)

// Sensor models an on-die temperature sensor attached to one network
// node: it samples at a fixed period, adds Gaussian noise, quantizes to
// the sensor's resolution, and can drop readings (returning the last
// good value) to model flaky sensor buses.
//
// The Nexus 6P exposes package/memory/flash sensors; the Odroid-XU3
// exposes per-big-core and GPU sensors. Both are modeled as Sensor
// instances attached to the appropriate nodes.
type Sensor struct {
	name       string
	net        *Network
	node       NodeID
	periodS    float64
	noiseStdK  float64
	resolution float64 // quantization step in K (0 = continuous)
	dropProb   float64
	rng        *rand.Rand
	src        *detrand.Source

	nextSample float64
	lastValue  float64
	haveValue  bool
	drops      int
	samples    int
}

// SensorConfig configures a Sensor.
type SensorConfig struct {
	// Name identifies the sensor in traces (e.g. "tsens_pkg").
	Name string
	// Node is the network node the sensor measures.
	Node NodeID
	// PeriodS is the sampling period in seconds (e.g. 0.01 for 100 Hz).
	PeriodS float64
	// NoiseStdK is the standard deviation of additive Gaussian noise (K).
	NoiseStdK float64
	// ResolutionK quantizes readings to multiples of this step (0 = off).
	ResolutionK float64
	// DropProb is the probability a sample is lost; the sensor then
	// repeats its last good value.
	DropProb float64
	// Seed seeds the sensor's private RNG for determinism.
	Seed int64
}

// NewSensor attaches a sensor to net. The first call to Read at or after
// time 0 produces a sample.
func NewSensor(net *Network, cfg SensorConfig) (*Sensor, error) {
	if net == nil {
		return nil, fmt.Errorf("thermal: sensor %q needs a network", cfg.Name)
	}
	if err := net.check(cfg.Node); err != nil {
		return nil, err
	}
	if cfg.PeriodS <= 0 {
		return nil, fmt.Errorf("thermal: sensor %q period must be positive, got %v", cfg.Name, cfg.PeriodS)
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		return nil, fmt.Errorf("thermal: sensor %q drop probability must be in [0,1), got %v", cfg.Name, cfg.DropProb)
	}
	if cfg.NoiseStdK < 0 {
		return nil, fmt.Errorf("thermal: sensor %q noise must be >= 0, got %v", cfg.Name, cfg.NoiseStdK)
	}
	src := detrand.New(cfg.Seed)
	return &Sensor{
		name:       cfg.Name,
		net:        net,
		node:       cfg.Node,
		periodS:    cfg.PeriodS,
		noiseStdK:  cfg.NoiseStdK,
		resolution: cfg.ResolutionK,
		dropProb:   cfg.DropProb,
		rng:        rand.New(src),
		src:        src,
	}, nil
}

// Name returns the sensor's name.
func (s *Sensor) Name() string { return s.name }

// Node returns the network node the sensor measures.
func (s *Sensor) Node() NodeID { return s.node }

// Read returns the sensor value (Kelvin) as of simulation time nowS.
// New samples are taken when nowS crosses the next sampling instant;
// between samples the previous reading is held (zero-order hold), which
// is how governor code observes real thermal zones.
func (s *Sensor) Read(nowS float64) (float64, error) {
	if nowS+1e-12 >= s.nextSample || !s.haveValue {
		truth, err := s.net.Temperature(s.node)
		if err != nil {
			return 0, err
		}
		s.samples++
		// Schedule strictly periodic sampling aligned to period multiples.
		for s.nextSample <= nowS+1e-12 {
			s.nextSample += s.periodS
		}
		if s.haveValue && s.dropProb > 0 && s.rng.Float64() < s.dropProb {
			s.drops++
			return s.lastValue, nil
		}
		v := truth
		if s.noiseStdK > 0 {
			v += s.rng.NormFloat64() * s.noiseStdK
		}
		if s.resolution > 0 {
			v = math.Round(v/s.resolution) * s.resolution
		}
		s.lastValue = v
		s.haveValue = true
	}
	return s.lastValue, nil
}

// ReadCelsius is Read converted to degrees Celsius.
func (s *Sensor) ReadCelsius(nowS float64) (float64, error) {
	k, err := s.Read(nowS)
	if err != nil {
		return 0, err
	}
	return ToCelsius(k), nil
}

// SaveState serializes the sensor's mutable state — the sample clock,
// held value, counters, and the RNG stream position.
func (s *Sensor) SaveState(w *snapbin.Writer) {
	seed, draws := s.src.State()
	w.PutI64(seed)
	w.PutU64(draws)
	w.PutF64(s.nextSample)
	w.PutF64(s.lastValue)
	w.PutBool(s.haveValue)
	w.PutInt(s.drops)
	w.PutInt(s.samples)
}

// LoadState restores state saved by SaveState. The existing rand.Rand
// keeps its pointer: repositioning the source in place is enough
// because the generator wrapper holds no stream state of its own for
// the draw kinds the sensor uses.
func (s *Sensor) LoadState(r *snapbin.Reader) error {
	seed := r.I64()
	draws := r.U64()
	nextSample := r.F64()
	lastValue := r.F64()
	haveValue := r.Bool()
	drops := r.Int()
	samples := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("thermal: sensor %q: %w", s.name, err)
	}
	s.src.Restore(seed, draws)
	s.nextSample = nextSample
	s.lastValue = lastValue
	s.haveValue = haveValue
	s.drops = drops
	s.samples = samples
	return nil
}

// Drops reports how many samples were lost to injected failures.
func (s *Sensor) Drops() int { return s.drops }

// Samples reports how many sampling instants have fired.
func (s *Sensor) Samples() int { return s.samples }
