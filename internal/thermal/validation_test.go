package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSteadyStatePowerBalance is a property test: for random star
// networks, the SteadyState solution must balance power exactly — the
// heat leaving each node to ambient sums to the total injected power.
func TestSteadyStatePowerBalance(t *testing.T) {
	// inRange folds an arbitrary float into [lo, lo+span), mapping
	// non-finite inputs to lo.
	inRange := func(x, lo, span float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return lo
		}
		return lo + math.Abs(math.Mod(x, span))
	}
	f := func(rawC, rawG, rawP [4]float64) bool {
		hubG := inRange(rawG[0], 0.1, 2)
		leafG := [3]float64{}
		net := NewNetwork(300)
		hub, err := net.AddNode(Node{Name: "hub", Capacitance: inRange(rawC[0], 1, 10), GAmbient: hubG})
		if err != nil {
			return false
		}
		var ids []NodeID
		for i := 1; i < 4; i++ {
			leafG[i-1] = inRange(rawG[i], 0, 0.5)
			id, err := net.AddNode(Node{
				Name:        "leaf",
				Capacitance: inRange(rawC[i], 0.5, 5),
				GAmbient:    leafG[i-1],
			})
			if err != nil {
				return false
			}
			if err := net.Connect(hub, id, inRange(rawG[i]/3, 0.2, 2)); err != nil {
				return false
			}
			ids = append(ids, id)
		}
		powers := make([]float64, net.NumNodes())
		total := 0.0
		for i := range powers {
			powers[i] = inRange(rawP[i], 0, 5)
			total += powers[i]
		}
		temps, err := net.SteadyState(powers)
		if err != nil {
			return false
		}
		// Heat to ambient from every node must equal total injection.
		out := (temps[hub] - 300) * hubG
		for i, id := range ids {
			out += (temps[id] - 300) * leafG[i]
		}
		return math.Abs(out-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRK4MatchesAnalyticExponential validates the integrator against
// the closed-form single-node solution T(t) = T∞ + (T0−T∞)·e^(−t/RC).
func TestRK4MatchesAnalyticExponential(t *testing.T) {
	const (
		c       = 2.0 // J/K
		g       = 0.5 // W/K
		p       = 3.0 // W
		ambient = 300.0
	)
	net := NewNetwork(ambient)
	id, err := net.AddNode(Node{Name: "n", Capacitance: c, GAmbient: g})
	if err != nil {
		t.Fatal(err)
	}
	tInf := ambient + p/g
	tau := c / g
	powers := []float64{p}
	dt := 0.001
	for step := 1; step <= 20000; step++ {
		if err := net.Step(dt, powers); err != nil {
			t.Fatal(err)
		}
		if step%4000 == 0 {
			now := float64(step) * dt
			want := tInf + (ambient-tInf)*math.Exp(-now/tau)
			got, _ := net.Temperature(id)
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("t=%.1fs: RK4 %v vs analytic %v", now, got, want)
			}
		}
	}
}

// TestEnergyConservationTransient: with zero ambient coupling the
// network is adiabatic, so injected energy must equal the gain in
// stored thermal energy sum(C·ΔT).
func TestEnergyConservationTransient(t *testing.T) {
	net := NewNetwork(300)
	a, _ := net.AddNode(Node{Name: "a", Capacitance: 2})
	b, _ := net.AddNode(Node{Name: "b", Capacitance: 3})
	if err := net.Connect(a, b, 0.7); err != nil {
		t.Fatal(err)
	}
	powers := []float64{5, 0}
	const dt, steps = 0.001, 5000
	for i := 0; i < steps; i++ {
		if err := net.Step(dt, powers); err != nil {
			t.Fatal(err)
		}
	}
	injected := 5.0 * dt * steps
	ta, _ := net.Temperature(a)
	tb, _ := net.Temperature(b)
	stored := 2*(ta-300) + 3*(tb-300)
	if math.Abs(stored-injected) > 1e-6*injected {
		t.Errorf("stored %v J vs injected %v J; adiabatic energy not conserved", stored, injected)
	}
}
