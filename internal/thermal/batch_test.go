package thermal

import (
	"math"
	"testing"
)

// buildTestNetwork wires a 4-node network with an asymmetric topology
// (one node coupled to everything, one weakly coupled leaf).
func buildTestNetwork(t testing.TB, ambientK float64) *Network {
	t.Helper()
	n := NewNetwork(ambientK)
	ids := make([]NodeID, 0, 4)
	for i, spec := range []Node{
		{Name: "a", Capacitance: 1.5, GAmbient: 0.02},
		{Name: "b", Capacitance: 2.0},
		{Name: "c", Capacitance: 0.7, GAmbient: 0.1},
		{Name: "d", Capacitance: 5.0},
	} {
		id, err := n.AddNode(spec)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	couple := func(a, b NodeID, g float64) {
		if err := n.Connect(a, b, g); err != nil {
			t.Fatal(err)
		}
	}
	couple(ids[0], ids[1], 0.4)
	couple(ids[0], ids[2], 0.25)
	couple(ids[0], ids[3], 0.9)
	couple(ids[2], ids[3], 0.05)
	return n
}

// TestBatchNetworkMatchesScalar pins the fused kernel bitwise against
// Network.Step: lanes with distinct temperatures and powers, stepped
// together, must match the same networks stepped alone, sample for
// sample, across widths including the specialized width 8.
func TestBatchNetworkMatchesScalar(t *testing.T) {
	for _, lanes := range []int{1, 3, 8} {
		scalar := make([]*Network, lanes)
		batched := make([]*Network, lanes)
		for b := 0; b < lanes; b++ {
			scalar[b] = buildTestNetwork(t, 298.15)
			batched[b] = buildTestNetwork(t, 298.15)
			for i := 0; i < scalar[b].NumNodes(); i++ {
				k := 300 + float64(b) + 0.5*float64(i)
				if err := scalar[b].SetTemperature(NodeID(i), k); err != nil {
					t.Fatal(err)
				}
				if err := batched[b].SetTemperature(NodeID(i), k); err != nil {
					t.Fatal(err)
				}
			}
		}
		bn, err := NewBatchNetwork(batched)
		if err != nil {
			t.Fatal(err)
		}
		m := scalar[0].NumNodes()
		packed := make([]float64, m*lanes)
		powers := make([]float64, m)
		for step := 0; step < 500; step++ {
			for b := 0; b < lanes; b++ {
				for i := 0; i < m; i++ {
					p := 2.5 * float64((step+b+i)%3)
					powers[i] = p
					packed[i*lanes+b] = p
				}
				if err := scalar[b].Step(0.001, powers); err != nil {
					t.Fatal(err)
				}
			}
			if err := bn.Step(0.001, packed); err != nil {
				t.Fatal(err)
			}
		}
		for b := 0; b < lanes; b++ {
			want := scalar[b].Temperatures()
			got := batched[b].Temperatures()
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("lanes=%d lane %d node %d differs bitwise after 500 steps: %v vs %v",
						lanes, b, i, want[i], got[i])
				}
			}
		}
	}
}

// TestBatchNetworkPowersAreLaneLocal ensures a lane only sees its own
// injection: heating lane 0 must leave lane 1 exactly on its solo
// trajectory.
func TestBatchNetworkPowersAreLaneLocal(t *testing.T) {
	a := buildTestNetwork(t, 300)
	b := buildTestNetwork(t, 300)
	solo := buildTestNetwork(t, 300)
	bn, err := NewBatchNetwork([]*Network{a, b})
	if err != nil {
		t.Fatal(err)
	}
	m := a.NumNodes()
	packed := make([]float64, m*2)
	for i := 0; i < m; i++ {
		packed[i*2] = 10 // lane 0 heated hard, lane 1 unpowered
	}
	zero := make([]float64, m)
	for step := 0; step < 200; step++ {
		if err := bn.Step(0.001, packed); err != nil {
			t.Fatal(err)
		}
		if err := solo.Step(0.001, zero); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < m; i++ {
		got, _ := b.Temperature(NodeID(i))
		want, _ := solo.Temperature(NodeID(i))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("lane 1 node %d perturbed by lane 0: %v vs %v", i, got, want)
		}
	}
	hot, _ := a.Temperature(0)
	cold, _ := b.Temperature(0)
	if hot <= cold {
		t.Fatalf("heated lane should be hotter: %v vs %v", hot, cold)
	}
}

// TestBatchNetworkRebindReuse pins the pooling contract: rebinding a
// shell to new same-shape networks reuses buffers and produces the
// same results as a fresh batch; rebinding to a different shape
// reallocates and still works.
func TestBatchNetworkRebindReuse(t *testing.T) {
	first := []*Network{buildTestNetwork(t, 300), buildTestNetwork(t, 300)}
	bn, err := NewBatchNetwork(first)
	if err != nil {
		t.Fatal(err)
	}
	m := first[0].NumNodes()
	packed := make([]float64, m*2)
	if err := bn.Step(0.001, packed); err != nil {
		t.Fatal(err)
	}

	next := []*Network{buildTestNetwork(t, 300), buildTestNetwork(t, 300)}
	if err := bn.Rebind(next); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewBatchNetwork([]*Network{buildTestNetwork(t, 300), buildTestNetwork(t, 300)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range packed {
		packed[i] = float64(i)
	}
	if err := bn.Step(0.001, packed); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Step(0.001, packed); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		want := fresh.nets[b].Temperatures()
		got := next[b].Temperatures()
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("rebound batch diverges from fresh batch at lane %d node %d", b, i)
			}
		}
	}

	// Different shape: single wider lane set.
	wide := []*Network{
		buildTestNetwork(t, 300), buildTestNetwork(t, 300), buildTestNetwork(t, 300),
	}
	if err := bn.Rebind(wide); err != nil {
		t.Fatal(err)
	}
	if bn.Lanes() != 3 {
		t.Fatalf("lanes = %d after rebind, want 3", bn.Lanes())
	}
	if err := bn.Step(0.001, make([]float64, m*3)); err != nil {
		t.Fatal(err)
	}
}

// TestBatchNetworkRejectsMismatch covers the topology validation.
func TestBatchNetworkRejectsMismatch(t *testing.T) {
	base := buildTestNetwork(t, 300)

	other := buildTestNetwork(t, 301) // different ambient
	if _, err := NewBatchNetwork([]*Network{base, other}); err == nil {
		t.Error("different ambient should be rejected")
	}

	recoupled := buildTestNetwork(t, 300)
	if err := recoupled.Connect(1, 3, 0.123); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchNetwork([]*Network{base, recoupled}); err == nil {
		t.Error("different coupling should be rejected")
	}

	small := NewNetwork(300)
	if _, err := small.AddNode(Node{Name: "x", Capacitance: 1, GAmbient: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchNetwork([]*Network{base, small}); err == nil {
		t.Error("different node count should be rejected")
	}
	if _, err := NewBatchNetwork(nil); err == nil {
		t.Error("empty batch should be rejected")
	}

	bn, err := NewBatchNetwork([]*Network{base})
	if err != nil {
		t.Fatal(err)
	}
	if err := bn.Step(0.001, make([]float64, 1)); err == nil {
		t.Error("short powers slice should be rejected")
	}
	if err := bn.Step(-1, make([]float64, base.NumNodes())); err == nil {
		t.Error("non-positive dt should be rejected")
	}
}
