package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func singleNode(t *testing.T, ambientK, capJPerK, gAmb float64) (*Network, NodeID) {
	t.Helper()
	n := NewNetwork(ambientK)
	id, err := n.AddNode(Node{Name: "chip", Capacitance: capJPerK, GAmbient: gAmb})
	if err != nil {
		t.Fatal(err)
	}
	return n, id
}

func TestCelsiusRoundTrip(t *testing.T) {
	if got := ToCelsius(ToKelvin(36.6)); !approx(got, 36.6, 1e-12) {
		t.Errorf("round trip = %v", got)
	}
	if ToKelvin(0) != 273.15 {
		t.Errorf("ToKelvin(0) = %v", ToKelvin(0))
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddNodeValidation(t *testing.T) {
	n := NewNetwork(300)
	if _, err := n.AddNode(Node{Name: "bad", Capacitance: 0}); err == nil {
		t.Error("expected error for zero capacitance")
	}
	if _, err := n.AddNode(Node{Name: "bad", Capacitance: -1}); err == nil {
		t.Error("expected error for negative capacitance")
	}
	if _, err := n.AddNode(Node{Name: "bad", Capacitance: 1, GAmbient: -0.5}); err == nil {
		t.Error("expected error for negative ambient conductance")
	}
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork(300)
	a, _ := n.AddNode(Node{Name: "a", Capacitance: 1, GAmbient: 1})
	b, _ := n.AddNode(Node{Name: "b", Capacitance: 1})
	if err := n.Connect(a, a, 1); err == nil {
		t.Error("expected error for self connection")
	}
	if err := n.Connect(a, NodeID(99), 1); err == nil {
		t.Error("expected error for out-of-range node")
	}
	if err := n.Connect(a, b, -1); err == nil {
		t.Error("expected error for negative conductance")
	}
	if err := n.Connect(a, b, 0.5); err != nil {
		t.Errorf("valid connect failed: %v", err)
	}
}

func TestNodesStartAtAmbient(t *testing.T) {
	n, id := singleNode(t, 298.15, 10, 0.2)
	got, err := n.Temperature(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != 298.15 {
		t.Errorf("initial temp = %v, want ambient", got)
	}
}

// A single RC node with constant power has the closed-form solution
// T(t) = Ta + P/G * (1 - exp(-G t / C)). RK4 should track it closely.
func TestSingleNodeMatchesAnalytic(t *testing.T) {
	const (
		amb = 300.0
		cap = 20.0
		g   = 0.2
		pw  = 3.0
	)
	n, id := singleNode(t, amb, cap, g)
	dt := 0.01
	powers := []float64{pw}
	for i := 0; i < 10000; i++ { // 100 s
		if err := n.Step(dt, powers); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := 100.0
	want := amb + pw/g*(1-math.Exp(-g*elapsed/cap))
	got, _ := n.Temperature(id)
	if !approx(got, want, 1e-6) {
		t.Errorf("T(100s) = %v, want %v", got, want)
	}
}

func TestEulerLessAccurateThanRK4(t *testing.T) {
	const (
		amb = 300.0
		cap = 5.0
		g   = 0.5
		pw  = 4.0
	)
	dt := 0.5 // deliberately coarse
	steps := 60
	elapsed := dt * float64(steps)
	want := amb + pw/g*(1-math.Exp(-g*elapsed/cap))

	rk, idRK := singleNode(t, amb, cap, g)
	eu, idEU := singleNode(t, amb, cap, g)
	for i := 0; i < steps; i++ {
		if err := rk.Step(dt, []float64{pw}); err != nil {
			t.Fatal(err)
		}
		if err := eu.StepEuler(dt, []float64{pw}); err != nil {
			t.Fatal(err)
		}
	}
	tRK, _ := rk.Temperature(idRK)
	tEU, _ := eu.Temperature(idEU)
	errRK := math.Abs(tRK - want)
	errEU := math.Abs(tEU - want)
	if errRK >= errEU {
		t.Errorf("RK4 error %v should beat Euler error %v at coarse dt", errRK, errEU)
	}
}

func TestStepValidation(t *testing.T) {
	n, _ := singleNode(t, 300, 1, 1)
	if err := n.Step(0.01, nil); err == nil {
		t.Error("expected error for wrong power count")
	}
	if err := n.Step(0, []float64{1}); err == nil {
		t.Error("expected error for zero dt")
	}
	if err := n.Step(-1, []float64{1}); err == nil {
		t.Error("expected error for negative dt")
	}
	if err := n.StepEuler(0, []float64{1}); err == nil {
		t.Error("expected euler error for zero dt")
	}
}

func TestSteadyStateSingleNode(t *testing.T) {
	n, _ := singleNode(t, 300, 10, 0.25)
	ss, err := n.SteadyState([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	want := 300 + 2/0.25
	if !approx(ss[0], want, 1e-9) {
		t.Errorf("steady state = %v, want %v", ss[0], want)
	}
}

func TestSteadyStateTwoNodes(t *testing.T) {
	// Node 0 heated, coupled to node 1 which leaks to ambient.
	n := NewNetwork(300)
	a, _ := n.AddNode(Node{Name: "core", Capacitance: 5})
	b, _ := n.AddNode(Node{Name: "skin", Capacitance: 50, GAmbient: 0.5})
	if err := n.Connect(a, b, 2); err != nil {
		t.Fatal(err)
	}
	ss, err := n.SteadyState([]float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	// All 3 W must flow through skin to ambient: T_skin = 300 + 3/0.5.
	if !approx(ss[b], 306, 1e-9) {
		t.Errorf("skin steady = %v, want 306", ss[b])
	}
	// And through the 2 W/K coupling: T_core = T_skin + 3/2.
	if !approx(ss[a], 307.5, 1e-9) {
		t.Errorf("core steady = %v, want 307.5", ss[a])
	}
}

func TestSteadyStateSingularWithoutAmbient(t *testing.T) {
	n := NewNetwork(300)
	if _, err := n.AddNode(Node{Name: "island", Capacitance: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SteadyState([]float64{1}); err == nil {
		t.Error("expected singular-matrix error for node without ambient path")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	n := NewNetwork(298)
	a, _ := n.AddNode(Node{Name: "big", Capacitance: 3, GAmbient: 0.05})
	b, _ := n.AddNode(Node{Name: "gpu", Capacitance: 2, GAmbient: 0.05})
	c, _ := n.AddNode(Node{Name: "pkg", Capacitance: 30, GAmbient: 0.3})
	for _, pair := range [][2]NodeID{{a, c}, {b, c}, {a, b}} {
		if err := n.Connect(pair[0], pair[1], 1.5); err != nil {
			t.Fatal(err)
		}
	}
	powers := []float64{2, 1.5, 0.2}
	want, err := n.SteadyState(powers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ { // 2000 s at 10 ms
		if err := n.Step(0.01, powers); err != nil {
			t.Fatal(err)
		}
	}
	got := n.Temperatures()
	for i := range got {
		if !approx(got[i], want[i], 1e-3) {
			t.Errorf("node %d transient %v != steady %v", i, got[i], want[i])
		}
	}
}

func TestMaxTemperature(t *testing.T) {
	n := NewNetwork(300)
	a, _ := n.AddNode(Node{Name: "a", Capacitance: 1, GAmbient: 1})
	b, _ := n.AddNode(Node{Name: "b", Capacitance: 1, GAmbient: 1})
	if err := n.SetTemperature(a, 310); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTemperature(b, 320); err != nil {
		t.Fatal(err)
	}
	temp, id, err := n.MaxTemperature()
	if err != nil {
		t.Fatal(err)
	}
	if id != b || temp != 320 {
		t.Errorf("max = %v at %d, want 320 at %d", temp, id, b)
	}
	empty := NewNetwork(300)
	if _, _, err := empty.MaxTemperature(); err == nil {
		t.Error("expected error for empty network")
	}
}

func TestSetTemperatureValidation(t *testing.T) {
	n, id := singleNode(t, 300, 1, 1)
	if err := n.SetTemperature(id, -5); err == nil {
		t.Error("expected error for negative Kelvin")
	}
	if err := n.SetTemperature(id, math.NaN()); err == nil {
		t.Error("expected error for NaN")
	}
	if err := n.SetTemperature(NodeID(7), 300); err == nil {
		t.Error("expected error for bad node id")
	}
}

func TestReset(t *testing.T) {
	n, id := singleNode(t, 300, 1, 1)
	if err := n.SetTemperature(id, 350); err != nil {
		t.Fatal(err)
	}
	n.Reset()
	got, _ := n.Temperature(id)
	if got != 300 {
		t.Errorf("after reset temp = %v, want ambient", got)
	}
}

func TestNodeName(t *testing.T) {
	n, id := singleNode(t, 300, 1, 1)
	if n.NodeName(id) != "chip" {
		t.Errorf("name = %q", n.NodeName(id))
	}
	if n.NodeName(NodeID(42)) != "" {
		t.Error("out-of-range name should be empty")
	}
}

func TestLump(t *testing.T) {
	n := NewNetwork(300)
	_, _ = n.AddNode(Node{Name: "a", Capacitance: 10, GAmbient: 0.1})
	_, _ = n.AddNode(Node{Name: "b", Capacitance: 30, GAmbient: 0.15})
	l, err := n.Lump()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(l.CapacitanceJPerK, 40, 1e-12) {
		t.Errorf("lumped C = %v, want 40", l.CapacitanceJPerK)
	}
	if !approx(l.ResistanceKPerW, 4, 1e-12) {
		t.Errorf("lumped R = %v, want 4", l.ResistanceKPerW)
	}
}

func TestLumpNoAmbient(t *testing.T) {
	n := NewNetwork(300)
	_, _ = n.AddNode(Node{Name: "a", Capacitance: 10})
	if _, err := n.Lump(); err == nil {
		t.Error("expected error when no ambient coupling exists")
	}
}

// Property: steady-state temperature is monotone in injected power.
func TestPropertySteadyStateMonotoneInPower(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		lo, hi := float64(p1)/10, float64(p2)/10
		if lo > hi {
			lo, hi = hi, lo
		}
		n := NewNetwork(300)
		id, err := n.AddNode(Node{Name: "c", Capacitance: 5, GAmbient: 0.3})
		if err != nil {
			return false
		}
		s1, err1 := n.SteadyState([]float64{lo})
		s2, err2 := n.SteadyState([]float64{hi})
		if err1 != nil || err2 != nil {
			return false
		}
		_ = id
		return s2[0] >= s1[0]-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with zero power every node relaxes toward ambient.
func TestPropertyRelaxesToAmbient(t *testing.T) {
	f := func(initOffset uint8) bool {
		n := NewNetwork(300)
		id, err := n.AddNode(Node{Name: "c", Capacitance: 2, GAmbient: 0.5})
		if err != nil {
			return false
		}
		if err := n.SetTemperature(id, 300+float64(initOffset)); err != nil {
			return false
		}
		before, _ := n.Temperature(id)
		for i := 0; i < 1000; i++ {
			if err := n.Step(0.05, []float64{0}); err != nil {
				return false
			}
		}
		after, _ := n.Temperature(id)
		return math.Abs(after-300) <= math.Abs(before-300)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnergyBalanceAtSteadyState(t *testing.T) {
	// At steady state, injected power equals heat flow to ambient.
	n := NewNetwork(295)
	a, _ := n.AddNode(Node{Name: "a", Capacitance: 5, GAmbient: 0.2})
	b, _ := n.AddNode(Node{Name: "b", Capacitance: 8, GAmbient: 0.4})
	if err := n.Connect(a, b, 1.0); err != nil {
		t.Fatal(err)
	}
	powers := []float64{1.2, 0.8}
	ss, err := n.SteadyState(powers)
	if err != nil {
		t.Fatal(err)
	}
	out := 0.2*(ss[0]-295) + 0.4*(ss[1]-295)
	if !approx(out, 2.0, 1e-9) {
		t.Errorf("heat out = %v, want 2.0 (energy balance)", out)
	}
}
