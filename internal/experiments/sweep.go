package experiments

import (
	"context"
	"fmt"

	"repro/internal/sweep"
)

// SweepPoint is one point of the thermal-limit trade-off study.
type SweepPoint struct {
	// LimitC is the thermal limit the governor regulates to.
	LimitC float64
	// GT1FPS is the foreground benchmark score at that limit.
	GT1FPS float64
	// PeakC is the hottest temperature observed.
	PeakC float64
	// Migrations counts governor actions.
	Migrations int
	// BMLIterations is the background task's completed work — the cost
	// the background pays for the foreground's thermal headroom.
	BMLIterations uint64
}

// LimitSweep runs the 3DMark+BML scenario under the application-aware
// governor across a range of thermal limits, mapping the
// performance/temperature trade-off space. It is the "baseline for
// evaluating future thermal management algorithms" use the paper's
// conclusion proposes: any new governor can be dropped into the same
// scenario and compared against these curves.
//
// It is a thin wrapper over the sweep pool running one scenario per
// limit across GOMAXPROCS workers; every limit reuses the same seed (a
// paired design), and the engine's determinism makes the output
// identical to the original serial loop, point for point.
//
// One sentinel differs from the original loop: a limit of exactly 0 °C
// now selects the platform's default thermal limit (the sweep-wide
// convention) instead of a literal 0 °C cap, which only ever meant
// "throttle everything, always".
func LimitSweep(limitsC []float64, durationS float64, seed int64) ([]SweepPoint, error) {
	return LimitSweepParallel(context.Background(), limitsC, durationS, seed, 0)
}

// LimitSweepParallel is LimitSweep with explicit context and worker
// count (workers <= 0 uses GOMAXPROCS).
func LimitSweepParallel(ctx context.Context, limitsC []float64, durationS float64, seed int64, workers int) ([]SweepPoint, error) {
	if len(limitsC) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs at least one limit")
	}
	scenarios := make([]sweep.Scenario, len(limitsC))
	for i, limitC := range limitsC {
		scenarios[i] = sweep.Scenario{
			Index:     i,
			Platform:  PlatformOdroid,
			Workload:  "3dmark+bml",
			Governor:  GovAppAware,
			LimitC:    limitC,
			DurationS: durationS,
			Seed:      seed,
		}
	}
	pool := &sweep.Pool{Workers: workers, RunFunc: RunScenario}
	results, err := pool.Run(ctx, scenarios)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(results))
	for i, r := range results {
		out[i] = SweepPoint{
			LimitC:        r.Scenario.LimitC,
			GT1FPS:        r.Metrics[MetricGT1FPS],
			PeakC:         r.Metrics[MetricPeakC],
			Migrations:    int(r.Metrics[MetricMigrations]),
			BMLIterations: uint64(r.Metrics[MetricBMLIterations]),
		}
	}
	return out, nil
}
