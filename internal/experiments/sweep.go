package experiments

import (
	"fmt"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// SweepPoint is one point of the thermal-limit trade-off study.
type SweepPoint struct {
	// LimitC is the thermal limit the governor regulates to.
	LimitC float64
	// GT1FPS is the foreground benchmark score at that limit.
	GT1FPS float64
	// PeakC is the hottest temperature observed.
	PeakC float64
	// Migrations counts governor actions.
	Migrations int
	// BMLIterations is the background task's completed work — the cost
	// the background pays for the foreground's thermal headroom.
	BMLIterations uint64
}

// LimitSweep runs the 3DMark+BML scenario under the application-aware
// governor across a range of thermal limits, mapping the
// performance/temperature trade-off space. It is the "baseline for
// evaluating future thermal management algorithms" use the paper's
// conclusion proposes: any new governor can be dropped into the same
// scenario and compared against these curves.
func LimitSweep(limitsC []float64, durationS float64, seed int64) ([]SweepPoint, error) {
	if len(limitsC) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs at least one limit")
	}
	out := make([]SweepPoint, 0, len(limitsC))
	for _, limitC := range limitsC {
		plat := platform.OdroidXU3(seed)
		bench := workload.NewThreeDMark(seed)
		bml := workload.NewBML()
		bml.ExecuteRatio = 0

		ctrl, err := appaware.New(appaware.Config{
			ThermalLimitK: thermal.ToKelvin(limitC),
			HorizonS:      30,
			IntervalS:     0.1,
		})
		if err != nil {
			return nil, err
		}
		bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
		if err != nil {
			return nil, err
		}
		littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
		if err != nil {
			return nil, err
		}
		gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{
			Platform: plat,
			Apps: []sim.AppSpec{
				{App: bench, PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
				{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
			},
			Governors: map[platform.DomainID]governor.Governor{
				platform.DomLittle: littleGov,
				platform.DomBig:    bigGov,
				platform.DomGPU:    gpuGov,
			},
			Controller: ctrl,
		})
		if err != nil {
			return nil, err
		}
		if err := plat.Prewarm(OdroidPrewarmC); err != nil {
			return nil, err
		}
		if err := eng.Run(durationS); err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			LimitC:        limitC,
			GT1FPS:        bench.GT1FPS(),
			PeakC:         thermal.ToCelsius(eng.MaxTempSeenK()),
			Migrations:    ctrl.Migrations(),
			BMLIterations: bml.Iterations(),
		})
	}
	return out, nil
}
