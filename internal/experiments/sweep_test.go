package experiments

import "testing"

func TestLimitSweepValidates(t *testing.T) {
	if _, err := LimitSweep(nil, 10, 1); err == nil {
		t.Error("empty sweep should fail")
	}
}

func TestLimitSweepTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	// GT1 spans the first 110 s; 120 s covers it.
	points, err := LimitSweep([]float64{52, 58, 70}, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 points, got %d", len(points))
	}
	tight, mid, loose := points[0], points[1], points[2]
	// A tighter limit must migrate at least as eagerly...
	if tight.Migrations < loose.Migrations {
		t.Errorf("tight limit migrated %d times, loose %d; monotonicity broken",
			tight.Migrations, loose.Migrations)
	}
	// ...and let the background task do no more work.
	if tight.BMLIterations > loose.BMLIterations {
		t.Errorf("tight limit let BML run more (%d) than loose (%d)",
			tight.BMLIterations, loose.BMLIterations)
	}
	// The loose limit must run hotter than the tight one (it tolerates
	// the BML heat longer or entirely).
	if loose.PeakC < tight.PeakC-0.5 {
		t.Errorf("loose-limit peak %.1f°C below tight-limit peak %.1f°C", loose.PeakC, tight.PeakC)
	}
	// The registered foreground benchmark is protected at every limit.
	for _, p := range points {
		if p.GT1FPS < 90 {
			t.Errorf("limit %.0f°C: GT1 = %.1f FPS; foreground should stay near baseline", p.LimitC, p.GT1FPS)
		}
	}
	_ = mid
}
