// Package experiments reproduces every table and figure of the paper's
// evaluation: the Nexus 6P throttling study of Section III (Figures 1-6,
// Table I) and the Odroid-XU3 application-aware governor study of
// Section IV (Figures 7-9, Table II). Each experiment is a deterministic
// simulation scenario returning structured results; cmd/repro renders
// them and bench_test.go regenerates them as benchmarks.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/mobisim"
)

// NexusApps lists the five Section III apps in the paper's Table I order.
var NexusApps = []string{"paper.io", "stickman-hook", "amazon", "hangouts", "facebook"}

// NexusDurationS is the measured window of the Section III runs,
// matching the 140 s x-axis of Figures 1, 3 and 5.
const NexusDurationS = 140

// NexusPrewarmC is the starting temperature of the Section III runs:
// the paper measures a phone that has been handled and unlocked, not
// one at ambient (Figure 1's traces start near 36°C).
const NexusPrewarmC = mobisim.NexusPrewarmC

// NexusRun is the result of one Section III scenario.
type NexusRun struct {
	// App is the completed workload (FPS statistics inside).
	App *workload.FrameApp
	// Engine holds traces and residency.
	Engine *sim.Engine
}

// RunNexusApp reproduces one arm of the Section III study: the named
// app on the Nexus 6P for 140 s, with the default thermal governor
// either enabled (throttle) or disabled — the paper's two controlled
// scenarios. The wiring is one facade scenario: stepwise vs none.
func RunNexusApp(name string, throttle bool, seed int64) (*NexusRun, error) {
	known := false
	for _, app := range NexusApps {
		if name == app {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("experiments: unknown app %q", name)
	}
	gov := mobisim.GovNone
	if throttle {
		gov = mobisim.GovStepwise
	}
	eng, err := mobisim.New(mobisim.Scenario{
		Platform:  mobisim.PlatformNexus6P,
		Workload:  name,
		Governor:  gov,
		DurationS: NexusDurationS,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	app, ok := eng.Foreground().(*workload.FrameApp)
	if !ok {
		return nil, fmt.Errorf("experiments: workload %q is not a Nexus frame app", name)
	}
	return &NexusRun{App: app, Engine: eng.Sim()}, nil
}

// TempProfile is the Figure 1/3/5 data product: the package-sensor
// trace of both arms of one app's study.
type TempProfile struct {
	// AppName is the app under study.
	AppName string
	// Without and With are the package temperature traces (°C) with the
	// thermal governor disabled and enabled.
	Without, With *trace.Series
}

// TempProfileExperiment runs both arms and returns the temperature
// profiles (Figures 1, 3 and 5 use paper.io, stickman-hook and amazon).
func TempProfileExperiment(app string, seed int64) (*TempProfile, error) {
	free, err := RunNexusApp(app, false, seed)
	if err != nil {
		return nil, err
	}
	throt, err := RunNexusApp(app, true, seed)
	if err != nil {
		return nil, err
	}
	w := free.Engine.SensorSeries()
	w.Name = "without throttling"
	v := throt.Engine.SensorSeries()
	v.Name = "with throttling"
	return &TempProfile{AppName: app, Without: w, With: v}, nil
}

// Residency is the Figure 2/4/6 data product: one domain's frequency
// residency shares under both arms.
type Residency struct {
	// AppName is the app under study; Domain is the domain binned.
	AppName string
	Domain  platform.DomainID
	// FreqsHz lists the OPP bins ascending.
	FreqsHz []uint64
	// Without and With map frequency to residency share in [0,1].
	Without, With map[uint64]float64
}

// ResidencyExperiment runs both arms and returns the residency
// histogram of the given domain (GPU for Figures 2 and 4, big cluster
// for Figure 6).
func ResidencyExperiment(app string, dom platform.DomainID, seed int64) (*Residency, error) {
	free, err := RunNexusApp(app, false, seed)
	if err != nil {
		return nil, err
	}
	throt, err := RunNexusApp(app, true, seed)
	if err != nil {
		return nil, err
	}
	freqs := free.Engine.Platform().Domain(dom).Table().Frequencies()
	return &Residency{
		AppName: app,
		Domain:  dom,
		FreqsHz: freqs,
		Without: free.Engine.Platform().Domain(dom).ResidencyShare(),
		With:    throt.Engine.Platform().Domain(dom).ResidencyShare(),
	}, nil
}

// BarGroups converts the residency into chart groups, one per OPP.
func (r *Residency) BarGroups() []trace.BarGroup {
	groups := make([]trace.BarGroup, 0, len(r.FreqsHz))
	for _, f := range r.FreqsHz {
		groups = append(groups, trace.BarGroup{
			Label:  dvfs.MHz(f),
			Values: []float64{r.Without[f], r.With[f]},
		})
	}
	return groups
}

// Table1Row is one row of the paper's Table I.
type Table1Row struct {
	// App is the application name.
	App string
	// WithoutFPS and WithFPS are median frame rates of the two arms.
	WithoutFPS, WithFPS float64
	// ReductionPct is the relative FPS loss in percent.
	ReductionPct float64
}

// Table1Experiment reproduces Table I: median FPS for all five apps
// with and without thermal throttling.
func Table1Experiment(seed int64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(NexusApps))
	for _, name := range NexusApps {
		free, err := RunNexusApp(name, false, seed)
		if err != nil {
			return nil, err
		}
		throt, err := RunNexusApp(name, true, seed)
		if err != nil {
			return nil, err
		}
		wo := free.App.MedianFPS()
		wi := throt.App.MedianFPS()
		red := 0.0
		if wo > 0 {
			red = (wo - wi) / wo * 100
		}
		rows = append(rows, Table1Row{App: name, WithoutFPS: wo, WithFPS: wi, ReductionPct: red})
	}
	return rows, nil
}

// SortedShares returns (freq, share) pairs sorted by descending share;
// a debugging helper for calibration.
func SortedShares(m map[uint64]float64) []struct {
	FreqHz uint64
	Share  float64
} {
	out := make([]struct {
		FreqHz uint64
		Share  float64
	}, 0, len(m))
	for f, s := range m {
		out = append(out, struct {
			FreqHz uint64
			Share  float64
		}{f, s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}
