package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/stability"
	"repro/internal/workload"
	"repro/pkg/mobisim"
)

// These tests lock in the qualitative reproduction targets recorded in
// EXPERIMENTS.md: they run the actual experiment scenarios and assert
// the paper's orderings and rough magnitudes, so any model change that
// breaks an artifact fails loudly.

const seed = 1

func TestNexusAppLookup(t *testing.T) {
	spec := func(name string) mobisim.Scenario {
		return mobisim.Scenario{
			Platform:  PlatformNexus,
			Workload:  name,
			Governor:  GovNone,
			DurationS: 1,
			Seed:      seed,
		}
	}
	for _, name := range NexusApps {
		if err := spec(name).Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := spec("flappy-bird").Validate(); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestTable1ReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 140 s x 10 simulation")
	}
	rows, err := Table1Experiment(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(rows))
	}
	byApp := make(map[string]Table1Row, len(rows))
	for _, r := range rows {
		byApp[r.App] = r
		if r.WithFPS > r.WithoutFPS {
			t.Errorf("%s: throttled FPS %v exceeds unthrottled %v", r.App, r.WithFPS, r.WithoutFPS)
		}
	}
	// Paper Table I: games and Facebook lose ~30%+, Amazon ~20%,
	// Hangouts ~10%.
	for _, app := range []string{"paper.io", "stickman-hook", "facebook"} {
		if red := byApp[app].ReductionPct; red < 20 || red > 45 {
			t.Errorf("%s reduction = %.0f%%, want ~30%% (paper: 31-34%%)", app, red)
		}
	}
	if red := byApp["amazon"].ReductionPct; red < 10 || red > 35 {
		t.Errorf("amazon reduction = %.0f%%, want ~20%%", red)
	}
	if red := byApp["hangouts"].ReductionPct; red < 3 || red > 20 {
		t.Errorf("hangouts reduction = %.0f%%, want ~10%%", red)
	}
	// Hangouts must be the mildest, as in the paper.
	for _, r := range rows {
		if r.App != "hangouts" && r.ReductionPct < byApp["hangouts"].ReductionPct {
			t.Errorf("%s reduction %.0f%% below hangouts' %.0f%%; ordering broken",
				r.App, r.ReductionPct, byApp["hangouts"].ReductionPct)
		}
	}
}

func TestResidencyCollapseUnderThrottling(t *testing.T) {
	if testing.Short() {
		t.Skip("full 140 s x 2 simulation")
	}
	res, err := ResidencyExperiment("paper.io", platform.DomGPU, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 2: the top two OPPs carry substantial residency
	// without throttling and collapse with it; 305/390 rise sharply.
	topFree := res.Without[510e6] + res.Without[600e6]
	topThrot := res.With[510e6] + res.With[600e6]
	if topFree < 0.4 {
		t.Errorf("free 510+600 share = %.2f, want > 0.4", topFree)
	}
	if topThrot > topFree/2 {
		t.Errorf("throttled 510+600 share = %.2f, want < half of free %.2f", topThrot, topFree)
	}
	midFree := res.Without[305e6] + res.Without[390e6]
	midThrot := res.With[305e6] + res.With[390e6]
	if midThrot < midFree+0.2 {
		t.Errorf("mid-OPP share should rise sharply: %.2f -> %.2f", midFree, midThrot)
	}
	// Chart conversion keeps bins in ladder order.
	groups := res.BarGroups()
	if len(groups) != 6 || groups[0].Label != "180MHz" || groups[5].Label != "600MHz" {
		t.Errorf("bar groups malformed: %+v", groups)
	}
}

func TestTempProfileShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 140 s x 2 simulation")
	}
	res, err := TempProfileExperiment("paper.io", seed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 1: the unthrottled trace runs hotter.
	if res.Without.Max() <= res.With.Max() {
		t.Errorf("unthrottled peak %.1f°C not above throttled %.1f°C",
			res.Without.Max(), res.With.Max())
	}
	// Both traces span the full measurement window.
	for _, s := range []string{"without", "with"} {
		_ = s
	}
	last, _ := res.Without.Last()
	if last.TimeS < NexusDurationS-1 {
		t.Errorf("trace ends at %.1fs, want ~%.0fs", last.TimeS, float64(NexusDurationS))
	}
}

func TestFig7Structure(t *testing.T) {
	curves, crit, err := Fig7Experiment()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: critical power ≈ 5.5 W for the Odroid parameters.
	if math.Abs(crit-5.5) > 0.15 {
		t.Errorf("critical power = %.2f W, want ≈5.5", crit)
	}
	if len(curves) != 3 {
		t.Fatalf("want 3 curves, got %d", len(curves))
	}
	wantClass := []stability.Class{stability.Stable, stability.CriticallyStable, stability.Runaway}
	for i, c := range curves {
		if c.Analysis.Class != wantClass[i] {
			t.Errorf("curve %d (%.1f W): class %v, want %v", i, c.PowerW, c.Analysis.Class, wantClass[i])
		}
		if len(c.Theta) != len(c.Psi) || len(c.Theta) == 0 {
			t.Errorf("curve %d has malformed samples", i)
		}
	}
	// The 2 W curve must have two distinct roots with the stable root at
	// larger θ (lower temperature).
	an := curves[0].Analysis
	if an.StableTheta <= an.UnstableTheta {
		t.Errorf("stable θ %.3f should exceed unstable θ %.3f", an.StableTheta, an.UnstableTheta)
	}
}

func TestModesAndStrings(t *testing.T) {
	if len(Modes()) != 3 {
		t.Error("want 3 modes")
	}
	if Alone.String() == "" || WithBML.String() == "" || Proposed.String() == "" {
		t.Error("modes need names")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode should include number")
	}
}

func TestRunOdroidRejectsUnknownBench(t *testing.T) {
	if _, err := RunOdroid("quake", Alone, 1, seed); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestFig8Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("full 250 s x 3 simulation")
	}
	res, err := Fig8Experiment(seed)
	if err != nil {
		t.Fatal(err)
	}
	alone, bml, prop := res.Alone.Max(), res.WithBML.Max(), res.Proposed.Max()
	// Paper Figure 8: +BML runs hottest; the proposed controller keeps
	// the system close to the alone trace.
	if bml <= alone+2 {
		t.Errorf("+BML peak %.1f°C should clearly exceed alone %.1f°C", bml, alone)
	}
	if prop >= bml {
		t.Errorf("proposed peak %.1f°C should stay below +BML %.1f°C", prop, bml)
	}
	if prop > alone+6 {
		t.Errorf("proposed peak %.1f°C strays too far above alone %.1f°C", prop, alone)
	}
}

func TestFig9Shares(t *testing.T) {
	if testing.Short() {
		t.Skip("full 250 s x 3 simulation")
	}
	res, err := Fig9Experiment(seed)
	if err != nil {
		t.Fatal(err)
	}
	byMode := make(map[Mode]Fig9Result, 3)
	for _, r := range res {
		byMode[r.Mode] = r
		sum := 0.0
		for _, s := range r.Shares {
			sum += s
		}
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("%s shares sum to %.3f, want 1", r.Mode, sum)
		}
		if len(r.Slices()) != 4 {
			t.Errorf("%s should render 4 slices", r.Mode)
		}
	}
	// Paper Figure 9a: the GPU dominates when 3DMark runs alone.
	a := byMode[Alone]
	if a.Shares[power.RailGPU] < a.Shares[power.RailBig] {
		t.Error("alone: GPU share should exceed big share")
	}
	// Figure 9b: BML flips dominance to the big cluster and raises total
	// power toward the paper's 3.65 W.
	bml := byMode[WithBML]
	if bml.Shares[power.RailBig] < bml.Shares[power.RailGPU] {
		t.Error("+BML: big share should exceed GPU share")
	}
	if bml.TotalW < 2.8 || bml.TotalW > 4.5 {
		t.Errorf("+BML total = %.2f W, want ~3.65", bml.TotalW)
	}
	// Figure 9c: migration moves power from big to little.
	prop := byMode[Proposed]
	if prop.Shares[power.RailBig] >= bml.Shares[power.RailBig] {
		t.Error("proposed: big share should drop versus +BML")
	}
	if prop.Shares[power.RailLittle] <= bml.Shares[power.RailLittle] {
		t.Error("proposed: little share should rise versus +BML")
	}
}

func TestTable2ReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 250 s x 6 simulation")
	}
	rows, err := Table2Experiment(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// BML degrades the benchmark; the proposed control recovers it.
		if r.WithBML >= r.Alone {
			t.Errorf("%s: +BML score %.1f not below alone %.1f", r.Test, r.WithBML, r.Alone)
		}
		if r.Proposed < r.WithBML {
			t.Errorf("%s: proposed %.1f below +BML %.1f", r.Test, r.Proposed, r.WithBML)
		}
		// Proposed recovers to within 10% of alone (paper: 93 vs 97 GT1,
		// identical for GT2 and Nenamark).
		if r.Proposed < 0.9*r.Alone {
			t.Errorf("%s: proposed %.1f not within 10%% of alone %.1f", r.Test, r.Proposed, r.Alone)
		}
	}
	// Nenamark scores land on the paper's scale.
	nn := rows[2]
	if nn.Alone < 3 || nn.Alone > 4.5 {
		t.Errorf("Nenamark alone = %.1f levels, want ≈3.5", nn.Alone)
	}
}

func TestRunNexusAppDeterministic(t *testing.T) {
	run := func() float64 {
		r, err := RunNexusApp("hangouts", true, 7)
		if err != nil {
			t.Fatal(err)
		}
		return r.App.MedianFPS()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestSortedShares(t *testing.T) {
	m := map[uint64]float64{100: 0.2, 200: 0.5, 300: 0.3}
	got := SortedShares(m)
	if len(got) != 3 || got[0].FreqHz != 200 || got[2].FreqHz != 100 {
		t.Errorf("sorted shares wrong: %+v", got)
	}
}

func TestOdroidRunExposesBenchAndGovernor(t *testing.T) {
	run, err := RunOdroid("3dmark", Proposed, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := run.Bench.(*workload.ThreeDMark); !ok {
		t.Error("bench should be a ThreeDMark")
	}
	if run.BML == nil {
		t.Error("proposed mode should include BML")
	}
	if run.Governor == nil {
		t.Error("proposed mode should expose the appaware governor")
	}
	alone, err := RunOdroid("3dmark", Alone, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	if alone.BML != nil || alone.Governor != nil {
		t.Error("alone mode should have neither BML nor the governor")
	}
}
