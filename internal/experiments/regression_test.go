package experiments

import (
	"context"
	"testing"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// seedStyleOdroidGovernors is a frozen copy of the board's stock
// CPUfreq governor set (interactive CPU clusters, ondemand GPU), kept
// with the frozen reference loop so the regression baseline never
// moves when production wiring is refactored.
func seedStyleOdroidGovernors(t *testing.T) map[platform.DomainID]governor.Governor {
	t.Helper()
	bigGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	littleGov, err := governor.NewInteractive(governor.DefaultInteractiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	gpuGov, err := governor.NewOndemand(governor.DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	return map[platform.DomainID]governor.Governor{
		platform.DomLittle: littleGov,
		platform.DomBig:    bigGov,
		platform.DomGPU:    gpuGov,
	}
}

// seedStyleLimitSweep is a frozen copy of the original serial LimitSweep
// loop, kept as the behavioral reference: the refactored pool-backed
// wrapper must reproduce it point for point.
func seedStyleLimitSweep(t *testing.T, limitsC []float64, durationS float64, seed int64) []SweepPoint {
	t.Helper()
	out := make([]SweepPoint, 0, len(limitsC))
	for _, limitC := range limitsC {
		plat := platform.OdroidXU3(seed)
		bench := workload.NewThreeDMark(seed)
		bml := workload.NewBML()
		bml.ExecuteRatio = 0

		ctrl, err := appaware.New(appaware.Config{
			ThermalLimitK: thermal.ToKelvin(limitC),
			HorizonS:      30,
			IntervalS:     0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		govs := seedStyleOdroidGovernors(t)
		eng, err := sim.New(sim.Config{
			Platform: plat,
			Apps: []sim.AppSpec{
				{App: bench, PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
				{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
			},
			Governors:  govs,
			Controller: ctrl,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := plat.Prewarm(OdroidPrewarmC); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(durationS); err != nil {
			t.Fatal(err)
		}
		out = append(out, SweepPoint{
			LimitC:        limitC,
			GT1FPS:        bench.GT1FPS(),
			PeakC:         thermal.ToCelsius(eng.MaxTempSeenK()),
			Migrations:    ctrl.Migrations(),
			BMLIterations: bml.Iterations(),
		})
	}
	return out
}

// TestLimitSweepMatchesSeedBehavior pins the refactor: the pool-backed
// LimitSweep must reproduce the original serial loop point for point
// (same seed per limit, same appaware config, BML execution decimated
// to model-only).
func TestLimitSweepMatchesSeedBehavior(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	const durationS, seed = 20, 3
	limits := []float64{55, 65}

	want := seedStyleLimitSweep(t, limits, durationS, seed)
	got, err := LimitSweep(limits, durationS, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("want %d points, got %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d drifted from seed behavior:\nseed:       %+v\nrefactored: %+v", i, want[i], got[i])
		}
	}
}

// TestLimitSweepParallelParity asserts the acceptance invariant: the
// pool with N workers produces identical results to one worker.
func TestLimitSweepParallelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	const durationS, seed = 15, 1
	limits := []float64{52, 58, 64, 70}

	serial, err := LimitSweepParallel(context.Background(), limits, durationS, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LimitSweepParallel(context.Background(), limits, durationS, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d differs between 1 and 4 workers:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}

// TestRunScenarioValidates covers the scenario builder's error paths.
func TestRunScenarioValidates(t *testing.T) {
	tests := []struct {
		name string
		spec ScenarioSpec
	}{
		{"unknown platform", ScenarioSpec{Platform: "pixel9", Workload: "3dmark", Governor: GovNone, DurationS: 1, Seed: 1}},
		{"unknown workload", ScenarioSpec{Platform: PlatformOdroid, Workload: "quake", Governor: GovNone, DurationS: 1, Seed: 1}},
		{"unknown governor", ScenarioSpec{Platform: PlatformOdroid, Workload: "3dmark", Governor: "psychic", DurationS: 1, Seed: 1}},
		{"zero duration", ScenarioSpec{Platform: PlatformOdroid, Workload: "3dmark", Governor: GovNone, Seed: 1}},
		{"stepwise is nexus-calibrated", ScenarioSpec{Platform: PlatformOdroid, Workload: "3dmark", Governor: GovStepwise, DurationS: 1, Seed: 1}},
		{"ipa is odroid-calibrated", ScenarioSpec{Platform: PlatformNexus, Workload: "paper.io", Governor: GovIPA, DurationS: 1, Seed: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.spec.Run(); err == nil {
				t.Fatalf("spec %+v should be rejected", tt.spec)
			}
		})
	}
}

// TestScenarioMetricsShape checks the metric sets of representative
// specs without long runs.
func TestScenarioMetricsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	tests := []struct {
		name   string
		spec   ScenarioSpec
		want   []string
		absent []string
	}{
		{
			name: "odroid 3dmark+bml appaware",
			spec: ScenarioSpec{Platform: PlatformOdroid, Workload: "3dmark+bml", Governor: GovAppAware, LimitC: 60, DurationS: 2, Seed: 1},
			want: []string{MetricPeakC, MetricAvgPowerW, MetricMigrations, MetricGT1FPS, MetricGT2FPS, MetricBMLIterations},
		},
		{
			name:   "odroid nenamark ipa",
			spec:   ScenarioSpec{Platform: PlatformOdroid, Workload: "nenamark", Governor: GovIPA, DurationS: 2, Seed: 1},
			want:   []string{MetricPeakC, MetricScore, MetricMedianFPS},
			absent: []string{MetricBMLIterations, MetricGT1FPS},
		},
		{
			name:   "nexus paper.io stepwise",
			spec:   ScenarioSpec{Platform: PlatformNexus, Workload: "paper.io", Governor: GovStepwise, DurationS: 2, Seed: 1},
			want:   []string{MetricPeakC, MetricMedianFPS},
			absent: []string{MetricBMLIterations},
		},
		{
			name: "nexus facebook none",
			spec: ScenarioSpec{Platform: PlatformNexus, Workload: "facebook", Governor: GovNone, DurationS: 2, Seed: 1},
			want: []string{MetricPeakC, MetricMedianFPS},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			run, err := tt.spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			m := run.Metrics()
			for _, name := range tt.want {
				if _, ok := m[name]; !ok {
					t.Errorf("metric %s missing from %v", name, m)
				}
			}
			for _, name := range tt.absent {
				if _, ok := m[name]; ok {
					t.Errorf("metric %s should be absent, got %v", name, m)
				}
			}
		})
	}
}
