package experiments

import (
	"fmt"

	"repro/internal/appaware"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stability"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/mobisim"
)

// Mode is one of the three Section IV-C scenarios.
type Mode int

// The three experimental arms of Figures 8-9 and Table II.
const (
	// Alone runs the benchmark by itself under the default governor.
	Alone Mode = iota
	// WithBML adds the basicmath-large background task, still under the
	// default (trip-point + IPA) governor.
	WithBML
	// Proposed adds BML but manages heat with the paper's
	// application-aware controller instead of whole-system throttling.
	Proposed
)

// String names the mode as the paper's column headings do.
func (m Mode) String() string {
	switch m {
	case Alone:
		return "app alone"
	case WithBML:
		return "app + BML"
	case Proposed:
		return "app + BML with proposed control"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Modes lists the three arms in paper order.
func Modes() []Mode { return []Mode{Alone, WithBML, Proposed} }

// OdroidDurationS covers the 3DMark run (GT1 + GT2) and matches the
// 250 s x-axis of Figure 8.
const OdroidDurationS = 250

// OdroidPrewarmC is the starting temperature of the Figure 8 traces:
// the paper's board idles near 50°C with the fan off.
const OdroidPrewarmC = mobisim.OdroidPrewarmC

// OdroidRun is one completed Section IV-C scenario.
type OdroidRun struct {
	// Mode is the experimental arm.
	Mode Mode
	// Engine holds traces, meter and scheduler state.
	Engine *sim.Engine
	// Bench is the foreground benchmark (3DMark or Nenamark).
	Bench workload.App
	// BML is the background task (nil in Alone mode).
	BML *workload.BML
	// Governor is the application-aware controller (nil unless Proposed).
	Governor *appaware.Governor
}

// RunOdroid runs one arm of the Section IV-C study with the given
// foreground benchmark ("3dmark" or "nenamark") for durationS seconds.
// Each arm is one facade scenario: IPA without/with the "+bml" mix,
// or the proposed application-aware controller (which replaces
// whole-system throttling). Background kernels execute for real, as
// the paper's measured runs do.
func RunOdroid(bench string, mode Mode, durationS float64, seed int64) (*OdroidRun, error) {
	if bench != "3dmark" && bench != "nenamark" {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	workloadMix := bench
	gov := mobisim.GovIPA
	if mode != Alone {
		workloadMix += mobisim.WorkloadSuffixBML
	}
	if mode == Proposed {
		gov = mobisim.GovAppAware
	}
	eng, err := mobisim.New(mobisim.Scenario{
		Platform:  mobisim.PlatformOdroidXU3,
		Workload:  workloadMix,
		Governor:  gov,
		DurationS: durationS,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return &OdroidRun{
		Mode:     mode,
		Engine:   eng.Sim(),
		Bench:    eng.Foreground(),
		BML:      eng.BackgroundBML(),
		Governor: eng.AppAware(),
	}, nil
}

// Fig8Result is the Figure 8 data product: the maximum system
// temperature over time for the three 3DMark scenarios.
type Fig8Result struct {
	// Alone, WithBML, Proposed are max-temperature traces (°C).
	Alone, WithBML, Proposed *trace.Series
}

// Fig8Experiment reproduces Figure 8.
func Fig8Experiment(seed int64) (*Fig8Result, error) {
	runs, err := threeDMarkRuns(seed)
	if err != nil {
		return nil, err
	}
	a := runs[Alone].Engine.MaxTempSeries()
	a.Name = "3DMark"
	b := runs[WithBML].Engine.MaxTempSeries()
	b.Name = "3DMark+BML"
	c := runs[Proposed].Engine.MaxTempSeries()
	c.Name = "Proposed Control"
	return &Fig8Result{Alone: a, WithBML: b, Proposed: c}, nil
}

// Fig9Result is the Figure 9 data product: the power distribution of
// one 3DMark scenario.
type Fig9Result struct {
	// Mode is the arm.
	Mode Mode
	// TotalW is the run's average total power.
	TotalW float64
	// Shares maps each rail to its fraction of total energy.
	Shares map[power.Rail]float64
}

// Fig9Experiment reproduces Figure 9's three pie charts.
func Fig9Experiment(seed int64) ([]Fig9Result, error) {
	runs, err := threeDMarkRuns(seed)
	if err != nil {
		return nil, err
	}
	out := make([]Fig9Result, 0, 3)
	for _, m := range Modes() {
		meter := runs[m].Engine.Meter()
		out = append(out, Fig9Result{
			Mode:   m,
			TotalW: meter.AveragePowerW(),
			Shares: meter.Shares(),
		})
	}
	return out, nil
}

// Slices converts the shares to chart slices in the paper's rail order.
func (r Fig9Result) Slices() []trace.ShareSlice {
	out := make([]trace.ShareSlice, 0, len(r.Shares))
	for _, rail := range power.Rails() {
		out = append(out, trace.ShareSlice{Label: rail.String(), Share: r.Shares[rail]})
	}
	return out
}

// Table2Row is one row of the paper's Table II.
type Table2Row struct {
	// Test names the benchmark metric ("3DMark GT1", "Nenamark3", ...).
	Test string
	// Unit is "FPS" or "levels".
	Unit string
	// Alone, WithBML, Proposed are the three scenario scores.
	Alone, WithBML, Proposed float64
}

// Table2Experiment reproduces Table II: 3DMark GT1/GT2 FPS and Nenamark
// levels under the three scenarios.
func Table2Experiment(seed int64) ([]Table2Row, error) {
	tm, err := threeDMarkRuns(seed)
	if err != nil {
		return nil, err
	}
	gt1 := Table2Row{Test: "3DMark GT1", Unit: "FPS"}
	gt2 := Table2Row{Test: "3DMark GT2", Unit: "FPS"}
	for _, m := range Modes() {
		bench := tm[m].Bench.(*workload.ThreeDMark)
		switch m {
		case Alone:
			gt1.Alone, gt2.Alone = bench.GT1FPS(), bench.GT2FPS()
		case WithBML:
			gt1.WithBML, gt2.WithBML = bench.GT1FPS(), bench.GT2FPS()
		case Proposed:
			gt1.Proposed, gt2.Proposed = bench.GT1FPS(), bench.GT2FPS()
		}
	}
	nn := Table2Row{Test: "Nenamark3", Unit: "levels"}
	for _, m := range Modes() {
		run, err := RunOdroid("nenamark", m, OdroidDurationS, seed)
		if err != nil {
			return nil, err
		}
		score := run.Bench.(*workload.Nenamark).Score()
		switch m {
		case Alone:
			nn.Alone = score
		case WithBML:
			nn.WithBML = score
		case Proposed:
			nn.Proposed = score
		}
	}
	return []Table2Row{gt1, gt2, nn}, nil
}

// threeDMarkRuns executes the three 3DMark arms once each.
func threeDMarkRuns(seed int64) (map[Mode]*OdroidRun, error) {
	out := make(map[Mode]*OdroidRun, 3)
	for _, m := range Modes() {
		run, err := RunOdroid("3dmark", m, OdroidDurationS, seed)
		if err != nil {
			return nil, err
		}
		out[m] = run
	}
	return out, nil
}

// Fig7Curve is one fixed-point-function curve of Figure 7.
type Fig7Curve struct {
	// PowerW is the dynamic power of the curve.
	PowerW float64
	// Analysis classifies the operating point.
	Analysis stability.Analysis
	// Theta and Psi are the plotted samples (scaled ψ, as in the paper).
	Theta, Psi []float64
}

// Fig7Experiment reproduces Figure 7: the fixed-point function at 2 W
// (two roots), ~5.5 W (critically stable) and 8 W (no roots) for the
// Odroid-calibrated lumped parameters.
func Fig7Experiment() ([]Fig7Curve, float64, error) {
	p := stability.DefaultOdroidParams()
	crit, err := p.CriticalPower()
	if err != nil {
		return nil, 0, err
	}
	curves := make([]Fig7Curve, 0, 3)
	for _, pd := range []float64{2, crit, 8} {
		an, err := p.Analyze(pd)
		if err != nil {
			return nil, 0, err
		}
		c := Fig7Curve{PowerW: pd, Analysis: an}
		for th := 1.5; th <= 6.5; th += 0.05 {
			c.Theta = append(c.Theta, th)
			c.Psi = append(c.Psi, p.PsiScaled(th, pd))
		}
		curves = append(curves, c)
	}
	return curves, crit, nil
}
