package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/appaware"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Platform names the sweep engine accepts.
const (
	PlatformOdroid = "odroid-xu3"
	PlatformNexus  = "nexus6p"
)

// Governor arm names the sweep engine accepts.
const (
	GovAppAware = "appaware"
	GovIPA      = "ipa"
	GovStepwise = "stepwise"
	GovNone     = "none"
)

// Metric names RunScenario reports. Not every scenario produces every
// metric: frame-rate metrics follow the foreground workload, and
// bml_iterations appears only for "+bml" mixes.
const (
	MetricPeakC         = "peak_c"
	MetricAvgPowerW     = "avg_power_w"
	MetricMigrations    = "migrations"
	MetricGT1FPS        = "gt1_fps"
	MetricGT2FPS        = "gt2_fps"
	MetricMedianFPS     = "median_fps"
	MetricScore         = "score"
	MetricBMLIterations = "bml_iterations"
)

// ScenarioSpec is a declarative simulation scenario: the reusable
// builder the sweep pool and the experiment wrappers share. A spec
// names a platform, a workload mix, a thermal-management arm and a
// seed; Run assembles the matching engine exactly like the hand-rolled
// Section III/IV scenarios do.
type ScenarioSpec struct {
	// Platform is PlatformOdroid or PlatformNexus.
	Platform string
	// Workload is the foreground app ("3dmark", "nenamark", or one of
	// the five Nexus apps), with an optional "+bml" suffix adding the
	// basicmath-large background task.
	Workload string
	// Governor is the thermal-management arm (GovAppAware, GovIPA,
	// GovStepwise, GovNone).
	Governor string
	// LimitC is the appaware thermal limit in °C; 0 keeps the platform
	// default. Ignored by the other arms.
	LimitC float64
	// DurationS is the simulated duration.
	DurationS float64
	// Seed drives every random stream of the scenario.
	Seed int64
}

// ScenarioRun is a completed scenario, retaining the engine and
// workloads for callers that need traces beyond the scalar metrics.
type ScenarioRun struct {
	// Engine holds traces, meter and scheduler state.
	Engine *sim.Engine
	// Foreground is the benchmark under study.
	Foreground workload.App
	// BML is the background task (nil without "+bml").
	BML *workload.BML
	// Controller is the application-aware governor (nil unless the
	// GovAppAware arm).
	Controller *appaware.Governor
}

// Run assembles and executes the scenario.
func (s ScenarioSpec) Run() (*ScenarioRun, error) {
	if s.DurationS <= 0 {
		return nil, fmt.Errorf("experiments: scenario duration must be positive, got %v", s.DurationS)
	}
	fgName, withBML := strings.CutSuffix(s.Workload, "+bml")

	var (
		plat     *platform.Platform
		govs     map[platform.DomainID]governor.Governor
		prewarmC float64
		realTime bool
		err      error
	)
	switch s.Platform {
	case PlatformOdroid:
		plat = platform.OdroidXU3(s.Seed)
		govs, err = odroidCPUGovernors()
		prewarmC = OdroidPrewarmC
		// The Section IV scenarios register the foreground with the
		// governor so it is never a migration victim.
		realTime = true
	case PlatformNexus:
		plat = platform.Nexus6P(s.Seed)
		govs, err = nexusCPUGovernors()
		prewarmC = NexusPrewarmC
	default:
		return nil, fmt.Errorf("experiments: unknown platform %q", s.Platform)
	}
	if err != nil {
		return nil, err
	}

	fg, err := foregroundApp(fgName, s.Seed)
	if err != nil {
		return nil, err
	}
	apps := []sim.AppSpec{
		{App: fg, PID: 1, Cluster: sched.Big, Threads: 2, RealTime: realTime},
	}
	var bml *workload.BML
	if withBML {
		bml = workload.NewBML()
		// Sweep scenarios are model-only: decimating real kernel
		// execution to zero keeps throughput high; modeled iterations —
		// the reported metric — are unaffected.
		bml.ExecuteRatio = 0
		apps = append(apps, sim.AppSpec{App: bml, PID: 2, Cluster: sched.Big, Threads: 1})
	}
	if s.Platform == PlatformNexus {
		apps = append(apps, sim.AppSpec{App: nexusOSBackground(s.Seed), PID: 3, Cluster: sched.Little, Threads: 1})
	}

	cfg := sim.Config{Platform: plat, Apps: apps, Governors: govs}
	var ctrl *appaware.Governor
	switch s.Governor {
	case GovAppAware:
		acfg := appaware.Config{HorizonS: 30, IntervalS: 0.1}
		if s.LimitC != 0 {
			acfg.ThermalLimitK = thermal.ToKelvin(s.LimitC)
		}
		ctrl, err = appaware.New(acfg)
		if err != nil {
			return nil, err
		}
		cfg.Controller = ctrl
	case GovIPA:
		// IPA's control temperature and power weights are Odroid
		// calibrations; on other platforms they would be silently
		// meaningless rather than wrong-looking.
		if s.Platform != PlatformOdroid {
			return nil, fmt.Errorf("experiments: governor %q is calibrated for %s only, not %s", GovIPA, PlatformOdroid, s.Platform)
		}
		tg, err := odroidIPA()
		if err != nil {
			return nil, err
		}
		cfg.Thermal = tg
	case GovStepwise:
		// The 44°C trip targets the Nexus package sensor; the Odroid
		// prewarms above it, so the arm would throttle from t=0.
		if s.Platform != PlatformNexus {
			return nil, fmt.Errorf("experiments: governor %q is calibrated for %s only, not %s", GovStepwise, PlatformNexus, s.Platform)
		}
		tg, err := nexusStepWise()
		if err != nil {
			return nil, err
		}
		cfg.Thermal = tg
	case GovNone:
		// Free-running: no thermal management at all.
	default:
		return nil, fmt.Errorf("experiments: unknown governor arm %q", s.Governor)
	}

	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := plat.Prewarm(prewarmC); err != nil {
		return nil, err
	}
	if err := eng.Run(s.DurationS); err != nil {
		return nil, err
	}
	return &ScenarioRun{Engine: eng, Foreground: fg, BML: bml, Controller: ctrl}, nil
}

// Metrics extracts the scenario's scalar metric set: the thermal and
// power aggregates every run reports plus workload-specific scores.
func (r *ScenarioRun) Metrics() map[string]float64 {
	m := map[string]float64{
		MetricPeakC:     thermal.ToCelsius(r.Engine.MaxTempSeenK()),
		MetricAvgPowerW: r.Engine.Meter().AveragePowerW(),
	}
	if r.Controller != nil {
		m[MetricMigrations] = float64(r.Controller.Migrations())
	} else {
		m[MetricMigrations] = float64(r.Engine.Scheduler().Migrations())
	}
	switch fg := r.Foreground.(type) {
	case *workload.ThreeDMark:
		m[MetricGT1FPS] = fg.GT1FPS()
		m[MetricGT2FPS] = fg.GT2FPS()
	case *workload.Nenamark:
		m[MetricScore] = fg.Score()
		m[MetricMedianFPS] = fg.MedianFPS()
	case *workload.FrameApp:
		m[MetricMedianFPS] = fg.MedianFPS()
	}
	if r.BML != nil {
		m[MetricBMLIterations] = float64(r.BML.Iterations())
	}
	return m
}

// RunScenario adapts a sweep.Scenario to a concrete simulation: it is
// this repo's sweep.RunFunc. Cancellation is at scenario granularity —
// a canceled context stops the scenario before it starts.
func RunScenario(ctx context.Context, sc sweep.Scenario) (map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run, err := ScenarioSpec{
		Platform:  sc.Platform,
		Workload:  sc.Workload,
		Governor:  sc.Governor,
		LimitC:    sc.LimitC,
		DurationS: sc.DurationS,
		Seed:      sc.Seed,
	}.Run()
	if err != nil {
		return nil, err
	}
	return run.Metrics(), nil
}

// foregroundApp builds the named foreground workload.
func foregroundApp(name string, seed int64) (workload.App, error) {
	switch name {
	case "3dmark":
		return workload.NewThreeDMark(seed), nil
	case "nenamark":
		return workload.NewNenamark(workload.DefaultNenamarkConfig())
	default:
		return nexusApp(name, seed)
	}
}
