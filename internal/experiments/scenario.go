package experiments

import (
	"context"

	"repro/internal/appaware"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
	"repro/pkg/mobisim"
)

// Platform names the sweep engine accepts (aliases of the public
// facade's constants; the facade owns the vocabulary).
const (
	PlatformOdroid = mobisim.PlatformOdroidXU3
	PlatformNexus  = mobisim.PlatformNexus6P
)

// Governor arm names the sweep engine accepts.
const (
	GovAppAware = mobisim.GovAppAware
	GovIPA      = mobisim.GovIPA
	GovStepwise = mobisim.GovStepwise
	GovNone     = mobisim.GovNone
)

// Metric names RunScenario reports. Not every scenario produces every
// metric: frame-rate metrics follow the foreground workload, and
// bml_iterations appears only for "+bml" mixes.
const (
	MetricPeakC         = mobisim.MetricPeakC
	MetricAvgPowerW     = mobisim.MetricAvgPowerW
	MetricMigrations    = mobisim.MetricMigrations
	MetricGT1FPS        = mobisim.MetricGT1FPS
	MetricGT2FPS        = mobisim.MetricGT2FPS
	MetricMedianFPS     = mobisim.MetricMedianFPS
	MetricScore         = mobisim.MetricScore
	MetricBMLIterations = mobisim.MetricBMLIterations
)

// ScenarioSpec is a declarative simulation scenario: the experiment
// wrappers' view of the public facade's Scenario. A spec names a
// platform, a workload mix, a thermal-management arm and a seed; Run
// assembles the matching engine through pkg/mobisim exactly like the
// hand-rolled Section III/IV scenarios do.
type ScenarioSpec struct {
	// Platform is PlatformOdroid or PlatformNexus.
	Platform string
	// Workload is the foreground app ("3dmark", "nenamark", or one of
	// the five Nexus apps), with an optional "+bml" suffix adding the
	// basicmath-large background task.
	Workload string
	// Governor is the thermal-management arm (GovAppAware, GovIPA,
	// GovStepwise, GovNone).
	Governor string
	// LimitC is the appaware thermal limit in °C; 0 keeps the platform
	// default. Ignored by the other arms.
	LimitC float64
	// DurationS is the simulated duration.
	DurationS float64
	// Seed drives every random stream of the scenario.
	Seed int64
}

// scenario converts the spec to the facade's serializable form.
// Background kernels run model-only, the sweep convention the original
// spec builder used.
func (s ScenarioSpec) scenario() mobisim.Scenario {
	return mobisim.Scenario{
		Platform:     s.Platform,
		Workload:     s.Workload,
		Governor:     s.Governor,
		LimitC:       s.LimitC,
		DurationS:    s.DurationS,
		Seed:         s.Seed,
		ModelOnlyBML: true,
	}
}

// ScenarioRun is a completed scenario, retaining the engine and
// workloads for callers that need traces beyond the scalar metrics.
type ScenarioRun struct {
	// Engine holds traces, meter and scheduler state.
	Engine *sim.Engine
	// Foreground is the benchmark under study.
	Foreground workload.App
	// BML is the background task (nil without "+bml").
	BML *workload.BML
	// Controller is the application-aware governor (nil unless the
	// GovAppAware arm).
	Controller *appaware.Governor

	facade *mobisim.Engine
}

// Run assembles and executes the scenario through the public facade.
func (s ScenarioSpec) Run() (*ScenarioRun, error) {
	eng, err := mobisim.New(s.scenario())
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return &ScenarioRun{
		Engine:     eng.Sim(),
		Foreground: eng.Foreground(),
		BML:        eng.BackgroundBML(),
		Controller: eng.AppAware(),
		facade:     eng,
	}, nil
}

// Metrics extracts the scenario's scalar metric set: the thermal and
// power aggregates every run reports plus workload-specific scores.
func (r *ScenarioRun) Metrics() map[string]float64 {
	return r.facade.Metrics()
}

// RunScenario adapts a sweep.Scenario to a concrete simulation: it is
// this repo's sweep.RunFunc. Runs are constant-memory (no trace series
// are materialized; every metric comes from streaming accumulators).
// Cancellation is at scenario granularity — a canceled context stops
// the scenario before it starts.
func RunScenario(ctx context.Context, sc sweep.Scenario) (map[string]float64, error) {
	return mobisim.RunScenarioMetrics(ctx, mobisim.Scenario{
		Platform:  sc.Platform,
		Workload:  sc.Workload,
		Governor:  sc.Governor,
		LimitC:    sc.LimitC,
		DurationS: sc.DurationS,
		Seed:      sc.Seed,
	})
}
