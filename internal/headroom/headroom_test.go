package headroom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/stability"
	"repro/internal/thermal"
)

func TestSustainablePowerMatchesAnalysis(t *testing.T) {
	p := stability.DefaultOdroidParams()
	limitK := thermal.ToKelvin(70)
	pd, err := SustainablePower(p, limitK)
	if err != nil {
		t.Fatal(err)
	}
	if pd <= 0 {
		t.Fatalf("sustainable power = %v, want positive", pd)
	}
	// The fixed point at the returned power must sit at the limit.
	steady, err := p.SteadyStateTemp(pd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(steady-limitK) > 0.1 {
		t.Errorf("steady at sustainable power = %.2f K, want ≈ limit %.2f K", steady, limitK)
	}
	// Slightly more power must overshoot.
	over, err := p.SteadyStateTemp(pd * 1.05)
	if err == nil && over <= limitK {
		t.Error("5% more power should exceed the limit")
	}
}

func TestSustainablePowerErrors(t *testing.T) {
	p := stability.DefaultOdroidParams()
	if _, err := SustainablePower(p, p.AmbientK-1); err == nil {
		t.Error("limit below ambient should fail")
	}
	bad := p
	bad.ResistanceKPerW = -1
	if _, err := SustainablePower(bad, 340); err == nil {
		t.Error("invalid params should fail")
	}
}

// Property: sustainable power is monotone in the limit.
func TestSustainablePowerMonotone(t *testing.T) {
	p := stability.DefaultOdroidParams()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		l1 := p.AmbientK + 5 + math.Abs(math.Mod(raw, 100))
		l2 := l1 + 10
		pd1, err1 := SustainablePower(p, l1)
		pd2, err2 := SustainablePower(p, l2)
		if err1 != nil || err2 != nil {
			return false
		}
		return pd2 >= pd1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProfileValidation(t *testing.T) {
	plat := platform.Nexus6P(1)
	bad := []Profile{
		{},
		{CPUCyclesPerFrame: -1, GPUCyclesPerFrame: 1},
		{CPUCyclesPerFrame: 1, GPUCyclesPerFrame: -1},
		{CPUCyclesPerFrame: 1, Threads: -1},
	}
	for i, pr := range bad {
		if _, err := ForApp(plat, pr, 0); err == nil {
			t.Errorf("case %d (%+v) should fail", i, pr)
		}
	}
	if _, err := ForApp(nil, Profile{CPUCyclesPerFrame: 1}, 0); err == nil {
		t.Error("nil platform should fail")
	}
}

func TestForAppGPUGame(t *testing.T) {
	plat := platform.Nexus6P(1)
	// Paper.io-class profile.
	an, err := ForApp(plat, Profile{
		CPUCyclesPerFrame: 8e6,
		GPUCyclesPerFrame: 13e6,
		Threads:           2,
		OnBig:             true,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The GPU tops out at 600 MHz / 13 M ≈ 46 FPS.
	if math.Abs(an.PeakFPS-600e6/13e6) > 0.01 {
		t.Errorf("peak = %v, want ≈46.2", an.PeakFPS)
	}
	if an.SustainableFPS <= 0 || an.SustainableFPS > an.PeakFPS+1e-9 {
		t.Errorf("sustainable %v outside (0, peak %v]", an.SustainableFPS, an.PeakFPS)
	}
	// The sustainable point must not exceed the platform limit.
	if an.SteadyTempK > plat.ThermalLimitK()+0.2 {
		t.Errorf("steady %v K exceeds limit %v K", an.SteadyTempK, plat.ThermalLimitK())
	}
	if an.GPUFreqHz == 0 {
		t.Error("GPU frequency should be reported for a GPU app")
	}
	if an.PowerW <= 0 {
		t.Error("power should be positive")
	}
}

func TestForAppSustainableBelowPeakWhenHot(t *testing.T) {
	plat := platform.Nexus6P(1)
	// A very heavy app: peak demand power must exceed what a 43°C limit
	// allows, so sustainable < peak — the throttling gap of Table I.
	an, err := ForApp(plat, Profile{
		CPUCyclesPerFrame: 30e6,
		GPUCyclesPerFrame: 13e6,
		Threads:           4,
		OnBig:             true,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.SustainableFPS >= an.PeakFPS {
		t.Errorf("sustainable %v should be below peak %v for a heavy app", an.SustainableFPS, an.PeakFPS)
	}
}

func TestForAppHigherLimitMoreHeadroom(t *testing.T) {
	plat := platform.Nexus6P(1)
	pr := Profile{CPUCyclesPerFrame: 30e6, GPUCyclesPerFrame: 13e6, Threads: 4, OnBig: true}
	cool, err := ForApp(plat, pr, thermal.ToKelvin(40))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ForApp(plat, pr, thermal.ToKelvin(55))
	if err != nil {
		t.Fatal(err)
	}
	if warm.SustainableFPS < cool.SustainableFPS {
		t.Errorf("raising the limit cannot reduce headroom: %v -> %v",
			cool.SustainableFPS, warm.SustainableFPS)
	}
}

func TestForAppCPUOnly(t *testing.T) {
	plat := platform.OdroidXU3(1)
	an, err := ForApp(plat, Profile{CPUCyclesPerFrame: 40e6, Threads: 2, OnBig: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.GPUFreqHz != 0 {
		t.Error("CPU-only profile should not report a GPU frequency")
	}
	wantPeak := 2 * 2000e6 / 40e6
	if math.Abs(an.PeakFPS-wantPeak) > 0.01 {
		t.Errorf("peak = %v, want %v", an.PeakFPS, wantPeak)
	}
}
