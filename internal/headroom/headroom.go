// Package headroom turns the power-temperature stability analysis
// inside out for application developers — the use the paper's
// conclusion proposes ("it can be used by application developers to
// optimize their apps such that they do not experience thermal
// throttling"):
//
//   - SustainablePower: the largest dynamic power whose stable fixed
//     point stays at or below a thermal limit.
//   - AppAnalysis: for a frame app's per-frame CPU/GPU costs on a given
//     platform, the largest frame rate the platform can sustain
//     indefinitely without tripping the thermal limit, and the OPPs it
//     runs at there.
//
// A developer who keeps the app's demand under the sustainable frame
// rate never experiences the throttling collapse of the paper's
// Table I.
package headroom

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/platform"
	"repro/internal/stability"
)

// SustainablePower returns the largest dynamic power (W) whose stable
// fixed-point temperature does not exceed limitK. It returns 0 when
// even idle power overshoots the limit.
func SustainablePower(p stability.Params, limitK float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if limitK <= p.AmbientK {
		return 0, fmt.Errorf("headroom: limit %.1f K at or below ambient %.1f K", limitK, p.AmbientK)
	}
	okAt := func(pd float64) bool {
		t, err := p.SteadyStateTemp(pd)
		return err == nil && t <= limitK
	}
	if !okAt(0) {
		return 0, nil
	}
	lo, hi := 0.0, 1.0
	for okAt(hi) {
		hi *= 2
		if hi > 1e4 {
			return math.Inf(1), nil // limit unreachable: unlimited headroom
		}
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if okAt(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Profile is an application's steady per-frame execution cost.
type Profile struct {
	// CPUCyclesPerFrame and GPUCyclesPerFrame cost each frame.
	CPUCyclesPerFrame float64
	GPUCyclesPerFrame float64
	// Threads bounds the app's CPU parallelism (default 1).
	Threads int
	// Cluster selects big (true) or LITTLE (false) CPU placement.
	OnBig bool
}

func (pr Profile) validate() error {
	if pr.CPUCyclesPerFrame < 0 || pr.GPUCyclesPerFrame < 0 {
		return errors.New("headroom: per-frame costs must be >= 0")
	}
	if pr.CPUCyclesPerFrame == 0 && pr.GPUCyclesPerFrame == 0 {
		return errors.New("headroom: profile needs a non-zero cost")
	}
	if pr.Threads < 0 {
		return errors.New("headroom: threads must be >= 0")
	}
	return nil
}

// Analysis reports an app's thermal headroom on a platform.
type Analysis struct {
	// SustainableFPS is the largest frame rate the platform sustains
	// indefinitely at or below its thermal limit.
	SustainableFPS float64
	// PeakFPS is the frame rate at maximum OPPs, ignoring heat: the gap
	// to SustainableFPS is what throttling will eventually take away.
	PeakFPS float64
	// CPUFreqHz and GPUFreqHz are the OPPs needed at SustainableFPS.
	CPUFreqHz, GPUFreqHz uint64
	// PowerW is the platform dynamic power at the sustainable point.
	PowerW float64
	// SteadyTempK is the fixed-point temperature at that power.
	SteadyTempK float64
}

// ForApp computes the thermal headroom of an app profile on a platform.
// The model matches the simulator's: the CPU demand fps·cpuCost runs on
// the chosen cluster under its OPP ladder, the GPU demand fps·gpuCost
// on the GPU ladder; idle and memory power are included; leakage is
// handled by the fixed-point analysis.
func ForApp(plat *platform.Platform, pr Profile, limitK float64) (Analysis, error) {
	if plat == nil {
		return Analysis{}, errors.New("headroom: nil platform")
	}
	if err := pr.validate(); err != nil {
		return Analysis{}, err
	}
	if limitK == 0 {
		limitK = plat.ThermalLimitK()
	}
	params, err := plat.StabilityParams()
	if err != nil {
		return Analysis{}, err
	}
	threads := pr.Threads
	if threads == 0 {
		threads = 1
	}
	cpuDom := platform.DomLittle
	if pr.OnBig {
		cpuDom = platform.DomBig
	}

	// peak: the fps achievable at maximum OPPs.
	peak := math.Inf(1)
	if pr.CPUCyclesPerFrame > 0 {
		capHz := float64(plat.Domain(cpuDom).Table().Max().FreqHz) * float64(minInt(threads, plat.Cores(cpuDom)))
		peak = math.Min(peak, capHz/pr.CPUCyclesPerFrame)
	}
	if pr.GPUCyclesPerFrame > 0 {
		peak = math.Min(peak, float64(plat.Domain(platform.DomGPU).Table().Max().FreqHz)/pr.GPUCyclesPerFrame)
	}

	// powerAt computes the platform dynamic power needed for fps.
	powerAt := func(fps float64) (float64, uint64, uint64, bool) {
		var cpuFreq, gpuFreq uint64
		total := 0.0
		for _, id := range platform.DomainIDs() {
			total += plat.Model(id).IdleW
		}
		achieved := 0.0
		if pr.CPUCyclesPerFrame > 0 {
			demand := fps * pr.CPUCyclesPerFrame
			table := plat.Domain(cpuDom).Table()
			perCore := demand / float64(minInt(threads, plat.Cores(cpuDom)))
			if perCore > float64(table.Max().FreqHz) {
				return 0, 0, 0, false
			}
			opp := table.Ceil(uint64(math.Ceil(perCore)))
			cpuFreq = opp.FreqHz
			util := demand / float64(opp.FreqHz)
			total += plat.Model(cpuDom).Dynamic(opp, util)
			achieved += demand
		}
		if pr.GPUCyclesPerFrame > 0 {
			demand := fps * pr.GPUCyclesPerFrame
			table := plat.Domain(platform.DomGPU).Table()
			if demand > float64(table.Max().FreqHz) {
				return 0, 0, 0, false
			}
			opp := table.Ceil(uint64(math.Ceil(demand)))
			gpuFreq = opp.FreqHz
			util := demand / float64(opp.FreqHz)
			total += plat.Model(platform.DomGPU).Dynamic(opp, util)
			achieved += demand
		}
		total += plat.MemPower(achieved)
		return total, cpuFreq, gpuFreq, true
	}

	sustainableAt := func(fps float64) bool {
		pd, _, _, ok := powerAt(fps)
		if !ok {
			return false
		}
		t, err := params.SteadyStateTemp(pd)
		return err == nil && t <= limitK
	}

	if !sustainableAt(0.5) {
		return Analysis{}, fmt.Errorf("headroom: platform cannot sustain even 0.5 FPS under %.1f K", limitK)
	}
	lo, hi := 0.5, peak
	if sustainableAt(peak) {
		lo = peak
	} else {
		for i := 0; i < 50; i++ {
			mid := 0.5 * (lo + hi)
			if sustainableAt(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	pd, cpuF, gpuF, _ := powerAt(lo)
	steady, err := params.SteadyStateTemp(pd)
	if err != nil {
		return Analysis{}, err
	}
	return Analysis{
		SustainableFPS: lo,
		PeakFPS:        peak,
		CPUFreqHz:      cpuF,
		GPUFreqHz:      gpuF,
		PowerW:         pd,
		SteadyTempK:    steady,
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
