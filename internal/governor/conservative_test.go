package governor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

func TestConservativeValidation(t *testing.T) {
	bad := []ConservativeConfig{
		{UpThreshold: 0, DownThreshold: 0, IntervalS: 0.02},
		{UpThreshold: 1.5, DownThreshold: 0.2, IntervalS: 0.02},
		{UpThreshold: math.NaN(), DownThreshold: 0.2, IntervalS: 0.02},
		{UpThreshold: 0.8, DownThreshold: -0.1, IntervalS: 0.02},
		{UpThreshold: 0.8, DownThreshold: 0.9, IntervalS: 0.02}, // down >= up
		{UpThreshold: 0.8, DownThreshold: 0.2, IntervalS: 0},
	}
	for i, cfg := range bad {
		if _, err := NewConservative(cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := NewConservative(DefaultConservativeConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestConservativeStepsOneOPPAtATime(t *testing.T) {
	d := testDomain(t)
	g, _ := NewConservative(DefaultConservativeConfig())
	// Full load: one step up per decision, never a jump to max.
	in := Input{UtilCores: 4, OnlineCores: 4}
	if got := g.Decide(in, d); got != 305e6 {
		t.Fatalf("first step = %d, want 305MHz (one OPP above min)", got)
	}
	d.Request(0, 305e6)
	if got := g.Decide(in, d); got != 390e6 {
		t.Errorf("second step = %d, want 390MHz", got)
	}
	// Idle: one step down per decision.
	d.Request(0, 600e6)
	idle := Input{UtilCores: 0, OnlineCores: 4}
	if got := g.Decide(idle, d); got != 510e6 {
		t.Errorf("down step = %d, want 510MHz", got)
	}
}

func TestConservativeHoldsInBand(t *testing.T) {
	d := testDomain(t)
	d.Request(0, 390e6)
	g, _ := NewConservative(DefaultConservativeConfig())
	// Load 0.5 is between the thresholds: hold.
	if got := g.Decide(Input{UtilCores: 2, OnlineCores: 4}, d); got != 390e6 {
		t.Errorf("freq = %d, want held at 390MHz", got)
	}
}

func TestConservativeBoundsAtLadderEnds(t *testing.T) {
	d := testDomain(t)
	g, _ := NewConservative(DefaultConservativeConfig())
	// At min with zero load: stay at min.
	if got := g.Decide(Input{UtilCores: 0, OnlineCores: 4}, d); got != 180e6 {
		t.Errorf("freq = %d, want min held", got)
	}
	// At max with full load: stay at max.
	d.Request(0, 600e6)
	if got := g.Decide(Input{UtilCores: 4, OnlineCores: 4}, d); got != 600e6 {
		t.Errorf("freq = %d, want max held", got)
	}
}

// Property: conservative never moves more than one ladder position per
// decision, in either direction, from any starting OPP.
func TestConservativeNeverJumps(t *testing.T) {
	table := testTable()
	f := func(util float64, startIdx uint8) bool {
		d, err := dvfs.NewDomain("gpu", table, 0)
		if err != nil {
			return false
		}
		d.Request(0, table.At(int(startIdx)%table.Len()).FreqHz)
		g, _ := NewConservative(DefaultConservativeConfig())
		before := table.IndexOf(d.CurrentHz())
		freq := g.Decide(Input{UtilCores: math.Abs(math.Mod(util, 8)), OnlineCores: 4}, d)
		after := table.IndexOf(freq)
		if after < 0 {
			return false
		}
		diff := after - before
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
