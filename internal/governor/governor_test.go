package governor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

// testTable mirrors the Adreno 430 ladder used throughout the paper.
func testTable() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 180e6, VoltageV: 0.80},
		dvfs.OPP{FreqHz: 305e6, VoltageV: 0.85},
		dvfs.OPP{FreqHz: 390e6, VoltageV: 0.90},
		dvfs.OPP{FreqHz: 450e6, VoltageV: 0.95},
		dvfs.OPP{FreqHz: 510e6, VoltageV: 1.00},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.075},
	)
}

func testDomain(t *testing.T) *dvfs.Domain {
	t.Helper()
	d, err := dvfs.NewDomain("gpu", testTable(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInputLoad(t *testing.T) {
	cases := []struct {
		in   Input
		want float64
	}{
		{Input{UtilCores: 2, OnlineCores: 4}, 0.5},
		{Input{UtilCores: 5, OnlineCores: 4}, 1},  // clamped high
		{Input{UtilCores: -1, OnlineCores: 4}, 0}, // clamped low
		{Input{UtilCores: 1, OnlineCores: 0}, 0},  // no cores
		// One saturated core dominates a low cluster average.
		{Input{UtilCores: 1, MaxCoreLoad: 1, OnlineCores: 4}, 1},
		{Input{UtilCores: 2, MaxCoreLoad: 0.3, OnlineCores: 4}, 0.5},
		{Input{MaxCoreLoad: 1.5, OnlineCores: 4}, 1}, // clamped high
	}
	for i, c := range cases {
		if got := c.in.Load(); got != c.want {
			t.Errorf("case %d: load = %v, want %v", i, got, c.want)
		}
	}
}

func TestPerformanceAlwaysMax(t *testing.T) {
	d := testDomain(t)
	g := Performance{}
	if g.Name() != "performance" {
		t.Error("wrong name")
	}
	for _, util := range []float64{0, 0.5, 4} {
		if got := g.Decide(Input{UtilCores: util, OnlineCores: 4}, d); got != 600e6 {
			t.Errorf("util %v: freq = %d, want max", util, got)
		}
	}
}

func TestPowersaveAlwaysMin(t *testing.T) {
	d := testDomain(t)
	g := Powersave{}
	for _, util := range []float64{0, 4} {
		if got := g.Decide(Input{UtilCores: util, OnlineCores: 4}, d); got != 180e6 {
			t.Errorf("util %v: freq = %d, want min", util, got)
		}
	}
}

func TestUserspaceHoldsSetpoint(t *testing.T) {
	d := testDomain(t)
	g := NewUserspace(390e6)
	if got := g.Decide(Input{UtilCores: 4, OnlineCores: 4}, d); got != 390e6 {
		t.Errorf("freq = %d, want setpoint 390MHz", got)
	}
	g.Set(510e6)
	if got := g.Decide(Input{}, d); got != 510e6 {
		t.Errorf("freq = %d, want new setpoint 510MHz", got)
	}
}

func TestOndemandValidation(t *testing.T) {
	bad := []OndemandConfig{
		{UpThreshold: 0, SamplingDownFactor: 1, IntervalS: 0.02},
		{UpThreshold: 1.5, SamplingDownFactor: 1, IntervalS: 0.02},
		{UpThreshold: math.NaN(), SamplingDownFactor: 1, IntervalS: 0.02},
		{UpThreshold: 0.8, SamplingDownFactor: 0, IntervalS: 0.02},
		{UpThreshold: 0.8, SamplingDownFactor: 1, IntervalS: 0},
	}
	for i, cfg := range bad {
		if _, err := NewOndemand(cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := NewOndemand(DefaultOndemandConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestOndemandJumpsToMaxAboveThreshold(t *testing.T) {
	d := testDomain(t)
	g, _ := NewOndemand(DefaultOndemandConfig())
	got := g.Decide(Input{UtilCores: 3.6, OnlineCores: 4}, d) // load 0.9
	if got != 600e6 {
		t.Errorf("freq = %d, want max on load 0.9 >= 0.8", got)
	}
}

func TestOndemandScalesProportionallyBelowThreshold(t *testing.T) {
	d := testDomain(t)
	g, _ := NewOndemand(DefaultOndemandConfig())
	// Current frequency is table min (180 MHz). Load 0.5 → busy 90 MHz
	// per core → want 112.5 MHz → Ceil → 180 MHz.
	if got := g.Decide(Input{UtilCores: 2, OnlineCores: 4}, d); got != 180e6 {
		t.Errorf("freq = %d, want 180MHz at low busy", got)
	}
	// Run the domain at 510 MHz: load 0.5 → busy 255 MHz → want
	// 318.75 MHz → Ceil → 390 MHz.
	d.Request(0, 510e6)
	if got := g.Decide(Input{UtilCores: 2, OnlineCores: 4}, d); got != 390e6 {
		t.Errorf("freq = %d, want 390MHz", got)
	}
}

func TestOndemandZeroLoadPicksMin(t *testing.T) {
	d := testDomain(t)
	d.Request(0, 600e6)
	g, _ := NewOndemand(DefaultOndemandConfig())
	if got := g.Decide(Input{UtilCores: 0, OnlineCores: 4}, d); got != 180e6 {
		t.Errorf("freq = %d, want min at zero load", got)
	}
}

func TestOndemandSamplingDownFactorHoldsMax(t *testing.T) {
	d := testDomain(t)
	cfg := DefaultOndemandConfig()
	cfg.SamplingDownFactor = 3
	g, _ := NewOndemand(cfg)
	if got := g.Decide(Input{UtilCores: 4, OnlineCores: 4}, d); got != 600e6 {
		t.Fatalf("expected up-jump, got %d", got)
	}
	// Load drops to zero; the governor must hold max for 3 intervals.
	for i := 0; i < 3; i++ {
		if got := g.Decide(Input{UtilCores: 0, OnlineCores: 4}, d); got != 600e6 {
			t.Fatalf("hold interval %d: freq = %d, want max", i, got)
		}
	}
	if got := g.Decide(Input{UtilCores: 0, OnlineCores: 4}, d); got != 180e6 {
		t.Errorf("after hold: freq = %d, want min", got)
	}
}

func TestInteractiveValidation(t *testing.T) {
	bad := []InteractiveConfig{
		{TargetLoad: 0, IntervalS: 0.02},
		{TargetLoad: 1.2, IntervalS: 0.02},
		{TargetLoad: 0.9, IntervalS: 0},
		{TargetLoad: 0.9, IntervalS: 0.02, BoostHoldS: -1},
		{TargetLoad: 0.9, IntervalS: 0.02, AboveHispeedDelayS: -1},
	}
	for i, cfg := range bad {
		if _, err := NewInteractive(cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := NewInteractive(DefaultInteractiveConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestInteractiveTouchBoost(t *testing.T) {
	d := testDomain(t)
	cfg := DefaultInteractiveConfig()
	cfg.HispeedFreqHz = 510e6
	g, _ := NewInteractive(cfg)
	// Idle, no touch: min frequency.
	if got := g.Decide(Input{NowS: 0, UtilCores: 0, OnlineCores: 4}, d); got != 180e6 {
		t.Fatalf("idle freq = %d, want min", got)
	}
	// Touch at t=1: boost to hispeed despite zero load.
	if got := g.Decide(Input{NowS: 1, UtilCores: 0, OnlineCores: 4, Touch: true}, d); got != 510e6 {
		t.Errorf("touch freq = %d, want hispeed 510MHz", got)
	}
	// Boost still held at t=1.3 (hold 0.5 s).
	if got := g.Decide(Input{NowS: 1.3, UtilCores: 0, OnlineCores: 4}, d); got != 510e6 {
		t.Errorf("held freq = %d, want hispeed", got)
	}
	// Boost expired at t=1.6.
	if got := g.Decide(Input{NowS: 1.6, UtilCores: 0, OnlineCores: 4}, d); got != 180e6 {
		t.Errorf("expired freq = %d, want min", got)
	}
}

func TestInteractiveAboveHispeedDelay(t *testing.T) {
	d := testDomain(t)
	d.Request(0, 510e6)
	cfg := DefaultInteractiveConfig()
	cfg.HispeedFreqHz = 510e6
	cfg.AboveHispeedDelayS = 0.04
	g, _ := NewInteractive(cfg)
	// Full load at 510 MHz wants 600 MHz but must wait out the delay.
	in := Input{NowS: 0, UtilCores: 4, OnlineCores: 4}
	if got := g.Decide(in, d); got != 510e6 {
		t.Fatalf("first ask = %d, want clamped to hispeed", got)
	}
	in.NowS = 0.02
	if got := g.Decide(in, d); got != 510e6 {
		t.Errorf("at 20ms: freq = %d, still within delay", got)
	}
	in.NowS = 0.05
	if got := g.Decide(in, d); got != 600e6 {
		t.Errorf("after delay: freq = %d, want 600MHz", got)
	}
}

func TestInteractiveTracksTargetLoad(t *testing.T) {
	d := testDomain(t)
	d.Request(0, 390e6)
	g, _ := NewInteractive(DefaultInteractiveConfig())
	// Load 0.5 at 390 MHz → busy 195 MHz → /0.9 = 216.7 MHz → Ceil 305.
	if got := g.Decide(Input{NowS: 5, UtilCores: 2, OnlineCores: 4}, d); got != 305e6 {
		t.Errorf("freq = %d, want 305MHz", got)
	}
}

func TestInteractiveHispeedDefaultsToMax(t *testing.T) {
	d := testDomain(t)
	g, _ := NewInteractive(DefaultInteractiveConfig())
	if got := g.Decide(Input{NowS: 0, Touch: true, OnlineCores: 4}, d); got != 600e6 {
		t.Errorf("touch freq = %d, want table max when hispeed unset", got)
	}
}

// Property: every governor returns a frequency that exists in the
// domain's OPP table, for any input.
func TestGovernorsAlwaysReturnTableFrequencies(t *testing.T) {
	table := testTable()
	d, _ := dvfs.NewDomain("gpu", table, 0)
	od, _ := NewOndemand(DefaultOndemandConfig())
	ia, _ := NewInteractive(DefaultInteractiveConfig())
	govs := []Governor{Performance{}, Powersave{}, NewUserspace(390e6), od, ia}
	f := func(util, maxLoad float64, cores uint8, now float64, touch bool) bool {
		in := Input{
			NowS:        math.Abs(math.Mod(now, 1e6)),
			UtilCores:   math.Mod(util, 16),
			MaxCoreLoad: math.Mod(maxLoad, 2),
			OnlineCores: int(cores%8) + 1,
			Touch:       touch,
		}
		for _, g := range govs {
			freq := g.Decide(in, d)
			if table.IndexOf(freq) < 0 {
				t.Logf("%s returned %d Hz, not an OPP", g.Name(), freq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGovernorIntervals(t *testing.T) {
	od, _ := NewOndemand(DefaultOndemandConfig())
	ia, _ := NewInteractive(DefaultInteractiveConfig())
	for _, g := range []Governor{Performance{}, Powersave{}, NewUserspace(1), od, ia} {
		if g.IntervalS() <= 0 {
			t.Errorf("%s interval = %v, want > 0", g.Name(), g.IntervalS())
		}
	}
}
