package governor

import (
	"fmt"

	"repro/internal/snapbin"
)

// Snapshot support. Every shipped governor implements SaveState and
// LoadState — the stateless ones as no-ops — so the sim layer can
// require the interface on all of them and fail loudly if a future
// stateful governor forgets to implement it, instead of silently
// dropping its state from snapshots.

// SaveState implements the sim snapshot interface (stateless: no-op).
func (Performance) SaveState(w *snapbin.Writer) {}

// LoadState implements the sim snapshot interface (stateless: no-op).
func (Performance) LoadState(r *snapbin.Reader) error { return nil }

// SaveState implements the sim snapshot interface (stateless: no-op).
func (Powersave) SaveState(w *snapbin.Writer) {}

// LoadState implements the sim snapshot interface (stateless: no-op).
func (Powersave) LoadState(r *snapbin.Reader) error { return nil }

// SaveState implements the sim snapshot interface (stateless: no-op —
// the conservative governor reads only the domain's current OPP).
func (*Conservative) SaveState(w *snapbin.Writer) {}

// LoadState implements the sim snapshot interface (stateless: no-op).
func (*Conservative) LoadState(r *snapbin.Reader) error { return nil }

// SaveState serializes the userspace governor's target frequency.
func (u *Userspace) SaveState(w *snapbin.Writer) { w.PutU64(u.freqHz) }

// LoadState restores state saved by SaveState.
func (u *Userspace) LoadState(r *snapbin.Reader) error {
	freq := r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("governor: userspace: %w", err)
	}
	u.freqHz = freq
	return nil
}

// SaveState serializes the ondemand governor's down-sampling hold.
func (o *Ondemand) SaveState(w *snapbin.Writer) { w.PutInt(o.hold) }

// LoadState restores state saved by SaveState.
func (o *Ondemand) LoadState(r *snapbin.Reader) error {
	hold := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("governor: ondemand: %w", err)
	}
	o.hold = hold
	return nil
}

// SaveState serializes the interactive governor's boost and
// above-hispeed hold clocks.
func (g *Interactive) SaveState(w *snapbin.Writer) {
	w.PutF64(g.boostUntil)
	w.PutF64(g.hispeedSince)
}

// LoadState restores state saved by SaveState.
func (g *Interactive) LoadState(r *snapbin.Reader) error {
	boostUntil := r.F64()
	hispeedSince := r.F64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("governor: interactive: %w", err)
	}
	g.boostUntil = boostUntil
	g.hispeedSince = hispeedSince
	return nil
}
