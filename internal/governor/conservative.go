package governor

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
)

// ConservativeConfig parameterizes the conservative governor.
type ConservativeConfig struct {
	// UpThreshold is the load above which the governor steps the
	// frequency up one OPP (Linux default 0.80).
	UpThreshold float64
	// DownThreshold is the load below which it steps down one OPP
	// (Linux default 0.20).
	DownThreshold float64
	// IntervalS is the sampling period.
	IntervalS float64
}

// DefaultConservativeConfig mirrors the Linux defaults.
func DefaultConservativeConfig() ConservativeConfig {
	return ConservativeConfig{UpThreshold: 0.80, DownThreshold: 0.20, IntervalS: 0.02}
}

// Conservative is the Linux conservative governor: like ondemand but
// it moves one OPP at a time in both directions, trading response time
// for smoother power. It is the gentlest of the load-tracking
// governors, which is why battery-focused builds shipped it.
type Conservative struct {
	cfg ConservativeConfig
}

// NewConservative validates cfg and builds the governor.
func NewConservative(cfg ConservativeConfig) (*Conservative, error) {
	if cfg.UpThreshold <= 0 || cfg.UpThreshold > 1 || math.IsNaN(cfg.UpThreshold) {
		return nil, fmt.Errorf("governor: conservative up-threshold must be in (0,1], got %v", cfg.UpThreshold)
	}
	if cfg.DownThreshold < 0 || cfg.DownThreshold >= cfg.UpThreshold {
		return nil, fmt.Errorf("governor: conservative down-threshold %v must be in [0, up-threshold %v)",
			cfg.DownThreshold, cfg.UpThreshold)
	}
	if cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("governor: conservative interval must be positive, got %v", cfg.IntervalS)
	}
	return &Conservative{cfg: cfg}, nil
}

// Name implements Governor.
func (*Conservative) Name() string { return "conservative" }

// IntervalS implements Governor.
func (c *Conservative) IntervalS() float64 { return c.cfg.IntervalS }

// Decide implements Governor.
func (c *Conservative) Decide(in Input, d *dvfs.Domain) uint64 {
	table := d.Table()
	cur := d.CurrentHz()
	i := table.IndexOf(table.Floor(cur).FreqHz)
	if i < 0 {
		i = 0
	}
	load := in.Load()
	switch {
	case load > c.cfg.UpThreshold && i+1 < table.Len():
		return table.At(i + 1).FreqHz
	case load < c.cfg.DownThreshold && i > 0:
		return table.At(i - 1).FreqHz
	default:
		return table.At(i).FreqHz
	}
}
