// Package governor implements the CPUfreq frequency governors the paper
// exercises: performance, powersave, userspace, ondemand and the Android
// interactive governor with touch boost. Governors observe domain load
// and request target frequencies; thermal caps are applied inside the
// dvfs.Domain, which is exactly the layering that makes the paper's
// "frequency governor fights thermal governor" observation possible.
package governor

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
)

// Input is what a governor sees at a decision point.
type Input struct {
	// NowS is the simulation time.
	NowS float64
	// UtilCores is the domain's busy capacity over the last interval in
	// units of cores (0..OnlineCores).
	UtilCores float64
	// MaxCoreLoad is the busy fraction of the busiest core in [0,1].
	// Linux governors evaluate the highest per-CPU load in a policy, not
	// the cluster average — a single saturated core must drive the whole
	// cluster to its maximum frequency (the BML scenario of Section
	// IV-C depends on this).
	MaxCoreLoad float64
	// OnlineCores is the number of online cores in the domain (1 for a
	// GPU domain).
	OnlineCores int
	// Touch reports a user interaction since the last decision; the
	// interactive governor boosts on it.
	Touch bool
}

// Load returns the governor-relevant load in [0,1]: the busiest core's
// load, but never below the cluster average.
func (in Input) Load() float64 {
	l := in.MaxCoreLoad
	if in.OnlineCores > 0 {
		if avg := in.UtilCores / float64(in.OnlineCores); avg > l {
			l = avg
		}
	}
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// Governor selects frequencies for one dvfs.Domain.
type Governor interface {
	// Name identifies the governor ("ondemand", "interactive", ...).
	Name() string
	// IntervalS is the governor's decision period in seconds.
	IntervalS() float64
	// Decide returns the frequency to request given the input. The
	// domain is read-only context (current frequency, OPP table); the
	// caller performs the actual Request so caps apply uniformly.
	Decide(in Input, d *dvfs.Domain) uint64
}

// Performance pins the domain at its maximum frequency, the governor
// the paper's "without throttling" baselines disable thermal control
// against.
type Performance struct{}

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// IntervalS implements Governor.
func (Performance) IntervalS() float64 { return 0.1 }

// Decide implements Governor.
func (Performance) Decide(in Input, d *dvfs.Domain) uint64 {
	return d.Table().Max().FreqHz
}

// Powersave pins the domain at its minimum frequency.
type Powersave struct{}

// Name implements Governor.
func (Powersave) Name() string { return "powersave" }

// IntervalS implements Governor.
func (Powersave) IntervalS() float64 { return 0.1 }

// Decide implements Governor.
func (Powersave) Decide(in Input, d *dvfs.Domain) uint64 {
	return d.Table().Min().FreqHz
}

// Userspace holds a caller-set frequency, like the sysfs scaling_setspeed
// interface.
type Userspace struct {
	freqHz uint64
}

// NewUserspace creates a userspace governor initially targeting freqHz.
func NewUserspace(freqHz uint64) *Userspace { return &Userspace{freqHz: freqHz} }

// Name implements Governor.
func (*Userspace) Name() string { return "userspace" }

// IntervalS implements Governor.
func (*Userspace) IntervalS() float64 { return 0.1 }

// Set changes the target frequency.
func (u *Userspace) Set(freqHz uint64) { u.freqHz = freqHz }

// Decide implements Governor.
func (u *Userspace) Decide(in Input, d *dvfs.Domain) uint64 { return u.freqHz }

// OndemandConfig parameterizes the ondemand governor.
type OndemandConfig struct {
	// UpThreshold is the load above which the governor jumps to the
	// maximum frequency (Linux default 0.80).
	UpThreshold float64
	// SamplingDownFactor delays down-scaling: after a jump to max the
	// governor holds for this many intervals before considering lower
	// frequencies (Linux default 1; mobile vendors often raise it).
	SamplingDownFactor int
	// IntervalS is the sampling period (Linux default ~10-100 ms).
	IntervalS float64
}

// DefaultOndemandConfig mirrors the Linux defaults.
func DefaultOndemandConfig() OndemandConfig {
	return OndemandConfig{UpThreshold: 0.80, SamplingDownFactor: 1, IntervalS: 0.02}
}

// Ondemand is the classic Linux ondemand governor: jump to max above
// the up-threshold, otherwise pick the lowest frequency that keeps load
// below the threshold.
type Ondemand struct {
	cfg  OndemandConfig
	hold int // intervals remaining at max after an up-jump
}

// NewOndemand validates cfg and builds the governor.
func NewOndemand(cfg OndemandConfig) (*Ondemand, error) {
	if cfg.UpThreshold <= 0 || cfg.UpThreshold > 1 || math.IsNaN(cfg.UpThreshold) {
		return nil, fmt.Errorf("governor: ondemand up-threshold must be in (0,1], got %v", cfg.UpThreshold)
	}
	if cfg.SamplingDownFactor < 1 {
		return nil, fmt.Errorf("governor: ondemand sampling-down factor must be >= 1, got %d", cfg.SamplingDownFactor)
	}
	if cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("governor: ondemand interval must be positive, got %v", cfg.IntervalS)
	}
	return &Ondemand{cfg: cfg}, nil
}

// Name implements Governor.
func (*Ondemand) Name() string { return "ondemand" }

// IntervalS implements Governor.
func (o *Ondemand) IntervalS() float64 { return o.cfg.IntervalS }

// Decide implements Governor.
func (o *Ondemand) Decide(in Input, d *dvfs.Domain) uint64 {
	load := in.Load()
	table := d.Table()
	if load >= o.cfg.UpThreshold {
		o.hold = o.cfg.SamplingDownFactor
		return table.Max().FreqHz
	}
	if o.hold > 0 {
		o.hold--
		return table.Max().FreqHz
	}
	// Busy cycles per core this interval, expressed at the current
	// frequency; choose the lowest OPP that keeps load under threshold.
	busyHz := load * float64(d.CurrentHz())
	want := busyHz / o.cfg.UpThreshold
	if want <= 0 {
		return table.Min().FreqHz
	}
	return table.Ceil(uint64(want)).FreqHz
}

// InteractiveConfig parameterizes the Android interactive governor.
type InteractiveConfig struct {
	// TargetLoad is the load the governor tries to sit at (Android
	// default 0.90).
	TargetLoad float64
	// HispeedFreqHz is the frequency boosted to on touch; 0 means the
	// table maximum.
	HispeedFreqHz uint64
	// AboveHispeedDelayS is the hold before climbing past hispeed.
	AboveHispeedDelayS float64
	// BoostHoldS is how long a touch boost floors the frequency
	// (input boost duration).
	BoostHoldS float64
	// IntervalS is the sampling period (Android default 20 ms).
	IntervalS float64
}

// DefaultInteractiveConfig mirrors common Android settings.
func DefaultInteractiveConfig() InteractiveConfig {
	return InteractiveConfig{
		TargetLoad:         0.90,
		AboveHispeedDelayS: 0.04,
		BoostHoldS:         0.5,
		IntervalS:          0.02,
	}
}

// Interactive is the Android interactive governor: on user input it
// immediately boosts to the hispeed frequency and holds it for the
// boost duration; otherwise it picks the lowest frequency keeping load
// at the target, waiting above-hispeed-delay before exceeding hispeed.
// The paper's Section I singles out exactly this behavior: "the
// interactive governor sets the frequency to the highest value whenever
// it detects user interactions".
type Interactive struct {
	cfg          InteractiveConfig
	boostUntil   float64
	hispeedSince float64 // time we first wanted above hispeed; -1 idle
}

// NewInteractive validates cfg and builds the governor.
func NewInteractive(cfg InteractiveConfig) (*Interactive, error) {
	if cfg.TargetLoad <= 0 || cfg.TargetLoad > 1 || math.IsNaN(cfg.TargetLoad) {
		return nil, fmt.Errorf("governor: interactive target load must be in (0,1], got %v", cfg.TargetLoad)
	}
	if cfg.AboveHispeedDelayS < 0 || cfg.BoostHoldS < 0 {
		return nil, fmt.Errorf("governor: interactive delays must be >= 0")
	}
	if cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("governor: interactive interval must be positive, got %v", cfg.IntervalS)
	}
	return &Interactive{cfg: cfg, hispeedSince: -1}, nil
}

// Name implements Governor.
func (*Interactive) Name() string { return "interactive" }

// IntervalS implements Governor.
func (g *Interactive) IntervalS() float64 { return g.cfg.IntervalS }

// hispeed returns the boost frequency for the domain's table.
func (g *Interactive) hispeed(d *dvfs.Domain) uint64 {
	if g.cfg.HispeedFreqHz != 0 {
		return d.Table().Floor(g.cfg.HispeedFreqHz).FreqHz
	}
	return d.Table().Max().FreqHz
}

// Decide implements Governor.
func (g *Interactive) Decide(in Input, d *dvfs.Domain) uint64 {
	hispeed := g.hispeed(d)
	if in.Touch {
		g.boostUntil = in.NowS + g.cfg.BoostHoldS
	}
	load := in.Load()
	busyHz := load * float64(d.CurrentHz())
	want := d.Table().Ceil(uint64(busyHz / g.cfg.TargetLoad)).FreqHz
	if busyHz == 0 {
		want = d.Table().Min().FreqHz
	}

	// Hold above-hispeed requests until the delay has been sustained.
	if want > hispeed {
		if g.hispeedSince < 0 {
			g.hispeedSince = in.NowS
		}
		if in.NowS-g.hispeedSince < g.cfg.AboveHispeedDelayS {
			want = hispeed
		}
	} else {
		g.hispeedSince = -1
	}

	// An active boost floors the choice at hispeed.
	if in.NowS < g.boostUntil && want < hispeed {
		want = hispeed
	}
	return want
}
