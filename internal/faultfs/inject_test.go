package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestInjectorPassthrough pins the clean path: an injector with no
// rules behaves exactly like the OS filesystem.
func TestInjectorPassthrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	if err := in.MkdirAll(filepath.Join(dir, "a", "b"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := in.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "a", "b", "x")
	if err := in.Rename(f.Name(), target); err != nil {
		t.Fatal(err)
	}
	data, err := in.ReadFile(target)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if in.InjectedTotal() != 0 {
		t.Errorf("clean passthrough injected %d faults", in.InjectedTotal())
	}
}

// TestInjectorFailNThenSucceed pins the fail-N-then-succeed script:
// the first N matching writes fail, later ones pass.
func TestInjectorFailNThenSucceed(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Add(Rule{Op: OpWrite, Count: 2})
	f, err := in.OpenAppend(filepath.Join(dir, "wal"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); !IsInjected(err) {
			t.Fatalf("write %d: %v, want injected error", i, err)
		}
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("post-exhaustion write: %v", err)
	}
	if got := in.Injected(OpWrite); got != 2 {
		t.Errorf("injected writes: %d, want 2", got)
	}
}

// TestInjectorTornWrite pins the torn-write effect: a prefix lands on
// disk, the call errors, and the file holds exactly the prefix.
func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Add(Rule{Op: OpWrite, Torn: true, TornAt: 3, Count: 1})
	path := filepath.Join(dir, "wal")
	f, err := in.OpenAppend(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !IsInjected(err) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("on-disk bytes after torn write: %q", data)
	}
}

// TestInjectorENOSPC pins errno fidelity: the injected ENOSPC matches
// syscall.ENOSPC through errors.Is and is still marked injected.
func TestInjectorENOSPC(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Add(Rule{Op: OpCreate, Err: ErrNoSpace})
	_, err := in.CreateTemp(dir, "t-*")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected ENOSPC not errno-matchable: %v", err)
	}
	if !IsInjected(err) {
		t.Fatal("injected ENOSPC not marked injected")
	}
}

// TestInjectorDroppedSync pins the fsync-drop effect: Sync reports
// success, the counter records the drop.
func TestInjectorDroppedSync(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Add(Rule{Op: OpSync})
	f, err := in.OpenAppend(filepath.Join(dir, "wal"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("dropped sync must report success, got %v", err)
	}
	if in.Injected(OpSync) != 1 {
		t.Errorf("sync drops: %d, want 1", in.Injected(OpSync))
	}
}

// TestInjectorSkipAndPathFilter pins rule arming and path scoping: a
// rule skips its first K matches and only matches scoped paths.
func TestInjectorSkipAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Add(Rule{Op: OpRead, PathContains: "journal", Skip: 1, Count: 1})
	jp := filepath.Join(dir, "journal", "wal")
	if err := os.MkdirAll(filepath.Dir(jp), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, []byte("j"), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "cell")
	if err := os.WriteFile(other, []byte("c"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := in.ReadFile(other); err != nil {
		t.Fatalf("out-of-scope read failed: %v", err)
	}
	if _, err := in.ReadFile(jp); err != nil {
		t.Fatalf("skip-armed first read failed: %v", err)
	}
	if _, err := in.ReadFile(jp); !IsInjected(err) {
		t.Fatalf("second scoped read: %v, want injected", err)
	}
	if _, err := in.ReadFile(jp); err != nil {
		t.Fatalf("count-exhausted read failed: %v", err)
	}
}

// TestInjectorLatencyOnly pins that pure-latency rules never fail the
// operation.
func TestInjectorLatencyOnly(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Add(Rule{Op: OpWrite, LatencyOnly: true, Latency: 1})
	f, err := in.OpenAppend(filepath.Join(dir, "wal"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("latency-only write failed: %v", err)
	}
	if in.Injected(OpWrite) != 1 {
		t.Errorf("latency injections not counted")
	}
}
