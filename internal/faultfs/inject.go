package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names an injectable filesystem operation class.
type Op string

// Injectable operation classes. Write covers both temp-file and
// append-file writes; Sync covers fsync on any open file.
const (
	OpMkdir  Op = "mkdir"
	OpRead   Op = "read"
	OpCreate Op = "create"
	OpOpen   Op = "open"
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpRename Op = "rename"
	OpRemove Op = "remove"
)

// ErrNoSpace is the injected ENOSPC. It wraps syscall.ENOSPC so code
// matching on the real errno sees the injected fault identically.
var ErrNoSpace = &injectedError{errors.Join(errors.New("faultfs: injected"), syscall.ENOSPC)}

// ErrInjected is the generic injected I/O failure.
var ErrInjected = &injectedError{errors.New("faultfs: injected write error")}

// injectedError marks a fault as synthetic so tests can tell injected
// failures from real ones (a real disk error in CI must still fail the
// test loudly).
type injectedError struct{ err error }

func (e *injectedError) Error() string { return e.err.Error() }
func (e *injectedError) Unwrap() error { return e.err }

// IsInjected reports whether err (or anything it wraps) was produced
// by an Injector.
func IsInjected(err error) bool {
	var ie *injectedError
	return errors.As(err, &ie)
}

// Rule is one scripted fault: it matches an operation class and a path
// substring, arms after Skip matching calls, fires Count times (Count
// <= 0 means forever), and applies its effect. Rules are evaluated in
// the order they were added; the first firing rule wins.
type Rule struct {
	// Op is the operation class the rule applies to.
	Op Op
	// PathContains narrows the rule to paths containing the substring
	// (matched against the slash-normalized path); empty matches all.
	PathContains string
	// Skip arms the rule only after this many matching calls pass.
	Skip int
	// Count caps how many times the rule fires; <= 0 never exhausts.
	Count int
	// Err is the error a firing rule returns (defaults to ErrInjected).
	// Exception: a firing OpSync rule with nil Err drops the fsync —
	// Sync reports success without syncing, the lost-durability fault.
	Err error
	// TornAt, for OpWrite with Torn set, writes only the first TornAt
	// bytes of the buffer before failing — a torn write.
	TornAt int
	// Torn marks the rule as a torn-write rule (so TornAt: 0 — tear
	// everything — is expressible).
	Torn bool
	// Latency is injected before the operation proceeds or fails; a
	// rule with only latency (no Err, not Torn, not OpSync-drop) slows
	// the call but lets it succeed.
	Latency time.Duration
	// LatencyOnly marks the rule as pure latency injection: the call
	// proceeds normally after the sleep.
	LatencyOnly bool

	seen  int // matching calls observed
	fired int // times the rule has fired
}

// Injector wraps an FS and applies scripted faults. All methods are
// safe for concurrent use.
type Injector struct {
	inner FS

	mu       sync.Mutex
	rules    []*Rule
	injected map[Op]int
}

// NewInjector wraps inner (nil means the real OS filesystem).
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS{}
	}
	return &Injector{inner: inner, injected: make(map[Op]int)}
}

// Add appends a rule to the script and returns the injector for
// chaining.
func (in *Injector) Add(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &r)
	return in
}

// Injected returns how many times faults fired for op.
func (in *Injector) Injected(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[op]
}

// InjectedTotal returns how many times faults fired across all ops.
func (in *Injector) InjectedTotal() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, v := range in.injected {
		n += v
	}
	return n
}

// check matches op/path against the script, returning the firing rule
// (nil when the operation proceeds cleanly). Pure-latency rules sleep
// here and report nil.
func (in *Injector) check(op Op, path string) *Rule {
	in.mu.Lock()
	var fired *Rule
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(filepath.ToSlash(path), r.PathContains) {
			continue
		}
		r.seen++
		if r.seen <= r.Skip {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		in.injected[op]++
		fired = r
		break
	}
	in.mu.Unlock()
	if fired == nil {
		return nil
	}
	if fired.Latency > 0 {
		time.Sleep(fired.Latency)
	}
	if fired.LatencyOnly {
		return nil
	}
	return fired
}

// ruleErr resolves a firing rule's error, defaulting to ErrInjected.
func ruleErr(r *Rule) error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(dir string, perm os.FileMode) error {
	if r := in.check(OpMkdir, dir); r != nil {
		return ruleErr(r)
	}
	return in.inner.MkdirAll(dir, perm)
}

// ReadFile implements FS.
func (in *Injector) ReadFile(path string) ([]byte, error) {
	if r := in.check(OpRead, path); r != nil {
		return nil, ruleErr(r)
	}
	return in.inner.ReadFile(path)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(dir string) ([]fs.DirEntry, error) {
	if r := in.check(OpRead, dir); r != nil {
		return nil, ruleErr(r)
	}
	return in.inner.ReadDir(dir)
}

// Stat implements FS (never injected: stats carry no durable state).
func (in *Injector) Stat(path string) (fs.FileInfo, error) { return in.inner.Stat(path) }

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := in.check(OpCreate, dir); r != nil {
		return nil, ruleErr(r)
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, in: in}, nil
}

// OpenAppend implements FS.
func (in *Injector) OpenAppend(path string, perm os.FileMode) (File, error) {
	if r := in.check(OpOpen, path); r != nil {
		return nil, ruleErr(r)
	}
	f, err := in.inner.OpenAppend(path, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, in: in}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if r := in.check(OpRename, newpath); r != nil {
		return ruleErr(r)
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(path string) error {
	if r := in.check(OpRemove, path); r != nil {
		return ruleErr(r)
	}
	return in.inner.Remove(path)
}

// Chmod implements FS (never injected).
func (in *Injector) Chmod(path string, perm os.FileMode) error {
	return in.inner.Chmod(path, perm)
}

// Truncate implements FS (never injected: it is itself the torn-tail
// repair path).
func (in *Injector) Truncate(path string, size int64) error {
	return in.inner.Truncate(path, size)
}

// injectFile wraps an open file, applying write and sync rules by the
// file's path.
type injectFile struct {
	inner File
	in    *Injector
}

// Write applies OpWrite rules: a torn rule writes a prefix of p then
// fails, an error rule fails without writing.
func (f *injectFile) Write(p []byte) (int, error) {
	r := f.in.check(OpWrite, f.inner.Name())
	if r == nil {
		return f.inner.Write(p)
	}
	if r.Torn {
		n := r.TornAt
		if n > len(p) {
			n = len(p)
		}
		if n < 0 {
			n = 0
		}
		wrote := 0
		if n > 0 {
			wrote, _ = f.inner.Write(p[:n])
		}
		return wrote, ruleErr(r)
	}
	return 0, ruleErr(r)
}

// Sync applies OpSync rules: a rule with an error fails the sync, a
// rule without one drops it (reports success, syncs nothing).
func (f *injectFile) Sync() error {
	r := f.in.check(OpSync, f.inner.Name())
	if r == nil {
		return f.inner.Sync()
	}
	if r.Err != nil {
		return r.Err
	}
	return nil // dropped fsync: the caller believes the bytes are durable
}

// Close closes the underlying file (never injected: close errors are
// not a distinct recovery path from write/sync errors here).
func (f *injectFile) Close() error { return f.inner.Close() }

// Name returns the underlying file's path.
func (f *injectFile) Name() string { return f.inner.Name() }
