// Package faultfs is the filesystem seam under the simd daemon's
// durable state (the two-tier result cache and the job journal): a
// small FS interface whose production implementation is the os
// package, plus a deterministic fault Injector that wraps any FS and
// fails operations on a script — fail-N-then-succeed writes, torn
// writes at byte offsets, ENOSPC, dropped fsyncs, injected latency.
//
// The seam is interface-based rather than build-tagged so chaos tests
// drive exactly the binary that ships: a test constructs an Injector
// over the real OS filesystem, hands it to the cache and journal, and
// asserts the daemon's end-to-end invariants (never a wrong result,
// always an explicit retry/degrade/fail) under every scripted fault.
package faultfs

import (
	"io/fs"
	"os"
)

// File is the writable-file surface the cache and journal need:
// sequential writes, durability points, close. os.File satisfies it.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface the simd daemon's durable state is
// written through. Implementations must be safe for concurrent use
// (the OS is; an Injector serializes its own bookkeeping).
type FS interface {
	// MkdirAll creates dir and parents, like os.MkdirAll.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory, like os.ReadDir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Stat stats a path, like os.Stat.
	Stat(path string) (fs.FileInfo, error)
	// CreateTemp opens a new temp file in dir, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens path for appending, creating it at perm when
	// absent.
	OpenAppend(path string, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath, like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a path, like os.Remove.
	Remove(path string) error
	// Chmod changes a file's mode, like os.Chmod.
	Chmod(path string, perm os.FileMode) error
	// Truncate truncates a file in place, like os.Truncate (the journal
	// uses it to drop a torn tail on open).
	Truncate(path string, size int64) error
}

// OS is the production FS: the os package, verbatim.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// Stat implements FS.
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// OpenAppend implements FS.
func (OS) OpenAppend(path string, perm os.FileMode) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Chmod implements FS.
func (OS) Chmod(path string, perm os.FileMode) error { return os.Chmod(path, perm) }

// Truncate implements FS.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
