// Package mibench reimplements the compute kernels of MiBench's
// "basicmath large" (BML) benchmark — cubic equation roots, integer
// square root, and degree/radian conversion — which the paper runs as
// the background task on the Odroid-XU3 (Section IV-C, citing Guthaus
// et al., WWC 2001).
//
// The kernels are real computations, not stubs: the simulator's BML
// workload executes them to produce checkable results, and a cycle-cost
// model converts completed operations into CPU cycle demand.
package mibench

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/snapbin"
)

// SolveCubic finds the real roots of a·x³ + b·x² + c·x + d = 0 using the
// trigonometric/Cardano method, mirroring MiBench's SolveCubic. The
// returned slice holds 1 or 3 real roots in unspecified order.
func SolveCubic(a, b, c, d float64) ([]float64, error) {
	if a == 0 {
		return nil, errors.New("mibench: leading coefficient must be non-zero")
	}
	if anyNaN(a, b, c, d) {
		return nil, errors.New("mibench: NaN coefficient")
	}
	a1 := b / a
	a2 := c / a
	a3 := d / a
	q := (a1*a1 - 3*a2) / 9
	r := (2*a1*a1*a1 - 9*a1*a2 + 27*a3) / 54
	disc := q*q*q - r*r

	if disc >= 0 {
		// Three real roots (possibly repeated).
		if q == 0 {
			// Triple root.
			return []float64{-a1 / 3}, nil
		}
		theta := math.Acos(clamp(r/math.Sqrt(q*q*q), -1, 1))
		sq := -2 * math.Sqrt(q)
		return []float64{
			sq*math.Cos(theta/3) - a1/3,
			sq*math.Cos((theta+2*math.Pi)/3) - a1/3,
			sq*math.Cos((theta+4*math.Pi)/3) - a1/3,
		}, nil
	}
	// One real root.
	e := math.Cbrt(math.Sqrt(-disc) + math.Abs(r))
	if r > 0 {
		e = -e
	}
	x := e + q/e - a1/3
	if e == 0 {
		x = -a1 / 3
	}
	return []float64{x}, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func anyNaN(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// ISqrt returns the integer square root of n (the largest s with
// s² ≤ n), using the bit-by-bit method MiBench's usqrt uses.
func ISqrt(n uint64) uint64 {
	var root, rem uint64
	rem = n
	var place uint64 = 1 << 62
	for place > rem {
		place >>= 2
	}
	for place != 0 {
		if rem >= root+place {
			rem -= root + place
			root += place << 1
		}
		root >>= 1
		place >>= 2
	}
	return root
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Cycle costs per operation for the cycle-demand model. The absolute
// values are arbitrary reference-core cycles; only their relative
// magnitudes matter to the simulator.
const (
	CyclesPerCubic = 900
	CyclesPerISqrt = 120
	CyclesPerConv  = 15
)

// Workload runs the BML operation mix incrementally. One "iteration"
// matches MiBench large: a batch of cubic solves, integer square roots,
// and angle conversions. Results are accumulated into a checksum so the
// work cannot be optimized away and can be verified deterministically.
type Workload struct {
	iterations uint64
	checksum   float64
	rootCount  uint64
}

// CyclesPerIteration is the modeled cost of one full BML iteration.
const CyclesPerIteration = 16*CyclesPerCubic + 64*CyclesPerISqrt + 360*CyclesPerConv

// RunIterations executes n BML iterations and returns the cycle cost
// they represent.
func (w *Workload) RunIterations(n uint64) uint64 {
	for i := uint64(0); i < n; i++ {
		w.runOne()
	}
	return n * CyclesPerIteration
}

func (w *Workload) runOne() {
	k := float64(w.iterations%100) + 1
	// 16 cubic solves with varying coefficients (mirrors the a1..a4
	// sweeps in basicmath's main loop).
	for j := 0; j < 16; j++ {
		roots, err := SolveCubic(1, -3-k/10, float64(j)-2, 4+k/20)
		if err == nil {
			w.rootCount += uint64(len(roots))
			for _, r := range roots {
				w.checksum += r
			}
		}
	}
	// 64 integer square roots.
	for j := uint64(0); j < 64; j++ {
		w.checksum += float64(ISqrt(w.iterations*1000 + j*j*37))
	}
	// 360 angle conversions both ways.
	for d := 0; d < 360; d++ {
		w.checksum += Rad2Deg(Deg2Rad(float64(d))) - float64(d)
	}
	w.iterations++
}

// Iterations reports how many full iterations have run.
func (w *Workload) Iterations() uint64 { return w.iterations }

// Checksum returns the accumulated result checksum; it depends only on
// the number of iterations run, making runs verifiable.
func (w *Workload) Checksum() float64 { return w.checksum }

// Roots reports how many cubic roots were found in total.
func (w *Workload) Roots() uint64 { return w.rootCount }

// SaveState serializes the workload's progress for engine snapshots.
func (w *Workload) SaveState(sw *snapbin.Writer) {
	sw.PutU64(w.iterations)
	sw.PutF64(w.checksum)
	sw.PutU64(w.rootCount)
}

// LoadState restores state saved by SaveState.
func (w *Workload) LoadState(r *snapbin.Reader) error {
	var next Workload
	next.iterations = r.U64()
	next.checksum = r.F64()
	next.rootCount = r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("mibench: workload: %w", err)
	}
	*w = next
	return nil
}
