package mibench

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSolveCubicThreeRealRoots(t *testing.T) {
	// (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6.
	roots, err := SolveCubic(1, -6, 11, -6)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3", len(roots))
	}
	sort.Float64s(roots)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(roots[i]-want[i]) > 1e-9 {
			t.Errorf("root %d = %v, want %v", i, roots[i], want[i])
		}
	}
}

func TestSolveCubicSingleRealRoot(t *testing.T) {
	// x³ + x + 1 has one real root ≈ -0.6823278.
	roots, err := SolveCubic(1, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if math.Abs(roots[0]+0.6823278038280193) > 1e-9 {
		t.Errorf("root = %v", roots[0])
	}
}

func TestSolveCubicTripleRoot(t *testing.T) {
	// (x-2)³ = x³ - 6x² + 12x - 8.
	roots, err := SolveCubic(1, -6, 12, -8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if math.Abs(r-2) > 1e-6 {
			t.Errorf("triple root = %v, want 2", r)
		}
	}
}

func TestSolveCubicValidation(t *testing.T) {
	if _, err := SolveCubic(0, 1, 1, 1); err == nil {
		t.Error("expected error for zero leading coefficient")
	}
	if _, err := SolveCubic(1, math.NaN(), 0, 0); err == nil {
		t.Error("expected error for NaN coefficient")
	}
}

// Property: every returned root satisfies the cubic to high accuracy.
func TestSolveCubicRootsSatisfyEquation(t *testing.T) {
	f := func(bi, ci, di int8) bool {
		b, c, d := float64(bi)/4, float64(ci)/4, float64(di)/4
		roots, err := SolveCubic(1, b, c, d)
		if err != nil {
			return false
		}
		for _, x := range roots {
			residual := x*x*x + b*x*x + c*x + d
			// Scale tolerance with root magnitude.
			tol := 1e-6 * (1 + math.Abs(x*x*x))
			if math.Abs(residual) > tol {
				return false
			}
		}
		return len(roots) == 1 || len(roots) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestISqrtExact(t *testing.T) {
	cases := map[uint64]uint64{
		0: 0, 1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3,
		15: 3, 16: 4, 99: 9, 100: 10, 1 << 32: 1 << 16,
		18446744073709551615: 4294967295,
	}
	for n, want := range cases {
		if got := ISqrt(n); got != want {
			t.Errorf("ISqrt(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: ISqrt(n)² ≤ n < (ISqrt(n)+1)².
func TestISqrtDefinition(t *testing.T) {
	f := func(n uint64) bool {
		s := ISqrt(n)
		if s*s > n {
			return false
		}
		// Guard overflow of (s+1)².
		if s+1 <= 4294967295 && (s+1)*(s+1) <= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAngleConversionRoundTrip(t *testing.T) {
	for d := -720.0; d <= 720; d += 45 {
		if got := Rad2Deg(Deg2Rad(d)); math.Abs(got-d) > 1e-9 {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
	if math.Abs(Deg2Rad(180)-math.Pi) > 1e-12 {
		t.Errorf("Deg2Rad(180) = %v", Deg2Rad(180))
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	var w1, w2 Workload
	w1.RunIterations(50)
	w2.RunIterations(50)
	if w1.Checksum() != w2.Checksum() {
		t.Errorf("checksums differ: %v vs %v", w1.Checksum(), w2.Checksum())
	}
	if w1.Iterations() != 50 {
		t.Errorf("iterations = %d", w1.Iterations())
	}
	if w1.Roots() == 0 {
		t.Error("expected some cubic roots")
	}
}

func TestWorkloadIncrementalMatchesBatch(t *testing.T) {
	var batch, inc Workload
	batch.RunIterations(30)
	for i := 0; i < 30; i++ {
		inc.RunIterations(1)
	}
	if batch.Checksum() != inc.Checksum() {
		t.Errorf("incremental checksum %v != batch %v", inc.Checksum(), batch.Checksum())
	}
}

func TestWorkloadCycleCost(t *testing.T) {
	var w Workload
	got := w.RunIterations(7)
	if got != 7*CyclesPerIteration {
		t.Errorf("cycles = %d, want %d", got, 7*CyclesPerIteration)
	}
	if CyclesPerIteration <= 0 {
		t.Error("cycle cost must be positive")
	}
}

func BenchmarkSolveCubic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = SolveCubic(1, -6, 11, -6)
	}
}

func BenchmarkISqrt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ISqrt(uint64(i)*2654435761 + 12345)
	}
}

func BenchmarkWorkloadIteration(b *testing.B) {
	var w Workload
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunIterations(1)
	}
}
