package thermgov

import (
	"fmt"

	"repro/internal/snapbin"
)

// Snapshot support. Every shipped thermal governor implements SaveState
// and LoadState — the stateless ones as no-ops — so the sim layer can
// require the interface on all of them and fail loudly if a future
// stateful governor forgets to implement it, instead of silently
// dropping its state from snapshots.

// SaveState implements the sim snapshot interface (stateless: no-op).
func (None) SaveState(w *snapbin.Writer) {}

// LoadState implements the sim snapshot interface (stateless: no-op).
func (None) LoadState(r *snapbin.Reader) error { return nil }

// SaveState implements the sim snapshot interface. StepWise keeps no
// state of its own: its "memory" lives in the domain caps, which the
// dvfs layer serializes.
func (*StepWise) SaveState(w *snapbin.Writer) {}

// LoadState implements the sim snapshot interface (stateless: no-op).
func (*StepWise) LoadState(r *snapbin.Reader) error { return nil }

// SaveState serializes the IPA PID integrator. The req slice is
// per-tick scratch, recomputed on every Control call.
func (g *IPA) SaveState(w *snapbin.Writer) { w.PutF64(g.integral) }

// LoadState restores state saved by SaveState.
func (g *IPA) LoadState(r *snapbin.Reader) error {
	integral := r.F64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("thermgov: ipa: %w", err)
	}
	g.integral = integral
	return nil
}
