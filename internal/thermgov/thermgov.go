// Package thermgov implements the thermal governors the paper compares
// against: the disabled governor (the paper's "without throttling"
// baseline), the Linux step-wise trip-point governor, and a simplified
// ARM Intelligent Power Allocation (IPA) governor — the combination the
// Odroid's Linux 3.10 kernel ships ("thermal trip points and ARM
// intelligent power allocation", Section IV-C).
//
// Thermal governors act by imposing frequency caps on dvfs domains;
// the cpufreq governors keep requesting frequencies underneath those
// caps. That separation reproduces the paper's observation that the two
// governor kinds can fight each other.
package thermgov

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// DomainState is the per-domain view a thermal governor controls with.
type DomainState struct {
	// Domain is the frequency domain to cap.
	Domain *dvfs.Domain
	// Model converts power budgets to frequencies (IPA needs it).
	Model *power.DomainModel
	// UtilCores is the domain's recent busy capacity in cores.
	UtilCores float64
	// TempK is the domain's sensor temperature in Kelvin.
	TempK float64
	// Cores is the physical core count; OnlineCores the current count.
	Cores, OnlineCores int
	// SetOnlineCores, when non-nil, lets the governor hot-plug cores —
	// the last-resort action of Section I ("governors resort to powering
	// the cores off"). Implementations clamp to [1, Cores].
	SetOnlineCores func(n int)
}

// Governor is a thermal management policy.
type Governor interface {
	// Name identifies the governor.
	Name() string
	// IntervalS is the polling period in seconds.
	IntervalS() float64
	// Control inspects temperatures and adjusts domain caps. maxTempK is
	// the platform sensor reading; states carry per-domain zone detail.
	// Governors act on the hottest of all of these, like the kernel's
	// per-zone thermal framework.
	//
	// The caller owns states and reuses it between ticks, overwriting
	// the dynamic fields (UtilCores, TempK, OnlineCores) in place:
	// implementations must not retain the slice or its elements past
	// the call — copy anything kept as history.
	Control(nowS, maxTempK float64, states []DomainState)
}

// hottest returns the maximum of the platform sensor and every domain
// zone temperature.
func hottest(maxTempK float64, states []DomainState) float64 {
	h := maxTempK
	for _, s := range states {
		if s.TempK > h {
			h = s.TempK
		}
	}
	return h
}

// None is the disabled thermal governor: it removes any caps and never
// throttles. It is the paper's "without throttling" experimental arm.
type None struct{}

// Name implements Governor.
func (None) Name() string { return "none" }

// IntervalS implements Governor.
func (None) IntervalS() float64 { return 0.1 }

// Control implements Governor.
func (None) Control(nowS, maxTempK float64, states []DomainState) {
	for _, s := range states {
		s.Domain.SetCap(0)
	}
}

// StepWiseConfig parameterizes the step-wise governor.
type StepWiseConfig struct {
	// TripK is the passive trip temperature in Kelvin: above it the
	// governor steps frequencies down one OPP per poll.
	TripK float64
	// HysteresisK is how far below the trip the temperature must fall
	// before caps step back up.
	HysteresisK float64
	// CriticalK forces every domain to its minimum OPP immediately
	// (0 disables the critical trip).
	CriticalK float64
	// IntervalS is the polling period (Linux polls passive trips every
	// 100 ms by default).
	IntervalS float64
}

// DefaultStepWiseConfig mirrors a typical phone configuration with a
// passive trip well below the junction limit.
func DefaultStepWiseConfig() StepWiseConfig {
	return StepWiseConfig{
		TripK:       273.15 + 70,
		HysteresisK: 3,
		CriticalK:   273.15 + 95,
		IntervalS:   0.1,
	}
}

// StepWise is the Linux step_wise thermal governor: while any sensor is
// above the passive trip it lowers every domain's frequency cap by one
// OPP per poll; once the temperature falls below trip minus hysteresis
// it raises caps one OPP per poll until they clear. Throttling the whole
// system — every domain, not just the culprit — is exactly the behavior
// the paper's Section III criticizes.
type StepWise struct {
	cfg StepWiseConfig
}

// NewStepWise validates cfg and builds the governor.
func NewStepWise(cfg StepWiseConfig) (*StepWise, error) {
	if cfg.TripK <= 0 || math.IsNaN(cfg.TripK) {
		return nil, fmt.Errorf("thermgov: trip temperature must be positive Kelvin, got %v", cfg.TripK)
	}
	if cfg.HysteresisK < 0 || math.IsNaN(cfg.HysteresisK) {
		return nil, fmt.Errorf("thermgov: hysteresis must be >= 0, got %v", cfg.HysteresisK)
	}
	if cfg.CriticalK != 0 && cfg.CriticalK <= cfg.TripK {
		return nil, fmt.Errorf("thermgov: critical trip %v must exceed passive trip %v", cfg.CriticalK, cfg.TripK)
	}
	if cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("thermgov: interval must be positive, got %v", cfg.IntervalS)
	}
	return &StepWise{cfg: cfg}, nil
}

// Name implements Governor.
func (*StepWise) Name() string { return "step-wise" }

// IntervalS implements Governor.
func (g *StepWise) IntervalS() float64 { return g.cfg.IntervalS }

// Control implements Governor.
func (g *StepWise) Control(nowS, maxTempK float64, states []DomainState) {
	maxTempK = hottest(maxTempK, states)
	if g.cfg.CriticalK != 0 && maxTempK >= g.cfg.CriticalK {
		// Critical trip: minimum frequency everywhere and power cores
		// off down to one per cluster, the paper's extreme case.
		for _, s := range states {
			s.Domain.SetCap(s.Domain.Table().Min().FreqHz)
			if s.SetOnlineCores != nil {
				s.SetOnlineCores(1)
			}
		}
		return
	}
	switch {
	case maxTempK > g.cfg.TripK:
		for _, s := range states {
			stepDown(s.Domain)
		}
	case maxTempK < g.cfg.TripK-g.cfg.HysteresisK:
		for _, s := range states {
			// Recovery order mirrors the kernel: cores come back online
			// before frequency caps lift.
			if s.SetOnlineCores != nil && s.OnlineCores < s.Cores {
				s.SetOnlineCores(s.OnlineCores + 1)
				continue
			}
			stepUp(s.Domain)
		}
	}
	// Inside the hysteresis band: hold current caps.
}

// stepDown lowers the domain cap by one OPP (bounded at table min).
func stepDown(d *dvfs.Domain) {
	table := d.Table()
	cur := d.Cap()
	if cur == 0 {
		cur = table.Max().FreqHz
	}
	i := table.IndexOf(table.Floor(cur).FreqHz)
	if i > 0 {
		i--
	}
	d.SetCap(table.At(i).FreqHz)
}

// stepUp raises the domain cap by one OPP, removing it at table max.
func stepUp(d *dvfs.Domain) {
	cur := d.Cap()
	if cur == 0 {
		return
	}
	table := d.Table()
	i := table.IndexOf(table.Floor(cur).FreqHz)
	if i < 0 {
		i = 0
	}
	if i+1 >= table.Len() {
		d.SetCap(0)
		return
	}
	d.SetCap(table.At(i + 1).FreqHz)
}

// IPAConfig parameterizes the Intelligent Power Allocation governor.
type IPAConfig struct {
	// ControlTempK is the temperature setpoint the PID regulates to.
	ControlTempK float64
	// SustainablePowerW is the power the platform can dissipate at the
	// control temperature — the budget when the error is zero.
	SustainablePowerW float64
	// KPo is the proportional gain applied while under the setpoint
	// (allows boosting); KPu applies while over it (throttles harder).
	// ARM's implementation uses this asymmetric pair.
	KPo, KPu float64
	// KI is the integral gain; the integrator is clamped to avoid windup.
	KI float64
	// IntegralClampW bounds the integral term's contribution.
	IntegralClampW float64
	// IntervalS is the control period (ARM default 100 ms).
	IntervalS float64
	// Weights optionally biases the budget split per domain name, like
	// the weighted allocation of ARM's IPA (a device-tree parameter on
	// real boards; GPUs are commonly favored so graphics QoS survives
	// CPU-driven heat). Missing entries default to 1.
	Weights map[string]float64
}

// DefaultIPAConfig returns gains sized for the Odroid-class platform
// models in this repository.
func DefaultIPAConfig() IPAConfig {
	return IPAConfig{
		ControlTempK:      273.15 + 70,
		SustainablePowerW: 2.5,
		KPo:               0.4,
		KPu:               0.8,
		KI:                0.02,
		IntegralClampW:    1.0,
		IntervalS:         0.1,
	}
}

// IPA is a simplified ARM Intelligent Power Allocation governor: a PID
// loop converts the temperature error into a total power budget, the
// budget is divided among domains proportionally to their requested
// power, and each domain's grant is inverted into a frequency cap
// through its power model.
type IPA struct {
	cfg      IPAConfig
	integral float64
	req      []float64 // reused per-domain request buffer; Control runs every tick
}

// NewIPA validates cfg and builds the governor.
func NewIPA(cfg IPAConfig) (*IPA, error) {
	switch {
	case cfg.ControlTempK <= 0 || math.IsNaN(cfg.ControlTempK):
		return nil, fmt.Errorf("thermgov: IPA control temperature must be positive Kelvin, got %v", cfg.ControlTempK)
	case cfg.SustainablePowerW <= 0:
		return nil, fmt.Errorf("thermgov: IPA sustainable power must be positive, got %v", cfg.SustainablePowerW)
	case cfg.KPo < 0 || cfg.KPu < 0 || cfg.KI < 0:
		return nil, fmt.Errorf("thermgov: IPA gains must be >= 0")
	case cfg.IntegralClampW < 0:
		return nil, fmt.Errorf("thermgov: IPA integral clamp must be >= 0")
	case cfg.IntervalS <= 0:
		return nil, fmt.Errorf("thermgov: IPA interval must be positive, got %v", cfg.IntervalS)
	}
	for name, w := range cfg.Weights {
		if w <= 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("thermgov: IPA weight for %q must be positive, got %v", name, w)
		}
	}
	return &IPA{cfg: cfg}, nil
}

// Name implements Governor.
func (*IPA) Name() string { return "ipa" }

// IntervalS implements Governor.
func (g *IPA) IntervalS() float64 { return g.cfg.IntervalS }

// Budget returns the PID power budget for the given hottest temperature,
// updating the integrator. Exposed for tests and the ablation bench.
func (g *IPA) Budget(maxTempK float64) float64 {
	err := g.cfg.ControlTempK - maxTempK // positive when cool
	kp := g.cfg.KPo
	if err < 0 {
		kp = g.cfg.KPu
	}
	// Integrate only near/over the setpoint so long cool periods don't
	// wind the budget up without bound.
	if err < 5 {
		g.integral += g.cfg.KI * err
		if g.integral > g.cfg.IntegralClampW {
			g.integral = g.cfg.IntegralClampW
		}
		if g.integral < -g.cfg.IntegralClampW {
			g.integral = -g.cfg.IntegralClampW
		}
	}
	budget := g.cfg.SustainablePowerW + kp*err + g.integral
	if budget < 0 {
		budget = 0
	}
	return budget
}

// Control implements Governor: split the budget proportionally to each
// domain's requested power (its power at the maximum OPP under current
// utilization) and cap each domain at the highest OPP within its grant.
func (g *IPA) Control(nowS, maxTempK float64, states []DomainState) {
	budget := g.Budget(hottest(maxTempK, states))
	if len(states) == 0 {
		return
	}
	if cap(g.req) < len(states) {
		g.req = make([]float64, len(states))
	}
	req := g.req[:len(states)]
	for i := range req {
		req[i] = 0
	}
	total := 0.0
	for i, s := range states {
		if s.Model == nil {
			continue
		}
		w := 1.0
		if ww, ok := g.cfg.Weights[s.Domain.Name()]; ok {
			w = ww
		}
		req[i] = w * s.Model.Total(s.Domain.Table().Max(), s.UtilCores, s.TempK)
		total += req[i]
	}
	if total <= 0 {
		for _, s := range states {
			s.Domain.SetCap(0)
		}
		return
	}
	if total <= budget {
		// Everyone fits at maximum: remove caps.
		for _, s := range states {
			s.Domain.SetCap(0)
		}
		return
	}
	for i, s := range states {
		if s.Model == nil {
			continue
		}
		grant := budget * req[i] / total
		opp := s.Model.MaxFreqWithinBudget(s.Domain.Table(), s.UtilCores, s.TempK, grant)
		if opp.FreqHz >= s.Domain.Table().Max().FreqHz {
			s.Domain.SetCap(0)
		} else {
			s.Domain.SetCap(opp.FreqHz)
		}
	}
}
