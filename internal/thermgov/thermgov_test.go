package thermgov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/thermal"
)

func gpuTable() *dvfs.Table {
	return dvfs.MustTable(
		dvfs.OPP{FreqHz: 180e6, VoltageV: 0.80},
		dvfs.OPP{FreqHz: 305e6, VoltageV: 0.85},
		dvfs.OPP{FreqHz: 390e6, VoltageV: 0.90},
		dvfs.OPP{FreqHz: 450e6, VoltageV: 0.95},
		dvfs.OPP{FreqHz: 510e6, VoltageV: 1.00},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.075},
	)
}

func testModel() *power.DomainModel {
	return &power.DomainModel{
		Name:    "gpu",
		CeffF:   2e-9,
		IdleW:   0.05,
		Leakage: power.LeakageParams{K: 1e-6, Q: 1000},
	}
}

func domainState(t *testing.T, tempC float64) DomainState {
	t.Helper()
	d, err := dvfs.NewDomain("gpu", gpuTable(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Request(0, d.Table().Max().FreqHz)
	return DomainState{Domain: d, Model: testModel(), UtilCores: 1, TempK: thermal.ToKelvin(tempC)}
}

func TestNoneRemovesCaps(t *testing.T) {
	s := domainState(t, 90)
	s.Domain.SetCap(305e6)
	None{}.Control(0, thermal.ToKelvin(90), []DomainState{s})
	if s.Domain.Cap() != 0 {
		t.Errorf("cap = %d, want removed", s.Domain.Cap())
	}
}

func TestStepWiseValidation(t *testing.T) {
	bad := []StepWiseConfig{
		{TripK: 0, IntervalS: 0.1},
		{TripK: math.NaN(), IntervalS: 0.1},
		{TripK: 340, HysteresisK: -1, IntervalS: 0.1},
		{TripK: 340, CriticalK: 330, IntervalS: 0.1}, // critical below trip
		{TripK: 340, IntervalS: 0},
	}
	for i, cfg := range bad {
		if _, err := NewStepWise(cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := NewStepWise(DefaultStepWiseConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestStepWiseStepsDownAboveTrip(t *testing.T) {
	g, _ := NewStepWise(DefaultStepWiseConfig())
	s := domainState(t, 75) // above the 70°C trip
	hot := thermal.ToKelvin(75)
	g.Control(0, hot, []DomainState{s})
	if s.Domain.Cap() != 510e6 {
		t.Fatalf("first step: cap = %d, want 510MHz", s.Domain.Cap())
	}
	g.Control(0.1, hot, []DomainState{s})
	if s.Domain.Cap() != 450e6 {
		t.Fatalf("second step: cap = %d, want 450MHz", s.Domain.Cap())
	}
	// Keep stepping; the cap must bottom out at table min, not undershoot.
	for i := 0; i < 10; i++ {
		g.Control(float64(i), hot, []DomainState{s})
	}
	if s.Domain.Cap() != 180e6 {
		t.Errorf("cap = %d, want bottomed at 180MHz", s.Domain.Cap())
	}
}

func TestStepWiseHysteresisHolds(t *testing.T) {
	g, _ := NewStepWise(DefaultStepWiseConfig())
	s := domainState(t, 75)
	g.Control(0, s.TempK, []DomainState{s})
	capAfterThrottle := s.Domain.Cap()
	// Temperature falls to 69°C: inside the hysteresis band [67, 70].
	s.TempK = thermal.ToKelvin(69)
	g.Control(0.1, s.TempK, []DomainState{s})
	if s.Domain.Cap() != capAfterThrottle {
		t.Errorf("cap changed inside hysteresis band: %d", s.Domain.Cap())
	}
	// Below 67°C: step back up and eventually clear.
	s.TempK = thermal.ToKelvin(60)
	g.Control(0.2, s.TempK, []DomainState{s})
	if s.Domain.Cap() != 600e6 {
		t.Errorf("cap = %d, want stepped up to 600MHz", s.Domain.Cap())
	}
	g.Control(0.3, s.TempK, []DomainState{s})
	if s.Domain.Cap() != 0 {
		t.Errorf("cap = %d, want removed at table max", s.Domain.Cap())
	}
}

func TestStepWiseCriticalForcesMin(t *testing.T) {
	g, _ := NewStepWise(DefaultStepWiseConfig())
	s := domainState(t, 96)
	g.Control(0, thermal.ToKelvin(96), []DomainState{s})
	if s.Domain.Cap() != 180e6 {
		t.Errorf("cap = %d, want table min at critical trip", s.Domain.Cap())
	}
}

func TestStepWiseThrottlesAllDomains(t *testing.T) {
	// The step-wise governor's whole-system throttling is the behavior
	// the paper criticizes: every domain is capped even if only one is
	// hot.
	g, _ := NewStepWise(DefaultStepWiseConfig())
	a := domainState(t, 75)
	b := domainState(t, 40) // cool domain still gets throttled
	g.Control(0, thermal.ToKelvin(75), []DomainState{a, b})
	if a.Domain.Cap() == 0 || b.Domain.Cap() == 0 {
		t.Errorf("caps = (%d, %d), want both throttled", a.Domain.Cap(), b.Domain.Cap())
	}
}

func TestIPAValidation(t *testing.T) {
	bad := []IPAConfig{
		{ControlTempK: 0, SustainablePowerW: 1, IntervalS: 0.1},
		{ControlTempK: 340, SustainablePowerW: 0, IntervalS: 0.1},
		{ControlTempK: 340, SustainablePowerW: 1, KPo: -1, IntervalS: 0.1},
		{ControlTempK: 340, SustainablePowerW: 1, IntegralClampW: -1, IntervalS: 0.1},
		{ControlTempK: 340, SustainablePowerW: 1, IntervalS: 0},
	}
	for i, cfg := range bad {
		if _, err := NewIPA(cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := NewIPA(DefaultIPAConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestIPABudgetTracksError(t *testing.T) {
	cfg := DefaultIPAConfig()
	g, _ := NewIPA(cfg)
	at := func(tempC float64) float64 {
		fresh, _ := NewIPA(cfg)
		return fresh.Budget(thermal.ToKelvin(tempC))
	}
	cool := at(40)
	atSet := at(70)
	hot := at(90)
	if !(cool > atSet && atSet > hot) {
		t.Errorf("budget ordering wrong: cool=%v set=%v hot=%v", cool, atSet, hot)
	}
	if math.Abs(atSet-cfg.SustainablePowerW) > 0.2 {
		t.Errorf("budget at setpoint = %v, want ~sustainable %v", atSet, cfg.SustainablePowerW)
	}
	_ = g
}

func TestIPABudgetNeverNegative(t *testing.T) {
	g, _ := NewIPA(DefaultIPAConfig())
	for tempC := 70.0; tempC < 200; tempC += 10 {
		if b := g.Budget(thermal.ToKelvin(tempC)); b < 0 {
			t.Errorf("budget at %v°C = %v, want >= 0", tempC, b)
		}
	}
}

func TestIPAIntegralClamped(t *testing.T) {
	cfg := DefaultIPAConfig()
	g, _ := NewIPA(cfg)
	// Hold slightly hot for many periods: integral must saturate, so the
	// budget converges instead of diverging.
	var prev float64
	for i := 0; i < 1000; i++ {
		prev = g.Budget(cfg.ControlTempK + 2)
	}
	again := g.Budget(cfg.ControlTempK + 2)
	if math.Abs(again-prev) > 1e-9 {
		t.Errorf("budget still moving after 1000 iterations: %v -> %v", prev, again)
	}
}

func TestIPACapsUnderBudget(t *testing.T) {
	g, _ := NewIPA(DefaultIPAConfig())
	s := domainState(t, 90) // 20°C over: tight budget
	g.Control(0, s.TempK, []DomainState{s})
	if s.Domain.Cap() == 0 {
		t.Fatal("hot domain should be capped")
	}
	if s.Domain.Cap() >= 600e6 {
		t.Errorf("cap = %d, want below table max", s.Domain.Cap())
	}
}

func TestIPARemovesCapsWhenCool(t *testing.T) {
	g, _ := NewIPA(DefaultIPAConfig())
	s := domainState(t, 35)
	s.Domain.SetCap(180e6)
	s.UtilCores = 0.1
	g.Control(0, s.TempK, []DomainState{s})
	if s.Domain.Cap() != 0 {
		t.Errorf("cap = %d, want removed when far under budget", s.Domain.Cap())
	}
}

func TestIPASplitsProportionally(t *testing.T) {
	g, _ := NewIPA(DefaultIPAConfig())
	hungry := domainState(t, 85)
	hungry.UtilCores = 4
	light := domainState(t, 85)
	light.UtilCores = 0.2
	g.Control(0, thermal.ToKelvin(85), []DomainState{hungry, light})
	// The hungry domain requested more, so its grant — and its cap —
	// must be at least as high as the light one's.
	hc, lc := hungry.Domain.Cap(), light.Domain.Cap()
	if hc == 0 {
		hc = 600e6
	}
	if lc == 0 {
		lc = 600e6
	}
	if hc < lc {
		t.Errorf("hungry cap %d < light cap %d; proportional split violated", hc, lc)
	}
}

func TestIPAZeroRequestRemovesCaps(t *testing.T) {
	g, _ := NewIPA(DefaultIPAConfig())
	s := domainState(t, 90)
	s.Model = nil
	s.Domain.SetCap(305e6)
	g.Control(0, s.TempK, []DomainState{s})
	if s.Domain.Cap() != 0 {
		t.Errorf("cap = %d, want removed when nothing requests power", s.Domain.Cap())
	}
}

// Property: whatever the temperature trajectory, step-wise caps are
// always valid OPP frequencies or zero.
func TestStepWiseCapAlwaysValidOPP(t *testing.T) {
	table := gpuTable()
	f := func(temps []float64) bool {
		g, _ := NewStepWise(DefaultStepWiseConfig())
		d, _ := dvfs.NewDomain("gpu", table, 0)
		s := DomainState{Domain: d, Model: testModel(), UtilCores: 1}
		for i, raw := range temps {
			tempK := 280 + math.Abs(math.Mod(raw, 120))
			s.TempK = tempK
			g.Control(float64(i), tempK, []DomainState{s})
			if c := d.Cap(); c != 0 && table.IndexOf(c) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: IPA caps are always valid OPPs or zero, and the budget is
// always finite and non-negative.
func TestIPACapAlwaysValidOPP(t *testing.T) {
	table := gpuTable()
	f := func(temps []float64, utils []float64) bool {
		g, _ := NewIPA(DefaultIPAConfig())
		d, _ := dvfs.NewDomain("gpu", table, 0)
		s := DomainState{Domain: d, Model: testModel()}
		for i, raw := range temps {
			tempK := 280 + math.Abs(math.Mod(raw, 120))
			s.TempK = tempK
			if len(utils) > 0 {
				s.UtilCores = math.Abs(math.Mod(utils[i%len(utils)], 4))
			}
			g.Control(float64(i), tempK, []DomainState{s})
			if c := d.Cap(); c != 0 && table.IndexOf(c) < 0 {
				return false
			}
			if b := g.Budget(tempK); b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
