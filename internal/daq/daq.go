// Package daq models the external power-measurement instrument of the
// paper's Nexus 6P experiments: a National Instruments PXIe-4081 data
// acquisition system sampling total platform power at 1 kHz. The model
// adds Gaussian sensor noise and ADC quantization to the true power and
// records the resulting samples, so downstream consumers see the same
// data products a real DAQ produces.
package daq

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/detrand"
	"repro/internal/snapbin"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes a DAQ channel.
type Config struct {
	// SampleRateHz is the acquisition rate; the paper samples at 1 kHz.
	SampleRateHz float64
	// NoiseSigmaW is the standard deviation of additive Gaussian noise.
	NoiseSigmaW float64
	// ResolutionW is the ADC quantization step (0 disables quantization).
	ResolutionW float64
	// Seed seeds the channel's private noise generator.
	Seed int64
}

// DefaultConfig mirrors the paper's instrument: 1 kHz sampling with
// milliwatt-class resolution and small noise.
func DefaultConfig() Config {
	return Config{
		SampleRateHz: 1000,
		NoiseSigmaW:  0.002,
		ResolutionW:  0.001,
	}
}

// Channel is one acquisition channel. Create it with New and feed it
// the true signal with Observe; it samples on its own clock.
type Channel struct {
	cfg    Config
	rng    *rand.Rand
	src    *detrand.Source
	period float64
	n      int64 // samples taken; the next sample is at n*period
	series *trace.Series
	agg    stats.Running
}

// New validates cfg and creates a channel recording into a series with
// the given name.
func New(name string, cfg Config) (*Channel, error) {
	if cfg.SampleRateHz <= 0 || math.IsNaN(cfg.SampleRateHz) {
		return nil, fmt.Errorf("daq: sample rate must be positive, got %v", cfg.SampleRateHz)
	}
	if cfg.NoiseSigmaW < 0 || math.IsNaN(cfg.NoiseSigmaW) {
		return nil, fmt.Errorf("daq: noise sigma must be >= 0, got %v", cfg.NoiseSigmaW)
	}
	if cfg.ResolutionW < 0 || math.IsNaN(cfg.ResolutionW) {
		return nil, fmt.Errorf("daq: resolution must be >= 0, got %v", cfg.ResolutionW)
	}
	src := detrand.New(cfg.Seed)
	return &Channel{
		cfg:    cfg,
		rng:    rand.New(src),
		src:    src,
		period: 1 / cfg.SampleRateHz,
		series: trace.NewSeries(name, "W"),
	}, nil
}

// Observe presents the true signal value over the simulation interval
// [nowS, nowS+dt). The channel takes however many of its own samples
// fall inside the interval (zero-order hold of the true value within
// one simulator step, which is accurate for dt at or below the sample
// period).
func (c *Channel) Observe(nowS, dt, trueW float64) error {
	if dt <= 0 || math.IsNaN(dt) {
		return fmt.Errorf("daq: observe dt must be positive, got %v", dt)
	}
	if math.IsNaN(trueW) {
		return fmt.Errorf("daq: NaN power at t=%v", nowS)
	}
	// The sample clock is n*period with integer n, so float error cannot
	// accumulate across long runs.
	for {
		sampleT := float64(c.n) * c.period
		if sampleT >= nowS+dt-1e-12 {
			break
		}
		v := trueW
		if c.cfg.NoiseSigmaW > 0 {
			v += c.rng.NormFloat64() * c.cfg.NoiseSigmaW
		}
		if c.cfg.ResolutionW > 0 {
			v = math.Round(v/c.cfg.ResolutionW) * c.cfg.ResolutionW
		}
		c.series.MustAppend(sampleT, v)
		c.agg.Add(v)
		c.n++
	}
	return nil
}

// Series returns the recorded sample series (live; do not append).
func (c *Channel) Series() *trace.Series { return c.series }

// SampleCount reports how many samples were acquired.
func (c *Channel) SampleCount() int { return c.series.Len() }

// MeanW reports the mean of acquired samples (0 when none).
func (c *Channel) MeanW() float64 { return c.agg.Mean() }

// MaxW reports the largest acquired sample (0 when none).
func (c *Channel) MaxW() float64 { return c.agg.Max() }

// SaveState serializes the channel's sampling clock, noise RNG position,
// and running aggregate. The recorded series itself is not part of the
// snapshot: restored channels resume sampling with empty series storage,
// and callers that need full series continuity must re-record.
func (c *Channel) SaveState(w *snapbin.Writer) {
	seed, draws := c.src.State()
	w.PutI64(seed)
	w.PutU64(draws)
	w.PutI64(c.n)
	c.agg.SaveState(w)
}

// LoadState restores state saved by SaveState.
func (c *Channel) LoadState(r *snapbin.Reader) error {
	seed := r.I64()
	draws := r.U64()
	n := r.I64()
	if err := c.agg.LoadState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("daq: %w", err)
	}
	c.src.Restore(seed, draws)
	c.n = n
	return nil
}
