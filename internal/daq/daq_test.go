package daq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	cases := []Config{
		{SampleRateHz: 0},
		{SampleRateHz: -1},
		{SampleRateHz: math.NaN()},
		{SampleRateHz: 1000, NoiseSigmaW: -1},
		{SampleRateHz: 1000, ResolutionW: -1},
	}
	for i, cfg := range cases {
		if _, err := New("p", cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := New("p", DefaultConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestSamplesAtConfiguredRate(t *testing.T) {
	c, err := New("p", Config{SampleRateHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Feed 2 s of signal in 1 ms steps.
	for i := 0; i < 2000; i++ {
		if err := c.Observe(float64(i)*0.001, 0.001, 3.0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.SampleCount(); got != 2000 {
		t.Errorf("samples = %d, want 2000 (1 kHz for 2 s)", got)
	}
}

func TestSamplesWithCoarseSteps(t *testing.T) {
	// Simulator steps of 10 ms must still produce 1 kHz samples.
	c, err := New("p", Config{SampleRateHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Observe(float64(i)*0.01, 0.01, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.SampleCount(); got != 1000 {
		t.Errorf("samples = %d, want 1000", got)
	}
}

func TestNoiselessChannelIsExact(t *testing.T) {
	c, _ := New("p", Config{SampleRateHz: 100})
	for i := 0; i < 100; i++ {
		_ = c.Observe(float64(i)*0.01, 0.01, 2.5)
	}
	if c.MeanW() != 2.5 {
		t.Errorf("mean = %v, want exactly 2.5 with no noise", c.MeanW())
	}
	if c.MaxW() != 2.5 {
		t.Errorf("max = %v, want exactly 2.5", c.MaxW())
	}
}

func TestNoiseStatistics(t *testing.T) {
	c, _ := New("p", Config{SampleRateHz: 1000, NoiseSigmaW: 0.1, Seed: 7})
	for i := 0; i < 10000; i++ {
		_ = c.Observe(float64(i)*0.001, 0.001, 5.0)
	}
	if math.Abs(c.MeanW()-5.0) > 0.01 {
		t.Errorf("noisy mean = %v, want ~5.0", c.MeanW())
	}
	// Spread should reflect sigma: max over 10k samples of N(5, 0.1)
	// lands around 5.35-5.5.
	if c.MaxW() < 5.2 || c.MaxW() > 5.7 {
		t.Errorf("noisy max = %v, want within (5.2, 5.7)", c.MaxW())
	}
}

func TestQuantization(t *testing.T) {
	c, _ := New("p", Config{SampleRateHz: 100, ResolutionW: 0.5})
	_ = c.Observe(0, 0.01, 1.7)
	got := c.Series().At(0).Value
	if got != 1.5 {
		t.Errorf("quantized sample = %v, want 1.5 (step 0.5)", got)
	}
}

func TestObserveErrors(t *testing.T) {
	c, _ := New("p", DefaultConfig())
	if err := c.Observe(0, 0, 1); err == nil {
		t.Error("zero dt should fail")
	}
	if err := c.Observe(0, -1, 1); err == nil {
		t.Error("negative dt should fail")
	}
	if err := c.Observe(0, 0.001, math.NaN()); err == nil {
		t.Error("NaN power should fail")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		c, _ := New("p", Config{SampleRateHz: 1000, NoiseSigmaW: 0.05, Seed: 42})
		for i := 0; i < 100; i++ {
			_ = c.Observe(float64(i)*0.001, 0.001, 2.0)
		}
		return c.Series().Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v (seeded runs must be identical)", i, a[i], b[i])
		}
	}
}

// Property: over any step pattern tiling a duration, the channel takes
// exactly one sample per period boundary in [0, duration) — i.e.
// ceil(duration * rate) samples — regardless of the step size.
func TestSampleCountProperty(t *testing.T) {
	f := func(rawStep float64, rawRate uint16) bool {
		step := 0.0005 + math.Abs(math.Mod(rawStep, 0.02))
		rate := float64(rawRate%900) + 100 // 100..999 Hz
		c, err := New("p", Config{SampleRateHz: rate})
		if err != nil {
			return false
		}
		steps := 200
		for i := 0; i < steps; i++ {
			if err := c.Observe(float64(i)*step, step, 1); err != nil {
				return false
			}
		}
		duration := float64(steps) * step
		want := int(math.Ceil(duration*rate - 1e-6))
		return c.SampleCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
