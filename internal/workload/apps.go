package workload

// This file defines the five popular Android apps the paper measures on
// the Nexus 6P (Section III-B). Cycle costs are synthetic calibrations:
// they are chosen so that, under the simulated platform and governors,
// each app reproduces the paper's qualitative behavior — its frequency
// residency pattern and the relative FPS loss under thermal throttling
// (Table I) — not the authors' absolute testbed numbers.
//
// Frame apps use a frame-slot clock (FrameAppConfig.SlotHz): completion
// snaps to the next slot boundary, so losing one GPU OPP costs a whole
// slot (e.g. 40 -> 30 -> 24 FPS), the step pattern visible in the
// paper's Table I.

const mega = 1e6

// PaperIO models the Paper.io game: GPU-dominated rendering with wide
// scene variation, so the uncapped governor spreads residency across
// the 390-600 MHz Adreno OPPs (Figure 2) and throttling collapses it
// onto 390 MHz with a ~1/3 FPS loss (Table I row 1).
func PaperIO(seed int64) *FrameApp {
	return MustFrameApp(FrameAppConfig{
		Name: "paper.io",
		Phases: []Phase{
			// Match intro/menu, light load.
			{DurationS: 6, CPUCyclesPerFrame: 2 * mega, GPUCyclesPerFrame: 2.5 * mega, TargetFPS: 60, TouchRatePerS: 1},
			// Core gameplay: heavy GPU frames at the game's natural 35 FPS.
			{DurationS: 40, CPUCyclesPerFrame: 8 * mega, GPUCyclesPerFrame: 13 * mega, TargetFPS: 35, TouchRatePerS: 4},
			// Round end / score screen.
			{DurationS: 4, CPUCyclesPerFrame: 2 * mega, GPUCyclesPerFrame: 4 * mega, TargetFPS: 60, TouchRatePerS: 2},
		},
		Loop:         true,
		SceneSigma:   0.22,
		ScenePeriodS: 1.5,
		SlotHz:       70, // 2 slots at the native 35 FPS
		Seed:         seed,
	})
}

// StickmanHook models the Stickman Hook game: lighter frames that run
// near 60 FPS uncapped with most residency at 390 MHz, plus short menu
// segments that idle the GPU (Figure 4). Throttling pushes residency
// down to 180/305 MHz and costs ~1/3 of the frame rate.
func StickmanHook(seed int64) *FrameApp {
	return MustFrameApp(FrameAppConfig{
		Name: "stickman-hook",
		Phases: []Phase{
			// Level gameplay at 60 FPS.
			{DurationS: 22, CPUCyclesPerFrame: 8 * mega, GPUCyclesPerFrame: 8 * mega, TargetFPS: 60, TouchRatePerS: 5},
			// Level-complete menu: near-idle GPU.
			{DurationS: 3.5, CPUCyclesPerFrame: 1.2 * mega, GPUCyclesPerFrame: 0.9 * mega, TargetFPS: 60, TouchRatePerS: 1},
		},
		Loop:         true,
		SceneSigma:   0.13,
		ScenePeriodS: 2,
		SlotHz:       120,
		Seed:         seed,
	})
}

// Amazon models the Amazon shopping app: CPU-dominated page rendering
// with scroll bursts and reading pauses. The big-cluster residency
// shifts from the high OPPs toward 384 MHz under throttling (Figure 6)
// with a ~20% frame-rate loss (Table I row 3).
func Amazon(seed int64) *FrameApp {
	return MustFrameApp(FrameAppConfig{
		Name: "amazon",
		Phases: []Phase{
			// Scroll burst: heavy CPU layout/decode work.
			{DurationS: 5, CPUCyclesPerFrame: 70 * mega, GPUCyclesPerFrame: 2.0 * mega, TargetFPS: 40, TouchRatePerS: 3},
			// Reading pause: light periodic refresh.
			{DurationS: 4, CPUCyclesPerFrame: 8 * mega, GPUCyclesPerFrame: 0.8 * mega, TargetFPS: 40, TouchRatePerS: 0.5},
			// Product page load: CPU spike.
			{DurationS: 3, CPUCyclesPerFrame: 90 * mega, GPUCyclesPerFrame: 1.5 * mega, TargetFPS: 40, TouchRatePerS: 1},
		},
		Loop:         true,
		SceneSigma:   0.18,
		ScenePeriodS: 1,
		SlotHz:       120,
		Seed:         seed,
	})
}

// Hangouts models Google Hangouts video conferencing: steady, moderate
// CPU (codec) plus small GPU load, not frame-slot locked (the codec
// pipeline is elastic). Its demand is modest, so throttling costs only
// ~10% (Table I row 4).
func Hangouts(seed int64) *FrameApp {
	return MustFrameApp(FrameAppConfig{
		Name: "hangouts",
		Phases: []Phase{
			// Steady call: encode+decode.
			{DurationS: 30, CPUCyclesPerFrame: 45 * mega, GPUCyclesPerFrame: 2.2 * mega, TargetFPS: 45, TouchRatePerS: 0.2},
			// Screen-share burst.
			{DurationS: 5, CPUCyclesPerFrame: 60 * mega, GPUCyclesPerFrame: 3.0 * mega, TargetFPS: 45, TouchRatePerS: 0.5},
		},
		Loop:         true,
		SceneSigma:   0.08,
		ScenePeriodS: 2,
		Seed:         seed,
	})
}

// Facebook models the Facebook app while playing an embedded game (the
// paper's scenario): feed scrolling mixed with game segments whose GPU
// load resembles a light game. Throttling costs ~30% (Table I row 5).
func Facebook(seed int64) *FrameApp {
	return MustFrameApp(FrameAppConfig{
		Name: "facebook",
		Phases: []Phase{
			// Feed scroll: CPU-heavy with some GPU compositing.
			{DurationS: 8, CPUCyclesPerFrame: 35 * mega, GPUCyclesPerFrame: 4 * mega, TargetFPS: 40, TouchRatePerS: 3},
			// In-app game: GPU-heavy.
			{DurationS: 20, CPUCyclesPerFrame: 6 * mega, GPUCyclesPerFrame: 12 * mega, TargetFPS: 40, TouchRatePerS: 4},
		},
		Loop:         true,
		SceneSigma:   0.2,
		ScenePeriodS: 1.5,
		SlotHz:       120,
		Seed:         seed,
	})
}
