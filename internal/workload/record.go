package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file closes the record→replay loop: RecordTrace samples any
// App's demand onto a fixed grid, EncodeReplayCSV renders the samples
// in exactly the format ParseReplayCSV reads, and a ReplayApp built
// from the result reproduces the recorded demand at every grid point
// (zero-order hold on both sides; the round-trip test pins it). This
// is how a generated or hand-calibrated workload becomes a portable
// trace file — and how measured traces from real devices enter the
// simulator.

// RecordTrace runs app's demand schedule over [0, horizonS) on a
// periodS grid and returns the samples. The app is advanced with zero
// granted resources between samples, so recording captures the
// *requested* profile (what a governor would see from an
// infinitely-fast platform log), not an achieved one. Recording
// consumes the app's state; record from a fresh instance.
func RecordTrace(app App, horizonS, periodS float64) ([]ReplaySample, error) {
	if app == nil {
		return nil, fmt.Errorf("workload: record needs an app")
	}
	if !(horizonS > 0) || !(periodS > 0) || math.IsInf(horizonS, 0) || math.IsInf(periodS, 0) {
		return nil, fmt.Errorf("workload: record horizon and period must be positive and finite")
	}
	n := int(math.Ceil(horizonS/periodS - 1e-9))
	if n < 1 {
		n = 1
	}
	const maxSamples = 10_000_000
	if n > maxSamples {
		return nil, fmt.Errorf("workload: recording %d samples exceeds the %d bound", n, maxSamples)
	}
	samples := make([]ReplaySample, 0, n)
	for i := 0; i < n; i++ {
		nowS := float64(i) * periodS
		d := app.Demand(nowS)
		samples = append(samples, ReplaySample{TimeS: nowS, CPUHz: d.CPUHz, GPUHz: d.GPUHz})
		app.Advance(nowS, periodS, Resources{})
	}
	return samples, nil
}

// EncodeReplayCSV renders samples as the "time_s,cpu_hz,gpu_hz" CSV
// ParseReplayCSV accepts, header row included. Floats use Go's
// shortest round-trippable formatting, so parse(encode(samples))
// reproduces the samples bitwise.
func EncodeReplayCSV(samples []ReplaySample) []byte {
	var b strings.Builder
	b.WriteString("time_s,cpu_hz,gpu_hz\n")
	for _, s := range samples {
		b.WriteString(strconv.FormatFloat(s.TimeS, 'g', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(s.CPUHz, 'g', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(s.GPUHz, 'g', -1, 64))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
