package workload

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden generated-workload traces")

// genSpecs returns one representative spec per generator kind plus a
// customized perturb spec with its own base script.
func genSpecs() []GenSpec {
	specs := []GenSpec{
		DefaultGenSpec(GenBursty),
		DefaultGenSpec(GenPeriodic),
		DefaultGenSpec(GenRamp),
		DefaultGenSpec(GenPerturb),
	}
	custom := GenSpec{
		Kind:                 GenPerturb,
		HorizonS:             30,
		TargetFPS:            40,
		CPUCyclesPerFrameMin: 1 * mega,
		CPUCyclesPerFrameMax: 80 * mega,
		GPUCyclesPerFrameMax: 6 * mega,
		Base: []GenPhase{
			{DurationS: 5, CPUCyclesPerFrame: 60 * mega, GPUCyclesPerFrame: 2 * mega, TouchRatePerS: 1},
			{DurationS: 10, CPUCyclesPerFrame: 10 * mega, GPUCyclesPerFrame: 5 * mega, TargetFPS: 60},
		},
		Seed: 11,
	}
	custom.Normalize()
	specs = append(specs, custom)
	return specs
}

// Property: phase durations of every kind sum to the horizon (within
// float accumulation error) and every phase is strictly positive.
func TestGeneratedPhasesSumToHorizon(t *testing.T) {
	for _, spec := range genSpecs() {
		for seed := int64(0); seed < 20; seed++ {
			app, err := spec.Build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec.Kind, seed, err)
			}
			sum := 0.0
			for i, p := range app.Phases() {
				if p.DurationS <= 0 {
					t.Fatalf("%s seed %d: phase %d duration %v not positive", spec.Kind, seed, i, p.DurationS)
				}
				sum += p.DurationS
			}
			if math.Abs(sum-spec.HorizonS) > 1e-9*spec.HorizonS {
				t.Errorf("%s seed %d: phase durations sum to %v, want %v", spec.Kind, seed, sum, spec.HorizonS)
			}
		}
	}
}

// Property: demand is bounded by the spec everywhere — never negative,
// never above TargetFPS × the per-frame cycle maxima.
func TestGeneratedDemandBoundedBySpec(t *testing.T) {
	for _, spec := range genSpecs() {
		cpuMax, gpuMax := spec.MaxDemandHz()
		for seed := int64(0); seed < 10; seed++ {
			app, err := spec.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4000; i++ {
				nowS := float64(i) * 0.05 // two horizons of samples: loop coverage
				d := app.Demand(nowS)
				if d.CPUHz < 0 || d.CPUHz > cpuMax*(1+1e-12) {
					t.Fatalf("%s seed %d t=%v: CPU demand %v outside [0, %v]", spec.Kind, seed, nowS, d.CPUHz, cpuMax)
				}
				if d.GPUHz < 0 || d.GPUHz > gpuMax*(1+1e-12) {
					t.Fatalf("%s seed %d t=%v: GPU demand %v outside [0, %v]", spec.Kind, seed, nowS, d.GPUHz, gpuMax)
				}
				app.Advance(nowS, 0.05, Resources{CPUSpeedHz: d.CPUHz, GPUSpeedHz: d.GPUHz})
			}
		}
	}
}

// Property: the same (spec, seed) pair builds the bitwise-identical
// workload — identical phase scripts and identical demand series,
// touch events included.
func TestGeneratedWorkloadSeedDeterminism(t *testing.T) {
	for _, spec := range genSpecs() {
		a, err := spec.Build(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build(42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Phases(), b.Phases()) {
			t.Fatalf("%s: same seed produced different phase scripts", spec.Kind)
		}
		for i := 0; i < 2000; i++ {
			nowS := float64(i) * 0.01
			da, db := a.Demand(nowS), b.Demand(nowS)
			if da != db {
				t.Fatalf("%s: same seed diverged at t=%v: %+v vs %+v", spec.Kind, nowS, da, db)
			}
			a.Advance(nowS, 0.01, Resources{CPUSpeedHz: da.CPUHz})
			b.Advance(nowS, 0.01, Resources{CPUSpeedHz: db.CPUHz})
		}

		// And different seeds must actually explore the space.
		c, err := spec.Build(43)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Phases(), c.Phases()) {
			t.Errorf("%s: seeds 42 and 43 produced identical scripts", spec.Kind)
		}
	}
}

func TestGenSpecValidateRejections(t *testing.T) {
	base := DefaultGenSpec(GenBursty)
	cases := []struct {
		name string
		edit func(g *GenSpec)
	}{
		{"unknown kind", func(g *GenSpec) { g.Kind = "chaotic" }},
		{"NaN horizon", func(g *GenSpec) { g.HorizonS = math.NaN() }},
		{"negative horizon", func(g *GenSpec) { g.HorizonS = -1 }},
		{"Inf cycle max", func(g *GenSpec) { g.CPUCyclesPerFrameMax = math.Inf(1) }},
		{"max below min", func(g *GenSpec) { g.CPUCyclesPerFrameMax = g.CPUCyclesPerFrameMin / 2 }},
		{"no budget at all", func(g *GenSpec) {
			g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax = 0, 0
			g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax = 0, 0
		}},
		{"burst ratio above 1", func(g *GenSpec) { g.BurstRatio = 1.5 }},
		{"negative touch rate", func(g *GenSpec) { g.TouchRatePerS = -1 }},
		{"hostile phase count", func(g *GenSpec) { g.HorizonS = 1e9; g.PhaseMeanS = 0.001 }},
		{"bad base phase", func(g *GenSpec) { g.Base = []GenPhase{{DurationS: -1}} }},
	}
	for _, tc := range cases {
		g := base
		tc.edit(&g)
		if g.Validate() == nil {
			t.Errorf("%s: Validate accepted a spec it must reject", tc.name)
		}
	}
	// And the builder honors Validate: accepted specs always build.
	for _, spec := range genSpecs() {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: default spec invalid: %v", spec.Kind, err)
		}
		if _, err := spec.Build(0); err != nil {
			t.Errorf("%s: Validate-accepted spec failed to build: %v", spec.Kind, err)
		}
	}
}

// The record→replay round trip: samples recorded from a generated app,
// rendered to CSV and parsed back, reproduce the recorded demand
// bitwise at every grid point.
func TestRecordReplayRoundTrip(t *testing.T) {
	app, err := DefaultGenSpec(GenBursty).Build(7)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := RecordTrace(app, 30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 300 {
		t.Fatalf("recorded %d samples, want 300", len(samples))
	}
	csv := EncodeReplayCSV(samples)
	replay, err := ParseReplayCSV("replayed", string(csv), false)
	if err != nil {
		t.Fatalf("parse recorded CSV: %v", err)
	}
	for _, s := range samples {
		d := replay.Demand(s.TimeS)
		if d.CPUHz != s.CPUHz || d.GPUHz != s.GPUHz {
			t.Fatalf("replay diverged at t=%v: got (%v, %v), want (%v, %v)",
				s.TimeS, d.CPUHz, d.GPUHz, s.CPUHz, s.GPUHz)
		}
	}
	// The CSV itself round-trips: re-encoding the parsed samples gives
	// identical bytes.
	again, err := RecordTrace(replay, 30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeReplayCSV(again), csv) {
		t.Error("record → encode → parse → record is not byte-stable")
	}
}

// TestGeneratedTraceGolden pins the generator's output across releases:
// the bursty kind at seed 1 must keep producing exactly the checked-in
// trace. Regenerate with
//
//	go test ./internal/workload -run Golden -update
func TestGeneratedTraceGolden(t *testing.T) {
	app, err := DefaultGenSpec(GenBursty).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := RecordTrace(app, 60, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got := EncodeReplayCSV(samples)
	path := filepath.Join("..", "..", "testdata", "traces", "gen_bursty_seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden trace rewritten")
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("generated trace drifted from golden %s (%d vs %d bytes); rerun with -update if intentional",
			path, len(got), len(want))
	}
}
