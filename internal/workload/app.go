// Package workload models the applications the paper measures: the five
// popular Android apps of Section III (Paper.io, Stickman Hook, Amazon,
// Google Hangouts, Facebook), the Odroid benchmarks of Section IV-C
// (3DMark GT1/GT2, Nenamark), and the MiBench basicmath-large (BML)
// background task.
//
// Apps are frame pipelines: each frame costs CPU cycles and GPU cycles;
// the achievable frame rate is limited by the slower stage and capped by
// the app's target. Scripted phases plus seeded stochastic scene
// variation drive the DVFS governors through realistic frequency
// residency patterns, which is what Figures 1-6 measure.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/detrand"
	"repro/internal/mibench"
	"repro/internal/stats"
)

// Demand is what an app asks of the platform this instant.
type Demand struct {
	// CPUHz is the requested CPU execution rate in cycles/s.
	CPUHz float64
	// GPUHz is the requested GPU execution rate in cycles/s.
	GPUHz float64
	// Touch reports a user-interaction event since the last query; the
	// interactive governor boosts on it.
	Touch bool
}

// Resources is what the platform actually granted over a step.
type Resources struct {
	// CPUSpeedHz is the achieved CPU rate in cycles/s.
	CPUSpeedHz float64
	// GPUSpeedHz is the achieved GPU rate in cycles/s.
	GPUSpeedHz float64
}

// App is a runnable application model.
type App interface {
	// Name identifies the app.
	Name() string
	// Demand returns the app's current resource request.
	Demand(nowS float64) Demand
	// Advance runs the app for dt seconds with the granted resources.
	Advance(nowS, dt float64, r Resources)
}

// FPSReporter is implemented by apps that render frames.
type FPSReporter interface {
	// FPSSamples returns per-second frame-rate samples.
	FPSSamples() []float64
	// MedianFPS returns the median of FPSSamples (0 when empty).
	MedianFPS() float64
}

// Phase is one segment of an app's behavior script.
type Phase struct {
	// DurationS is how long the phase lasts.
	DurationS float64
	// CPUCyclesPerFrame and GPUCyclesPerFrame cost each frame.
	CPUCyclesPerFrame float64
	GPUCyclesPerFrame float64
	// TargetFPS caps the app's own frame production (engine cap/vsync).
	TargetFPS float64
	// TouchRatePerS is the mean rate of user-interaction events.
	TouchRatePerS float64
}

// FrameAppConfig configures a scripted frame-pipeline app.
type FrameAppConfig struct {
	// Name labels the app.
	Name string
	// Phases is the behavior script; it loops when Loop is set.
	Phases []Phase
	// Loop repeats the script indefinitely.
	Loop bool
	// SceneSigma is the log-normal sigma of the per-scene workload
	// multiplier (0 disables variation).
	SceneSigma float64
	// ScenePeriodS is how often the scene multiplier resamples.
	ScenePeriodS float64
	// SlotHz enables frame pacing: a frame completes only on the next
	// SlotHz boundary after its compute finishes (vsync-style), so the
	// instantaneous rate is SlotHz/ceil(frameTime·SlotHz). This is why a
	// one-OPP GPU drop costs a disproportionate FPS step on real phones
	// (Table I). Zero disables pacing.
	SlotHz float64
	// Seed seeds the app's private RNG.
	Seed int64
}

// FrameApp is a scripted frame-pipeline application.
type FrameApp struct {
	cfg FrameAppConfig
	rng *rand.Rand
	src *detrand.Source

	phaseIdx   int
	phaseStart float64
	done       bool

	sceneMult float64
	nextScene float64

	frames       float64
	bucketFrames float64
	bucketStart  float64
	fpsSamples   []float64
	phaseFPS     map[int][]float64
}

// NewFrameApp validates cfg and builds the app.
func NewFrameApp(cfg FrameAppConfig) (*FrameApp, error) {
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("workload: app %q needs at least one phase", cfg.Name)
	}
	for i, p := range cfg.Phases {
		if p.DurationS <= 0 {
			return nil, fmt.Errorf("workload: app %q phase %d duration must be positive", cfg.Name, i)
		}
		if p.CPUCyclesPerFrame < 0 || p.GPUCyclesPerFrame < 0 {
			return nil, fmt.Errorf("workload: app %q phase %d has negative cycle cost", cfg.Name, i)
		}
		if p.TargetFPS <= 0 {
			return nil, fmt.Errorf("workload: app %q phase %d target FPS must be positive", cfg.Name, i)
		}
		if p.TouchRatePerS < 0 {
			return nil, fmt.Errorf("workload: app %q phase %d touch rate must be >= 0", cfg.Name, i)
		}
	}
	if cfg.SceneSigma < 0 || cfg.ScenePeriodS < 0 {
		return nil, fmt.Errorf("workload: app %q scene variation params must be >= 0", cfg.Name)
	}
	if cfg.SceneSigma > 0 && cfg.ScenePeriodS == 0 {
		return nil, fmt.Errorf("workload: app %q needs a scene period when sigma > 0", cfg.Name)
	}
	if cfg.SlotHz < 0 || math.IsNaN(cfg.SlotHz) {
		return nil, fmt.Errorf("workload: app %q slot rate must be >= 0", cfg.Name)
	}
	src := detrand.New(cfg.Seed)
	return &FrameApp{
		cfg:       cfg,
		rng:       rand.New(src),
		src:       src,
		sceneMult: 1,
		phaseFPS:  make(map[int][]float64),
	}, nil
}

// MustFrameApp is NewFrameApp that panics on error; for static app tables.
func MustFrameApp(cfg FrameAppConfig) *FrameApp {
	a, err := NewFrameApp(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Name returns the app name.
func (a *FrameApp) Name() string { return a.cfg.Name }

// Done reports whether a non-looping script has finished.
func (a *FrameApp) Done() bool { return a.done }

// phase returns the active phase, advancing the script as time passes.
func (a *FrameApp) phase(nowS float64) *Phase {
	if a.done {
		return nil
	}
	for nowS-a.phaseStart >= a.cfg.Phases[a.phaseIdx].DurationS {
		a.phaseStart += a.cfg.Phases[a.phaseIdx].DurationS
		a.phaseIdx++
		if a.phaseIdx >= len(a.cfg.Phases) {
			if a.cfg.Loop {
				a.phaseIdx = 0
			} else {
				a.done = true
				return nil
			}
		}
	}
	return &a.cfg.Phases[a.phaseIdx]
}

// scene resamples the workload multiplier on its schedule.
func (a *FrameApp) scene(nowS float64) float64 {
	if a.cfg.SceneSigma == 0 {
		return 1
	}
	if nowS+1e-12 >= a.nextScene {
		m := math.Exp(a.rng.NormFloat64() * a.cfg.SceneSigma)
		a.sceneMult = stats.Clamp(m, 0.5, 2.0)
		for a.nextScene <= nowS+1e-12 {
			a.nextScene += a.cfg.ScenePeriodS
		}
	}
	return a.sceneMult
}

// Demand implements App.
func (a *FrameApp) Demand(nowS float64) Demand {
	p := a.phase(nowS)
	if p == nil {
		return Demand{}
	}
	m := a.scene(nowS)
	d := Demand{
		CPUHz: p.TargetFPS * p.CPUCyclesPerFrame * m,
		GPUHz: p.TargetFPS * p.GPUCyclesPerFrame * m,
	}
	if p.TouchRatePerS > 0 {
		// Bernoulli approximation of a Poisson arrival in one query
		// interval; the sim queries every step, so scale by a nominal
		// 1 ms quantum to keep rates meaningful.
		if a.rng.Float64() < p.TouchRatePerS*0.001 {
			d.Touch = true
		}
	}
	return d
}

// Advance implements App: frames complete at the rate the slower
// pipeline stage sustains, capped by the phase target.
func (a *FrameApp) Advance(nowS, dt float64, r Resources) {
	p := a.phase(nowS)
	if p != nil {
		m := a.sceneMult
		if a.cfg.SceneSigma == 0 {
			m = 1
		}
		fps := p.TargetFPS
		// Branches instead of math.Min: the operands are finite and the
		// NaN guard below owns the degenerate cases, so the result is
		// identical and the per-step call disappears from the profile.
		if p.CPUCyclesPerFrame > 0 {
			if v := r.CPUSpeedHz / (p.CPUCyclesPerFrame * m); v < fps {
				fps = v
			}
		}
		if p.GPUCyclesPerFrame > 0 {
			if v := r.GPUSpeedHz / (p.GPUCyclesPerFrame * m); v < fps {
				fps = v
			}
		}
		if fps < 0 || math.IsNaN(fps) {
			fps = 0
		}
		if a.cfg.SlotHz > 0 && fps > 0 {
			// Frame pacing: completion waits for the next slot boundary.
			slots := math.Ceil(a.cfg.SlotHz/fps - 1e-9)
			fps = a.cfg.SlotHz / slots
		}
		a.frames += fps * dt
		a.bucketFrames += fps * dt
	}
	// Close out 1-second FPS buckets.
	for nowS+dt-a.bucketStart >= 1.0 {
		a.fpsSamples = append(a.fpsSamples, a.bucketFrames)
		if p != nil {
			a.phaseFPS[a.phaseIdx] = append(a.phaseFPS[a.phaseIdx], a.bucketFrames)
		}
		a.bucketFrames = 0
		a.bucketStart += 1.0
	}
}

// Frames returns the total frames rendered.
func (a *FrameApp) Frames() float64 { return a.frames }

// FPSSamples implements FPSReporter.
func (a *FrameApp) FPSSamples() []float64 {
	return append([]float64(nil), a.fpsSamples...)
}

// MedianFPS implements FPSReporter.
func (a *FrameApp) MedianFPS() float64 {
	m, err := stats.Median(a.fpsSamples)
	if err != nil {
		return 0
	}
	return m
}

// PhaseMedianFPS returns the median FPS measured while phase i was
// active (0 when the phase never ran). 3DMark's GT1/GT2 scores use it.
func (a *FrameApp) PhaseMedianFPS(i int) float64 {
	m, err := stats.Median(a.phaseFPS[i])
	if err != nil {
		return 0
	}
	return m
}

// BML is the MiBench basicmath-large background task: a pure CPU hog
// with no frames. It executes real basicmath kernels at a decimated
// rate (ExecuteRatio) while accounting modeled cycles exactly.
type BML struct {
	// ExecuteRatio is the fraction of modeled iterations actually
	// executed (default 1/1000); full execution would dominate the
	// simulation's own runtime without changing its behavior.
	ExecuteRatio float64

	work            mibench.Workload
	modeledCycles   float64
	modeledIters    uint64
	executedBacklog float64
}

// NewBML returns a BML task with the default execution decimation.
func NewBML() *BML { return &BML{ExecuteRatio: 0.001} }

// Name implements App.
func (b *BML) Name() string { return "basicmath-large" }

// Demand implements App: BML always wants more CPU than any cluster can
// give a single thread, so it saturates one core at any frequency.
func (b *BML) Demand(nowS float64) Demand {
	return Demand{CPUHz: 1e12}
}

// Advance implements App: convert granted cycles into completed
// basicmath iterations.
func (b *BML) Advance(nowS, dt float64, r Resources) {
	cycles := r.CPUSpeedHz * dt
	if cycles <= 0 {
		return
	}
	b.modeledCycles += cycles
	iters := uint64(b.modeledCycles / mibench.CyclesPerIteration)
	newIters := iters - b.modeledIters
	b.modeledIters = iters
	b.executedBacklog += float64(newIters) * b.ExecuteRatio
	if n := uint64(b.executedBacklog); n > 0 {
		b.work.RunIterations(n)
		b.executedBacklog -= float64(n)
	}
}

// Iterations reports modeled completed BML iterations.
func (b *BML) Iterations() uint64 { return b.modeledIters }

// ExecutedIterations reports how many iterations actually ran.
func (b *BML) ExecutedIterations() uint64 { return b.work.Iterations() }

// Checksum exposes the verification checksum of the executed kernels.
func (b *BML) Checksum() float64 { return b.work.Checksum() }
