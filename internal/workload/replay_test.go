package workload

import (
	"math"
	"testing"
)

func TestNewReplayAppValidates(t *testing.T) {
	cases := []struct {
		name    string
		samples []ReplaySample
	}{
		{"empty", nil},
		{"nonzero start", []ReplaySample{{TimeS: 1, CPUHz: 1}}},
		{"negative rate", []ReplaySample{{TimeS: 0, CPUHz: -1}}},
		{"NaN rate", []ReplaySample{{TimeS: 0, GPUHz: math.NaN()}}},
		{"out of order", []ReplaySample{{TimeS: 0}, {TimeS: 2}, {TimeS: 1}}},
		{"duplicate time", []ReplaySample{{TimeS: 0}, {TimeS: 0}}},
	}
	for _, c := range cases {
		if _, err := NewReplayApp("r", c.samples, false); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewReplayApp("r", []ReplaySample{{TimeS: 0, CPUHz: 1e9}}, false); err != nil {
		t.Errorf("valid trace should build: %v", err)
	}
}

func TestReplayZeroOrderHold(t *testing.T) {
	app, err := NewReplayApp("r", []ReplaySample{
		{TimeS: 0, CPUHz: 1e9, GPUHz: 0},
		{TimeS: 2, CPUHz: 2e9, GPUHz: 5e8},
		{TimeS: 5, CPUHz: 0, GPUHz: 0},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t       float64
		wantCPU float64
	}{
		{0, 1e9}, {1.99, 1e9}, {2, 2e9}, {4.5, 2e9}, {5, 0}, {100, 0},
	}
	for _, c := range cases {
		if d := app.Demand(c.t); d.CPUHz != c.wantCPU {
			t.Errorf("demand(%v).CPU = %v, want %v", c.t, d.CPUHz, c.wantCPU)
		}
	}
	if app.Duration() != 5 {
		t.Errorf("duration = %v, want 5", app.Duration())
	}
}

func TestReplayLoops(t *testing.T) {
	app, err := NewReplayApp("r", []ReplaySample{
		{TimeS: 0, CPUHz: 1e9},
		{TimeS: 1, CPUHz: 3e9},
		{TimeS: 2, CPUHz: 0},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Loop period is 2 s: t=2.5 maps to local 0.5 -> 1e9.
	if d := app.Demand(2.5); d.CPUHz != 1e9 {
		t.Errorf("demand(2.5) = %v, want 1e9 (looped)", d.CPUHz)
	}
	if d := app.Demand(5.5); d.CPUHz != 3e9 {
		t.Errorf("demand(5.5) = %v, want 3e9 (looped to local 1.5)", d.CPUHz)
	}
}

func TestReplayAccountsWork(t *testing.T) {
	app, _ := NewReplayApp("r", []ReplaySample{{TimeS: 0, CPUHz: 1e9, GPUHz: 1e8}}, false)
	for i := 0; i < 100; i++ {
		app.Advance(float64(i)*0.01, 0.01, Resources{CPUSpeedHz: 1e9, GPUSpeedHz: 1e8})
	}
	if math.Abs(app.AchievedCPUCycles()-1e9) > 1e6 {
		t.Errorf("CPU cycles = %v, want ~1e9", app.AchievedCPUCycles())
	}
	if math.Abs(app.AchievedGPUCycles()-1e8) > 1e5 {
		t.Errorf("GPU cycles = %v, want ~1e8", app.AchievedGPUCycles())
	}
}

func TestParseReplayCSV(t *testing.T) {
	csv := "time_s,cpu_hz,gpu_hz\n0,1e9,0\n1.5,2e9,3e8\n"
	app, err := ParseReplayCSV("trace", csv, false)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "trace" {
		t.Error("wrong name")
	}
	if d := app.Demand(1.6); d.CPUHz != 2e9 || d.GPUHz != 3e8 {
		t.Errorf("demand = %+v, want (2e9, 3e8)", d)
	}
	// Headerless CSV also parses.
	if _, err := ParseReplayCSV("t", "0,1,2\n3,4,5\n", false); err != nil {
		t.Errorf("headerless CSV should parse: %v", err)
	}
	// Malformed rows fail.
	if _, err := ParseReplayCSV("t", "0,1\n", false); err == nil {
		t.Error("2-field row should fail")
	}
	if _, err := ParseReplayCSV("t", "0,1,2\nx,y,z\n", false); err == nil {
		t.Error("non-numeric non-header row should fail")
	}
	if _, err := ParseReplayCSV("t", "", false); err == nil {
		t.Error("empty CSV should fail")
	}
}

func TestReplayDrivesSimDemand(t *testing.T) {
	// The replay app must work through the App interface exactly like
	// scripted apps: a step sequence with mixed queries.
	// In loop mode the final sample marks the loop end, so levels live
	// between consecutive samples: 5e8 on [0,1), 1e9 on [1,2).
	app, _ := NewReplayApp("r", []ReplaySample{
		{TimeS: 0, CPUHz: 5e8},
		{TimeS: 1, CPUHz: 1e9},
		{TimeS: 2, CPUHz: 0},
	}, true)
	seen := map[float64]bool{}
	for now := 0.0; now < 4; now += 0.25 {
		d := app.Demand(now)
		seen[d.CPUHz] = true
		app.Advance(now, 0.25, Resources{CPUSpeedHz: d.CPUHz})
	}
	if !seen[5e8] || !seen[1e9] {
		t.Errorf("expected both trace levels to appear, got %v", seen)
	}
}
