package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// This file is the stochastic workload generator: a declarative,
// JSON-serializable GenSpec synthesizes seeded phase-based demand
// profiles, so sweeps can explore an open space of workloads instead of
// the handful of hand-calibrated app models. Generated apps are plain
// FrameApps — they flow through the scheduler/governor/thermal pipeline
// exactly like the paper's apps, and the same seed always synthesizes
// the bitwise-identical script (the property tests pin this).

// Generator kinds GenSpec accepts.
const (
	// GenBursty alternates idle phases with seeded bursts of heavy
	// frames — the foreground-app pattern that provokes interactive
	// governor boosts and thermal transients.
	GenBursty = "bursty"
	// GenPeriodic alternates low and high phases deterministically with
	// seeded amplitudes — a steady duty-cycle load.
	GenPeriodic = "periodic"
	// GenRamp ramps demand monotonically from the minimum to the
	// maximum across the horizon — the profile that walks a platform
	// into its thermal limit.
	GenRamp = "ramp"
	// GenPerturb perturbs a base phase script (the built-in game-like
	// profile unless the spec carries its own) with seeded per-phase
	// multipliers, clamped to the spec bounds — trace perturbation.
	GenPerturb = "perturb"
)

// GenKinds lists the accepted generator kinds.
func GenKinds() []string { return []string{GenBursty, GenPeriodic, GenRamp, GenPerturb} }

// Generator defaults, filled by GenSpec.Normalize.
const (
	// DefaultGenHorizonS is the script length when horizon_s is 0; the
	// script loops past it, like every built-in app.
	DefaultGenHorizonS = 60.0
	// DefaultGenTargetFPS caps frame production when target_fps is 0.
	DefaultGenTargetFPS = 60.0
	// DefaultGenPhaseMeanS is the mean phase duration when
	// phase_mean_s is 0.
	DefaultGenPhaseMeanS = 5.0
	// DefaultGenBurstRatio is the bursty-kind high-phase probability
	// when burst_ratio is 0.
	DefaultGenBurstRatio = 0.5
	// DefaultGenCPUCyclesMin/Max and DefaultGenGPUCyclesMin/Max are the
	// per-frame cycle bounds filled when a spec sets none of the four —
	// they roughly bracket the hand-calibrated app models, so a spec
	// that only tunes shape knobs (burst ratio, horizon) still runs.
	DefaultGenCPUCyclesMin = 2 * mega
	DefaultGenCPUCyclesMax = 40 * mega
	DefaultGenGPUCyclesMin = 1 * mega
	DefaultGenGPUCyclesMax = 12 * mega
)

// MaxGenPhases bounds how many phases one generated script may hold, so
// a hostile horizon/phase-mean pair fails validation instead of
// materializing millions of phases.
const MaxGenPhases = 4096

// GenSpec declares a stochastic workload. The zero value is not
// runnable; set at least Kind and the cycle bounds, then Normalize and
// Validate (the pkg/mobisim scenario layer does both). Build funnels a
// seed in; the spec's own Seed field is a stable offset added to it, so
// one scenario seed can drive several distinct generators.
type GenSpec struct {
	// Name labels the generated app; empty defaults to "gen-<kind>".
	Name string `json:"name,omitempty"`
	// Kind is one of GenKinds.
	Kind string `json:"kind"`
	// HorizonS is the synthesized script length in seconds; the script
	// loops past it (0 = DefaultGenHorizonS).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// PhaseMeanS is the mean phase duration (0 = DefaultGenPhaseMeanS).
	PhaseMeanS float64 `json:"phase_mean_s,omitempty"`
	// TargetFPS caps the app's frame production (0 = DefaultGenTargetFPS).
	TargetFPS float64 `json:"target_fps,omitempty"`
	// CPUCyclesPerFrameMin/Max bound the per-frame CPU cost the
	// generator may assign (Max required > 0 unless the GPU axis is
	// set).
	CPUCyclesPerFrameMin float64 `json:"cpu_cycles_per_frame_min,omitempty"`
	CPUCyclesPerFrameMax float64 `json:"cpu_cycles_per_frame_max,omitempty"`
	// GPUCyclesPerFrameMin/Max bound the per-frame GPU cost.
	GPUCyclesPerFrameMin float64 `json:"gpu_cycles_per_frame_min,omitempty"`
	GPUCyclesPerFrameMax float64 `json:"gpu_cycles_per_frame_max,omitempty"`
	// BurstRatio is the bursty-kind probability of a high phase, in
	// (0, 1] (0 = DefaultGenBurstRatio). Other kinds ignore it.
	BurstRatio float64 `json:"burst_ratio,omitempty"`
	// TouchRatePerS is the mean user-interaction rate during high
	// phases.
	TouchRatePerS float64 `json:"touch_rate_per_s,omitempty"`
	// Base is the phase script GenPerturb perturbs; empty selects the
	// built-in game-like profile. Other kinds ignore it.
	Base []GenPhase `json:"base,omitempty"`
	// Seed is a stable offset mixed into the Build seed.
	Seed int64 `json:"seed,omitempty"`
}

// GenPhase is one base phase of a perturb-kind spec — the declarative
// mirror of Phase.
type GenPhase struct {
	DurationS         float64 `json:"duration_s"`
	CPUCyclesPerFrame float64 `json:"cpu_cycles_per_frame,omitempty"`
	GPUCyclesPerFrame float64 `json:"gpu_cycles_per_frame,omitempty"`
	TargetFPS         float64 `json:"target_fps,omitempty"`
	TouchRatePerS     float64 `json:"touch_rate_per_s,omitempty"`
}

// DefaultGenSpec returns the canonical spec of a generator kind — what
// the pkg/mobisim "gen-<kind>" workload names run.
func DefaultGenSpec(kind string) GenSpec {
	s := GenSpec{Kind: kind, TouchRatePerS: 2}
	s.Normalize()
	return s
}

// Normalize fills defaults in place; idempotent. The cycle bounds
// default as a block: when a spec sets none of the four, all four are
// filled, so tuning only shape knobs (burst ratio, horizon, FPS)
// yields a runnable spec; setting any bound takes full ownership of
// the demand axes.
func (g *GenSpec) Normalize() {
	if g.Name == "" && g.Kind != "" {
		g.Name = "gen-" + g.Kind
	}
	if g.HorizonS == 0 {
		g.HorizonS = DefaultGenHorizonS
	}
	if g.PhaseMeanS == 0 {
		g.PhaseMeanS = DefaultGenPhaseMeanS
	}
	if g.TargetFPS == 0 {
		g.TargetFPS = DefaultGenTargetFPS
	}
	if g.BurstRatio == 0 {
		g.BurstRatio = DefaultGenBurstRatio
	}
	if g.CPUCyclesPerFrameMin == 0 && g.CPUCyclesPerFrameMax == 0 &&
		g.GPUCyclesPerFrameMin == 0 && g.GPUCyclesPerFrameMax == 0 {
		g.CPUCyclesPerFrameMin = DefaultGenCPUCyclesMin
		g.CPUCyclesPerFrameMax = DefaultGenCPUCyclesMax
		g.GPUCyclesPerFrameMin = DefaultGenGPUCyclesMin
		g.GPUCyclesPerFrameMax = DefaultGenGPUCyclesMax
	}
	// Canonicalize an explicit-but-empty base to nil: the JSON field is
	// omitempty, so only the nil form round-trips bit-stably.
	if len(g.Base) == 0 {
		g.Base = nil
	}
}

// Validate checks the spec without building anything. Like the platform
// spec layer it is at least as strict as the builder: any spec Validate
// accepts must Build without error for every seed.
func (g GenSpec) Validate() error {
	kindKnown := false
	for _, k := range GenKinds() {
		if g.Kind == k {
			kindKnown = true
			break
		}
	}
	if !kindKnown {
		return fmt.Errorf("workload: unknown generator kind %q (want %s)", g.Kind, strings.Join(GenKinds(), ", "))
	}
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"horizon_s", g.HorizonS},
		{"phase_mean_s", g.PhaseMeanS},
		{"target_fps", g.TargetFPS},
		{"cpu_cycles_per_frame_min", g.CPUCyclesPerFrameMin},
		{"cpu_cycles_per_frame_max", g.CPUCyclesPerFrameMax},
		{"gpu_cycles_per_frame_min", g.GPUCyclesPerFrameMin},
		{"gpu_cycles_per_frame_max", g.GPUCyclesPerFrameMax},
		{"burst_ratio", g.BurstRatio},
		{"touch_rate_per_s", g.TouchRatePerS},
	} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Errorf("workload: generator %s must be finite, got %v", f.name, f.value)
		}
	}
	if g.HorizonS <= 0 || g.PhaseMeanS <= 0 || g.TargetFPS <= 0 {
		return fmt.Errorf("workload: generator horizon, phase mean and target FPS must be positive")
	}
	if g.HorizonS/g.PhaseMeanS > MaxGenPhases {
		return fmt.Errorf("workload: generator horizon %vs over %vs phases spans more than %d phases",
			g.HorizonS, g.PhaseMeanS, MaxGenPhases)
	}
	if g.CPUCyclesPerFrameMin < 0 || g.GPUCyclesPerFrameMin < 0 {
		return fmt.Errorf("workload: generator cycle minima must be >= 0")
	}
	if g.CPUCyclesPerFrameMax < g.CPUCyclesPerFrameMin || g.GPUCyclesPerFrameMax < g.GPUCyclesPerFrameMin {
		return fmt.Errorf("workload: generator cycle maxima must be >= their minima")
	}
	if g.CPUCyclesPerFrameMax <= 0 && g.GPUCyclesPerFrameMax <= 0 {
		return fmt.Errorf("workload: generator needs a positive CPU or GPU cycle budget")
	}
	if g.BurstRatio <= 0 || g.BurstRatio > 1 {
		return fmt.Errorf("workload: generator burst_ratio must be in (0, 1], got %v", g.BurstRatio)
	}
	if g.TouchRatePerS < 0 {
		return fmt.Errorf("workload: generator touch rate must be >= 0")
	}
	for i, p := range g.Base {
		if math.IsNaN(p.DurationS) || p.DurationS <= 0 || math.IsInf(p.DurationS, 0) {
			return fmt.Errorf("workload: generator base phase %d duration must be positive and finite", i)
		}
		if math.IsNaN(p.CPUCyclesPerFrame) || p.CPUCyclesPerFrame < 0 || math.IsInf(p.CPUCyclesPerFrame, 0) ||
			math.IsNaN(p.GPUCyclesPerFrame) || p.GPUCyclesPerFrame < 0 || math.IsInf(p.GPUCyclesPerFrame, 0) {
			return fmt.Errorf("workload: generator base phase %d has invalid cycle costs", i)
		}
		if math.IsNaN(p.TargetFPS) || p.TargetFPS < 0 || math.IsInf(p.TargetFPS, 0) {
			return fmt.Errorf("workload: generator base phase %d target FPS must be >= 0 and finite", i)
		}
		if math.IsNaN(p.TouchRatePerS) || p.TouchRatePerS < 0 || math.IsInf(p.TouchRatePerS, 0) {
			return fmt.Errorf("workload: generator base phase %d touch rate must be >= 0 and finite", i)
		}
	}
	if len(g.Base) > MaxGenPhases {
		return fmt.Errorf("workload: generator base script has %d phases, exceeding the %d bound", len(g.Base), MaxGenPhases)
	}
	return nil
}

// MaxDemandHz returns the spec's demand ceiling for one axis: the
// highest CPU (or GPU) rate any phase the generator can synthesize may
// request. Generated apps use no scene variation, so the bound is
// exact; the property tests assert it.
func (g GenSpec) MaxDemandHz() (cpuHz, gpuHz float64) {
	g.Normalize()
	fps, cpuMax, gpuMax := g.TargetFPS, g.CPUCyclesPerFrameMax, g.GPUCyclesPerFrameMax
	if g.Kind == GenPerturb {
		for _, p := range g.basePhases() {
			pf := p.TargetFPS
			if pf == 0 {
				pf = g.TargetFPS
			}
			if pf > fps {
				fps = pf
			}
		}
	}
	return fps * cpuMax, fps * gpuMax
}

// basePhases returns the perturb kind's base script: the spec's own, or
// the built-in game-like profile scaled into the spec's cycle bounds.
func (g GenSpec) basePhases() []GenPhase {
	if len(g.Base) > 0 {
		return g.Base
	}
	// A Paper.io-shaped default: menu, heavy gameplay, score screen.
	return []GenPhase{
		{DurationS: 6, CPUCyclesPerFrame: span(g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax, 0.15),
			GPUCyclesPerFrame: span(g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax, 0.2), TargetFPS: g.TargetFPS, TouchRatePerS: g.TouchRatePerS * 0.5},
		{DurationS: 40, CPUCyclesPerFrame: span(g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax, 0.8),
			GPUCyclesPerFrame: span(g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax, 0.95), TargetFPS: g.TargetFPS, TouchRatePerS: g.TouchRatePerS},
		{DurationS: 4, CPUCyclesPerFrame: span(g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax, 0.2),
			GPUCyclesPerFrame: span(g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax, 0.3), TargetFPS: g.TargetFPS, TouchRatePerS: g.TouchRatePerS * 0.5},
	}
}

// mixSeed folds the spec's seed offset into the build seed with a
// SplitMix64-style finalizer, so adjacent (seed, offset) pairs land on
// well-spread streams. It is pinned by the determinism property test:
// changing it changes every generated workload.
func mixSeed(seed, offset int64) int64 {
	z := uint64(seed) ^ (uint64(offset) * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Build normalizes and validates the spec, then synthesizes the seeded
// phase script and wraps it in a FrameApp. The same (spec, seed) pair
// always produces the bitwise-identical app: phase synthesis consumes
// its own deterministic stream, and the FrameApp's runtime RNG (touch
// events) is seeded from the same mix.
func (g GenSpec) Build(seed int64) (*FrameApp, error) {
	g.Normalize()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	mixed := mixSeed(seed, g.Seed)
	rng := rand.New(rand.NewSource(mixed))

	var phases []Phase
	switch g.Kind {
	case GenBursty:
		phases = g.burstyPhases(rng)
	case GenPeriodic:
		phases = g.periodicPhases(rng)
	case GenRamp:
		phases = g.rampPhases(rng)
	case GenPerturb:
		phases = g.perturbPhases(rng)
	default:
		return nil, fmt.Errorf("workload: unknown generator kind %q", g.Kind)
	}
	return NewFrameApp(FrameAppConfig{
		Name:   g.Name,
		Phases: phases,
		Loop:   true,
		// No scene variation: the spec's cycle bounds are exact demand
		// bounds, which is what makes generated workloads analyzable.
		Seed: mixed + 1,
	})
}

// phaseDurations splits the horizon into n seeded phase lengths that
// sum exactly to the horizon: every duration is a share of the weight
// total, with the last taking the float remainder.
func (g GenSpec) phaseDurations(rng *rand.Rand, n int) []float64 {
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		// Weights in [0.5, 1.5): phase lengths vary ±50% around the mean
		// but can never collapse to zero.
		weights[i] = 0.5 + rng.Float64()
		total += weights[i]
	}
	out := make([]float64, n)
	sum := 0.0
	for i := 0; i < n-1; i++ {
		out[i] = g.HorizonS * (weights[i] / total)
		sum += out[i]
	}
	out[n-1] = g.HorizonS - sum
	return out
}

// numPhases returns the phase count for the horizon/mean pair, at
// least 2 so every kind has contrast within one loop.
func (g GenSpec) numPhases() int {
	n := int(math.Round(g.HorizonS / g.PhaseMeanS))
	if n < 2 {
		n = 2
	}
	return n
}

// span interpolates a cycle budget between its min and max bound.
func span(min, max, frac float64) float64 { return min + (max-min)*frac }

// burstyPhases alternates seeded idle and burst phases.
func (g GenSpec) burstyPhases(rng *rand.Rand) []Phase {
	n := g.numPhases()
	durs := g.phaseDurations(rng, n)
	phases := make([]Phase, n)
	for i := range phases {
		burst := rng.Float64() < g.BurstRatio
		cpuFrac, gpuFrac, touch := 0.05+0.1*rng.Float64(), 0.05+0.1*rng.Float64(), 0.0
		if burst {
			cpuFrac, gpuFrac, touch = 0.7+0.3*rng.Float64(), 0.7+0.3*rng.Float64(), g.TouchRatePerS
		}
		phases[i] = Phase{
			DurationS:         durs[i],
			CPUCyclesPerFrame: span(g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax, cpuFrac),
			GPUCyclesPerFrame: span(g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax, gpuFrac),
			TargetFPS:         g.TargetFPS,
			TouchRatePerS:     touch,
		}
	}
	return phases
}

// periodicPhases alternates low and high phases; the seeded part is
// only the per-cycle amplitude, so the profile is a jittered square
// wave.
func (g GenSpec) periodicPhases(rng *rand.Rand) []Phase {
	n := g.numPhases()
	durs := g.phaseDurations(rng, n)
	phases := make([]Phase, n)
	for i := range phases {
		frac := 0.1
		touch := 0.0
		if i%2 == 1 {
			frac = 0.85 + 0.15*rng.Float64()
			touch = g.TouchRatePerS
		}
		phases[i] = Phase{
			DurationS:         durs[i],
			CPUCyclesPerFrame: span(g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax, frac),
			GPUCyclesPerFrame: span(g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax, frac),
			TargetFPS:         g.TargetFPS,
			TouchRatePerS:     touch,
		}
	}
	return phases
}

// rampPhases walks demand monotonically from the minimum to the
// maximum across the horizon, with seeded jitter that never breaks
// monotonicity of the underlying ramp fraction grid.
func (g GenSpec) rampPhases(rng *rand.Rand) []Phase {
	n := g.numPhases()
	durs := g.phaseDurations(rng, n)
	phases := make([]Phase, n)
	for i := range phases {
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		frac := lo + (hi-lo)*rng.Float64()
		phases[i] = Phase{
			DurationS:         durs[i],
			CPUCyclesPerFrame: span(g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax, frac),
			GPUCyclesPerFrame: span(g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax, frac),
			TargetFPS:         g.TargetFPS,
			TouchRatePerS:     g.TouchRatePerS * frac,
		}
	}
	return phases
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// perturbPhases applies seeded log-normal multipliers to the base
// script's cycle costs, clamped into the spec bounds, and rescales the
// base durations onto the spec horizon (so the sum-to-horizon
// invariant holds for every kind).
func (g GenSpec) perturbPhases(rng *rand.Rand) []Phase {
	base := g.basePhases()
	baseTotal := 0.0
	for _, p := range base {
		baseTotal += p.DurationS
	}
	phases := make([]Phase, len(base))
	sum := 0.0
	for i, p := range base {
		cpuMult := math.Exp(rng.NormFloat64() * 0.25)
		gpuMult := math.Exp(rng.NormFloat64() * 0.25)
		fps := p.TargetFPS
		if fps == 0 {
			fps = g.TargetFPS
		}
		phases[i] = Phase{
			CPUCyclesPerFrame: clamp(p.CPUCyclesPerFrame*cpuMult, g.CPUCyclesPerFrameMin, g.CPUCyclesPerFrameMax),
			GPUCyclesPerFrame: clamp(p.GPUCyclesPerFrame*gpuMult, g.GPUCyclesPerFrameMin, g.GPUCyclesPerFrameMax),
			TargetFPS:         fps,
			TouchRatePerS:     p.TouchRatePerS,
		}
		if i < len(base)-1 {
			phases[i].DurationS = g.HorizonS * (p.DurationS / baseTotal)
			sum += phases[i].DurationS
		} else {
			phases[i].DurationS = g.HorizonS - sum
		}
	}
	return phases
}

// Phases exposes the synthesized script of a built generator app —
// what the property tests and trace tooling inspect.
func (a *FrameApp) Phases() []Phase {
	return append([]Phase(nil), a.cfg.Phases...)
}
