package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ReplaySample is one row of a recorded demand trace.
type ReplaySample struct {
	// TimeS is the sample time; samples must be in ascending order.
	TimeS float64
	// CPUHz and GPUHz are the demanded execution rates at that time.
	CPUHz, GPUHz float64
}

// ReplayApp replays a recorded demand trace (zero-order hold between
// samples). It lets users drive the simulator with measured traces —
// for example, utilization logs captured from a real phone — instead
// of the synthetic app models, while reusing the whole governor/
// power/thermal pipeline.
type ReplayApp struct {
	name    string
	samples []ReplaySample
	loop    bool

	idx     int
	epoch   float64 // start time of the current loop iteration
	cpuWork float64 // integrated achieved CPU cycles
	gpuWork float64
}

// NewReplayApp validates the trace and builds the app. Samples must be
// non-empty, time-ascending, starting at t=0, with non-negative rates.
func NewReplayApp(name string, samples []ReplaySample, loop bool) (*ReplayApp, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("workload: replay %q needs at least one sample", name)
	}
	if samples[0].TimeS != 0 {
		return nil, fmt.Errorf("workload: replay %q must start at t=0, got %v", name, samples[0].TimeS)
	}
	for i, s := range samples {
		if s.CPUHz < 0 || s.GPUHz < 0 || math.IsNaN(s.CPUHz) || math.IsNaN(s.GPUHz) {
			return nil, fmt.Errorf("workload: replay %q sample %d has invalid rates (%v, %v)", name, i, s.CPUHz, s.GPUHz)
		}
		if math.IsNaN(s.TimeS) || (i > 0 && s.TimeS <= samples[i-1].TimeS) {
			return nil, fmt.Errorf("workload: replay %q sample %d out of order at t=%v", name, i, s.TimeS)
		}
	}
	return &ReplayApp{
		name:    name,
		samples: append([]ReplaySample(nil), samples...),
		loop:    loop,
	}, nil
}

// ParseReplayCSV parses a trace in "time_s,cpu_hz,gpu_hz" CSV form
// (header row optional) and builds a ReplayApp.
func ParseReplayCSV(name, csv string, loop bool) (*ReplayApp, error) {
	var samples []ReplaySample
	for i, line := range strings.Split(csv, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("workload: replay CSV line %d: want 3 fields, got %d", i+1, len(fields))
		}
		t, err1 := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		c, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		g, err3 := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			if i == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("workload: replay CSV line %d: non-numeric fields", i+1)
		}
		samples = append(samples, ReplaySample{TimeS: t, CPUHz: c, GPUHz: g})
	}
	return NewReplayApp(name, samples, loop)
}

// Name implements App.
func (r *ReplayApp) Name() string { return r.name }

// Samples returns a copy of the trace rows the app replays.
func (r *ReplayApp) Samples() []ReplaySample {
	return append([]ReplaySample(nil), r.samples...)
}

// Duration returns the trace length in seconds: the time of the last
// sample. Without looping the last sample's rates hold forever; with
// looping the last sample marks the loop end (zero width), so traces
// meant to loop should finish with a terminator row.
func (r *ReplayApp) Duration() float64 { return r.samples[len(r.samples)-1].TimeS }

// Demand implements App.
func (r *ReplayApp) Demand(nowS float64) Demand {
	local := nowS - r.epoch
	if r.loop && r.Duration() > 0 {
		for local >= r.Duration() {
			local -= r.Duration()
			r.epoch += r.Duration()
			r.idx = 0
		}
	}
	// Advance the cursor; traces play forward, so the common case is
	// O(1). Seeks (after a loop reset) fall back to binary search.
	if r.idx > 0 && r.samples[r.idx].TimeS > local {
		r.idx = sort.Search(len(r.samples), func(i int) bool {
			return r.samples[i].TimeS > local
		}) - 1
		if r.idx < 0 {
			r.idx = 0
		}
	}
	for r.idx+1 < len(r.samples) && r.samples[r.idx+1].TimeS <= local {
		r.idx++
	}
	s := r.samples[r.idx]
	return Demand{CPUHz: s.CPUHz, GPUHz: s.GPUHz}
}

// Advance implements App.
func (r *ReplayApp) Advance(nowS, dt float64, res Resources) {
	r.cpuWork += res.CPUSpeedHz * dt
	r.gpuWork += res.GPUSpeedHz * dt
}

// AchievedCPUCycles reports the total CPU cycles granted so far.
func (r *ReplayApp) AchievedCPUCycles() float64 { return r.cpuWork }

// AchievedGPUCycles reports the total GPU cycles granted so far.
func (r *ReplayApp) AchievedGPUCycles() float64 { return r.gpuWork }
