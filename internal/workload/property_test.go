package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: a frame app's instantaneous rate never exceeds its phase
// target (after slot quantization the target itself, being reachable,
// is the cap) and never goes negative, for arbitrary granted resources.
func TestFrameAppRateBounded(t *testing.T) {
	f := func(rawCPU, rawGPU float64, slotOn bool) bool {
		cpu := math.Abs(math.Mod(rawCPU, 5e9))
		gpu := math.Abs(math.Mod(rawGPU, 2e9))
		if math.IsNaN(cpu) || math.IsNaN(gpu) {
			return true
		}
		slot := 0.0
		if slotOn {
			slot = 120
		}
		app, err := NewFrameApp(FrameAppConfig{
			Name: "p",
			Phases: []Phase{
				{DurationS: 10, CPUCyclesPerFrame: 5e6, GPUCyclesPerFrame: 8e6, TargetFPS: 40},
			},
			Loop:   true,
			SlotHz: slot,
		})
		if err != nil {
			return false
		}
		prevFrames := 0.0
		for i := 0; i < 30; i++ {
			now := float64(i) * 0.1
			app.Demand(now)
			app.Advance(now, 0.1, Resources{CPUSpeedHz: cpu, GPUSpeedHz: gpu})
			frames := app.Frames()
			// Frames are cumulative and the per-interval rate respects
			// the 40 FPS target cap.
			if frames < prevFrames-1e-9 {
				return false
			}
			if frames-prevFrames > 40*0.1+1e-6 {
				return false
			}
			prevFrames = frames
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the demand a frame app reports is always non-negative and
// finite, for any point in its (looping) script.
func TestFrameAppDemandFinite(t *testing.T) {
	f := func(rawT float64, seed int64) bool {
		app := PaperIO(seed)
		now := math.Abs(math.Mod(rawT, 1000))
		if math.IsNaN(now) {
			return true
		}
		d := app.Demand(now)
		for _, v := range []float64{d.CPUHz, d.GPUHz} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: slot quantization only ever reduces the rate, and the
// result divides the slot clock.
func TestSlotQuantizationProperty(t *testing.T) {
	f := func(rawFPS float64) bool {
		raw := 1 + math.Abs(math.Mod(rawFPS, 200))
		app := MustFrameApp(FrameAppConfig{
			Name:   "q",
			Phases: []Phase{{DurationS: 1000, GPUCyclesPerFrame: 1e6, TargetFPS: 1000}},
			Loop:   true,
			SlotHz: 120,
		})
		// Grant exactly raw FPS worth of GPU cycles for 1 s.
		for i := 0; i < 10; i++ {
			app.Advance(float64(i)*0.1, 0.1, Resources{GPUSpeedHz: raw * 1e6})
		}
		got := app.Frames()
		if got > raw+1e-6 {
			return false // quantization must not create frames
		}
		// The observed rate must be 120/k for an integer k.
		if got <= 0 {
			return raw < 1.5 // only near-zero grants may round to zero
		}
		k := 120 / got
		return math.Abs(k-math.Round(k)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
