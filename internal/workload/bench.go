package workload

import (
	"fmt"

	"repro/internal/stats"
)

// This file defines the Odroid-XU3 benchmark workloads of Section IV-C:
// 3DMark (Graphics Test 1 and 2) and Nenamark (level-based, terminating
// when the frame rate falls below the desired level).

// ThreeDMarkPhaseGT1 and ThreeDMarkPhaseGT2 index the two graphics
// tests inside the ThreeDMark phase script.
const (
	ThreeDMarkPhaseGT1 = 0
	ThreeDMarkPhaseGT2 = 1
)

// ThreeDMark is the 3DMark benchmark model: GT1 (lighter scenes, ~100
// FPS class on the Mali) followed by GT2 (heavier scenes, ~50 FPS
// class). Scores are the median FPS of each test, matching Table II.
type ThreeDMark struct {
	*FrameApp
}

// NewThreeDMark builds the benchmark with the given RNG seed.
func NewThreeDMark(seed int64) *ThreeDMark {
	return &ThreeDMark{FrameApp: MustFrameApp(FrameAppConfig{
		Name: "3dmark",
		Phases: []Phase{
			// GT1: light geometry.
			{DurationS: 110, CPUCyclesPerFrame: 6.0 * mega, GPUCyclesPerFrame: 6.0 * mega, TargetFPS: 120},
			// GT2: heavy shading.
			{DurationS: 110, CPUCyclesPerFrame: 7.0 * mega, GPUCyclesPerFrame: 11.5 * mega, TargetFPS: 120},
		},
		Loop:         false,
		SceneSigma:   0.05,
		ScenePeriodS: 2,
		Seed:         seed,
	})}
}

// GT1FPS returns the Graphics Test 1 score (median FPS).
func (t *ThreeDMark) GT1FPS() float64 { return t.PhaseMedianFPS(ThreeDMarkPhaseGT1) }

// GT2FPS returns the Graphics Test 2 score (median FPS).
func (t *ThreeDMark) GT2FPS() float64 { return t.PhaseMedianFPS(ThreeDMarkPhaseGT2) }

// Nenamark models the Nenamark benchmark: levels of geometrically
// increasing GPU cost run back to back; the run terminates once the
// frame rate stays below the desired level, and the score is the number
// of levels sustained (fractional within the failing level), matching
// the paper's "3.5 levels" metric.
type Nenamark struct {
	cfg NenamarkConfig

	level       int     // 0-based current level
	levelStart  float64 // time the level began
	failSeconds float64 // consecutive seconds below threshold
	terminated  bool
	score       float64

	frames       float64
	bucketFrames float64
	bucketStart  float64
	fpsSamples   []float64
}

// NenamarkConfig parameterizes the Nenamark model.
type NenamarkConfig struct {
	// Levels is the number of levels available.
	Levels int
	// LevelDurationS is each level's duration when sustained.
	LevelDurationS float64
	// BaseGPUCyclesPerFrame is level 1's per-frame GPU cost.
	BaseGPUCyclesPerFrame float64
	// LevelFactor multiplies the cost per level (geometric).
	LevelFactor float64
	// RampFactor scales the cost linearly within a level from 1x at the
	// start to RampFactor at the end (scenes get heavier as a level
	// progresses), which is what makes fractional scores like the
	// paper's "3.4 levels" possible. 1 (or 0) disables the ramp.
	RampFactor float64
	// CPUCyclesPerFrame is the fixed per-frame CPU cost.
	CPUCyclesPerFrame float64
	// ThresholdFPS is the desired frame rate; the run ends when FPS
	// stays below it for FailAfterS consecutive seconds.
	ThresholdFPS float64
	// FailAfterS is the sustained-below-threshold window that terminates
	// the run.
	FailAfterS float64
	// TargetFPS caps frame production.
	TargetFPS float64
}

// DefaultNenamarkConfig reproduces the paper's scoring scale: the
// unthrottled Odroid sustains ≈3.5 levels.
func DefaultNenamarkConfig() NenamarkConfig {
	return NenamarkConfig{
		Levels:                6,
		LevelDurationS:        30,
		BaseGPUCyclesPerFrame: 5.0 * mega,
		LevelFactor:           1.5,
		RampFactor:            1.4,
		CPUCyclesPerFrame:     2.0 * mega,
		ThresholdFPS:          30,
		FailAfterS:            3,
		TargetFPS:             60,
	}
}

// NewNenamark builds the benchmark. The config is validated.
func NewNenamark(cfg NenamarkConfig) (*Nenamark, error) {
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("workload: nenamark needs >= 1 level, got %d", cfg.Levels)
	}
	if cfg.LevelDurationS <= 0 || cfg.BaseGPUCyclesPerFrame <= 0 || cfg.LevelFactor <= 1 {
		return nil, fmt.Errorf("workload: nenamark config invalid: %+v", cfg)
	}
	if cfg.ThresholdFPS <= 0 || cfg.FailAfterS <= 0 || cfg.TargetFPS < cfg.ThresholdFPS {
		return nil, fmt.Errorf("workload: nenamark FPS config invalid: %+v", cfg)
	}
	if cfg.CPUCyclesPerFrame < 0 {
		return nil, fmt.Errorf("workload: nenamark CPU cost must be >= 0")
	}
	if cfg.RampFactor == 0 {
		cfg.RampFactor = 1
	}
	if cfg.RampFactor < 1 {
		return nil, fmt.Errorf("workload: nenamark ramp factor must be >= 1, got %v", cfg.RampFactor)
	}
	return &Nenamark{cfg: cfg}, nil
}

// Name implements App.
func (n *Nenamark) Name() string { return "nenamark" }

// gpuCost returns the per-frame GPU cycles at the given progress
// (0..1) through the current level.
func (n *Nenamark) gpuCost(progress float64) float64 {
	c := n.cfg.BaseGPUCyclesPerFrame
	for i := 0; i < n.level; i++ {
		c *= n.cfg.LevelFactor
	}
	if progress < 0 {
		progress = 0
	}
	if progress > 1 {
		progress = 1
	}
	return c * (1 + (n.cfg.RampFactor-1)*progress)
}

// progress returns the fraction of the current level elapsed at nowS.
func (n *Nenamark) progress(nowS float64) float64 {
	return (nowS - n.levelStart) / n.cfg.LevelDurationS
}

// Demand implements App.
func (n *Nenamark) Demand(nowS float64) Demand {
	if n.terminated {
		return Demand{}
	}
	return Demand{
		CPUHz: n.cfg.TargetFPS * n.cfg.CPUCyclesPerFrame,
		GPUHz: n.cfg.TargetFPS * n.gpuCost(n.progress(nowS)),
	}
}

// Advance implements App.
func (n *Nenamark) Advance(nowS, dt float64, r Resources) {
	if n.terminated {
		return
	}
	fps := n.cfg.TargetFPS
	if n.cfg.CPUCyclesPerFrame > 0 && r.CPUSpeedHz/n.cfg.CPUCyclesPerFrame < fps {
		fps = r.CPUSpeedHz / n.cfg.CPUCyclesPerFrame
	}
	if g := n.gpuCost(n.progress(nowS)); g > 0 && r.GPUSpeedHz/g < fps {
		fps = r.GPUSpeedHz / g
	}
	if fps < 0 {
		fps = 0
	}
	n.frames += fps * dt
	n.bucketFrames += fps * dt

	for nowS+dt-n.bucketStart >= 1.0 {
		sample := n.bucketFrames
		n.fpsSamples = append(n.fpsSamples, sample)
		n.bucketFrames = 0
		n.bucketStart += 1.0
		if sample < n.cfg.ThresholdFPS {
			n.failSeconds++
		} else {
			n.failSeconds = 0
		}
		if n.failSeconds >= n.cfg.FailAfterS {
			n.terminate(n.bucketStart)
			return
		}
	}

	// Level progression.
	if nowS+dt-n.levelStart >= n.cfg.LevelDurationS {
		n.levelStart += n.cfg.LevelDurationS
		n.level++
		n.failSeconds = 0
		if n.level >= n.cfg.Levels {
			// Survived everything: full score.
			n.terminated = true
			n.score = float64(n.cfg.Levels)
		}
	}
}

// terminate ends the run and fixes the fractional score: completed
// levels plus the fraction of the failing level survived.
func (n *Nenamark) terminate(nowS float64) {
	n.terminated = true
	frac := (nowS - n.levelStart - n.cfg.FailAfterS) / n.cfg.LevelDurationS
	n.score = float64(n.level) + stats.Clamp(frac, 0, 0.999)
}

// Done reports whether the run has terminated.
func (n *Nenamark) Done() bool { return n.terminated }

// Score returns the levels sustained; 0.1 granularity matches the
// paper's "3.5 levels" reporting.
func (n *Nenamark) Score() float64 {
	if !n.terminated {
		// In-progress runs report completed levels so far.
		return float64(n.level)
	}
	return float64(int(n.score*10+0.5)) / 10
}

// Frames returns total frames rendered.
func (n *Nenamark) Frames() float64 { return n.frames }

// FPSSamples implements FPSReporter.
func (n *Nenamark) FPSSamples() []float64 {
	return append([]float64(nil), n.fpsSamples...)
}

// MedianFPS implements FPSReporter.
func (n *Nenamark) MedianFPS() float64 {
	m, err := stats.Median(n.fpsSamples)
	if err != nil {
		return 0
	}
	return m
}
