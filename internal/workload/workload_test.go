package workload

import (
	"math"
	"testing"

	"repro/internal/mibench"
)

func TestFrameAppValidation(t *testing.T) {
	base := Phase{DurationS: 1, CPUCyclesPerFrame: 1e6, GPUCyclesPerFrame: 1e6, TargetFPS: 60}
	cases := []struct {
		name string
		cfg  FrameAppConfig
	}{
		{"no phases", FrameAppConfig{Name: "x"}},
		{"zero duration", FrameAppConfig{Name: "x", Phases: []Phase{{TargetFPS: 60}}}},
		{"negative cpu", FrameAppConfig{Name: "x", Phases: []Phase{{DurationS: 1, CPUCyclesPerFrame: -1, TargetFPS: 60}}}},
		{"zero fps", FrameAppConfig{Name: "x", Phases: []Phase{{DurationS: 1}}}},
		{"negative touch", FrameAppConfig{Name: "x", Phases: []Phase{{DurationS: 1, TargetFPS: 60, TouchRatePerS: -1}}}},
		{"sigma without period", FrameAppConfig{Name: "x", Phases: []Phase{base}, SceneSigma: 0.2}},
		{"negative sigma", FrameAppConfig{Name: "x", Phases: []Phase{base}, SceneSigma: -0.2, ScenePeriodS: 1}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewFrameApp(tt.cfg); err == nil {
				t.Errorf("config %+v should be rejected", tt.cfg)
			}
		})
	}
}

func TestMustFrameAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustFrameApp(FrameAppConfig{Name: "bad"})
}

func simpleApp(t *testing.T, target float64) *FrameApp {
	t.Helper()
	a, err := NewFrameApp(FrameAppConfig{
		Name:   "simple",
		Phases: []Phase{{DurationS: 1000, CPUCyclesPerFrame: 1e6, GPUCyclesPerFrame: 2e6, TargetFPS: target}},
		Loop:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFrameAppDemandMatchesPhase(t *testing.T) {
	a := simpleApp(t, 60)
	d := a.Demand(0)
	if math.Abs(d.CPUHz-60e6) > 1 {
		t.Errorf("cpu demand = %v, want 60e6", d.CPUHz)
	}
	if math.Abs(d.GPUHz-120e6) > 1 {
		t.Errorf("gpu demand = %v, want 120e6", d.GPUHz)
	}
}

// Giving exactly the demanded resources yields the target frame rate.
func TestFrameAppHitsTargetWithFullResources(t *testing.T) {
	a := simpleApp(t, 60)
	r := Resources{CPUSpeedHz: 60e6, GPUSpeedHz: 120e6}
	for now := 0.0; now < 10; now += 0.01 {
		a.Demand(now)
		a.Advance(now, 0.01, r)
	}
	if m := a.MedianFPS(); math.Abs(m-60) > 0.5 {
		t.Errorf("median FPS = %v, want ~60", m)
	}
	if f := a.Frames(); math.Abs(f-600) > 5 {
		t.Errorf("frames = %v, want ~600", f)
	}
}

// Halving the GPU grant halves the frame rate (GPU-bound app).
func TestFrameAppGPUBoundScaling(t *testing.T) {
	a := simpleApp(t, 60)
	r := Resources{CPUSpeedHz: 60e6, GPUSpeedHz: 60e6} // half the GPU need
	for now := 0.0; now < 10; now += 0.01 {
		a.Demand(now)
		a.Advance(now, 0.01, r)
	}
	if m := a.MedianFPS(); math.Abs(m-30) > 0.5 {
		t.Errorf("median FPS = %v, want ~30 (GPU bound)", m)
	}
}

// The slower stage limits the pipeline.
func TestFrameAppSlowestStageWins(t *testing.T) {
	a := simpleApp(t, 60)
	r := Resources{CPUSpeedHz: 20e6, GPUSpeedHz: 1e9} // CPU allows 20 FPS
	for now := 0.0; now < 5; now += 0.01 {
		a.Demand(now)
		a.Advance(now, 0.01, r)
	}
	if m := a.MedianFPS(); math.Abs(m-20) > 0.5 {
		t.Errorf("median FPS = %v, want ~20 (CPU bound)", m)
	}
}

func TestFrameAppZeroResourcesZeroFPS(t *testing.T) {
	a := simpleApp(t, 60)
	for now := 0.0; now < 3; now += 0.01 {
		a.Demand(now)
		a.Advance(now, 0.01, Resources{})
	}
	if m := a.MedianFPS(); m != 0 {
		t.Errorf("median FPS = %v, want 0", m)
	}
}

func TestFrameAppPhaseProgressionAndLoop(t *testing.T) {
	a, err := NewFrameApp(FrameAppConfig{
		Name: "two-phase",
		Phases: []Phase{
			{DurationS: 1, CPUCyclesPerFrame: 1e6, TargetFPS: 10},
			{DurationS: 1, CPUCyclesPerFrame: 2e6, TargetFPS: 10},
		},
		Loop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d0 := a.Demand(0.5)
	d1 := a.Demand(1.5)
	d2 := a.Demand(2.5) // back to phase 0
	if d0.CPUHz != 10e6 || d1.CPUHz != 20e6 || d2.CPUHz != 10e6 {
		t.Errorf("phase demands = %v %v %v", d0.CPUHz, d1.CPUHz, d2.CPUHz)
	}
}

func TestFrameAppNonLoopingFinishes(t *testing.T) {
	a, err := NewFrameApp(FrameAppConfig{
		Name:   "oneshot",
		Phases: []Phase{{DurationS: 2, CPUCyclesPerFrame: 1e6, TargetFPS: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Done() {
		t.Fatal("should not be done at start")
	}
	d := a.Demand(3)
	if !a.Done() {
		t.Error("should be done after script ends")
	}
	if d.CPUHz != 0 || d.GPUHz != 0 {
		t.Errorf("done app demand = %+v, want zero", d)
	}
}

func TestFrameAppSceneVariationDeterministic(t *testing.T) {
	run := func(seed int64) float64 {
		a := MustFrameApp(FrameAppConfig{
			Name:         "v",
			Phases:       []Phase{{DurationS: 100, CPUCyclesPerFrame: 1e6, TargetFPS: 60}},
			Loop:         true,
			SceneSigma:   0.3,
			ScenePeriodS: 0.5,
			Seed:         seed,
		})
		sum := 0.0
		for now := 0.0; now < 20; now += 0.01 {
			sum += a.Demand(now).CPUHz
		}
		return sum
	}
	if run(42) != run(42) {
		t.Error("same seed must reproduce demands")
	}
	if run(42) == run(43) {
		t.Error("different seeds should differ")
	}
}

func TestFrameAppSceneMultiplierBounded(t *testing.T) {
	a := MustFrameApp(FrameAppConfig{
		Name:         "v",
		Phases:       []Phase{{DurationS: 100, CPUCyclesPerFrame: 1e6, TargetFPS: 60}},
		Loop:         true,
		SceneSigma:   1.5, // extreme sigma; clamp must hold
		ScenePeriodS: 0.1,
		Seed:         7,
	})
	for now := 0.0; now < 30; now += 0.05 {
		d := a.Demand(now)
		if d.CPUHz < 0.5*60e6-1 || d.CPUHz > 2.0*60e6+1 {
			t.Fatalf("demand %v outside clamp at t=%v", d.CPUHz, now)
		}
	}
}

func TestFrameAppTouchEventsOccur(t *testing.T) {
	a := MustFrameApp(FrameAppConfig{
		Name:   "touchy",
		Phases: []Phase{{DurationS: 1000, CPUCyclesPerFrame: 1e6, TargetFPS: 60, TouchRatePerS: 50}},
		Loop:   true,
		Seed:   1,
	})
	touches := 0
	for now := 0.0; now < 20; now += 0.001 {
		if a.Demand(now).Touch {
			touches++
		}
	}
	if touches == 0 {
		t.Error("expected touch events at 50/s over 20s")
	}
}

func TestPhaseMedianFPSSeparation(t *testing.T) {
	a := MustFrameApp(FrameAppConfig{
		Name: "mark",
		Phases: []Phase{
			{DurationS: 5, GPUCyclesPerFrame: 1e6, TargetFPS: 100},
			{DurationS: 5, GPUCyclesPerFrame: 2e6, TargetFPS: 100},
		},
	})
	r := Resources{CPUSpeedHz: 1e9, GPUSpeedHz: 100e6}
	for now := 0.0; now < 10; now += 0.01 {
		a.Demand(now)
		a.Advance(now, 0.01, r)
	}
	gt1 := a.PhaseMedianFPS(0)
	gt2 := a.PhaseMedianFPS(1)
	if math.Abs(gt1-100) > 2 {
		t.Errorf("phase 0 median = %v, want ~100", gt1)
	}
	if math.Abs(gt2-50) > 2 {
		t.Errorf("phase 1 median = %v, want ~50", gt2)
	}
	if a.PhaseMedianFPS(9) != 0 {
		t.Error("unknown phase should report 0")
	}
}

func TestAndroidAppConstructors(t *testing.T) {
	apps := []App{PaperIO(1), StickmanHook(2), Amazon(3), Hangouts(4), Facebook(5)}
	names := map[string]bool{}
	for _, a := range apps {
		if a.Name() == "" {
			t.Error("app with empty name")
		}
		names[a.Name()] = true
		d := a.Demand(0)
		if d.CPUHz < 0 || d.GPUHz < 0 {
			t.Errorf("%s: negative demand", a.Name())
		}
	}
	if len(names) != 5 {
		t.Errorf("expected 5 distinct apps, got %v", names)
	}
}

func TestGamesAreGPUDominated(t *testing.T) {
	// Sample demand over the looped script; games should ask more GPU
	// than CPU on average, Amazon the reverse (Section III-B).
	avg := func(a App) (cpu, gpu float64) {
		n := 0
		for now := 0.0; now < 60; now += 0.05 {
			d := a.Demand(now)
			cpu += d.CPUHz
			gpu += d.GPUHz
			n++
		}
		return cpu / float64(n), gpu / float64(n)
	}
	cpu, gpu := avg(PaperIO(1))
	if gpu <= cpu {
		t.Errorf("paper.io should be GPU dominated: cpu=%v gpu=%v", cpu, gpu)
	}
	cpu, gpu = avg(Amazon(1))
	if cpu <= gpu {
		t.Errorf("amazon should be CPU dominated: cpu=%v gpu=%v", cpu, gpu)
	}
}

func TestThreeDMarkScores(t *testing.T) {
	m := NewThreeDMark(11)
	r := Resources{CPUSpeedHz: 2e9, GPUSpeedHz: 600e6}
	for now := 0.0; now < 220 && !m.Done(); now += 0.01 {
		m.Demand(now)
		m.Advance(now, 0.01, r)
	}
	gt1, gt2 := m.GT1FPS(), m.GT2FPS()
	if gt1 <= gt2 {
		t.Errorf("GT1 (%v) should outscore GT2 (%v)", gt1, gt2)
	}
	// At a full 600 MHz Mali, GT1 ≈ 600/6.0 = 100 FPS class and
	// GT2 ≈ 600/11.5 = 52 FPS class (before scene variation).
	if gt1 < 80 || gt1 > 120 {
		t.Errorf("GT1 = %v, want ~100", gt1)
	}
	if gt2 < 40 || gt2 > 60 {
		t.Errorf("GT2 = %v, want ~52", gt2)
	}
}

func TestNenamarkValidation(t *testing.T) {
	bad := DefaultNenamarkConfig()
	bad.Levels = 0
	if _, err := NewNenamark(bad); err == nil {
		t.Error("expected error for zero levels")
	}
	bad = DefaultNenamarkConfig()
	bad.LevelFactor = 1.0
	if _, err := NewNenamark(bad); err == nil {
		t.Error("expected error for factor <= 1")
	}
	bad = DefaultNenamarkConfig()
	bad.TargetFPS = 10 // below threshold
	if _, err := NewNenamark(bad); err == nil {
		t.Error("expected error for target below threshold")
	}
	if _, err := NewNenamark(DefaultNenamarkConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// Run nenamark under a fixed GPU grant and return its score.
func runNenamark(t *testing.T, gpuHz float64) *Nenamark {
	t.Helper()
	n, err := NewNenamark(DefaultNenamarkConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := Resources{CPUSpeedHz: 2e9, GPUSpeedHz: gpuHz}
	for now := 0.0; now < 400 && !n.Done(); now += 0.01 {
		n.Demand(now)
		n.Advance(now, 0.01, r)
	}
	return n
}

func TestNenamarkScoreMonotoneInGPUSpeed(t *testing.T) {
	slow := runNenamark(t, 350e6)
	fast := runNenamark(t, 600e6)
	if !(fast.Score() > slow.Score()) {
		t.Errorf("score at 600MHz (%v) should exceed 350MHz (%v)", fast.Score(), slow.Score())
	}
}

func TestNenamarkBaselineScoreNear3p5(t *testing.T) {
	n := runNenamark(t, 600e6)
	// 600e6 / (6e6·1.5^k) per level: L1=100, L2=66, L3=44, L4=29.6 FPS —
	// level 4 fails quickly, so the score lands between 3.0 and 4.0.
	if s := n.Score(); s < 3.0 || s >= 4.0 {
		t.Errorf("baseline score = %v, want in [3.0, 4.0) like the paper's 3.5", s)
	}
	if !n.Done() {
		t.Error("run should have terminated")
	}
}

func TestNenamarkTerminatedDemandIsZero(t *testing.T) {
	n := runNenamark(t, 100e6) // too slow: dies in level 1
	if s := n.Score(); s >= 1 {
		t.Errorf("score at 100MHz = %v, want < 1", s)
	}
	d := n.Demand(999)
	if d.CPUHz != 0 || d.GPUHz != 0 {
		t.Error("terminated benchmark should demand nothing")
	}
}

func TestNenamarkPerfectRunFullScore(t *testing.T) {
	cfg := DefaultNenamarkConfig()
	cfg.Levels = 2
	n, err := NewNenamark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := Resources{CPUSpeedHz: 2e9, GPUSpeedHz: 10e9} // absurdly fast
	for now := 0.0; now < 120 && !n.Done(); now += 0.01 {
		n.Demand(now)
		n.Advance(now, 0.01, r)
	}
	if n.Score() != 2 {
		t.Errorf("perfect score = %v, want 2", n.Score())
	}
}

func TestBMLSaturatesAndComputes(t *testing.T) {
	b := NewBML()
	if b.Name() == "" {
		t.Error("BML needs a name")
	}
	d := b.Demand(0)
	if d.CPUHz < 1e11 {
		t.Errorf("BML demand = %v, should saturate any core", d.CPUHz)
	}
	if d.GPUHz != 0 {
		t.Error("BML must not use the GPU")
	}
	// Run 10 s at 2 GHz (integer step count: a float-accumulated loop
	// condition would run one extra step and skew the cycle total).
	for i := 0; i < 1000; i++ {
		b.Advance(float64(i)*0.01, 0.01, Resources{CPUSpeedHz: 2e9})
	}
	totalCycles := 2e9 * 10.0
	wantIters := uint64(totalCycles / float64(mibench.CyclesPerIteration))
	if got := b.Iterations(); got < wantIters-2 || got > wantIters+2 {
		t.Errorf("modeled iterations = %d, want ~%d", got, wantIters)
	}
	if b.ExecutedIterations() == 0 {
		t.Error("some kernels should actually execute")
	}
	exec := float64(b.ExecutedIterations()) / float64(b.Iterations())
	if exec < 0.0005 || exec > 0.002 {
		t.Errorf("execution ratio = %v, want ~0.001", exec)
	}
	if b.Checksum() == 0 {
		t.Error("checksum should accumulate")
	}
}

func TestBMLZeroSpeedNoWork(t *testing.T) {
	b := NewBML()
	b.Advance(0, 1, Resources{})
	if b.Iterations() != 0 {
		t.Errorf("iterations = %d, want 0", b.Iterations())
	}
}

func TestBMLScalesWithFrequency(t *testing.T) {
	slow, fast := NewBML(), NewBML()
	for now := 0.0; now < 5; now += 0.01 {
		slow.Advance(now, 0.01, Resources{CPUSpeedHz: 0.5e9})
		fast.Advance(now, 0.01, Resources{CPUSpeedHz: 2e9})
	}
	ratio := float64(fast.Iterations()) / float64(slow.Iterations())
	if math.Abs(ratio-4) > 0.05 {
		t.Errorf("4x frequency should give ~4x iterations, got %v", ratio)
	}
}
