package workload

import (
	"fmt"
	"sort"

	"repro/internal/snapbin"
)

// Snapshot support. Every app the sim layer can host implements
// SaveState and LoadState so engine snapshots capture workload progress
// (frame counts, RNG position, phase cursors) bit-exactly. ThreeDMark
// inherits FrameApp's implementation through embedding.

// SaveState serializes the frame app's mutable state: RNG position,
// phase cursor, scene multiplier, frame accounting, and FPS samples.
func (a *FrameApp) SaveState(w *snapbin.Writer) {
	seed, draws := a.src.State()
	w.PutI64(seed)
	w.PutU64(draws)
	w.PutInt(a.phaseIdx)
	w.PutF64(a.phaseStart)
	w.PutBool(a.done)
	w.PutF64(a.sceneMult)
	w.PutF64(a.nextScene)
	w.PutF64(a.frames)
	w.PutF64(a.bucketFrames)
	w.PutF64(a.bucketStart)
	w.PutF64s(a.fpsSamples)
	// phaseFPS in ascending-key order for a canonical byte stream.
	keys := make([]int, 0, len(a.phaseFPS))
	for k := range a.phaseFPS {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.PutInt(len(keys))
	for _, k := range keys {
		w.PutInt(k)
		w.PutF64s(a.phaseFPS[k])
	}
}

// LoadState restores state saved by SaveState into an app built from
// the same config.
func (a *FrameApp) LoadState(r *snapbin.Reader) error {
	seed := r.I64()
	draws := r.U64()
	phaseIdx := r.Int()
	phaseStart := r.F64()
	done := r.Bool()
	sceneMult := r.F64()
	nextScene := r.F64()
	frames := r.F64()
	bucketFrames := r.F64()
	bucketStart := r.F64()
	fpsSamples := r.F64s(a.fpsSamples)
	nPhases := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("workload: app %q: %w", a.cfg.Name, err)
	}
	if phaseIdx < 0 || phaseIdx >= len(a.cfg.Phases) {
		return fmt.Errorf("workload: app %q: restored phase %d out of range", a.cfg.Name, phaseIdx)
	}
	phaseFPS := make(map[int][]float64, nPhases)
	for i := 0; i < nPhases; i++ {
		k := r.Int()
		phaseFPS[k] = r.F64s(nil)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("workload: app %q: %w", a.cfg.Name, err)
	}
	a.src.Restore(seed, draws)
	a.phaseIdx = phaseIdx
	a.phaseStart = phaseStart
	a.done = done
	a.sceneMult = sceneMult
	a.nextScene = nextScene
	a.frames = frames
	a.bucketFrames = bucketFrames
	a.bucketStart = bucketStart
	a.fpsSamples = fpsSamples
	a.phaseFPS = phaseFPS
	return nil
}

// SaveState serializes BML's modeled and executed progress. The
// execution ratio is configuration, rebuilt by the caller.
func (b *BML) SaveState(w *snapbin.Writer) {
	w.PutF64(b.modeledCycles)
	w.PutU64(b.modeledIters)
	w.PutF64(b.executedBacklog)
	b.work.SaveState(w)
}

// LoadState restores state saved by SaveState.
func (b *BML) LoadState(r *snapbin.Reader) error {
	modeledCycles := r.F64()
	modeledIters := r.U64()
	executedBacklog := r.F64()
	if err := b.work.LoadState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("workload: bml: %w", err)
	}
	b.modeledCycles = modeledCycles
	b.modeledIters = modeledIters
	b.executedBacklog = executedBacklog
	return nil
}

// SaveState serializes the Nenamark run state: level cursor, failure
// window, termination, score, and frame accounting.
func (n *Nenamark) SaveState(w *snapbin.Writer) {
	w.PutInt(n.level)
	w.PutF64(n.levelStart)
	w.PutF64(n.failSeconds)
	w.PutBool(n.terminated)
	w.PutF64(n.score)
	w.PutF64(n.frames)
	w.PutF64(n.bucketFrames)
	w.PutF64(n.bucketStart)
	w.PutF64s(n.fpsSamples)
}

// LoadState restores state saved by SaveState.
func (n *Nenamark) LoadState(r *snapbin.Reader) error {
	level := r.Int()
	levelStart := r.F64()
	failSeconds := r.F64()
	terminated := r.Bool()
	score := r.F64()
	frames := r.F64()
	bucketFrames := r.F64()
	bucketStart := r.F64()
	fpsSamples := r.F64s(n.fpsSamples)
	if err := r.Err(); err != nil {
		return fmt.Errorf("workload: nenamark: %w", err)
	}
	n.level = level
	n.levelStart = levelStart
	n.failSeconds = failSeconds
	n.terminated = terminated
	n.score = score
	n.frames = frames
	n.bucketFrames = bucketFrames
	n.bucketStart = bucketStart
	n.fpsSamples = fpsSamples
	return nil
}

// SaveState serializes the replay cursor and achieved-work integrals.
func (r *ReplayApp) SaveState(w *snapbin.Writer) {
	w.PutInt(r.idx)
	w.PutF64(r.epoch)
	w.PutF64(r.cpuWork)
	w.PutF64(r.gpuWork)
}

// LoadState restores state saved by SaveState into an app built from
// the same trace.
func (r *ReplayApp) LoadState(rd *snapbin.Reader) error {
	idx := rd.Int()
	epoch := rd.F64()
	cpuWork := rd.F64()
	gpuWork := rd.F64()
	if err := rd.Err(); err != nil {
		return fmt.Errorf("workload: replay %q: %w", r.name, err)
	}
	if idx < 0 || idx >= len(r.samples) {
		return fmt.Errorf("workload: replay %q: restored cursor %d out of range", r.name, idx)
	}
	r.idx = idx
	r.epoch = epoch
	r.cpuWork = cpuWork
	r.gpuWork = gpuWork
	return nil
}
