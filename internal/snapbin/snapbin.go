// Package snapbin is the minimal little-endian binary codec behind
// engine snapshots: an append-only Writer and a truncation-checked
// Reader over a flat byte blob. It exists so every simulator package
// can serialize its own state with the same primitives — fixed-width
// integers, IEEE-754 float bits (bit-exact round trips, including NaN
// payloads and ±Inf), and length-prefixed slices — without pulling in
// encoding/gob's type machinery or reflection.
//
// The format has no self-description: reader and writer must agree on
// the field sequence, which the sim layer pins with a magic/version
// header and per-section tags. That is exactly the bitwise-determinism
// contract the snapshot feature needs — a blob restored into an engine
// built from the same spec reproduces the same bytes, and any drift in
// the field sequence fails loudly via tag mismatch or truncation.
package snapbin

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends fixed-width values to a growable byte buffer. The
// zero value is ready to use; Reset keeps the capacity so sweep loops
// can snapshot every checkpoint without reallocating.
type Writer struct {
	buf []byte
}

// Reset truncates the buffer, keeping capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated blob. The slice aliases the writer's
// buffer: copy it before the next Reset if it must outlive the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the blob length so far.
func (w *Writer) Len() int { return len(w.buf) }

// PutU64 appends a little-endian uint64.
func (w *Writer) PutU64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// PutI64 appends an int64 (two's-complement bits).
func (w *Writer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutInt appends an int as an int64.
func (w *Writer) PutInt(v int) { w.PutI64(int64(v)) }

// PutF64 appends a float64 as its exact IEEE-754 bit pattern.
func (w *Writer) PutF64(v float64) { w.PutU64(math.Float64bits(v)) }

// PutBool appends a bool as one 0/1 byte.
func (w *Writer) PutBool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// grow extends the buffer by n bytes in one step and returns the new
// region, so bulk putters pay one growth check per slice instead of
// one per element — slice serialization is the checkpoint hot path.
func (w *Writer) grow(n int) []byte {
	off := len(w.buf)
	if cap(w.buf)-off < n {
		w.buf = append(w.buf, make([]byte, n)...)
	} else {
		w.buf = w.buf[:off+n]
	}
	return w.buf[off:]
}

// PutF64s appends a length-prefixed float64 slice.
func (w *Writer) PutF64s(vs []float64) {
	w.PutU64(uint64(len(vs)))
	dst := w.grow(8 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// PutI64s appends a length-prefixed int64 slice.
func (w *Writer) PutI64s(vs []int64) {
	w.PutU64(uint64(len(vs)))
	dst := w.grow(8 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

// PutInts appends a length-prefixed int slice (as int64s).
func (w *Writer) PutInts(vs []int) {
	w.PutU64(uint64(len(vs)))
	dst := w.grow(8 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(int64(v)))
	}
}

// PutTag appends a section marker the reader must match with Tag —
// cheap misalignment insurance between serialized components.
func (w *Writer) PutTag(tag uint64) { w.PutU64(tag) }

// Reader consumes a blob written by Writer. Errors are sticky: the
// first truncation or tag mismatch poisons every later read (which
// then return zero values), so callers check Err once at the end —
// or sooner, before acting on variable-length data.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a blob.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, nil if none.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left unread.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapbin: "+format, args...)
	}
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated blob at offset %d (want 8 bytes, have %d)", r.off, len(r.buf)-r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 from its exact bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("truncated blob at offset %d (want 1 byte)", r.off)
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("invalid bool byte %d at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

// F64sInto reads a length-prefixed float64 slice whose stored length
// must equal len(dst) — the fixed-size restore path that never
// reallocates (thermal temps, dvfs residency, stats windows).
func (r *Reader) F64sInto(dst []float64) {
	n := r.U64()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.fail("slice length %d does not match destination %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// F64s reads a length-prefixed float64 slice, appending into dst[:0]
// so capacity is reused across restores. A nil result means an empty
// slice (or a poisoned reader).
func (r *Reader) F64s(dst []float64) []float64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()/8) {
		r.fail("slice length %d exceeds remaining blob", n)
		return nil
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		dst = append(dst, r.F64())
	}
	return dst
}

// I64s reads a length-prefixed int64 slice, appending into dst[:0].
func (r *Reader) I64s(dst []int64) []int64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()/8) {
		r.fail("slice length %d exceeds remaining blob", n)
		return nil
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		dst = append(dst, r.I64())
	}
	return dst
}

// Ints reads a length-prefixed int slice, appending into dst[:0].
func (r *Reader) Ints(dst []int) []int {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()/8) {
		r.fail("slice length %d exceeds remaining blob", n)
		return nil
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		dst = append(dst, r.Int())
	}
	return dst
}

// Tag reads a section marker and fails unless it matches want.
func (r *Reader) Tag(want uint64) {
	got := r.U64()
	if r.err == nil && got != want {
		r.fail("section tag mismatch at offset %d: got %#x, want %#x", r.off-8, got, want)
	}
}
