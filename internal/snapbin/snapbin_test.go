package snapbin

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.PutTag(0xfeed)
	w.PutU64(42)
	w.PutI64(-7)
	w.PutInt(123456)
	w.PutF64(3.14159)
	w.PutF64(math.Inf(1))
	w.PutF64(math.Inf(-1))
	w.PutF64(math.NaN())
	w.PutBool(true)
	w.PutBool(false)
	w.PutF64s([]float64{1.5, -2.5, 0})
	w.PutI64s([]int64{-1, 0, 9})
	w.PutInts([]int{4, 5})
	w.PutF64s(nil)

	r := NewReader(w.Bytes())
	r.Tag(0xfeed)
	if got := r.U64(); got != 42 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, 1) {
		t.Fatalf("F64 = %v, want +Inf", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 = %v, want -Inf", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Fatalf("F64 = %v, want NaN", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip broken")
	}
	dst := make([]float64, 3)
	r.F64sInto(dst)
	if dst[0] != 1.5 || dst[1] != -2.5 || dst[2] != 0 {
		t.Fatalf("F64sInto = %v", dst)
	}
	is := r.I64s(nil)
	if len(is) != 3 || is[0] != -1 || is[2] != 9 {
		t.Fatalf("I64s = %v", is)
	}
	ints := r.Ints(nil)
	if len(ints) != 2 || ints[0] != 4 || ints[1] != 5 {
		t.Fatalf("Ints = %v", ints)
	}
	if got := r.F64s(nil); len(got) != 0 {
		t.Fatalf("empty F64s = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d bytes", r.Remaining())
	}
}

func TestNaNBitsPreserved(t *testing.T) {
	// A NaN with a nonstandard payload must round trip bit-exactly:
	// snapshots promise bitwise state fidelity, not value equality.
	payload := math.Float64frombits(0x7ff8dead_beef0001)
	var w Writer
	w.PutF64(payload)
	r := NewReader(w.Bytes())
	if got := math.Float64bits(r.F64()); got != 0x7ff8dead_beef0001 {
		t.Fatalf("NaN payload drifted: %#x", got)
	}
}

func TestTruncationAndStickyError(t *testing.T) {
	var w Writer
	w.PutU64(1)
	blob := w.Bytes()

	r := NewReader(blob[:4])
	if got := r.U64(); got != 0 {
		t.Fatalf("truncated U64 = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Sticky: later reads keep the first error and return zeros.
	first := r.Err()
	if got := r.F64(); got != 0 {
		t.Fatalf("poisoned F64 = %v", got)
	}
	if r.Err() != first {
		t.Fatalf("error not sticky: %v", r.Err())
	}
}

func TestTagMismatch(t *testing.T) {
	var w Writer
	w.PutTag(0xaaaa)
	r := NewReader(w.Bytes())
	r.Tag(0xbbbb)
	if r.Err() == nil {
		t.Fatal("want tag mismatch error")
	}
}

func TestLengthMismatch(t *testing.T) {
	var w Writer
	w.PutF64s([]float64{1, 2, 3})
	r := NewReader(w.Bytes())
	dst := make([]float64, 2)
	r.F64sInto(dst)
	if r.Err() == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A corrupt length prefix must fail fast, not attempt a huge alloc.
	var w Writer
	w.PutU64(1 << 60)
	r := NewReader(w.Bytes())
	if got := r.F64s(nil); got != nil || r.Err() == nil {
		t.Fatalf("hostile length accepted: %v, err=%v", got, r.Err())
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.PutU64(7)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len after reset = %d", w.Len())
	}
	w.PutU64(9)
	r := NewReader(w.Bytes())
	if got := r.U64(); got != 9 {
		t.Fatalf("after reset = %d", got)
	}
}
