package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"fractions", []float64{0.5, 1.5, 2.5, 3.5}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean(%v) error: %v", tt.in, err)
			}
			if !ApproxEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
}

func TestMedianOddEven(t *testing.T) {
	odd := []float64{9, 1, 5}
	if m, _ := Median(odd); m != 5 {
		t.Errorf("Median(odd) = %v, want 5", m)
	}
	even := []float64{1, 2, 3, 10}
	if m, _ := Median(even); m != 2.5 {
		t.Errorf("Median(even) = %v, want 2.5", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	in := []float64{4, 1, 3, 2}
	if q, _ := Quantile(in, 0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q, _ := Quantile(in, 1); q != 4 {
		t.Errorf("q1 = %v, want 4", q)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	in := []float64{0, 10}
	got, err := Quantile(in, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(got, 2.5, 1e-12) {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
}

func TestQuantileRange(t *testing.T) {
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("expected error for q < 0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("expected error for q > 1")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("expected error for NaN q")
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -2, 7, 0}
	if m, _ := Min(in); m != -2 {
		t.Errorf("Min = %v, want -2", m)
	}
	if m, _ := Max(in); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
}

func TestVarianceStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	s, _ := StdDev(in)
	if !ApproxEqual(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 9, 0, -7.5}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	m, _ := Mean(xs)
	if !ApproxEqual(r.Mean(), m, 1e-12) {
		t.Errorf("running mean %v != batch %v", r.Mean(), m)
	}
	v, _ := Variance(xs)
	if !ApproxEqual(r.Variance(), v, 1e-9) {
		t.Errorf("running variance %v != batch %v", r.Variance(), v)
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if r.Min() != mn || r.Max() != mx {
		t.Errorf("running min/max = %v/%v, want %v/%v", r.Min(), r.Max(), mn, mx)
	}
	if r.Count() != len(xs) {
		t.Errorf("count = %d, want %d", r.Count(), len(xs))
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(5)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Errorf("after reset: count=%d mean=%v", r.Count(), r.Mean())
	}
}

func TestRunningPropertyMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip inputs where float64 arithmetic overflows
			}
			r.Add(x)
		}
		if r.Count() > 0 {
			ok = r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, x := range []float64{1, 2, 3, 4} {
		w.Push(x)
	}
	if !w.Full() {
		t.Error("window should be full")
	}
	m, err := w.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(m, 3, 1e-12) { // holds {4,2,3} -> mean 3
		t.Errorf("window mean = %v, want 3", m)
	}
}

func TestWindowMaxAndReset(t *testing.T) {
	w := NewWindow(2)
	w.Push(5)
	w.Push(1)
	if m, _ := w.Max(); m != 5 {
		t.Errorf("window max = %v, want 5", m)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("len after reset = %d", w.Len())
	}
	if _, err := w.Mean(); err != ErrEmpty {
		t.Errorf("mean of empty window err = %v, want ErrEmpty", err)
	}
}

func TestWindowPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for capacity 0")
		}
	}()
	NewWindow(0)
}

func TestHistogramSharesSumToOne(t *testing.T) {
	h := NewHistogram("a", "b", "c")
	h.Observe("a", 2)
	h.Observe("b", 3)
	h.Observe("c", 5)
	shares := h.Shares()
	total := 0.0
	for _, s := range shares {
		total += s
	}
	if !ApproxEqual(total, 1, 1e-12) {
		t.Errorf("shares sum = %v, want 1", total)
	}
	if !ApproxEqual(h.Share("c"), 0.5, 1e-12) {
		t.Errorf("share(c) = %v, want 0.5", h.Share("c"))
	}
}

func TestHistogramUnknownLabelCreated(t *testing.T) {
	h := NewHistogram("x")
	h.Observe("y", 1)
	if h.Weight("y") != 1 {
		t.Errorf("weight(y) = %v, want 1", h.Weight("y"))
	}
	labels := h.Labels()
	if len(labels) != 2 || labels[1] != "y" {
		t.Errorf("labels = %v, want [x y]", labels)
	}
}

func TestHistogramEmptyShares(t *testing.T) {
	h := NewHistogram("a")
	if h.Share("a") != 0 {
		t.Errorf("share of empty histogram = %v, want 0", h.Share("a"))
	}
}

func TestHistogramPropertyShares(t *testing.T) {
	f := func(weights []uint8) bool {
		h := NewHistogram()
		total := 0.0
		for i, w := range weights {
			h.Observe(string(rune('a'+i%26)), float64(w))
			total += float64(w)
		}
		if total == 0 {
			return h.Total() == 0
		}
		sum := 0.0
		for _, s := range h.Shares() {
			if s < 0 || s > 1 {
				return false
			}
			sum += s
		}
		return ApproxEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestSumEmpty(t *testing.T) {
	if s := Sum(nil); s != 0 {
		t.Errorf("Sum(nil) = %v, want 0", s)
	}
}
