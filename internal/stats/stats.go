// Package stats provides small, allocation-conscious statistics helpers
// shared by the trace, workload and benchmark layers: medians, quantiles,
// histograms, running means and residency accounting.
//
// All functions treat NaN inputs as programming errors and will propagate
// them rather than silently dropping samples, so callers can detect model
// bugs early.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/snapbin"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs.
// It returns 0 and ErrEmpty when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Running tracks a running mean/min/max/count without retaining samples.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the running aggregate using Welford's algorithm.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.mean, r.min, r.max = x, x, x
		r.m2 = 0
		return
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
	if x < r.min {
		r.min = x
	}
	if x > r.max {
		r.max = x
	}
}

// Count reports the number of samples folded in.
func (r *Running) Count() int { return r.n }

// Mean reports the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Min reports the smallest sample seen (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max reports the largest sample seen (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Variance reports the running population variance (0 when n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev reports the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset returns the aggregate to its empty state.
func (r *Running) Reset() { *r = Running{} }

// SaveState serializes the running aggregate.
func (r *Running) SaveState(w *snapbin.Writer) {
	w.PutInt(r.n)
	w.PutF64(r.mean)
	w.PutF64(r.m2)
	w.PutF64(r.min)
	w.PutF64(r.max)
}

// LoadState restores state saved by SaveState.
func (r *Running) LoadState(rd *snapbin.Reader) error {
	var next Running
	next.n = rd.Int()
	next.mean = rd.F64()
	next.m2 = rd.F64()
	next.min = rd.F64()
	next.max = rd.F64()
	if err := rd.Err(); err != nil {
		return fmt.Errorf("stats: running: %w", err)
	}
	*r = next
	return nil
}

// Window is a fixed-capacity sliding window of float64 samples with O(1)
// insertion and O(n) aggregate queries. It backs the governor's 1-second
// utilization averages.
type Window struct {
	buf  []float64
	head int
	full bool
}

// NewWindow returns a window holding up to capacity samples.
// It panics if capacity < 1, since a zero-length window is meaningless.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		panic("stats: window capacity must be >= 1")
	}
	return &Window{buf: make([]float64, 0, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (w *Window) Push(x float64) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, x)
		return
	}
	w.full = true
	w.buf[w.head] = x
	w.head = (w.head + 1) % cap(w.buf)
}

// Len reports the number of samples currently held.
func (w *Window) Len() int { return len(w.buf) }

// Cap reports the window capacity.
func (w *Window) Cap() int { return cap(w.buf) }

// Full reports whether the window has wrapped at least once.
func (w *Window) Full() bool { return w.full }

// Mean returns the mean of the samples currently in the window.
func (w *Window) Mean() (float64, error) {
	if len(w.buf) == 0 {
		return 0, ErrEmpty
	}
	return Sum(w.buf) / float64(len(w.buf)), nil
}

// Max returns the maximum sample currently in the window.
func (w *Window) Max() (float64, error) { return Max(w.buf) }

// SaveState serializes the window's contents: length, ring head, wrap
// flag and samples.
func (w *Window) SaveState(sw *snapbin.Writer) {
	sw.PutInt(w.head)
	sw.PutBool(w.full)
	sw.PutF64s(w.buf)
}

// LoadState restores state saved by SaveState into a window of the
// same capacity without reallocating its buffer.
func (w *Window) LoadState(r *snapbin.Reader) error {
	head := r.Int()
	full := r.Bool()
	n := int(r.U64())
	if err := r.Err(); err != nil {
		return fmt.Errorf("stats: window: %w", err)
	}
	if n > cap(w.buf) {
		return fmt.Errorf("stats: window holds %d samples, capacity is %d", n, cap(w.buf))
	}
	w.buf = w.buf[:n]
	for i := range w.buf {
		w.buf[i] = r.F64()
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("stats: window: %w", err)
	}
	w.head = head
	w.full = full
	return nil
}

// Reset empties the window, retaining capacity.
func (w *Window) Reset() {
	w.buf = w.buf[:0]
	w.head = 0
	w.full = false
}

// Histogram accumulates weighted counts into labeled bins. It backs the
// frequency-residency figures (Figures 2, 4 and 6 in the paper), where
// bins are OPP frequencies and weights are residency durations.
type Histogram struct {
	labels  []string
	weights []float64
	index   map[string]int
}

// NewHistogram creates a histogram with the given ordered bin labels.
func NewHistogram(labels ...string) *Histogram {
	h := &Histogram{
		labels:  append([]string(nil), labels...),
		weights: make([]float64, len(labels)),
		index:   make(map[string]int, len(labels)),
	}
	for i, l := range labels {
		h.index[l] = i
	}
	return h
}

// Observe adds weight to the bin with the given label, creating the bin
// at the end of the order if it does not exist yet.
func (h *Histogram) Observe(label string, weight float64) {
	i, ok := h.index[label]
	if !ok {
		i = len(h.labels)
		h.labels = append(h.labels, label)
		h.weights = append(h.weights, 0)
		h.index[label] = i
	}
	h.weights[i] += weight
}

// Labels returns the bin labels in insertion order.
func (h *Histogram) Labels() []string { return append([]string(nil), h.labels...) }

// Weight returns the accumulated weight for label (0 if absent).
func (h *Histogram) Weight(label string) float64 {
	if i, ok := h.index[label]; ok {
		return h.weights[i]
	}
	return 0
}

// Total returns the sum of all bin weights.
func (h *Histogram) Total() float64 { return Sum(h.weights) }

// Share returns the fraction of total weight in the labeled bin.
// It returns 0 when the histogram is empty.
func (h *Histogram) Share(label string) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return h.Weight(label) / t
}

// Shares returns every bin's fraction of the total, in label order.
// Fractions sum to 1 (up to rounding) unless the histogram is empty.
func (h *Histogram) Shares() map[string]float64 {
	out := make(map[string]float64, len(h.labels))
	t := h.Total()
	for i, l := range h.labels {
		if t == 0 {
			out[l] = 0
		} else {
			out[l] = h.weights[i] / t
		}
	}
	return out
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b are within tol of each other.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
