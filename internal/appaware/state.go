package appaware

import (
	"fmt"

	"repro/internal/snapbin"
)

// SaveState serializes the governor's decision history and control
// state: the event log, the victim migration stack, the restore dwell
// clock, and the prediction counter. The stability params cache
// (haveP/params) is derived lazily from the platform and rebuilds
// bit-identically on the next Control tick; the per-engine power
// lookup cache self-invalidates on engine change; and the shared
// transient cache is wiring the executor re-establishes.
func (g *Governor) SaveState(w *snapbin.Writer) {
	w.PutInt(len(g.events))
	for _, ev := range g.events {
		w.PutF64(ev.TimeS)
		w.PutInt(int(ev.Kind))
		w.PutInt(ev.PID)
		w.PutF64(ev.PredictedFixedK)
		w.PutF64(ev.TimeToLimitS) // +Inf round-trips bit-exactly
	}
	w.PutInts(g.victims)
	w.PutF64(g.coolSince)
	w.PutInt(g.predictions)
}

// LoadState restores state saved by SaveState.
func (g *Governor) LoadState(r *snapbin.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("appaware: %w", err)
	}
	if n < 0 || n > r.Remaining() {
		return fmt.Errorf("appaware: implausible event count %d", n)
	}
	events := g.events[:0]
	for i := 0; i < n; i++ {
		events = append(events, Event{
			TimeS:           r.F64(),
			Kind:            EventKind(r.Int()),
			PID:             r.Int(),
			PredictedFixedK: r.F64(),
			TimeToLimitS:    r.F64(),
		})
	}
	victims := r.Ints(g.victims)
	coolSince := r.F64()
	predictions := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("appaware: %w", err)
	}
	g.events = events
	g.victims = victims
	g.coolSince = coolSince
	g.predictions = predictions
	return nil
}
