// Package appaware implements the paper's primary contribution
// (Section IV-B): an application-aware thermal management governor
// built on the power-temperature stability analysis.
//
// Every control period (100 ms in the paper) the governor:
//
//  1. Estimates the platform's dynamic power and computes the stable
//     fixed-point temperature of the power-temperature dynamics.
//  2. If the fixed point exceeds the thermal limit (or the system is in
//     thermal runaway), it estimates the time until the temperature
//     reaches the limit.
//  3. If that time is below a user-defined horizon, a violation is
//     imminent: the governor selects the most power-hungry non-real-time
//     process on the big cluster — judged by a one-second average to
//     filter momentary peaks — and migrates it to the LITTLE cluster.
//
// Unlike the default governors, which throttle every domain, only the
// offending process is penalized; registered real-time processes are
// never chosen as victims.
package appaware

import (
	"fmt"
	"math"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stability"
)

// Policy selects what the governor does when a violation is imminent.
type Policy int

// Victim policies.
const (
	// PolicyMigrate moves the most power-hungry non-real-time process
	// to the LITTLE cluster — the paper's proposal.
	PolicyMigrate Policy = iota
	// PolicyThrottle instead steps the big cluster's frequency cap down
	// one OPP (and back up when the prediction clears). It uses the same
	// fixed-point prediction but punishes every process on the cluster —
	// the comparator for the migration-vs-throttling ablation.
	PolicyThrottle
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyMigrate:
		return "migrate"
	case PolicyThrottle:
		return "throttle"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes the governor.
type Config struct {
	// Policy selects the mitigation action (default PolicyMigrate).
	Policy Policy
	// ThermalLimitK is the temperature limit; 0 means the platform's
	// configured limit.
	ThermalLimitK float64
	// HorizonS is the user-defined time-to-violation limit: predicted
	// violations closer than this trigger migration (default 10 s).
	HorizonS float64
	// IntervalS is the control period (default 0.1 s, as in the paper).
	IntervalS float64
	// RestoreMarginK and RestoreAfterS govern migrating victims back:
	// once the predicted fixed point stays below limit − margin for the
	// dwell time, the most recent victim returns to the big cluster.
	// RestoreAfterS = 0 disables restoration (the paper's experiments
	// keep the victim on LITTLE).
	RestoreMarginK float64
	RestoreAfterS  float64
	// SkinLimitK optionally adds a skin-temperature constraint (the
	// user-experience quantity the paper's introduction motivates and
	// its conclusion proposes as future work): the governor predicts the
	// steady-state temperature of the platform's "skin" node from the
	// full RC network under the current power pattern, and treats a
	// predicted exceedance as a violation too. 0 disables the check;
	// it is also inert on platforms without a "skin" node.
	SkinLimitK float64
}

// DefaultConfig mirrors the paper's parameters: 100 ms control period,
// 1 s power window (owned by the engine), no restore.
func DefaultConfig() Config {
	return Config{
		HorizonS:       10,
		IntervalS:      0.1,
		RestoreMarginK: 5,
	}
}

// EventKind labels governor decisions.
type EventKind int

// Event kinds.
const (
	// EventMigrate moved a process to the LITTLE cluster.
	EventMigrate EventKind = iota
	// EventRestore moved a process back to the big cluster.
	EventRestore
	// EventThrottle stepped the big-cluster cap down (PolicyThrottle).
	EventThrottle
	// EventUnthrottle stepped the big-cluster cap up (PolicyThrottle).
	EventUnthrottle
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventMigrate:
		return "migrate"
	case EventRestore:
		return "restore"
	case EventThrottle:
		return "throttle"
	case EventUnthrottle:
		return "unthrottle"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one recorded governor decision.
type Event struct {
	// TimeS is when the decision fired.
	TimeS float64
	// Kind is the decision type.
	Kind EventKind
	// PID is the affected process.
	PID int
	// PredictedFixedK is the stable fixed-point temperature at decision
	// time (0 for runaway).
	PredictedFixedK float64
	// TimeToLimitS is the estimated time to the thermal limit
	// (+Inf when not reachable).
	TimeToLimitS float64
}

// Governor is the application-aware thermal governor. It implements
// sim.Controller.
type Governor struct {
	cfg    Config
	params stability.Params
	haveP  bool

	events  []Event
	victims []int // migration stack, most recent last

	coolSince float64 // when the prediction last dropped below the
	// restore threshold; -1 when currently hot
	predictions int

	// avgPowerFn caches avgPowerEng's per-task power lookup so victim
	// selection allocates nothing per control tick; rebuilt whenever
	// Control is handed a different engine.
	avgPowerFn  func(pid int) float64
	avgPowerEng *sim.Engine

	// shared optionally memoizes the stability computations across
	// governors driven in lockstep (see ShareTransientCache).
	shared *stability.TransientCache
}

// New validates cfg and builds the governor.
func New(cfg Config) (*Governor, error) {
	if cfg.HorizonS == 0 {
		cfg.HorizonS = 10
	}
	if cfg.IntervalS == 0 {
		cfg.IntervalS = 0.1
	}
	if cfg.HorizonS < 0 || math.IsNaN(cfg.HorizonS) {
		return nil, fmt.Errorf("appaware: horizon must be > 0, got %v", cfg.HorizonS)
	}
	if cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("appaware: interval must be > 0, got %v", cfg.IntervalS)
	}
	if cfg.RestoreMarginK < 0 || cfg.RestoreAfterS < 0 {
		return nil, fmt.Errorf("appaware: restore parameters must be >= 0")
	}
	if cfg.ThermalLimitK < 0 {
		return nil, fmt.Errorf("appaware: thermal limit must be >= 0 Kelvin, got %v", cfg.ThermalLimitK)
	}
	if cfg.SkinLimitK < 0 {
		return nil, fmt.Errorf("appaware: skin limit must be >= 0 Kelvin, got %v", cfg.SkinLimitK)
	}
	return &Governor{cfg: cfg, coolSince: -1}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Governor {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements sim.Controller.
func (g *Governor) Name() string { return "appaware" }

// IntervalS implements sim.Controller.
func (g *Governor) IntervalS() float64 { return g.cfg.IntervalS }

// Events returns the recorded decisions.
func (g *Governor) Events() []Event { return append([]Event(nil), g.events...) }

// Migrations reports how many victim migrations fired.
func (g *Governor) Migrations() int {
	n := 0
	for _, ev := range g.events {
		if ev.Kind == EventMigrate {
			n++
		}
	}
	return n
}

// Predictions reports how many fixed-point analyses ran.
func (g *Governor) Predictions() int { return g.predictions }

// EventCount reports how many control events have fired, without
// copying the event log. The warm-start sweep executor polls it every
// step to detect the governor's first limit-dependent action, so it
// must stay allocation-free.
func (g *Governor) EventCount() int { return len(g.events) }

// ShareTransientCache points the governor at a stability memo shared
// with other governors stepped in lockstep (the batched sweep
// executor's lanes). Lanes fed bitwise-equal power and sensor inputs —
// paired-seed sweep cells before their trajectories diverge — then pay
// for one fixed-point analysis and one ODE integration instead of one
// per lane; results are bitwise-identical either way. The cache must
// only be shared between governors driven by the same goroutine.
func (g *Governor) ShareTransientCache(c *stability.TransientCache) { g.shared = c }

// analyze runs the fixed-point analysis, through the shared memo when
// one is attached.
func (g *Governor) analyze(pdW float64) (stability.Analysis, error) {
	if g.shared != nil {
		return g.shared.Analyze(g.params, pdW)
	}
	return g.params.Analyze(pdW)
}

// timeToThreshold estimates time to the thermal limit, through the
// shared memo when one is attached.
func (g *Governor) timeToThreshold(pdW, fromK, thresholdK, horizonS float64) (float64, error) {
	if g.shared != nil {
		return g.shared.TimeToThreshold(g.params, pdW, fromK, thresholdK, horizonS)
	}
	return g.params.TimeToThreshold(pdW, fromK, thresholdK, horizonS)
}

// limit returns the active thermal limit for the engine's platform.
func (g *Governor) limit(e *sim.Engine) float64 {
	if g.cfg.ThermalLimitK != 0 {
		return g.cfg.ThermalLimitK
	}
	return e.Platform().ThermalLimitK()
}

// Control implements sim.Controller: one decision of Section IV-B.
func (g *Governor) Control(nowS float64, e *sim.Engine) {
	if !g.haveP {
		p, err := e.Platform().StabilityParams()
		if err != nil {
			return
		}
		g.params = p
		g.haveP = true
	}
	pd := e.DynamicPowerW()
	if pd <= 0 {
		return
	}
	an, err := g.analyze(pd)
	if err != nil {
		return
	}
	g.predictions++
	limitK := g.limit(e)
	tempK := e.SensorTempK()

	chipViolation := an.Class == stability.Runaway ||
		(an.Class != stability.Runaway && an.StableTempK > limitK)
	skinViolation := g.skinViolation(e)
	if !chipViolation && !skinViolation {
		if g.cfg.Policy == PolicyThrottle {
			g.maybeUnthrottle(nowS, e, an.StableTempK, limitK)
		} else {
			g.maybeRestore(nowS, e, an.StableTempK, limitK)
		}
		return
	}
	g.coolSince = -1

	// A chip-limit violation acts only when imminent; a predicted skin
	// exceedance acts immediately (skin dynamics are much slower, so by
	// the time it is "imminent" the user already feels it).
	tta := 0.0
	if chipViolation {
		// Without a skin constraint, any crossing beyond HorizonS is
		// handled identically ("distant, recheck next tick"), so the
		// integration horizon is capped at HorizonS: a crossing inside
		// it yields the same tta bitwise, a crossing beyond it the same
		// decision. The cap is only taken when it leaves the
		// integrator's step choice (min(R·C/200, horizon/10))
		// untouched, and skin-constrained configs keep the 2× horizon
		// because they log tta values from the (HorizonS, 2·HorizonS]
		// band.
		horizon := g.cfg.HorizonS * 2
		if !skinViolation && g.params.ResistanceKPerW*g.params.CapacitanceJPerK/200 <= g.cfg.HorizonS/10 {
			horizon = g.cfg.HorizonS
		}
		var err error
		tta, err = g.timeToThreshold(pd, tempK, limitK, horizon)
		if err != nil || (tta > g.cfg.HorizonS && !skinViolation) {
			return // violation is distant; act next time it is imminent
		}
	}

	if g.cfg.Policy == PolicyThrottle {
		g.throttle(nowS, e, an.StableTempK, tta)
		return
	}

	if g.avgPowerEng != e {
		g.avgPowerFn = e.TaskAvgPowerW
		g.avgPowerEng = e
	}
	pid, ok := e.Scheduler().MostPowerHungryFunc(sched.Big, g.avgPowerFn)
	if !ok {
		return // nothing eligible to migrate
	}
	if err := e.Scheduler().Migrate(pid, sched.Little); err != nil {
		return
	}
	g.victims = append(g.victims, pid)
	g.events = append(g.events, Event{
		TimeS:           nowS,
		Kind:            EventMigrate,
		PID:             pid,
		PredictedFixedK: an.StableTempK,
		TimeToLimitS:    tta,
	})
}

// skinViolation predicts the skin node's steady-state temperature from
// the full RC network under the current power pattern; it reports true
// when the prediction exceeds the configured skin limit.
func (g *Governor) skinViolation(e *sim.Engine) bool {
	if g.cfg.SkinLimitK == 0 {
		return false
	}
	skinID, ok := e.Platform().NodeByName("skin")
	if !ok {
		return false
	}
	temps, err := e.Platform().Net.SteadyState(e.NodePowers())
	if err != nil {
		return false
	}
	return temps[skinID] > g.cfg.SkinLimitK
}

// throttle steps the big cluster's frequency cap one OPP down.
func (g *Governor) throttle(nowS float64, e *sim.Engine, fixedK, tta float64) {
	dom := e.Platform().Domain(platform.DomBig)
	table := dom.Table()
	cur := dom.Cap()
	if cur == 0 {
		cur = table.Max().FreqHz
	}
	i := table.IndexOf(table.Floor(cur).FreqHz)
	if i <= 0 {
		return // already at the bottom
	}
	dom.SetCap(table.At(i - 1).FreqHz)
	g.events = append(g.events, Event{
		TimeS:           nowS,
		Kind:            EventThrottle,
		PredictedFixedK: fixedK,
		TimeToLimitS:    tta,
	})
}

// maybeUnthrottle lifts the big-cluster cap one OPP after the
// prediction has stayed below limit − margin for the dwell time.
func (g *Governor) maybeUnthrottle(nowS float64, e *sim.Engine, fixedK, limitK float64) {
	dom := e.Platform().Domain(platform.DomBig)
	if dom.Cap() == 0 {
		return
	}
	if fixedK >= limitK-g.cfg.RestoreMarginK {
		g.coolSince = -1
		return
	}
	if g.coolSince < 0 {
		g.coolSince = nowS
		return
	}
	if g.cfg.RestoreAfterS != 0 && nowS-g.coolSince < g.cfg.RestoreAfterS {
		return
	}
	table := dom.Table()
	i := table.IndexOf(table.Floor(dom.Cap()).FreqHz)
	if i+1 >= table.Len() {
		dom.SetCap(0)
	} else {
		dom.SetCap(table.At(i + 1).FreqHz)
	}
	g.coolSince = -1
	g.events = append(g.events, Event{TimeS: nowS, Kind: EventUnthrottle, PredictedFixedK: fixedK})
}

// maybeRestore returns the most recent victim to the big cluster after
// the prediction has stayed comfortably below the limit for the dwell
// time.
func (g *Governor) maybeRestore(nowS float64, e *sim.Engine, fixedK, limitK float64) {
	if g.cfg.RestoreAfterS == 0 || len(g.victims) == 0 {
		return
	}
	if fixedK >= limitK-g.cfg.RestoreMarginK {
		g.coolSince = -1
		return
	}
	if g.coolSince < 0 {
		g.coolSince = nowS
		return
	}
	if nowS-g.coolSince < g.cfg.RestoreAfterS {
		return
	}
	pid := g.victims[len(g.victims)-1]
	if err := e.Scheduler().Migrate(pid, sched.Big); err != nil {
		return
	}
	g.victims = g.victims[:len(g.victims)-1]
	g.coolSince = -1
	g.events = append(g.events, Event{
		TimeS:           nowS,
		Kind:            EventRestore,
		PID:             pid,
		PredictedFixedK: fixedK,
	})
}
