package appaware

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

func TestNewValidates(t *testing.T) {
	bad := []Config{
		{HorizonS: -1, IntervalS: 0.1},
		{HorizonS: math.NaN(), IntervalS: 0.1},
		{HorizonS: 10, IntervalS: -0.1},
		{HorizonS: 10, IntervalS: 0.1, RestoreMarginK: -1},
		{HorizonS: 10, IntervalS: 0.1, RestoreAfterS: -1},
		{HorizonS: 10, IntervalS: 0.1, ThermalLimitK: -5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
	if g.Name() != "appaware" {
		t.Error("wrong name")
	}
	if g.IntervalS() != 0.1 {
		t.Errorf("interval = %v, want the paper's 100 ms", g.IntervalS())
	}
}

func TestZeroedConfigGetsDefaults(t *testing.T) {
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.HorizonS != 10 || g.cfg.IntervalS != 0.1 {
		t.Errorf("zeroed config should default: %+v", g.cfg)
	}
}

func TestEventKindString(t *testing.T) {
	if EventMigrate.String() != "migrate" || EventRestore.String() != "restore" {
		t.Error("event names wrong")
	}
	if !strings.Contains(EventKind(9).String(), "9") {
		t.Error("unknown kind should include number")
	}
}

// fastPlatform is a miniature big.LITTLE platform with second-scale
// thermal time constants, so governor decisions play out quickly in
// tests. Structure and physics match the presets; only the scales
// differ.
func fastPlatform() *platform.Platform {
	bigTable := dvfs.MustTable(
		dvfs.OPP{FreqHz: 500e6, VoltageV: 0.9},
		dvfs.OPP{FreqHz: 1000e6, VoltageV: 1.0},
		dvfs.OPP{FreqHz: 2000e6, VoltageV: 1.2},
	)
	littleTable := dvfs.MustTable(
		dvfs.OPP{FreqHz: 200e6, VoltageV: 0.9},
		dvfs.OPP{FreqHz: 800e6, VoltageV: 1.0},
	)
	gpuTable := dvfs.MustTable(
		dvfs.OPP{FreqHz: 200e6, VoltageV: 0.9},
		dvfs.OPP{FreqHz: 600e6, VoltageV: 1.1},
	)
	return platform.MustNew(platform.Spec{
		Name:     "fast-test",
		AmbientC: 25,
		Nodes: []platform.NodeSpec{
			{Name: "little", CapacitanceJPerK: 0.1},
			{Name: "big", CapacitanceJPerK: 0.2},
			{Name: "gpu", CapacitanceJPerK: 0.2},
			{Name: "mem", CapacitanceJPerK: 0.1},
			{Name: "board", CapacitanceJPerK: 0.5, GAmbientWPerK: 0.1},
		},
		Couplings: []platform.CouplingSpec{
			{A: "little", B: "board", GWPerK: 0.9},
			{A: "big", B: "board", GWPerK: 0.9},
			{A: "gpu", B: "board", GWPerK: 0.9},
			{A: "mem", B: "board", GWPerK: 0.6},
		},
		Domains: []platform.DomainSpec{
			{
				ID: platform.DomLittle, Table: littleTable, Cores: 4,
				Model: power.DomainModel{
					Name: "little", CeffF: 1.1e-10, IdleW: 0.02,
					Leakage: power.LeakageParams{K: 1e-4, Q: 1800},
				},
				Rail: power.RailLittle, NodeName: "little",
			},
			{
				ID: platform.DomBig, Table: bigTable, Cores: 4,
				Model: power.DomainModel{
					Name: "big", CeffF: 6e-10, IdleW: 0.04,
					Leakage: power.LeakageParams{K: 3e-4, Q: 1800},
				},
				Rail: power.RailBig, NodeName: "big",
			},
			{
				ID: platform.DomGPU, Table: gpuTable, Cores: 1,
				Model: power.DomainModel{
					Name: "gpu", CeffF: 2.2e-9, IdleW: 0.03,
					Leakage: power.LeakageParams{K: 2e-4, Q: 1800},
				},
				Rail: power.RailGPU, NodeName: "gpu",
			},
		},
		SensorNode:    "big",
		SensorPeriodS: 0.01,
		MemIdleW:      0.05,
		MemPerGHz:     0.02,
		ThermalLimitC: 55,
	})
}

// buildEngine runs a GPU workload (registered real-time) plus a BML CPU
// hog on the big cluster, mirroring Section IV-C's scenario.
func buildEngine(t *testing.T, g *Governor) (*sim.Engine, *workload.BML) {
	t.Helper()
	bml := workload.NewBML()
	bml.ExecuteRatio = 0 // pure model; skip real kernel execution in tests
	gpuApp := workload.MustFrameApp(workload.FrameAppConfig{
		Name: "gpu-app",
		Phases: []workload.Phase{
			{DurationS: 300, CPUCyclesPerFrame: 2e6, GPUCyclesPerFrame: 12e6, TargetFPS: 60},
		},
		Loop: true,
	})
	e, err := sim.New(sim.Config{
		Platform: fastPlatform(),
		Apps: []sim.AppSpec{
			{App: gpuApp, PID: 100, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 200, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: governor.Powersave{},
			platform.DomBig:    governor.Performance{},
			platform.DomGPU:    governor.Performance{},
		},
		Controller: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, bml
}

func TestMigratesPowerHungryBackgroundTask(t *testing.T) {
	g := MustNew(DefaultConfig())
	e, _ := buildEngine(t, g)
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() == 0 {
		t.Fatal("governor never migrated despite hot fixed point")
	}
	// The victim must be BML (PID 200), never the registered real-time
	// app (PID 100).
	for _, ev := range g.Events() {
		if ev.Kind == EventMigrate && ev.PID == 100 {
			t.Error("real-time app was migrated; registration violated")
		}
	}
	task, ok := e.Scheduler().Task(200)
	if !ok || task.Cluster != sched.Little {
		t.Errorf("BML should end on little, got %+v", task)
	}
	rt, _ := e.Scheduler().Task(100)
	if rt.Cluster != sched.Big {
		t.Error("real-time app should stay on big")
	}
}

func TestNoMigrationWhenCool(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalLimitK = thermal.ToKelvin(300) // unreachable limit
	g := MustNew(cfg)
	e, _ := buildEngine(t, g)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0 under an unreachable limit", g.Migrations())
	}
	if g.Predictions() == 0 {
		t.Error("governor should still be predicting")
	}
}

func TestMigrationEventRecordsPrediction(t *testing.T) {
	g := MustNew(DefaultConfig())
	e, _ := buildEngine(t, g)
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	evs := g.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	ev := evs[0]
	if ev.Kind != EventMigrate {
		t.Fatalf("first event = %v, want migrate", ev.Kind)
	}
	limitK := thermal.ToKelvin(55)
	if ev.PredictedFixedK != 0 && ev.PredictedFixedK <= limitK {
		t.Errorf("predicted fixed point %v K should exceed the 55°C limit (or be 0 for runaway)", ev.PredictedFixedK)
	}
	if ev.TimeToLimitS < 0 || ev.TimeToLimitS > DefaultConfig().HorizonS {
		t.Errorf("time-to-limit %v outside (0, horizon]", ev.TimeToLimitS)
	}
}

func TestRestoreAfterCooling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RestoreAfterS = 2
	cfg.RestoreMarginK = 1
	g := MustNew(cfg)
	e, _ := buildEngine(t, g)
	// After BML migrates to the powersave little cluster, dynamic power
	// collapses and the prediction cools; the dwell clock should then
	// restore the victim, which heats things back up — verifying both
	// directions.
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	var sawMigrate, sawRestore bool
	for _, ev := range g.Events() {
		switch ev.Kind {
		case EventMigrate:
			sawMigrate = true
		case EventRestore:
			sawRestore = true
		}
	}
	if !sawMigrate {
		t.Fatal("expected an initial migration")
	}
	if !sawRestore {
		t.Error("expected a restore after cooling with RestoreAfterS set")
	}
}

func TestNoRestoreWhenDisabled(t *testing.T) {
	g := MustNew(DefaultConfig()) // RestoreAfterS = 0
	e, _ := buildEngine(t, g)
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	for _, ev := range g.Events() {
		if ev.Kind == EventRestore {
			t.Error("restore fired despite RestoreAfterS = 0")
		}
	}
}

func TestOnlyVictimPenalized(t *testing.T) {
	// The headline property (Table II): after migration, the real-time
	// app's grants are untouched while BML's execution rate drops.
	g := MustNew(DefaultConfig())
	e, bml := buildEngine(t, g)
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() > 0 {
		t.Skip("migration landed before baseline window; tune demands")
	}
	itersBefore := bml.Iterations()
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() == 0 {
		t.Fatal("no migration")
	}
	itersAfter := bml.Iterations() - itersBefore
	// BML on little at 200 MHz vs big at 2 GHz: the post-migration rate
	// must be well below the pre-migration rate (both windows include
	// some mixed time; demand a 2x drop on the average rate).
	rateBefore := float64(itersBefore) / 5
	rateAfter := float64(itersAfter) / 20
	if rateAfter > rateBefore/2 {
		t.Errorf("BML rate before %.0f/s, after %.0f/s; victim not throttled", rateBefore, rateAfter)
	}
}

func TestEventsAreCopies(t *testing.T) {
	g := MustNew(DefaultConfig())
	e, _ := buildEngine(t, g)
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	evs := g.Events()
	if len(evs) == 0 {
		t.Skip("no events to check")
	}
	evs[0].PID = -999
	if g.Events()[0].PID == -999 {
		t.Error("Events must return a copy")
	}
}
