package appaware

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
)

func TestPolicyString(t *testing.T) {
	if PolicyMigrate.String() != "migrate" || PolicyThrottle.String() != "throttle" {
		t.Error("policy names wrong")
	}
	if !strings.Contains(Policy(7).String(), "7") {
		t.Error("unknown policy should include number")
	}
}

func TestThrottlePolicyCapsBigCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyThrottle
	g := MustNew(cfg)
	e, _ := buildEngine(t, g)
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	var sawThrottle bool
	for _, ev := range g.Events() {
		if ev.Kind == EventMigrate {
			t.Error("throttle policy must not migrate")
		}
		if ev.Kind == EventThrottle {
			sawThrottle = true
		}
	}
	if !sawThrottle {
		t.Fatal("expected throttle events under the hot scenario")
	}
	if e.Platform().Domain(platform.DomBig).Cap() == 0 {
		t.Error("big cluster should be capped")
	}
	// Everything stays on the big cluster — nobody migrated.
	for _, pid := range []int{100, 200} {
		task, _ := e.Scheduler().Task(pid)
		if task.Cluster != sched.Big {
			t.Errorf("pid %d moved to %s; throttle policy must not migrate", pid, task.Cluster)
		}
	}
}

// TestMigrationBeatsThrottlingForForeground is the migration-vs-
// throttling ablation as a test: under the same scenario the migrate
// policy must preserve more of the foreground (GPU) app's performance
// than cluster throttling does of the CPU side, while both control
// temperature relative to doing nothing.
func TestMigrationBeatsThrottlingForForeground(t *testing.T) {
	run := func(p Policy) (maxTempK float64, bigCapped bool, migrated bool) {
		cfg := DefaultConfig()
		cfg.Policy = p
		g := MustNew(cfg)
		e, _ := buildEngine(t, g)
		if err := e.Run(25); err != nil {
			t.Fatal(err)
		}
		return e.MaxTempSeenK(), e.Platform().Domain(platform.DomBig).Cap() != 0, g.Migrations() > 0
	}
	_, mCapped, mMigrated := run(PolicyMigrate)
	_, tCapped, tMigrated := run(PolicyThrottle)
	if !mMigrated || mCapped {
		t.Errorf("migrate policy: migrated=%v capped=%v, want migration without caps", mMigrated, mCapped)
	}
	if tMigrated || !tCapped {
		t.Errorf("throttle policy: migrated=%v capped=%v, want caps without migration", tMigrated, tCapped)
	}
}

func TestThrottlePolicyRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyThrottle
	cfg.RestoreAfterS = 1
	cfg.RestoreMarginK = 1
	g := MustNew(cfg)
	e, _ := buildEngine(t, g)
	// Long run: caps push the prediction below the limit, then the
	// unthrottle path must lift them step by step.
	if err := e.Run(40); err != nil {
		t.Fatal(err)
	}
	var sawUnthrottle bool
	for _, ev := range g.Events() {
		if ev.Kind == EventUnthrottle {
			sawUnthrottle = true
		}
	}
	if !sawUnthrottle {
		t.Error("expected unthrottle events once the prediction cools")
	}
}
