package appaware

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// nexusEngine runs a GPU game plus a CPU hog on the Nexus 6P preset
// (which has a skin node), under the given governor.
func nexusEngine(t *testing.T, g *Governor) *sim.Engine {
	t.Helper()
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	game := workload.PaperIO(1)
	e, err := sim.New(sim.Config{
		Platform: platform.Nexus6P(1),
		Apps: []sim.AppSpec{
			{App: game, PID: 1, Cluster: sched.Big, Threads: 2, RealTime: true},
			{App: bml, PID: 2, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: governor.Performance{},
			platform.DomBig:    governor.Performance{},
			platform.DomGPU:    governor.Performance{},
		},
		Controller: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSkinLimitValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkinLimitK = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative skin limit should fail")
	}
}

func TestSkinLimitTriggersMigration(t *testing.T) {
	// A chip limit far above anything reachable, plus a skin limit the
	// steady state clearly exceeds: only the skin check can fire.
	cfg := DefaultConfig()
	cfg.ThermalLimitK = thermal.ToKelvin(300)
	cfg.SkinLimitK = thermal.ToKelvin(33)
	g := MustNew(cfg)
	e := nexusEngine(t, g)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() == 0 {
		t.Fatal("skin-limit prediction should have migrated the CPU hog")
	}
	task, _ := e.Scheduler().Task(2)
	if task.Cluster != sched.Little {
		t.Error("BML should be on little after skin-driven migration")
	}
}

func TestSkinLimitDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalLimitK = thermal.ToKelvin(300) // chip check can't fire
	g := MustNew(cfg)
	e := nexusEngine(t, g)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() != 0 {
		t.Error("no limits reachable: governor should not act")
	}
}

func TestSkinCheckInertWithoutSkinNode(t *testing.T) {
	// The Odroid preset has no skin node; a configured skin limit must
	// be ignored rather than crash or misfire.
	cfg := DefaultConfig()
	cfg.ThermalLimitK = thermal.ToKelvin(300)
	cfg.SkinLimitK = thermal.ToKelvin(1) // absurdly low; would always fire
	g := MustNew(cfg)
	bml := workload.NewBML()
	bml.ExecuteRatio = 0
	e, err := sim.New(sim.Config{
		Platform: platform.OdroidXU3(1),
		Apps: []sim.AppSpec{
			{App: bml, PID: 1, Cluster: sched.Big, Threads: 1},
		},
		Governors: map[platform.DomainID]governor.Governor{
			platform.DomLittle: governor.Performance{},
			platform.DomBig:    governor.Performance{},
			platform.DomGPU:    governor.Powersave{},
		},
		Controller: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if g.Migrations() != 0 {
		t.Error("skin check should be inert on a platform without a skin node")
	}
}
