package detrand

import (
	"math/rand"
	"testing"
)

// TestStreamEquivalence pins the load-bearing property: a rand.Rand
// over a counted source produces the exact stream of one over the bare
// source, across every derived-generator family the simulator uses
// (Float64, NormFloat64, Int63n, Uint64). If the wrapper ever stopped
// implementing Source64, rand.Rand would synthesize Uint64 from two
// Int63 calls and this test would fail on the first NormFloat64.
func TestStreamEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42, -7, 1 << 40} {
		want := rand.New(rand.NewSource(seed))
		got := rand.New(New(seed))
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 1:
				if w, g := want.NormFloat64(), got.NormFloat64(); w != g {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 2:
				if w, g := want.Int63n(1000), got.Int63n(1000); w != g {
					t.Fatalf("seed %d draw %d: Int63n %v != %v", seed, i, g, w)
				}
			case 3:
				if w, g := want.Uint64(), got.Uint64(); w != g {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, g, w)
				}
			}
		}
	}
}

// TestRestoreRepositions pins snapshot semantics: Restore(seed, draws)
// reproduces the continuation stream exactly, including through a
// shared rand.Rand whose pointer survives the restore.
func TestRestoreRepositions(t *testing.T) {
	src := New(99)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.NormFloat64()
	}
	seed, draws := src.State()
	var want []float64
	for i := 0; i < 50; i++ {
		want = append(want, rng.Float64())
	}

	// Restore in place: the rand.Rand wrapper is stateless for Float64
	// and NormFloat64 streams given the source, so the same rng must
	// replay the continuation.
	src.Restore(seed, draws)
	for i := 0; i < 50; i++ {
		if got := rng.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore: %v != %v", i, got, want[i])
		}
	}

	// And a freshly built source at the same position agrees too.
	src2 := New(1)
	src2.Restore(seed, draws)
	rng2 := rand.New(src2)
	for i := 0; i < 50; i++ {
		if got := rng2.Float64(); got != want[i] {
			t.Fatalf("fresh source draw %d: %v != %v", i, got, want[i])
		}
	}
}

func TestDrawCounting(t *testing.T) {
	src := New(5)
	if _, draws := src.State(); draws != 0 {
		t.Fatalf("fresh source draws = %d", draws)
	}
	src.Int63()
	src.Uint64()
	if seed, draws := src.State(); seed != 5 || draws != 2 {
		t.Fatalf("State = (%d, %d), want (5, 2)", seed, draws)
	}
	src.Seed(6)
	if seed, draws := src.State(); seed != 6 || draws != 0 {
		t.Fatalf("after Seed: (%d, %d)", seed, draws)
	}
}
