// Package detrand wraps math/rand's source with a draw counter, making
// every RNG in the simulator snapshot-restorable: the state of a
// counted source is just (seed, draws), and restoring replays the seed
// and burns the counted draws. This works because math/rand's rngSource
// advances exactly one internal step per Int63 or Uint64 call, so the
// count is a complete description of the stream position.
//
// The wrapper implements rand.Source64. That matters: rand.Rand probes
// for Source64 at construction and changes which source method each
// derived generator (Uint64, Int63n, ...) calls — a wrapper hiding
// Uint64 would silently produce a different stream than the bare
// source it replaced, breaking bitwise compatibility with every golden
// trace in the repo.
package detrand

import "math/rand"

// Source is a counted, restorable rand.Source64.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// New returns a counted source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws the next value, counting one draw.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 draws the next value, counting one draw.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed reseeds the source and resets the draw count.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// State returns the stream position: the seed and how many draws have
// been taken since seeding.
func (s *Source) State() (seed int64, draws uint64) { return s.seed, s.draws }

// Restore repositions the stream at (seed, draws) by reseeding and
// burning draws values — O(draws), which is fine at simulator draw
// rates (a handful per control interval, not per step).
func (s *Source) Restore(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}
