package sweep

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestTaskPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out := make([]int, 40)
		tasks := make([]func(ctx context.Context) error, len(out))
		for i := range tasks {
			i := i
			tasks[i] = func(ctx context.Context) error {
				out[i] = i * i
				return nil
			}
		}
		pool := &TaskPool{Workers: workers}
		if err := pool.Run(context.Background(), tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestTaskPoolEmpty(t *testing.T) {
	pool := &TaskPool{}
	if err := pool.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestTaskPoolFirstError(t *testing.T) {
	boom := fmt.Errorf("boom")
	var ran atomic.Int32
	tasks := make([]func(ctx context.Context) error, 64)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		}
	}
	pool := &TaskPool{Workers: 2}
	err := pool.Run(context.Background(), tasks)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v, want boom", err)
	}
	if n := ran.Load(); n == 64 {
		t.Fatal("error did not stop the feed")
	}
}

func TestTaskPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	pool := &TaskPool{Workers: 2}
	err := pool.Run(ctx, []func(ctx context.Context) error{
		func(ctx context.Context) error { ran = true; return nil },
	})
	if err == nil {
		t.Fatal("canceled context not reported")
	}
	_ = ran // a task may or may not start; only the error contract is pinned
}
