package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// GroupRunFunc executes one group of scenarios that share a warm-up
// prefix — cells whose trajectories are bitwise-identical until their
// first limit-dependent control action — and returns their metric sets
// in group order. Implementations typically simulate the shared prefix
// once on a sentinel lane, snapshot the engine, and fork every other
// member from the restored state. Like RunFunc it must be safe for
// concurrent use and should return promptly once ctx is canceled.
type GroupRunFunc func(ctx context.Context, group []Scenario) ([]map[string]float64, error)

// GroupPool executes pre-formed scenario groups on a fixed worker set.
// The grouping policy belongs to the caller (the facade groups by
// prefix content key); the pool contributes the same ordering,
// cancellation and first-error semantics as Pool and BatchPool, with a
// whole group as the unit of work.
type GroupPool struct {
	// Workers is the concurrency; <= 0 uses GOMAXPROCS.
	Workers int
	// RunFunc executes one group (required).
	RunFunc GroupRunFunc
}

// Run executes every group and returns one metric-set slice per group,
// aligned with groups and with each group's member order, independent
// of worker interleaving. It stops early on the first group error or on
// context cancellation.
func (p *GroupPool) Run(ctx context.Context, groups [][]Scenario) ([][]map[string]float64, error) {
	if p.RunFunc == nil {
		return nil, fmt.Errorf("sweep: group pool needs a RunFunc")
	}
	if len(groups) == 0 {
		return nil, nil
	}
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("sweep: group %d is empty", gi)
		}
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	results := make([][]map[string]float64, len(groups))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range jobs {
				if ctx.Err() != nil {
					return
				}
				group := groups[gi]
				metrics, err := p.RunFunc(ctx, group)
				if err != nil {
					fail(fmt.Errorf("sweep: group of %d starting at scenario %d (%s): %w",
						len(group), group[0].Index, group[0].Key(), err))
					return
				}
				if len(metrics) != len(group) {
					fail(fmt.Errorf("sweep: group run returned %d metric sets for %d scenarios", len(metrics), len(group)))
					return
				}
				results[gi] = metrics
			}
		}()
	}
feed:
	for gi := range groups {
		select {
		case jobs <- gi:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: canceled: %w", err)
	}
	return results, nil
}
