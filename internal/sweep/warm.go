package sweep

import (
	"context"
	"fmt"
)

// GroupRunFunc executes one group of scenarios that share a warm-up
// prefix — cells whose trajectories are bitwise-identical until their
// first limit-dependent control action — and returns their metric sets
// in group order. Implementations typically simulate the shared prefix
// once on a sentinel lane, snapshot the engine, and fork every other
// member from the restored state. Like RunFunc it must be safe for
// concurrent use and should return promptly once ctx is canceled.
type GroupRunFunc func(ctx context.Context, group []Scenario) ([]map[string]float64, error)

// GroupPool executes pre-formed scenario groups on a fixed worker set.
// The grouping policy belongs to the caller (the facade groups by
// prefix content key); the pool contributes the same ordering,
// cancellation and first-error semantics as Pool and BatchPool, with a
// whole group as the unit of work.
type GroupPool struct {
	// Workers is the concurrency; <= 0 uses GOMAXPROCS.
	Workers int
	// RunFunc executes one group (required).
	RunFunc GroupRunFunc
}

// Run executes every group and returns one metric-set slice per group,
// aligned with groups and with each group's member order, independent
// of worker interleaving. It stops early on the first group error or on
// context cancellation.
func (p *GroupPool) Run(ctx context.Context, groups [][]Scenario) ([][]map[string]float64, error) {
	if p.RunFunc == nil {
		return nil, fmt.Errorf("sweep: group pool needs a RunFunc")
	}
	if len(groups) == 0 {
		return nil, nil
	}
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("sweep: group %d is empty", gi)
		}
	}

	results := make([][]map[string]float64, len(groups))
	tasks := make([]func(ctx context.Context) error, len(groups))
	for gi := range groups {
		gi := gi
		tasks[gi] = func(ctx context.Context) error {
			group := groups[gi]
			metrics, err := p.RunFunc(ctx, group)
			if err != nil {
				return fmt.Errorf("sweep: group of %d starting at scenario %d (%s): %w",
					len(group), group[0].Index, group[0].Key(), err)
			}
			if len(metrics) != len(group) {
				return fmt.Errorf("sweep: group run returned %d metric sets for %d scenarios", len(metrics), len(group))
			}
			results[gi] = metrics
			return nil
		}
	}
	pool := &TaskPool{Workers: p.Workers}
	if err := pool.Run(ctx, tasks); err != nil {
		return nil, err
	}
	return results, nil
}
