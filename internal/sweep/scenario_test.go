package sweep

import (
	"fmt"
	"testing"
)

func TestMatrixScenariosExpansion(t *testing.T) {
	tests := []struct {
		name string
		m    Matrix
		want int
	}{
		{
			name: "single cell",
			m: Matrix{
				Platforms: []string{"odroid-xu3"}, Workloads: []string{"3dmark+bml"},
				Governors: []string{"appaware"}, LimitsC: []float64{60},
				Replicates: 1, DurationS: 10, BaseSeed: 1,
			},
			want: 1,
		},
		{
			name: "limits by replicates",
			m: Matrix{
				Platforms: []string{"odroid-xu3"}, Workloads: []string{"3dmark+bml"},
				Governors: []string{"appaware"}, LimitsC: []float64{52, 58, 64, 70},
				Replicates: 3, DurationS: 10, BaseSeed: 1,
			},
			want: 12,
		},
		{
			name: "full cartesian",
			m: Matrix{
				Platforms: []string{"odroid-xu3", "nexus6p"}, Workloads: []string{"3dmark", "3dmark+bml", "nenamark"},
				Governors: []string{"appaware", "ipa"}, LimitsC: []float64{55, 65},
				Replicates: 2, DurationS: 10, BaseSeed: 1,
			},
			want: 48,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			scs, err := tt.m.Scenarios()
			if err != nil {
				t.Fatal(err)
			}
			if len(scs) != tt.want {
				t.Fatalf("want %d scenarios, got %d", tt.want, len(scs))
			}
			if got := tt.m.Size(); got != tt.want {
				t.Errorf("Size() = %d, want %d", got, tt.want)
			}
			for i, sc := range scs {
				if sc.Index != i {
					t.Fatalf("scenario %d has Index %d", i, sc.Index)
				}
				if sc.DurationS != tt.m.DurationS {
					t.Fatalf("scenario %d duration %v, want %v", i, sc.DurationS, tt.m.DurationS)
				}
				if sc.Replicate != i%tt.m.Replicates {
					t.Fatalf("scenario %d replicate %d; replicates must be the innermost axis", i, sc.Replicate)
				}
			}
		})
	}
}

func TestMatrixScenariosOrdering(t *testing.T) {
	m := Matrix{
		Platforms:  []string{"p1", "p2"},
		Workloads:  []string{"w1"},
		Governors:  []string{"g1", "g2"},
		LimitsC:    []float64{50, 60},
		Replicates: 2,
		DurationS:  1,
		BaseSeed:   7,
	}
	scs, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	// Platform-major: the first half is p1, the second half p2.
	if scs[0].Platform != "p1" || scs[len(scs)-1].Platform != "p2" {
		t.Errorf("platform ordering broken: first %q, last %q", scs[0].Platform, scs[len(scs)-1].Platform)
	}
	// Replicate-minor: adjacent scenarios differ only in replicate.
	if scs[0].Key() != scs[1].Key() {
		t.Errorf("scenarios 0 and 1 should share a cell, got %q vs %q", scs[0].Key(), scs[1].Key())
	}
	if scs[0].Replicate != 0 || scs[1].Replicate != 1 {
		t.Errorf("replicates not innermost: got %d, %d", scs[0].Replicate, scs[1].Replicate)
	}
	// Limits vary before governors.
	if scs[2].LimitC != 60 || scs[2].Governor != "g1" {
		t.Errorf("limit should vary before governor: scenario 2 is %+v", scs[2])
	}
	// Paired design: the same replicate shares its seed across cells.
	for _, sc := range scs {
		want := DeriveSeed(m.BaseSeed, sc.Replicate)
		if sc.Seed != want {
			t.Fatalf("scenario %d seed %d, want DeriveSeed(%d, %d) = %d",
				sc.Index, sc.Seed, m.BaseSeed, sc.Replicate, want)
		}
	}
}

func TestMatrixScenariosValidation(t *testing.T) {
	valid := Matrix{
		Platforms: []string{"p"}, Workloads: []string{"w"},
		Governors: []string{"g"}, LimitsC: []float64{60},
		Replicates: 1, DurationS: 1,
	}
	tests := []struct {
		name  string
		bust  func(*Matrix)
		valid bool
	}{
		{"valid", func(*Matrix) {}, true},
		{"no platforms", func(m *Matrix) { m.Platforms = nil }, false},
		{"no workloads", func(m *Matrix) { m.Workloads = nil }, false},
		{"no governors", func(m *Matrix) { m.Governors = nil }, false},
		{"no limits", func(m *Matrix) { m.LimitsC = nil }, false},
		{"zero replicates", func(m *Matrix) { m.Replicates = 0 }, false},
		{"negative replicates", func(m *Matrix) { m.Replicates = -1 }, false},
		{"zero duration", func(m *Matrix) { m.DurationS = 0 }, false},
		{"negative duration", func(m *Matrix) { m.DurationS = -5 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := valid
			tt.bust(&m)
			_, err := m.Scenarios()
			if tt.valid && err != nil {
				t.Fatalf("valid matrix rejected: %v", err)
			}
			if !tt.valid && err == nil {
				t.Fatal("invalid matrix accepted")
			}
		})
	}
}

func TestDeriveSeedStability(t *testing.T) {
	// Golden values pin the derivation across refactors: a silent change
	// would reshuffle every recorded sweep.
	golden := []struct {
		base      int64
		replicate int
		want      int64
	}{
		{1, 0, -7995527694508729151},
		{1, 1, -4689498862643123097},
		{1, 2, -534904783426661026},
		{42, 0, -4767286540954276203},
		{-3, 0, -621772950581698083},
	}
	for _, g := range golden {
		if got := DeriveSeed(g.base, g.replicate); got != g.want {
			t.Errorf("DeriveSeed(%d, %d) = %d, want %d", g.base, g.replicate, got, g.want)
		}
	}
	// Distinctness across replicates and bases.
	seen := make(map[int64]string)
	for base := int64(0); base < 8; base++ {
		for r := 0; r < 8; r++ {
			s := DeriveSeed(base, r)
			key := fmt.Sprintf("base %d replicate %d", base, r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	// Stability: two expansions of the same matrix agree.
	m := Matrix{
		Platforms: []string{"p"}, Workloads: []string{"w"},
		Governors: []string{"g"}, LimitsC: []float64{50, 60},
		Replicates: 3, DurationS: 1, BaseSeed: 99,
	}
	a, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
