package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeMatrix expands a small deterministic scenario set for pool tests.
func fakeMatrix(t *testing.T, cells, replicates int) []Scenario {
	t.Helper()
	limits := make([]float64, cells)
	for i := range limits {
		limits[i] = 50 + float64(i)
	}
	m := Matrix{
		Platforms:  []string{"fake"},
		Workloads:  []string{"fake"},
		Governors:  []string{"fake"},
		LimitsC:    limits,
		Replicates: replicates,
		DurationS:  1,
		BaseSeed:   7,
	}
	scs, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

// fakeRun is a deterministic pure function of the scenario, standing in
// for a simulation.
func fakeRun(_ context.Context, sc Scenario) (map[string]float64, error) {
	return map[string]float64{
		"metric_a": sc.LimitC * float64(sc.Seed%1000),
		"metric_b": float64(sc.Index),
	}, nil
}

func TestPoolParityAcrossWorkerCounts(t *testing.T) {
	scenarios := fakeMatrix(t, 5, 3)
	serialPool := &Pool{Workers: 1, RunFunc: fakeRun}
	serial, err := serialPool.Run(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			pool := &Pool{Workers: workers, RunFunc: fakeRun}
			got, err := pool.Run(context.Background(), scenarios)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, got) {
				t.Fatalf("results differ from serial run:\nserial: %+v\ngot:    %+v", serial, got)
			}
			// Byte-identical aggregated output, the pool's core contract.
			a, err := Aggregate(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Aggregate(got)
			if err != nil {
				t.Fatal(err)
			}
			aj, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			bj, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			if string(aj) != string(bj) {
				t.Fatalf("aggregates not byte-identical:\n%s\nvs\n%s", aj, bj)
			}
		})
	}
}

func TestPoolRunsConcurrently(t *testing.T) {
	// Sleep-bound scenarios parallelize even on a single CPU: 8
	// scenarios of 50 ms each finish in ~2 batches on 4 workers, far
	// under the 400 ms a serial pass needs.
	scenarios := fakeMatrix(t, 8, 1)
	pool := &Pool{
		Workers: 4,
		RunFunc: func(ctx context.Context, sc Scenario) (map[string]float64, error) {
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return map[string]float64{"m": 1}, nil
		},
	}
	start := time.Now()
	if _, err := pool.Run(context.Background(), scenarios); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 350*time.Millisecond {
		t.Errorf("8×50ms scenarios on 4 workers took %v; pool is not concurrent", elapsed)
	}
}

func TestPoolErrorPropagation(t *testing.T) {
	scenarios := fakeMatrix(t, 8, 1)
	sentinel := errors.New("scenario exploded")
	var started atomic.Int32
	pool := &Pool{
		Workers: 2,
		RunFunc: func(ctx context.Context, sc Scenario) (map[string]float64, error) {
			started.Add(1)
			if sc.Index == 2 {
				return nil, sentinel
			}
			// Successes are slow enough for the cancellation to land
			// before the queue tail is fed.
			select {
			case <-time.After(20 * time.Millisecond):
			case <-ctx.Done():
			}
			return map[string]float64{"m": 1}, nil
		},
	}
	_, err := pool.Run(context.Background(), scenarios)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want the scenario error, got %v", err)
	}
	// The error names the failing scenario.
	if !strings.Contains(err.Error(), "scenario 2") {
		t.Errorf("error does not identify the failing scenario: %v", err)
	}
	// The pool stops feeding after the failure: with 2 workers and an
	// immediate error on the third scenario, the tail never starts.
	if n := started.Load(); int(n) == len(scenarios) {
		t.Errorf("all %d scenarios started despite early failure", n)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	scenarios := fakeMatrix(t, 8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	pool := &Pool{
		Workers: 2,
		RunFunc: func(ctx context.Context, sc Scenario) (map[string]float64, error) {
			if started.Add(1) == 2 {
				cancel() // cancel mid-sweep, from inside a scenario
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return map[string]float64{"m": 1}, nil
			}
		},
	}
	done := make(chan struct{})
	var err error
	go func() {
		_, err = pool.Run(ctx, scenarios)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pool did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := started.Load(); int(n) == len(scenarios) {
		t.Errorf("all %d scenarios started despite cancellation", n)
	}
}

// TestPoolOnResult pins the streaming hook: every completed scenario
// fires OnResult exactly once with its own result (concurrently, so
// the collector synchronizes), and the hook never fires for scenarios
// skipped after an error.
func TestPoolOnResult(t *testing.T) {
	scenarios := fakeMatrix(t, 4, 2)
	var mu sync.Mutex
	got := make(map[int]Result)
	pool := &Pool{
		Workers: 4,
		RunFunc: fakeRun,
		OnResult: func(r Result) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[r.Scenario.Index]; dup {
				t.Errorf("OnResult fired twice for scenario %d", r.Scenario.Index)
			}
			got[r.Scenario.Index] = r
		},
	}
	results, err := pool.Run(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("OnResult fired %d times for %d results", len(got), len(results))
	}
	for _, r := range results {
		hooked, ok := got[r.Scenario.Index]
		if !ok || !reflect.DeepEqual(hooked, r) {
			t.Errorf("scenario %d: hook saw %+v, pool returned %+v", r.Scenario.Index, hooked, r)
		}
	}

	// On failure the hook fires only for scenarios that completed.
	var fired atomic.Int32
	failing := &Pool{
		Workers: 2,
		RunFunc: func(ctx context.Context, sc Scenario) (map[string]float64, error) {
			if sc.Index == 0 {
				return nil, errors.New("boom")
			}
			return fakeRun(ctx, sc)
		},
		OnResult: func(Result) { fired.Add(1) },
	}
	if _, err := failing.Run(context.Background(), scenarios); err == nil {
		t.Fatal("want error")
	}
	if n := fired.Load(); int(n) >= len(scenarios) {
		t.Errorf("OnResult fired %d times despite an aborted sweep of %d", n, len(scenarios))
	}
}

func TestPoolEdgeCases(t *testing.T) {
	t.Run("empty scenarios", func(t *testing.T) {
		pool := &Pool{Workers: 4, RunFunc: fakeRun}
		res, err := pool.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			t.Fatalf("want nil results, got %v", res)
		}
	})
	t.Run("missing RunFunc", func(t *testing.T) {
		pool := &Pool{Workers: 4}
		if _, err := pool.Run(context.Background(), fakeMatrix(t, 2, 1)); err == nil {
			t.Fatal("pool without RunFunc should fail")
		}
	})
	t.Run("more workers than scenarios", func(t *testing.T) {
		pool := &Pool{Workers: 64, RunFunc: fakeRun}
		res, err := pool.Run(context.Background(), fakeMatrix(t, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("want 2 results, got %d", len(res))
		}
	})
	t.Run("pre-canceled context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		pool := &Pool{Workers: 2, RunFunc: fakeRun}
		if _, err := pool.Run(ctx, fakeMatrix(t, 4, 1)); !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})
}
