package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// DefaultBatchWidth is the lane count batches are packed to when the
// caller does not choose one. Eight lanes put one structure-of-arrays
// row per thermal node on exactly one 64-byte cache line (and match
// the fused kernel's specialized width).
const DefaultBatchWidth = 8

// BatchRunFunc executes one batch of same-platform scenarios in
// lockstep and returns their metric sets in batch order. It is the
// batched counterpart of RunFunc: implementations build one engine per
// scenario, couple them, and step them together. Like RunFunc it must
// be safe for concurrent use and should return promptly once ctx is
// canceled.
type BatchRunFunc func(ctx context.Context, batch []Scenario) ([]map[string]float64, error)

// PackBatches groups scenarios by platform — lanes of a batch must
// share a thermal topology — and slices each group into runs of at
// most width lanes. Group order follows first appearance and each
// batch preserves expansion order, so the result covers every scenario
// exactly once, deterministically: packing changes execution grouping,
// never results (each lane is bitwise-independent of its batch mates).
func PackBatches(scenarios []Scenario, width int) [][]Scenario {
	var batches [][]Scenario
	for _, idx := range packPositions(scenarios, width) {
		b := make([]Scenario, len(idx))
		for k, i := range idx {
			b[k] = scenarios[i]
		}
		batches = append(batches, b)
	}
	return batches
}

// packPositions is PackBatches over slice positions, the form the
// batch pool consumes so results land by input position regardless of
// the scenarios' Index values.
func packPositions(scenarios []Scenario, width int) [][]int {
	if width <= 0 {
		width = DefaultBatchWidth
	}
	groups := make(map[string][]int)
	var order []string
	for i, sc := range scenarios {
		if _, seen := groups[sc.Platform]; !seen {
			order = append(order, sc.Platform)
		}
		groups[sc.Platform] = append(groups[sc.Platform], i)
	}
	var batches [][]int
	for _, p := range order {
		g := groups[p]
		for len(g) > width {
			batches = append(batches, g[:width])
			g = g[width:]
		}
		if len(g) > 0 {
			batches = append(batches, g)
		}
	}
	return batches
}

// BatchPool executes scenarios on a fixed set of workers, each worker
// driving whole batches of same-platform scenarios in lockstep. It is
// the batched counterpart of Pool: same ordering, cancellation and
// first-error semantics, but the unit of work is a batch instead of a
// single scenario.
type BatchPool struct {
	// Workers is the concurrency; <= 0 uses GOMAXPROCS.
	Workers int
	// Width is the maximum lanes per batch; <= 0 uses
	// DefaultBatchWidth.
	Width int
	// RunFunc executes one batch (required).
	RunFunc BatchRunFunc
}

// Run executes every scenario and returns results in scenario order,
// independent of batch packing and worker interleaving. It stops early
// on the first batch error or on context cancellation.
func (p *BatchPool) Run(ctx context.Context, scenarios []Scenario) ([]Result, error) {
	if p.RunFunc == nil {
		return nil, fmt.Errorf("sweep: batch pool needs a RunFunc")
	}
	if len(scenarios) == 0 {
		return nil, nil
	}
	batches := packPositions(scenarios, p.Width)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batches) {
		workers = len(batches)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	results := make([]Result, len(scenarios))
	batchBuf := make([][]Scenario, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range jobs {
				if ctx.Err() != nil {
					return
				}
				idx := batches[bi]
				// Reuse one per-worker scenario buffer across batches.
				batch := batchBuf[w][:0]
				for _, i := range idx {
					batch = append(batch, scenarios[i])
				}
				batchBuf[w] = batch
				metrics, err := p.RunFunc(ctx, batch)
				if err != nil {
					fail(fmt.Errorf("sweep: batch of %d starting at scenario %d (%s): %w",
						len(batch), batch[0].Index, batch[0].Key(), err))
					return
				}
				if len(metrics) != len(batch) {
					fail(fmt.Errorf("sweep: batch run returned %d metric sets for %d scenarios", len(metrics), len(batch)))
					return
				}
				for li, i := range idx {
					results[i] = Result{Scenario: scenarios[i], Metrics: metrics[li]}
				}
			}
		}()
	}
feed:
	for bi := range batches {
		select {
		case jobs <- bi:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: canceled: %w", err)
	}
	return results, nil
}
