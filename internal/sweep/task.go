package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// TaskPool executes opaque work items on a fixed worker set with the
// ordering, cancellation and first-error semantics shared by Pool,
// BatchPool and GroupPool: tasks write their results into caller-owned
// slots (each task owns disjoint output positions, so results are
// independent of worker interleaving), the first task error cancels the
// rest, and context cancellation stops feeding promptly. It is the
// execution substrate the scenario pools layer their unit shapes on,
// and the one consumers with custom units (the explore evaluator's
// mixed warm-pack/cold-batch work lists) use directly.
type TaskPool struct {
	// Workers is the concurrency; <= 0 uses GOMAXPROCS.
	Workers int
}

// Run executes every task and returns the first task error, if any.
// Tasks must be safe to run concurrently with each other.
func (p *TaskPool) Run(ctx context.Context, tasks []func(ctx context.Context) error) error {
	if len(tasks) == 0 {
		return nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				if ctx.Err() != nil {
					return
				}
				if err := tasks[ti](ctx); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for ti := range tasks {
		select {
		case jobs <- ti:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sweep: canceled: %w", err)
	}
	return nil
}
