package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func scenariosForPacking() []Scenario {
	// Two platforms interleaved, as a platform-major expansion never
	// produces them — packing must regroup without reordering within a
	// group.
	var out []Scenario
	for i := 0; i < 10; i++ {
		p := "odroid-xu3"
		if i%2 == 1 {
			p = "nexus6p"
		}
		out = append(out, Scenario{Index: i, Platform: p, Workload: "w", Governor: "g", DurationS: 1, Seed: int64(i)})
	}
	return out
}

func TestPackBatches(t *testing.T) {
	batches := PackBatches(scenariosForPacking(), 3)
	// 5 odroid + 5 nexus at width 3 → 3+2 and 3+2.
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	seen := make(map[int]bool)
	for _, b := range batches {
		if len(b) == 0 || len(b) > 3 {
			t.Fatalf("batch size %d out of range", len(b))
		}
		for i, sc := range b {
			if sc.Platform != b[0].Platform {
				t.Fatalf("mixed platforms in one batch: %s vs %s", sc.Platform, b[0].Platform)
			}
			if i > 0 && sc.Index < b[i-1].Index {
				t.Fatalf("batch reorders scenarios: %d after %d", sc.Index, b[i-1].Index)
			}
			if seen[sc.Index] {
				t.Fatalf("scenario %d packed twice", sc.Index)
			}
			seen[sc.Index] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("packed %d scenarios, want 10", len(seen))
	}
	// Default width kicks in for width <= 0.
	if got := PackBatches(scenariosForPacking(), 0); len(got) != 2 {
		t.Fatalf("default width should pack 2 batches, got %d", len(got))
	}
}

func TestBatchPoolRun(t *testing.T) {
	scs := scenariosForPacking()
	pool := &BatchPool{
		Workers: 3,
		Width:   3,
		RunFunc: func(ctx context.Context, batch []Scenario) ([]map[string]float64, error) {
			out := make([]map[string]float64, len(batch))
			for i, sc := range batch {
				out[i] = map[string]float64{"idx": float64(sc.Index), "lanes": float64(len(batch))}
			}
			return out, nil
		},
	}
	results, err := pool.Run(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scs) {
		t.Fatalf("got %d results, want %d", len(results), len(scs))
	}
	for i, r := range results {
		if r.Scenario.Index != i || r.Metrics["idx"] != float64(i) {
			t.Fatalf("result %d holds scenario %d (metric %v)", i, r.Scenario.Index, r.Metrics["idx"])
		}
	}
}

func TestBatchPoolFirstError(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	started := 0
	pool := &BatchPool{
		Workers: 1,
		Width:   2,
		RunFunc: func(ctx context.Context, batch []Scenario) ([]map[string]float64, error) {
			mu.Lock()
			started++
			mu.Unlock()
			return nil, fmt.Errorf("batch %d: %w", batch[0].Index, boom)
		},
	}
	_, err := pool.Run(context.Background(), scenariosForPacking())
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if started != 1 {
		t.Fatalf("pool kept dispatching after the first error: %d batches ran", started)
	}
}

func TestBatchPoolMetricCountMismatch(t *testing.T) {
	pool := &BatchPool{
		Workers: 1,
		RunFunc: func(ctx context.Context, batch []Scenario) ([]map[string]float64, error) {
			return make([]map[string]float64, len(batch)-1), nil
		},
	}
	if _, err := pool.Run(context.Background(), scenariosForPacking()); err == nil {
		t.Fatal("short metric slice should fail the sweep")
	}
}

func TestBatchPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := &BatchPool{
		RunFunc: func(ctx context.Context, batch []Scenario) ([]map[string]float64, error) {
			return make([]map[string]float64, len(batch)), nil
		},
	}
	if _, err := pool.Run(ctx, scenariosForPacking()); err == nil {
		t.Fatal("canceled context should abort the pool")
	}
}

func TestBatchPoolNeedsRunFunc(t *testing.T) {
	pool := &BatchPool{}
	if _, err := pool.Run(context.Background(), scenariosForPacking()); err == nil {
		t.Fatal("missing RunFunc should be rejected")
	}
	if res, err := (&BatchPool{RunFunc: func(context.Context, []Scenario) ([]map[string]float64, error) { return nil, nil }}).Run(context.Background(), nil); err != nil || res != nil {
		t.Fatalf("empty scenario list should be a no-op, got %v, %v", res, err)
	}
}
