package sweep

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Stat summarizes one metric across the seed replicates of a cell.
type Stat struct {
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
}

// Summary is one parameter cell's aggregate across replicates.
type Summary struct {
	// Platform, Workload, Governor, LimitC and DurationS identify the
	// cell (the scenario axes minus the replicate).
	Platform  string
	Workload  string
	Governor  string
	LimitC    float64
	DurationS float64
	// Replicates counts the results folded into the cell.
	Replicates int
	// Metrics maps metric names to their replicate statistics.
	Metrics map[string]Stat
	// MetricNames lists the metric keys sorted, for deterministic
	// rendering.
	MetricNames []string
}

// Aggregate folds per-scenario results into per-cell summaries. Cells
// appear in first-occurrence order — for pool output, matrix order —
// and metric names are sorted within each cell, so the same result set
// always aggregates to byte-identical summaries.
func Aggregate(results []Result) ([]Summary, error) {
	type cell struct {
		sc      Scenario
		n       int
		samples map[string][]float64
	}
	index := make(map[string]*cell)
	var order []string
	for _, r := range results {
		k := r.Scenario.Key()
		c, ok := index[k]
		if !ok {
			c = &cell{sc: r.Scenario, samples: make(map[string][]float64)}
			index[k] = c
			order = append(order, k)
		}
		c.n++
		for name, v := range r.Metrics {
			c.samples[name] = append(c.samples[name], v)
		}
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		c := index[k]
		names := make([]string, 0, len(c.samples))
		for name := range c.samples {
			names = append(names, name)
		}
		sort.Strings(names)
		ms := make(map[string]Stat, len(names))
		for _, name := range names {
			st, err := newStat(c.samples[name])
			if err != nil {
				return nil, fmt.Errorf("sweep: aggregate %s metric %s: %w", k, name, err)
			}
			ms[name] = st
		}
		out = append(out, Summary{
			Platform:    c.sc.Platform,
			Workload:    c.sc.Workload,
			Governor:    c.sc.Governor,
			LimitC:      c.sc.LimitC,
			DurationS:   c.sc.DurationS,
			Replicates:  c.n,
			Metrics:     ms,
			MetricNames: names,
		})
	}
	return out, nil
}

// newStat computes the replicate statistics of one metric.
func newStat(xs []float64) (Stat, error) {
	mean, err := stats.Mean(xs)
	if err != nil {
		return Stat{}, err
	}
	lo, err := stats.Min(xs)
	if err != nil {
		return Stat{}, err
	}
	hi, err := stats.Max(xs)
	if err != nil {
		return Stat{}, err
	}
	p50, err := stats.Quantile(xs, 0.5)
	if err != nil {
		return Stat{}, err
	}
	p95, err := stats.Quantile(xs, 0.95)
	if err != nil {
		return Stat{}, err
	}
	return Stat{Mean: mean, Min: lo, Max: hi, P50: p50, P95: p95}, nil
}
