// Package sweep is the parallel scenario-sweep engine: it expands a
// declarative parameter matrix into fully-specified scenarios, fans
// them out across a worker pool of independent simulations, and folds
// the per-scenario metrics back into statistical summaries.
//
// The package is deliberately simulation-agnostic: scenarios carry only
// axis values (platform, workload, governor arm, thermal limit, seed)
// and a RunFunc supplied by the caller — in this repo,
// experiments.RunScenario — turns one scenario into a metric set. The
// engine relies on the simulator's determinism invariant (same seed ⇒
// bitwise-identical run), so results never depend on worker
// interleaving: a pool with N workers produces byte-identical output to
// a serial pass.
package sweep

import (
	"fmt"
	"math"
)

// Scenario is one fully-specified simulation point of a sweep matrix.
type Scenario struct {
	// Index is the scenario's position in the expanded matrix; the pool
	// reports results in Index order regardless of completion order.
	Index int
	// Platform names the device model ("odroid-xu3", "nexus6p").
	Platform string
	// Workload names the foreground app, with an optional "+bml"
	// suffix adding the basicmath-large background task.
	Workload string
	// Governor names the thermal-management arm ("appaware", "ipa",
	// "stepwise", "none").
	Governor string
	// LimitC is the thermal limit for limit-aware arms; 0 keeps the
	// platform default.
	LimitC float64
	// DurationS is the simulated duration in seconds.
	DurationS float64
	// Replicate numbers the seed replicate within the parameter cell.
	Replicate int
	// Seed is the simulation seed for this scenario.
	Seed int64
}

// Key identifies the scenario's parameter cell — every axis except the
// replicate — and is the grouping key of the aggregation layer.
func (s Scenario) Key() string {
	return fmt.Sprintf("%s|%s|%s|%g|%gs", s.Platform, s.Workload, s.Governor, s.LimitC, s.DurationS)
}

// Matrix declares a sweep as per-axis value lists. Scenarios expands
// the cartesian product of all axes times Replicates seed replicates.
type Matrix struct {
	// Platforms, Workloads, Governors and LimitsC are the sweep axes;
	// each needs at least one value.
	Platforms []string
	Workloads []string
	Governors []string
	LimitsC   []float64
	// Replicates is the number of seed replicates per parameter cell
	// (at least 1).
	Replicates int
	// DurationS is the simulated duration of every scenario.
	DurationS float64
	// BaseSeed anchors per-replicate seed derivation.
	BaseSeed int64
}

// Size returns the number of scenarios the matrix expands into.
func (m Matrix) Size() int {
	return len(m.Platforms) * len(m.Workloads) * len(m.Governors) * len(m.LimitsC) * m.Replicates
}

// MaxScenarios bounds a single matrix expansion; it exists so a
// malformed or hostile matrix (say, a million replicates decoded from
// JSON) fails with a clear error instead of attempting to materialize
// the expansion.
const MaxScenarios = 1 << 20

// Validate checks the matrix's axes, replicate count, duration and
// expansion size without materializing anything. Scenarios calls it
// first, and the pkg/mobisim facade builds its stricter validation on
// top of it, so the scalar rules live in exactly one place.
func (m Matrix) Validate() error {
	switch {
	case len(m.Platforms) == 0:
		return fmt.Errorf("sweep: matrix needs at least one platform")
	case len(m.Workloads) == 0:
		return fmt.Errorf("sweep: matrix needs at least one workload")
	case len(m.Governors) == 0:
		return fmt.Errorf("sweep: matrix needs at least one governor")
	case len(m.LimitsC) == 0:
		return fmt.Errorf("sweep: matrix needs at least one thermal limit")
	case m.Replicates < 1:
		return fmt.Errorf("sweep: matrix needs at least one replicate, got %d", m.Replicates)
	case !(m.DurationS > 0) || math.IsInf(m.DurationS, 0): // rejects NaN too
		return fmt.Errorf("sweep: matrix duration must be positive and finite, got %v", m.DurationS)
	}
	// The axis-length product can overflow int; bound it in float space
	// before anything is allocated.
	if size := float64(len(m.Platforms)) * float64(len(m.Workloads)) * float64(len(m.Governors)) *
		float64(len(m.LimitsC)) * float64(m.Replicates); size > MaxScenarios {
		return fmt.Errorf("sweep: matrix expands to %.0f scenarios, exceeding the %d-scenario bound", size, MaxScenarios)
	}
	return nil
}

// Scenarios cartesian-expands the matrix in platform-major,
// replicate-minor order: platforms, then workloads, governors, limits,
// and replicates innermost. Every replicate r across all parameter
// cells shares the seed DeriveSeed(BaseSeed, r), giving the sweep a
// paired design: points that differ only in a parameter axis see
// identical random streams, exactly like the original LimitSweep
// reusing one seed across limits.
func (m Matrix) Scenarios() ([]Scenario, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make([]Scenario, 0, m.Size())
	for _, p := range m.Platforms {
		for _, w := range m.Workloads {
			for _, g := range m.Governors {
				for _, l := range m.LimitsC {
					for r := 0; r < m.Replicates; r++ {
						out = append(out, Scenario{
							Index:     len(out),
							Platform:  p,
							Workload:  w,
							Governor:  g,
							LimitC:    l,
							DurationS: m.DurationS,
							Replicate: r,
							Seed:      DeriveSeed(m.BaseSeed, r),
						})
					}
				}
			}
		}
	}
	return out, nil
}

// DeriveSeed maps (base, replicate) to a scenario seed with a
// SplitMix64 finalizer: deterministic, stable across releases (pinned
// by a golden test), and well-spread even for adjacent inputs. The
// derived stream is what makes replicate seeds independent while the
// paired design keeps them equal across parameter cells.
func DeriveSeed(base int64, replicate int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(uint32(replicate)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
