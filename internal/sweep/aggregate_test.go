package sweep

import (
	"math"
	"testing"
)

// result builds one Result for aggregation tests.
func result(limitC float64, replicate int, metrics map[string]float64) Result {
	return Result{
		Scenario: Scenario{
			Platform: "p", Workload: "w", Governor: "g",
			LimitC: limitC, DurationS: 10, Replicate: replicate,
		},
		Metrics: metrics,
	}
}

func TestAggregateFoldsReplicates(t *testing.T) {
	results := []Result{
		result(50, 0, map[string]float64{"fps": 100, "peak_c": 60}),
		result(50, 1, map[string]float64{"fps": 110, "peak_c": 62}),
		result(50, 2, map[string]float64{"fps": 90, "peak_c": 61}),
		result(60, 0, map[string]float64{"fps": 120, "peak_c": 70}),
	}
	summaries, err := Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("want 2 cells, got %d", len(summaries))
	}
	// Cells keep first-occurrence (matrix) order.
	if summaries[0].LimitC != 50 || summaries[1].LimitC != 60 {
		t.Fatalf("cell order broken: %v then %v", summaries[0].LimitC, summaries[1].LimitC)
	}
	s := summaries[0]
	if s.Replicates != 3 {
		t.Errorf("want 3 replicates folded, got %d", s.Replicates)
	}
	fps := s.Metrics["fps"]
	want := Stat{Mean: 100, Min: 90, Max: 110, P50: 100, P95: 109}
	if !statsClose(fps, want) {
		t.Errorf("fps stats = %+v, want %+v", fps, want)
	}
	// Metric names are sorted for deterministic rendering.
	if len(s.MetricNames) != 2 || s.MetricNames[0] != "fps" || s.MetricNames[1] != "peak_c" {
		t.Errorf("metric names not sorted: %v", s.MetricNames)
	}
}

func TestAggregateSingleReplicate(t *testing.T) {
	summaries, err := Aggregate([]Result{
		result(55, 0, map[string]float64{"fps": 42.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := summaries[0].Metrics["fps"]
	for name, v := range map[string]float64{
		"mean": st.Mean, "min": st.Min, "max": st.Max, "p50": st.P50, "p95": st.P95,
	} {
		if v != 42.5 {
			t.Errorf("single replicate %s = %v, want 42.5", name, v)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	summaries, err := Aggregate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 0 {
		t.Fatalf("want no summaries, got %d", len(summaries))
	}
}

func statsClose(a, b Stat) bool {
	const tol = 1e-9
	return math.Abs(a.Mean-b.Mean) < tol &&
		math.Abs(a.Min-b.Min) < tol &&
		math.Abs(a.Max-b.Max) < tol &&
		math.Abs(a.P50-b.P50) < tol &&
		math.Abs(a.P95-b.P95) < tol
}
