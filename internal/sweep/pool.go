package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Result is one completed scenario with its extracted metrics.
type Result struct {
	// Scenario is the point that was run.
	Scenario Scenario
	// Metrics maps metric names to scalar values.
	Metrics map[string]float64
}

// RunFunc turns one scenario into a metric set. Implementations must be
// safe for concurrent use (each call builds its own independent
// simulation) and should return promptly once ctx is canceled.
type RunFunc func(ctx context.Context, sc Scenario) (map[string]float64, error)

// Pool executes scenarios across a fixed set of workers.
type Pool struct {
	// Workers is the concurrency; <= 0 uses GOMAXPROCS.
	Workers int
	// RunFunc executes one scenario (required).
	RunFunc RunFunc
	// OnResult, when set, is invoked once per completed scenario as it
	// finishes — the streaming hook job services use for live progress.
	// Calls come from worker goroutines in completion order (not
	// scenario order), so implementations must be safe for concurrent
	// use; the returned slice is still in scenario order regardless.
	OnResult func(Result)
}

// Run executes every scenario and returns results in scenario order,
// independent of worker interleaving. It stops early on the first
// scenario error or on context cancellation, returning the first error
// encountered; queued scenarios are then never started, and in-flight
// ones see a canceled context.
func (p *Pool) Run(ctx context.Context, scenarios []Scenario) ([]Result, error) {
	if p.RunFunc == nil {
		return nil, fmt.Errorf("sweep: pool needs a RunFunc")
	}
	if len(scenarios) == 0 {
		return nil, nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	results := make([]Result, len(scenarios))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				sc := scenarios[i]
				m, err := p.RunFunc(ctx, sc)
				if err != nil {
					fail(fmt.Errorf("sweep: scenario %d (%s, seed %d): %w", sc.Index, sc.Key(), sc.Seed, err))
					return
				}
				results[i] = Result{Scenario: sc, Metrics: m}
				if p.OnResult != nil {
					p.OnResult(results[i])
				}
			}
		}()
	}
feed:
	for i := range scenarios {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: canceled: %w", err)
	}
	return results, nil
}
