package simd

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/pkg/mobisim"
)

// Config parameterizes a Server. The zero value is usable.
type Config struct {
	// QueueCap bounds the pending-job queue (default 16). A full queue
	// answers 429 with Retry-After.
	QueueCap int
	// JobWorkers is how many jobs execute concurrently (default 2).
	JobWorkers int
	// CellWorkers is the per-job cell concurrency (default 0 =
	// GOMAXPROCS).
	CellWorkers int
	// BatchWidth routes each job's cache-miss cells through the batched
	// lockstep executor with this lane width. 0 keeps the scalar
	// per-cell path; < 0 selects mobisim.DefaultBatchWidth. Responses
	// are byte-identical either way — the width is a throughput knob.
	BatchWidth int
	// CacheDir roots the on-disk result cache; empty keeps the cache
	// memory-only (and disables prefix snapshots).
	CacheDir string
	// MemCacheCap bounds the in-memory cache tier (default
	// DefaultMemCacheCap).
	MemCacheCap int
	// MaxBodyBytes bounds job-submission bodies (default 1 MiB).
	MaxBodyBytes int64
	// FS is the filesystem seam under the cache and journal (nil = the
	// real OS). Chaos tests pass a faultfs.Injector.
	FS faultfs.FS
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...any)
}

// Server is the sweep-as-a-service daemon core: an http.Handler for
// the /v1 API plus the queue, workers, scheduler and cache behind it.
// Construct with NewServer, call Start to launch the workers, and
// Shutdown to drain.
type Server struct {
	cfg     Config
	cache   *Cache
	sched   *Scheduler
	queue   *Queue
	journal *Journal // nil when memory-only
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	startedAt  time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	byHash   map[uint64]string // envelope hash → job id (idempotent resubmission)
	draining bool
	started  bool
	wg       sync.WaitGroup

	// degraded flips once when durable state becomes unusable; the
	// daemon keeps serving memory-only (the degradation policy: never
	// fail a request over a bad disk).
	degraded    atomic.Bool
	degradedMu  sync.Mutex
	degradedWhy []string

	// killed marks a simulated crash (test-only Kill): terminal journal
	// records are suppressed so recovery sees the job as interrupted.
	killed atomic.Bool

	recoveredJobs    int
	recoveredSkipped int

	cellsDone atomic.Uint64
}

// NewServer builds a server (cache opened, journal replayed, workers
// not yet started). An unwritable or corrupt cache/journal directory
// does not fail construction: the daemon demotes itself to memory-only
// and reports the demotion through /healthz and /v1/stats — the error
// return is reserved for future hard failures.
func NewServer(cfg Config) (*Server, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.BatchWidth < 0 {
		cfg.BatchWidth = mobisim.DefaultBatchWidth
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		startedAt:  time.Now(),
		jobs:       make(map[string]*Job),
		byHash:     make(map[uint64]string),
	}

	cache, err := NewCacheFS(cfg.FS, cfg.CacheDir, cfg.MemCacheCap)
	if err != nil {
		s.degrade(fmt.Sprintf("cache dir unusable, running memory-only: %v", err))
		cache, _ = NewCacheFS(cfg.FS, "", cfg.MemCacheCap) // memory-only cannot fail
	}
	s.cache = cache
	s.sched = NewScheduler(ctx, cache)

	// The journal lives under the cache root; a memory-only cache (by
	// request or by demotion) runs journal-less.
	var recovered []RecoveredJob
	if cache.Dir() != "" {
		j, rec, jerr := OpenJournal(cfg.FS, JournalDir(cache.Dir()))
		if jerr != nil {
			s.degrade(fmt.Sprintf("journal unusable, crash recovery off: %v", jerr))
		} else {
			s.journal = j
			recovered = rec
		}
	}

	// Re-parse the recovered envelopes through the strict submission
	// parser: what replays is exactly what was admitted. An envelope the
	// current build rejects (schema drift) is skipped and marked
	// terminal so it never resurrects again.
	type recoveredJob struct {
		rj   RecoveredJob
		spec *JobSpec
	}
	var live []recoveredJob
	for _, rj := range recovered {
		spec, perr := ParseJobRequest(rj.Envelope)
		if perr != nil {
			s.recoveredSkipped++
			s.logf("job %s: recovered envelope rejected, dropping: %v", rj.ID, perr)
			_ = s.journal.AppendEnd(rj.ID, JobFailed, perr.Error())
			continue
		}
		live = append(live, recoveredJob{rj: rj, spec: spec})
	}

	// Recovery may hold more jobs than the configured admission cap;
	// the queue is sized to fit them all so no recovered job is lost.
	queueCap := cfg.QueueCap
	if len(live) > queueCap {
		queueCap = len(live)
	}
	s.queue = NewQueue(queueCap)
	for _, r := range live {
		job := NewJob(r.rj.ID, r.spec, s.baseCtx)
		s.jobs[job.ID] = job
		s.byHash[r.rj.Hash] = job.ID
		if qerr := s.queue.Enqueue(job); qerr != nil {
			job.Cancel()
			continue
		}
		s.recoveredJobs++
		s.publishJobStatus(job)
		s.logf("job %s: recovered from journal (%d cells, %d journaled done)",
			job.ID, len(r.spec.Cells), len(r.rj.DoneCells))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobPath)
	s.mux = mux
	return s, nil
}

// degrade records a durable-state demotion. The daemon keeps serving;
// the flag is visible in /healthz and the reasons in /v1/stats.
func (s *Server) degrade(reason string) {
	s.degradedMu.Lock()
	s.degradedWhy = append(s.degradedWhy, reason)
	s.degradedMu.Unlock()
	s.degraded.Store(true)
	s.logf("daemon degraded: %s", reason)
}

// Degraded reports whether durable state has been demoted.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// DegradedReasons snapshots the demotion history.
func (s *Server) DegradedReasons() []string {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return append([]string(nil), s.degradedWhy...)
}

// demoteJournal turns a journal write failure into a demotion: the
// journal is disabled (recovery is lost, requests are not) and the
// daemon flags itself degraded. No-op under a simulated crash.
func (s *Server) demoteJournal(err error) {
	if err == nil || s.killed.Load() {
		return
	}
	s.journal.Disable()
	s.degrade(fmt.Sprintf("journal write failed, journaling off: %v", err))
}

// Recovered reports how many journaled jobs the last startup re-enqueued.
func (s *Server) Recovered() int { return s.recoveredJobs }

// Journal exposes the job journal (stats, tests); nil when memory-only.
func (s *Server) Journal() *Journal { return s.journal }

// Cache exposes the server's result cache (stats, tests).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Start launches the job workers. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, ok := s.queue.Dequeue(s.baseCtx)
				if !ok {
					return
				}
				s.runJob(job)
			}
		}()
	}
}

// Shutdown drains the daemon: admission stops (new submissions get
// 503), queued and running jobs run to completion, then the workers
// exit. If ctx expires first, every remaining job is hard-canceled and
// ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.mu.Unlock()
	s.queue.Close()
	if !started {
		s.baseCancel()
		s.cancelQueued()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Anything still sitting in the queue (hard-cancel path) is
	// terminally canceled so status readers don't see "queued" forever.
	// Their journal records stay non-terminal on purpose: a job the
	// daemon never served is re-run on the next start.
	s.cancelQueued()
	s.baseCancel()
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Kill simulates a daemon crash for chaos tests: the base context is
// hard-canceled mid-flight, no terminal journal records are written for
// interrupted jobs, and the journal handle is dropped without syncing —
// as close to power loss as a test can get without killing the process
// (the listener dies with the httptest server; the journal bytes are
// whatever the WAL had absorbed). The server is unusable afterwards.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.mu.Unlock()
	s.baseCancel()
	s.queue.Close()
	if started {
		s.wg.Wait()
	}
	s.cancelQueued()
	s.journal.Disable()
}

// cancelQueued drains and cancels jobs the workers never picked up.
func (s *Server) cancelQueued() {
	for {
		job, ok := s.queue.TryDequeue()
		if !ok {
			return
		}
		job.Cancel()
	}
}

// logf logs one line when configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// runJob executes one job's cells through the scheduler and stores the
// encoded result body.
func (s *Server) runJob(job *Job) {
	if !job.Start() {
		return
	}
	s.publishJobStatus(job)
	s.logf("job %s: running (%d cells)", job.ID, len(job.Spec.Cells))

	onCell := func(i int, origin Origin, metrics map[string]float64) {
		job.CellDone(origin)
		s.cellsDone.Add(1)
		if !s.killed.Load() {
			if jerr := s.journal.AppendCell(job.ID, i, job.Spec.Cells[i].Key); jerr != nil {
				s.demoteJournal(jerr)
			}
		}
		if data, err := marshalCellEvent(i, job.Spec.Cells[i].Key, origin, metrics); err == nil {
			job.Broker.Publish("cell", data, true)
		}
	}
	var tapFor func(i int) SampleFunc
	if job.Spec.StreamSamples {
		tapFor = func(i int) SampleFunc {
			return func(smp Sample) {
				if data, err := marshalSampleEvent(i, smp); err == nil {
					job.Broker.Publish("sample", data, false)
				}
			}
		}
	}
	var metrics []map[string]float64
	var stats RunStats
	var err error
	if s.cfg.BatchWidth > 0 {
		metrics, stats, err = s.sched.RunCellsBatched(job.Context(), job.Spec.Cells, s.cfg.BatchWidth, s.cfg.CellWorkers, onCell, tapFor)
	} else {
		metrics, stats, err = runCells(job.Context(), s.sched, job.Spec.Cells, s.cfg.CellWorkers, onCell, tapFor)
	}
	if err != nil {
		job.Fail(err)
		s.journalEnd(job)
		s.logf("job %s: %s: %v", job.ID, job.State(), err)
		return
	}
	out, err := mobisim.AggregateCells(job.Spec.Cells, metrics, job.Spec.IncludeRaw)
	if err != nil {
		job.Fail(err)
		s.journalEnd(job)
		return
	}
	var buf bytes.Buffer
	if err := out.EncodeJSON(&buf); err != nil {
		job.Fail(err)
		s.journalEnd(job)
		return
	}
	job.Finish(buf.Bytes())
	s.journalEnd(job)
	s.logf("job %s: done (%d cells: %d hit, %d computed, %d deduped)",
		job.ID, stats.Total, stats.CacheHits(), stats.Computed(), stats.Deduped())
}

// journalEnd durably records a job's terminal state. Suppressed under a
// simulated crash so recovery sees the job as interrupted — exactly
// what a real crash would have left behind.
func (s *Server) journalEnd(job *Job) {
	if s.killed.Load() {
		return
	}
	st := job.Status()
	if jerr := s.journal.AppendEnd(job.ID, st.State, st.Error); jerr != nil {
		s.demoteJournal(jerr)
	}
}

// publishJobStatus emits a retained "job" lifecycle event.
func (s *Server) publishJobStatus(job *Job) {
	if data, err := json.Marshal(job.Status()); err == nil {
		job.Broker.Publish("job", data, true)
	}
}

// newJobID mints a collision-resistant job id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("j-%d", time.Now().UnixNano())
	}
	return "j-" + hex.EncodeToString(b[:])
}

// --- HTTP handlers ---

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// Health is the GET /healthz body. Status carries liveness (ok or
// draining, mirrored in the HTTP status); Degraded carries durability:
// a degraded daemon still answers every request but has lost its disk
// cache or journal and says so here instead of failing submissions.
type Health struct {
	Status   string   `json:"status"`
	Degraded bool     `json:"degraded"`
	Reasons  []string `json:"reasons,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{Status: "ok", Degraded: s.degraded.Load()}
	if h.Degraded {
		h.Reasons = s.DegradedReasons()
	}
	status := http.StatusOK
	if draining {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Stats is the GET /v1/stats body.
type Stats struct {
	UptimeS         float64  `json:"uptime_s"`
	Draining        bool     `json:"draining"`
	Degraded        bool     `json:"degraded"`
	DegradedReasons []string `json:"degraded_reasons,omitempty"`
	Queue           struct {
		Depth int `json:"depth"`
		Cap   int `json:"cap"`
	} `json:"queue"`
	Jobs  map[JobState]int `json:"jobs"`
	Cache struct {
		CacheStats
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Journal   JournalStats `json:"journal"`
	Recovered struct {
		Jobs    int `json:"jobs"`
		Skipped int `json:"skipped"`
	} `json:"recovered"`
	Scheduler SchedulerStats `json:"scheduler"`
	Cells     struct {
		Completed uint64  `json:"completed"`
		PerSec    float64 `json:"per_sec"`
	} `json:"cells"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var st Stats
	uptime := time.Since(s.startedAt).Seconds()
	st.UptimeS = uptime
	st.Queue.Depth = s.queue.Depth()
	st.Queue.Cap = s.queue.Cap()
	st.Jobs = map[JobState]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0, JobCanceled: 0}
	s.mu.Lock()
	st.Draining = s.draining
	for _, j := range s.jobs {
		st.Jobs[j.State()]++
	}
	s.mu.Unlock()
	st.Degraded = s.degraded.Load()
	if st.Degraded {
		st.DegradedReasons = s.DegradedReasons()
	}
	st.Cache.CacheStats = s.cache.Stats()
	st.Cache.HitRate = st.Cache.CacheStats.HitRate()
	st.Journal = s.journal.Stats()
	st.Recovered.Jobs = s.recoveredJobs
	st.Recovered.Skipped = s.recoveredSkipped
	st.Scheduler = s.sched.Stats()
	st.Cells.Completed = s.cellsDone.Load()
	if uptime > 0 {
		st.Cells.PerSec = float64(st.Cells.Completed) / uptime
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobs serves POST /v1/jobs (submission).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/jobs" {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	// MaxBytesReader (not a bare LimitReader) so the connection is
	// poisoned against further reads the moment the limit trips — an
	// oversized envelope costs at most MaxBodyBytes of ingest.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "simd: job request: %v", err)
		return
	}
	spec, err := ParseJobRequest(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Canonicalize the envelope to compacted JSON: the journal's JSON
	// framing compacts nested raw messages, so only compaction-stable
	// bytes survive a journal round-trip with their hash intact.
	var canon bytes.Buffer
	if err := json.Compact(&canon, raw); err != nil {
		writeError(w, http.StatusBadRequest, "simd: job request: %v", err)
		return
	}
	envelope := canon.Bytes()

	// A client that sends an Idempotency-Key opts into envelope-hash
	// deduplication: resubmitting the same body attaches to the live
	// (or recovered) job instead of running a duplicate. Failed and
	// canceled jobs don't count — a retry after failure runs fresh.
	hash := EnvelopeHash(envelope)
	idempotent := r.Header.Get("Idempotency-Key") != ""
	if idempotent {
		s.mu.Lock()
		if id, ok := s.byHash[hash]; ok {
			if prior := s.jobs[id]; prior != nil {
				if st := prior.State(); st != JobFailed && st != JobCanceled {
					s.mu.Unlock()
					s.logf("job %s: idempotent resubmission attached (hash %016x)", prior.ID, hash)
					w.Header().Set("Location", "/v1/jobs/"+prior.ID)
					writeJSON(w, http.StatusOK, prior.Status())
					return
				}
			}
		}
		s.mu.Unlock()
	}

	job := NewJob(newJobID(), spec, s.baseCtx)
	s.mu.Lock()
	s.jobs[job.ID] = job
	if idempotent {
		s.byHash[hash] = job.ID
	}
	s.mu.Unlock()
	// Journal the submission before enqueueing so the WAL never holds
	// cell records for a job it has no envelope for.
	if jerr := s.journal.AppendSubmit(job.ID, hash, envelope); jerr != nil {
		s.demoteJournal(jerr)
	}
	if err := s.queue.Enqueue(job); err != nil {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		if idempotent && s.byHash[hash] == job.ID {
			delete(s.byHash, hash)
		}
		s.mu.Unlock()
		job.cancel()
		if jerr := s.journal.AppendEnd(job.ID, JobCanceled, "never enqueued"); jerr != nil {
			s.demoteJournal(jerr)
		}
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "job queue full (%d pending)", s.queue.Cap())
			return
		}
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	s.publishJobStatus(job)
	s.logf("job %s: queued (%d cells)", job.ID, len(spec.Cells))
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleJobPath routes /v1/jobs/{id}[/events|/result]. Hand-rolled
// because the module targets Go 1.21, before ServeMux method and
// wildcard patterns.
func (s *Server) handleJobPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if id == "" || !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	switch {
	case len(parts) == 1:
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, job.Status())
		case http.MethodDelete:
			job.Cancel()
			// A queued job is terminal right away; journal it so
			// recovery doesn't resurrect a job the client killed. (A
			// running one reaches its end record through runJob.)
			if job.State() == JobCanceled {
				s.journalEnd(job)
			}
			s.logf("job %s: cancel requested", job.ID)
			writeJSON(w, http.StatusAccepted, job.Status())
		default:
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
	case len(parts) == 2 && parts[1] == "result":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		s.handleResult(w, job)
	case len(parts) == 2 && parts[1] == "events":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		s.handleEvents(w, r, job)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

// handleResult serves the stored result body byte-for-byte — the
// byte-identity invariant lives or dies here, so the body is written
// exactly as encoded at completion, never re-marshaled.
func (s *Server) handleResult(w http.ResponseWriter, job *Job) {
	result, state := job.Result()
	switch state {
	case JobDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(result)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case JobFailed, JobCanceled:
		writeJSON(w, http.StatusConflict, job.Status())
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, job.Status())
	}
}

// handleEvents streams the job's SSE feed: full replay of retained
// lifecycle events (resumable via Last-Event-ID), then live events
// until the job ends or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	lastID := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			lastID = n
		}
	}
	replay, ch, cancel := job.Broker.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	var buf bytes.Buffer
	for _, ev := range replay {
		if ev.ID <= lastID {
			continue
		}
		buf.Reset()
		ev.WriteTo(&buf)
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if ev.ID <= lastID {
				continue
			}
			buf.Reset()
			ev.WriteTo(&buf)
			if _, err := w.Write(buf.Bytes()); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
