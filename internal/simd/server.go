package simd

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/mobisim"
)

// Config parameterizes a Server. The zero value is usable.
type Config struct {
	// QueueCap bounds the pending-job queue (default 16). A full queue
	// answers 429 with Retry-After.
	QueueCap int
	// JobWorkers is how many jobs execute concurrently (default 2).
	JobWorkers int
	// CellWorkers is the per-job cell concurrency (default 0 =
	// GOMAXPROCS).
	CellWorkers int
	// CacheDir roots the on-disk result cache; empty keeps the cache
	// memory-only (and disables prefix snapshots).
	CacheDir string
	// MemCacheCap bounds the in-memory cache tier (default
	// DefaultMemCacheCap).
	MemCacheCap int
	// MaxBodyBytes bounds job-submission bodies (default 1 MiB).
	MaxBodyBytes int64
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...any)
}

// Server is the sweep-as-a-service daemon core: an http.Handler for
// the /v1 API plus the queue, workers, scheduler and cache behind it.
// Construct with NewServer, call Start to launch the workers, and
// Shutdown to drain.
type Server struct {
	cfg   Config
	cache *Cache
	sched *Scheduler
	queue *Queue
	mux   *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	startedAt  time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	draining bool
	started  bool
	wg       sync.WaitGroup

	cellsDone atomic.Uint64
}

// NewServer builds a server (cache opened, workers not yet started).
func NewServer(cfg Config) (*Server, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	cache, err := NewCache(cfg.CacheDir, cfg.MemCacheCap)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache,
		sched:      NewScheduler(ctx, cache),
		queue:      NewQueue(cfg.QueueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		startedAt:  time.Now(),
		jobs:       make(map[string]*Job),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobPath)
	s.mux = mux
	return s, nil
}

// Cache exposes the server's result cache (stats, tests).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Start launches the job workers. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, ok := s.queue.Dequeue(s.baseCtx)
				if !ok {
					return
				}
				s.runJob(job)
			}
		}()
	}
}

// Shutdown drains the daemon: admission stops (new submissions get
// 503), queued and running jobs run to completion, then the workers
// exit. If ctx expires first, every remaining job is hard-canceled and
// ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.mu.Unlock()
	s.queue.Close()
	if !started {
		s.baseCancel()
		s.cancelQueued()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Anything still sitting in the queue (hard-cancel path) is
	// terminally canceled so status readers don't see "queued" forever.
	s.cancelQueued()
	s.baseCancel()
	return err
}

// cancelQueued drains and cancels jobs the workers never picked up.
func (s *Server) cancelQueued() {
	for {
		job, ok := s.queue.TryDequeue()
		if !ok {
			return
		}
		job.Cancel()
	}
}

// logf logs one line when configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// runJob executes one job's cells through the scheduler and stores the
// encoded result body.
func (s *Server) runJob(job *Job) {
	if !job.Start() {
		return
	}
	s.publishJobStatus(job)
	s.logf("job %s: running (%d cells)", job.ID, len(job.Spec.Cells))

	onCell := func(i int, origin Origin, metrics map[string]float64) {
		job.CellDone(origin)
		s.cellsDone.Add(1)
		if data, err := marshalCellEvent(i, job.Spec.Cells[i].Key, origin, metrics); err == nil {
			job.Broker.Publish("cell", data, true)
		}
	}
	var tapFor func(i int) SampleFunc
	if job.Spec.StreamSamples {
		tapFor = func(i int) SampleFunc {
			return func(smp Sample) {
				if data, err := marshalSampleEvent(i, smp); err == nil {
					job.Broker.Publish("sample", data, false)
				}
			}
		}
	}
	metrics, stats, err := runCells(job.Context(), s.sched, job.Spec.Cells, s.cfg.CellWorkers, onCell, tapFor)
	if err != nil {
		job.Fail(err)
		s.logf("job %s: %s: %v", job.ID, job.State(), err)
		return
	}
	out, err := mobisim.AggregateCells(job.Spec.Cells, metrics, job.Spec.IncludeRaw)
	if err != nil {
		job.Fail(err)
		return
	}
	var buf bytes.Buffer
	if err := out.EncodeJSON(&buf); err != nil {
		job.Fail(err)
		return
	}
	job.Finish(buf.Bytes())
	s.logf("job %s: done (%d cells: %d hit, %d computed, %d deduped)",
		job.ID, stats.Total, stats.CacheHits(), stats.Computed(), stats.Deduped())
}

// publishJobStatus emits a retained "job" lifecycle event.
func (s *Server) publishJobStatus(job *Job) {
	if data, err := json.Marshal(job.Status()); err == nil {
		job.Broker.Publish("job", data, true)
	}
}

// newJobID mints a collision-resistant job id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("j-%d", time.Now().UnixNano())
	}
	return "j-" + hex.EncodeToString(b[:])
}

// --- HTTP handlers ---

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// Stats is the GET /v1/stats body.
type Stats struct {
	UptimeS  float64 `json:"uptime_s"`
	Draining bool    `json:"draining"`
	Queue    struct {
		Depth int `json:"depth"`
		Cap   int `json:"cap"`
	} `json:"queue"`
	Jobs  map[JobState]int `json:"jobs"`
	Cache struct {
		CacheStats
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Scheduler SchedulerStats `json:"scheduler"`
	Cells     struct {
		Completed uint64  `json:"completed"`
		PerSec    float64 `json:"per_sec"`
	} `json:"cells"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var st Stats
	uptime := time.Since(s.startedAt).Seconds()
	st.UptimeS = uptime
	st.Queue.Depth = s.queue.Depth()
	st.Queue.Cap = s.queue.Cap()
	st.Jobs = map[JobState]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0, JobCanceled: 0}
	s.mu.Lock()
	st.Draining = s.draining
	for _, j := range s.jobs {
		st.Jobs[j.State()]++
	}
	s.mu.Unlock()
	st.Cache.CacheStats = s.cache.Stats()
	st.Cache.HitRate = st.Cache.CacheStats.HitRate()
	st.Scheduler = s.sched.Stats()
	st.Cells.Completed = s.cellsDone.Load()
	if uptime > 0 {
		st.Cells.PerSec = float64(st.Cells.Completed) / uptime
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobs serves POST /v1/jobs (submission).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/jobs" {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	spec, err := ReadJobRequest(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job := NewJob(newJobID(), spec, s.baseCtx)
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.mu.Unlock()
	if err := s.queue.Enqueue(job); err != nil {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		job.cancel()
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "job queue full (%d pending)", s.queue.Cap())
			return
		}
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	s.publishJobStatus(job)
	s.logf("job %s: queued (%d cells)", job.ID, len(spec.Cells))
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleJobPath routes /v1/jobs/{id}[/events|/result]. Hand-rolled
// because the module targets Go 1.21, before ServeMux method and
// wildcard patterns.
func (s *Server) handleJobPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if id == "" || !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	switch {
	case len(parts) == 1:
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, job.Status())
		case http.MethodDelete:
			job.Cancel()
			s.logf("job %s: cancel requested", job.ID)
			writeJSON(w, http.StatusAccepted, job.Status())
		default:
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
	case len(parts) == 2 && parts[1] == "result":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		s.handleResult(w, job)
	case len(parts) == 2 && parts[1] == "events":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		s.handleEvents(w, r, job)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

// handleResult serves the stored result body byte-for-byte — the
// byte-identity invariant lives or dies here, so the body is written
// exactly as encoded at completion, never re-marshaled.
func (s *Server) handleResult(w http.ResponseWriter, job *Job) {
	result, state := job.Result()
	switch state {
	case JobDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(result)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case JobFailed, JobCanceled:
		writeJSON(w, http.StatusConflict, job.Status())
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, job.Status())
	}
}

// handleEvents streams the job's SSE feed: full replay of retained
// lifecycle events (resumable via Last-Event-ID), then live events
// until the job ends or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	lastID := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			lastID = n
		}
	}
	replay, ch, cancel := job.Broker.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	var buf bytes.Buffer
	for _, ev := range replay {
		if ev.ID <= lastID {
			continue
		}
		buf.Reset()
		ev.WriteTo(&buf)
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if ev.ID <= lastID {
				continue
			}
			buf.Reset()
			ev.WriteTo(&buf)
			if _, err := w.Write(buf.Bytes()); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
