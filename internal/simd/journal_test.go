package simd

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/faultfs"
)

// journalSegBytes reads the single live segment of a journal dir.
func journalSegBytes(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, have %v", segs)
	}
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// recoveredIDs projects a recovery set to its job ids, in order.
func recoveredIDs(recovered []RecoveredJob) []string {
	ids := make([]string, len(recovered))
	for i, r := range recovered {
		ids[i] = r.ID
	}
	return ids
}

// TestJournalEmptyOpen pins the fresh-directory path: no recovered
// jobs, one compacted segment ready for appends.
func TestJournalEmptyOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, recovered, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(recovered))
	}
	_, data := journalSegBytes(t, dir)
	if string(data) != journalMagic {
		t.Fatalf("fresh segment bytes %q, want bare magic", data)
	}
	st := j.Stats()
	if !st.Enabled || st.RecoveredJobs != 0 {
		t.Fatalf("stats after fresh open: %+v", st)
	}
}

// TestJournalRecoversIncompleteJob pins the core recovery contract: a
// submitted job without a terminal record comes back with exactly its
// journaled cells; a terminal job does not come back.
func TestJournalRecoversIncompleteJob(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	envA := []byte(`{"matrix":{"a":1}}`)
	envB := []byte(`{"matrix":{"b":2}}`)
	if err := j.AppendSubmit("job-a", EnvelopeHash(envA), envA); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCell("job-a", 0, 0xdead); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCell("job-a", 2, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit("job-b", EnvelopeHash(envB), envB); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendEnd("job-b", JobDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := recoveredIDs(recovered); !reflect.DeepEqual(got, []string{"job-a"}) {
		t.Fatalf("recovered %v, want [job-a]", got)
	}
	rj := recovered[0]
	if rj.Hash != EnvelopeHash(envA) {
		t.Errorf("recovered hash %x, want %x", rj.Hash, EnvelopeHash(envA))
	}
	if !bytes.Equal(rj.Envelope, envA) {
		t.Errorf("recovered envelope %q, want %q", rj.Envelope, envA)
	}
	want := map[uint64]bool{0xdead: true, 0xbeef: true}
	if !reflect.DeepEqual(rj.DoneCells, want) {
		t.Errorf("recovered cells %v, want %v", rj.DoneCells, want)
	}
	if st := j2.Stats(); st.RecoveredJobs != 1 || st.TruncatedRecords != 0 {
		t.Errorf("stats after clean recovery: %+v", st)
	}
}

// TestJournalTornTail pins torn-tail handling: a segment ending in a
// partial frame replays every whole record, counts exactly one
// truncation, and never errors.
func TestJournalTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	env := []byte(`{"matrix":{"a":1}}`)
	if err := j.AppendSubmit("job-a", EnvelopeHash(env), env); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCell("job-a", 0, 0x1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	path, data := journalSegBytes(t, dir)
	// A torn append: half a frame header, then power loss.
	if err := os.WriteFile(path, append(data, 0xff, 0xff, 0x03), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recovered, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer j2.Close()
	if len(recovered) != 1 || recovered[0].ID != "job-a" || !recovered[0].DoneCells[0x1] {
		t.Fatalf("recovered %+v, want job-a with cell 0x1", recovered)
	}
	if st := j2.Stats(); st.TruncatedRecords != 1 {
		t.Errorf("truncated records %d, want 1", st.TruncatedRecords)
	}
}

// TestJournalCorruptRecordStopsSegment pins bit-flip handling: a CRC
// mismatch mid-segment drops that record and everything after it.
func TestJournalCorruptRecordStopsSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	envA := []byte(`{"matrix":{"a":1}}`)
	envB := []byte(`{"matrix":{"b":2}}`)
	if err := j.AppendSubmit("job-a", EnvelopeHash(envA), envA); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path, data := journalSegBytes(t, dir)
	flipAt := len(journalMagic) + 8 + 2 // inside job-a's payload
	data[flipAt] ^= 0x40
	// A later, intact record after the corrupt one must still be
	// dropped: everything past the first bad frame is untrusted.
	frame, err := encodeRecord(journalRecord{
		Type: recSubmit, Job: "job-b",
		Hash: fmt.Sprintf("%016x", EnvelopeHash(envB)), Envelope: envB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, frame...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recovered, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %v past a corrupt record", recoveredIDs(recovered))
	}
	if st := j2.Stats(); st.TruncatedRecords != 1 {
		t.Errorf("truncated records %d, want 1", st.TruncatedRecords)
	}
}

// TestJournalCompaction pins that reopening drops terminal jobs from
// disk and carries live ones: after open-with-recovery, a third open
// sees the same live set from the compacted segment alone.
func TestJournalCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		env := []byte(fmt.Sprintf(`{"matrix":{"i":%d}}`, i))
		id := fmt.Sprintf("job-%d", i)
		if err := j.AppendSubmit(id, EnvelopeHash(env), env); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendEnd("job-1", JobDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := recoveredIDs(recovered); !reflect.DeepEqual(got, []string{"job-0", "job-2"}) {
		t.Fatalf("recovered %v, want [job-0 job-2] in submission order", got)
	}

	// The compacted segment alone must reproduce the live set.
	j3, recovered3, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := recoveredIDs(recovered3); !reflect.DeepEqual(got, []string{"job-0", "job-2"}) {
		t.Fatalf("post-compaction recovery %v, want [job-0 job-2]", got)
	}
	if st := j3.Stats(); st.ReplaySegments != 1 {
		t.Errorf("segments after compaction: %d, want 1", st.ReplaySegments)
	}
}

// TestJournalDisable pins the demotion path: after Disable, appends
// no-op without error and stats report the journal off.
func TestJournalDisable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Disable()
	if err := j.AppendSubmit("job-a", 1, []byte(`{}`)); err != nil {
		t.Fatalf("append after disable: %v", err)
	}
	if st := j.Stats(); st.Enabled || st.Appends != 0 {
		t.Errorf("stats after disable: %+v", st)
	}
	var nilJ *Journal
	if err := nilJ.AppendCell("x", 0, 1); err != nil {
		t.Fatalf("nil journal append: %v", err)
	}
	if st := nilJ.Stats(); st.Enabled {
		t.Error("nil journal reports enabled")
	}
}

// TestJournalAppendErrorSurfaces pins that an injected write failure
// is returned (the server's demotion trigger) and counted.
func TestJournalAppendErrorSurfaces(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	inj := faultfs.NewInjector(nil).Add(faultfs.Rule{Op: faultfs.OpWrite, PathContains: ".wal", Count: 1})
	j, _, err := OpenJournal(inj, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.AppendSubmit("job-a", 1, []byte(`{}`)); !faultfs.IsInjected(err) {
		t.Fatalf("append under injected write fault: %v, want injected error", err)
	}
	if st := j.Stats(); st.AppendErrors != 1 {
		t.Errorf("append errors %d, want 1", st.AppendErrors)
	}
	// The script is exhausted: the journal keeps working.
	if err := j.AppendSubmit("job-a", 1, []byte(`{}`)); err != nil {
		t.Fatalf("append after fault script exhausted: %v", err)
	}
}

// FuzzJournalReplay feeds arbitrary bytes through segment replay:
// it must never panic, never recover a partially-applied job (every
// recovered job carries a parseable frame-complete envelope and id),
// and must be deterministic for the same bytes.
func FuzzJournalReplay(f *testing.F) {
	// Seed 1: a well-formed segment with a live and a terminal job.
	var seed []byte
	{
		dir := filepath.Join(f.TempDir(), "journal")
		j, _, err := OpenJournal(nil, dir)
		if err != nil {
			f.Fatal(err)
		}
		env := []byte(`{"matrix":{"a":1}}`)
		_ = j.AppendSubmit("job-a", EnvelopeHash(env), env)
		_ = j.AppendCell("job-a", 0, 0x1234)
		_ = j.AppendSubmit("job-b", EnvelopeHash(env), env)
		_ = j.AppendEnd("job-b", JobDone, "")
		_ = j.Close()
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			f.Fatalf("seed segment: %v", err)
		}
		seed, err = os.ReadFile(filepath.Join(dir, entries[0].Name()))
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])      // torn tail
	f.Add([]byte(journalMagic))    // bare header
	f.Add([]byte("not a journal")) // foreign bytes
	f.Add([]byte{})                // empty file
	flipped := append([]byte(nil), seed...)
	flipped[len(journalMagic)+9] ^= 0x10 // bit flip inside a payload
	f.Add(flipped)
	// A frame whose declared length overruns the buffer.
	over := append([]byte(nil), journalMagic...)
	over = binary.LittleEndian.AppendUint32(over, 1<<30)
	over = binary.LittleEndian.AppendUint32(over, crc32.ChecksumIEEE(nil))
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := decodeJournal(data)
		for _, r := range recs {
			if r.Type == "" {
				t.Fatal("decoded record with empty type")
			}
		}
		run := func() []RecoveredJob {
			dir := filepath.Join(t.TempDir(), "journal")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%016x.wal", 1)), data, 0o644); err != nil {
				t.Fatal(err)
			}
			j, recovered, err := OpenJournal(nil, dir)
			if err != nil {
				t.Fatalf("corrupt journal content must not fail open: %v", err)
			}
			defer j.Close()
			for _, rj := range recovered {
				if rj.ID == "" {
					t.Fatal("recovered job without id")
				}
				if len(rj.Envelope) == 0 {
					t.Fatal("recovered job without envelope")
				}
				if rj.Hash != EnvelopeHash(rj.Envelope) {
					t.Fatal("recovered job whose hash does not match its envelope")
				}
			}
			return recovered
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("replay nondeterministic: %d vs %d jobs", len(a), len(b))
		}
		sort.Slice(a, func(i, k int) bool { return a[i].ID < a[k].ID })
		sort.Slice(b, func(i, k int) bool { return b[i].ID < b[k].ID })
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Hash != b[i].Hash ||
				!bytes.Equal(a[i].Envelope, b[i].Envelope) ||
				!reflect.DeepEqual(a[i].DoneCells, b[i].DoneCells) {
				t.Fatalf("replay nondeterministic at job %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}
