package simd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Event is one server-sent event on a job's feed.
type Event struct {
	// ID is the monotonically increasing per-job event id (the SSE
	// `id:` field, usable as Last-Event-ID on reconnect).
	ID int
	// Type is the SSE `event:` field: "cell", "sample", "job" or "end".
	Type string
	// Data is the JSON payload (the SSE `data:` field).
	Data []byte
}

// WriteTo renders the event in SSE wire format:
//
//	id: <n>
//	event: <type>
//	data: <json>
//
// followed by a blank line.
func (e Event) WriteTo(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, e.Data)
}

// subBuffer is each subscriber's channel depth; a consumer further
// behind than this either drops samples or (for retained events) is
// disconnected to resync via replay.
const subBuffer = 64

// Broker fans a job's event stream out to any number of SSE
// subscribers. Lifecycle events (retain=true: cell completions, job
// transitions, the terminal event) are kept and replayed to late
// subscribers, so attaching after completion still yields the full
// history; sample events are fire-and-forget and never retained.
//
// Delivery never blocks the publisher: a subscriber too slow for a
// sample event just misses it (counted in Dropped), and one too slow
// for a retained event is disconnected — on reconnect the replay
// resynchronizes it.
type Broker struct {
	mu       sync.Mutex
	retained []Event
	subs     map[chan Event]struct{}
	nextID   int
	closed   bool

	dropped atomic.Uint64
}

// NewBroker builds an open broker.
func NewBroker() *Broker {
	return &Broker{subs: make(map[chan Event]struct{})}
}

// Publish emits one event to all subscribers, retaining it for replay
// when retain is true. Publishing to a closed broker is a no-op.
func (b *Broker) Publish(typ string, data []byte, retain bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.nextID++
	ev := Event{ID: b.nextID, Type: typ, Data: data}
	if retain {
		b.retained = append(b.retained, ev)
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			if retain {
				delete(b.subs, ch)
				close(ch)
			} else {
				b.dropped.Add(1)
			}
		}
	}
}

// Subscribe registers a consumer: replay holds every retained event so
// far (deliver it before reading ch), ch carries subsequent events and
// is closed when the broker closes or the consumer falls behind on a
// retained event, and cancel deregisters (idempotent, safe after
// close).
func (b *Broker) Subscribe() (replay []Event, ch chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]Event(nil), b.retained...)
	ch = make(chan Event, subBuffer)
	if b.closed {
		close(ch)
		return replay, ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return replay, ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
}

// Close ends the stream: all subscriber channels are closed and future
// Publish calls are dropped. Replay of retained events remains
// available to late subscribers. Idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// Dropped counts sample events skipped for slow subscribers.
func (b *Broker) Dropped() uint64 { return b.dropped.Load() }

// cellEvent is the "cell" SSE payload: one completed cell.
type cellEvent struct {
	Index   int                 `json:"index"`
	Key     string              `json:"key"`
	Origin  Origin              `json:"origin"`
	Metrics map[string]*float64 `json:"metrics"`
}

// sampleEvent is the "sample" SSE payload: one observer sample of a
// computing cell.
type sampleEvent struct {
	Index  int    `json:"index"`
	Sample Sample `json:"sample"`
}

// marshalCellEvent renders a cell completion, mapping non-finite
// metric values (NaN frame rates on workloads without frames) to JSON
// null — the result body's CSV/JSON encoders have their own contract;
// SSE is telemetry and must simply stay well-formed JSON.
func marshalCellEvent(index int, key uint64, origin Origin, metrics map[string]float64) ([]byte, error) {
	safe := make(map[string]*float64, len(metrics))
	for k, v := range metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			safe[k] = nil
			continue
		}
		v := v
		safe[k] = &v
	}
	return json.Marshal(cellEvent{Index: index, Key: fmt.Sprintf("%016x", key), Origin: origin, Metrics: safe})
}

// marshalSampleEvent renders one observer sample.
func marshalSampleEvent(index int, smp Sample) ([]byte, error) {
	return json.Marshal(sampleEvent{Index: index, Sample: smp})
}
