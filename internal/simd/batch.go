package simd

import (
	"context"
	"runtime"

	"repro/internal/thermal"
	"repro/pkg/mobisim"
)

// Batched cell execution.
//
// RunCellsBatched is the daemon's fast path for cold matrices: instead
// of one scalar engine per cache miss (RunCell via runCells), the
// misses a job leads are planned into lockstep batch units — grouped by
// thermal topology and duration, with limit-aware cells sharing a
// warm-up prefix forked from an in-memory sentinel checkpoint — and
// stepped together through the fused SoA kernel on pooled engines.
//
// Everything else about the scheduler contract is unchanged, because
// unit results are fed back through the same singleflight flights the
// scalar path uses: cross-job dedup (a follower from any job attaches
// to a lane's flight), the two-tier cache (publish stores each lane's
// metrics under its CellKey), per-lane sample taps (each lane gets its
// own observer recording into its flight), per-caller cancellation (a
// unit runs under the scheduler base and is canceled only when every
// member flight has lost its last waiter), and journal replay (the
// caller's onCell fires per completed cell exactly as before). Lanes
// never interact and chunked stepping is trajectory-identical, so
// batched metrics are bitwise-identical to the scalar path — the PR 4/6
// invariant, re-pinned for the daemon by the batch tests.
//
// Two scalar-path behaviors intentionally do not carry over: batched
// warm starts checkpoint in memory within the job instead of consulting
// the cross-run disk snapshot store (Origin stays "computed", not
// "computed-warm"), and members of a warm group whose sentinel never
// acts reuse the sentinel's simulation outright, so their sample
// streams are empty — sample events are best-effort by contract.

// RunCellsBatched executes cells through the singleflight scheduler
// with this job's cache misses run as lockstep batch units of at most
// width lanes (width <= 0 selects mobisim.DefaultBatchWidth). The
// returned metrics are in cell order; onCell and tapFor follow the
// runCells contract, except that onCell fires in cell order rather
// than completion order.
func (s *Scheduler) RunCellsBatched(ctx context.Context, cells []mobisim.Cell, width, workers int, onCell func(i int, origin Origin, metrics map[string]float64), tapFor func(i int) SampleFunc) ([]map[string]float64, RunStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, RunStats{}, err
	}
	metrics := make([]map[string]float64, len(cells))
	origins := make([]Origin, len(cells))

	// Phase 1: resolve each cell against the cache, joining a flight for
	// every miss. The first joiner of a key — here or in any concurrent
	// job — leads it; duplicates within this job follow their own lead.
	// Cancellation is deliberately not polled between joins: every led
	// flight must reach phase 2 so a cross-job follower that attaches in
	// the window always has a computation coming (phase 3 then unwinds a
	// canceled caller through the ordinary last-waiter-detach path).
	type pending struct {
		i      int // position in cells
		fl     *flight
		leader bool
	}
	var pend []pending
	var leaderIdx []int // pend positions of the leaders, in join order
	for i := range cells {
		if m, tier := s.cache.Get(cells[i].Key); tier != TierMiss {
			origins[i] = OriginMemCache
			if tier == TierDisk {
				origins[i] = OriginDiskCache
			}
			metrics[i] = m
			if onCell != nil {
				onCell(i, origins[i], m)
			}
			continue
		}
		fl, leader := s.join(cells[i].Key)
		if leader {
			leaderIdx = append(leaderIdx, len(pend))
		}
		pend = append(pend, pending{i: i, fl: fl, leader: leader})
	}

	// Phase 2: plan the led cells into units and launch them. In-job
	// prefix warm-start needs no disk snapshot store — sentinels
	// checkpoint in memory — so warm grouping is unconditional.
	if len(leaderIdx) > 0 {
		specs := make([]mobisim.Scenario, len(leaderIdx))
		keys := make([]uint64, len(leaderIdx))
		flights := make([]*flight, len(leaderIdx))
		for k, pi := range leaderIdx {
			specs[k] = cells[pend[pi].i].Spec
			keys[k] = cells[pend[pi].i].Key
			flights[k] = pend[pi].fl
		}
		units, err := mobisim.PlanBatchUnits(specs, width, true)
		if err != nil {
			// A plan failure (key derivation) fails every led flight so no
			// cross-job waiter hangs; phase 3 surfaces the error here too.
			for k := range flights {
				s.publish(keys[k], flights[k], nil, false, err)
			}
		} else {
			s.launchUnits(specs, keys, flights, units, width, workers)
		}
	}

	// Phase 3: collect, waiting on each flight like any follower does.
	// After the caller is canceled, a completed flight is still consumed
	// (awaitFlight), so finished work is never discarded.
	var firstErr error
	for _, p := range pend {
		if firstErr != nil {
			s.leave(cells[p.i].Key, p.fl)
			continue
		}
		if err := awaitFlight(ctx, p.fl); err != nil {
			s.leave(cells[p.i].Key, p.fl)
			firstErr = err
			continue
		}
		s.leave(cells[p.i].Key, p.fl)
		if p.fl.err != nil {
			firstErr = p.fl.err
			continue
		}
		if tapFor != nil {
			if tap := tapFor(p.i); tap != nil {
				for k := range p.fl.samples {
					tap(p.fl.samples[k])
				}
			}
		}
		origin := OriginComputed
		switch {
		case !p.leader:
			s.deduped.Add(1)
			origin = OriginDeduped
		case p.fl.warm:
			origin = OriginComputedWarm
		}
		origins[p.i] = origin
		metrics[p.i] = copyMetrics(p.fl.metrics)
		if onCell != nil {
			onCell(p.i, origin, metrics[p.i])
		}
	}
	if firstErr != nil {
		return nil, RunStats{}, firstErr
	}
	stats := RunStats{Total: len(cells), ByOrigin: make(map[Origin]int)}
	for i := range cells {
		stats.ByOrigin[origins[i]]++
	}
	return metrics, stats, nil
}

// launchUnits runs planned units on detached goroutines bounded by a
// workers-wide semaphore, publishing each unit's outcome into its
// member flights. Like scalar compute goroutines, units derive their
// context from the scheduler base — not the submitting job — so a unit
// outlives a canceled caller while any cross-job waiter remains; a
// per-unit watcher cancels it once every member flight is done or
// abandoned (each flight context ends either way), after which the
// next poll aborts the unit within ctxCheckSteps steps.
func (s *Scheduler) launchUnits(specs []mobisim.Scenario, keys []uint64, flights []*flight, units []mobisim.BatchPlanUnit, width, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	for _, u := range units {
		u := u
		uctx, ucancel := context.WithCancel(s.base)
		ufl := make([]*flight, len(u.Idx))
		for k, li := range u.Idx {
			ufl[k] = flights[li]
		}
		go func() {
			for _, fl := range ufl {
				<-fl.ctx.Done()
			}
			ucancel()
		}()
		go func() {
			defer ucancel()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.runUnit(uctx, specs, keys, flights, u, width)
		}()
	}
}

// runUnit executes one unit and publishes per-lane outcomes. Lane
// observers record into their flight's sample buffer; close(done) in
// publish is the happens-before edge to waiters, the same contract the
// scalar compute goroutine provides.
func (s *Scheduler) runUnit(ctx context.Context, specs []mobisim.Scenario, keys []uint64, flights []*flight, u mobisim.BatchPlanUnit, width int) {
	opt := mobisim.BatchRunOptions{
		CtxCheckSteps: ctxCheckSteps,
		Observer: func(i int) mobisim.Observer {
			fl := flights[i]
			return observerFunc(func(smp *mobisim.Sample) error {
				if len(fl.samples) < maxFlightSamples {
					fl.samples = append(fl.samples, Sample{
						TimeS:    smp.TimeS,
						MaxTempC: thermal.ToCelsius(smp.MaxTempK),
						SensorC:  thermal.ToCelsius(smp.SensorK),
						TotalW:   smp.TotalW,
					})
				}
				return nil
			})
		},
	}
	out, err := s.batch.RunUnit(ctx, specs, u, width, opt)
	if err != nil {
		for _, li := range u.Idx {
			s.publish(keys[li], flights[li], nil, false, err)
		}
		return
	}
	s.batched.Add(1)
	s.batchLanes.Add(uint64(len(u.Idx)))
	for k, li := range u.Idx {
		s.publish(keys[li], flights[li], out[k], false, nil)
	}
}
