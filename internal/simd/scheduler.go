package simd

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/thermal"
	"repro/pkg/mobisim"
)

// Origin says how a cell's metrics were obtained.
type Origin string

const (
	// OriginComputed is a cold simulation run.
	OriginComputed Origin = "computed"
	// OriginComputedWarm is a simulation run warm-started from a cached
	// prefix snapshot.
	OriginComputedWarm Origin = "computed-warm"
	// OriginMemCache is an in-memory cache hit.
	OriginMemCache Origin = "mem-cache"
	// OriginDiskCache is an on-disk cache hit.
	OriginDiskCache Origin = "disk-cache"
	// OriginDeduped means the caller attached to another caller's
	// in-flight computation of the same CellKey.
	OriginDeduped Origin = "deduped"
)

// Sample is one observer observation of a running cell, the streaming
// payload of the job SSE feed. Temperatures are °C.
type Sample struct {
	TimeS    float64 `json:"time_s"`
	MaxTempC float64 `json:"max_temp_c"`
	SensorC  float64 `json:"sensor_c"`
	TotalW   float64 `json:"total_w"`
}

// SampleFunc receives a cell's observer samples after the cell
// completes. Cache hits deliver no samples (nothing was simulated),
// and warm-started cells deliver only post-fork samples.
type SampleFunc func(Sample)

// maxFlightSamples bounds the per-flight sample buffer; a pathological
// trace-period configuration degrades to a truncated sample stream,
// never to unbounded memory.
const maxFlightSamples = 1 << 16

// ctxCheckSteps is the cancellation-poll granularity of non-appaware
// runs; chunked RunSteps is byte-identical to one Run call, so the
// chunk size is a latency knob only.
const ctxCheckSteps = 4096

// SchedulerStats is an atomic snapshot of the scheduler counters.
// Computed counts every simulated cell regardless of executor;
// WarmComputed the subset warm-started from a disk prefix snapshot;
// Deduped the waiters actually served by another caller's flight.
// Batched counts lockstep units the batched executor ran and
// BatchLanes the cells that rode them as lanes, so
// BatchLanes/Batched is the realized mean lane width.
type SchedulerStats struct {
	Computed     uint64 `json:"computed"`
	WarmComputed uint64 `json:"warm_computed"`
	Deduped      uint64 `json:"deduped"`
	Batched      uint64 `json:"batched"`
	BatchLanes   uint64 `json:"batch_lanes"`
	Inflight     int    `json:"inflight"`
}

// Scheduler runs content-addressed cells at most once at a time per
// CellKey: concurrent RunCell calls for the same key — from any job —
// share one in-flight computation (singleflight), and completed keys
// are served from the cache. Safe for concurrent use.
type Scheduler struct {
	base  context.Context
	cache *Cache

	mu      sync.Mutex
	flights map[uint64]*flight

	computed     atomic.Uint64
	warmComputed atomic.Uint64
	deduped      atomic.Uint64
	batched      atomic.Uint64
	batchLanes   atomic.Uint64

	// batch is the shared lockstep runner behind RunCellsBatched; its
	// engine-shell free list persists across jobs.
	batch mobisim.BatchRunner
}

// flight is one in-flight cell computation plus its waiters.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu   sync.Mutex
	refs int

	// Written only by the compute goroutine before close(done); read by
	// waiters after <-done (the close is the happens-before edge).
	metrics map[string]float64
	warm    bool
	samples []Sample
	err     error
}

// NewScheduler builds a scheduler over the cache. base (nil means
// Background) parents every flight's compute context: canceling it
// aborts all in-flight cells, the server's hard-shutdown path.
func NewScheduler(base context.Context, cache *Cache) *Scheduler {
	if base == nil {
		base = context.Background()
	}
	return &Scheduler{base: base, cache: cache, flights: make(map[uint64]*flight)}
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	inflight := len(s.flights)
	s.mu.Unlock()
	return SchedulerStats{
		Computed:     s.computed.Load(),
		WarmComputed: s.warmComputed.Load(),
		Deduped:      s.deduped.Load(),
		Batched:      s.batched.Load(),
		BatchLanes:   s.batchLanes.Load(),
		Inflight:     inflight,
	}
}

// RunCell returns the cell's metric set, from the cache when the key
// is known, from another caller's in-flight run when one exists, and
// by simulating otherwise. The returned map is the caller's to keep.
// tap, when non-nil, receives the run's observer samples (in time
// order, after completion) for computed and deduped origins.
//
// Cancellation is per caller: a canceled ctx detaches this waiter, and
// the underlying computation is aborted only when its last waiter
// detaches, so one client canceling a job never kills a cell another
// job is waiting on.
func (s *Scheduler) RunCell(ctx context.Context, cell mobisim.Cell, tap SampleFunc) (map[string]float64, Origin, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	if m, tier := s.cache.Get(cell.Key); tier != TierMiss {
		if tier == TierDisk {
			return m, OriginDiskCache, nil
		}
		return m, OriginMemCache, nil
	}
	fl, leader := s.join(cell.Key)
	if leader {
		go s.compute(fl, cell)
	}
	if err := awaitFlight(ctx, fl); err != nil {
		s.leave(cell.Key, fl)
		return nil, "", err
	}
	s.leave(cell.Key, fl)
	if fl.err != nil {
		return nil, "", fl.err
	}
	if tap != nil {
		for i := range fl.samples {
			tap(fl.samples[i])
		}
	}
	origin := OriginComputed
	switch {
	case !leader:
		// Counted at receipt, not at join: a waiter that detaches before
		// the flight completes was never served a deduped result and must
		// not drift the counter.
		s.deduped.Add(1)
		origin = OriginDeduped
	case fl.warm:
		origin = OriginComputedWarm
	}
	return copyMetrics(fl.metrics), origin, nil
}

// awaitFlight blocks until the flight completes or ctx is canceled.
// After ctx fires, the flight gets one last non-blocking look: Go
// selects pseudo-randomly among ready cases, so the plain two-case
// select would throw away an already-completed result about half the
// time a job is canceled at the finish line. Finished work is never
// discarded.
func awaitFlight(ctx context.Context, fl *flight) error {
	select {
	case <-fl.done:
		return nil
	case <-ctx.Done():
		select {
		case <-fl.done:
			return nil
		default:
			return ctx.Err()
		}
	}
}

// join attaches the caller to the key's flight, creating it (and
// electing the caller leader) when none is in flight.
func (s *Scheduler) join(key uint64) (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fl, ok := s.flights[key]; ok {
		fl.mu.Lock()
		fl.refs++
		fl.mu.Unlock()
		return fl, false
	}
	ctx, cancel := context.WithCancel(s.base)
	fl := &flight{ctx: ctx, cancel: cancel, done: make(chan struct{}), refs: 1}
	s.flights[key] = fl
	return fl, true
}

// leave detaches one waiter; the last one out cancels the compute
// context and retires the flight. A later RunCell for the same key
// then starts fresh — if it races a still-unwinding compute, both
// produce identical bytes by content addressing, so the race is
// benign.
func (s *Scheduler) leave(key uint64, fl *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl.mu.Lock()
	fl.refs--
	last := fl.refs == 0
	fl.mu.Unlock()
	if last {
		fl.cancel()
		if s.flights[key] == fl {
			delete(s.flights, key)
		}
	}
}

// compute runs the cell, publishes the outcome to waiters, stores a
// success in the cache, and retires the flight.
func (s *Scheduler) compute(fl *flight, cell mobisim.Cell) {
	record := func(smp Sample) {
		if len(fl.samples) < maxFlightSamples {
			fl.samples = append(fl.samples, smp)
		}
	}
	metrics, warm, err := s.computeCell(fl.ctx, cell, record)
	s.publish(cell.Key, fl, metrics, warm, err)
}

// publish completes a leader flight: outcome fields, counters, the
// cache store, the done broadcast, and flight retirement. Both the
// scalar compute goroutine and the batched unit executor terminate
// here, so cross-job waiters observe a batched cell exactly like a
// scalar one.
func (s *Scheduler) publish(key uint64, fl *flight, metrics map[string]float64, warm bool, err error) {
	fl.metrics, fl.warm, fl.err = metrics, warm, err
	if err == nil {
		s.computed.Add(1)
		if warm {
			s.warmComputed.Add(1)
		}
		// A disk write failure degrades to recomputation later; the
		// memory tier and this flight's waiters still have the result.
		_ = s.cache.Put(key, metrics)
	}
	close(fl.done)
	fl.cancel()
	s.mu.Lock()
	if s.flights[key] == fl {
		delete(s.flights, key)
	}
	s.mu.Unlock()
}

// observerFunc adapts a closure to the engine Observer interface.
type observerFunc func(*mobisim.Sample) error

func (f observerFunc) OnSample(smp *mobisim.Sample) error { return f(smp) }

// newEngine builds the cell's engine with recording disabled (the
// daemon never serves traces) and the sample tap attached. Observers
// never perturb the simulated dynamics, so the tap cannot break
// byte-identity with an unobserved cold run.
func newEngine(spec mobisim.Scenario, record func(Sample)) (*mobisim.Engine, error) {
	obs := observerFunc(func(smp *mobisim.Sample) error {
		record(Sample{
			TimeS:    smp.TimeS,
			MaxTempC: thermal.ToCelsius(smp.MaxTempK),
			SensorC:  thermal.ToCelsius(smp.SensorK),
			TotalW:   smp.TotalW,
		})
		return nil
	})
	return mobisim.New(spec, mobisim.WithoutRecording(), mobisim.WithObserver(obs))
}

// computeCell simulates one cell. Appaware cells participate in the
// prefix-snapshot store when the cache has one: a usable snapshot
// warm-starts the run (warm=true), and a cold sentinel run records a
// pre-event checkpoint for the next cell of its prefix group. All
// paths step the same total count from the same state, so their
// metrics are byte-identical to Engine.Run on a fresh engine — the PR 6
// warm-start invariant the sweep tests pin.
func (s *Scheduler) computeCell(ctx context.Context, cell mobisim.Cell, record func(Sample)) (map[string]float64, bool, error) {
	eng, err := newEngine(cell.Spec, record)
	if err != nil {
		return nil, false, err
	}
	stepS := eng.Sim().StepS()
	steps := int(math.Round(cell.Spec.DurationS / stepS))
	aware := eng.AppAware()
	if aware == nil || !s.cache.SnapshotsEnabled() {
		if err := runChunked(ctx, eng, steps, ctxCheckSteps); err != nil {
			return nil, false, err
		}
		return eng.Metrics(), false, nil
	}

	prefix, err := cell.Spec.PrefixKey()
	if err != nil {
		// CellKey resolved at expansion, so this cannot normally happen;
		// degrade to a plain cold run rather than failing the cell.
		if err := runChunked(ctx, eng, steps, ctxCheckSteps); err != nil {
			return nil, false, err
		}
		return eng.Metrics(), false, nil
	}

	// The reuse gate mirrors the warm-start monotonicity argument: a
	// checkpoint taken before its producing run's first limit-dependent
	// action is valid for any same-prefix cell whose effective limit is
	// >= the producer's (it acts no earlier) and whose horizon covers
	// the checkpoint step.
	effLimit := thermal.ToCelsius(eng.Platform().ThermalLimitK())
	if cell.Spec.LimitC != 0 {
		effLimit = cell.Spec.LimitC
	}
	if snap, ok := s.cache.GetSnapshot(prefix); ok && effLimit >= snap.LimitC && steps >= snap.Step {
		if err := eng.Restore(snap.Blob); err == nil {
			if err := runChunked(ctx, eng, steps-snap.Step, ctxCheckSteps); err != nil {
				return nil, false, err
			}
			return eng.Metrics(), true, nil
		}
		// A structurally unusable blob (schema drift inside an otherwise
		// well-formed file) falls back to a cold sentinel run on a fresh
		// engine; Restore may have part-mutated this one.
		if eng, err = newEngine(cell.Spec, record); err != nil {
			return nil, false, err
		}
		aware = eng.AppAware()
	}
	return s.runSentinel(ctx, eng, aware, prefix, effLimit, steps, stepS)
}

// runSentinel runs the cell cold while checkpointing once per control
// interval until the governor's first event, then stores the last
// pre-event checkpoint in the snapshot store for future same-prefix
// cells. The interval pacing only changes RunSteps chunking, never the
// trajectory.
func (s *Scheduler) runSentinel(ctx context.Context, eng *mobisim.Engine, aware *mobisim.AppAwareGovernor, prefix uint64, effLimit float64, steps int, stepS float64) (map[string]float64, bool, error) {
	span := int(math.Round(aware.IntervalS() / stepS))
	if span < 1 {
		span = 1
	}
	var ckpt []byte
	ckptStep := -1
	acted := false
	for done := 0; done < steps; {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		n := steps - done
		if !acted {
			blob, err := eng.Snapshot()
			if err != nil {
				return nil, false, fmt.Errorf("simd: sentinel snapshot: %w", err)
			}
			ckpt, ckptStep = blob, done
			if n > span {
				n = span
			}
		}
		if n > ctxCheckSteps {
			// Cancellation-latency cap, load-bearing for the post-event
			// tail: without it the whole remaining horizon ran as one
			// RunSteps call and DELETE-cancel, last-waiter detach and hard
			// shutdown could not abort the cell until it finished. Chunking
			// is byte-identical (see ctxCheckSteps); a finer checkpoint
			// cadence under an oversized control interval is a cost knob.
			n = ctxCheckSteps
		}
		if err := eng.RunSteps(n); err != nil {
			return nil, false, err
		}
		done += n
		if !acted && aware.EventCount() > 0 {
			acted = true
		}
	}
	if ckptStep >= 0 {
		// Best-effort: a full store never fails the cell.
		_ = s.cache.PutSnapshot(prefix, PrefixSnapshot{LimitC: effLimit, Step: ckptStep, Blob: ckpt})
	}
	return eng.Metrics(), false, nil
}

// runChunked advances the engine by exactly `steps` steps in chunks,
// polling ctx between chunks.
func runChunked(ctx context.Context, eng *mobisim.Engine, steps, chunk int) error {
	for done := 0; done < steps; {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := steps - done
		if n > chunk {
			n = chunk
		}
		if err := eng.RunSteps(n); err != nil {
			return err
		}
		done += n
	}
	return nil
}
