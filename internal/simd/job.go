package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/pkg/mobisim"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued means the job is admitted but no worker has picked it up.
	JobQueued JobState = "queued"
	// JobRunning means a worker is executing the job's cells.
	JobRunning JobState = "running"
	// JobDone means the job finished and its result body is available.
	JobDone JobState = "done"
	// JobFailed means the job stopped on an error.
	JobFailed JobState = "failed"
	// JobCanceled means the job was canceled by the client or by
	// daemon shutdown before completing.
	JobCanceled JobState = "canceled"
)

// JobRequest is the POST /v1/jobs body: exactly one of Matrix,
// Scenario or Scenarios (the same JSON specs mobsim/sweep accept,
// validated by the same strict parsers), plus response/streaming
// options.
type JobRequest struct {
	// Matrix is a sweep matrix spec (mobisim.ParseMatrix).
	Matrix *json.RawMessage `json:"matrix,omitempty"`
	// Scenario is a single scenario spec (mobisim.ParseScenario).
	Scenario *json.RawMessage `json:"scenario,omitempty"`
	// Scenarios is a list of standalone scenario specs, each becoming
	// one cell at its list index — the remote-evaluation shape
	// cmd/explore submits per generation.
	Scenarios []json.RawMessage `json:"scenarios,omitempty"`
	// IncludeRaw adds per-cell raw results to the result body
	// (SweepConfig.IncludeRaw).
	IncludeRaw bool `json:"include_raw,omitempty"`
	// StreamSamples adds per-cell observer samples to the job's SSE
	// feed (best-effort telemetry; slow consumers may drop samples).
	StreamSamples bool `json:"stream_samples,omitempty"`
}

// JobSpec is a parsed, validated, fully-expanded job: the
// content-addressed cells to run plus the response options.
type JobSpec struct {
	Cells         []mobisim.Cell
	IncludeRaw    bool
	StreamSamples bool
}

// ParseJobRequest strictly decodes and expands a job submission.
// Decoding mirrors the CLI parsers exactly — unknown fields and
// trailing data are errors — and matrix/scenario validation is
// delegated verbatim to mobisim.ParseMatrix / mobisim.ParseScenario,
// so a body the daemon accepts is a body the CLI accepts and vice
// versa.
func ParseJobRequest(data []byte) (*JobSpec, error) {
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("simd: job request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("simd: job request: trailing data after JSON object")
	}
	specified := 0
	for _, set := range []bool{req.Matrix != nil, req.Scenario != nil, req.Scenarios != nil} {
		if set {
			specified++
		}
	}
	if specified > 1 {
		return nil, fmt.Errorf("simd: job request: matrix, scenario and scenarios are mutually exclusive")
	}
	switch {
	case req.Matrix != nil:
		m, err := mobisim.ParseMatrix(*req.Matrix)
		if err != nil {
			return nil, err
		}
		cells, err := mobisim.ExpandCells(m)
		if err != nil {
			return nil, err
		}
		return &JobSpec{Cells: cells, IncludeRaw: req.IncludeRaw, StreamSamples: req.StreamSamples}, nil
	case req.Scenario != nil:
		sc, err := mobisim.ParseScenario(*req.Scenario)
		if err != nil {
			return nil, err
		}
		cell, err := mobisim.CellForScenario(sc)
		if err != nil {
			return nil, err
		}
		return &JobSpec{Cells: []mobisim.Cell{cell}, IncludeRaw: req.IncludeRaw, StreamSamples: req.StreamSamples}, nil
	case req.Scenarios != nil:
		if len(req.Scenarios) == 0 {
			return nil, fmt.Errorf("simd: job request: scenarios list is empty")
		}
		cells := make([]mobisim.Cell, len(req.Scenarios))
		for i, raw := range req.Scenarios {
			sc, err := mobisim.ParseScenario(raw)
			if err != nil {
				return nil, fmt.Errorf("simd: job request: scenarios[%d]: %w", i, err)
			}
			cell, err := mobisim.CellForScenario(sc)
			if err != nil {
				return nil, fmt.Errorf("simd: job request: scenarios[%d]: %w", i, err)
			}
			cell.Index = i
			cells[i] = cell
		}
		return &JobSpec{Cells: cells, IncludeRaw: req.IncludeRaw, StreamSamples: req.StreamSamples}, nil
	default:
		return nil, fmt.Errorf("simd: job request: need a matrix, a scenario or a scenarios list")
	}
}

// JobStatus is the GET /v1/jobs/{id} body: a point-in-time snapshot of
// the job's progress and cell-origin counters.
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Cells     int      `json:"cells"`
	Completed int      `json:"completed"`
	CacheHits int      `json:"cache_hits"`
	Computed  int      `json:"computed"`
	Deduped   int      `json:"deduped"`
	Error     string   `json:"error,omitempty"`
	CreatedAt string   `json:"created_at"`
	StartedAt string   `json:"started_at,omitempty"`
	DoneAt    string   `json:"done_at,omitempty"`
}

// Job is one admitted submission moving through the queue and worker
// pool. All mutators are safe for concurrent use; the SSE broker fans
// its lifecycle out to subscribers.
type Job struct {
	ID     string
	Spec   *JobSpec
	Broker *Broker

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     JobState
	completed int
	origins   map[Origin]int
	result    []byte
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
}

// NewJob builds a queued job whose execution context descends from
// parent (daemon hard-shutdown cancels all jobs through it).
func NewJob(id string, spec *JobSpec, parent context.Context) *Job {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		ID:      id,
		Spec:    spec,
		Broker:  NewBroker(),
		ctx:     ctx,
		cancel:  cancel,
		state:   JobQueued,
		origins: make(map[Origin]int),
		created: time.Now(),
	}
}

// Context is the job's execution context; it is canceled by Cancel and
// by daemon hard shutdown.
func (j *Job) Context() context.Context { return j.ctx }

// Cancel requests cancellation. A queued job transitions to canceled
// immediately; a running one transitions when its executor observes
// the canceled context. Terminal jobs are unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobCanceled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	if j.State() == JobCanceled {
		j.publishEnd()
	}
}

// Start transitions queued → running; false means the job was already
// canceled and must not run.
func (j *Job) Start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	return true
}

// CellDone records one completed cell.
func (j *Job) CellDone(origin Origin) {
	j.mu.Lock()
	j.completed++
	j.origins[origin]++
	j.mu.Unlock()
}

// Finish transitions running → done with the result body and closes
// the SSE feed.
func (j *Job) Finish(result []byte) {
	j.mu.Lock()
	j.state = JobDone
	j.result = result
	j.finished = time.Now()
	j.mu.Unlock()
	j.publishEnd()
}

// Fail transitions to failed — or canceled, when the job's own context
// was canceled — and closes the SSE feed.
func (j *Job) Fail(err error) {
	j.mu.Lock()
	if j.ctx.Err() != nil {
		j.state = JobCanceled
	} else {
		j.state = JobFailed
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.publishEnd()
	j.cancel()
}

// publishEnd emits the terminal SSE event and closes the broker.
func (j *Job) publishEnd() {
	st := j.Status()
	if data, err := json.Marshal(st); err == nil {
		j.Broker.Publish("end", data, true)
	}
	j.Broker.Close()
}

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the stored result body (nil unless done) and state.
// The body is returned as stored, byte for byte.
func (j *Job) Result() ([]byte, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state
}

// Status snapshots the job for the status endpoint and SSE events.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Cells:     len(j.Spec.Cells),
		Completed: j.completed,
		CacheHits: j.origins[OriginMemCache] + j.origins[OriginDiskCache],
		Computed:  j.origins[OriginComputed] + j.origins[OriginComputedWarm],
		Deduped:   j.origins[OriginDeduped],
		Error:     j.errMsg,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.DoneAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}
