package simd

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/pkg/mobisim"
)

func mustCell(t *testing.T, sc mobisim.Scenario) mobisim.Cell {
	t.Helper()
	cell, err := mobisim.CellForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

// coldMetrics runs the cell's spec on a fresh engine the way the cold
// sweep path does — the reference every scheduler origin must match
// bitwise.
func coldMetrics(t *testing.T, spec mobisim.Scenario) map[string]float64 {
	t.Helper()
	eng, err := mobisim.New(spec, mobisim.WithoutRecording())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng.Metrics()
}

func newTestScheduler(t *testing.T) (*Scheduler, *Cache) {
	t.Helper()
	cache, err := NewCache(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return NewScheduler(context.Background(), cache), cache
}

// TestSchedulerColdThenCached pins the basic origin ladder: first call
// computes, the second is a memory hit, a scheduler over the same dir
// with a cold memory tier hits disk — and every origin returns metrics
// bitwise-identical to a fresh cold engine run.
func TestSchedulerColdThenCached(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sched, cache := newTestScheduler(t)
	cell := mustCell(t, mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark",
		Governor: mobisim.GovNone, DurationS: 1, Seed: 3,
	})
	want := coldMetrics(t, cell.Spec)

	var samples []Sample
	m1, origin, err := sched.RunCell(context.Background(), cell, func(s Sample) { samples = append(samples, s) })
	if err != nil {
		t.Fatal(err)
	}
	if origin != OriginComputed {
		t.Fatalf("first run origin: %s", origin)
	}
	if !metricsBitwiseEqual(m1, want) {
		t.Fatalf("computed metrics differ from cold run:\ngot  %v\nwant %v", m1, want)
	}
	if len(samples) == 0 {
		t.Error("computed cell delivered no observer samples")
	}

	m2, origin, err := sched.RunCell(context.Background(), cell, func(s Sample) { t.Error("cache hit delivered samples") })
	if err != nil {
		t.Fatal(err)
	}
	if origin != OriginMemCache || !metricsBitwiseEqual(m2, want) {
		t.Fatalf("second run: origin %s", origin)
	}

	fresh := NewScheduler(context.Background(), mustReopen(t, cache))
	m3, origin, err := fresh.RunCell(context.Background(), cell, nil)
	if err != nil {
		t.Fatal(err)
	}
	if origin != OriginDiskCache || !metricsBitwiseEqual(m3, want) {
		t.Fatalf("disk run: origin %s", origin)
	}
	if got := sched.Stats().Computed; got != 1 {
		t.Errorf("computed counter: %d, want 1", got)
	}
}

func mustReopen(t *testing.T, c *Cache) *Cache {
	t.Helper()
	fresh, err := NewCache(c.Dir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return fresh
}

// TestSchedulerSingleflight is the dedup contract: concurrent RunCell
// calls for one CellKey share a single computation — the simulation
// runs exactly once, every waiter gets bitwise-identical metrics, and
// the joiners are counted as deduped.
func TestSchedulerSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sched, _ := newTestScheduler(t)
	// A long-horizon cell keeps the flight open for hundreds of
	// milliseconds — orders of magnitude beyond the joiners' launch
	// latency after they observe the flight in Stats, and wide enough
	// that a descheduled poller cannot miss the whole flight.
	cell := mustCell(t, mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark+bml",
		Governor: mobisim.GovNone, DurationS: 120, Seed: 1,
	})
	type res struct {
		metrics map[string]float64
		origin  Origin
		err     error
	}
	results := make(chan res, 4)
	run := func() {
		m, o, err := sched.RunCell(context.Background(), cell, nil)
		results <- res{m, o, err}
	}
	go run()
	deadline := time.Now().Add(10 * time.Second)
	for sched.Stats().Inflight == 0 {
		if sched.Stats().Computed > 0 {
			t.Fatal("flight completed before the joiners launched; raise the cell's DurationS")
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < 3; i++ {
		go run()
	}
	var first map[string]float64
	origins := map[Origin]int{}
	for i := 0; i < 4; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		origins[r.origin]++
		if first == nil {
			first = r.metrics
		} else if !metricsBitwiseEqual(first, r.metrics) {
			t.Error("waiters saw different metrics for one key")
		}
	}
	st := sched.Stats()
	if st.Computed != 1 {
		t.Errorf("cell simulated %d times, want exactly once", st.Computed)
	}
	if st.Deduped != 3 {
		t.Errorf("deduped counter: %d, want 3 (origins: %v)", st.Deduped, origins)
	}
	if origins[OriginComputed] != 1 || origins[OriginDeduped] != 3 {
		t.Errorf("origins: %v", origins)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight after completion: %d", st.Inflight)
	}
}

// TestSchedulerWarmStartFromSnapshot pins the cross-run prefix
// warm-start: an appaware sentinel run stores a checkpoint, and a
// same-prefix higher-limit cell on a *fresh* scheduler warm-starts
// from disk — with metrics byte-identical to its cold run.
func TestSchedulerWarmStartFromSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	base := mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark+bml",
		Governor: mobisim.GovAppAware, DurationS: 3, Seed: 1,
	}
	low, high := base, base
	low.LimitC, high.LimitC = 52, 70
	lowCell, highCell := mustCell(t, low), mustCell(t, high)

	sched, cache := newTestScheduler(t)
	if _, origin, err := sched.RunCell(context.Background(), lowCell, nil); err != nil || origin != OriginComputed {
		t.Fatalf("sentinel run: origin %s err %v", origin, err)
	}
	if cache.Stats().SnapshotStores == 0 {
		t.Fatal("sentinel run stored no prefix snapshot")
	}

	fresh := NewScheduler(context.Background(), mustReopen(t, cache))
	got, origin, err := fresh.RunCell(context.Background(), highCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	if origin != OriginComputedWarm {
		t.Fatalf("same-prefix cell origin: %s, want %s", origin, OriginComputedWarm)
	}
	if want := coldMetrics(t, highCell.Spec); !metricsBitwiseEqual(got, want) {
		t.Fatalf("warm-started metrics differ from cold run:\ngot  %v\nwant %v", got, want)
	}

	// The gate must refuse the snapshot for a lower limit than the
	// producer's: that cell may act before the checkpoint.
	lower := base
	lower.LimitC = 45
	lowerCell := mustCell(t, lower)
	if _, origin, err = fresh.RunCell(context.Background(), lowerCell, nil); err != nil || origin != OriginComputed {
		t.Fatalf("below-gate cell origin: %s err %v, want cold compute", origin, err)
	}
}

// TestSchedulerCorruptSnapshotBlob pins the fallback: a structurally
// valid snapshot entry whose engine blob is garbage must not fail the
// cell — Restore's error sends it down the cold sentinel path with
// correct metrics.
func TestSchedulerCorruptSnapshotBlob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sched, cache := newTestScheduler(t)
	spec := mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark",
		Governor: mobisim.GovAppAware, LimitC: 70, DurationS: 1, Seed: 2,
	}
	cell := mustCell(t, spec)
	prefix, err := cell.Spec.PrefixKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.PutSnapshot(prefix, PrefixSnapshot{LimitC: 1, Step: 10, Blob: []byte("not an engine snapshot")}); err != nil {
		t.Fatal(err)
	}
	got, origin, err := sched.RunCell(context.Background(), cell, nil)
	if err != nil {
		t.Fatalf("corrupt snapshot blob failed the cell: %v", err)
	}
	if origin != OriginComputed {
		t.Errorf("origin: %s, want cold compute fallback", origin)
	}
	if want := coldMetrics(t, cell.Spec); !metricsBitwiseEqual(got, want) {
		t.Error("fallback metrics differ from cold run")
	}
}

// TestSchedulerCancellation pins per-waiter cancellation: a canceled
// caller detaches with its context's error, and once the last waiter
// is gone the flight is retired.
func TestSchedulerCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sched, _ := newTestScheduler(t)
	cell := mustCell(t, mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark+bml",
		Governor: mobisim.GovNone, DurationS: 60, Seed: 9,
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		_, _, runErr = sched.RunCell(ctx, cell, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for sched.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	wg.Wait()
	if runErr == nil {
		t.Fatal("canceled RunCell returned no error")
	}
	deadline = time.Now().Add(10 * time.Second)
	for sched.Stats().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight not retired after last waiter left")
		}
		time.Sleep(time.Millisecond)
	}
	if got := sched.Stats().Computed; got != 0 {
		t.Errorf("canceled flight counted as computed: %d", got)
	}
}
