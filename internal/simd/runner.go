package simd

import (
	"context"

	"repro/internal/sweep"
	"repro/pkg/mobisim"
)

// RunStats summarizes one run's cells by origin.
type RunStats struct {
	// Total is the number of cells in the run.
	Total int `json:"total"`
	// ByOrigin counts cells per Origin.
	ByOrigin map[Origin]int `json:"by_origin"`
}

// CacheHits counts cells served from either cache tier.
func (s RunStats) CacheHits() int {
	return s.ByOrigin[OriginMemCache] + s.ByOrigin[OriginDiskCache]
}

// Computed counts cells that were actually simulated (cold or
// warm-started).
func (s RunStats) Computed() int {
	return s.ByOrigin[OriginComputed] + s.ByOrigin[OriginComputedWarm]
}

// Deduped counts cells that attached to another caller's in-flight
// computation.
func (s RunStats) Deduped() int { return s.ByOrigin[OriginDeduped] }

// runCells executes every cell through the scheduler on a sweep worker
// pool, returning metric sets in cell order. onCell, when non-nil, is
// invoked once per completed cell in completion order from worker
// goroutines (it must be concurrency-safe); tapFor, when non-nil,
// supplies the per-cell sample tap.
func runCells(ctx context.Context, sched *Scheduler, cells []mobisim.Cell, workers int, onCell func(i int, origin Origin, metrics map[string]float64), tapFor func(i int) SampleFunc) ([]map[string]float64, RunStats, error) {
	origins := make([]Origin, len(cells))
	// The pool dispatches by scenario; Index carries the slice position
	// so the RunFunc and completion hook address cells[i] directly. The
	// remaining fields only label pool error messages.
	scs := make([]sweep.Scenario, len(cells))
	for i, c := range cells {
		scs[i] = sweep.Scenario{
			Index:     i,
			Platform:  c.Spec.Platform,
			Workload:  c.Spec.Workload,
			Governor:  c.Spec.Governor,
			LimitC:    c.Spec.LimitC,
			DurationS: c.Spec.DurationS,
			Replicate: c.Replicate,
			Seed:      c.Spec.Seed,
		}
	}
	pool := &sweep.Pool{Workers: workers, RunFunc: func(ctx context.Context, sc sweep.Scenario) (map[string]float64, error) {
		i := sc.Index
		var tap SampleFunc
		if tapFor != nil {
			tap = tapFor(i)
		}
		m, origin, err := sched.RunCell(ctx, cells[i], tap)
		if err != nil {
			return nil, err
		}
		origins[i] = origin
		return m, nil
	}}
	if onCell != nil {
		pool.OnResult = func(r sweep.Result) {
			onCell(r.Scenario.Index, origins[r.Scenario.Index], r.Metrics)
		}
	}
	results, err := pool.Run(ctx, scs)
	if err != nil {
		return nil, RunStats{}, err
	}
	metrics := make([]map[string]float64, len(cells))
	stats := RunStats{Total: len(cells), ByOrigin: make(map[Origin]int)}
	for i, r := range results {
		metrics[i] = r.Metrics
		stats.ByOrigin[origins[i]]++
	}
	return metrics, stats, nil
}

// RunSweepCached is the cache-aware counterpart of mobisim.RunSweep:
// it expands the matrix into content-addressed cells, serves each from
// the cache where possible (populating it otherwise), and folds the
// metric sets through the same aggregation tail RunSweep uses — so its
// output is byte-identical to RunSweep for every matrix, hit or miss.
// It backs `sweep -cache-dir`, sharing the on-disk store with the
// daemon.
func RunSweepCached(ctx context.Context, m mobisim.Matrix, workers int, includeRaw bool, cache *Cache) (*mobisim.SweepOutput, RunStats, error) {
	cells, err := mobisim.ExpandCells(m)
	if err != nil {
		return nil, RunStats{}, err
	}
	sched := NewScheduler(ctx, cache)
	metrics, stats, err := runCells(ctx, sched, cells, workers, nil, nil)
	if err != nil {
		return nil, stats, err
	}
	out, err := mobisim.AggregateCells(cells, metrics, includeRaw)
	return out, stats, err
}
