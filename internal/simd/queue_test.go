package simd

import (
	"context"
	"testing"
	"time"
)

func testJob(id string) *Job {
	return NewJob(id, &JobSpec{}, context.Background())
}

// TestQueueBackpressure pins the bounded-admission contract: Enqueue
// never blocks, a full queue returns ErrQueueFull, and dequeuing frees
// a slot.
func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2)
	if q.Cap() != 2 {
		t.Fatalf("cap: %d", q.Cap())
	}
	if err := q.Enqueue(testJob("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(testJob("b")); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(testJob("c")); err != ErrQueueFull {
		t.Fatalf("full queue: got %v, want ErrQueueFull", err)
	}
	if q.Depth() != 2 {
		t.Fatalf("depth: %d", q.Depth())
	}
	j, ok := q.Dequeue(context.Background())
	if !ok || j.ID != "a" {
		t.Fatalf("dequeue: %v %v", j, ok)
	}
	if err := q.Enqueue(testJob("c")); err != nil {
		t.Fatalf("after dequeue: %v", err)
	}
}

// TestQueueClose pins the drain semantics: Close refuses new jobs but
// queued ones stay dequeueable; a drained closed queue reports !ok.
func TestQueueClose(t *testing.T) {
	q := NewQueue(2)
	if err := q.Enqueue(testJob("a")); err != nil {
		t.Fatal(err)
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Enqueue(testJob("b")); err != ErrQueueClosed {
		t.Fatalf("closed queue: got %v, want ErrQueueClosed", err)
	}
	if j, ok := q.Dequeue(context.Background()); !ok || j.ID != "a" {
		t.Fatalf("queued job lost on close: %v %v", j, ok)
	}
	if _, ok := q.Dequeue(context.Background()); ok {
		t.Fatal("drained closed queue returned a job")
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on drained closed queue returned a job")
	}
}

// TestQueueDequeueContext pins that a canceled context unblocks
// Dequeue.
func TestQueueDequeueContext(t *testing.T) {
	q := NewQueue(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Dequeue(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled dequeue reported a job")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dequeue did not observe cancellation")
	}
}
