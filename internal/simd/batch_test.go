package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/pkg/mobisim"
)

// batchMatrix mixes platforms (two thermal topologies), governors
// (limit-aware and not) and limits, so one job exercises topology
// grouping, warm prefix subgrouping and cold units at once.
func batchMatrix() mobisim.Matrix {
	return mobisim.Matrix{
		Platforms:  []string{mobisim.PlatformOdroidXU3, mobisim.PlatformNexus6P},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{mobisim.GovAppAware, mobisim.GovNone},
		LimitsC:    []float64{58, 70},
		Replicates: 1,
		DurationS:  2,
		BaseSeed:   3,
	}
}

// TestServerBatchedByteIdentityMatrix is the tentpole invariant matrix:
// at every lane width the batched daemon's result body is byte-identical
// to the scalar daemon's and to an in-process RunSweep — cold, with a
// half-warm cache (hit/miss interleaving), and fully cached.
func TestServerBatchedByteIdentityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := batchMatrix()
	want := coldSweepJSON(t, m)
	cells := m.ExpandedSize()

	// Half the matrix, submitted first in the interleaving phase below.
	half := m
	half.LimitsC = []float64{58}

	for _, width := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("width-%d", width), func(t *testing.T) {
			srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1, BatchWidth: width})
			srv.Start()
			defer srv.Shutdown(context.Background())

			st, resp := postJob(t, ts, matrixBody(t, m, ""))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
			done := waitState(t, ts, st.ID, JobDone)
			if done.Computed != cells || done.CacheHits != 0 {
				t.Errorf("cold job counters: %+v", done)
			}
			if body := getResult(t, ts, st.ID); !bytes.Equal(body, want) {
				t.Errorf("batched result differs from RunSweep oracle:\nwant:\n%s\ngot:\n%s", want, body)
			}
			sst := srv.sched.Stats()
			if sst.Batched == 0 {
				t.Error("batched executor ran no units; the scalar path answered the job")
			}
			if sst.BatchLanes != uint64(cells) {
				t.Errorf("batch lanes: %d, want every one of %d cold cells", sst.BatchLanes, cells)
			}

			// Fully cached resubmission: nothing simulated, same bytes.
			st2, _ := postJob(t, ts, matrixBody(t, m, ""))
			done2 := waitState(t, ts, st2.ID, JobDone)
			if done2.CacheHits != cells || done2.Computed != 0 {
				t.Errorf("warm job counters: %+v", done2)
			}
			if body := getResult(t, ts, st2.ID); !bytes.Equal(body, want) {
				t.Error("cache-hit body differs from cold body")
			}

			// Hit/miss interleaving on a fresh daemon: pre-warm half the
			// matrix, then the full job mixes cache hits with batched misses
			// cell-by-cell — bytes must not care.
			srvI, tsI := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1, BatchWidth: width})
			srvI.Start()
			defer srvI.Shutdown(context.Background())
			sth, _ := postJob(t, tsI, matrixBody(t, half, ""))
			waitState(t, tsI, sth.ID, JobDone)
			stf, _ := postJob(t, tsI, matrixBody(t, m, ""))
			donef := waitState(t, tsI, stf.ID, JobDone)
			if donef.CacheHits != half.ExpandedSize() || donef.Computed != cells-half.ExpandedSize() {
				t.Errorf("interleaved job counters: %+v", donef)
			}
			if body := getResult(t, tsI, stf.ID); !bytes.Equal(body, want) {
				t.Error("interleaved hit/miss result differs from oracle")
			}
		})
	}
}

// sseCellPayloads fetches a completed job's event replay and returns
// its cell-event payloads indexed by cell, with the origin field
// cleared: the batched executor legitimately reports "computed" where
// the scalar disk-snapshot path reports "computed-warm", and sample
// events are best-effort, so equivalence is over everything else.
func sseCellPayloads(t *testing.T, ts *httptest.Server, id string, cells int) []cellEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]cellEvent, cells)
	seen := 0
	var event string
	for _, line := range strings.Split(string(data), "\n") {
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			event = after
			continue
		}
		after, ok := strings.CutPrefix(line, "data: ")
		if !ok || event != "cell" {
			continue
		}
		var ev cellEvent
		if err := json.Unmarshal([]byte(after), &ev); err != nil {
			t.Fatalf("cell event payload: %v\n%s", err, after)
		}
		if ev.Index < 0 || ev.Index >= cells {
			t.Fatalf("cell event index %d out of range", ev.Index)
		}
		ev.Origin = ""
		out[ev.Index] = ev
		seen++
	}
	if seen != cells {
		t.Fatalf("event replay carried %d cell events, want %d\n%s", seen, cells, data)
	}
	return out
}

// TestServerBatchedSSEEquivalence pins the event-feed contract: modulo
// origin labels and best-effort sample drops, the batched daemon's cell
// event stream is equivalent to the scalar daemon's — same keys, same
// metrics, one event per cell — and batched lanes do stream samples.
func TestServerBatchedSSEEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := batchMatrix()
	cells := m.ExpandedSize()

	run := func(width int) (*Server, *httptest.Server, string) {
		srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1, BatchWidth: width})
		srv.Start()
		st, _ := postJob(t, ts, matrixBody(t, m, `, "stream_samples": true`))
		waitState(t, ts, st.ID, JobDone)
		return srv, ts, st.ID
	}
	scalarSrv, scalarTS, scalarID := run(0)
	defer scalarSrv.Shutdown(context.Background())
	batchSrv, batchTS, batchID := run(4)
	defer batchSrv.Shutdown(context.Background())
	if batchSrv.sched.Stats().Batched == 0 {
		t.Fatal("batched server ran no units")
	}

	scalar := sseCellPayloads(t, scalarTS, scalarID, cells)
	batched := sseCellPayloads(t, batchTS, batchID, cells)
	for i := range scalar {
		sj, _ := json.Marshal(scalar[i])
		bj, _ := json.Marshal(batched[i])
		if !bytes.Equal(sj, bj) {
			t.Errorf("cell %d event differs:\nscalar:  %s\nbatched: %s", i, sj, bj)
		}
	}

	// Batched lanes attach per-lane observers feeding the same sample
	// taps the SSE layer publishes from (sample frames themselves are
	// live-only and droppable, so the tap is the deterministic seam).
	// Non-limit-aware lanes always simulate their full horizon, so at
	// least those must deliver samples.
	sched, _ := newTestScheduler(t)
	expanded, err := mobisim.ExpandCells(m)
	if err != nil {
		t.Fatal(err)
	}
	tapped := make([]int, len(expanded))
	_, _, err = sched.RunCellsBatched(context.Background(), expanded, 4, 2, nil, func(i int) SampleFunc {
		return func(Sample) { tapped[i]++ }
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range expanded {
		if expanded[i].Spec.Governor == mobisim.GovNone && tapped[i] == 0 {
			t.Errorf("batched lane %d (%s) delivered no samples through its tap", i, expanded[i].Spec.Workload)
		}
	}
}

// TestServerBatchedCrashRecovery is the chaos variant: kill the batched
// daemon mid-job — some lanes published, some not — restart on the same
// directory with batching still on, and the recovered job's result is
// byte-identical to the cold oracle, pre-crash lanes served from cache.
func TestServerBatchedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := chaosMatrix()
	want := coldSweepJSON(t, m)
	dir := t.TempDir()

	// Lane publishes funnel through cache writes one at a time, so write
	// latency staggers completions and widens the kill window exactly as
	// it does for the scalar path.
	inj := faultfs.NewInjector(nil).Add(faultfs.Rule{
		Op: faultfs.OpCreate, PathContains: "cellkey",
		Latency: 25 * time.Millisecond, LatencyOnly: true,
	})
	srv1, ts1 := newTestServer(t, Config{CacheDir: dir, JobWorkers: 1, CellWorkers: 1, BatchWidth: 4, FS: inj})
	srv1.Start()

	st, resp := postJob(t, ts1, matrixBody(t, m, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		cur := getStatus(t, ts1, st.ID)
		if cur.State == JobDone {
			t.Fatal("job finished before the kill; widen the injected latency")
		}
		if cur.Completed >= 2 && cur.Completed < cur.Cells {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the kill window (status %+v)", cur)
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Kill()
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{CacheDir: dir, JobWorkers: 1, BatchWidth: 4})
	if got := srv2.Recovered(); got != 1 {
		t.Fatalf("recovered jobs: %d, want 1", got)
	}
	srv2.Start()
	defer srv2.Shutdown(context.Background())

	done := waitState(t, ts2, st.ID, JobDone)
	if done.CacheHits == 0 {
		t.Error("recovered run served no cells from cache; pre-crash lanes were lost")
	}
	if done.CacheHits+done.Computed+done.Deduped != done.Cells {
		t.Errorf("recovered run cell accounting broken: %+v", done)
	}
	if body := getResult(t, ts2, st.ID); !bytes.Equal(body, want) {
		t.Errorf("recovered batched result differs from cold oracle:\nwant:\n%s\ngot:\n%s", want, body)
	}
}
