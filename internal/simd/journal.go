package simd

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultfs"
)

// Durable job journal.
//
// The journal is the daemon's crash-safety layer: an append-only,
// CRC-framed write-ahead log under the cache root recording job
// submission envelopes, per-cell completions (by CellKey — the result
// bytes themselves live in the content-addressed cache), and terminal
// states. On startup the daemon replays the journal, re-enqueues every
// job that never reached a terminal record, and serves the recovered
// results byte-identical to an uninterrupted run: completed cells hit
// the result cache, the remainder are resimulated, and the aggregation
// tail is deterministic in cell content.
//
// Decoding is defensive in exactly the cache's spirit: a torn or
// bit-flipped tail ends that segment's replay — truncated, counted,
// never fatal — and a record is either fully applied or not at all (a
// CRC-valid submit whose envelope later fails to parse skips the whole
// job, never half of one).
//
// Layout: <cacheRoot>/mobisim/journal/v1/<seq>.wal, segments replayed
// in sequence order. Opening the journal compacts: the live jobs of
// the replay are rewritten into a fresh segment (temp file + fsync +
// rename, so a crash mid-compaction leaves the old segments intact)
// and the old segments are removed.
//
// Durability policy: submission and terminal records are fsynced (they
// are the records recovery correctness depends on); per-cell records
// are appended without fsync — losing one costs at most a recompute
// that immediately hits the result cache.
const (
	journalMagic   = "simd-journal/1\n"
	journalSubdir  = "mobisim/journal/v1"
	maxJournalRec  = 16 << 20 // a frame longer than this is corrupt, not allocatable
	journalPerm    = 0o644
	journalDirPerm = 0o755
)

// Journal record types.
const (
	recSubmit = "submit"
	recCell   = "cell"
	recEnd    = "end"
)

// journalRecord is one WAL entry's JSON payload.
type journalRecord struct {
	Type string `json:"t"`
	Job  string `json:"job"`
	// Submit fields.
	Hash     string          `json:"hash,omitempty"` // %016x envelope hash
	Envelope json.RawMessage `json:"envelope,omitempty"`
	// Cell fields.
	Index int    `json:"index,omitempty"`
	Key   string `json:"key,omitempty"` // %016x cell key
	// End fields.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// RecoveredJob is one journaled job that never reached a terminal
// record: candidate for re-enqueue on startup.
type RecoveredJob struct {
	// ID is the original job id (recovered jobs keep it, so clients
	// polling a pre-crash id find their job again).
	ID string
	// Hash is the submission envelope's content hash.
	Hash uint64
	// Envelope is the original POST /v1/jobs body.
	Envelope []byte
	// DoneCells holds the CellKeys the crashed run completed; their
	// results are expected in the cache.
	DoneCells map[uint64]bool
}

// JournalStats snapshots the journal counters for /v1/stats.
type JournalStats struct {
	// Enabled is false for memory-only daemons and after a demotion.
	Enabled bool `json:"enabled"`
	// ReplaySegments, ReplayRecords: what startup replay consumed.
	ReplaySegments int `json:"replay_segments"`
	ReplayRecords  int `json:"replay_records"`
	// TruncatedRecords counts torn/corrupt frames dropped at replay.
	TruncatedRecords int `json:"truncated_records"`
	// OrphanRecords counts CRC-valid records referencing unknown jobs
	// or carrying unparseable envelopes.
	OrphanRecords int `json:"orphan_records"`
	// RecoveredJobs counts jobs re-enqueued by the last replay.
	RecoveredJobs int `json:"recovered_jobs"`
	// Appends and AppendErrors count post-replay writes.
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
}

// Journal is the durable job WAL. All methods are safe for concurrent
// use. A nil *Journal is a valid disabled journal: every method
// no-ops, so memory-only daemons carry no journal branches.
type Journal struct {
	fs  faultfs.FS
	dir string

	mu       sync.Mutex
	f        faultfs.File
	seq      uint64
	disabled bool

	appends    atomic.Uint64
	appendErrs atomic.Uint64
	replay     JournalStats // replay-time counters, fixed after open
}

// JournalDir maps a cache root to its journal directory.
func JournalDir(cacheRoot string) string {
	return filepath.Join(cacheRoot, filepath.FromSlash(journalSubdir))
}

// EnvelopeHash is the idempotency key of a job submission: FNV-1a 64
// over the raw envelope bytes. Clients resubmitting after a daemon
// crash present it so the daemon can attach them to the recovered job
// instead of running a duplicate.
func EnvelopeHash(envelope []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(envelope)
	return h.Sum64()
}

// OpenJournal opens (creating if needed) the journal under dir,
// replays every segment, compacts the live jobs into a fresh segment,
// and returns the journal plus the jobs to recover. fsys nil means the
// real OS filesystem.
//
// Replay is deterministic: the same segment bytes always yield the
// same recovered set. I/O errors opening or compacting are returned so
// the caller can demote to memory-only; corrupt content never is.
func OpenJournal(fsys faultfs.FS, dir string) (*Journal, []RecoveredJob, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, journalDirPerm); err != nil {
		return nil, nil, fmt.Errorf("simd: journal dir: %w", err)
	}
	j := &Journal{fs: fsys, dir: dir}
	j.replay.Enabled = true

	segs, err := j.segments()
	if err != nil {
		return nil, nil, fmt.Errorf("simd: journal scan: %w", err)
	}
	recovered := j.replaySegments(segs)
	j.replay.RecoveredJobs = len(recovered)

	if err := j.compact(segs, recovered); err != nil {
		return nil, nil, fmt.Errorf("simd: journal compact: %w", err)
	}
	return j, recovered, nil
}

// segments lists the journal's segment files in sequence order and
// advances j.seq past the highest.
func (j *Journal) segments() ([]string, error) {
	entries, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "%016x.wal", &seq); err != nil {
			continue // foreign file; never touched
		}
		if seq > j.seq {
			j.seq = seq
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (j *Journal) segPath(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("%016x.wal", seq))
}

// replaySegments folds every segment into the recovered-job set.
// Unreadable segments count as fully truncated; nothing here is fatal.
func (j *Journal) replaySegments(segs []string) []RecoveredJob {
	type jobState struct {
		rec      RecoveredJob
		terminal bool
		order    int
	}
	jobs := make(map[string]*jobState)
	order := 0
	for _, name := range segs {
		j.replay.ReplaySegments++
		data, err := j.fs.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			j.replay.TruncatedRecords++
			continue
		}
		recs, truncated := decodeJournal(data)
		j.replay.ReplayRecords += len(recs)
		j.replay.TruncatedRecords += truncated
		for _, r := range recs {
			switch r.Type {
			case recSubmit:
				var hash uint64
				if _, err := fmt.Sscanf(r.Hash, "%016x", &hash); err != nil || r.Job == "" || len(r.Envelope) == 0 {
					j.replay.OrphanRecords++
					continue
				}
				// The hash is derived state: verify it against the
				// envelope rather than trust it, so an inconsistent
				// record is dropped whole, never half-applied.
				if hash != EnvelopeHash(r.Envelope) {
					j.replay.OrphanRecords++
					continue
				}
				// A duplicate submit for a live id restarts that job's
				// state (latest submit wins, mirroring append order).
				jobs[r.Job] = &jobState{
					rec: RecoveredJob{
						ID:        r.Job,
						Hash:      hash,
						Envelope:  append([]byte(nil), r.Envelope...),
						DoneCells: make(map[uint64]bool),
					},
					order: order,
				}
				order++
			case recCell:
				st, ok := jobs[r.Job]
				if !ok {
					j.replay.OrphanRecords++
					continue
				}
				var key uint64
				if _, err := fmt.Sscanf(r.Key, "%016x", &key); err != nil {
					j.replay.OrphanRecords++
					continue
				}
				st.rec.DoneCells[key] = true
			case recEnd:
				st, ok := jobs[r.Job]
				if !ok {
					j.replay.OrphanRecords++
					continue
				}
				st.terminal = true
			default:
				j.replay.OrphanRecords++
			}
		}
	}
	var live []*jobState
	for _, st := range jobs {
		if !st.terminal {
			live = append(live, st)
		}
	}
	// Submission order, not map order: recovery re-enqueues the way the
	// crashed daemon admitted.
	sort.Slice(live, func(a, b int) bool { return live[a].order < live[b].order })
	out := make([]RecoveredJob, len(live))
	for i, st := range live {
		out[i] = st.rec
	}
	return out
}

// decodeJournal strictly parses one segment: magic, then CRC-framed
// records until the bytes end or stop parsing. truncated counts the
// torn/corrupt tail (at most 1 per segment: everything after the first
// bad frame is untrusted and dropped).
func decodeJournal(data []byte) (recs []journalRecord, truncated int) {
	rest, ok := strings.CutPrefix(string(data), journalMagic)
	if !ok {
		if len(data) > 0 {
			truncated++
		}
		return nil, truncated
	}
	b := []byte(rest)
	for len(b) > 0 {
		if len(b) < 8 {
			truncated++
			return recs, truncated
		}
		n := binary.LittleEndian.Uint32(b)
		sum := binary.LittleEndian.Uint32(b[4:])
		if n == 0 || n > maxJournalRec || uint64(len(b)) < 8+uint64(n) {
			truncated++
			return recs, truncated
		}
		payload := b[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			truncated++
			return recs, truncated
		}
		var r journalRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			truncated++
			return recs, truncated
		}
		recs = append(recs, r)
		b = b[8+n:]
	}
	return recs, truncated
}

// encodeRecord frames one record: length, CRC32 (IEEE) of the payload,
// payload.
func encodeRecord(r journalRecord) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...), nil
}

// compact rewrites the live jobs into a fresh segment (atomically:
// temp + fsync + rename) then removes the replayed segments. The
// journal's append handle points at the fresh segment afterwards.
func (j *Journal) compact(oldSegs []string, live []RecoveredJob) error {
	j.seq++
	path := j.segPath(j.seq)

	tmp, err := j.fs.CreateTemp(j.dir, ".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); _ = j.fs.Remove(tmp.Name()) }
	body := []byte(journalMagic)
	for _, rj := range live {
		frame, err := encodeRecord(journalRecord{
			Type: recSubmit, Job: rj.ID,
			Hash: fmt.Sprintf("%016x", rj.Hash), Envelope: rj.Envelope,
		})
		if err != nil {
			cleanup()
			return err
		}
		body = append(body, frame...)
		keys := make([]uint64, 0, len(rj.DoneCells))
		for k := range rj.DoneCells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			frame, err := encodeRecord(journalRecord{Type: recCell, Job: rj.ID, Key: fmt.Sprintf("%016x", k)})
			if err != nil {
				cleanup()
				return err
			}
			body = append(body, frame...)
		}
	}
	if _, err := tmp.Write(body); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = j.fs.Remove(tmp.Name())
		return err
	}
	if err := j.fs.Chmod(tmp.Name(), journalPerm); err != nil {
		_ = j.fs.Remove(tmp.Name())
		return err
	}
	if err := j.fs.Rename(tmp.Name(), path); err != nil {
		_ = j.fs.Remove(tmp.Name())
		return err
	}
	// Old segments only go away after the compacted one is durable; a
	// remove failure leaves harmless duplicates for the next replay.
	for _, name := range oldSegs {
		_ = j.fs.Remove(filepath.Join(j.dir, name))
	}
	f, err := j.fs.OpenAppend(path, journalPerm)
	if err != nil {
		return err
	}
	j.f = f
	return nil
}

// append frames and writes one record, fsyncing when durable. Errors
// are counted and returned; the caller decides whether to demote.
func (j *Journal) append(r journalRecord, durable bool) error {
	if j == nil {
		return nil
	}
	frame, err := encodeRecord(r)
	if err != nil {
		j.appendErrs.Add(1)
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled || j.f == nil {
		return nil
	}
	if _, err := j.f.Write(frame); err != nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("simd: journal append: %w", err)
	}
	if durable {
		if err := j.f.Sync(); err != nil {
			j.appendErrs.Add(1)
			return fmt.Errorf("simd: journal sync: %w", err)
		}
	}
	j.appends.Add(1)
	return nil
}

// AppendSubmit durably records an admitted job and its envelope. The
// envelope must be compacted JSON (json.Compact): the record's JSON
// framing compacts nested raw messages, and replay verifies hash
// against the envelope bytes as stored — whitespace would orphan the
// record.
func (j *Journal) AppendSubmit(jobID string, hash uint64, envelope []byte) error {
	return j.append(journalRecord{
		Type: recSubmit, Job: jobID,
		Hash: fmt.Sprintf("%016x", hash), Envelope: envelope,
	}, true)
}

// AppendCell records one completed cell (non-durable by policy: a lost
// cell record costs a recompute that hits the result cache).
func (j *Journal) AppendCell(jobID string, index int, key uint64) error {
	return j.append(journalRecord{Type: recCell, Job: jobID, Index: index, Key: fmt.Sprintf("%016x", key)}, false)
}

// AppendEnd durably records a job's terminal state.
func (j *Journal) AppendEnd(jobID string, state JobState, errMsg string) error {
	return j.append(journalRecord{Type: recEnd, Job: jobID, State: string(state), Error: errMsg}, true)
}

// Disable stops all journaling (the degraded-mode demotion). The open
// segment handle is closed; appends become no-ops.
func (j *Journal) Disable() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled {
		return
	}
	j.disabled = true
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
}

// Close flushes and closes the active segment.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := errors.Join(j.f.Sync(), j.f.Close())
	j.f = nil
	return err
}

// Stats snapshots the journal counters. Safe on a nil journal (the
// memory-only daemon): everything zero, Enabled false.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	st := j.replay
	st.Enabled = !j.disabled
	j.mu.Unlock()
	st.Appends = j.appends.Load()
	st.AppendErrors = j.appendErrs.Load()
	return st
}
