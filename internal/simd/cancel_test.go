package simd

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/pkg/mobisim"
)

// TestSentinelTailCancellation is the regression pin for the post-event
// sentinel tail: once an appaware governor acts, the remaining horizon
// used to run as a single RunSteps call, so cancellation could not take
// effect until the cell finished. The tail must now honor ctx within
// one ctxCheckSteps chunk.
func TestSentinelTailCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sched, _ := newTestScheduler(t)
	spec := mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark+bml",
		Governor: mobisim.GovAppAware, LimitC: 52, DurationS: 120, Seed: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelAtS = 60.0
	var lastSeenS float64
	eng, err := newEngine(spec, func(s Sample) {
		lastSeenS = s.TimeS
		if s.TimeS >= cancelAtS {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	aware := eng.AppAware()
	if aware == nil {
		t.Fatal("appaware cell built no appaware governor")
	}
	prefix, err := spec.PrefixKey()
	if err != nil {
		t.Fatal(err)
	}
	stepS := eng.Sim().StepS()
	steps := int(math.Round(spec.DurationS / stepS))

	_, _, err = sched.runSentinel(ctx, eng, aware, prefix, spec.LimitC, steps, stepS)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sentinel returned %v, want context.Canceled", err)
	}
	if aware.EventCount() == 0 {
		t.Fatal("governor never acted; the test did not exercise the post-event tail")
	}
	// The cancel fires mid-chunk; the engine finishes that chunk, then the
	// loop-top poll returns. Overshoot past the cancel point is therefore
	// bounded by one chunk of simulated time (plus one trace period of
	// observer latency, absorbed by the second chunk of slack).
	chunkS := float64(ctxCheckSteps) * stepS
	if maxS := cancelAtS + 2*chunkS; lastSeenS > maxS {
		t.Fatalf("sentinel ran to t=%.1fs after cancel at t=%.0fs, want <= %.1fs (one ctxCheckSteps chunk)",
			lastSeenS, cancelAtS, maxS)
	}
}

// TestAwaitFlightPrefersCompletion pins the finish-line determinism
// fix: with the flight done AND the caller canceled, awaitFlight must
// always hand back the completed result, never the cancellation — the
// naive two-case select discarded finished work pseudo-randomly.
func TestAwaitFlightPrefersCompletion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ {
		fl := &flight{done: make(chan struct{})}
		close(fl.done)
		if err := awaitFlight(ctx, fl); err != nil {
			t.Fatalf("iteration %d: completed flight reported %v", i, err)
		}
	}
	fl := &flight{done: make(chan struct{})}
	if err := awaitFlight(ctx, fl); !errors.Is(err, context.Canceled) {
		t.Fatalf("unfinished flight under canceled ctx returned %v", err)
	}
}

// TestDedupedNotCountedOnDetach pins the counter semantics: a follower
// that cancels before the flight completes was never served a deduped
// result, so it must not increment Deduped.
func TestDedupedNotCountedOnDetach(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sched, _ := newTestScheduler(t)
	cell := mustCell(t, mobisim.Scenario{
		Platform: mobisim.PlatformOdroidXU3, Workload: "3dmark+bml",
		Governor: mobisim.GovNone, DurationS: 120, Seed: 5,
	})
	refs := func() int {
		sched.mu.Lock()
		defer sched.mu.Unlock()
		for _, fl := range sched.flights {
			fl.mu.Lock()
			r := fl.refs
			fl.mu.Unlock()
			return r
		}
		return 0
	}

	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = sched.RunCell(lctx, cell, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for refs() < 1 {
		if sched.Stats().Computed > 0 {
			t.Fatal("flight completed before the follower joined; raise DurationS")
		}
		if time.Now().After(deadline) {
			t.Fatal("leader flight never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}

	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	var followErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, followErr = sched.RunCell(fctx, cell, nil)
	}()
	for refs() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined")
		}
		time.Sleep(100 * time.Microsecond)
	}

	fcancel()
	// Detach the leader too so the flight dies instead of finishing the
	// 120s horizon; neither waiter was served, so Deduped must stay 0.
	lcancel()
	wg.Wait()
	if !errors.Is(followErr, context.Canceled) {
		t.Fatalf("canceled follower returned %v", followErr)
	}
	for sched.Stats().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight not retired")
		}
		time.Sleep(time.Millisecond)
	}
	if got := sched.Stats().Deduped; got != 0 {
		t.Errorf("detached follower counted as deduped: %d, want 0", got)
	}
}
