package simd

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/mobisim"
)

func testMetrics() map[string]float64 {
	return map[string]float64{
		"peak_c":      61.52384937,
		"avg_power_w": 3.25,
		"median_fps":  math.NaN(),
		"neg_zero":    math.Copysign(0, -1),
		"inf":         math.Inf(1),
	}
}

// metricsBitwiseEqual compares by IEEE-754 bit pattern, so NaN == NaN
// and -0 != +0 — the equality the byte-identity invariant needs.
func metricsBitwiseEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || math.Float64bits(va) != math.Float64bits(vb) {
			return false
		}
	}
	return true
}

// TestCacheRoundTrip pins the two-tier lookup path: miss, then memory
// hit, then — after dropping the memory tier — a disk hit that
// round-trips every value bitwise, NaN, -0 and Inf included.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	const key = 0xdeadbeefcafef00d
	if _, tier := c.Get(key); tier != TierMiss {
		t.Fatalf("empty cache: got tier %v, want miss", tier)
	}
	want := testMetrics()
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, tier := c.Get(key)
	if tier != TierMemory || !metricsBitwiseEqual(got, want) {
		t.Fatalf("memory get: tier %v, metrics %v", tier, got)
	}
	// A fresh cache over the same dir has an empty memory tier: the
	// lookup must fall through to disk and promote.
	c2, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, tier = c2.Get(key)
	if tier != TierDisk {
		t.Fatalf("disk get: tier %v, want disk", tier)
	}
	if !metricsBitwiseEqual(got, want) {
		t.Fatalf("disk round-trip not bitwise: got %v want %v", got, want)
	}
	if _, tier = c2.Get(key); tier != TierMemory {
		t.Fatalf("post-promotion get: tier %v, want memory", tier)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 || st.Misses != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestCacheMemoryOnly pins that an empty dir disables disk and
// snapshots but keeps the memory tier working.
func TestCacheMemoryOnly(t *testing.T) {
	c, err := NewCache("", 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.SnapshotsEnabled() {
		t.Error("memory-only cache reports snapshots enabled")
	}
	if err := c.Put(1, map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if _, tier := c.Get(1); tier != TierMemory {
		t.Error("memory-only put not readable")
	}
	if _, ok := c.GetSnapshot(1); ok {
		t.Error("memory-only snapshot get: want miss")
	}
	if err := c.PutSnapshot(1, PrefixSnapshot{LimitC: 1, Blob: []byte("x")}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheLRUEviction pins the memory bound: beyond capacity the
// least-recently-used entry leaves the memory tier (but survives on
// disk).
func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(1); key <= 3; key++ {
		if err := c.Put(key, map[string]float64{"k": float64(key)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().MemEntries; got != 2 {
		t.Fatalf("mem entries: %d, want 2", got)
	}
	// Key 1 is the eviction victim: it must come back from disk.
	if _, tier := c.Get(1); tier != TierDisk {
		t.Errorf("evicted key: want disk hit")
	}
	if _, tier := c.Get(3); tier != TierMemory {
		t.Errorf("recent key: want memory hit")
	}
}

// TestCacheCorruptEntry is the corrupted-store contract: a truncated,
// garbage, wrong-magic or trailing-bytes cell file is a miss — counted
// but never an error or a crash — and a later Put repairs it.
func TestCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	const key = 42
	want := testMetrics()
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	path := c.cellPath(key)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][]byte{
		"truncated-header": good[:len(cellMagic)+2],
		"truncated-body":   good[:len(good)-3],
		"wrong-magic":      append([]byte("simd-cell/9\n"), good[len(cellMagic):]...),
		"trailing-bytes":   append(append([]byte(nil), good...), 0xff),
		"hostile-count":    append([]byte(cellMagic), 0xff, 0xff, 0xff, 0xff),
		"garbage":          []byte("not a cache file"),
		"empty":            {},
	}
	for name, data := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			fresh, err := NewCache(dir, 8)
			if err != nil {
				t.Fatal(err)
			}
			before := fresh.Stats().CorruptEntries
			if m, tier := fresh.Get(key); tier != TierMiss {
				t.Fatalf("corrupt entry served: tier %v, metrics %v", tier, m)
			}
			st := fresh.Stats()
			if st.CorruptEntries != before+1 {
				t.Errorf("corrupt counter: %d, want %d", st.CorruptEntries, before+1)
			}
			if err := fresh.Put(key, want); err != nil {
				t.Fatal(err)
			}
			again, err := NewCache(dir, 8)
			if err != nil {
				t.Fatal(err)
			}
			if m, tier := again.Get(key); tier != TierDisk || !metricsBitwiseEqual(m, want) {
				t.Errorf("repaired entry: tier %v", tier)
			}
		})
	}
}

// TestSnapshotStore pins the prefix-snapshot round trip, the
// first-writer-wins overwrite rule, and corrupt-snapshot rejection.
func TestSnapshotStore(t *testing.T) {
	c, err := NewCache(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = 7
	if _, ok := c.GetSnapshot(prefix); ok {
		t.Fatal("empty store returned a snapshot")
	}
	first := PrefixSnapshot{LimitC: 58.5, Step: 1200, Blob: []byte("engine-state-blob")}
	if err := c.PutSnapshot(prefix, first); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetSnapshot(prefix)
	if !ok || got.LimitC != first.LimitC || got.Step != first.Step || !bytes.Equal(got.Blob, first.Blob) {
		t.Fatalf("round trip: got %+v ok=%v", got, ok)
	}
	// Second writer loses.
	if err := c.PutSnapshot(prefix, PrefixSnapshot{LimitC: 99, Step: 1, Blob: []byte("other")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.GetSnapshot(prefix); got.LimitC != first.LimitC {
		t.Errorf("first-writer-wins violated: limit %v", got.LimitC)
	}
	// Corruption is a miss.
	if err := os.WriteFile(c.snapPath(prefix), []byte(snapMagic+"short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetSnapshot(prefix); ok {
		t.Error("corrupt snapshot served")
	}
	if c.Stats().CorruptEntries == 0 {
		t.Error("corrupt snapshot not counted")
	}
}

// TestCacheLayoutVersioned pins the on-disk layout contract: paths
// derive from the mobisim content-key domain strings, so a domain bump
// retires the store automatically.
func TestCacheLayoutVersioned(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(0xab, map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	wantCell := filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(mobisim.CellKeyDomain, "\x00")), "00000000000000ab.cell")
	if _, err := os.Stat(wantCell); err != nil {
		t.Errorf("cell entry not at domain-derived path %s: %v", wantCell, err)
	}
	if err := c.PutSnapshot(0xcd, PrefixSnapshot{LimitC: 1, Step: 1, Blob: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	wantSnap := filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(mobisim.PrefixKeyDomain, "\x00")), "00000000000000cd.snap")
	if _, err := os.Stat(wantSnap); err != nil {
		t.Errorf("snapshot entry not at domain-derived path %s: %v", wantSnap, err)
	}
}
