package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/mobisim"
)

func testMatrix() mobisim.Matrix {
	return mobisim.Matrix{
		Platforms:  []string{mobisim.PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{mobisim.GovAppAware, mobisim.GovNone},
		LimitsC:    []float64{58, 70},
		Replicates: 1,
		DurationS:  2,
		BaseSeed:   3,
	}
}

// coldSweepJSON is the reference body: mobisim.RunSweep output encoded
// exactly as the daemon encodes job results.
func coldSweepJSON(t *testing.T, m mobisim.Matrix) []byte {
	t.Helper()
	out, err := mobisim.RunSweep(context.Background(), m, mobisim.SweepConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func matrixBody(t *testing.T, m mobisim.Matrix, extra string) string {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"matrix": %s%s}`, raw, extra)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("submit response: %v\n%s", err, data)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want ...JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State == JobFailed || st.State == JobCanceled {
			t.Fatalf("job %s reached %s (error: %s) waiting for %v", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %v", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestServerJobByteIdentityAndCacheHit is the tentpole contract test:
// a job's result body is byte-identical to an in-process RunSweep of
// the same matrix, and re-submitting the identical matrix to the warm
// daemon re-simulates nothing — every cell a cache hit, the body still
// byte-identical.
func TestServerJobByteIdentityAndCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	want := coldSweepJSON(t, m)
	cells := m.ExpandedSize()

	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())

	st, resp := postJob(t, ts, matrixBody(t, m, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location header: %q", loc)
	}
	if st.Cells != cells {
		t.Errorf("cells: %d, want %d", st.Cells, cells)
	}
	done := waitState(t, ts, st.ID, JobDone)
	if done.Computed != cells || done.CacheHits != 0 {
		t.Errorf("cold job counters: %+v", done)
	}
	body1 := getResult(t, ts, st.ID)
	if !bytes.Equal(body1, want) {
		t.Errorf("job result differs from RunSweep:\nwant:\n%s\ngot:\n%s", want, body1)
	}

	st2, _ := postJob(t, ts, matrixBody(t, m, ""))
	done2 := waitState(t, ts, st2.ID, JobDone)
	if done2.CacheHits != cells || done2.Computed != 0 {
		t.Errorf("warm job not fully cached: %+v", done2)
	}
	body2 := getResult(t, ts, st2.ID)
	if !bytes.Equal(body1, body2) {
		t.Errorf("cache-hit body differs from cold body")
	}

	// /v1/stats must agree: every cell simulated exactly once overall.
	var stats Stats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scheduler.Computed != uint64(cells) {
		t.Errorf("scheduler computed %d cells, want %d", stats.Scheduler.Computed, cells)
	}
	if stats.Cache.HitRate != 0.5 {
		t.Errorf("hit rate: %v, want 0.5 (one cold + one warm pass)", stats.Cache.HitRate)
	}
	if stats.Cells.Completed != uint64(2*cells) {
		t.Errorf("cells completed: %d", stats.Cells.Completed)
	}
	if stats.Jobs[JobDone] != 2 {
		t.Errorf("done jobs: %d", stats.Jobs[JobDone])
	}
}

// TestServerConcurrentClients is the concurrency satellite: N clients
// submit the same matrix simultaneously to a daemon with a cold cache;
// the cells must be simulated exactly once in total (singleflight +
// cache dedup across jobs), every response byte-identical to a cold
// RunSweep.
func TestServerConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	want := coldSweepJSON(t, m)
	cells := m.ExpandedSize()
	const clients = 3

	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: clients, CellWorkers: 2})
	srv.Start()
	defer srv.Shutdown(context.Background())

	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := postJob(t, ts, matrixBody(t, m, ""))
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: submit status %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	totalComputed, totalOther := 0, 0
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		done := waitState(t, ts, id, JobDone)
		totalComputed += done.Computed
		totalOther += done.CacheHits + done.Deduped
		if body := getResult(t, ts, id); !bytes.Equal(body, want) {
			t.Errorf("job %s body differs from cold RunSweep", id)
		}
	}
	st := srv.sched.Stats()
	if st.Computed != uint64(cells) {
		t.Errorf("scheduler simulated %d cells, want exactly %d", st.Computed, cells)
	}
	if totalComputed != cells {
		t.Errorf("jobs report %d computed cells, want %d", totalComputed, cells)
	}
	if totalOther != (clients-1)*cells {
		t.Errorf("jobs report %d dedup/hit cells, want %d", totalOther, (clients-1)*cells)
	}
}

// TestServerDrain pins graceful shutdown: once draining, healthz flips
// to 503 and new submissions are refused, but the in-flight job runs
// to completion and its result stays retrievable.
func TestServerDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1})
	srv.Start()

	st, _ := postJob(t, ts, matrixBody(t, m, ""))
	waitState(t, ts, st.ID, JobRunning, JobDone)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()

	// Draining is observable almost immediately; the job keeps running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, resp := postJob(t, ts, matrixBody(t, m, "")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: %d, want 503", resp.StatusCode)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if got := getStatus(t, ts, st.ID); got.State != JobDone {
		t.Fatalf("drained job state: %s, want done", got.State)
	}
	if body := getResult(t, ts, st.ID); len(body) == 0 {
		t.Error("drained job has no result")
	}
}

// TestServerHardShutdown pins the expiry path: a shutdown context that
// is already done hard-cancels the running job, Shutdown returns the
// context error, and the job lands in canceled.
func TestServerHardShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	long := testMatrix()
	long.DurationS = 120 // far beyond the test's patience: must be canceled, not drained
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1})
	srv.Start()
	st, _ := postJob(t, ts, matrixBody(t, long, ""))
	waitState(t, ts, st.ID, JobRunning)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("hard shutdown error: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, st.ID).State != JobCanceled {
		if time.Now().After(deadline) {
			t.Fatalf("job state after hard shutdown: %s, want canceled", getStatus(t, ts, st.ID).State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerBackpressure pins bounded admission: with no workers
// draining the queue, submissions beyond QueueCap answer 429 with a
// Retry-After header and don't register a job.
func TestServerBackpressure(t *testing.T) {
	m := mobisim.Matrix{
		Platforms: []string{mobisim.PlatformOdroidXU3}, Workloads: []string{"3dmark"},
		Governors: []string{mobisim.GovNone}, DurationS: 1, BaseSeed: 1,
	}
	_, ts := newTestServer(t, Config{QueueCap: 1}) // Start never called
	if _, resp := postJob(t, ts, matrixBody(t, m, "")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts, matrixBody(t, m, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestServerCancelJob pins DELETE: a queued job (no workers running)
// transitions to canceled and its result endpoint answers 409.
func TestServerCancelJob(t *testing.T) {
	m := mobisim.Matrix{
		Platforms: []string{mobisim.PlatformOdroidXU3}, Workloads: []string{"3dmark"},
		Governors: []string{mobisim.GovNone}, DurationS: 1, BaseSeed: 1,
	}
	_, ts := newTestServer(t, Config{QueueCap: 4})
	st, _ := postJob(t, ts, matrixBody(t, m, ""))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status: %d", resp.StatusCode)
	}
	if got := getStatus(t, ts, st.ID); got.State != JobCanceled {
		t.Fatalf("state after cancel: %s", got.State)
	}
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job: %d, want 409", rresp.StatusCode)
	}
}

// TestServerRequestValidation pins the 4xx surface.
func TestServerRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := []struct {
		name, body string
	}{
		{"empty-object", `{}`},
		{"both-specs", `{"matrix": {"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"duration_s":1}, "scenario": {"platform":"odroid-xu3","workload":"3dmark","duration_s":1}}`},
		{"unknown-field", `{"matrx": {}}`},
		{"trailing-data", `{"scenario": {"platform":"odroid-xu3","workload":"3dmark","duration_s":1}} extra`},
		{"invalid-matrix", `{"matrix": {"platforms":["no-such-device"],"workloads":["3dmark"],"governors":["none"],"duration_s":1}}`},
		{"not-json", `not json`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := postJob(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400", resp.StatusCode)
			}
		})
	}
	// Unknown job id.
	resp, err := http.Get(ts.URL + "/v1/jobs/j-nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	// Method misuse.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: %d, want 405", resp.StatusCode)
	}
}

// TestServerSSE pins the event feed: a subscriber attaching after
// completion replays the full retained history — one cell event per
// cell, a job transition, and the terminal end event — as well-formed
// SSE frames.
func TestServerSSE(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := mobisim.Matrix{
		Platforms: []string{mobisim.PlatformOdroidXU3}, Workloads: []string{"3dmark"},
		Governors: []string{mobisim.GovNone}, Replicates: 2, DurationS: 1, BaseSeed: 5,
	}
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())

	st, _ := postJob(t, ts, matrixBody(t, m, `, "stream_samples": true`))
	waitState(t, ts, st.ID, JobDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type: %q", ct)
	}
	data, err := io.ReadAll(resp.Body) // broker is closed: stream ends
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			counts[after]++
		}
	}
	if counts["cell"] != m.ExpandedSize() {
		t.Errorf("cell events: %d, want %d\n%s", counts["cell"], m.ExpandedSize(), data)
	}
	if counts["end"] != 1 {
		t.Errorf("end events: %d, want 1", counts["end"])
	}
	if counts["job"] == 0 {
		t.Error("no job lifecycle event")
	}
	// Every data line must be valid JSON (NaN sanitization).
	for _, line := range strings.Split(string(data), "\n") {
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			if !json.Valid([]byte(after)) {
				t.Errorf("invalid JSON payload: %s", after)
			}
		}
	}
}

// TestServerScenarioJob pins the single-scenario path end to end,
// including key-level caching across distinct submissions.
func TestServerScenarioJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())

	body := `{"scenario": {"platform":"odroid-xu3","workload":"3dmark","governor":"none","duration_s":1,"seed":7}}`
	st, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted || st.Cells != 1 {
		t.Fatalf("scenario submit: %d, cells %d", resp.StatusCode, st.Cells)
	}
	waitState(t, ts, st.ID, JobDone)
	first := getResult(t, ts, st.ID)

	st2, _ := postJob(t, ts, body)
	done2 := waitState(t, ts, st2.ID, JobDone)
	if done2.CacheHits != 1 || done2.Computed != 0 {
		t.Errorf("re-submitted scenario not cached: %+v", done2)
	}
	if !bytes.Equal(first, getResult(t, ts, st2.ID)) {
		t.Error("scenario cache hit not byte-identical")
	}
}
