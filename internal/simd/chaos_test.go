package simd

// Chaos and fault-injection property tests: the daemon is crashed
// mid-job (Server.Kill simulates power loss: no terminal journal
// records, no graceful anything), restarted on the same directory, and
// its recovered answers are byte-compared against a cold single-run
// oracle. Scripted filesystem faults (torn writes, ENOSPC, unusable
// directories) must demote durability — visibly, via /healthz and
// /v1/stats — and never change, truncate or fail a job's result.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/pkg/mobisim"
	"repro/pkg/simclient"
)

// chaosMatrix is the crash-window matrix: enough cells that a kill
// reliably lands mid-job when cell completions are latency-injected.
func chaosMatrix() mobisim.Matrix {
	return mobisim.Matrix{
		Platforms:  []string{mobisim.PlatformOdroidXU3},
		Workloads:  []string{"3dmark+bml"},
		Governors:  []string{mobisim.GovAppAware},
		LimitsC:    []float64{55, 58, 61, 64, 70},
		Replicates: 2,
		DurationS:  2,
		BaseSeed:   11,
	}
}

func serverStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func serverHealth(t *testing.T, ts *httptest.Server) Health {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestServerCrashRecoveryByteIdentity is the tentpole chaos test: kill
// the daemon mid-job (simulated power loss), restart on the same
// directory, and the recovered job — same ID, resumed from the journal
// — produces a result byte-identical to a cold single-run oracle, with
// the pre-crash cells served from the cache instead of resimulated.
func TestServerCrashRecoveryByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := chaosMatrix()
	want := coldSweepJSON(t, m)
	dir := t.TempDir()

	// Latency on cell-cache writes widens the kill window without
	// changing any bytes.
	inj := faultfs.NewInjector(nil).Add(faultfs.Rule{
		Op: faultfs.OpCreate, PathContains: "cellkey",
		Latency: 25 * time.Millisecond, LatencyOnly: true,
	})
	srv1, ts1 := newTestServer(t, Config{CacheDir: dir, JobWorkers: 1, CellWorkers: 1, FS: inj})
	srv1.Start()

	st, resp := postJob(t, ts1, matrixBody(t, m, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		cur := getStatus(t, ts1, st.ID)
		if cur.State == JobDone {
			t.Fatal("job finished before the kill; widen the injected latency")
		}
		if cur.Completed >= 2 && cur.Completed < cur.Cells {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the kill window (status %+v)", cur)
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Kill()
	ts1.Close()

	// Restart on the same directory: the journal replays the submit
	// record, sees no terminal record, and re-enqueues the job.
	srv2, ts2 := newTestServer(t, Config{CacheDir: dir, JobWorkers: 1})
	if got := srv2.Recovered(); got != 1 {
		t.Fatalf("recovered jobs: %d, want 1", got)
	}
	srv2.Start()
	defer srv2.Shutdown(context.Background())

	done := waitState(t, ts2, st.ID, JobDone)
	if done.ID != st.ID {
		t.Errorf("recovered job id %q, want original %q", done.ID, st.ID)
	}
	if done.CacheHits == 0 {
		t.Error("recovered run served no cells from cache; pre-crash work was lost")
	}
	if done.CacheHits+done.Computed+done.Deduped != done.Cells {
		t.Errorf("recovered run cell accounting broken: %+v", done)
	}
	body := getResult(t, ts2, st.ID)
	if !bytes.Equal(body, want) {
		t.Errorf("recovered result differs from cold oracle:\nwant:\n%s\ngot:\n%s", want, body)
	}

	stats := serverStats(t, ts2)
	if stats.Recovered.Jobs != 1 {
		t.Errorf("stats recovered jobs: %d, want 1", stats.Recovered.Jobs)
	}
	if !stats.Journal.Enabled {
		t.Error("journal must stay enabled after recovery")
	}

	// A fresh resubmission on the warm daemon is all cache hits and
	// still byte-identical.
	st2, _ := postJob(t, ts2, matrixBody(t, m, ""))
	done2 := waitState(t, ts2, st2.ID, JobDone)
	if done2.CacheHits != done2.Cells {
		t.Errorf("post-recovery resubmission not fully cached: %+v", done2)
	}
	if body2 := getResult(t, ts2, st2.ID); !bytes.Equal(body2, want) {
		t.Error("post-recovery resubmission differs from cold oracle")
	}
}

// TestServerJournalTornWriteDegrades pins the degradation policy: a
// torn journal append demotes journaling (visible in /healthz and
// /v1/stats), the in-flight job still completes with oracle bytes, and
// a restart on the torn directory recovers cleanly — the torn tail is
// truncated, nothing resurrects wrong.
func TestServerJournalTornWriteDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	want := coldSweepJSON(t, m)
	dir := t.TempDir()

	// Skip: 1 lets the open-time compaction write pass; the submit
	// record is then torn three bytes in.
	inj := faultfs.NewInjector(nil).Add(faultfs.Rule{
		Op: faultfs.OpWrite, PathContains: "journal",
		Torn: true, TornAt: 3, Count: 1, Skip: 1,
	})
	srv1, ts1 := newTestServer(t, Config{CacheDir: dir, JobWorkers: 1, FS: inj})
	srv1.Start()

	st, resp := postJob(t, ts1, matrixBody(t, m, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after torn journal write: %d (the request must not fail)", resp.StatusCode)
	}
	done := waitState(t, ts1, st.ID, JobDone)
	if body := getResult(t, ts1, done.ID); !bytes.Equal(body, want) {
		t.Error("result under journal fault differs from cold oracle")
	}
	if !srv1.Degraded() {
		t.Error("torn journal write must degrade the daemon")
	}
	h := serverHealth(t, ts1)
	if !h.Degraded || len(h.Reasons) == 0 {
		t.Errorf("/healthz must report the demotion: %+v", h)
	}
	stats := serverStats(t, ts1)
	if stats.Journal.AppendErrors == 0 {
		t.Error("stats must count the journal append error")
	}
	if len(stats.DegradedReasons) == 0 {
		t.Error("stats must carry the demotion reasons")
	}
	if inj.Injected(faultfs.OpWrite) != 1 {
		t.Fatalf("scripted fault fired %d times, want 1", inj.Injected(faultfs.OpWrite))
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	// Restart without faults: the torn record is truncated (counted,
	// not fatal), no job resurrects, and the cached cells answer a
	// resubmission byte-identically.
	srv2, ts2 := newTestServer(t, Config{CacheDir: dir, JobWorkers: 1})
	if got := srv2.Recovered(); got != 0 {
		t.Fatalf("recovered jobs after torn submit record: %d, want 0", got)
	}
	if srv2.Degraded() {
		t.Error("a truncated tail is repair, not degradation")
	}
	srv2.Start()
	defer srv2.Shutdown(context.Background())
	st2, _ := postJob(t, ts2, matrixBody(t, m, ""))
	done2 := waitState(t, ts2, st2.ID, JobDone)
	if done2.CacheHits != done2.Cells {
		t.Errorf("restart resubmission not fully cached: %+v", done2)
	}
	if body := getResult(t, ts2, st2.ID); !bytes.Equal(body, want) {
		t.Error("restart resubmission differs from cold oracle")
	}
}

// TestServerCacheENOSPCStillCorrect pins the no-wrong-results property
// under disk exhaustion: every cell-cache write fails with ENOSPC, the
// job completes with oracle bytes anyway, and the lost writes only
// cost future hits.
func TestServerCacheENOSPCStillCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	want := coldSweepJSON(t, m)

	inj := faultfs.NewInjector(nil).Add(faultfs.Rule{
		Op: faultfs.OpCreate, PathContains: "cellkey", Err: faultfs.ErrNoSpace,
	})
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1, FS: inj})
	srv.Start()
	defer srv.Shutdown(context.Background())

	st, _ := postJob(t, ts, matrixBody(t, m, ""))
	waitState(t, ts, st.ID, JobDone)
	if body := getResult(t, ts, st.ID); !bytes.Equal(body, want) {
		t.Error("result under ENOSPC differs from cold oracle")
	}
	if inj.Injected(faultfs.OpCreate) == 0 {
		t.Fatal("ENOSPC script never fired; the test exercised nothing")
	}
}

// TestServerUnusableCacheDirDegrades pins construction-time demotion:
// a cache root that cannot be created demotes the daemon to
// memory-only — visibly — instead of failing construction, and jobs
// still produce oracle bytes.
func TestServerUnusableCacheDirDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	want := coldSweepJSON(t, m)

	inj := faultfs.NewInjector(nil).Add(faultfs.Rule{Op: faultfs.OpMkdir, Err: faultfs.ErrNoSpace})
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1, FS: inj})
	srv.Start()
	defer srv.Shutdown(context.Background())

	if !srv.Degraded() {
		t.Fatal("unusable cache dir must degrade, not fail")
	}
	if srv.Cache().Dir() != "" {
		t.Error("demoted daemon must run a memory-only cache")
	}
	if srv.Journal() != nil {
		t.Error("memory-only daemon must run journal-less")
	}
	h := serverHealth(t, ts)
	if !h.Degraded {
		t.Errorf("/healthz: %+v", h)
	}
	st, _ := postJob(t, ts, matrixBody(t, m, ""))
	waitState(t, ts, st.ID, JobDone)
	if body := getResult(t, ts, st.ID); !bytes.Equal(body, want) {
		t.Error("memory-only result differs from cold oracle")
	}
}

// TestServerMaxBodyBytes pins the submission body bound: a body over
// Config.MaxBodyBytes answers 413, and the daemon stays healthy.
func TestServerMaxBodyBytes(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	srv.Start()
	defer srv.Shutdown(context.Background())

	big := fmt.Sprintf(`{"matrix": {"workloads": [%q]}}`, strings.Repeat("x", 128))
	_, resp := postJob(t, ts, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}
	if h := serverHealth(t, ts); h.Status != "ok" {
		t.Errorf("daemon unhealthy after 413: %+v", h)
	}
}

// TestServerIdempotentResubmission pins the dedup contract: the same
// envelope with the same Idempotency-Key attaches to the existing job
// (200, same id); without the header every submission is a new job.
func TestServerIdempotentResubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	body := matrixBody(t, m, "")
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())

	post := func(withKey bool) (JobStatus, int) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if withKey {
			req.Header.Set("Idempotency-Key", simclient.EnvelopeHash([]byte(body)))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st, resp.StatusCode
	}

	first, code := post(true)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	again, code := post(true)
	if code != http.StatusOK || again.ID != first.ID {
		t.Errorf("keyed resubmission: %d id %q, want 200 attaching to %q", code, again.ID, first.ID)
	}
	fresh, code := post(false)
	if code != http.StatusAccepted || fresh.ID == first.ID {
		t.Errorf("unkeyed resubmission: %d id %q, want 202 with a new job", code, fresh.ID)
	}
	waitState(t, ts, first.ID, JobDone)
	waitState(t, ts, fresh.ID, JobDone)
}

// readFrames reads raw SSE frames (everything up to a blank line) from
// r until stop returns true for an accumulated frame.
func readFrames(t *testing.T, r *bufio.Reader, stop func(n int, frame string) bool) []string {
	t.Helper()
	var frames []string
	var cur strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early after %d frames: %v", len(frames), err)
		}
		if line == "\n" {
			frames = append(frames, cur.String())
			cur.Reset()
			if stop(len(frames), frames[len(frames)-1]) {
				return frames
			}
			continue
		}
		cur.WriteString(line)
	}
}

func frameID(t *testing.T, frame string) int {
	t.Helper()
	for _, line := range strings.Split(frame, "\n") {
		if rest, ok := strings.CutPrefix(line, "id: "); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			return n
		}
	}
	t.Fatalf("frame without id:\n%s", frame)
	return 0
}

// TestServerSSEReconnectGapFree is the reconnect satellite: drop a
// subscriber mid-stream, reconnect with Last-Event-ID, and the stitched
// frames are byte-identical to one uninterrupted replay — no gaps, no
// duplicates.
func TestServerSSEReconnectGapFree(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	m := testMatrix()
	srv, ts := newTestServer(t, Config{JobWorkers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())

	st, _ := postJob(t, ts, matrixBody(t, m, ""))
	eventsURL := ts.URL + "/v1/jobs/" + st.ID + "/events"

	// First subscription: two frames, then drop the connection.
	resp, err := http.Get(eventsURL)
	if err != nil {
		t.Fatal(err)
	}
	head := readFrames(t, bufio.NewReader(resp.Body), func(n int, _ string) bool { return n == 2 })
	resp.Body.Close()
	lastID := frameID(t, head[1])

	waitState(t, ts, st.ID, JobDone)

	// Reconnect with Last-Event-ID: the daemon replays everything after
	// the drop, through the terminal event.
	req, err := http.NewRequest(http.MethodGet, eventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := readFrames(t, bufio.NewReader(resp2.Body), func(_ int, f string) bool {
		return strings.Contains(f, "event: end\n")
	})
	resp2.Body.Close()

	// One uninterrupted replay is the oracle.
	resp3, err := http.Get(eventsURL)
	if err != nil {
		t.Fatal(err)
	}
	full := readFrames(t, bufio.NewReader(resp3.Body), func(_ int, f string) bool {
		return strings.Contains(f, "event: end\n")
	})
	resp3.Body.Close()

	stitched := strings.Join(append(head, tail...), "\n")
	oracle := strings.Join(full, "\n")
	if stitched != oracle {
		t.Errorf("stitched replay differs from uninterrupted replay:\nstitched:\n%s\noracle:\n%s", stitched, oracle)
	}
	for i := 1; i < len(full); i++ {
		if frameID(t, full[i]) != frameID(t, full[i-1])+1 {
			t.Fatalf("replay ids not dense at frame %d:\n%s", i, oracle)
		}
	}
}

// TestRemoteExploreByteIdentity pins the -daemon acceptance contract:
// a design-space search evaluated remotely through simclient.Runner
// emits a trace byte-identical to local evaluation.
func TestRemoteExploreByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	fptr := func(v float64) *float64 { return &v }
	spec := mobisim.OptimizeSpec{
		Name: "chaos-remote-search",
		Scenario: mobisim.Scenario{
			Platform:  mobisim.PlatformOdroidXU3,
			Workload:  "gen-bursty+bml",
			Governor:  mobisim.GovAppAware,
			DurationS: 2,
			Seed:      42,
		},
		Objective:   mobisim.Objective{Metric: mobisim.MetricBMLIterations, Goal: mobisim.GoalMaximize},
		Constraints: []mobisim.Constraint{{Metric: mobisim.MetricPeakC, Max: fptr(90)}},
		Mutations: []mobisim.Mutation{
			{Param: mobisim.ParamLimitC, Min: 55, Max: 75, Step: 5},
			{Param: mobisim.ParamCPUGovernor, Values: []string{mobisim.CPUGovStock, mobisim.CPUGovPerformance}},
		},
		Neighbors:      3,
		MaxGenerations: 2,
		Patience:       2,
		Seed:           7,
	}

	encode := func(res *mobisim.SearchResult) []byte {
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	local, err := mobisim.Optimize(context.Background(), spec, mobisim.OptimizeConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := encode(local)

	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), JobWorkers: 2})
	srv.Start()
	defer srv.Shutdown(context.Background())

	runner := &simclient.Runner{Client: simclient.New(ts.URL)}
	remote, err := mobisim.Optimize(context.Background(), spec, mobisim.OptimizeConfig{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	got := encode(remote)
	if !bytes.Equal(got, want) {
		t.Errorf("remote search trace differs from local:\nlocal:\n%s\nremote:\n%s", want, got)
	}
	if remote.Cells == 0 {
		t.Error("remote search simulated no cells; the runner was never exercised")
	}
}
