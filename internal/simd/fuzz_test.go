package simd

// Fuzz harness for the daemon's job-submission decoder. Run
// continuously with
//
//	go test ./internal/simd -fuzz FuzzJobRequest
//
// Under plain `go test` the seed corpus runs as regression tests. The
// harness pins two contracts:
//
//  1. No request body can panic the decoder.
//  2. Parity with the CLI parsers: an accepted submission expands to a
//     non-empty, fully content-addressed cell set (every cell carries
//     a key that Spec.CellKey reproduces), because validation is
//     delegated verbatim to mobisim.ParseMatrix / ParseScenario.

import (
	"reflect"
	"testing"
)

// jobSeedCorpus wraps the mobisim matrix/scenario corpus shapes in the
// job-request envelope, plus envelope-level rejection cases (both
// specs, neither spec, unknown fields, trailing data).
var jobSeedCorpus = []string{
	// Accepted shapes.
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["3dmark+bml"],"governors":["appaware"],"limits_c":[55,65],"duration_s":2,"base_seed":1}}`,
	`{"matrix": {"platforms":["nexus6p","odroid-xu3"],"workloads":["paper.io","amazon"],"governors":["none"],"duration_s":1,"replicates":2}, "include_raw": true}`,
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["nenamark"],"governors":["ipa","none"],"limits_c":[60],"duration_s":3}, "stream_samples": true}`,
	`{"scenario": {"platform":"nexus6p","workload":"paper.io","duration_s":10}}`,
	`{"scenario": {"platform":"odroid-xu3","workload":"3dmark+bml","governor":"appaware","limit_c":60,"duration_s":120,"seed":3}}`,
	`{"scenario": {"workload":"gen-bursty","governor":"none","duration_s":2,"platform_spec":` + jobFuzzPlatformSpecJSON + `}}`,
	// Envelope rejections.
	`{}`,
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"duration_s":1}, "scenario": {"platform":"odroid-xu3","workload":"3dmark","duration_s":1}}`,
	`{"matrx": {}}`,
	`{"matrix": null}`,
	`{"scenario": {"platform":"odroid-xu3","workload":"3dmark","duration_s":1}} trailing`,
	`not json`,
	`null`,
	`[]`,
	// Spec-level rejections the inner parsers own.
	`{"matrix": {"platforms":[],"workloads":["3dmark"],"governors":["none"],"duration_s":1}}`,
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["quake"],"governors":["none"],"duration_s":1}}`,
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["psychic"],"duration_s":1}}`,
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["none"],"duration_s":1,"replicates":1000000000}}`,
	`{"matrix": {"platforms":["odroid-xu3"],"workloads":["3dmark"],"governors":["appaware"],"limits_c":[1e999],"duration_s":1}}`,
	`{"scenario": {"platform":"pixel9","workload":"paper.io","duration_s":1}}`,
	`{"scenario": {"platform":"nexus6p","workload":"paper.io","duration_s":1,"step_s":0.5}}`,
	`{"scenario": {"platform":"odroid-xu3","workload":"3dmark","governor":"appaware","limit_c":-400,"duration_s":1}}`,
	`{"matrix": `,
}

// jobFuzzPlatformSpecJSON mirrors the inline platform spec of the
// mobisim scenario corpus.
const jobFuzzPlatformSpecJSON = `{
  "name": "fuzzdie",
  "thermal_limit_c": 50,
  "nodes": [
    {"name": "little", "capacitance_j_per_k": 1.0},
    {"name": "big", "capacitance_j_per_k": 1.5},
    {"name": "gpu", "capacitance_j_per_k": 1.5},
    {"name": "board", "capacitance_j_per_k": 6, "g_ambient_w_per_k": 0.08}
  ],
  "couplings": [
    {"a": "little", "b": "board", "g_w_per_k": 0.5},
    {"a": "big", "b": "board", "g_w_per_k": 0.5},
    {"a": "gpu", "b": "board", "g_w_per_k": 0.5}
  ],
  "domains": [
    {"id": "little", "cores": 4, "ceff_f": 1.5e-10, "idle_w": 0.03, "leak_k": 1e-4,
     "opps": [{"freq_hz": 400000000, "voltage_v": 0.85}, {"freq_hz": 1200000000, "voltage_v": 1.05}]},
    {"id": "big", "cores": 4, "ceff_f": 6e-10, "idle_w": 0.05, "leak_k": 3e-4,
     "opps": [{"freq_hz": 400000000, "voltage_v": 0.9}, {"freq_hz": 1800000000, "voltage_v": 1.2}]},
    {"id": "gpu", "cores": 1, "ceff_f": 2e-9, "idle_w": 0.04, "leak_k": 2e-4,
     "opps": [{"freq_hz": 200000000, "voltage_v": 0.85}, {"freq_hz": 600000000, "voltage_v": 1.05}]}
  ],
  "sensor": {"node": "big"}
}`

func FuzzJobRequest(f *testing.F) {
	for _, seed := range jobSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJobRequest(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if len(spec.Cells) == 0 {
			t.Fatalf("accepted job expanded to zero cells\nbody: %s", data)
		}
		seen := make(map[uint64]int, len(spec.Cells))
		for i, c := range spec.Cells {
			key, err := c.Spec.CellKey()
			if err != nil {
				t.Fatalf("accepted cell %d has no reproducible key: %v\nbody: %s", i, err, data)
			}
			if key != c.Key {
				t.Fatalf("cell %d: stored key %016x != recomputed %016x\nbody: %s", i, c.Key, key, data)
			}
			// Cells may legitimately share a key (duplicated axis values
			// expand to identical cells), but a shared key must mean an
			// identical executed spec — a false collision would serve one
			// cell's metrics as another's.
			if prev, ok := seen[key]; ok {
				if !reflect.DeepEqual(spec.Cells[prev].Spec, c.Spec) {
					t.Fatalf("cells %d and %d share key %016x with different specs\nbody: %s", prev, i, key, data)
				}
			} else {
				seen[key] = i
			}
		}
	})
}
