// Package simd is the sweep-as-a-service daemon behind cmd/simd: a
// long-running HTTP server that accepts Matrix/Scenario specs as jobs,
// expands them into content-addressed cells (mobisim.Cell), runs them
// on the existing internal/sweep worker pool through a singleflight
// scheduler, and never recomputes a cell whose CellKey it has seen —
// results live in a two-tier cache (in-memory LRU over an on-disk
// store) shared with the one-shot CLI via `sweep -cache-dir`.
//
// The load-bearing invariant is byte-identity: a cache-hit response is
// byte-identical to a cold run of the same cell, because the cache
// round-trips metric values bitwise (IEEE-754 bit patterns, not
// decimal renderings) and responses are assembled through the same
// mobisim aggregation tail RunSweep uses.
package simd

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/pkg/mobisim"
)

// Tier says where a cache lookup was satisfied.
type Tier int

const (
	// TierMiss means the key is unknown to both tiers.
	TierMiss Tier = iota
	// TierMemory is an in-memory LRU hit.
	TierMemory
	// TierDisk is an on-disk hit (the entry is promoted to memory).
	TierDisk
)

// On-disk entry formats. Every file starts with a magic line; decoding
// is strict, and any malformed, truncated or short file is treated as
// a cache miss, never an error — a corrupted store degrades to
// recomputation, not to a crashed daemon.
const (
	cellMagic = "simd-cell/1\n"
	snapMagic = "simd-snap/1\n"
	// decode bounds: a corrupt length field must not drive allocation.
	maxCellMetrics    = 1 << 12
	maxMetricNameLen  = 1 << 10
	maxSnapshotLength = 1 << 30
)

// DefaultMemCacheCap bounds the in-memory result tier when the caller
// passes no capacity.
const DefaultMemCacheCap = 4096

// CacheStats is an atomic snapshot of the cache counters.
type CacheStats struct {
	MemHits        uint64 `json:"mem_hits"`
	DiskHits       uint64 `json:"disk_hits"`
	Misses         uint64 `json:"misses"`
	Stores         uint64 `json:"stores"`
	StoreErrors    uint64 `json:"store_errors"`
	CorruptEntries uint64 `json:"corrupt_entries"`
	SnapshotHits   uint64 `json:"snapshot_hits"`
	SnapshotStores uint64 `json:"snapshot_stores"`
	MemEntries     int    `json:"mem_entries"`
}

// HitRate returns hits/(hits+misses), 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.MemHits + s.DiskHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.MemHits+s.DiskHits) / float64(total)
}

// Cache is the two-tier content-addressed result cache: an in-memory
// LRU over an optional on-disk store keyed by CellKey, plus an on-disk
// prefix-snapshot store keyed by PrefixKey so uncached cells can
// warm-start from checkpoints recorded by earlier runs. All methods
// are safe for concurrent use.
type Cache struct {
	fs  faultfs.FS
	dir string // "" = memory-only (and no snapshot store)
	cap int

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[uint64]*list.Element

	memHits, diskHits, misses  atomic.Uint64
	stores, storeErrs, corrupt atomic.Uint64
	snapHits, snapStores       atomic.Uint64
}

type cacheEntry struct {
	key     uint64
	metrics map[string]float64
}

// NewCache opens (creating if needed) a cache rooted at dir; an empty
// dir keeps the cache memory-only and disables the snapshot store.
// capacity bounds the memory tier (<= 0 uses DefaultMemCacheCap).
//
// The disk layout is versioned by the mobisim content-key domain
// strings: cell results live under dir/<CellKeyDomain> and prefix
// snapshots under dir/<PrefixKeyDomain> (NUL terminator stripped,
// slashes as path separators), so a domain bump in mobisim retires the
// old directories automatically — stale entries can never be read
// under a new hash schema.
func NewCache(dir string, capacity int) (*Cache, error) {
	return NewCacheFS(nil, dir, capacity)
}

// NewCacheFS is NewCache over an explicit filesystem seam; fsys nil
// means the real OS filesystem. Chaos tests pass a faultfs.Injector to
// script write faults against the store.
func NewCacheFS(fsys faultfs.FS, dir string, capacity int) (*Cache, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if capacity <= 0 {
		capacity = DefaultMemCacheCap
	}
	c := &Cache{fs: fsys, dir: dir, cap: capacity, lru: list.New(), byKey: make(map[uint64]*list.Element)}
	if dir != "" {
		for _, d := range []string{c.cellDir(), c.snapDir()} {
			if err := fsys.MkdirAll(d, 0o755); err != nil {
				return nil, fmt.Errorf("simd: cache dir: %w", err)
			}
		}
	}
	return c, nil
}

// domainDir maps a versioned content-key domain string to its store
// directory under root.
func domainDir(root, domain string) string {
	return filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(domain, "\x00")))
}

func (c *Cache) cellDir() string { return domainDir(c.dir, mobisim.CellKeyDomain) }
func (c *Cache) snapDir() string { return domainDir(c.dir, mobisim.PrefixKeyDomain) }

func (c *Cache) cellPath(key uint64) string {
	return filepath.Join(c.cellDir(), fmt.Sprintf("%016x.cell", key))
}

func (c *Cache) snapPath(prefix uint64) string {
	return filepath.Join(c.snapDir(), fmt.Sprintf("%016x.snap", prefix))
}

// SnapshotsEnabled reports whether the prefix-snapshot store is
// available (it is disk-backed only).
func (c *Cache) SnapshotsEnabled() bool { return c.dir != "" }

// Dir returns the on-disk store root ("" for memory-only).
func (c *Cache) Dir() string { return c.dir }

// Get looks the key up in memory, then on disk (promoting a disk hit
// into the memory tier). The returned map is the caller's to keep.
func (c *Cache) Get(key uint64) (map[string]float64, Tier) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		m := copyMetrics(el.Value.(*cacheEntry).metrics)
		c.mu.Unlock()
		c.memHits.Add(1)
		return m, TierMemory
	}
	c.mu.Unlock()
	if c.dir != "" {
		data, err := c.fs.ReadFile(c.cellPath(key))
		if err == nil {
			if m, derr := decodeCell(data); derr == nil {
				c.admit(key, m)
				c.diskHits.Add(1)
				return copyMetrics(m), TierDisk
			}
			// A corrupted or truncated entry is a miss, not a crash;
			// the next Put overwrites it atomically.
			c.corrupt.Add(1)
		} else if !errors.Is(err, os.ErrNotExist) {
			c.corrupt.Add(1)
		}
	}
	c.misses.Add(1)
	return nil, TierMiss
}

// Put stores the metrics under key in both tiers. A disk write failure
// is counted but not fatal: the memory tier still serves the entry.
func (c *Cache) Put(key uint64, metrics map[string]float64) error {
	c.admit(key, copyMetrics(metrics))
	c.stores.Add(1)
	if c.dir == "" {
		return nil
	}
	if err := writeFileAtomic(c.fs, c.cellPath(key), encodeCell(metrics)); err != nil {
		c.storeErrs.Add(1)
		return fmt.Errorf("simd: cache put %016x: %w", key, err)
	}
	return nil
}

// admit inserts (or refreshes) a memory-tier entry, evicting from the
// LRU tail beyond capacity.
func (c *Cache) admit(key uint64, metrics map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).metrics = metrics
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, metrics: metrics})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		MemHits:        c.memHits.Load(),
		DiskHits:       c.diskHits.Load(),
		Misses:         c.misses.Load(),
		Stores:         c.stores.Load(),
		StoreErrors:    c.storeErrs.Load(),
		CorruptEntries: c.corrupt.Load(),
		SnapshotHits:   c.snapHits.Load(),
		SnapshotStores: c.snapStores.Load(),
		MemEntries:     entries,
	}
}

// PrefixSnapshot is a reusable warm-start checkpoint of a prefix
// group: the engine state Blob at step Step of a run whose effective
// thermal limit was LimitC, taken before that run's first
// limit-dependent control action. By the warm-start monotonicity
// argument (pkg/mobisim/warmstart.go), the checkpoint is bitwise-valid
// for any cell of the same prefix group whose effective limit is
// >= LimitC and whose horizon is >= Step steps.
type PrefixSnapshot struct {
	LimitC float64
	Step   int
	Blob   []byte
}

// GetSnapshot loads the prefix group's stored checkpoint; ok is false
// when the store is disabled, the entry is absent, or it is corrupt.
func (c *Cache) GetSnapshot(prefix uint64) (PrefixSnapshot, bool) {
	if c.dir == "" {
		return PrefixSnapshot{}, false
	}
	data, err := c.fs.ReadFile(c.snapPath(prefix))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			c.corrupt.Add(1)
		}
		return PrefixSnapshot{}, false
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		c.corrupt.Add(1)
		return PrefixSnapshot{}, false
	}
	c.snapHits.Add(1)
	return snap, true
}

// PutSnapshot stores a checkpoint for the prefix group unless one
// already exists (first writer wins: the reuse gate in the scheduler
// compares against the stored limit, so a stable entry beats a
// ping-ponging one).
func (c *Cache) PutSnapshot(prefix uint64, snap PrefixSnapshot) error {
	if c.dir == "" {
		return nil
	}
	if _, err := c.fs.Stat(c.snapPath(prefix)); err == nil {
		return nil
	}
	if err := writeFileAtomic(c.fs, c.snapPath(prefix), encodeSnapshot(snap)); err != nil {
		c.storeErrs.Add(1)
		return fmt.Errorf("simd: snapshot put %016x: %w", prefix, err)
	}
	c.snapStores.Add(1)
	return nil
}

// encodeCell renders a metric set canonically: magic, count, then
// (name, IEEE-754 bits) pairs in sorted name order. Values round-trip
// bitwise — including NaN and infinities, which JSON could not carry —
// so a cache hit reproduces a cold run's metrics exactly.
func encodeCell(m map[string]float64) []byte {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := []byte(cellMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m[name]))
	}
	return buf
}

var errCorrupt = errors.New("simd: corrupt cache entry")

// decodeCell strictly parses encodeCell's format; any deviation —
// wrong magic, short buffer, hostile lengths, trailing bytes — returns
// errCorrupt.
func decodeCell(data []byte) (map[string]float64, error) {
	rest, ok := strings.CutPrefix(string(data), cellMagic)
	if !ok {
		return nil, errCorrupt
	}
	b := []byte(rest)
	if len(b) < 4 {
		return nil, errCorrupt
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if count > maxCellMetrics {
		return nil, errCorrupt
	}
	m := make(map[string]float64, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 2 {
			return nil, errCorrupt
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if n > maxMetricNameLen || len(b) < n+8 {
			return nil, errCorrupt
		}
		name := string(b[:n])
		b = b[n:]
		m[name] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) != 0 {
		return nil, errCorrupt
	}
	return m, nil
}

// encodeSnapshot renders a prefix checkpoint: magic, limit bits, step,
// blob length, blob.
func encodeSnapshot(s PrefixSnapshot) []byte {
	buf := []byte(snapMagic)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.LimitC))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Step))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Blob)))
	return append(buf, s.Blob...)
}

// decodeSnapshot strictly parses encodeSnapshot's format.
func decodeSnapshot(data []byte) (PrefixSnapshot, error) {
	rest, ok := strings.CutPrefix(string(data), snapMagic)
	if !ok {
		return PrefixSnapshot{}, errCorrupt
	}
	b := []byte(rest)
	if len(b) < 24 {
		return PrefixSnapshot{}, errCorrupt
	}
	limit := math.Float64frombits(binary.LittleEndian.Uint64(b))
	step := binary.LittleEndian.Uint64(b[8:])
	blobLen := binary.LittleEndian.Uint64(b[16:])
	b = b[24:]
	if step > maxSnapshotLength || blobLen > maxSnapshotLength || uint64(len(b)) != blobLen {
		return PrefixSnapshot{}, errCorrupt
	}
	if math.IsNaN(limit) || math.IsInf(limit, 0) {
		return PrefixSnapshot{}, errCorrupt
	}
	return PrefixSnapshot{LimitC: limit, Step: int(step), Blob: append([]byte(nil), b...)}, nil
}

// writeFileAtomic writes via a temp file in the target directory and
// renames into place, so readers only ever see absent or complete
// entries — concurrent writers of the same key race benignly (both
// bodies are identical by content addressing).
func writeFileAtomic(fsys faultfs.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Chmod(tmp.Name(), 0o644); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return nil
}

func copyMetrics(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
