package simd

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestBrokerReplayAndLive pins the fanout contract: retained events
// replay to late subscribers in publish order, live subscribers see
// events as published, and Close ends every stream.
func TestBrokerReplayAndLive(t *testing.T) {
	b := NewBroker()
	b.Publish("cell", []byte(`{"index":0}`), true)
	b.Publish("sample", []byte(`{"t":1}`), false) // not retained

	replay, ch, cancel := b.Subscribe()
	defer cancel()
	if len(replay) != 1 || replay[0].Type != "cell" || replay[0].ID != 1 {
		t.Fatalf("replay: %+v", replay)
	}
	b.Publish("cell", []byte(`{"index":1}`), true)
	ev := <-ch
	if ev.Type != "cell" || ev.ID != 3 || string(ev.Data) != `{"index":1}` {
		t.Fatalf("live event: %+v", ev)
	}
	b.Close()
	if _, open := <-ch; open {
		t.Fatal("channel not closed on broker close")
	}
	// Replay survives close for late subscribers.
	replay2, ch2, cancel2 := b.Subscribe()
	defer cancel2()
	if len(replay2) != 2 {
		t.Fatalf("post-close replay: %d events", len(replay2))
	}
	if _, open := <-ch2; open {
		t.Fatal("post-close subscription channel not closed")
	}
	// Publishing after close is a silent no-op.
	b.Publish("cell", []byte(`{}`), true)
}

// TestBrokerSlowSubscriber pins the non-blocking delivery rules: a
// full subscriber drops samples (counted) but is disconnected on a
// retained event so it can resync via replay.
func TestBrokerSlowSubscriber(t *testing.T) {
	b := NewBroker()
	_, ch, cancel := b.Subscribe()
	defer cancel()
	for i := 0; i < subBuffer; i++ {
		b.Publish("sample", []byte(`{}`), false)
	}
	// Buffer is now full: one more sample is dropped, stream survives.
	b.Publish("sample", []byte(`{}`), false)
	if got := b.Dropped(); got != 1 {
		t.Fatalf("dropped: %d, want 1", got)
	}
	// A retained event to a full subscriber disconnects it instead.
	b.Publish("cell", []byte(`{}`), true)
	for i := 0; i < subBuffer; i++ {
		<-ch
	}
	if _, open := <-ch; open {
		t.Fatal("lagging subscriber not disconnected on retained event")
	}
	cancel() // safe after disconnect
}

// TestEventWireFormat pins the SSE rendering.
func TestEventWireFormat(t *testing.T) {
	var buf bytes.Buffer
	Event{ID: 7, Type: "cell", Data: []byte(`{"a":1}`)}.WriteTo(&buf)
	want := "id: 7\nevent: cell\ndata: {\"a\":1}\n\n"
	if buf.String() != want {
		t.Fatalf("wire format:\n%q\nwant\n%q", buf.String(), want)
	}
}

// TestMarshalCellEventNaN pins the telemetry sanitization: non-finite
// metric values become JSON null, never invalid JSON.
func TestMarshalCellEventNaN(t *testing.T) {
	data, err := marshalCellEvent(3, 0xab, OriginComputed, map[string]float64{
		"fps":  math.NaN(),
		"inf":  math.Inf(-1),
		"peak": 61.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Index   int                 `json:"index"`
		Key     string              `json:"key"`
		Origin  string              `json:"origin"`
		Metrics map[string]*float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("cell event is not valid JSON: %v\n%s", err, data)
	}
	if decoded.Index != 3 || decoded.Key != "00000000000000ab" || decoded.Origin != "computed" {
		t.Errorf("decoded: %+v", decoded)
	}
	if decoded.Metrics["fps"] != nil || decoded.Metrics["inf"] != nil {
		t.Error("non-finite metrics not nulled")
	}
	if v := decoded.Metrics["peak"]; v == nil || *v != 61.5 {
		t.Error("finite metric mangled")
	}
	if strings.Contains(string(data), "NaN") {
		t.Errorf("raw NaN leaked into payload: %s", data)
	}
}
