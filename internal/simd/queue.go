package simd

import (
	"context"
	"errors"
	"sync"
)

// Queue errors.
var (
	// ErrQueueFull is returned by Enqueue when the queue is at capacity;
	// the HTTP layer maps it to 429 with a Retry-After header.
	ErrQueueFull = errors.New("simd: queue full")
	// ErrQueueClosed is returned by Enqueue after Close; the HTTP layer
	// maps it to 503 (the daemon is draining).
	ErrQueueClosed = errors.New("simd: queue closed")
)

// Queue is the bounded job queue between the HTTP handlers and the
// worker pool. Enqueue never blocks — a full queue is backpressure the
// caller must surface — and Close drains cleanly: already-queued jobs
// remain dequeueable, new ones are refused.
type Queue struct {
	ch chan *Job

	mu     sync.Mutex
	closed bool
}

// NewQueue builds a queue holding at most capacity pending jobs
// (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{ch: make(chan *Job, capacity)}
}

// Enqueue adds a job without blocking; ErrQueueFull when at capacity,
// ErrQueueClosed after Close.
func (q *Queue) Enqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Dequeue blocks for the next job. ok is false when the queue is
// closed and drained, or when ctx is done first.
func (q *Queue) Dequeue(ctx context.Context) (*Job, bool) {
	select {
	case j, open := <-q.ch:
		return j, open && j != nil
	case <-ctx.Done():
		return nil, false
	}
}

// TryDequeue takes the next job without blocking; ok is false when
// the queue is empty (or closed and drained).
func (q *Queue) TryDequeue() (*Job, bool) {
	select {
	case j, open := <-q.ch:
		return j, open && j != nil
	default:
		return nil, false
	}
}

// Close stops admission; queued jobs stay dequeueable until drained.
// Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Depth is the number of queued jobs.
func (q *Queue) Depth() int { return len(q.ch) }

// Cap is the queue capacity.
func (q *Queue) Cap() int { return cap(q.ch) }
