// Package trace records and renders simulation time series: typed
// series buffers, resampling, CSV export, and the ASCII line charts,
// grouped bar charts and share ("pie") charts that regenerate the
// paper's figures in a terminal.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Point is one (time, value) sample.
type Point struct {
	// TimeS is the sample time in seconds.
	TimeS float64
	// Value is the sample value (unit depends on the series).
	Value float64
}

// Series is an append-only time series. The zero value is empty and
// ready to use.
type Series struct {
	// Name labels the series in charts and CSV headers.
	Name string
	// Unit is a short unit label ("°C", "W", "FPS").
	Unit string

	pts []Point
}

// NewSeries creates an empty named series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Append adds a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends are rejected so charts stay monotone.
func (s *Series) Append(timeS, value float64) error {
	if math.IsNaN(timeS) || math.IsNaN(value) {
		return fmt.Errorf("trace: NaN sample (%v, %v) in series %q", timeS, value, s.Name)
	}
	if n := len(s.pts); n > 0 && timeS < s.pts[n-1].TimeS {
		return fmt.Errorf("trace: out-of-order sample at t=%v (< %v) in series %q",
			timeS, s.pts[n-1].TimeS, s.Name)
	}
	s.pts = append(s.pts, Point{TimeS: timeS, Value: value})
	return nil
}

// MustAppend is Append that panics on error; for simulator-internal
// recording where inputs are already validated.
func (s *Series) MustAppend(timeS, value float64) {
	if err := s.Append(timeS, value); err != nil {
		panic(err)
	}
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.pts) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.pts[i] }

// Times returns a copy of all sample times.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.TimeS
	}
	return out
}

// Values returns a copy of all sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.Value
	}
	return out
}

// Last returns the most recent sample; ok is false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[len(s.pts)-1], true
}

// MinMax returns the smallest and largest values in the series.
func (s *Series) MinMax() (lo, hi float64, err error) {
	if len(s.pts) == 0 {
		return 0, 0, errors.New("trace: empty series")
	}
	lo, hi = s.pts[0].Value, s.pts[0].Value
	for _, p := range s.pts[1:] {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	return lo, hi, nil
}

// Max returns the largest value (0 when empty).
func (s *Series) Max() float64 {
	_, hi, err := s.MinMax()
	if err != nil {
		return 0
	}
	return hi
}

// Mean returns the time-unweighted mean of the values (0 when empty).
func (s *Series) Mean() float64 {
	m, err := stats.Mean(s.Values())
	if err != nil {
		return 0
	}
	return m
}

// ValueAt returns the series value at time t by zero-order hold (the
// last sample at or before t). Before the first sample it returns the
// first value; ok is false only for an empty series.
func (s *Series) ValueAt(t float64) (float64, bool) {
	if len(s.pts) == 0 {
		return 0, false
	}
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].TimeS > t })
	if i == 0 {
		return s.pts[0].Value, true
	}
	return s.pts[i-1].Value, true
}

// Resample returns the series values sampled at a fixed period via
// zero-order hold over [startS, endS). It is the downsampling used to
// fit long traces onto a fixed-width chart.
func (s *Series) Resample(startS, endS, periodS float64) ([]float64, error) {
	if periodS <= 0 || math.IsNaN(periodS) {
		return nil, fmt.Errorf("trace: resample period must be positive, got %v", periodS)
	}
	if endS < startS {
		return nil, fmt.Errorf("trace: resample range [%v, %v) is inverted", startS, endS)
	}
	var out []float64
	for t := startS; t < endS; t += periodS {
		v, ok := s.ValueAt(t)
		if !ok {
			return nil, errors.New("trace: cannot resample empty series")
		}
		out = append(out, v)
	}
	return out, nil
}

// Slice returns a new series containing samples with startS <= t < endS.
func (s *Series) Slice(startS, endS float64) *Series {
	out := NewSeries(s.Name, s.Unit)
	for _, p := range s.pts {
		if p.TimeS >= startS && p.TimeS < endS {
			out.pts = append(out.pts, p)
		}
	}
	return out
}

// CSV renders the series as two-column CSV with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time_s,%s\n", csvEscape(s.Name))
	for _, p := range s.pts {
		fmt.Fprintf(&b, "%g,%g\n", p.TimeS, p.Value)
	}
	return b.String()
}

// MultiCSV renders several series against a shared time axis sampled at
// periodS via zero-order hold. All series must be non-empty.
func MultiCSV(periodS float64, series ...*Series) (string, error) {
	if len(series) == 0 {
		return "", errors.New("trace: no series to export")
	}
	if periodS <= 0 {
		return "", fmt.Errorf("trace: period must be positive, got %v", periodS)
	}
	end := 0.0
	for _, s := range series {
		p, ok := s.Last()
		if !ok {
			return "", fmt.Errorf("trace: series %q is empty", s.Name)
		}
		if p.TimeS > end {
			end = p.TimeS
		}
	}
	var b strings.Builder
	b.WriteString("time_s")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for t := 0.0; t <= end+1e-9; t += periodS {
		fmt.Fprintf(&b, "%g", t)
		for _, s := range series {
			v, _ := s.ValueAt(t)
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// csvEscape quotes a field when it contains CSV metacharacters.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
