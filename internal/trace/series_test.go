package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAppendAndQuery(t *testing.T) {
	s := NewSeries("temp", "°C")
	for i := 0; i < 10; i++ {
		if err := s.Append(float64(i), float64(i)*2); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d, want 10", s.Len())
	}
	if p := s.At(3); p.TimeS != 3 || p.Value != 6 {
		t.Errorf("At(3) = %+v, want (3, 6)", p)
	}
	last, ok := s.Last()
	if !ok || last.TimeS != 9 || last.Value != 18 {
		t.Errorf("Last = %+v ok=%v, want (9, 18)", last, ok)
	}
	lo, hi, err := s.MinMax()
	if err != nil || lo != 0 || hi != 18 {
		t.Errorf("MinMax = (%v, %v, %v), want (0, 18, nil)", lo, hi, err)
	}
	if got := s.Max(); got != 18 {
		t.Errorf("Max = %v, want 18", got)
	}
	if got := s.Mean(); got != 9 {
		t.Errorf("Mean = %v, want 9", got)
	}
}

func TestSeriesRejectsOutOfOrder(t *testing.T) {
	s := NewSeries("x", "")
	if err := s.Append(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(4, 1); err == nil {
		t.Error("out-of-order append should fail")
	}
	// Equal timestamps are allowed (multiple events in one step).
	if err := s.Append(5, 2); err != nil {
		t.Errorf("equal-time append should succeed: %v", err)
	}
}

func TestSeriesRejectsNaN(t *testing.T) {
	s := NewSeries("x", "")
	if err := s.Append(math.NaN(), 1); err == nil {
		t.Error("NaN time should fail")
	}
	if err := s.Append(1, math.NaN()); err == nil {
		t.Error("NaN value should fail")
	}
}

func TestSeriesEmptyQueries(t *testing.T) {
	s := NewSeries("x", "")
	if _, ok := s.Last(); ok {
		t.Error("Last on empty should report !ok")
	}
	if _, _, err := s.MinMax(); err == nil {
		t.Error("MinMax on empty should error")
	}
	if _, ok := s.ValueAt(1); ok {
		t.Error("ValueAt on empty should report !ok")
	}
	if s.Max() != 0 || s.Mean() != 0 {
		t.Error("Max/Mean on empty should be 0")
	}
}

func TestValueAtZeroOrderHold(t *testing.T) {
	s := NewSeries("x", "")
	s.MustAppend(1, 10)
	s.MustAppend(2, 20)
	s.MustAppend(4, 40)
	cases := []struct{ t, want float64 }{
		{0, 10}, // before first sample: first value
		{1, 10},
		{1.5, 10},
		{2, 20},
		{3.999, 20},
		{4, 40},
		{100, 40},
	}
	for _, c := range cases {
		got, ok := s.ValueAt(c.t)
		if !ok || got != c.want {
			t.Errorf("ValueAt(%v) = %v ok=%v, want %v", c.t, got, ok, c.want)
		}
	}
}

func TestResample(t *testing.T) {
	s := NewSeries("x", "")
	s.MustAppend(0, 1)
	s.MustAppend(1, 2)
	s.MustAppend(2, 3)
	vals, err := s.Resample(0, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 2, 3, 3}
	if len(vals) != len(want) {
		t.Fatalf("resample len = %d, want %d", len(vals), len(want))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := NewSeries("x", "")
	s.MustAppend(0, 1)
	if _, err := s.Resample(0, 1, 0); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := s.Resample(2, 1, 0.5); err == nil {
		t.Error("inverted range should fail")
	}
	empty := NewSeries("e", "")
	if _, err := empty.Resample(0, 1, 0.5); err == nil {
		t.Error("resampling empty series should fail")
	}
}

func TestSlice(t *testing.T) {
	s := NewSeries("x", "u")
	for i := 0; i < 10; i++ {
		s.MustAppend(float64(i), float64(i))
	}
	sub := s.Slice(3, 7)
	if sub.Len() != 4 {
		t.Fatalf("slice len = %d, want 4", sub.Len())
	}
	if sub.At(0).TimeS != 3 || sub.At(3).TimeS != 6 {
		t.Errorf("slice bounds wrong: %+v .. %+v", sub.At(0), sub.At(3))
	}
	if sub.Name != "x" || sub.Unit != "u" {
		t.Error("slice should inherit name and unit")
	}
}

func TestCSV(t *testing.T) {
	s := NewSeries("temp,max", "")
	s.MustAppend(0, 1.5)
	s.MustAppend(1, 2.5)
	got := s.CSV()
	if !strings.HasPrefix(got, "time_s,\"temp,max\"\n") {
		t.Errorf("CSV header should escape comma, got %q", got)
	}
	if !strings.Contains(got, "0,1.5\n") || !strings.Contains(got, "1,2.5\n") {
		t.Errorf("CSV body missing rows: %q", got)
	}
}

func TestMultiCSV(t *testing.T) {
	a := NewSeries("a", "")
	b := NewSeries("b", "")
	a.MustAppend(0, 1)
	a.MustAppend(2, 3)
	b.MustAppend(0, 10)
	got, err := MultiCSV(1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if lines[0] != "time_s,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // t = 0, 1, 2 plus header
		t.Fatalf("got %d lines, want 4: %q", len(lines), got)
	}
	if lines[3] != "2,3,10" {
		t.Errorf("last row = %q, want 2,3,10", lines[3])
	}
}

func TestMultiCSVErrors(t *testing.T) {
	if _, err := MultiCSV(1); err == nil {
		t.Error("no series should fail")
	}
	a := NewSeries("a", "")
	if _, err := MultiCSV(1, a); err == nil {
		t.Error("empty series should fail")
	}
	a.MustAppend(0, 1)
	if _, err := MultiCSV(0, a); err == nil {
		t.Error("zero period should fail")
	}
}

// Property: ValueAt returns the value of the latest sample at or before
// the query time for any monotone series.
func TestValueAtProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		s := NewSeries("p", "")
		tm := 0.0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			tm += 1
			s.MustAppend(tm, v)
			_ = i
		}
		if s.Len() == 0 {
			return true
		}
		qt := math.Abs(math.Mod(q, tm+2))
		got, ok := s.ValueAt(qt)
		if !ok {
			return false
		}
		// Reference: linear scan.
		want := s.At(0).Value
		for i := 0; i < s.Len(); i++ {
			if s.At(i).TimeS <= qt {
				want = s.At(i).Value
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
