package trace

import (
	"strings"
	"testing"
)

func tempSeries(name string, vals ...float64) *Series {
	s := NewSeries(name, "°C")
	for i, v := range vals {
		s.MustAppend(float64(i), v)
	}
	return s
}

func TestLineChartRenders(t *testing.T) {
	a := tempSeries("without throttling", 30, 35, 40, 45, 50)
	b := tempSeries("with throttling", 30, 33, 36, 38, 39)
	out, err := LineChart(LineChartConfig{Title: "Fig 1"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 1", "without throttling", "with throttling", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Plot area must have the requested default height of 18 rows plus
	// title, axis and legend lines.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+18+2+2 {
		t.Errorf("chart has %d lines, want 23:\n%s", len(lines), out)
	}
}

func TestLineChartFixedRange(t *testing.T) {
	a := tempSeries("a", 10, 20)
	out, err := LineChart(LineChartConfig{YMin: 0, YMax: 100, Width: 20, Height: 5}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100.0") || !strings.Contains(out, "0.0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := LineChart(LineChartConfig{}); err == nil {
		t.Error("no series should fail")
	}
	if _, err := LineChart(LineChartConfig{}, NewSeries("e", "")); err == nil {
		t.Error("empty series should fail")
	}
	a := tempSeries("a", 1, 2)
	if _, err := LineChart(LineChartConfig{Width: 2, Height: 2}, a); err == nil {
		t.Error("tiny chart area should fail")
	}
	if _, err := LineChart(LineChartConfig{YMin: 5, YMax: 5}, a); err == nil {
		t.Error("inverted fixed range should fail")
	}
	many := make([]*Series, 7)
	for i := range many {
		many[i] = tempSeries("s", 1)
	}
	if _, err := LineChart(LineChartConfig{}, many...); err == nil {
		t.Error("too many series should fail")
	}
}

func TestBarChartRenders(t *testing.T) {
	groups := []BarGroup{
		{Label: "390MHz", Values: []float64{0.15, 0.67}},
		{Label: "510MHz", Values: []float64{0.32, 0.0}},
	}
	out, err := BarChart("Fig 2", []string{"without", "with"}, groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 2", "390MHz", "510MHz", "15.0%", "67.0%", "32.0%", "legend:"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar chart missing %q:\n%s", want, out)
		}
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := BarChart("t", nil, []BarGroup{{Label: "x", Values: nil}}); err == nil {
		t.Error("no series names should fail")
	}
	if _, err := BarChart("t", []string{"a"}, nil); err == nil {
		t.Error("no groups should fail")
	}
	if _, err := BarChart("t", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{1, 2}}}); err == nil {
		t.Error("value-count mismatch should fail")
	}
	if _, err := BarChart("t", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{-0.1}}}); err == nil {
		t.Error("negative value should fail")
	}
}

func TestShareChartRenders(t *testing.T) {
	out, err := ShareChart("Fig 9a", []ShareSlice{
		{Label: "gpu", Share: 0.45},
		{Label: "big", Share: 0.38},
		{Label: "little", Share: 0.10},
		{Label: "mem", Share: 0.07},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 9a", "gpu", "45.0%", "38.0%", "little"} {
		if !strings.Contains(out, want) {
			t.Errorf("share chart missing %q:\n%s", want, out)
		}
	}
}

func TestShareChartErrors(t *testing.T) {
	if _, err := ShareChart("t", nil); err == nil {
		t.Error("empty slices should fail")
	}
	if _, err := ShareChart("t", []ShareSlice{{Label: "a", Share: -1}}); err == nil {
		t.Error("negative share should fail")
	}
	if _, err := ShareChart("t", []ShareSlice{{Label: "a", Share: 0.9}, {Label: "b", Share: 0.9}}); err == nil {
		t.Error("shares > 1 should fail")
	}
}
