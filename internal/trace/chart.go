package trace

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// LineChartConfig controls ASCII line-chart rendering.
type LineChartConfig struct {
	// Title is printed above the chart.
	Title string
	// Width and Height are the plot-area dimensions in characters.
	// Zero values use the defaults (72x18).
	Width, Height int
	// YMin/YMax fix the y-axis range; when both are zero the range is
	// derived from the data with a small margin.
	YMin, YMax float64
	// YLabel annotates the y axis.
	YLabel string
}

// lineMarks are the per-series plot symbols, in series order.
var lineMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// LineChart renders one or more series as an ASCII line chart, the
// terminal equivalent of the paper's temperature-profile figures
// (Figures 1, 3, 5 and 8).
func LineChart(cfg LineChartConfig, series ...*Series) (string, error) {
	if len(series) == 0 {
		return "", errors.New("trace: line chart needs at least one series")
	}
	if len(series) > len(lineMarks) {
		return "", fmt.Errorf("trace: at most %d series per chart, got %d", len(lineMarks), len(series))
	}
	w, h := cfg.Width, cfg.Height
	if w == 0 {
		w = 72
	}
	if h == 0 {
		h = 18
	}
	if w < 8 || h < 4 {
		return "", fmt.Errorf("trace: chart area %dx%d too small", w, h)
	}

	// Common time range and y range.
	tEnd := 0.0
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		p, ok := s.Last()
		if !ok {
			return "", fmt.Errorf("trace: series %q is empty", s.Name)
		}
		if p.TimeS > tEnd {
			tEnd = p.TimeS
		}
		lo, hi, err := s.MinMax()
		if err != nil {
			return "", err
		}
		yLo = math.Min(yLo, lo)
		yHi = math.Max(yHi, hi)
	}
	if cfg.YMin != 0 || cfg.YMax != 0 {
		yLo, yHi = cfg.YMin, cfg.YMax
		if yHi <= yLo {
			return "", fmt.Errorf("trace: fixed y-range [%v, %v] is inverted", yLo, yHi)
		}
	} else {
		if yHi == yLo {
			yHi = yLo + 1
		}
		margin := (yHi - yLo) * 0.05
		yLo -= margin
		yHi += margin
	}
	if tEnd == 0 {
		tEnd = 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	period := tEnd / float64(w)
	for si, s := range series {
		vals, err := s.Resample(0, tEnd, period)
		if err != nil {
			return "", err
		}
		for col := 0; col < w && col < len(vals); col++ {
			frac := (vals[col] - yLo) / (yHi - yLo)
			row := h - 1 - int(math.Round(frac*float64(h-1)))
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			grid[row][col] = lineMarks[si]
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	for r := 0; r < h; r++ {
		yVal := yHi - (yHi-yLo)*float64(r)/float64(h-1)
		label := ""
		// Label top, bottom and every 4th row to keep the axis readable.
		if r == 0 || r == h-1 || r%4 == 0 {
			label = fmt.Sprintf("%7.1f", yVal)
		}
		fmt.Fprintf(&b, "%7s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%7s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%7s 0%st=%.0fs\n", "", strings.Repeat(" ", maxInt(1, w-10)), tEnd)
	for si, s := range series {
		unit := ""
		if s.Unit != "" {
			unit = " (" + s.Unit + ")"
		}
		fmt.Fprintf(&b, "  %c %s%s\n", lineMarks[si], s.Name, unit)
	}
	return b.String(), nil
}

// BarGroup is one labeled cluster of bars in a grouped bar chart: one
// value per series.
type BarGroup struct {
	// Label names the group (e.g. an OPP frequency like "390MHz").
	Label string
	// Values holds one bar height per series, in series order.
	Values []float64
}

// BarChart renders a grouped horizontal bar chart, the terminal
// equivalent of the paper's frequency-residency histograms (Figures 2,
// 4 and 6). Values are fractions in [0,1] rendered as percentages.
func BarChart(title string, seriesNames []string, groups []BarGroup) (string, error) {
	if len(seriesNames) == 0 {
		return "", errors.New("trace: bar chart needs at least one series name")
	}
	if len(groups) == 0 {
		return "", errors.New("trace: bar chart needs at least one group")
	}
	marks := []byte{'#', '=', '*', '+'}
	if len(seriesNames) > len(marks) {
		return "", fmt.Errorf("trace: at most %d series per bar chart", len(marks))
	}
	labelW := 0
	for _, g := range groups {
		if len(g.Values) != len(seriesNames) {
			return "", fmt.Errorf("trace: group %q has %d values for %d series",
				g.Label, len(g.Values), len(seriesNames))
		}
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	const scale = 50 // characters per 100%
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, g := range groups {
		for si, v := range g.Values {
			if math.IsNaN(v) || v < 0 {
				return "", fmt.Errorf("trace: invalid bar value %v in group %q", v, g.Label)
			}
			n := int(math.Round(v * scale))
			if n > scale {
				n = scale
			}
			lbl := ""
			if si == 0 {
				lbl = g.Label
			}
			fmt.Fprintf(&b, "%*s %c|%-*s %5.1f%%\n",
				labelW, lbl, marks[si], scale, strings.Repeat(string(marks[si]), n), v*100)
		}
	}
	b.WriteString("legend:")
	for si, name := range seriesNames {
		fmt.Fprintf(&b, "  %c=%s", marks[si], name)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// ShareSlice is one labeled share of a whole.
type ShareSlice struct {
	// Label names the slice (e.g. a power rail).
	Label string
	// Share is the fraction of the total in [0,1].
	Share float64
}

// ShareChart renders labeled shares as proportional bars with
// percentages — the terminal stand-in for the paper's Figure 9 power
// distribution pie charts. Shares should sum to ~1.
func ShareChart(title string, slices []ShareSlice) (string, error) {
	if len(slices) == 0 {
		return "", errors.New("trace: share chart needs at least one slice")
	}
	labelW := 0
	sum := 0.0
	for _, s := range slices {
		if math.IsNaN(s.Share) || s.Share < 0 {
			return "", fmt.Errorf("trace: invalid share %v for %q", s.Share, s.Label)
		}
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
		sum += s.Share
	}
	if sum > 1.02 {
		return "", fmt.Errorf("trace: shares sum to %v > 1", sum)
	}
	const scale = 60
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, s := range slices {
		n := int(math.Round(s.Share * scale))
		fmt.Fprintf(&b, "%*s |%-*s %5.1f%%\n",
			labelW, s.Label, scale, strings.Repeat("█", n), s.Share*100)
	}
	return b.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
